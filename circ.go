// Package circ is a race checker for multithreaded MiniNesC programs
// implementing the CIRC context-inference algorithm from Henzinger, Jhala,
// and Majumdar, "Race Checking by Context Inference" (PLDI 2004).
//
// CIRC proves the absence of data races in programs with an unbounded
// number of threads by inferring a context model — an abstract control
// flow automaton (ACFA) with predicate-labelled locations and counters —
// through counterexample-guided abstraction refinement, weak bisimulation
// minimisation, and circular assume-guarantee reasoning. Unlike lockset-
// or type-based race detectors it handles state-variable synchronisation
// idioms (test-and-set flags, conditional locking, interrupt enable bits)
// without false positives, and produces concrete interleaved error traces
// for genuine races.
//
// # Quick start
//
//	rep, err := circ.CheckRace(src, circ.CheckOptions{Variable: "x"})
//	if err != nil { ... }
//	switch rep.Verdict {
//	case circ.Safe:   // race freedom proved; rep.FinalACFA is the context
//	case circ.Unsafe: // rep.Race is a concrete interleaved trace
//	case circ.Unknown:
//	}
//
// The package also exposes the paper's baselines (an Eraser-style lockset
// detector and the nesC compiler's flow-based analysis), an explicit-state
// model checker for bounded instances, and the Appendix A counter-guided
// parameterized checker for finite-state threads.
package circ

import (
	"fmt"
	"io"

	"circ/internal/cfa"
	icirc "circ/internal/circ"
	"circ/internal/explicit"
	"circ/internal/flowcheck"
	"circ/internal/lang"
	"circ/internal/lockset"
	"circ/internal/param"
	"circ/internal/refine"
	"circ/internal/smt"
)

// Verdict is the analysis outcome.
type Verdict = icirc.Verdict

// Verdicts.
const (
	Unknown = icirc.Unknown
	Safe    = icirc.Safe
	Unsafe  = icirc.Unsafe
)

// Report is the CIRC analysis result; see the fields of the underlying
// type for the evidence attached to each verdict.
type Report = icirc.Report

// Interleaving is a concrete interleaved error trace (thread 0 is the
// distinguished main thread).
type Interleaving = refine.Interleaving

// Program is a parsed MiniNesC program.
type Program struct {
	ast *lang.Program
}

// Parse parses and semantically checks MiniNesC source text.
func Parse(src string) (*Program, error) {
	p, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{ast: p}, nil
}

// AST exposes the underlying syntax tree.
func (p *Program) AST() *lang.Program { return p.ast }

// ThreadNames lists the declared threads.
func (p *Program) ThreadNames() []string {
	out := make([]string, len(p.ast.Threads))
	for i, t := range p.ast.Threads {
		out[i] = t.Name
	}
	return out
}

// Globals lists the shared variables.
func (p *Program) Globals() []string {
	out := make([]string, len(p.ast.Globals))
	for i, g := range p.ast.Globals {
		out[i] = g.Name
	}
	return out
}

// CFA builds the control flow automaton of the named thread (empty name:
// the single thread), with functions inlined.
func (p *Program) CFA(thread string) (*cfa.CFA, error) {
	return cfa.Build(p.ast, thread)
}

// CheckOptions configures CheckRace.
type CheckOptions struct {
	// Variable is the global to check for races (required).
	Variable string
	// Thread selects the thread template; may be empty for single-thread
	// programs. The checker verifies unboundedly many copies of it.
	Thread string
	// K is the initial counter parameter (default 1).
	K int
	// Omega selects the omega-CIRC variant (Section 5): exact-k
	// reachability plus the good-location generalisation check.
	Omega bool
	// Log, when non-nil, receives a narration of every iteration.
	Log io.Writer
	// MaxRounds/MaxInner/MaxStates bound the analysis (defaults apply).
	MaxRounds, MaxInner, MaxStates int
}

// CheckRace runs CIRC on the program denoted by src: it verifies that
// arbitrarily many copies of the thread running concurrently are free of
// data races on the given variable, or returns a genuine interleaved race
// trace.
func CheckRace(src string, opts CheckOptions) (*Report, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CheckProgram(p, opts)
}

// CheckProgram is CheckRace for an already-parsed program.
func CheckProgram(p *Program, opts CheckOptions) (*Report, error) {
	if opts.Variable == "" {
		return nil, fmt.Errorf("circ: CheckOptions.Variable is required")
	}
	c, err := p.CFA(opts.Thread)
	if err != nil {
		return nil, err
	}
	return icirc.Check(c, opts.Variable, icirc.Options{
		K:         opts.K,
		Omega:     opts.Omega,
		Log:       opts.Log,
		MaxRounds: opts.MaxRounds,
		MaxInner:  opts.MaxInner,
		MaxStates: opts.MaxStates,
	}, smt.NewChecker())
}

// LocksetReport is the Eraser-style baseline's output.
type LocksetReport = lockset.Report

// Lockset runs the Eraser-style dynamic lockset detector on n concurrent
// copies of the program's thread, over random schedules.
func Lockset(src string, thread string, n int) (*LocksetReport, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := p.CFA(thread)
	if err != nil {
		return nil, err
	}
	return lockset.Analyze(explicit.NewSymmetric(c, n), lockset.Options{})
}

// FlowcheckReport is the nesC flow-based baseline's output.
type FlowcheckReport = flowcheck.Report

// Flowcheck runs the nesC compiler's flow-based static race analysis on
// the program's thread.
func Flowcheck(src string, thread string) (*FlowcheckReport, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := p.CFA(thread)
	if err != nil {
		return nil, err
	}
	return flowcheck.Analyze([]*cfa.CFA{c}), nil
}

// ExplicitResult is the bounded explicit-state checker's output.
type ExplicitResult = explicit.Result

// ExplicitCheck exhaustively model-checks n concurrent copies of the
// thread for races on variable, under bounded values and havoc domains.
func ExplicitCheck(src string, thread string, n int, variable string) (*ExplicitResult, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := p.CFA(thread)
	if err != nil {
		return nil, err
	}
	return explicit.NewSymmetric(c, n).CheckRaces(variable, explicit.Options{})
}

// VerifyCertificate independently re-checks a Safe verdict's evidence via
// the paper's Algorithm Check (Section 4.2): it discharges the assume
// obligation (no abstract race under the given context model and
// predicates) and the guarantee obligation (the context simulates the
// thread's behaviour) without running any inference. It returns whether
// the certificate is valid and, if not, which obligation failed.
func VerifyCertificate(p *Program, opts CheckOptions, rep *Report) (bool, string, error) {
	if opts.Variable == "" {
		return false, "", fmt.Errorf("circ: CheckOptions.Variable is required")
	}
	if rep.FinalACFA == nil {
		return false, "", fmt.Errorf("circ: report carries no context model (verdict %v)", rep.Verdict)
	}
	c, err := p.CFA(opts.Thread)
	if err != nil {
		return false, "", err
	}
	return icirc.VerifyCertificate(c, opts.Variable, rep.FinalACFA, rep.Preds, rep.K, smt.NewChecker())
}

// ParamResult is the Appendix A checker's output.
type ParamResult = param.Result

// ParamCheck runs the counter-guided parameterized verification of
// Appendix A on a finite-state thread (no locals) for races on variable.
func ParamCheck(src string, thread string, variable string) (*ParamResult, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := p.CFA(thread)
	if err != nil {
		return nil, err
	}
	return param.Check(c, variable, param.Options{})
}
