// Package circ is a race checker for multithreaded MiniNesC programs
// implementing the CIRC context-inference algorithm from Henzinger, Jhala,
// and Majumdar, "Race Checking by Context Inference" (PLDI 2004).
//
// CIRC proves the absence of data races in programs with an unbounded
// number of threads by inferring a context model — an abstract control
// flow automaton (ACFA) with predicate-labelled locations and counters —
// through counterexample-guided abstraction refinement, weak bisimulation
// minimisation, and circular assume-guarantee reasoning. Unlike lockset-
// or type-based race detectors it handles state-variable synchronisation
// idioms (test-and-set flags, conditional locking, interrupt enable bits)
// without false positives, and produces concrete interleaved error traces
// for genuine races.
//
// # Quick start
//
//	chk := circ.NewChecker()
//	rep, err := chk.CheckSource(ctx, src, "", "x")
//	if err != nil { ... }
//	switch rep.Verdict {
//	case circ.Safe:   // race freedom proved; rep.FinalACFA is the context
//	case circ.Unsafe: // rep.Race is a concrete interleaved trace
//	case circ.Unknown:
//	}
//
// Checker is the primary entry point: it is configured once with
// functional options (WithK, WithOmega, WithLog, WithParallelism), carries
// a process-wide concurrent SMT cache shared by every analysis it runs,
// and is safe for concurrent use. CheckAllRaces checks every (thread,
// global) pair of a program in one batch over a bounded worker pool.
//
// The package also exposes the paper's baselines (an Eraser-style lockset
// detector and the nesC compiler's flow-based analysis), an explicit-state
// model checker for bounded instances, and the Appendix A counter-guided
// parameterized checker for finite-state threads.
package circ

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"time"

	"circ/internal/cfa"
	icirc "circ/internal/circ"
	"circ/internal/dataflow"
	"circ/internal/explicit"
	"circ/internal/expr"
	"circ/internal/flowcheck"
	"circ/internal/journal"
	"circ/internal/lang"
	"circ/internal/lockset"
	"circ/internal/param"
	"circ/internal/reach"
	"circ/internal/refine"
	"circ/internal/smt"
	"circ/internal/store"
	"circ/internal/telemetry"
)

// Verdict is the analysis outcome. Its String method renders "safe",
// "unsafe", or "unknown".
type Verdict = icirc.Verdict

// Verdicts.
const (
	Unknown = icirc.Unknown
	Safe    = icirc.Safe
	Unsafe  = icirc.Unsafe
)

// Report is the CIRC analysis result; see the fields of the underlying
// type for the evidence attached to each verdict, and Report.Summary for
// a one-line rendering.
type Report = icirc.Report

// Interleaving is a concrete interleaved error trace (thread 0 is the
// distinguished main thread).
type Interleaving = refine.Interleaving

// CertificateError reports an invalid Safe certificate from
// VerifyCertificate: which assume-guarantee obligation failed and why.
// Retrieve it with errors.As.
type CertificateError = icirc.CertificateError

// Obligation identifies a failed proof obligation in a CertificateError.
type Obligation = icirc.Obligation

// Obligations.
const (
	ObligationAssume    = icirc.ObligationAssume
	ObligationGuarantee = icirc.ObligationGuarantee
)

// Telemetry surface (implemented in internal/telemetry).
//
// Metrics is the serializable snapshot embedded in Report and BatchReport;
// Tracer records hierarchical spans exportable as Chrome trace_event JSON
// (chrome://tracing / Perfetto); MetricsRegistry is the live registry of
// named counters, gauges, and duration histograms behind every snapshot.
type (
	// Metrics is a point-in-time metrics snapshot.
	Metrics = telemetry.Metrics
	// Tracer records spans; attach one with WithTracer and export with
	// Tracer.Export / Tracer.ExportFile after the analysis.
	Tracer = telemetry.Tracer
	// Span is one timed region of a trace.
	Span = telemetry.Span
	// MetricsRegistry aggregates live counters; obtain the Checker's with
	// Checker.Metrics, publish it with MetricsRegistry.PublishExpvar.
	MetricsRegistry = telemetry.Registry
)

// NewTracer returns a span tracer whose timebase starts now.
func NewTracer() *Tracer { return telemetry.NewTracer() }

// Version is the library's own version string, reported by the daemon's
// build-info gauge and startup log. It tracks the repository's release
// tags; builds from source carry the most recent tag.
const Version = "0.9.0"

// Flight-recorder surface (implemented in internal/journal).
type (
	// Journal is the structured inference flight recorder: one typed event
	// per semantic step of the analysis (iterations, trace verdicts,
	// predicate discoveries with their provenance, counter widenings,
	// bisimulation collapses, per-phase solver work). Attach one with
	// WithJournal, serialize it with Journal.WriteJSONL — the output is
	// byte-identical at any parallelism — and render it with RenderHTML.
	Journal = journal.Recorder
	// JournalEvent is one recorded flight-recorder event.
	JournalEvent = journal.Event
)

// NewJournal returns an empty flight recorder.
func NewJournal() *Journal { return journal.New() }

// MountJournal registers the live observability endpoints on mux:
// /debug/circ/progress (JSON per-case batch state) and /debug/circ/events
// (the journal as a server-sent event stream: full replay, then live).
func MountJournal(mux *http.ServeMux, j *Journal) { journal.Mount(mux, j) }

// Sentinel errors, matchable with errors.Is.
var (
	// ErrNoVariable reports that no race variable was specified.
	ErrNoVariable = errors.New("no race variable specified")
	// ErrUnknownThread reports that the requested thread template is not
	// declared by the program.
	ErrUnknownThread = errors.New("unknown thread")
)

// Program is a parsed MiniNesC program.
type Program struct {
	ast *lang.Program
}

// Parse parses and semantically checks MiniNesC source text.
func Parse(src string) (*Program, error) {
	p, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{ast: p}, nil
}

// AST exposes the underlying syntax tree.
func (p *Program) AST() *lang.Program { return p.ast }

// ThreadNames lists the declared threads.
func (p *Program) ThreadNames() []string {
	out := make([]string, len(p.ast.Threads))
	for i, t := range p.ast.Threads {
		out[i] = t.Name
	}
	return out
}

// Globals lists the shared variables.
func (p *Program) Globals() []string {
	out := make([]string, len(p.ast.Globals))
	for i, g := range p.ast.Globals {
		out[i] = g.Name
	}
	return out
}

// CFA builds the control flow automaton of the named thread (empty name:
// the single thread), with functions inlined.
func (p *Program) CFA(thread string) (*cfa.CFA, error) {
	return cfa.Build(p.ast, thread)
}

// checkThread validates a non-empty thread name against the declared
// threads, returning an error wrapping ErrUnknownThread on a miss. The
// empty name (meaning "the single thread") is resolved by cfa.Build.
func (p *Program) checkThread(thread string) error {
	if thread == "" {
		return nil
	}
	names := p.ThreadNames()
	for _, n := range names {
		if n == thread {
			return nil
		}
	}
	return fmt.Errorf("circ: thread %q not declared (have %s): %w",
		thread, strings.Join(names, ", "), ErrUnknownThread)
}

// Checker is the primary analysis entry point: a reusable, concurrency-
// safe CIRC engine configured with functional options. All analyses run
// through one Checker share a process-wide memoising SMT cache, so
// predicate-abstraction cubes and validity queries discharged once are
// never re-solved — across refinement rounds, across frontier workers,
// and across the (thread, variable) pairs of a batch run.
type Checker struct {
	k           int
	omega       bool
	logger      *slog.Logger
	tracer      *telemetry.Tracer
	registry    *telemetry.Registry
	parallelism int
	sched       Sched
	maxRounds   int
	maxInner    int
	maxStates   int
	triage      bool
	slicing     bool
	seedPreds   bool
	solver      *smt.CachedChecker
	journal     *journal.Recorder
	store       *store.Store
	// thread/variable are the default target of the package-level Check
	// entry point, set with WithTarget.
	thread   string
	variable string
}

// Option configures a Checker.
type Option func(*Checker)

// WithK sets the initial counter parameter (default 1).
func WithK(k int) Option { return func(c *Checker) { c.k = k } }

// WithOmega selects the omega-CIRC variant (Section 5): exact-k
// reachability plus the good-location generalisation check.
func WithOmega(omega bool) Option { return func(c *Checker) { c.omega = omega } }

// WithLog directs a narration of every iteration to w, rendered as plain
// text. It is a compatibility shim over WithLogger: the narration is
// emitted through a slog handler that formats records as the classic
// line-oriented log. In batch runs the narration is only emitted when a
// single analysis runs at a time (parallelism 1 or a single target), to
// keep it readable.
func WithLog(w io.Writer) Option {
	return func(c *Checker) { c.logger = telemetry.NarrationLogger(w) }
}

// WithLogger directs the per-iteration narration to a structured slog
// handler (nil disables logging). Use telemetry's NarrationLogger — or
// WithLog — for the classic plain-text rendering.
func WithLogger(h slog.Handler) Option {
	return func(c *Checker) {
		if h == nil {
			c.logger = nil
			return
		}
		c.logger = slog.New(h)
	}
}

// WithTracer records a hierarchical span trace of every analysis run
// through the Checker into tr. Export it afterwards with Tracer.Export or
// Tracer.ExportFile as Chrome trace_event JSON (open in chrome://tracing
// or Perfetto). A nil tracer (the default) costs nothing on the hot path.
func WithTracer(tr *Tracer) Option { return func(c *Checker) { c.tracer = tr } }

// WithSMTSlowLog enables the SMT slow-query log: solver misses taking at
// least threshold are captured — formula ID, cube key, duration, result,
// clauses replayed/learned — into a bounded ring shared by every Checker
// derived from this one, readable with SlowQueries. Zero (the default)
// disables capture.
func WithSMTSlowLog(threshold time.Duration) Option {
	return func(c *Checker) { c.solver.SetSlowQueryThreshold(threshold) }
}

// SlowQuery is one captured slow SMT solve; see WithSMTSlowLog.
type SlowQuery = smt.SlowQuery

// SlowQueries returns the retained slow-query log entries, newest first.
// Empty until a threshold is set with WithSMTSlowLog.
func (c *Checker) SlowQueries() []SlowQuery { return c.solver.SlowQueries() }

// SMTSlowLogThreshold returns the active slow-query threshold (0 when
// capture is disabled).
func (c *Checker) SMTSlowLogThreshold() time.Duration { return c.solver.SlowQueryThreshold() }

// Scheduler returns the configured reachability scheduler.
func (c *Checker) Scheduler() Sched { return c.sched }

// WithParallelism bounds the worker pool: frontier states of one
// reachability run and (thread, variable) pairs of a batch run are
// expanded by at most n workers. n <= 0 selects GOMAXPROCS (the default).
// Verdicts are identical at any parallelism.
func WithParallelism(n int) Option { return func(c *Checker) { c.parallelism = n } }

// Sched selects the reachability scheduler; see SchedSteal and
// SchedLevel. Both produce identical verdicts, race traces, and
// journals at any parallelism.
type Sched = reach.Sched

// Scheduler choices for WithScheduler.
const (
	// SchedSteal (the default) is the deterministic work-stealing pool:
	// workers expand outstanding states from per-worker deques with no
	// level barrier, while a sequential merger pins discovery order.
	SchedSteal = reach.SchedSteal
	// SchedLevel is the level-synchronous scheduler: expand one BFS
	// level in parallel, merge, repeat. Kept for comparison.
	SchedLevel = reach.SchedLevel
)

// WithScheduler selects the reachability scheduler (default SchedSteal).
func WithScheduler(s Sched) Option { return func(c *Checker) { c.sched = s } }

// ParseSched maps a scheduler name — "steal" or "level" — onto its
// Sched value, for flag and wire-option parsing.
func ParseSched(name string) (Sched, error) {
	switch name {
	case "steal":
		return SchedSteal, nil
	case "level":
		return SchedLevel, nil
	}
	return SchedSteal, fmt.Errorf("unknown scheduler %q (want \"steal\" or \"level\")", name)
}

// WithJournal attaches a flight recorder: every analysis run through the
// Checker emits its inference events (one case per (thread, variable)
// unit) into j. A nil journal (the default) costs one nil check per
// instrumentation point. Serialize with Journal.WriteJSONL, watch live via
// MountJournal, render with the journal package's RenderHTML.
func WithJournal(j *Journal) Option { return func(c *Checker) { c.journal = j } }

// Journal returns the attached flight recorder, or nil.
func (c *Checker) Journal() *Journal { return c.journal }

// WithTriage enables or disables the static triage stage (default on):
// dataflow rules that discharge (thread, variable) pairs proved
// race-free without running the inference engine — globals the thread
// never accesses ("thread-local"), never writes ("read-only"), accesses
// only from atomic locations ("atomic-covered"), or accesses only while
// holding a single-owner busy flag proved by the flag-guard
// must-analysis ("flag-guarded"). Discharged reports carry the rule in
// Report.Triage and never touch the SMT solver. Triage is sound: it
// only ever produces Safe verdicts that CIRC would (eventually) also
// produce.
func WithTriage(on bool) Option { return func(c *Checker) { c.triage = on } }

// WithSlicing enables or disables per-target cone-of-influence slicing
// (default on): before CIRC runs, assignments to variables that cannot
// influence the checked global are rewritten to skips, assume predicates
// over such variables are weakened to true, and the resulting skip
// chains are contracted. The slice is a sound over-approximation that
// preserves every access to the target verbatim, so verdicts are
// unchanged — the engine just stops paying for irrelevant state.
func WithSlicing(on bool) Option { return func(c *Checker) { c.slicing = on } }

// WithSeedPredicates enables or disables static predicate seeding
// (default on): for pairs the triage rules could not discharge, the
// flag-guard analysis exports the guard facts it did establish —
// flag-against-constant equalities and the local witnesses that observe
// an acquire — as the engine's initial predicate set. Predicate
// abstraction is sound for any predicate set, so seeding never changes
// a verdict; it only lets refinement start from the synchronisation
// protocol instead of rediscovering it one spurious trace at a time.
// Seeded predicates are recorded in Report.SeededPreds, journalled as
// predicate_seeded events, and counted by the seed.predicates counter.
func WithSeedPredicates(on bool) Option { return func(c *Checker) { c.seedPreds = on } }

// WithBudgets bounds the analysis: maximum refinement rounds, inner
// context-weakening rounds, and abstract states per reachability run.
// Zero keeps the default for that budget.
func WithBudgets(maxRounds, maxInner, maxStates int) Option {
	return func(c *Checker) {
		c.maxRounds, c.maxInner, c.maxStates = maxRounds, maxInner, maxStates
	}
}

// WithTarget sets the default (thread, variable) target used by the
// package-level Check entry point. Thread may be empty for single-thread
// programs; the variable is required there.
func WithTarget(thread, variable string) Option {
	return func(c *Checker) { c.thread, c.variable = thread, variable }
}

// NewChecker returns a Checker with the given options applied.
func NewChecker(opts ...Option) *Checker {
	c := &Checker{
		solver:    smt.NewCachedChecker(),
		registry:  telemetry.NewRegistry(),
		triage:    true,
		slicing:   true,
		seedPreds: true,
	}
	for _, o := range opts {
		o(c)
	}
	if c.parallelism <= 0 {
		c.parallelism = runtime.GOMAXPROCS(0)
	}
	c.solver.Instrument(c.registry, c.tracer)
	return c
}

// Derive returns a copy of the Checker with opts applied on top of the
// receiver's configuration. The derived Checker shares the receiver's
// SMT solver cache, metrics registry, and certificate store — the
// process-wide state a long-running service amortizes across requests —
// while per-request settings (k, omega, budgets, parallelism, journal,
// logger, tracer) may be overridden freely. Overriding the tracer
// re-binds the shared solver's span sink to the new tracer (a cheap view
// over the same verdict cache), which is how circd gives every job its
// own flight-deck trace. Overriding the registry on a derived Checker is
// not supported; attach it to the root Checker.
func (c *Checker) Derive(opts ...Option) *Checker {
	d := *c
	for _, o := range opts {
		o(&d)
	}
	if d.parallelism <= 0 {
		d.parallelism = runtime.GOMAXPROCS(0)
	}
	if d.tracer != c.tracer {
		d.solver = c.solver.WithTracer(d.tracer)
	}
	return &d
}

// SMTStats returns a snapshot of the shared SMT cache counters: hits,
// misses, and underlying solver work.
func (c *Checker) SMTStats() smt.CacheStats { return c.solver.Stats() }

// Metrics returns the Checker's live metrics registry, aggregating the
// counters of every analysis run through it. Snapshot it with
// MetricsRegistry.Snapshot, or publish it with PublishExpvar; per-analysis
// snapshots are embedded in each Report.
func (c *Checker) Metrics() *MetricsRegistry { return c.registry }

// options assembles the internal engine options for one analysis.
func (c *Checker) options(logger *slog.Logger, parallelism int) icirc.Options {
	return icirc.Options{
		K:           c.k,
		Omega:       c.omega,
		Logger:      logger,
		Metrics:     c.registry,
		MaxRounds:   c.maxRounds,
		MaxInner:    c.maxInner,
		MaxStates:   c.maxStates,
		Parallelism: parallelism,
		Sched:       c.sched,
	}
}

// CompactArena sweeps the process-wide expression-interning arena,
// tombstoning every formula not reachable from the Checker's live
// roots — the certificate store's context models, predicate sets, and
// trace formulas — and then drops SMT verdict-cache entries and
// learned-clause pools referring to swept formulas. Live IDs keep their
// identity; dead IDs are never reused.
//
// It must only be called with no analyses in flight on this Checker (or
// any Checker derived from it — they share the solver and store): the
// daemon compacts between jobs. It returns the arena statistics of the
// sweep.
func (c *Checker) CompactArena() ArenaStats {
	var roots []expr.ID
	if c.store != nil {
		roots = c.store.AppendExprIDs(roots)
	}
	expr.Compact(roots)
	c.solver.SweepDead()
	return CurrentArenaStats()
}

// ArenaStats reports the process-wide expression arena: live node and
// byte estimates, their high-water marks, and the number of compaction
// passes performed.
type ArenaStats = expr.ArenaStats

// CurrentArenaStats returns the arena statistics without compacting.
func CurrentArenaStats() ArenaStats { return expr.Stats() }

// prepareUnit runs the static pre-analysis for one (thread CFA,
// variable) unit: the triage rules first, then cone-of-influence
// slicing for the survivors, then predicate seeding from the flag-guard
// analysis's facts. It returns either a discharged Safe report (the
// engine need not run) or the CFA CIRC should analyse — the slice when
// slicing is on and the original otherwise — plus the seed predicates
// for the engine's initial abstraction (nil when seeding is off or the
// guard analysis found no candidate flags). Journal events and
// telemetry counters are emitted through s and reg; discharge reasons
// ride as a label on the triage.discharged{reason=...} counter family,
// which /metrics exposes as circ_triage_discharged_total{reason=...}.
func (c *Checker) prepareUnit(g *cfa.CFA, variable string, s *journal.Stream, reg *telemetry.Registry) (*cfa.CFA, []expr.Expr, *Report) {
	if c.triage {
		if d, ok := dataflow.Triage(g, variable); ok {
			unit := telemetry.ChildOf(reg)
			unit.Counter("triage.discharged").Inc()
			unit.Counter(`triage.discharged{reason="` + d.Reason + `"}`).Inc()
			s.Emit(journal.Event{Type: journal.EvTriageVerdict, Verdict: "safe", Reason: d.Reason, Detail: d.Detail})
			s.Emit(journal.Event{Type: journal.EvVerdict, Verdict: "safe", Reason: "triage: " + d.Reason})
			return nil, nil, &Report{
				Verdict: Safe,
				Triage:  d.Reason,
				Metrics: unit.Snapshot(),
			}
		}
	}
	analysed := g
	if c.slicing {
		sliced, stats := dataflow.Slice(g, variable)
		reg.Counter("slice.applied").Inc()
		reg.Counter("slice.edges_removed").Add(int64(stats.EdgesBefore - stats.EdgesAfter))
		reg.Counter("slice.locs_removed").Add(int64(stats.LocsBefore - stats.LocsAfter))
		reg.Counter("slice.assigns_skipped").Add(int64(stats.AssignsSkipped))
		reg.Counter("slice.assumes_weakened").Add(int64(stats.AssumesWeakened))
		s.Emit(journal.Event{
			Type:        journal.EvCFASliced,
			LocsBefore:  stats.LocsBefore,
			LocsAfter:   stats.LocsAfter,
			EdgesBefore: stats.EdgesBefore,
			EdgesAfter:  stats.EdgesAfter,
		})
		analysed = sliced
	}
	var seeds []expr.Expr
	if c.seedPreds {
		for _, sp := range dataflow.FlagGuard(analysed).SeedPredicates() {
			seeds = append(seeds, sp.Pred)
			reg.Counter("seed.predicates").Inc()
			s.Emit(journal.Event{Type: journal.EvPredicateSeeded, Pred: sp.Pred.String(), Reason: sp.Origin})
		}
	}
	return analysed, seeds, nil
}

// Check runs CIRC on the named thread of p (empty: the single thread),
// verifying that arbitrarily many copies running concurrently are free of
// data races on variable. The context cancels the analysis between
// iterations and reachability levels.
//
// Unless disabled with WithTriage/WithSlicing, a static triage stage
// runs first (discharged pairs return a Report with Triage set and never
// touch the solver) and surviving pairs analyse a cone-of-influence
// slice of the thread CFA.
func (c *Checker) Check(ctx context.Context, p *Program, thread, variable string) (*Report, error) {
	if variable == "" {
		return nil, fmt.Errorf("circ: %w", ErrNoVariable)
	}
	if err := p.checkThread(thread); err != nil {
		return nil, err
	}
	g, err := p.CFA(thread)
	if err != nil {
		return nil, err
	}
	if c.tracer != nil {
		ctx = telemetry.NewContext(ctx, c.tracer)
	}
	var s *journal.Stream
	if c.journal != nil {
		s = c.journal.Stream(journalCase(thread, variable))
	}
	return c.checkUnit(ctx, g, variable, s, c.options(c.logger, c.parallelism))
}

// journalCase names the journal case of one (thread, variable) analysis;
// the empty thread (single-thread programs) contributes no prefix.
func journalCase(thread, variable string) string {
	if thread == "" {
		return variable
	}
	return thread + "/" + variable
}

// CheckSource is Check for unparsed source text.
func (c *Checker) CheckSource(ctx context.Context, src, thread, variable string) (*Report, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return c.Check(ctx, p, thread, variable)
}

// VerifyCertificate independently re-checks a Safe verdict's evidence via
// the paper's Algorithm Check (Section 4.2): it discharges the assume
// obligation (no abstract race under the given context model and
// predicates) and the guarantee obligation (the context simulates the
// thread's behaviour) without running any inference. It returns nil when
// the certificate is valid, a *CertificateError naming the failed
// obligation when it is not, and any other error when the check could not
// run.
func (c *Checker) VerifyCertificate(ctx context.Context, p *Program, thread, variable string, rep *Report) error {
	if variable == "" {
		return fmt.Errorf("circ: %w", ErrNoVariable)
	}
	if err := p.checkThread(thread); err != nil {
		return err
	}
	if rep.Triage != "" {
		return fmt.Errorf("circ: triage-discharged report (%s) carries no certificate to verify", rep.Triage)
	}
	if rep.FinalACFA == nil {
		return fmt.Errorf("circ: report carries no context model (verdict %v)", rep.Verdict)
	}
	g, err := p.CFA(thread)
	if err != nil {
		return err
	}
	// The certificate's obligations were discharged against the CFA the
	// inference saw; re-create the same slice when slicing is on.
	if c.slicing {
		g, _ = dataflow.Slice(g, variable)
	}
	if c.tracer != nil {
		ctx = telemetry.NewContext(ctx, c.tracer)
	}
	return icirc.VerifyCertificate(ctx, g, variable, rep.FinalACFA, rep.Preds, rep.K, c.solver)
}

// Check is the one-shot entry point: it parses src, builds a Checker
// from opts, and runs CIRC on the target selected with WithTarget (or on
// the single thread and sole global when the program declares exactly
// one of each and no target was given). It is the documented way to run
// a single analysis:
//
//	rep, err := circ.Check(ctx, src, circ.WithTarget("Worker", "x"), circ.WithOmega(true))
//
// For repeated analyses, batches, or a long-running service, construct a
// Checker once with NewChecker (or derive per-request variants with
// Checker.Derive) so the SMT cache, metrics, and certificate store are
// shared across calls; CheckAllRaces is the whole-program batch
// complement.
func Check(ctx context.Context, src string, opts ...Option) (*Report, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := NewChecker(opts...)
	thread, variable := c.thread, c.variable
	if variable == "" && len(p.ast.Globals) == 1 {
		variable = p.ast.Globals[0].Name
	}
	return c.Check(ctx, p, thread, variable)
}

// CheckOptions configures the deprecated one-shot entry points. It is a
// thin shim: Options translates it into the equivalent functional
// options, and every deprecated entry point is a wrapper over the
// Checker API.
//
// Deprecated: use Check (one-shot), or NewChecker with functional
// options (WithTarget, WithK, WithOmega, WithLog, WithParallelism,
// WithBudgets) and the Checker methods; they add context cancellation,
// frontier-parallel analysis, and a shared SMT cache across calls.
type CheckOptions struct {
	// Variable is the global to check for races (required).
	Variable string
	// Thread selects the thread template; may be empty for single-thread
	// programs. The checker verifies unboundedly many copies of it.
	Thread string
	// K is the initial counter parameter (default 1).
	K int
	// Omega selects the omega-CIRC variant (Section 5): exact-k
	// reachability plus the good-location generalisation check.
	Omega bool
	// Log, when non-nil, receives a narration of every iteration.
	Log io.Writer
	// MaxRounds/MaxInner/MaxStates bound the analysis (defaults apply).
	MaxRounds, MaxInner, MaxStates int
}

// Options translates the legacy struct into the equivalent functional
// options (sequential, fresh SMT cache — the historical behaviour).
func (o CheckOptions) Options() []Option {
	opts := []Option{
		WithTarget(o.Thread, o.Variable),
		WithK(o.K),
		WithOmega(o.Omega),
		WithParallelism(1),
		WithBudgets(o.MaxRounds, o.MaxInner, o.MaxStates),
	}
	if o.Log != nil {
		opts = append(opts, WithLog(o.Log))
	}
	return opts
}

// checker builds the equivalent Checker for the deprecated options.
func (o CheckOptions) checker() *Checker { return NewChecker(o.Options()...) }

// CheckRace runs CIRC on the program denoted by src: it verifies that
// arbitrarily many copies of the thread running concurrently are free of
// data races on the given variable, or returns a genuine interleaved race
// trace.
//
// Deprecated: use Check with WithTarget. CheckRace remains as a thin
// compatibility wrapper.
func CheckRace(src string, opts CheckOptions) (*Report, error) {
	return Check(context.Background(), src, opts.Options()...)
}

// CheckProgram is CheckRace for an already-parsed program.
//
// Deprecated: use NewChecker(...).Check, which adds context cancellation
// and parallel analysis. CheckProgram remains as a thin compatibility
// wrapper.
func CheckProgram(p *Program, opts CheckOptions) (*Report, error) {
	return opts.checker().Check(context.Background(), p, opts.Thread, opts.Variable)
}

// VerifyCertificate re-checks a Safe verdict's evidence; see
// Checker.VerifyCertificate. It returns nil for a valid certificate and a
// *CertificateError naming the failed obligation otherwise.
//
// Deprecated: use Checker.VerifyCertificate, which shares the Checker's
// SMT cache with the run that produced the certificate.
func VerifyCertificate(ctx context.Context, p *Program, opts CheckOptions, rep *Report) error {
	return opts.checker().VerifyCertificate(ctx, p, opts.Thread, opts.Variable, rep)
}

// LocksetReport is the Eraser-style baseline's output.
type LocksetReport = lockset.Report

// Lockset runs the Eraser-style dynamic lockset detector on n concurrent
// copies of the program's thread, over random schedules.
func Lockset(src string, thread string, n int) (*LocksetReport, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := p.CFA(thread)
	if err != nil {
		return nil, err
	}
	return lockset.Analyze(explicit.NewSymmetric(c, n), lockset.Options{})
}

// FlowcheckReport is the nesC flow-based baseline's output.
type FlowcheckReport = flowcheck.Report

// Flowcheck runs the nesC compiler's flow-based static race analysis on
// the program's thread.
func Flowcheck(src string, thread string) (*FlowcheckReport, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := p.CFA(thread)
	if err != nil {
		return nil, err
	}
	return flowcheck.Analyze([]*cfa.CFA{c}), nil
}

// FlagguardReport is the static flag-guard baseline's output: the
// triage pipeline — the syntactic discharge rules plus the flag-guard
// must-analysis — run as a standalone analyzer, without the inference
// engine behind it.
type FlagguardReport struct {
	// Discharged maps every global proved race-free to the rule that
	// discharged it ("thread-local", "read-only", "atomic-covered",
	// "flag-guarded"); Details carries each rule's one-line evidence.
	Discharged map[string]string
	// Details renders the discharge evidence per global.
	Details map[string]string
}

// Racy reports whether the static pipeline failed to prove v race-free
// — the baseline warns on v. Unlike flowcheck and lockset, a warning
// here is only incompleteness, never unsoundness: discharges are proofs.
func (r *FlagguardReport) Racy(v string) bool {
	_, ok := r.Discharged[v]
	return !ok
}

// Flagguard runs the static triage pipeline (including the flag-guard
// must-analysis) on the program's thread as a baseline analyzer: every
// global it discharges is proved race-free without SMT or inference,
// and every residue global is a warning the CIRC engine would have to
// resolve.
func Flagguard(src string, thread string) (*FlagguardReport, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := p.CFA(thread)
	if err != nil {
		return nil, err
	}
	rep := &FlagguardReport{
		Discharged: make(map[string]string),
		Details:    make(map[string]string),
	}
	for _, g := range p.Globals() {
		if d, ok := dataflow.Triage(c, g); ok {
			rep.Discharged[g] = d.Reason
			rep.Details[g] = d.Detail
		}
	}
	return rep, nil
}

// ExplicitResult is the bounded explicit-state checker's output.
type ExplicitResult = explicit.Result

// ExplicitCheck exhaustively model-checks n concurrent copies of the
// thread for races on variable, under bounded values and havoc domains.
func ExplicitCheck(src string, thread string, n int, variable string) (*ExplicitResult, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := p.CFA(thread)
	if err != nil {
		return nil, err
	}
	return explicit.NewSymmetric(c, n).CheckRaces(variable, explicit.Options{})
}

// ParamResult is the Appendix A checker's output.
type ParamResult = param.Result

// ParamCheck runs the counter-guided parameterized verification of
// Appendix A on a finite-state thread (no locals) for races on variable.
func ParamCheck(src string, thread string, variable string) (*ParamResult, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := p.CFA(thread)
	if err != nil {
		return nil, err
	}
	return param.Check(c, variable, param.Options{})
}
