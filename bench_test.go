// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// measured-vs-paper comparisons):
//
//	BenchmarkTable1/*                     — Table 1 rows (preds, ACFA size, time)
//	BenchmarkFigure1_TestAndSet           — the worked example end to end
//	BenchmarkFigure2to4_IterationARGs     — per-iteration ARG/ACFA construction
//	BenchmarkFigure5_TraceFormula         — counterexample analysis
//	BenchmarkSection6_GenuineRaces        — the two real races + fixed proofs
//	BenchmarkBaselineComparison           — CIRC vs lockset vs flow-based
//	BenchmarkAppendixA_CounterRefinement  — Algorithm 6 on finite-state threads
package circ

import (
	"context"
	"fmt"
	"testing"

	"circ/internal/acfa"
	"circ/internal/benchapps"
	"circ/internal/bisim"
	"circ/internal/cfa"
	icirc "circ/internal/circ"
	"circ/internal/explicit"
	"circ/internal/flowcheck"
	"circ/internal/lang"
	"circ/internal/lockset"
	"circ/internal/param"
	"circ/internal/pred"
	"circ/internal/reach"
	"circ/internal/refine"
	"circ/internal/smt"
)

const figure1Src = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

func mustCFA(b *testing.B, src string) *cfa.CFA {
	b.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTable1 regenerates every row of Table 1: the full CIRC run per
// protected variable. Reported metrics mirror the paper's columns.
func BenchmarkTable1(b *testing.B) {
	for _, app := range benchapps.Table1() {
		app := app
		b.Run(app.Name+"/"+app.Variable, func(b *testing.B) {
			_, c, err := app.Build()
			if err != nil {
				b.Fatal(err)
			}
			var preds, acfaLocs int
			for i := 0; i < b.N; i++ {
				rep, err := icirc.Check(context.Background(), c, app.Variable, icirc.Options{}, smt.NewChecker())
				if err != nil {
					b.Fatal(err)
				}
				if rep.Verdict != icirc.Safe {
					b.Fatalf("verdict = %v, want safe", rep.Verdict)
				}
				preds = len(rep.Preds)
				acfaLocs = rep.FinalACFA.NumLocs()
			}
			b.ReportMetric(float64(preds), "preds")
			b.ReportMetric(float64(acfaLocs), "acfa-locs")
			b.ReportMetric(float64(app.PaperPreds), "paper-preds")
			b.ReportMetric(float64(app.PaperACFA), "paper-acfa-locs")
		})
	}
}

// BenchmarkFigure1_TestAndSet runs the complete worked example: parsing,
// CFA construction (Figure 1b), CIRC inference, final ACFA (Figure 1c).
func BenchmarkFigure1_TestAndSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Check(context.Background(), figure1Src, WithTarget("", "x"))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Verdict != Safe {
			b.Fatalf("verdict = %v, want safe", rep.Verdict)
		}
	}
}

// BenchmarkFigure2to4_IterationARGs isolates one inner iteration of the
// example: abstract reachability under the empty context plus Collapse to
// the minimised ACFA (the G1 -> A1 step of Figure 2).
func BenchmarkFigure2to4_IterationARGs(b *testing.B) {
	c := mustCFA(b, figure1Src)
	for i := 0; i < b.N; i++ {
		chk := smt.NewChecker()
		set := pred.NewSet()
		abs := pred.NewAbstractor(chk, set)
		res, err := reach.ReachAndBuild(context.Background(), c, acfa.Empty(set), abs, "x", reach.Options{K: 1})
		if err != nil {
			b.Fatal(err)
		}
		a1, _ := bisim.Collapse(context.Background(), res.ARG, chk, nil)
		if a1.NumLocs() == 0 {
			b.Fatal("empty quotient")
		}
	}
}

// BenchmarkFigure5_TraceFormula isolates counterexample analysis: find an
// abstract race under the iteration-1 context and refine it (concretise,
// build the Figure 5 trace formula, mine predicates).
func BenchmarkFigure5_TraceFormula(b *testing.B) {
	c := mustCFA(b, figure1Src)
	chk := smt.NewChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	res1, err := reach.ReachAndBuild(context.Background(), c, acfa.Empty(set), abs, "x", reach.Options{K: 1})
	if err != nil {
		b.Fatal(err)
	}
	a1, mu := bisim.Collapse(context.Background(), res1.ARG, chk, nil)
	res2, err := reach.ReachAndBuild(context.Background(), c, a1, abs, "x", reach.Options{K: 1})
	if err != nil {
		b.Fatal(err)
	}
	if len(res2.Races) == 0 {
		b.Fatal("expected an abstract race under the weak context")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := refine.Refine(refine.Input{
			C: c, A: a1, ARG: res1.ARG, Mu: mu,
			Trace: res2.Races[0], RaceVar: "x", K: 1, Chk: chk,
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Kind != refine.NewPreds {
			b.Fatalf("refine outcome = %v, want new-predicates", out.Kind)
		}
	}
}

// BenchmarkSection6_GenuineRaces finds both genuine races of Section 6 and
// verifies their fixed counterparts.
func BenchmarkSection6_GenuineRaces(b *testing.B) {
	for _, app := range benchapps.Section6Races() {
		app := app
		b.Run(app.Name+"/"+app.Variable, func(b *testing.B) {
			_, c, err := app.Build()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				rep, err := icirc.Check(context.Background(), c, app.Variable, icirc.Options{}, smt.NewChecker())
				if err != nil {
					b.Fatal(err)
				}
				if rep.Verdict != icirc.Unsafe {
					b.Fatalf("verdict = %v, want unsafe", rep.Verdict)
				}
			}
		})
	}
}

// BenchmarkBaselineComparison reproduces the Section 1 comparison: the
// lockset and flow-based baselines against CIRC on the idiom suite.
func BenchmarkBaselineComparison(b *testing.B) {
	suite := benchapps.FalsePositiveSuite()
	for _, app := range suite {
		app := app
		_, c, err := app.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.Run("circ/"+app.Idiom, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := icirc.Check(context.Background(), c, app.Variable, icirc.Options{}, smt.NewChecker())
				if err != nil {
					b.Fatal(err)
				}
				want := icirc.Safe
				if !app.ExpectSafe {
					want = icirc.Unsafe
				}
				if rep.Verdict != want {
					b.Fatalf("verdict = %v, want %v", rep.Verdict, want)
				}
			}
		})
		b.Run("lockset/"+app.Idiom, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := lockset.Analyze(explicit.NewSymmetric(c, 3), lockset.Options{})
				if err != nil {
					b.Fatal(err)
				}
				// Lockset warns on every idiom in the suite (false
				// positives on the safe ones).
				if !rep.Racy(app.Variable) {
					b.Fatalf("lockset unexpectedly silent on %s", app.Variable)
				}
			}
		})
		b.Run("flowcheck/"+app.Idiom, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := flowcheck.Analyze([]*cfa.CFA{c})
				if !rep.Racy(app.Variable) {
					b.Fatalf("flowcheck unexpectedly silent on %s", app.Variable)
				}
			}
		})
	}
}

// BenchmarkAppendixA_CounterRefinement runs Algorithm 6 on finite-state
// threads: a safe atomic counter and a racy unprotected one.
func BenchmarkAppendixA_CounterRefinement(b *testing.B) {
	cases := []struct {
		name string
		src  string
		want param.Verdict
	}{
		{
			name: "atomic-counter-safe",
			src: `
global int x;
thread T {
  while (1) {
    atomic { x = x + 1; }
  }
}
`,
			want: param.Safe,
		},
		{
			name: "unprotected-racy",
			src: `
global int x;
thread T {
  while (1) {
    x = x + 1;
  }
}
`,
			want: param.Unsafe,
		},
		{
			name: "flag-protocol-safe",
			src: `
global int x;
global int busy;
thread T {
  while (1) {
    atomic {
      if (busy == 0) {
        busy = 1;
        x = x + 1;
      }
    }
    atomic { busy = 0; }
  }
}
`,
			want: param.Safe,
		},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			c := mustCFA(b, tc.src)
			var k int
			for i := 0; i < b.N; i++ {
				res, err := param.Check(c, "x", param.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != tc.want {
					b.Fatalf("verdict = %v, want %v", res.Verdict, tc.want)
				}
				k = res.K
			}
			b.ReportMetric(float64(k), "final-k")
		})
	}
}

// BenchmarkOmegaCIRC measures the Section 5 variant on the worked example.
func BenchmarkOmegaCIRC(b *testing.B) {
	c := mustCFA(b, figure1Src)
	for i := 0; i < b.N; i++ {
		rep, err := icirc.Check(context.Background(), c, "x", icirc.Options{Omega: true}, smt.NewChecker())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Verdict != icirc.Safe {
			b.Fatalf("verdict = %v, want safe", rep.Verdict)
		}
	}
}

// BenchmarkExplicitCrossValidation measures the bounded explicit-state
// checker agreeing with CIRC on 2- and 3-thread instances of the example.
func BenchmarkExplicitCrossValidation(b *testing.B) {
	c := mustCFA(b, figure1Src)
	for _, n := range []int{2, 3} {
		n := n
		b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				res, err := explicit.NewSymmetric(c, n).CheckRaces("x", explicit.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Race {
					b.Fatal("explicit checker found a race in the safe example")
				}
				states = res.NumStates
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkAblation_MineStrategy compares predicate-discovery strategies
// (unsat-core atoms, weakest-precondition propagation, their union) on the
// worked example: rounds to converge and predicates discovered.
func BenchmarkAblation_MineStrategy(b *testing.B) {
	strategies := []struct {
		name string
		s    refine.MineStrategy
	}{
		{"atoms", refine.MineAtoms},
		{"wp", refine.MineWP},
		{"both", refine.MineBoth},
	}
	c := mustCFA(b, figure1Src)
	for _, st := range strategies {
		st := st
		b.Run(st.name, func(b *testing.B) {
			var rounds, preds int
			for i := 0; i < b.N; i++ {
				rep, err := icirc.Check(context.Background(), c, "x", icirc.Options{MineStrategy: st.s}, smt.NewChecker())
				if err != nil {
					b.Fatal(err)
				}
				if rep.Verdict != icirc.Safe {
					b.Fatalf("strategy %s: verdict %v (%s)", st.name, rep.Verdict, rep.Reason)
				}
				rounds, preds = rep.Rounds, len(rep.Preds)
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(preds), "preds")
		})
	}
}

// BenchmarkAblation_NoMinimization measures the cost of skipping the weak
// bisimulation quotient: the context model is the raw projected ARG, so
// reachability runs over a much larger automaton.
func BenchmarkAblation_NoMinimization(b *testing.B) {
	c := mustCFA(b, figure1Src)
	for _, noMin := range []bool{false, true} {
		name := "with-minimization"
		if noMin {
			name = "without-minimization"
		}
		noMin := noMin
		b.Run(name, func(b *testing.B) {
			var acfaLocs int
			converged := 0.0
			for i := 0; i < b.N; i++ {
				rep, err := icirc.Check(context.Background(), c, "x", icirc.Options{NoMinimize: noMin, MaxStates: 50000}, smt.NewChecker())
				if err != nil {
					b.Fatal(err)
				}
				switch rep.Verdict {
				case icirc.Safe:
					converged = 1
					if rep.FinalACFA != nil {
						acfaLocs = rep.FinalACFA.NumLocs()
					}
				case icirc.Unknown:
					// Expected without minimisation: the raw-ARG context
					// blows the state budget. That *is* the ablation's
					// finding — minimisation is what keeps CIRC tractable.
					converged = 0
				default:
					b.Fatalf("verdict %v (%s)", rep.Verdict, rep.Reason)
				}
			}
			b.ReportMetric(converged, "converged")
			b.ReportMetric(float64(acfaLocs), "acfa-locs")
		})
	}
}

// BenchmarkAblation_SingleRaceTrace reproduces the paper's
// abort-at-first-race behaviour: on the example it still converges (the
// first trace happens to refine), so this measures only the cost delta of
// collecting all traces.
func BenchmarkAblation_SingleRaceTrace(b *testing.B) {
	c := mustCFA(b, figure1Src)
	for _, maxRaces := range []int{1, 0} {
		name := "all-traces"
		if maxRaces == 1 {
			name = "first-trace-only"
		}
		maxRaces := maxRaces
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := icirc.Check(context.Background(), c, "x", icirc.Options{MaxRaces: maxRaces}, smt.NewChecker())
				if err != nil {
					b.Fatal(err)
				}
				if rep.Verdict != icirc.Safe {
					b.Fatalf("verdict %v (%s)", rep.Verdict, rep.Reason)
				}
			}
		})
	}
}

// BenchmarkSMTCacheEffect measures the checker's memoisation: the same
// query stream with a shared checker vs a fresh checker per round.
func BenchmarkSMTCacheEffect(b *testing.B) {
	c := mustCFA(b, figure1Src)
	b.Run("shared-checker", func(b *testing.B) {
		chk := smt.NewChecker()
		for i := 0; i < b.N; i++ {
			if rep, err := icirc.Check(context.Background(), c, "x", icirc.Options{}, chk); err != nil || rep.Verdict != icirc.Safe {
				b.Fatalf("%v %v", rep.Verdict, err)
			}
		}
		b.ReportMetric(float64(chk.Stats.CacheHits), "cache-hits")
	})
	b.Run("fresh-checker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rep, err := icirc.Check(context.Background(), c, "x", icirc.Options{}, smt.NewChecker()); err != nil || rep.Verdict != icirc.Safe {
				b.Fatalf("%v %v", rep.Verdict, err)
			}
		}
	})
}
