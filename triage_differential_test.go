package circ

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"circ/internal/benchapps"
	"circ/internal/explicit"
	"circ/internal/journal"
)

// The static triage and slicing stages are sound over-approximations, so
// turning them on must never change a Safe or Unsafe verdict. The only
// drift they are allowed to cause is upgrading an Unknown (CIRC ran out
// of refinement budget on the full CFA) to Safe: triage discharges the
// pair outright, or CIRC converges on the smaller sliced CFA. These
// differential tests run every example program — and, outside -short,
// the benchapps suite — with the stages on and off and enforce exactly
// that contract, both on the batch reports and on the journal's verdict
// events.

// diffRun batch-checks src once and returns the report plus the verdict
// recorded by each case's journal verdict events.
func diffRun(t *testing.T, src string, opts ...Option) (*BatchReport, map[string][]string) {
	t.Helper()
	j := NewJournal()
	b, err := CheckAllRaces(context.Background(), src, append(opts, WithJournal(j))...)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[string][]string{}
	for _, e := range j.Events() {
		if e.Type == journal.EvVerdict {
			verdicts[e.Case] = append(verdicts[e.Case], e.Verdict)
		}
	}
	return b, verdicts
}

// assertDifferential checks the on-vs-off contract for one program.
func assertDifferential(t *testing.T, name, src string) {
	t.Helper()
	// The off leg is the pure engine: no triage, no slicing, and no
	// seeded initial predicates, so it is the reference CIRC behaviour
	// every static-stage shortcut is judged against.
	off, offVerdicts := diffRun(t, src, WithTriage(false), WithSlicing(false), WithSeedPredicates(false))
	on, onVerdicts := diffRun(t, src)
	if len(on.Results) != len(off.Results) {
		t.Fatalf("%s: %d targets with triage on, %d with it off", name, len(on.Results), len(off.Results))
	}
	for i, ro := range off.Results {
		rn := on.Results[i]
		if rn.Target != ro.Target {
			t.Fatalf("%s: target order differs: %s vs %s", name, rn.Target, ro.Target)
		}
		if (rn.Err != nil) != (ro.Err != nil) {
			t.Errorf("%s %s: err=%v with triage on, err=%v with it off", name, ro.Target, rn.Err, ro.Err)
			continue
		}
		if ro.Err != nil {
			continue
		}
		want, got := ro.Report.Verdict, rn.Report.Verdict
		if !verdictCompatible(want, got) {
			t.Errorf("%s %s: verdict %v with triage on, %v with it off", name, ro.Target, got, want)
		}
	}
	// The journal must tell the same story: one verdict event per case,
	// with the same verdict modulo the allowed Unknown→Safe upgrade.
	for c, wants := range offVerdicts {
		gots := onVerdicts[c]
		if len(gots) != len(wants) {
			t.Errorf("%s case %s: %d journal verdict events with triage on, %d with it off", name, c, len(gots), len(wants))
			continue
		}
		for i := range wants {
			if !verdictStringCompatible(wants[i], gots[i]) {
				t.Errorf("%s case %s: journal verdict %q with triage on, %q with it off", name, c, gots[i], wants[i])
			}
		}
	}
	for c := range onVerdicts {
		if _, ok := offVerdicts[c]; !ok {
			t.Errorf("%s: case %s has journal verdict events only with triage on", name, c)
		}
	}
}

// verdictCompatible reports whether the triage-on verdict got is an
// acceptable outcome given the triage-off verdict want: identical, or a
// sound Unknown→Safe upgrade.
func verdictCompatible(want, got Verdict) bool {
	if want == got {
		return true
	}
	return want == Unknown && got == Safe
}

func verdictStringCompatible(want, got string) bool {
	if want == got {
		return true
	}
	return want == "unknown" && got == "safe"
}

// TestDifferentialExamples runs every shipped example program with the
// static stages on and off. The examples have no Unknown verdicts, so
// here the contract degenerates to byte-identical verdicts.
func TestDifferentialExamples(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("examples", "programs"))
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".mn") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".mn")
		src, err := os.ReadFile(filepath.Join("examples", "programs", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		ran++
		t.Run(name, func(t *testing.T) {
			assertDifferential(t, name, string(src))
		})
	}
	if ran == 0 {
		t.Fatal("no example programs found")
	}
}

// TestDischargeSoundness re-verifies every pair the triage stage
// discharges on the benchapps suite two independent ways: the exhaustive
// explicit checker on the 2-thread instance must find no race, and the
// full CIRC engine (triage, slicing, and seeding all off) must not prove
// the pair Unsafe. An engine Unknown is acceptable — a discharge is then
// the allowed Unknown→Safe upgrade — but a racy discharged pair in
// either oracle is an unsound triage rule.
func TestDischargeSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("discharge soundness sweep is slow; skipped with -short")
	}
	seen := map[string]bool{}
	discharged := 0
	for _, set := range [][]benchapps.App{benchapps.Table1(), benchapps.Section6Races(), benchapps.FalsePositiveSuite()} {
		for _, app := range set {
			if seen[app.Name] {
				continue
			}
			seen[app.Name] = true
			fg, err := Flagguard(app.Source, "")
			if err != nil {
				t.Fatalf("%s: %v", app.Name, err)
			}
			_, c, err := app.Build()
			if err != nil {
				t.Fatalf("%s: %v", app.Name, err)
			}
			for v, reason := range fg.Discharged {
				discharged++
				res, err := explicit.NewSymmetric(c, 2).CheckRaces(v, explicit.Options{})
				if err != nil {
					t.Fatalf("%s/%s: %v", app.Name, v, err)
				}
				if res.Race {
					t.Errorf("%s/%s: discharged by %q but the explicit 2-thread checker races:\n%v",
						app.Name, v, reason, res.Trace)
				}
				rep, err := Check(context.Background(), app.Source, WithTarget("", v),
					WithTriage(false), WithSlicing(false), WithSeedPredicates(false))
				if err != nil {
					t.Fatalf("%s/%s: %v", app.Name, v, err)
				}
				if rep.Verdict == Unsafe {
					t.Errorf("%s/%s: discharged by %q but the engine proves it Unsafe", app.Name, v, reason)
				}
			}
		}
	}
	if discharged == 0 {
		t.Fatal("triage discharged nothing on the benchapps suite; soundness sweep is vacuous")
	}
	t.Logf("re-verified %d discharged pairs", discharged)
}

// TestDifferentialBenchapps runs the Table 1 models, the Section 6 race
// findings, the false-positive suite, and the whole-application model
// through the same on/off differential. The appmodel leg is the one that
// exercises the Unknown→Safe upgrade path; it is also the slowest, so
// the whole test is skipped under -short.
func TestDifferentialBenchapps(t *testing.T) {
	if testing.Short() {
		t.Skip("benchapps differential is slow; skipped with -short")
	}
	seen := map[string]bool{}
	var apps []benchapps.App
	for _, set := range [][]benchapps.App{benchapps.Table1(), benchapps.Section6Races(), benchapps.FalsePositiveSuite()} {
		for _, app := range set {
			if seen[app.Name] {
				continue
			}
			seen[app.Name] = true
			apps = append(apps, app)
		}
	}
	for _, app := range apps {
		t.Run(app.Name, func(t *testing.T) {
			assertDifferential(t, app.Name, app.Source)
		})
	}
	t.Run("appmodel", func(t *testing.T) {
		assertDifferential(t, "appmodel", benchapps.AppModel)
	})
}
