package circ

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"circ/internal/benchapps"
)

// batchKey flattens a batch result into a comparable string: target,
// verdict, predicate count, k, and rounds per unit.
func batchKey(t *testing.T, b *BatchReport) string {
	t.Helper()
	var sb strings.Builder
	for _, r := range b.Results {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%s error=%v\n", r.Target, r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%s %s preds=%d k=%d rounds=%d\n",
			r.Target, r.Report.Verdict, len(r.Report.Preds), r.Report.K, r.Report.Rounds)
	}
	return sb.String()
}

// TestCheckAllRacesDeterministic: CheckAllRaces must produce identical
// verdicts, predicate counts, and round counts at parallelism 1 and
// GOMAXPROCS, on every example program shipped with the repo.
func TestCheckAllRacesDeterministic(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "programs", "*.mn"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := CheckAllRaces(context.Background(), string(src), WithParallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			par, err := CheckAllRaces(context.Background(), string(src), WithParallelism(runtime.GOMAXPROCS(0)))
			if err != nil {
				t.Fatal(err)
			}
			if ks, kp := batchKey(t, seq), batchKey(t, par); ks != kp {
				t.Fatalf("verdicts differ between parallelism 1 and %d:\n--- sequential\n%s--- parallel\n%s",
					runtime.GOMAXPROCS(0), ks, kp)
			}
			// Programs fully discharged by static triage never touch the
			// solver; only expect SMT work when some unit ran the engine.
			ranEngine := false
			for _, r := range par.Results {
				if r.Err == nil && r.Report.Triage == "" {
					ranEngine = true
				}
			}
			if ranEngine && par.SMT.Hits+par.SMT.Misses == 0 {
				t.Fatalf("batch ran no SMT queries")
			}
		})
	}
}

// TestCheckAllRacesBenchSuite runs the determinism check over the paper's
// benchmark models too (slow; skipped with -short).
func TestCheckAllRacesBenchSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-suite determinism sweep is slow")
	}
	seen := map[string]bool{}
	for _, app := range benchapps.Table1() {
		if seen[app.Name] {
			continue
		}
		seen[app.Name] = true
		app := app
		t.Run(app.Name, func(t *testing.T) {
			seq, err := CheckAllRaces(context.Background(), app.Source, WithParallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			par, err := CheckAllRaces(context.Background(), app.Source, WithParallelism(runtime.GOMAXPROCS(0)))
			if err != nil {
				t.Fatal(err)
			}
			if ks, kp := batchKey(t, seq), batchKey(t, par); ks != kp {
				t.Fatalf("verdicts differ:\n--- sequential\n%s--- parallel\n%s", ks, kp)
			}
		})
	}
}

// TestCheckerParallelMatchesSequential: a single-target Check (which uses
// frontier-parallel reachability) agrees with the sequential engine.
func TestCheckerParallelMatchesSequential(t *testing.T) {
	p, err := Parse(tasSrc)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewChecker(WithParallelism(1)).Check(context.Background(), p, "", "x")
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewChecker(WithParallelism(8)).Check(context.Background(), p, "", "x")
	if err != nil {
		t.Fatal(err)
	}
	if seq.Verdict != par.Verdict || len(seq.Preds) != len(par.Preds) || seq.Rounds != par.Rounds || seq.K != par.K {
		t.Fatalf("sequential %s (preds=%d k=%d rounds=%d) vs parallel %s (preds=%d k=%d rounds=%d)",
			seq.Verdict, len(seq.Preds), seq.K, seq.Rounds,
			par.Verdict, len(par.Preds), par.K, par.Rounds)
	}
}

// TestCheckCancellation: a cancelled context aborts mid-analysis with
// context.Canceled, both for a single check and a batch.
func TestCheckCancellation(t *testing.T) {
	p, err := Parse(tasSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Triage off: a statically discharged unit finishes before the engine
	// ever consults the context, which is not the path under test.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewChecker(WithTriage(false)).Check(ctx, p, "", "x"); !isCancelled(err) {
		t.Fatalf("pre-cancelled check: got %v, want context.Canceled", err)
	}
	b, err := NewChecker(WithTriage(false)).CheckAll(ctx, p)
	if !isCancelled(err) {
		t.Fatalf("pre-cancelled batch: got %v, want context.Canceled", err)
	}
	for _, r := range b.Results {
		if r.Err == nil {
			t.Fatalf("unit %s ran under a cancelled context", r.Target)
		}
	}
	// And a deadline that expires mid-run.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer dcancel()
	time.Sleep(time.Millisecond)
	if _, err := NewChecker(WithTriage(false)).Check(dctx, p, "", "x"); !isCancelled(err) {
		t.Fatalf("expired deadline: got %v", err)
	}
}

func isCancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// TestBatchReportHelpers: Racy/Unknowns/Summary on a mixed-result batch.
func TestBatchReportHelpers(t *testing.T) {
	src := `
global int x;
global int y;

thread T {
  while (1) {
    atomic { x = x + 1; }
    y = y + 1;
  }
}
`
	b, err := CheckAllRaces(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Results) != 2 {
		t.Fatalf("want 2 targets (T/x, T/y), got %d", len(b.Results))
	}
	racy := b.Racy()
	if len(racy) != 1 || racy[0].Variable != "y" {
		t.Fatalf("Racy() = %v", racy)
	}
	s := b.Summary()
	if !strings.Contains(s, "T/x") || !strings.Contains(s, "T/y") || !strings.Contains(s, "hit rate") {
		t.Fatalf("Summary missing targets or cache footer:\n%s", s)
	}
	if b.SMT.Hits+b.SMT.Misses == 0 {
		t.Fatalf("no SMT activity recorded")
	}
}

// TestReportSummary covers the three verdicts' one-liners.
func TestReportSummary(t *testing.T) {
	rep, err := Check(context.Background(), tasSrc, WithTarget("", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Summary(); !strings.HasPrefix(s, "safe:") {
		t.Fatalf("safe summary: %q", s)
	}
	rep, err = Check(context.Background(), `
global int x;
thread T { while (1) { x = x + 1; } }
`, WithTarget("", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Summary(); !strings.HasPrefix(s, "unsafe:") {
		t.Fatalf("unsafe summary: %q", s)
	}
	if s := (&Report{Reason: "budget"}).Summary(); !strings.Contains(s, "budget") {
		t.Fatalf("unknown summary: %q", s)
	}
}

// TestSMTCacheSharing: with one Checker, the second variable's analysis
// reuses SMT answers discharged for the first.
func TestSMTCacheSharing(t *testing.T) {
	// Triage off: the flag-guard rule discharges tasSrc without any SMT
	// work, and this test is about the solver cache.
	chk := NewChecker(WithParallelism(1), WithTriage(false))
	p, err := Parse(tasSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chk.Check(context.Background(), p, "", "x"); err != nil {
		t.Fatal(err)
	}
	first := chk.SMTStats()
	if _, err := chk.Check(context.Background(), p, "", "x"); err != nil {
		t.Fatal(err)
	}
	second := chk.SMTStats()
	// Identical re-analysis must be answered (almost) entirely from cache.
	newMisses := second.Misses - first.Misses
	newHits := second.Hits - first.Hits
	if newHits == 0 || newMisses > newHits/10 {
		t.Fatalf("re-analysis not served from cache: +%d hits, +%d misses", newHits, newMisses)
	}
}

// TestDeprecatedWrappersStillWork: the legacy entry points behave as
// before (sequential, fresh cache) and agree with the new API.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	old, err := CheckRace(tasSrc, CheckOptions{Variable: "x"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(tasSrc)
	if err != nil {
		t.Fatal(err)
	}
	now, err := NewChecker().Check(context.Background(), p, "", "x")
	if err != nil {
		t.Fatal(err)
	}
	if old.Verdict != now.Verdict || len(old.Preds) != len(now.Preds) {
		t.Fatalf("wrapper %s/%d preds vs checker %s/%d preds",
			old.Verdict, len(old.Preds), now.Verdict, len(now.Preds))
	}
}
