// Command circd runs the CIRC race checker as a long-running HTTP
// daemon speaking the versioned api.v1 protocol (see circ/api/v1).
//
// Usage:
//
//	circd [-addr :8723] [-jobs N] [-parallel N] [-job-timeout 5m]
//	      [-drain-timeout 30s] [-store-max-entries N] [-k N] [-omega]
//	      [-sched steal|level] [-compact-arena] [-triage on|off] [-slice on|off]
//	      [-smt-slowlog 100ms]
//
// One process holds the hash-consing arena, the shared SMT verdict
// cache, and the content-addressed certificate store across requests, so
// re-submitting an unchanged program re-establishes every verdict from
// stored certificates instead of re-running context inference.
// -store-max-entries bounds the certificate store with LRU eviction
// (0, the default, keeps it unbounded).
//
//	curl -s localhost:8723/v1/check -d '{"program": "..."}'   # 202 + job id
//	curl -s localhost:8723/v1/jobs/j000001                    # poll
//	curl -s localhost:8723/v1/jobs                            # completed-job ring
//	curl -s localhost:8723/v1/jobs/j000001/events             # live SSE journal
//	curl -s localhost:8723/v1/jobs/j000001/trace              # Chrome trace_event JSON
//	curl -s localhost:8723/v1/stats                           # cache telemetry
//	curl -s localhost:8723/debug/circ/slowlog                 # SMT slow-query log
//	curl -s localhost:8723/metrics                            # Prometheus exposition
//	curl -s localhost:8723/debug/circ/ops                     # HTML ops dashboard
//
// On SIGINT/SIGTERM the daemon drains: new submissions are rejected with
// 503 while in-flight and queued jobs run to completion (bounded by
// -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"circ"
	"circ/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// onoff is a boolean flag.Value accepting the on/off spellings, matching
// the circ CLI's -triage/-slice flags.
type onoff bool

func (o *onoff) String() string {
	if o == nil || bool(*o) {
		return "on"
	}
	return "off"
}

func (o *onoff) Set(s string) error {
	switch strings.ToLower(s) {
	case "on", "true", "1", "t", "yes":
		*o = true
	case "off", "false", "0", "f", "no":
		*o = false
	default:
		return fmt.Errorf("invalid value %q (want on or off)", s)
	}
	return nil
}

func (o *onoff) IsBoolFlag() bool { return true }

func run(args []string) int {
	fs := flag.NewFlagSet("circd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8723", "listen address")
		jobs         = fs.Int("jobs", 2, "jobs running concurrently; further submissions queue")
		parallel     = fs.Int("parallel", 0, "default per-job analysis worker pool size (0: GOMAXPROCS)")
		jobTimeout   = fs.Duration("job-timeout", 5*time.Minute, "default per-job wall-clock budget")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		storeMax     = fs.Int("store-max-entries", 0, "certificate store LRU bound (0: unbounded)")
		k            = fs.Int("k", 1, "default initial counter parameter")
		omega        = fs.Bool("omega", false, "default to the omega-CIRC variant")
		schedName    = fs.String("sched", "steal", "default reachability scheduler: steal or level")
		compactArena = fs.Bool("compact-arena", false, "compact the expression arena whenever the daemon goes idle")
		smtSlowLog   = fs.Duration("smt-slowlog", 100*time.Millisecond, "log SMT solves at or above this duration to /debug/circ/slowlog (0: disable)")
		quiet        = fs.Bool("quiet", false, "suppress request and job logs")
	)
	triage, slice := onoff(true), onoff(true)
	fs.Var(&triage, "triage", "default for the static triage stage: on or off")
	fs.Var(&slice, "slice", "default for cone-of-influence slicing: on or off")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: circd [flags]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 3
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *quiet {
		logger = nil
	}
	sched, err := circ.ParseSched(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "circd: -sched:", err)
		return 3
	}
	chk := circ.NewChecker(
		circ.WithCertStore(circ.NewCertStoreLRU(*storeMax)),
		circ.WithK(*k), circ.WithOmega(*omega), circ.WithParallelism(*parallel),
		circ.WithScheduler(sched),
		circ.WithTriage(bool(triage)), circ.WithSlicing(bool(slice)),
		circ.WithSMTSlowLog(*smtSlowLog),
	)
	if logger != nil {
		logger.Info("circd starting",
			"version", circ.Version, "go", runtime.Version(),
			"sched", sched.String(), "gomaxprocs", runtime.GOMAXPROCS(0),
			"smt_slowlog", smtSlowLog.String())
	}
	srv := server.New(server.Config{
		Checker:       chk,
		MaxConcurrent: *jobs,
		JobTimeout:    *jobTimeout,
		Logger:        logger,
		CompactArena:  *compactArena,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "circd listening on %s (api /v1, %d concurrent jobs)\n", *addr, *jobs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "circd:", err)
		return 1
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "circd: %s: draining (new submissions rejected, in-flight jobs completing)\n", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "circd: drain:", err)
		httpSrv.Close()
		return 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "circd: shutdown:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "circd: drained, exiting")
	return 0
}
