// Command circ checks a MiniNesC program for data races using the CIRC
// context-inference algorithm, optionally comparing against the lockset
// and flow-based baselines.
//
// Usage:
//
//	circ -var x [-thread T] [-omega] [-k N] [-parallel N] [-v] [-baselines] prog.mn
//
// Static pre-analysis flags: -triage=off disables the triage stage
// (read-only / atomic-covered / thread-local / flag-guarded discharges),
// -slice=off disables per-target cone-of-influence slicing, and
// -seed-preds=off disables seeding CIRC's initial predicates from the
// flag-guard analysis; all default to on.
// -baseline flowcheck|lockset|flagguard|all runs the named baseline
// analyzer(s) side-by-side with CIRC and prints a comparison table of
// warnings versus proved verdicts.
//
// Observability flags: -trace out.json writes a Chrome trace_event
// trace — the analysis span tree plus per-worker scheduler lanes showing
// busy/idle/steal segments (open in chrome://tracing or Perfetto),
// -metrics out.json writes a
// metrics-registry snapshot, -journal out.jsonl writes the structured
// inference journal (one JSON event per line, byte-identical at any
// -parallel), -report out.html renders a self-contained HTML race report,
// and -pprof addr serves net/http/pprof plus expvar (live metrics at
// /debug/vars) and the live journal endpoints (/debug/circ/progress,
// /debug/circ/events) for the duration of the run.
//
// Exit status: 0 when race freedom is proved, 1 when a genuine race is
// found, 2 on "unknown", 3 on usage or input errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"circ"
	"circ/internal/journal"
	"circ/internal/refine"
	"circ/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// onoff is a boolean flag.Value that also accepts the spellings "on" and
// "off", so the documented -triage=off / -slice=off escape hatches parse.
type onoff bool

func (o *onoff) String() string {
	if o == nil || bool(*o) {
		return "on"
	}
	return "off"
}

func (o *onoff) Set(s string) error {
	switch strings.ToLower(s) {
	case "on", "true", "1", "t", "yes":
		*o = true
	case "off", "false", "0", "f", "no":
		*o = false
	default:
		return fmt.Errorf("invalid value %q (want on or off)", s)
	}
	return nil
}

// IsBoolFlag lets a bare -triage mean -triage=on.
func (o *onoff) IsBoolFlag() bool { return true }

// writeTraceFile exports the merged flight-deck trace to path.
func writeTraceFile(path string, tracer *circ.Tracer, tl *telemetry.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteTrace(f, tracer, tl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cliErr prints an error without duplicating the "circ:" prefix that
// library errors already carry.
func cliErr(err error) {
	msg := err.Error()
	if strings.HasPrefix(msg, "circ:") {
		fmt.Fprintln(os.Stderr, msg)
		return
	}
	fmt.Fprintln(os.Stderr, "circ:", msg)
}

func run(args []string) int {
	fs := flag.NewFlagSet("circ", flag.ContinueOnError)
	var (
		varName   = fs.String("var", "", "global variable to check for races (required)")
		thread    = fs.String("thread", "", "thread template (default: the single thread)")
		omega     = fs.Bool("omega", false, "use the omega-CIRC variant (Section 5)")
		k         = fs.Int("k", 1, "initial counter parameter")
		parallel  = fs.Int("parallel", 0, "analysis worker pool size (0: GOMAXPROCS)")
		schedName = fs.String("sched", "steal", "reachability scheduler: steal (work-stealing) or level (level-synchronous)")
		verbose   = fs.Bool("v", false, "narrate every CIRC iteration")
		baselines = fs.Bool("baselines", false, "also run the lockset and flow-based baselines")
		all       = fs.Bool("all", false, "check every global variable (ignores -var)")
		dotOut    = fs.String("dot", "", "write the thread CFA and (on safe) the inferred context ACFA as dot files with this prefix")
		verify    = fs.Bool("verify", false, "independently re-check a safe verdict's certificate (Algorithm Check)")
		traceOut  = fs.String("trace", "", "write a Chrome trace_event JSON span trace to this file")
		metrics   = fs.String("metrics", "", "write a JSON metrics-registry snapshot to this file")
		jsonlOut  = fs.String("journal", "", "write the structured inference journal (JSONL) to this file")
		htmlOut   = fs.String("report", "", "write a self-contained HTML race report to this file")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof, expvar, and /debug/circ on this address (e.g. localhost:6060)")
		baseline  = fs.String("baseline", "", "run baseline analyzers side-by-side and print a comparison table: flowcheck, lockset, flagguard, or all")
	)
	triage, slice, seedPreds := onoff(true), onoff(true), onoff(true)
	fs.Var(&triage, "triage", "static triage stage that discharges pairs before CIRC runs: on or off")
	fs.Var(&slice, "slice", "per-target cone-of-influence slicing of the thread CFA: on or off")
	fs.Var(&seedPreds, "seed-preds", "seed CIRC's initial predicates from the flag-guard analysis: on or off")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: circ -var x [flags] prog.mn\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if fs.NArg() != 1 || (*varName == "" && !*all) {
		fs.Usage()
		return 3
	}
	switch *baseline {
	case "", "flowcheck", "lockset", "flagguard", "all":
	default:
		fmt.Fprintf(os.Stderr, "circ: -baseline %q: want flowcheck, lockset, flagguard, or all\n", *baseline)
		return 3
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		cliErr(err)
		return 3
	}

	prog, err := circ.Parse(string(src))
	if err != nil {
		cliErr(err)
		return 3
	}
	sched, err := circ.ParseSched(*schedName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "circ: -sched: %v\n", err)
		return 3
	}
	opts := []circ.Option{
		circ.WithK(*k), circ.WithOmega(*omega), circ.WithParallelism(*parallel),
		circ.WithScheduler(sched),
		circ.WithTriage(bool(triage)), circ.WithSlicing(bool(slice)),
		circ.WithSeedPredicates(bool(seedPreds)),
	}
	if *verbose {
		opts = append(opts, circ.WithLog(os.Stderr))
	}
	// The trace carries two recorders sharing one timebase: the span
	// tracer (attached to the checker) and the scheduler timeline
	// (attached to each Check's context), merged at export.
	var tracer *circ.Tracer
	var timeline *telemetry.Timeline
	ctx := context.Background()
	if *traceOut != "" {
		tracer = circ.NewTracer()
		opts = append(opts, circ.WithTracer(tracer))
		timeline = telemetry.NewTimelineAt(tracer.StartTime(), telemetry.DefaultTimelineCap)
		ctx = telemetry.WithTimeline(ctx, timeline)
	}
	// The flight recorder backs -journal, -report, and the live /debug/circ
	// endpoints; it is created whenever any of the three wants it.
	var jr *circ.Journal
	if *jsonlOut != "" || *htmlOut != "" || *pprofAddr != "" {
		jr = circ.NewJournal()
		opts = append(opts, circ.WithJournal(jr))
	}
	// One checker for the whole invocation: with -all, SMT answers
	// discharged for one variable are reused for the next.
	chk := circ.NewChecker(opts...)
	if *pprofAddr != "" {
		chk.Metrics().PublishExpvar("circ")
		circ.MountJournal(http.DefaultServeMux, jr)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "circ: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof+expvar+journal server on http://%s/debug/pprof/\n", *pprofAddr)
	}
	vars := []string{*varName}
	if *all {
		vars = prog.Globals()
	}
	worst := 0
	var sections []journal.CaseSection
	counts := map[string]int{}
	for _, v := range vars {
		code, sec := checkOne(ctx, chk, prog, string(src), v, *thread, *verbose, *baselines, *dotOut, *verify)
		if code > worst {
			worst = code
		}
		sections = append(sections, sec)
		counts[sec.Verdict]++
	}
	if *baseline != "" {
		printBaselineComparison(string(src), *thread, *baseline, vars, sections)
	}
	if *traceOut != "" {
		if err := writeTraceFile(*traceOut, tracer, timeline); err != nil {
			cliErr(err)
			return 3
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d spans, %d scheduler segments)\n",
			*traceOut, tracer.NumSpans(), timeline.Len())
	}
	if *metrics != "" {
		data, err := json.MarshalIndent(chk.Metrics().Snapshot(), "", "  ")
		if err != nil {
			cliErr(err)
			return 3
		}
		if err := os.WriteFile(*metrics, append(data, '\n'), 0o644); err != nil {
			cliErr(err)
			return 3
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metrics)
	}
	if *jsonlOut != "" {
		f, err := os.Create(*jsonlOut)
		if err == nil {
			err = jr.WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			cliErr(err)
			return 3
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d events)\n", *jsonlOut, jr.Len())
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err == nil {
			err = journal.RenderHTML(f, journal.HTMLData{
				Title:   "circ race report: " + fs.Arg(0),
				Summary: verdictSummary(counts),
				Cases:   sections,
				Events:  jr.Events(),
			})
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			cliErr(err)
			return 3
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *htmlOut)
	}
	return worst
}

// verdictSummary renders the per-verdict case counts ("2 safe, 1 unsafe").
func verdictSummary(counts map[string]int) string {
	var parts []string
	for _, v := range []string{"safe", "unsafe", "unknown", "error"} {
		if n := counts[v]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, v))
		}
	}
	if len(parts) == 0 {
		return "no cases"
	}
	return strings.Join(parts, ", ")
}

// printBaselineComparison runs the requested baseline analyzers once and
// prints their warnings next to circ's proved verdicts, one row per
// checked variable. A baseline warning on a circ-proved-safe variable is
// a false positive of the baseline; a silent baseline on a circ-proved
// race is a miss.
func printBaselineComparison(src, thread, which string, vars []string, sections []journal.CaseSection) {
	type column struct {
		name string
		racy func(v string) bool
	}
	var cols []column
	if which == "flowcheck" || which == "all" {
		fc, err := circ.Flowcheck(src, thread)
		if err != nil {
			fmt.Fprintln(os.Stderr, "circ: flowcheck baseline:", err)
		} else {
			cols = append(cols, column{"flowcheck", fc.Racy})
		}
	}
	if which == "lockset" || which == "all" {
		ls, err := circ.Lockset(src, thread, 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "circ: lockset baseline:", err)
		} else {
			cols = append(cols, column{"lockset", ls.Racy})
		}
	}
	if which == "flagguard" || which == "all" {
		fg, err := circ.Flagguard(src, thread)
		if err != nil {
			fmt.Fprintln(os.Stderr, "circ: flagguard baseline:", err)
		} else {
			cols = append(cols, column{"flagguard", fg.Racy})
		}
	}
	if len(cols) == 0 {
		return
	}
	fmt.Println("--- baseline comparison (warnings vs proved verdicts) ---")
	fmt.Printf("%-24s %-10s", "variable", "circ")
	for _, c := range cols {
		fmt.Printf(" %-12s", c.name)
	}
	fmt.Println()
	falsePos := make([]int, len(cols))
	missed := make([]int, len(cols))
	for i, v := range vars {
		verdict := sections[i].Verdict
		fmt.Printf("%-24s %-10s", v, verdict)
		for j, c := range cols {
			cell := "no warning"
			if c.racy(v) {
				cell = "warns"
				if verdict == "safe" {
					falsePos[j]++
				}
			} else if verdict == "unsafe" {
				missed[j]++
			}
			fmt.Printf(" %-12s", cell)
		}
		fmt.Println()
	}
	for j, c := range cols {
		note := ""
		if c.name == "flagguard" {
			// The static pipeline is sound-by-construction: a "warns" cell
			// is incompleteness CIRC resolves, never a false alarm.
			note = " (sound: warnings are residue for CIRC, not false alarms)"
		}
		fmt.Printf("%s: %d false positive(s) on circ-proved-safe variables, %d missed race(s)%s\n",
			c.name, falsePos[j], missed[j], note)
	}
}

// caseName mirrors the engine's journal case naming for one (thread,
// variable) unit, so HTML sections line up with journal events.
func caseName(thread, varName string) string {
	if thread == "" {
		return varName
	}
	return thread + "/" + varName
}

func checkOne(ctx context.Context, chk *circ.Checker, prog *circ.Program, src, varName, thread string, verbose, baselines bool, dotOut string, verify bool) (int, journal.CaseSection) {
	sec := journal.CaseSection{Name: caseName(thread, varName)}
	rep, err := chk.Check(ctx, prog, thread, varName)
	if err != nil {
		cliErr(err)
		sec.Verdict = "error"
		sec.Summary = err.Error()
		return 3, sec
	}
	sec.Verdict = rep.Verdict.String()
	sec.Summary = rep.Summary()
	for _, p := range rep.Preds {
		sec.Preds = append(sec.Preds, p.String())
	}
	if a := rep.FinalACFA; a != nil {
		sec.ACFAText, sec.ACFADot = a.String(), a.Dot()
	} else if a := rep.LastACFA; a != nil {
		sec.ACFAText, sec.ACFADot = a.String(), a.Dot()
	}

	switch rep.Verdict {
	case circ.Safe:
		if rep.Triage != "" {
			// Statically discharged: there is no context model or
			// certificate — the provenance is the discharge rule itself.
			fmt.Printf("SAFE: no races on %q — discharged statically (triage: %s)\n", varName, rep.Triage)
			if verify {
				fmt.Println("certificate check skipped: triage verdicts carry no certificate")
			}
			break
		}
		fmt.Printf("SAFE: no races on %q (predicates: %d, context ACFA: %d locations, k=%d, rounds=%d)\n",
			varName, len(rep.Preds), rep.FinalACFA.NumLocs(), rep.K, rep.Rounds)
		for _, p := range rep.Preds {
			fmt.Printf("  predicate: %s\n", p)
		}
		if verbose {
			fmt.Printf("inferred context model:\n%s", rep.FinalACFA)
		}
		if verify {
			err := chk.VerifyCertificate(ctx, prog, thread, varName, rep)
			var cerr *circ.CertificateError
			switch {
			case err == nil:
				fmt.Println("certificate independently verified (Algorithm Check)")
			case errors.As(err, &cerr):
				fmt.Printf("CERTIFICATE REJECTED: %s check failed: %s\n", cerr.Obligation, cerr.Detail)
				return 2, sec
			default:
				fmt.Fprintln(os.Stderr, "circ: certificate check:", err)
				return 3, sec
			}
		}
	case circ.Unsafe:
		fmt.Printf("UNSAFE: race on %q; interleaved trace (T0 = main):\n", varName)
		sec.Trace = rep.Race.String()
		if rep.Witness != nil {
			if c, err := prog.CFA(thread); err == nil {
				sec.Trace = refine.FormatTraceWithWitness(c, rep.Race, rep.Witness)
			}
		}
		fmt.Print(sec.Trace)
	default:
		fmt.Printf("UNKNOWN on %q: %s\n", varName, rep.Reason)
	}
	if dotOut != "" {
		// Export the thread CFA alongside the context model: the final
		// (proved-sound) ACFA on safe, the last abstraction in force on
		// unsafe/unknown. A failed write is a real CLI failure, not
		// something to swallow.
		write := func(path, data string) bool {
			if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
				cliErr(err)
				return false
			}
			return true
		}
		c, err := prog.CFA(thread)
		if err == nil && !write(dotOut+".cfa.dot", c.Dot()) {
			return 3, sec
		}
		acfaDump := rep.FinalACFA
		if acfaDump == nil {
			acfaDump = rep.LastACFA
		}
		if acfaDump != nil && !write(dotOut+"."+varName+".acfa.dot", acfaDump.Dot()) {
			return 3, sec
		}
	}

	if baselines {
		fmt.Println("--- baselines ---")
		ls, err := circ.Lockset(src, thread, 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockset:", err)
		} else if ls.Racy(varName) {
			fmt.Printf("lockset (Eraser): flags %q: %s\n", varName, ls.Warnings[varName])
		} else {
			fmt.Printf("lockset (Eraser): no warning on %q\n", varName)
		}
		fc, err := circ.Flowcheck(src, thread)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowcheck:", err)
		} else if fc.Racy(varName) {
			fmt.Printf("flowcheck (nesC): flags %q (%d non-atomic accesses)\n", varName, len(fc.Warnings))
		} else {
			fmt.Printf("flowcheck (nesC): no warning on %q\n", varName)
		}
	}

	switch rep.Verdict {
	case circ.Safe:
		return 0, sec
	case circ.Unsafe:
		return 1, sec
	}
	return 2, sec
}
