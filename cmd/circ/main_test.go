package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeProg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.mn")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const safeSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

func TestRunSafeExitCode(t *testing.T) {
	path := writeProg(t, safeSrc)
	if code := run([]string{"-var", "x", path}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
}

func TestRunUnsafeExitCode(t *testing.T) {
	path := writeProg(t, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`)
	if code := run([]string{"-var", "x", path}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	if code := run([]string{}); code != 3 {
		t.Fatalf("no args: exit = %d, want 3", code)
	}
	if code := run([]string{"-var", "x", "/nonexistent/prog.mn"}); code != 3 {
		t.Fatalf("missing file: exit = %d, want 3", code)
	}
	path := writeProg(t, "syntax error here")
	if code := run([]string{"-var", "x", path}); code != 3 {
		t.Fatalf("parse error: exit = %d, want 3", code)
	}
}

func TestRunAllAndVerify(t *testing.T) {
	path := writeProg(t, safeSrc)
	if code := run([]string{"-all", "-verify", path}); code != 0 {
		t.Fatalf("-all -verify: exit = %d, want 0", code)
	}
}

func TestRunDotOutput(t *testing.T) {
	path := writeProg(t, safeSrc)
	prefix := filepath.Join(t.TempDir(), "out")
	if code := run([]string{"-var", "x", "-dot", prefix, path}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if _, err := os.Stat(prefix + ".cfa.dot"); err != nil {
		t.Fatalf("cfa dot missing: %v", err)
	}
	if _, err := os.Stat(prefix + ".x.acfa.dot"); err != nil {
		t.Fatalf("acfa dot missing: %v", err)
	}
}

func TestRunBaselines(t *testing.T) {
	path := writeProg(t, safeSrc)
	if code := run([]string{"-var", "x", "-baselines", path}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}
