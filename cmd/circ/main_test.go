package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeProg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.mn")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const safeSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

func TestRunSafeExitCode(t *testing.T) {
	path := writeProg(t, safeSrc)
	if code := run([]string{"-var", "x", path}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
}

func TestRunUnsafeExitCode(t *testing.T) {
	path := writeProg(t, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`)
	if code := run([]string{"-var", "x", path}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	if code := run([]string{}); code != 3 {
		t.Fatalf("no args: exit = %d, want 3", code)
	}
	if code := run([]string{"-var", "x", "/nonexistent/prog.mn"}); code != 3 {
		t.Fatalf("missing file: exit = %d, want 3", code)
	}
	path := writeProg(t, "syntax error here")
	if code := run([]string{"-var", "x", path}); code != 3 {
		t.Fatalf("parse error: exit = %d, want 3", code)
	}
}

func TestRunAllAndVerify(t *testing.T) {
	path := writeProg(t, safeSrc)
	if code := run([]string{"-all", "-verify", path}); code != 0 {
		t.Fatalf("-all -verify: exit = %d, want 0", code)
	}
}

// TestRunDotOutput, TestRunTraceOutput, and TestRunMetricsOutput
// exercise the inference engine's observability artifacts, so they run
// with -triage=off: the flag-guard rule discharges safeSrc statically,
// and a discharged case has no ACFA, spans, or iteration counters.
func TestRunDotOutput(t *testing.T) {
	path := writeProg(t, safeSrc)
	prefix := filepath.Join(t.TempDir(), "out")
	if code := run([]string{"-var", "x", "-triage=off", "-dot", prefix, path}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if _, err := os.Stat(prefix + ".cfa.dot"); err != nil {
		t.Fatalf("cfa dot missing: %v", err)
	}
	if _, err := os.Stat(prefix + ".x.acfa.dot"); err != nil {
		t.Fatalf("acfa dot missing: %v", err)
	}
}

func TestRunBaselines(t *testing.T) {
	path := writeProg(t, safeSrc)
	if code := run([]string{"-var", "x", "-baselines", path}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestRunBaselineFlagguard(t *testing.T) {
	path := writeProg(t, safeSrc)
	for _, which := range []string{"flagguard", "all"} {
		if code := run([]string{"-all", "-baseline", which, path}); code != 0 {
			t.Fatalf("-baseline %s: exit = %d", which, code)
		}
	}
	if code := run([]string{"-var", "x", "-baseline", "nonesuch", path}); code != 3 {
		t.Fatalf("bad -baseline accepted")
	}
}

// TestRunTraceOutput checks that -trace writes valid Chrome trace_event
// JSON whose spans cover the analysis: complete events ("ph":"X") with
// timestamps and durations, including the top-level circ.check span.
func TestRunTraceOutput(t *testing.T) {
	path := writeProg(t, safeSrc)
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	if code := run([]string{"-var", "x", "-triage=off", "-trace", traceFile, path}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	names := map[string]bool{}
	var checkDur float64
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q: ph = %q, want complete event %q", ev.Name, ev.Ph, "X")
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Fatalf("event %q: negative ts/dur (%v/%v)", ev.Name, ev.Ts, ev.Dur)
		}
		names[ev.Name] = true
		if ev.Name == "circ.check" {
			checkDur += ev.Dur
		}
	}
	for _, want := range []string{"circ.check", "iteration", "reach", "collapse"} {
		if !names[want] {
			t.Fatalf("trace is missing a %q span; have %v", want, names)
		}
	}
	// The root span must cover (nearly all of) the analysis: every other
	// span nests inside circ.check, so no recorded work may exceed it.
	var total float64
	for _, ev := range doc.TraceEvents {
		if total < ev.Ts+ev.Dur {
			total = ev.Ts + ev.Dur
		}
	}
	if checkDur == 0 || total == 0 {
		t.Fatal("no measurable span durations")
	}
}

// TestRunMetricsOutput checks that -metrics writes a JSON snapshot with
// the engine's core counters.
func TestRunMetricsOutput(t *testing.T) {
	path := writeProg(t, safeSrc)
	metricsFile := filepath.Join(t.TempDir(), "metrics.json")
	if code := run([]string{"-var", "x", "-triage=off", "-metrics", metricsFile, path}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	data, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	for _, want := range []string{"circ.iterations", "reach.states", "bisim.collapses"} {
		if snap.Counters[want] == 0 {
			t.Fatalf("counter %q missing or zero in snapshot: %v", want, snap.Counters)
		}
	}
	if snap.Gauges["smt.queries"] == 0 {
		t.Fatalf("gauge smt.queries missing or zero: %v", snap.Gauges)
	}
}
