// Command circbench regenerates the paper's evaluation artifacts and
// tracks the engine's performance:
//
//	circbench -table1    reproduce Table 1 (predicates, ACFA size, time)
//	circbench -races     reproduce the Section 6 genuine-race findings
//	circbench -compare   CIRC vs lockset vs flow-based on the idiom suite
//	circbench -figures   reproduce Figures 1-5 on the worked example
//	circbench -bench     parallel-vs-sequential benchmark; emits BENCH_parallel.json
//
// With no flags, the four paper artifacts run in order (-bench is opt-in).
// -parallel N sets the analysis worker pool (0: GOMAXPROCS); every phase
// reports wall-clock time and SMT cache hit rates. -trace, -metrics, and
// -pprof expose the telemetry layer: a Chrome trace_event span trace, a
// metrics-registry snapshot, and a net/http/pprof + expvar debug server.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"circ"
	"circ/internal/benchapps"
	"circ/internal/cfa"
	icirc "circ/internal/circ"
	"circ/internal/explicit"
	"circ/internal/flowcheck"
	"circ/internal/journal"
	"circ/internal/lang"
	"circ/internal/lockset"
	"circ/internal/refine"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

var (
	parallel   = flag.Int("parallel", 0, "analysis worker pool size (0: GOMAXPROCS)")
	schedName  = flag.String("sched", "steal", "reachability scheduler for every phase: steal or level")
	benchOut   = flag.String("benchout", "BENCH_parallel.json", "output path for the -bench report")
	programDir = flag.String("programs", "examples/programs", "directory of .mn programs to include in -bench (skipped when missing)")
	traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON span trace to this file")
	metricsOut = flag.String("metrics", "", "write a JSON metrics-registry snapshot to this file")
	jsonlOut   = flag.String("journal", "", "write the structured inference journal (JSONL) to this file")
	htmlOut    = flag.String("report", "", "write a self-contained HTML report of every analysis to this file")
	pprofAddr  = flag.String("pprof", "", "serve net/http/pprof, expvar, and /debug/circ on this address (e.g. localhost:6060)")
	smtSlowLog = flag.Duration("smt-slowlog", 100*time.Millisecond, "SMT slow-query threshold for the -bench legs (0: disable)")
)

// triageFlag/sliceFlag/seedFlag are the -bench escape hatches for the
// engine's static pre-analysis: -triage=off and -slice=off run the batch
// phases with the full CEGAR loop on every pair and unsliced CFAs, and
// -seed-preds=off withholds the flag-guard analysis' exported initial
// predicates so inference starts from the empty abstraction.
var (
	triageFlag onoff = true
	sliceFlag  onoff = true
	seedFlag   onoff = true
)

func init() {
	flag.Var(&triageFlag, "triage", "static triage stage that discharges pairs before CIRC runs: on or off")
	flag.Var(&sliceFlag, "slice", "per-target cone-of-influence slicing of the thread CFA: on or off")
	flag.Var(&seedFlag, "seed-preds", "seed inference with guard predicates from the flag-guard analysis: on or off")
}

// onoff is a boolean flag.Value that also accepts the spellings "on" and
// "off", so -triage=off / -slice=off parse.
type onoff bool

func (o *onoff) String() string {
	if o == nil || bool(*o) {
		return "on"
	}
	return "off"
}

func (o *onoff) Set(s string) error {
	switch strings.ToLower(s) {
	case "on", "true", "1", "t", "yes":
		*o = true
	case "off", "false", "0", "f", "no":
		*o = false
	default:
		return fmt.Errorf("invalid value %q (want on or off)", s)
	}
	return nil
}

// IsBoolFlag lets a bare -triage mean -triage=on.
func (o *onoff) IsBoolFlag() bool { return true }

// chk is the process-wide SMT layer: every phase shares it, so the
// per-phase hit rates below show cross-phase reuse too.
var chk = smt.NewCachedChecker()

// reg aggregates every phase's engine metrics; tracer is non-nil only
// under -trace, and baseCtx carries it to the analyses.
var (
	reg     = telemetry.NewRegistry()
	tracer  *telemetry.Tracer
	baseCtx = context.Background()
)

// jr is the flight recorder behind -journal, -report, and the live
// /debug/circ endpoints; jSections collects the per-analysis HTML panels.
// Phases (and their analyses) run sequentially, so plain variables suffice.
var (
	jr        *journal.Recorder
	jSections []journal.CaseSection
)

func parallelism() int {
	if *parallel > 0 {
		return *parallel
	}
	return runtime.GOMAXPROCS(0)
}

// sched is the parsed -sched value, applied to every public-API run.
var sched circ.Sched

func main() {
	var (
		table1  = flag.Bool("table1", false, "reproduce Table 1")
		races   = flag.Bool("races", false, "reproduce the Section 6 race findings")
		compare = flag.Bool("compare", false, "reproduce the baseline comparison")
		figures = flag.Bool("figures", false, "reproduce Figures 1-5")
		bench   = flag.Bool("bench", false, "run the parallel-engine benchmark and write "+*benchOut)
	)
	flag.Parse()
	var err error
	if sched, err = circ.ParseSched(*schedName); err != nil {
		fmt.Fprintln(os.Stderr, "circbench: -sched:", err)
		os.Exit(3)
	}
	if *traceOut != "" {
		tracer = telemetry.NewTracer()
		baseCtx = telemetry.NewContext(baseCtx, tracer)
	}
	if *jsonlOut != "" || *htmlOut != "" || *pprofAddr != "" {
		jr = journal.New()
	}
	if *pprofAddr != "" {
		reg.PublishExpvar("circ")
		journal.Mount(http.DefaultServeMux, jr)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "circbench: pprof server:", err)
			}
		}()
		fmt.Printf("pprof+expvar server on http://%s/debug/pprof/\n", *pprofAddr)
	}
	chk.Instrument(reg, tracer)
	all := !*table1 && !*races && !*compare && !*figures && !*bench
	if *table1 || all {
		phase("table1", runTable1)
	}
	if *races || all {
		phase("races", runRaces)
	}
	if *compare || all {
		phase("compare", runCompare)
	}
	if *figures || all {
		phase("figures", runFigures)
	}
	if *bench {
		phase("bench", runBench)
	}
	if *traceOut != "" {
		if err := tracer.ExportFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "circbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d spans; open in chrome://tracing or Perfetto)\n", *traceOut, tracer.NumSpans())
	}
	if *metricsOut != "" {
		data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "circbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*metricsOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "circbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	if *jsonlOut != "" {
		f, err := os.Create(*jsonlOut)
		if err == nil {
			err = jr.WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "circbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d events)\n", *jsonlOut, jr.Len())
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err == nil {
			err = journal.RenderHTML(f, journal.HTMLData{
				Title:   "circbench evaluation report",
				Summary: fmt.Sprintf("%d analyses", len(jSections)),
				Cases:   jSections,
				Events:  jr.Events(),
			})
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "circbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *htmlOut)
	}
}

// phase runs fn under a span, records its wall-clock time into the metrics
// registry (counter "phase.<name>.wall_nanos"), and reports the registry's
// reading plus the SMT cache work the phase caused (deltas against the
// shared process-wide cache).
func phase(name string, fn func()) {
	before := chk.Stats()
	wall := reg.Counter("phase." + name + ".wall_nanos")
	ctx, sp := telemetry.StartSpan(baseCtx, "phase."+name)
	start := time.Now()
	phaseCtx = ctx
	phaseName = name
	fn()
	phaseCtx = baseCtx
	phaseName = ""
	wall.Add(time.Since(start).Nanoseconds())
	sp.End()
	after := chk.Stats()
	hits, misses := after.Hits-before.Hits, after.Misses-before.Misses
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	fmt.Printf("[phase %s] wall %s, smt hits %d, misses %d, hit rate %.1f%%\n\n",
		name, time.Duration(wall.Value()).Round(time.Millisecond), hits, misses, 100*rate)
}

// phaseCtx carries the current phase's span so per-app analyses nest under
// it in the trace; phaseName prefixes journal case names (the table1 and
// races phases reuse app names, and phase-qualified cases keep each
// analysis's event sequence separate). Phases run sequentially, so plain
// variables suffice.
var (
	phaseCtx  = context.Background()
	phaseName string
)

// journalCtx opens a journal stream for one analysis named name under the
// current phase, returning the context to analyse under and the stream.
func journalCtx(ctx context.Context, name string) (context.Context, *journal.Stream) {
	if jr == nil {
		return ctx, nil
	}
	s := jr.Stream(phaseName + "/" + name)
	return journal.NewContext(ctx, s), s
}

// recordSection appends one analysis's HTML report panel.
func recordSection(name string, c *cfa.CFA, rep *icirc.Report) {
	if jr == nil {
		return
	}
	sec := journal.CaseSection{
		Name:    name,
		Verdict: rep.Verdict.String(),
		Summary: rep.Summary(),
	}
	for _, p := range rep.Preds {
		sec.Preds = append(sec.Preds, p.String())
	}
	if rep.Race != nil {
		sec.Trace = rep.Race.String()
		if rep.Witness != nil {
			sec.Trace = refine.FormatTraceWithWitness(c, rep.Race, rep.Witness)
		}
	}
	if a := rep.FinalACFA; a != nil {
		sec.ACFAText, sec.ACFADot = a.String(), a.Dot()
	} else if a := rep.LastACFA; a != nil {
		sec.ACFAText, sec.ACFADot = a.String(), a.Dot()
	}
	jSections = append(jSections, sec)
}

func check(app benchapps.App) (*icirc.Report, *cfa.CFA, time.Duration) {
	_, c, err := app.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	ctx, s := journalCtx(phaseCtx, app.Key())
	start := time.Now()
	rep, err := icirc.Check(ctx, c, app.Variable,
		icirc.Options{Parallelism: parallelism(), Sched: sched, Metrics: reg}, chk)
	if err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	recordSection(s.Case(), c, rep)
	return rep, c, time.Since(start)
}

func runTable1() {
	fmt.Println("== Table 1: experimental results with CIRC ==")
	fmt.Println("(paper columns measured on a 2GHz IBM T30; ours on this machine over")
	fmt.Println(" idiom models — compare shapes, not absolute numbers)")
	fmt.Printf("%-14s %-14s | %-8s %5s %5s %9s | %6s %5s %9s\n",
		"Name", "Variable", "verdict", "preds", "ACFA", "time", "paper", "ACFA", "time")
	for _, app := range benchapps.Table1() {
		rep, _, dur := check(app)
		acfaLocs := 0
		if rep.FinalACFA != nil {
			acfaLocs = rep.FinalACFA.NumLocs()
		}
		fmt.Printf("%-14s %-14s | %-8s %5d %5d %9s | %6d %5d %9s\n",
			app.Name, app.Variable, rep.Verdict, len(rep.Preds), acfaLocs,
			dur.Round(time.Millisecond), app.PaperPreds, app.PaperACFA, app.PaperTime)
	}
	fmt.Println()
}

func runRaces() {
	fmt.Println("== Section 6: genuine races found (and their fixes verified) ==")
	for _, app := range benchapps.Section6Races() {
		rep, _, dur := check(app)
		fmt.Printf("%s (buggy: %s): %s in %s\n", app.Key(), app.Idiom, rep.Verdict, dur.Round(time.Millisecond))
		if rep.Race != nil {
			fmt.Println(indent(rep.Race.String(), "    "))
		}
		fixed := benchapps.Get(app.Name, app.Variable)
		if fixed != nil {
			frep, _, fdur := check(*fixed)
			fmt.Printf("%s (fixed): %s in %s\n\n", fixed.Key(), frep.Verdict, fdur.Round(time.Millisecond))
		}
	}
}

func runCompare() {
	fmt.Println("== Baseline comparison: CIRC vs lockset (Eraser) vs flow-based (nesC) ==")
	fmt.Printf("%-34s %-8s | %-8s %-8s %-8s\n", "idiom", "truth", "circ", "lockset", "flow")
	for _, app := range benchapps.FalsePositiveSuite() {
		rep, c, _ := check(app)
		ls, err := lockset.Analyze(explicit.NewSymmetric(c, 3), lockset.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "circbench:", err)
			os.Exit(1)
		}
		fc := flowcheck.Analyze([]*cfa.CFA{c})
		truth := "safe"
		if !app.ExpectSafe {
			truth = "racy"
		}
		fmt.Printf("%-34s %-8s | %-8s %-8s %-8s\n",
			app.Idiom, truth, rep.Verdict.String(), warn(ls.Racy(app.Variable)), warn(fc.Racy(app.Variable)))
	}
	fmt.Println("(\"warns\" on a safe idiom is a false positive; CIRC proves them safe)")
	fmt.Println()
}

func warn(b bool) string {
	if b {
		return "warns"
	}
	return "silent"
}

const figureSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

func runFigures() {
	fmt.Println("== Figures 1-5: the worked test-and-set example ==")
	p, err := lang.Parse(figureSrc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	fmt.Println("-- Figure 1(b): the thread's CFA --")
	fmt.Print(c)
	fmt.Println("-- Figures 2-4: CIRC iterations (ARGs, minimised ACFAs, refinements) --")
	fctx, s := journalCtx(phaseCtx, "testandset/x")
	rep, err := icirc.Check(fctx, c, "x",
		icirc.Options{Logger: telemetry.NarrationLogger(os.Stdout), Sched: sched, Metrics: reg}, chk)
	if err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	recordSection(s.Case(), c, rep)
	fmt.Println("-- Figure 1(c): the final inferred context ACFA --")
	if rep.FinalACFA != nil {
		fmt.Print(rep.FinalACFA)
	}
	fmt.Println("-- Figure 5: trace formula of the last spurious counterexample --")
	for i, cl := range rep.TF {
		fmt.Printf("  clause %2d: %s\n", i, cl)
	}
	fmt.Printf("verdict: %s with predicates %v\n", rep.Verdict, rep.Preds)
}

// --- the -bench target ---

// benchCase is one benchmark program: all (thread, global) pairs are
// checked in one CheckAllRaces batch.
type benchCase struct {
	Name   string
	Source string
}

// benchRow is one emitted BENCH_parallel.json record.
type benchRow struct {
	Name          string            `json:"name"`
	Targets       int               `json:"targets"`
	Verdicts      map[string]string `json:"verdicts"`
	VerdictsAgree bool              `json:"verdicts_agree"`
	SeqMillis     float64           `json:"seq_ms"`
	ParMillis     float64           `json:"par_ms"`
	Speedup       float64           `json:"speedup"`
	// Warm-leg measurements: the case checked twice through one checker
	// with a certificate store. WarmMillis is the second (warm) batch's
	// wall time, CertsReused the number of its targets re-established
	// from certificates, and ReuseHitRate CertsReused / Targets.
	WarmMillis   float64 `json:"warm_ms"`
	CertsReused  int     `json:"certs_reused"`
	ReuseHitRate float64 `json:"reuse_hit_rate"`
	SMTQueries   int64   `json:"smt_queries"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	FastPath     int64   `json:"fastpath"`
	HitRate      float64 `json:"hit_rate"`
	// Allocation intensity of the parallel run, from runtime.MemStats
	// deltas over all SMT queries issued (hits + misses + fast path).
	AllocsPerQuery float64 `json:"allocs_per_query"`
	BytesPerQuery  float64 `json:"bytes_per_query"`
	// Static pre-analysis effect on the parallel run: targets discharged
	// without touching the solver (total and split by triage rule), CFA
	// edges removed by slicing (summed over all targets of the case), and
	// initial predicates the flag-guard analysis exported for the targets
	// it could not discharge.
	TriageDischarged   int64            `json:"triage_discharged"`
	DischargedByReason map[string]int64 `json:"discharged_by_reason,omitempty"`
	SlicedEdgesRemoved int64            `json:"sliced_edges_removed"`
	SeededPredicates   int64            `json:"seeded_predicates"`
	// Seeding effect on inference depth: total CEGAR iterations of the
	// parallel run, the same run re-measured with -seed-preds=off, and
	// their difference (positive: seeding saved iterations). All zero
	// when -seed-preds=off disables the comparison leg.
	ParIterations    int64 `json:"par_iterations"`
	NoSeedIterations int64 `json:"noseed_iterations"`
	SeedIterDelta    int64 `json:"seed_iter_delta"`
	// Scheduler behaviour of the parallel run: slots stolen from another
	// worker's deque, cumulative worker idle wall time, and learned SMT
	// clauses replayed across sessions by the portfolio.
	Steals        int64   `json:"steals"`
	IdleMillis    float64 `json:"idle_ms"`
	ClausesShared int64   `json:"clauses_shared"`
	// Per-worker idle distribution of the parallel run, from the scheduler
	// timeline: the busiest-waiting worker's idle total and the median
	// worker's, in milliseconds. A large max/p50 gap means the steal
	// scheduler left some workers starved.
	IdleMaxMillis float64 `json:"idle_ms_max"`
	IdleP50Millis float64 `json:"idle_ms_p50"`
	// SlowQueries counts the parallel run's SMT solves at or above the
	// -smt-slowlog threshold.
	SlowQueries int64 `json:"slow_queries"`
}

type benchReport struct {
	GOMAXPROCS  int        `json:"gomaxprocs"`
	Parallelism int        `json:"parallelism"`
	Sched       string     `json:"sched"`
	Rows        []benchRow `json:"benchmarks"`
	TotalSeqMs  float64    `json:"total_seq_ms"`
	TotalParMs  float64    `json:"total_par_ms"`
	Speedup     float64    `json:"speedup"`
	// GeomeanSpeedup is the geometric mean of the per-case speedups —
	// the scale-free figure the CI bench-smoke floor is checked against.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
	// ReuseHitRate aggregates the warm legs: certificates reused over
	// all warm targets.
	ReuseHitRate float64 `json:"reuse_hit_rate"`
	// SeedCasesImproved counts the cases whose no-seed comparison leg
	// needed strictly more CEGAR iterations than the seeded parallel run.
	SeedCasesImproved int `json:"seed_cases_improved"`
	// PhaseLatency summarises the engine's duration histograms (merged
	// over every parallel run) as millisecond quantiles, keyed by
	// histogram name ("smt.solve", "bisim.collapse", ...).
	PhaseLatency map[string]quantilesMs `json:"phase_latency_ms"`
	// SlowQueries totals the parallel legs' SMT solves at or above the
	// -smt-slowlog threshold.
	SlowQueries int64 `json:"slow_queries"`
	// Metrics is the merged telemetry snapshot of every parallel run:
	// engine counters (reach.*, bisim.*, refine.*, smt.*) summed across
	// benchmark cases.
	Metrics telemetry.Metrics `json:"metrics"`
}

// idleSpread reduces a run's scheduler timeline to the per-worker idle
// distribution: the maximum and median of each lane's idle total, in
// milliseconds. Zero lanes (a sequential run records no timeline
// segments) yields zeros.
func idleSpread(tl *telemetry.Timeline) (maxMs, p50Ms float64) {
	byLane := tl.IdleByLane()
	if len(byLane) == 0 {
		return 0, 0
	}
	totals := make([]float64, 0, len(byLane))
	for _, d := range byLane {
		totals = append(totals, float64(d)/1e6)
	}
	sort.Float64s(totals)
	return totals[len(totals)-1], totals[len(totals)/2]
}

// quantilesMs renders one histogram's latency quantiles in milliseconds.
type quantilesMs struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
}

// phaseLatencies derives the per-phase quantile summary from a merged
// metrics snapshot.
func phaseLatencies(m telemetry.Metrics) map[string]quantilesMs {
	out := make(map[string]quantilesMs, len(m.Histograms))
	for name, hs := range m.Histograms {
		out[name] = quantilesMs{
			Count: hs.Count,
			P50:   float64(hs.Quantile(0.50).Microseconds()) / 1000,
			P95:   float64(hs.Quantile(0.95).Microseconds()) / 1000,
			P99:   float64(hs.Quantile(0.99).Microseconds()) / 1000,
		}
	}
	return out
}

func benchCases() []benchCase {
	var cases []benchCase
	seen := map[string]bool{}
	for _, app := range benchapps.Table1() {
		if seen[app.Name] {
			continue
		}
		seen[app.Name] = true
		cases = append(cases, benchCase{Name: "table1/" + app.Name, Source: app.Source})
	}
	cases = append(cases, benchCase{Name: "appmodel", Source: benchapps.AppModel})
	if entries, err := os.ReadDir(*programDir); err == nil {
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".mn") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, n := range names {
			src, err := os.ReadFile(filepath.Join(*programDir, n))
			if err != nil {
				continue
			}
			cases = append(cases, benchCase{Name: "programs/" + strings.TrimSuffix(n, ".mn"), Source: string(src)})
		}
	}
	return cases
}

// runOnce batch-checks src with the given parallelism on a fresh checker
// (fresh SMT cache, so sequential and parallel runs measure the same
// work). The returned timeline carries the run's per-worker
// busy/idle/steal segments.
func runOnce(src string, par int, seed bool) (*circ.BatchReport, *telemetry.Timeline, error) {
	tl := telemetry.NewTimeline(telemetry.DefaultTimelineCap)
	ctx := telemetry.WithTimeline(context.Background(), tl)
	rep, err := circ.CheckAllRaces(ctx, src,
		circ.WithParallelism(par), circ.WithScheduler(sched), circ.WithTracer(tracer),
		circ.WithTriage(bool(triageFlag)), circ.WithSlicing(bool(sliceFlag)),
		circ.WithSeedPredicates(seed), circ.WithSMTSlowLog(*smtSlowLog))
	return rep, tl, err
}

// runWarm measures incremental re-checking: the same program is checked
// twice through one checker holding a certificate store, so the second
// (warm) batch re-establishes verdicts from certificates. Returns the
// warm batch and how many of its targets were served from the store.
func runWarm(src string, par int) (warm *circ.BatchReport, reused int, err error) {
	chk := circ.NewChecker(
		circ.WithCertStore(circ.NewCertStore()),
		circ.WithParallelism(par), circ.WithScheduler(sched), circ.WithTracer(tracer),
		circ.WithTriage(bool(triageFlag)), circ.WithSlicing(bool(sliceFlag)),
		circ.WithSeedPredicates(bool(seedFlag)))
	prog, err := circ.Parse(src)
	if err != nil {
		return nil, 0, err
	}
	if _, err := chk.CheckTargets(context.Background(), prog, nil); err != nil {
		return nil, 0, err
	}
	warm, err = chk.CheckTargets(context.Background(), prog, nil)
	if err != nil {
		return nil, 0, err
	}
	for _, r := range warm.Results {
		if r.Report != nil && r.Report.Metrics.Counter("store.reused") > 0 {
			reused++
		}
	}
	return warm, reused, nil
}

// dischargeReasons extracts the per-rule discharge counts from a run's
// labelled triage.discharged{reason="..."} counter family.
func dischargeReasons(m telemetry.Metrics) map[string]int64 {
	const prefix = `triage.discharged{reason="`
	var out map[string]int64
	for name, n := range m.Counters {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		if out == nil {
			out = make(map[string]int64)
		}
		out[strings.TrimSuffix(strings.TrimPrefix(name, prefix), `"}`)] += n
	}
	return out
}

func runBench() {
	par := parallelism()
	// The parallel legs need real OS-level parallelism to mean anything;
	// raise GOMAXPROCS to the worker-pool size when the environment (or a
	// constrained CI box) set it lower.
	if par > runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(par)
	}
	fmt.Printf("== Parallel engine benchmark: sequential vs %d workers (%s scheduler) ==\n", par, sched)
	fmt.Printf("%-28s %7s %6s %5s %5s %9s %9s %9s %8s %7s %9s %11s %7s %8s %7s\n",
		"benchmark", "targets", "disch", "seeds", "dIter", "seq", "par", "warm", "speedup", "reuse", "hit-rate", "allocs/q", "steals", "idle", "shared")
	report := benchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Parallelism: par, Sched: sched.String()}
	// Each runOnce uses a fresh checker (and so a fresh registry); merge
	// the per-run snapshots into a bench-level child of the process
	// registry so BENCH_parallel.json carries the aggregate.
	breg := telemetry.ChildOf(reg)
	for _, bc := range benchCases() {
		seq, _, err := runOnce(bc.Source, 1, bool(seedFlag))
		if err != nil {
			fmt.Fprintln(os.Stderr, "circbench: bench", bc.Name, "(sequential):", err)
			os.Exit(1)
		}
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		parRep, parTL, err := runOnce(bc.Source, par, bool(seedFlag))
		if err != nil {
			fmt.Fprintln(os.Stderr, "circbench: bench", bc.Name, "(parallel):", err)
			os.Exit(1)
		}
		runtime.ReadMemStats(&msAfter)
		warmRep, reused, err := runWarm(bc.Source, par)
		if err != nil {
			fmt.Fprintln(os.Stderr, "circbench: bench", bc.Name, "(warm):", err)
			os.Exit(1)
		}
		// Seeding-effect leg: re-run the parallel batch with predicate
		// seeding withheld, so seed_iter_delta records how many CEGAR
		// iterations the exported guard predicates saved on this case.
		var noSeedIters int64
		if bool(seedFlag) {
			noSeed, _, err := runOnce(bc.Source, par, false)
			if err != nil {
				fmt.Fprintln(os.Stderr, "circbench: bench", bc.Name, "(no-seed):", err)
				os.Exit(1)
			}
			noSeedIters = noSeed.Metrics.Counter("circ.iterations")
		}
		row := benchRow{
			Name:          bc.Name,
			Targets:       len(parRep.Results),
			Verdicts:      map[string]string{},
			VerdictsAgree: true,
			SeqMillis:     float64(seq.Elapsed.Microseconds()) / 1000,
			ParMillis:     float64(parRep.Elapsed.Microseconds()) / 1000,
			WarmMillis:    float64(warmRep.Elapsed.Microseconds()) / 1000,
			CertsReused:   reused,
			SMTQueries:    parRep.SMT.Solver.Queries,
			CacheHits:     parRep.SMT.Hits,
			CacheMisses:   parRep.SMT.Misses,
			FastPath:      parRep.SMT.FastPath,
			HitRate:       parRep.SMT.HitRate(),

			TriageDischarged:   parRep.Metrics.Counter("triage.discharged"),
			DischargedByReason: dischargeReasons(parRep.Metrics),
			SlicedEdgesRemoved: parRep.Metrics.Counter("slice.edges_removed"),
			SeededPredicates:   parRep.Metrics.Counter("seed.predicates"),
			ParIterations:      parRep.Metrics.Counter("circ.iterations"),
			NoSeedIterations:   noSeedIters,
			Steals:             parRep.Metrics.Counter("reach.steal.count"),
			IdleMillis:         float64(parRep.Metrics.Histograms["reach.worker.idle"].SumNanos) / 1e6,
			ClausesShared:      parRep.Metrics.Counter("smt.portfolio.clauses_shared"),
			SlowQueries:        parRep.SMT.SlowQueries,
		}
		row.IdleMaxMillis, row.IdleP50Millis = idleSpread(parTL)
		report.SlowQueries += row.SlowQueries
		if queries := row.CacheHits + row.CacheMisses + row.FastPath; queries > 0 {
			row.AllocsPerQuery = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(queries)
			row.BytesPerQuery = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(queries)
		}
		for i, r := range parRep.Results {
			v := "error"
			if r.Report != nil {
				v = r.Report.Verdict.String()
			}
			row.Verdicts[r.Target.String()] = v
			sv := "error"
			if sr := seq.Results[i]; sr.Report != nil {
				sv = sr.Report.Verdict.String()
			}
			if sv != v {
				row.VerdictsAgree = false
			}
		}
		if row.ParMillis > 0 {
			row.Speedup = row.SeqMillis / row.ParMillis
		}
		if row.Targets > 0 {
			row.ReuseHitRate = float64(row.CertsReused) / float64(row.Targets)
		}
		if bool(seedFlag) {
			row.SeedIterDelta = row.NoSeedIterations - row.ParIterations
			if row.SeedIterDelta > 0 {
				report.SeedCasesImproved++
			}
		}
		breg.Merge(parRep.Metrics)
		report.Rows = append(report.Rows, row)
		report.TotalSeqMs += row.SeqMillis
		report.TotalParMs += row.ParMillis
		agree := ""
		if !row.VerdictsAgree {
			agree = "  VERDICT MISMATCH"
		}
		fmt.Printf("%-28s %7d %6d %5d %+5d %8.0fms %8.0fms %8.0fms %7.2fx %6.0f%% %8.1f%% %11.0f %7d %6.0fms %7d%s\n",
			bc.Name, row.Targets, row.TriageDischarged, row.SeededPredicates, row.SeedIterDelta,
			row.SeqMillis, row.ParMillis, row.WarmMillis,
			row.Speedup, 100*row.ReuseHitRate, 100*row.HitRate, row.AllocsPerQuery,
			row.Steals, row.IdleMillis, row.ClausesShared, agree)
	}
	if report.TotalParMs > 0 {
		report.Speedup = report.TotalSeqMs / report.TotalParMs
	}
	// Geometric mean of the per-case speedups: each case contributes
	// equally regardless of its absolute runtime.
	var logSum float64
	var nSpeedups int
	for _, row := range report.Rows {
		if row.Speedup > 0 {
			logSum += math.Log(row.Speedup)
			nSpeedups++
		}
	}
	if nSpeedups > 0 {
		report.GeomeanSpeedup = math.Exp(logSum / float64(nSpeedups))
	}
	var targets, reused int
	for _, row := range report.Rows {
		targets += row.Targets
		reused += row.CertsReused
	}
	if targets > 0 {
		report.ReuseHitRate = float64(reused) / float64(targets)
	}
	report.Metrics = breg.Snapshot()
	report.PhaseLatency = phaseLatencies(report.Metrics)
	fmt.Printf("%-28s %7s %6s %5s %5s %8.0fms %8.0fms %9s %7.2fx %6.0f%%  (geomean %.2fx, seeding improved %d cases)\n",
		"TOTAL", "", "", "", "", report.TotalSeqMs, report.TotalParMs, "", report.Speedup,
		100*report.ReuseHitRate, report.GeomeanSpeedup, report.SeedCasesImproved)
	// A bench file without the effective GOMAXPROCS is uninterpretable —
	// the parallel columns can't be compared across machines. Refuse to
	// write one (this can only happen if the raise above is bypassed).
	if report.GOMAXPROCS <= 0 {
		fmt.Fprintln(os.Stderr, "circbench: refusing to write bench file: effective GOMAXPROCS not recorded")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *benchOut)
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pre + l
	}
	return strings.Join(lines, "\n")
}
