// Command circbench regenerates the paper's evaluation artifacts:
//
//	circbench -table1    reproduce Table 1 (predicates, ACFA size, time)
//	circbench -races     reproduce the Section 6 genuine-race findings
//	circbench -compare   CIRC vs lockset vs flow-based on the idiom suite
//	circbench -figures   reproduce Figures 1-5 on the worked example
//
// With no flags, everything runs in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"circ/internal/benchapps"
	"circ/internal/cfa"
	icirc "circ/internal/circ"
	"circ/internal/explicit"
	"circ/internal/flowcheck"
	"circ/internal/lang"
	"circ/internal/lockset"
	"circ/internal/smt"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "reproduce Table 1")
		races   = flag.Bool("races", false, "reproduce the Section 6 race findings")
		compare = flag.Bool("compare", false, "reproduce the baseline comparison")
		figures = flag.Bool("figures", false, "reproduce Figures 1-5")
	)
	flag.Parse()
	all := !*table1 && !*races && !*compare && !*figures
	if *table1 || all {
		runTable1()
	}
	if *races || all {
		runRaces()
	}
	if *compare || all {
		runCompare()
	}
	if *figures || all {
		runFigures()
	}
}

func check(app benchapps.App) (*icirc.Report, *cfa.CFA, time.Duration) {
	_, c, err := app.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	start := time.Now()
	rep, err := icirc.Check(c, app.Variable, icirc.Options{}, smt.NewChecker())
	if err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	return rep, c, time.Since(start)
}

func runTable1() {
	fmt.Println("== Table 1: experimental results with CIRC ==")
	fmt.Println("(paper columns measured on a 2GHz IBM T30; ours on this machine over")
	fmt.Println(" idiom models — compare shapes, not absolute numbers)")
	fmt.Printf("%-14s %-14s | %-8s %5s %5s %9s | %6s %5s %9s\n",
		"Name", "Variable", "verdict", "preds", "ACFA", "time", "paper", "ACFA", "time")
	for _, app := range benchapps.Table1() {
		rep, _, dur := check(app)
		acfaLocs := 0
		if rep.FinalACFA != nil {
			acfaLocs = rep.FinalACFA.NumLocs()
		}
		fmt.Printf("%-14s %-14s | %-8s %5d %5d %9s | %6d %5d %9s\n",
			app.Name, app.Variable, rep.Verdict, len(rep.Preds), acfaLocs,
			dur.Round(time.Millisecond), app.PaperPreds, app.PaperACFA, app.PaperTime)
	}
	fmt.Println()
}

func runRaces() {
	fmt.Println("== Section 6: genuine races found (and their fixes verified) ==")
	for _, app := range benchapps.Section6Races() {
		rep, _, dur := check(app)
		fmt.Printf("%s (buggy: %s): %s in %s\n", app.Key(), app.Idiom, rep.Verdict, dur.Round(time.Millisecond))
		if rep.Race != nil {
			fmt.Println(indent(rep.Race.String(), "    "))
		}
		fixed := benchapps.Get(app.Name, app.Variable)
		if fixed != nil {
			frep, _, fdur := check(*fixed)
			fmt.Printf("%s (fixed): %s in %s\n\n", fixed.Key(), frep.Verdict, fdur.Round(time.Millisecond))
		}
	}
}

func runCompare() {
	fmt.Println("== Baseline comparison: CIRC vs lockset (Eraser) vs flow-based (nesC) ==")
	fmt.Printf("%-34s %-8s | %-8s %-8s %-8s\n", "idiom", "truth", "circ", "lockset", "flow")
	for _, app := range benchapps.FalsePositiveSuite() {
		rep, c, _ := check(app)
		ls, err := lockset.Analyze(explicit.NewSymmetric(c, 3), lockset.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "circbench:", err)
			os.Exit(1)
		}
		fc := flowcheck.Analyze([]*cfa.CFA{c})
		truth := "safe"
		if !app.ExpectSafe {
			truth = "racy"
		}
		fmt.Printf("%-34s %-8s | %-8s %-8s %-8s\n",
			app.Idiom, truth, rep.Verdict.String(), warn(ls.Racy(app.Variable)), warn(fc.Racy(app.Variable)))
	}
	fmt.Println("(\"warns\" on a safe idiom is a false positive; CIRC proves them safe)")
	fmt.Println()
}

func warn(b bool) string {
	if b {
		return "warns"
	}
	return "silent"
}

const figureSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

func runFigures() {
	fmt.Println("== Figures 1-5: the worked test-and-set example ==")
	p, err := lang.Parse(figureSrc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	fmt.Println("-- Figure 1(b): the thread's CFA --")
	fmt.Print(c)
	fmt.Println("-- Figures 2-4: CIRC iterations (ARGs, minimised ACFAs, refinements) --")
	rep, err := icirc.Check(c, "x", icirc.Options{Log: os.Stdout}, smt.NewChecker())
	if err != nil {
		fmt.Fprintln(os.Stderr, "circbench:", err)
		os.Exit(1)
	}
	fmt.Println("-- Figure 1(c): the final inferred context ACFA --")
	if rep.FinalACFA != nil {
		fmt.Print(rep.FinalACFA)
	}
	fmt.Println("-- Figure 5: trace formula of the last spurious counterexample --")
	for i, cl := range rep.TF {
		fmt.Printf("  clause %2d: %s\n", i, cl)
	}
	fmt.Printf("verdict: %s with predicates %v\n", rep.Verdict, rep.Preds)
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pre + l
	}
	return strings.Join(lines, "\n")
}
