module circ

go 1.22
