// Testandset reproduces the paper's worked example end to end (Section 2,
// Figures 1-5): it prints the thread's CFA (Figure 1b), narrates every
// CIRC iteration — abstract reachability, bisimulation-minimised context
// ACFAs (Figures 2-4), counterexample analysis with the trace formula
// (Figure 5) — and finally shows the inferred context model (Figure 1c)
// that proves race freedom for arbitrarily many threads.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"circ"
)

const src = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;        // remember the state variable
      if (state == 0) { state = 1; }
    }
    if (old == 0) {       // only the winner of the test-and-set ...
      x = x + 1;          // ... may touch x
      state = 0;
    }
  }
}
`

func main() {
	prog, err := circ.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	c, err := prog.CFA("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Figure 1(b): control flow automaton of the thread ==")
	fmt.Println(c)

	fmt.Println("== Running CIRC (Figures 2-4: iteration narration) ==")
	rep, err := circ.Check(context.Background(), src, circ.WithTarget("", "x"), circ.WithLog(os.Stdout))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Figure 5: trace formula of the final spurious counterexample ==")
	for i, cl := range rep.TF {
		fmt.Printf("  clause %2d: %s\n", i, cl)
	}

	fmt.Printf("\n== Result: %s ==\n", rep.Verdict)
	fmt.Printf("predicates discovered by refinement: %v\n", rep.Preds)
	fmt.Println("\n== Figure 1(c): the inferred context model (final ACFA) ==")
	fmt.Print(rep.FinalACFA)
	fmt.Println("\nEach location is labelled with a region over the globals; edges havoc")
	fmt.Println("the listed variables; * marks atomic locations. A thread at the x-writing")
	fmt.Println("location keeps state != 0, which excludes every other thread: that is the")
	fmt.Println("test-and-set protocol, rediscovered automatically.")
}
