// Splitphase verifies surge's rec_ptr split-phase idiom (Section 6): an
// interrupt handler fires only while interrupts are enabled, disables
// them, writes the shared pointer and posts a task; the task writes and
// re-enables the interrupt. No lock protects rec_ptr — mutual exclusion is
// carried by the interrupt status bit — so the lockset baseline warns
// while CIRC proves race freedom.
package main

import (
	"context"
	"fmt"
	"log"

	"circ"
)

const src = `
global int rec_ptr;
global int intDisabled;
global int taskPosted;
global int taskRunning;

thread Dev {
  local int mine;
  while (1) {
    choose {
      // Interrupt handler: fires only while enabled; disables itself.
      atomic {
        mine = 0;
        if (intDisabled == 0) { intDisabled = 1; mine = 1; }
      }
      if (mine == 1) {
        rec_ptr = rec_ptr + 1;
        atomic { taskPosted = 1; }
      }
    } or {
      // Task: runs once posted; tasks never preempt tasks.
      atomic {
        mine = 0;
        if (taskPosted == 1) {
          if (taskRunning == 0) { taskRunning = 1; mine = 1; }
        }
      }
      if (mine == 1) {
        rec_ptr = rec_ptr + 2;
        atomic { taskPosted = 0; taskRunning = 0; intDisabled = 0; }
      }
    }
  }
}
`

func main() {
	fmt.Println("checking surge's rec_ptr (split-phase interrupt idiom) ...")

	rep, err := circ.Check(context.Background(), src, circ.WithTarget("", "rec_ptr"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CIRC: %s (predicates: %d, context ACFA: %d locations)\n",
		rep.Verdict, len(rep.Preds), rep.FinalACFA.NumLocs())
	for _, p := range rep.Preds {
		fmt.Printf("  predicate: %s\n", p)
	}

	ls, err := circ.Lockset(src, "", 3)
	if err != nil {
		log.Fatal(err)
	}
	if ls.Racy("rec_ptr") {
		fmt.Printf("lockset (Eraser): FALSE POSITIVE — %s\n", ls.Warnings["rec_ptr"])
	} else {
		fmt.Println("lockset (Eraser): silent")
	}

	fc, err := circ.Flowcheck(src, "")
	if err != nil {
		log.Fatal(err)
	}
	if fc.Racy("rec_ptr") {
		fmt.Println("flowcheck (nesC): FALSE POSITIVE — rec_ptr accessed outside atomic;")
		fmt.Println("  the nesC compiler would demand a `norace` annotation here.")
	} else {
		fmt.Println("flowcheck (nesC): silent")
	}

	// Cross-validate on a bounded instance with the explicit checker.
	ex, err := circ.ExplicitCheck(src, "", 2, "rec_ptr")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explicit model checker (2 threads, %d states): race=%t\n", ex.NumStates, ex.Race)
}
