// Buggy reproduces the paper's sense/tosPort finding (Section 6): an
// ADC-completion interrupt resets the sampling state machine while an
// owner is still writing the port, letting a second thread in. CIRC
// reports the race with a concrete interleaved trace; modelling the
// interrupt-enable bit (as the paper did after consulting the programmer)
// makes the protocol verifiable.
package main

import (
	"context"
	"fmt"
	"log"

	"circ"
)

const buggySrc = `
global int tosPort;
global int sState;

thread Sense {
  local int mine;
  while (1) {
    choose {
      atomic {
        mine = 0;
        if (sState == 0) { sState = 1; mine = 1; }
      }
      if (mine == 1) {
        tosPort = tosPort + 1;
        atomic { sState = 0; }
      }
    } or {
      // ADC interrupt: resets the state machine — at ANY time. Bug.
      atomic { if (sState == 1) { sState = 0; } }
    }
  }
}
`

const fixedSrc = `
global int tosPort;
global int sState;
global int intEnabled;

thread Sense {
  local int mine;
  while (1) {
    choose {
      atomic {
        mine = 0;
        if (sState == 0) { sState = 1; mine = 1; }
      }
      if (mine == 1) {
        tosPort = tosPort + 1;
        atomic { intEnabled = 1; }
      }
    } or {
      // ADC interrupt: only enabled once the owner finished writing.
      atomic {
        if (intEnabled == 1) { sState = 0; intEnabled = 0; }
      }
    }
  }
}
`

func main() {
	fmt.Println("checking sense's tosPort with the interrupt UNmodelled (buggy) ...")
	rep, err := circ.Check(context.Background(), buggySrc, circ.WithTarget("", "tosPort"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: %s\n", rep.Verdict)
	if rep.Race != nil {
		fmt.Println("interleaved race trace (T0 = main; note the interrupt resetting")
		fmt.Println("sState between the claim and the write):")
		fmt.Print(rep.Race)
	}

	fmt.Println("\nchecking again with the interrupt-enable bit modelled (fixed) ...")
	rep, err = circ.Check(context.Background(), fixedSrc, circ.WithTarget("", "tosPort"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: %s (predicates: %v)\n", rep.Verdict, rep.Preds)
}
