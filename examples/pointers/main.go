// Pointers demonstrates the Section 5 memory model: race checking of
// accesses performed through pointers, resolved by the built-in
// flow-insensitive alias analysis. A buffer pointer is swapped between two
// buffers under a state-variable lock; the checker must reason through the
// aliasing to prove both buffers race-free, and must catch the race when
// the double-buffering discipline is broken.
package main

import (
	"context"
	"fmt"
	"log"

	"circ"
)

// Double buffering: writers fill the buffer the shared pointer currently
// designates, holding the test-and-set lock; the swap also happens under
// the lock. Both buffers are race-free.
const safeSrc = `
global int bufA;
global int bufB;
global int cur;
global int lock;

thread Writer {
  local int mine;
  local int p;
  while (1) {
    atomic {
      mine = 0;
      if (lock == 0) { lock = 1; mine = 1; }
    }
    if (mine == 1) {
      if (cur == 0) { p = &bufA; } else { p = &bufB; }
      *p = *p + 1;           // write through the pointer
      if (cur == 0) { cur = 1; } else { cur = 0; }
      lock = 0;
    }
  }
}
`

// Broken: the write through the pointer happens after releasing the lock.
const racySrc = `
global int bufA;
global int bufB;
global int cur;
global int lock;

thread Writer {
  local int mine;
  local int p;
  while (1) {
    atomic {
      mine = 0;
      if (lock == 0) { lock = 1; mine = 1; }
    }
    if (mine == 1) {
      if (cur == 0) { p = &bufA; } else { p = &bufB; }
      lock = 0;
      *p = *p + 1;           // BUG: unprotected write through the pointer
    }
  }
}
`

func main() {
	for _, buf := range []string{"bufA", "bufB"} {
		rep, err := circ.Check(context.Background(), safeSrc, circ.WithTarget("", buf))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("double-buffering, %s: %v (predicates: %d)\n", buf, rep.Verdict, len(rep.Preds))
	}

	rep, err := circ.Check(context.Background(), racySrc, circ.WithTarget("", "bufA"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broken variant, bufA: %v\n", rep.Verdict)
	if rep.Race != nil {
		fmt.Println("the alias analysis resolved *p to {bufA, bufB}; the guarded")
		fmt.Println("write to bufA races once the lock is dropped early:")
		fmt.Print(rep.Race)
	}
}
