// Quickstart: prove race freedom of the paper's Figure 1 test-and-set
// program with one call, then break it and get a concrete race trace.
// Every Report embeds a telemetry snapshot; the end of main prints it.
package main

import (
	"context"
	"fmt"
	"log"

	"circ"
)

const safeSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

const racySrc = `
global int x;

thread Worker {
  while (1) {
    x = x + 1;
  }
}
`

func main() {
	ctx := context.Background()
	chk := circ.NewChecker()

	// Prove the absence of races on x for arbitrarily many Worker threads.
	// The default pipeline discharges the test-and-set idiom statically:
	// the flag-guard analysis proves every unprotected access owned.
	rep, err := chk.CheckSource(ctx, safeSrc, "", "x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test-and-set: %s\n", rep.Summary())

	// Run the inference engine itself (triage off) to see the paper's
	// CIRC loop discover predicates and a context model.
	engRep, err := circ.NewChecker(circ.WithTriage(false)).
		CheckSource(ctx, safeSrc, "", "x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  engine run: %s\n", engRep.Verdict)
	fmt.Printf("  discovered predicates: %v\n", engRep.Preds)
	fmt.Printf("  inferred context model: %d locations, counter k=%d\n",
		engRep.FinalACFA.NumLocs(), engRep.K)

	// The unprotected variant yields a genuine interleaved race trace.
	rep, err = chk.CheckSource(ctx, racySrc, "", "x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unprotected:  %s\n", rep.Verdict)
	fmt.Printf("  interleaved trace (T0 = main thread):\n%s", rep.Race)

	// Every Report embeds its own metrics snapshot, and the Checker's
	// registry aggregates across both analyses above.
	fmt.Printf("\nmetrics for the second analysis:\n%s", rep.Metrics.String())
	fmt.Printf("\nprocess-wide totals:\n%s", chk.Metrics().Snapshot().String())
}
