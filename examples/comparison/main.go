// Comparison runs the three checkers — CIRC, the Eraser-style lockset
// detector, and the nesC flow-based analysis — over the synchronisation
// idiom suite, reproducing the paper's motivation: the baselines flag the
// state-variable idioms as racy (false positives), CIRC proves them safe,
// and everyone catches the genuinely racy program.
package main

import (
	"context"
	"fmt"
	"log"

	"circ"
	"circ/internal/benchapps"
)

func main() {
	fmt.Printf("%-36s %-6s | %-8s %-9s %-9s\n", "idiom", "truth", "CIRC", "lockset", "flow")
	fmt.Println("------------------------------------------------------------------------------")
	for _, app := range benchapps.FalsePositiveSuite() {
		rep, err := circ.Check(context.Background(), app.Source, circ.WithTarget("", app.Variable))
		if err != nil {
			log.Fatal(err)
		}
		ls, err := circ.Lockset(app.Source, "", 3)
		if err != nil {
			log.Fatal(err)
		}
		fc, err := circ.Flowcheck(app.Source, "")
		if err != nil {
			log.Fatal(err)
		}
		truth := "safe"
		if !app.ExpectSafe {
			truth = "racy"
		}
		fmt.Printf("%-36s %-6s | %-8s %-9s %-9s\n",
			app.Idiom, truth, rep.Verdict, verdict(ls.Racy(app.Variable)), verdict(fc.Racy(app.Variable)))
	}
	fmt.Println()
	fmt.Println("A \"warns\" verdict on a safe idiom is a false positive. The lockset and")
	fmt.Println("flow-based tools cannot see that the state variable orders the accesses;")
	fmt.Println("CIRC infers a context model precise enough to prove mutual exclusion.")
}

func verdict(warns bool) string {
	if warns {
		return "warns"
	}
	return "silent"
}
