// Package apiv1 defines the versioned JSON wire types of the circd
// checker daemon. These are the daemon's compatibility contract: field
// names here are stable, additions are backwards compatible, and
// renames or removals require a new API version. The types are plain
// data — no behaviour, no dependency on the checker's internal types —
// so clients in any language can be generated from this file alone.
//
// Endpoints (all rooted at the server):
//
//	POST /v1/check            CheckRequest  -> SubmitResponse (202)
//	GET  /v1/jobs             -> JobList (completed-job ring; ?state=, ?limit=, ?offset=)
//	GET  /v1/jobs/{id}        -> Job
//	GET  /v1/jobs/{id}/events -> text/event-stream of journal events
//	GET  /v1/jobs/{id}/report -> text/html flight-recorder report
//	GET  /v1/jobs/{id}/trace  -> Chrome trace_event JSON (flight-deck trace)
//	GET  /v1/stats            -> Stats
//	GET  /metrics             -> Prometheus text exposition (format 0.0.4)
//	GET  /debug/circ/ops      -> text/html ops dashboard
//	GET  /debug/circ/slowlog  -> SlowLog (SMT slow-query ring)
//
// Every /v1 endpoint accepts a W3C traceparent request header; the
// daemon joins the caller's distributed trace when one is supplied and
// mints a fresh trace identity otherwise. The response carries the
// resolved identity back in a traceparent header.
//
// Errors are returned as an Error body with a matching HTTP status.
package apiv1

import "time"

// CheckRequest submits a program for race checking.
type CheckRequest struct {
	// Program is the source text in the checker's input language.
	Program string `json:"program"`
	// Targets restricts the analysis to specific (thread, variable)
	// pairs. Empty means every (thread, global) pair of the program.
	Targets []Target `json:"targets,omitempty"`
	// Options tunes the engine; nil selects the daemon's defaults.
	Options *Options `json:"options,omitempty"`
}

// Target names one analysis unit: a thread template and the global
// variable checked for races on it.
type Target struct {
	// Thread is the thread template name; empty selects the program's
	// sole thread.
	Thread string `json:"thread,omitempty"`
	// Variable is the global to check.
	Variable string `json:"variable"`
}

// Options are the engine knobs a request may override. Zero values mean
// "daemon default", so a partial object is always valid.
type Options struct {
	// K is the initial counter parameter of the context model.
	K int `json:"k,omitempty"`
	// Omega selects the omega-CIRC variant (counter widening to ω).
	Omega bool `json:"omega,omitempty"`
	// Parallelism bounds the job's worker pool; capped by the daemon.
	Parallelism int `json:"parallelism,omitempty"`
	// Sched selects the reachability scheduler: "steal" (the default
	// deterministic work-stealing pool) or "level" (level-synchronous).
	// Empty keeps the daemon default.
	Sched string `json:"sched,omitempty"`
	// Triage disables ("off") or forces ("on") the static triage stage.
	// Empty keeps the default (on).
	Triage string `json:"triage,omitempty"`
	// Slicing disables ("off") or forces ("on") cone-of-influence
	// slicing. Empty keeps the default (on).
	Slicing string `json:"slicing,omitempty"`
	// SeedPreds disables ("off") or forces ("on") seeding the engine's
	// initial predicates from the static flag-guard analysis. Empty keeps
	// the default (on).
	SeedPreds string `json:"seed_preds,omitempty"`
	// MaxRounds, MaxInner and MaxStates bound the inference; zero keeps
	// the engine defaults.
	MaxRounds int `json:"max_rounds,omitempty"`
	MaxInner  int `json:"max_inner,omitempty"`
	MaxStates int `json:"max_states,omitempty"`
	// TimeoutSeconds cancels the job after this much wall-clock time;
	// zero applies the daemon's per-job default.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// SubmitResponse acknowledges an accepted job.
type SubmitResponse struct {
	// JobID identifies the job in subsequent requests.
	JobID string `json:"job_id"`
	// State is the job's state at acceptance ("queued").
	State string `json:"state"`
	// JobURL and EventsURL are the poll and live-journal endpoints for
	// this job, relative to the server root.
	JobURL    string `json:"job_url"`
	EventsURL string `json:"events_url"`
	// TraceURL serves the job's flight-deck trace (Chrome trace_event
	// JSON with per-worker scheduler lanes and SMT solve spans).
	TraceURL string `json:"trace_url"`
	// TraceID is the job's W3C trace ID: the caller's when the submit
	// carried a valid traceparent header, daemon-minted otherwise.
	TraceID string `json:"trace_id"`
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job is the polled view of a submission.
type Job struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Error is set when State is "failed" or "cancelled".
	Error string `json:"error,omitempty"`
	// Results holds one entry per target, in deterministic program
	// order, once the job is done.
	Results []TargetResult `json:"results,omitempty"`
	// Summary is the human-readable batch summary, once done.
	Summary     string     `json:"summary,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// ElapsedSeconds is the batch wall-clock time, once done.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	// TraceID is the job's W3C trace ID; TraceURL serves its flight-deck
	// trace.
	TraceID  string `json:"trace_id,omitempty"`
	TraceURL string `json:"trace_url,omitempty"`
}

// TargetResult is one target's verdict.
type TargetResult struct {
	Thread   string `json:"thread,omitempty"`
	Variable string `json:"variable"`
	// Verdict is "safe", "unsafe", "unknown", or "error".
	Verdict string `json:"verdict"`
	// Reason qualifies unknown/error verdicts.
	Reason string `json:"reason,omitempty"`
	// Triage names the static rule that discharged the pair without
	// running inference ("read-only", "thread-local", "atomic-covered",
	// "flag-guarded").
	Triage string `json:"triage,omitempty"`
	// SeededPreds counts the initial predicates the static flag-guard
	// analysis exported into this target's inference run.
	SeededPreds int `json:"seeded_preds,omitempty"`
	// Summary is the one-line human-readable report.
	Summary string `json:"summary,omitempty"`
	// K, Preds and Rounds describe the evidence: final counter value,
	// number of inferred predicates, refinement rounds.
	K      int `json:"k,omitempty"`
	Preds  int `json:"preds,omitempty"`
	Rounds int `json:"rounds,omitempty"`
	// CertificateReused reports that this verdict was re-established
	// from the daemon's certificate store instead of re-running
	// inference.
	CertificateReused bool    `json:"certificate_reused,omitempty"`
	ElapsedSeconds    float64 `json:"elapsed_seconds"`
	// Race is the interleaved race trace (unsafe verdicts only).
	Race string `json:"race,omitempty"`
	// Error is the unit's failure, when Verdict is "error".
	Error string `json:"error,omitempty"`
}

// JobSummary is the compact flight-data record of one completed job,
// retained in the daemon's bounded completed-job ring and listed by
// GET /v1/jobs.
type JobSummary struct {
	ID    string `json:"id"`
	State string `json:"state"` // "done", "failed", or "cancelled"
	// Error is set for failed/cancelled jobs.
	Error          string    `json:"error,omitempty"`
	SubmittedAt    time.Time `json:"submitted_at"`
	FinishedAt     time.Time `json:"finished_at"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	// SMTSolveSeconds is the cumulative wall time the job spent inside
	// the SMT solver (sum over all solver calls; concurrent calls add).
	SMTSolveSeconds float64 `json:"smt_solve_seconds"`
	// Targets counts the job's analysis units; Safe/Unsafe/Unknown/Errors
	// split them by verdict.
	Targets int `json:"targets"`
	Safe    int `json:"safe"`
	Unsafe  int `json:"unsafe"`
	Unknown int `json:"unknown"`
	Errors  int `json:"errors"`
	// CertificatesReused counts targets whose verdict was re-established
	// from the certificate store instead of re-running inference.
	CertificatesReused int `json:"certificates_reused"`
	// JournalEvents is the number of flight-recorder events the job
	// produced.
	JournalEvents int `json:"journal_events"`
	// CIRCIterations is the number of CIRC refinement iterations the job
	// ran across all targets. A warm job re-established entirely from
	// stored certificates reports 0.
	CIRCIterations int `json:"circ_iterations"`
	// Summary is the human-readable batch summary.
	Summary string `json:"summary,omitempty"`
	// StoreBytes/ArenaBytes sample the daemon's certificate-store and
	// expression-arena footprints at job completion — the data points
	// behind the ops dashboard's watermark trend.
	StoreBytes int64 `json:"store_bytes"`
	ArenaBytes int64 `json:"arena_bytes"`
	// TraceID is the job's W3C trace ID, correlating the ring record with
	// logs, spans, and any caller-side distributed trace.
	TraceID string `json:"trace_id,omitempty"`
	// TimelineSegments counts the scheduler timeline segments the job
	// recorded (busy/idle/steal intervals across its worker lanes).
	TimelineSegments int `json:"timeline_segments,omitempty"`
}

// JobList answers GET /v1/jobs: a page of the completed-job ring, newest
// first. Total counts the ring's current entries after the state filter;
// Evicted counts completed jobs that have already aged out of the ring.
type JobList struct {
	Jobs    []JobSummary `json:"jobs"`
	Total   int          `json:"total"`
	Offset  int          `json:"offset"`
	Evicted int64        `json:"evicted"`
}

// Stats is the daemon-wide /v1/stats snapshot.
type Stats struct {
	Build     BuildInfo      `json:"build"`
	Jobs      JobStats       `json:"jobs"`
	Arena     ArenaStats     `json:"arena"`
	SMT       SMTStats       `json:"smt"`
	Store     StoreStats     `json:"store"`
	Scheduler SchedulerStats `json:"scheduler"`
	Triage    TriageStats    `json:"triage"`
	Lifetime  LifetimeStats  `json:"lifetime"`
}

// BuildInfo identifies the running daemon: library version, Go
// toolchain, default scheduler, and GOMAXPROCS. The same labels back the
// circ_build_info gauge in /metrics.
type BuildInfo struct {
	Version    string `json:"version"`
	GoVersion  string `json:"go_version"`
	Sched      string `json:"sched"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// JobStats counts submissions by outcome. Active is the number of jobs
// currently queued or running.
type JobStats struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Active    int64 `json:"active"`
}

// ArenaStats describes the shared hash-consing arena. Interning only
// appends, but idle-time compaction sweeps nodes no longer reachable
// from the daemon's certificate store, so the live values can drop
// below the high-water marks.
type ArenaStats struct {
	// Nodes is the number of live interned expression nodes.
	Nodes int64 `json:"nodes"`
	// Bytes estimates the arena's resident footprint.
	Bytes          int64 `json:"bytes"`
	NodesHighWater int64 `json:"nodes_high_water"`
	BytesHighWater int64 `json:"bytes_high_water"`
	// Compactions counts completed arena compaction passes.
	Compactions int64 `json:"compactions"`
}

// SMTStats describes the shared SMT verdict cache and the
// learned-clause portfolio layered on it.
type SMTStats struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	FastPath int64   `json:"fast_path"`
	HitRate  float64 `json:"hit_rate"`
	// ClausesShared counts learned clauses replayed into a session from
	// another session's conflict analysis over the same formula.
	ClausesShared int64 `json:"clauses_shared"`
	// SlowQueries counts solves that exceeded the -smt-slowlog threshold;
	// SlowLogThresholdMS is the active threshold (0: capture disabled).
	// The entries themselves are served at /debug/circ/slowlog.
	SlowQueries        int64   `json:"slow_queries"`
	SlowLogThresholdMS float64 `json:"slowlog_threshold_ms,omitempty"`
}

// SchedulerStats describes the work-stealing reachability scheduler,
// aggregated over every analysis the daemon has run.
type SchedulerStats struct {
	// Steals counts slots taken from another worker's deque.
	Steals int64 `json:"steals"`
	// WorkerIdleSeconds is the cumulative wall time expansion workers
	// spent parked waiting for work.
	WorkerIdleSeconds float64 `json:"worker_idle_seconds"`
}

// StoreStats describes the certificate store, including its LRU bound
// and growth watermarks.
type StoreStats struct {
	Entries              int     `json:"entries"`
	Hits                 int64   `json:"hits"`
	Misses               int64   `json:"misses"`
	Writes               int64   `json:"writes"`
	Revalidations        int64   `json:"revalidations"`
	RevalidationFailures int64   `json:"revalidation_failures"`
	HitRatio             float64 `json:"hit_ratio"`
	// Evictions counts entries dropped by the LRU cap; MaxEntries is the
	// cap itself (0 = unbounded).
	Evictions  int64 `json:"evictions"`
	MaxEntries int   `json:"max_entries"`
	// Bytes estimates the resident evidence footprint; the high-water
	// fields are the largest values ever observed.
	Bytes            int64 `json:"bytes"`
	BytesHighWater   int64 `json:"bytes_high_water"`
	EntriesHighWater int64 `json:"entries_high_water"`
}

// TriageStats describes the static-analysis pipeline, aggregated over
// every analysis the daemon has run: discharges by rule and the initial
// predicates exported into inference runs. The same numbers back the
// circ_triage_discharged_total{reason=...} and
// circ_seed_predicates_total families in /metrics.
type TriageStats struct {
	// Discharged counts (thread, variable) pairs proved race-free
	// statically; ByReason splits the total by discharge rule.
	Discharged int64            `json:"discharged"`
	ByReason   map[string]int64 `json:"by_reason,omitempty"`
	// SeededPredicates counts initial predicates the flag-guard analysis
	// exported into inference runs (pairs it could not discharge).
	SeededPredicates int64 `json:"seeded_predicates"`
}

// LifetimeStats aggregates the completed-job flight data over the
// daemon's lifetime (counters survive ring eviction).
type LifetimeStats struct {
	// Targets counts analysis units across all completed jobs;
	// CertificatesReused of them were re-established from the store.
	Targets            int64 `json:"targets"`
	CertificatesReused int64 `json:"certificates_reused"`
	// ReuseHitRate is CertificatesReused / Targets, in [0, 1].
	ReuseHitRate float64 `json:"reuse_hit_rate"`
	// Verdicts counts targets by verdict class ("safe", "unsafe",
	// "unknown", "error").
	Verdicts map[string]int64 `json:"verdicts,omitempty"`
	// CheckLatency describes the distribution of per-job wall times.
	CheckLatency LatencyQuantiles `json:"check_latency"`
}

// LatencyQuantiles summarises a latency distribution estimated from the
// daemon's 1-2-5 bucket histogram.
type LatencyQuantiles struct {
	Count      int64   `json:"count"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// SlowLog answers GET /debug/circ/slowlog: the retained SMT slow-query
// entries, newest first. Entry fields mirror the checker's slow-query
// record: sequence number, capture time, interned formula ID, query kind
// ("direct" or "session"), the session's cube key, duration, result, and
// the clause-sharing traffic attributable to the solve.
type SlowLog struct {
	// ThresholdMS is the active capture threshold (0: disabled).
	ThresholdMS float64 `json:"threshold_ms"`
	// Total counts slow queries ever recorded, including entries the
	// bounded ring has since overwritten.
	Total int64 `json:"total"`
	// Entries is the retained ring, newest first.
	Entries []SlowQueryEntry `json:"entries"`
}

// SlowQueryEntry is one captured slow SMT solve.
type SlowQueryEntry struct {
	Seq             int64     `json:"seq"`
	At              time.Time `json:"at"`
	FormulaID       uint64    `json:"formula_id"`
	Kind            string    `json:"kind"`
	CubeKey         string    `json:"cube_key,omitempty"`
	DurationMS      float64   `json:"duration_ms"`
	Result          string    `json:"result"`
	ClausesReplayed int       `json:"clauses_replayed,omitempty"`
	ClausesLearned  int       `json:"clauses_learned,omitempty"`
	TraceID         string    `json:"trace_id,omitempty"`
}

// Error is the JSON error body accompanying every non-2xx response.
type Error struct {
	// Code is a stable machine-readable identifier, e.g. "parse_error",
	// "not_found", "draining", "invalid_request".
	Code    string `json:"code"`
	Message string `json:"message"`
}
