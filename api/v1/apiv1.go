// Package apiv1 defines the versioned JSON wire types of the circd
// checker daemon. These are the daemon's compatibility contract: field
// names here are stable, additions are backwards compatible, and
// renames or removals require a new API version. The types are plain
// data — no behaviour, no dependency on the checker's internal types —
// so clients in any language can be generated from this file alone.
//
// Endpoints (all rooted at /v1):
//
//	POST /v1/check            CheckRequest  -> SubmitResponse (202)
//	GET  /v1/jobs/{id}        -> Job
//	GET  /v1/jobs/{id}/events -> text/event-stream of journal events
//	GET  /v1/jobs/{id}/report -> text/html flight-recorder report
//	GET  /v1/stats            -> Stats
//
// Errors are returned as an Error body with a matching HTTP status.
package apiv1

import "time"

// CheckRequest submits a program for race checking.
type CheckRequest struct {
	// Program is the source text in the checker's input language.
	Program string `json:"program"`
	// Targets restricts the analysis to specific (thread, variable)
	// pairs. Empty means every (thread, global) pair of the program.
	Targets []Target `json:"targets,omitempty"`
	// Options tunes the engine; nil selects the daemon's defaults.
	Options *Options `json:"options,omitempty"`
}

// Target names one analysis unit: a thread template and the global
// variable checked for races on it.
type Target struct {
	// Thread is the thread template name; empty selects the program's
	// sole thread.
	Thread string `json:"thread,omitempty"`
	// Variable is the global to check.
	Variable string `json:"variable"`
}

// Options are the engine knobs a request may override. Zero values mean
// "daemon default", so a partial object is always valid.
type Options struct {
	// K is the initial counter parameter of the context model.
	K int `json:"k,omitempty"`
	// Omega selects the omega-CIRC variant (counter widening to ω).
	Omega bool `json:"omega,omitempty"`
	// Parallelism bounds the job's worker pool; capped by the daemon.
	Parallelism int `json:"parallelism,omitempty"`
	// Triage disables ("off") or forces ("on") the static triage stage.
	// Empty keeps the default (on).
	Triage string `json:"triage,omitempty"`
	// Slicing disables ("off") or forces ("on") cone-of-influence
	// slicing. Empty keeps the default (on).
	Slicing string `json:"slicing,omitempty"`
	// MaxRounds, MaxInner and MaxStates bound the inference; zero keeps
	// the engine defaults.
	MaxRounds int `json:"max_rounds,omitempty"`
	MaxInner  int `json:"max_inner,omitempty"`
	MaxStates int `json:"max_states,omitempty"`
	// TimeoutSeconds cancels the job after this much wall-clock time;
	// zero applies the daemon's per-job default.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// SubmitResponse acknowledges an accepted job.
type SubmitResponse struct {
	// JobID identifies the job in subsequent requests.
	JobID string `json:"job_id"`
	// State is the job's state at acceptance ("queued").
	State string `json:"state"`
	// JobURL and EventsURL are the poll and live-journal endpoints for
	// this job, relative to the server root.
	JobURL    string `json:"job_url"`
	EventsURL string `json:"events_url"`
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job is the polled view of a submission.
type Job struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Error is set when State is "failed" or "cancelled".
	Error string `json:"error,omitempty"`
	// Results holds one entry per target, in deterministic program
	// order, once the job is done.
	Results []TargetResult `json:"results,omitempty"`
	// Summary is the human-readable batch summary, once done.
	Summary     string     `json:"summary,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// ElapsedSeconds is the batch wall-clock time, once done.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

// TargetResult is one target's verdict.
type TargetResult struct {
	Thread   string `json:"thread,omitempty"`
	Variable string `json:"variable"`
	// Verdict is "safe", "unsafe", "unknown", or "error".
	Verdict string `json:"verdict"`
	// Reason qualifies unknown/error verdicts.
	Reason string `json:"reason,omitempty"`
	// Triage names the static rule that discharged the pair without
	// running inference ("read-only", "thread-local", "atomic-covered").
	Triage string `json:"triage,omitempty"`
	// Summary is the one-line human-readable report.
	Summary string `json:"summary,omitempty"`
	// K, Preds and Rounds describe the evidence: final counter value,
	// number of inferred predicates, refinement rounds.
	K      int `json:"k,omitempty"`
	Preds  int `json:"preds,omitempty"`
	Rounds int `json:"rounds,omitempty"`
	// CertificateReused reports that this verdict was re-established
	// from the daemon's certificate store instead of re-running
	// inference.
	CertificateReused bool    `json:"certificate_reused,omitempty"`
	ElapsedSeconds    float64 `json:"elapsed_seconds"`
	// Race is the interleaved race trace (unsafe verdicts only).
	Race string `json:"race,omitempty"`
	// Error is the unit's failure, when Verdict is "error".
	Error string `json:"error,omitempty"`
}

// Stats is the daemon-wide /v1/stats snapshot.
type Stats struct {
	Jobs  JobStats   `json:"jobs"`
	Arena ArenaStats `json:"arena"`
	SMT   SMTStats   `json:"smt"`
	Store StoreStats `json:"store"`
}

// JobStats counts submissions by outcome. Active is the number of jobs
// currently queued or running.
type JobStats struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Active    int64 `json:"active"`
}

// ArenaStats describes the shared hash-consing arena.
type ArenaStats struct {
	// Nodes is the number of distinct interned expression nodes.
	Nodes int64 `json:"nodes"`
}

// SMTStats describes the shared SMT verdict cache.
type SMTStats struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	FastPath int64   `json:"fast_path"`
	HitRate  float64 `json:"hit_rate"`
}

// StoreStats describes the certificate store.
type StoreStats struct {
	Entries              int     `json:"entries"`
	Hits                 int64   `json:"hits"`
	Misses               int64   `json:"misses"`
	Writes               int64   `json:"writes"`
	Revalidations        int64   `json:"revalidations"`
	RevalidationFailures int64   `json:"revalidation_failures"`
	HitRatio             float64 `json:"hit_ratio"`
}

// Error is the JSON error body accompanying every non-2xx response.
type Error struct {
	// Code is a stable machine-readable identifier, e.g. "parse_error",
	// "not_found", "draining", "invalid_request".
	Code    string `json:"code"`
	Message string `json:"message"`
}
