package circ

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"circ/internal/cfa"
	icirc "circ/internal/circ"
	"circ/internal/explicit"
	"circ/internal/lang"
	"circ/internal/smt"
)

// progGen generates small random MiniNesC programs over two globals (g, s)
// and one local (l), mixing atomic sections, guarded branches, loops, and
// havoc. The generated programs exercise the whole pipeline; the
// cross-validation below checks CIRC's verdicts against exhaustive
// 2-thread explicit checking.
type progGen struct {
	rng *rand.Rand
	b   strings.Builder
}

func (g *progGen) stmt(depth int, inLoop bool, indent string) {
	switch n := g.rng.Intn(10); {
	case n < 3: // assignment
		g.b.WriteString(indent + g.assign() + "\n")
	case n < 4 && depth > 0: // atomic
		g.b.WriteString(indent + "atomic {\n")
		for i := 0; i <= g.rng.Intn(2); i++ {
			g.stmt(depth-1, inLoop, indent+"  ")
		}
		g.b.WriteString(indent + "}\n")
	case n < 6 && depth > 0: // if
		fmt.Fprintf(&g.b, "%sif (%s) {\n", indent, g.cond())
		g.stmt(depth-1, inLoop, indent+"  ")
		if g.rng.Intn(2) == 0 {
			g.b.WriteString(indent + "} else {\n")
			g.stmt(depth-1, inLoop, indent+"  ")
		}
		g.b.WriteString(indent + "}\n")
	case n < 7 && depth > 0: // choose
		g.b.WriteString(indent + "choose {\n")
		g.stmt(depth-1, inLoop, indent+"  ")
		g.b.WriteString(indent + "} or {\n")
		g.stmt(depth-1, inLoop, indent+"  ")
		g.b.WriteString(indent + "}\n")
	case n < 8: // havoc
		fmt.Fprintf(&g.b, "%s%s = *;\n", indent, g.lhs())
	default:
		g.b.WriteString(indent + "skip;\n")
	}
}

func (g *progGen) lhs() string {
	return []string{"g", "s", "l"}[g.rng.Intn(3)]
}

func (g *progGen) term() string {
	switch g.rng.Intn(5) {
	case 0:
		return "g"
	case 1:
		return "s"
	case 2:
		return "l"
	case 3:
		return fmt.Sprintf("%d", g.rng.Intn(3))
	default:
		return fmt.Sprintf("(%s + %d)", g.lhs(), g.rng.Intn(2))
	}
}

func (g *progGen) assign() string {
	return fmt.Sprintf("%s = %s;", g.lhs(), g.term())
}

func (g *progGen) cond() string {
	ops := []string{"==", "!=", "<", "<="}
	return fmt.Sprintf("%s %s %s", g.term(), ops[g.rng.Intn(len(ops))], g.term())
}

func (g *progGen) program() string {
	g.b.Reset()
	g.b.WriteString("global int g;\nglobal int s;\n\nthread T {\n  local int l;\n")
	if g.rng.Intn(2) == 0 {
		g.b.WriteString("  while (1) {\n")
		for i := 0; i <= g.rng.Intn(3); i++ {
			g.stmt(2, true, "    ")
		}
		g.b.WriteString("  }\n")
	} else {
		for i := 0; i <= 2+g.rng.Intn(3); i++ {
			g.stmt(2, false, "  ")
		}
	}
	g.b.WriteString("}\n")
	return g.b.String()
}

// TestFuzzCrossValidation generates random programs and checks that CIRC's
// verdict on races over variable g is consistent with exhaustive 2-thread
// explicit-state checking:
//
//   - CIRC Safe  => no 2-thread race exists (soundness);
//   - CIRC Unsafe => a race exists with 2 or 3 threads (trace realism).
//
// Unknown verdicts (budget/refinement limits) are skipped.
func TestFuzzCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing is slow")
	}
	gen := &progGen{rng: rand.New(rand.NewSource(20040609))} // the paper's publication date
	checked, safeN, unsafeN, unknownN := 0, 0, 0, 0
	for trial := 0; trial < 500; trial++ {
		src := gen.program()
		p, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("generator produced invalid program: %v\n%s", err, src)
		}
		c, err := cfa.Build(p, "")
		if err != nil {
			t.Fatalf("build: %v\n%s", err, src)
		}
		rep, err := icirc.Check(context.Background(), c, "g", icirc.Options{
			MaxStates: 40000, MaxRounds: 12, MaxInner: 20,
		}, smt.NewChecker())
		if err != nil {
			t.Fatalf("check: %v\n%s", err, src)
		}
		if rep.Verdict == icirc.Unknown {
			unknownN++
			continue
		}
		checked++
		// The oracle's havoc domain must cover every constant the generator
		// can compare against, or bounded havoc misses races that unbounded
		// havoc (CIRC's semantics) makes real.
		exOpts := explicit.Options{MaxStates: 500000, ValueBound: 16, HavocDomain: []int64{-1, 0, 1, 2, 3, 4}}
		ex, err := explicit.NewSymmetric(c, 2).CheckRaces("g", exOpts)
		if err != nil {
			// Bounded-value wrap differences can blow the explicit space;
			// skip rather than fail.
			unknownN++
			continue
		}
		switch rep.Verdict {
		case icirc.Safe:
			safeN++
			if ex.Race {
				t.Fatalf("SOUNDNESS: CIRC safe but 2-thread race exists:\n%s\ntrace: %v", src, ex.Trace)
			}
		case icirc.Unsafe:
			unsafeN++
			found := ex.Race
			if !found {
				ex3Opts := explicit.Options{MaxStates: 2000000, ValueBound: 16, HavocDomain: []int64{-1, 0, 1, 2, 3, 4}}
				ex3, err := explicit.NewSymmetric(c, 3).CheckRaces("g", ex3Opts)
				if err == nil {
					found = ex3.Race
				} else {
					// Can't decide with the budget; don't count against.
					found = true
				}
			}
			if !found {
				t.Fatalf("PRECISION: CIRC unsafe but no 2-3 thread race found:\n%s\ntrace:\n%s", src, rep.Race)
			}
		}
	}
	t.Logf("fuzz: %d decided (%d safe, %d unsafe), %d skipped as unknown", checked, safeN, unsafeN, unknownN)
	if checked < 100 {
		t.Fatalf("too few decided runs (%d) for the fuzz to be meaningful", checked)
	}
}
