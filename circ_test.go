package circ

import (
	"context"
	"errors"
	"strings"
	"testing"

	"circ/internal/benchapps"
	"circ/internal/explicit"
)

const tasSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

func TestPublicAPISafe(t *testing.T) {
	// Default pipeline: the flag-guard triage rule proves the test-and-set
	// idiom safe statically, so the report carries the rule, not a model.
	rep, err := Check(context.Background(), tasSrc, WithTarget("", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe {
		t.Fatalf("verdict = %v (%s)", rep.Verdict, rep.Reason)
	}
	if rep.Triage != "flag-guarded" {
		t.Fatalf("triage = %q, want flag-guarded", rep.Triage)
	}
	// Engine path: with triage off the proof is an inferred context model.
	rep, err = Check(context.Background(), tasSrc, WithTarget("", "x"), WithTriage(false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe {
		t.Fatalf("engine verdict = %v (%s)", rep.Verdict, rep.Reason)
	}
	if rep.FinalACFA == nil {
		t.Fatalf("missing context model")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	if _, err := Check(context.Background(), tasSrc); !errors.Is(err, ErrNoVariable) {
		t.Fatalf("missing target: got %v, want ErrNoVariable", err)
	}
	if _, err := Check(context.Background(), "syntax error", WithTarget("", "x")); err == nil {
		t.Fatalf("parse error not propagated")
	}
	if _, err := Check(context.Background(), tasSrc, WithTarget("Nope", "x")); !errors.Is(err, ErrUnknownThread) {
		t.Fatalf("unknown thread: got %v, want ErrUnknownThread", err)
	}
	// The new Checker API reports the same sentinels.
	chk := NewChecker()
	p, err := Parse(tasSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chk.Check(context.Background(), p, "", ""); !errors.Is(err, ErrNoVariable) {
		t.Fatalf("Checker missing variable: got %v, want ErrNoVariable", err)
	}
	if _, err := chk.Check(context.Background(), p, "Nope", "x"); !errors.Is(err, ErrUnknownThread) {
		t.Fatalf("Checker unknown thread: got %v, want ErrUnknownThread", err)
	}
}

func TestProgramAccessors(t *testing.T) {
	p, err := Parse(tasSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ThreadNames(); len(got) != 1 || got[0] != "Worker" {
		t.Fatalf("ThreadNames = %v", got)
	}
	if got := p.Globals(); len(got) != 2 || got[0] != "x" {
		t.Fatalf("Globals = %v", got)
	}
	if p.AST() == nil {
		t.Fatalf("AST() nil")
	}
	c, err := p.CFA("Worker")
	if err != nil || c.Name != "Worker" {
		t.Fatalf("CFA: %v", err)
	}
}

func TestBaselineWrappers(t *testing.T) {
	ls, err := Lockset(tasSrc, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Racy("x") {
		t.Fatalf("lockset wrapper should report the false positive")
	}
	fc, err := Flowcheck(tasSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	if !fc.Racy("x") {
		t.Fatalf("flowcheck wrapper should report the false positive")
	}
	ex, err := ExplicitCheck(tasSrc, "", 2, "x")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Race {
		t.Fatalf("explicit checker found a race in the safe program")
	}
	pr, err := ParamCheck(`
global int x;
thread T {
  while (1) { atomic { x = x + 1; } }
}
`, "", "x")
	if err != nil {
		t.Fatal(err)
	}
	if pr.Verdict.String() != "safe" {
		t.Fatalf("param wrapper verdict = %v", pr.Verdict)
	}
}

// Cross-validation: on every evaluation model, CIRC's verdict for
// unboundedly many threads must be consistent with exhaustive explicit
// checking of the 2-thread instance — CIRC-safe implies no 2-thread race,
// and CIRC-unsafe races must already appear with few threads for these
// models (the paper's races all need only 2-3 threads).
func TestCrossValidationAgainstExplicit(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	check := func(app benchapps.App) {
		t.Run(app.Key(), func(t *testing.T) {
			_, c, err := app.Build()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Check(context.Background(), app.Source, WithTarget("", app.Variable))
			if err != nil {
				t.Fatal(err)
			}
			res2, err := explicit.NewSymmetric(c, 2).CheckRaces(app.Variable, explicit.Options{})
			if err != nil {
				t.Fatal(err)
			}
			switch rep.Verdict {
			case Safe:
				if res2.Race {
					t.Fatalf("CIRC safe but explicit 2-thread race:\n%v", res2.Trace)
				}
			case Unsafe:
				found := res2.Race
				if !found {
					res3, err := explicit.NewSymmetric(c, 3).CheckRaces(app.Variable, explicit.Options{MaxStates: 5000000})
					if err != nil {
						t.Fatal(err)
					}
					found = res3.Race
				}
				if !found {
					t.Fatalf("CIRC reported a race that explicit checking (2-3 threads) cannot reproduce")
				}
			default:
				t.Fatalf("unknown verdict: %s", rep.Reason)
			}
		})
	}
	for _, app := range benchapps.Table1() {
		check(app)
	}
	for _, app := range benchapps.Section6Races() {
		check(app)
	}
}

func TestInterleavingRendering(t *testing.T) {
	rep, err := Check(context.Background(), `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`, WithTarget("", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Unsafe {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
	s := rep.Race.String()
	// The race involves two distinct threads (here two context threads;
	// the main thread may not participate).
	tags := map[string]bool{}
	for _, line := range strings.Split(s, "\n") {
		if i := strings.IndexByte(line, ':'); i > 0 {
			tags[line[:i]] = true
		}
	}
	if len(tags) < 2 {
		t.Fatalf("trace rendering shows fewer than two threads:\n%s", s)
	}
}

func TestWrapperErrorPropagation(t *testing.T) {
	// Bad thread names must surface from every wrapper.
	if _, err := Lockset(tasSrc, "Nope", 2); err == nil {
		t.Errorf("Lockset: bad thread accepted")
	}
	if _, err := Flowcheck(tasSrc, "Nope"); err == nil {
		t.Errorf("Flowcheck: bad thread accepted")
	}
	if _, err := ExplicitCheck(tasSrc, "Nope", 2, "x"); err == nil {
		t.Errorf("ExplicitCheck: bad thread accepted")
	}
	if _, err := ParamCheck(tasSrc, "Nope", "x"); err == nil {
		t.Errorf("ParamCheck: bad thread accepted")
	}
	// Parse errors too.
	if _, err := Lockset("garbage", "", 2); err == nil {
		t.Errorf("Lockset: parse error swallowed")
	}
	if _, err := Flowcheck("garbage", ""); err == nil {
		t.Errorf("Flowcheck: parse error swallowed")
	}
	if _, err := ExplicitCheck("garbage", "", 2, "x"); err == nil {
		t.Errorf("ExplicitCheck: parse error swallowed")
	}
	if _, err := ParamCheck("garbage", "", "x"); err == nil {
		t.Errorf("ParamCheck: parse error swallowed")
	}
}

func TestOmegaViaPublicAPI(t *testing.T) {
	rep, err := Check(context.Background(), tasSrc, WithTarget("", "x"), WithOmega(true))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe {
		t.Fatalf("omega verdict = %v (%s)", rep.Verdict, rep.Reason)
	}
}

func TestVerifyCertificatePublicAPI(t *testing.T) {
	p, err := Parse(tasSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Triage off for the setup run: a flag-guard discharge carries no
	// certificate, and this test verifies one.
	rep, err := NewChecker(WithParallelism(1), WithTriage(false)).
		Check(context.Background(), p, "", "x")
	if err != nil || rep.Verdict != Safe {
		t.Fatalf("setup: %v %v", err, rep.Verdict)
	}
	if err := VerifyCertificate(context.Background(), p, CheckOptions{Variable: "x"}, rep); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}
	// Missing variable and missing ACFA error paths.
	if err := VerifyCertificate(context.Background(), p, CheckOptions{}, rep); !errors.Is(err, ErrNoVariable) {
		t.Errorf("missing variable: got %v, want ErrNoVariable", err)
	}
	if err := VerifyCertificate(context.Background(), p, CheckOptions{Variable: "x"}, &Report{}); err == nil {
		t.Errorf("report without ACFA accepted")
	}
}
