package circ

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// verdictKey flattens everything analysis-relevant in a report — verdict,
// parameter, rounds, predicates, the inferred context model, and the race
// trace — into one comparable string. Telemetry must never change it.
func verdictKey(rep *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "verdict=%s k=%d rounds=%d preds=%v\n", rep.Verdict, rep.K, rep.Rounds, rep.Preds)
	if rep.FinalACFA != nil {
		sb.WriteString(rep.FinalACFA.String())
	}
	if rep.Race != nil {
		sb.WriteString(rep.Race.String())
	}
	return sb.String()
}

// TestTracingPreservesVerdicts: enabling the tracer and the metrics
// registry must leave analysis results byte-identical, including under
// frontier-parallel reachability at GOMAXPROCS.
func TestTracingPreservesVerdicts(t *testing.T) {
	for _, src := range []string{tasSrc, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`} {
		p, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		// Triage off: a statically discharged case records no engine spans,
		// and this test compares the engine's results under tracing.
		par := runtime.GOMAXPROCS(0)
		plain, err := NewChecker(WithParallelism(par), WithTriage(false)).Check(context.Background(), p, "", "x")
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTracer()
		traced, err := NewChecker(WithParallelism(par), WithTriage(false), WithTracer(tr)).Check(context.Background(), p, "", "x")
		if err != nil {
			t.Fatal(err)
		}
		if k1, k2 := verdictKey(plain), verdictKey(traced); k1 != k2 {
			t.Fatalf("tracing changed the analysis result:\n--- plain\n%s--- traced\n%s", k1, k2)
		}
		if tr.NumSpans() == 0 {
			t.Fatal("tracer recorded no spans")
		}
		var buf bytes.Buffer
		if err := tr.Export(&buf); err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("exported trace is not valid JSON: %v", err)
		}
	}
}

// TestReportEmbedsMetrics: every Report carries its own metrics snapshot,
// and Summary folds the iteration count and SMT hit rate out of it without
// consulting the live checker.
func TestReportEmbedsMetrics(t *testing.T) {
	// Triage off so the engine actually iterates on tasSrc.
	chk := NewChecker(WithTriage(false))
	rep, err := chk.CheckSource(context.Background(), tasSrc, "", "x")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe {
		t.Fatalf("verdict = %v, want safe", rep.Verdict)
	}
	iters := rep.Metrics.Counter("circ.iterations")
	if iters == 0 {
		t.Fatalf("Report.Metrics has no circ.iterations counter: %v", rep.Metrics.Counters)
	}
	if rep.Metrics.Counter("reach.states") == 0 {
		t.Fatalf("Report.Metrics has no reach.states counter: %v", rep.Metrics.Counters)
	}
	sum := rep.Summary()
	if want := fmt.Sprintf("%d iterations", iters); !strings.Contains(sum, want) {
		t.Fatalf("Summary %q does not mention %q", sum, want)
	}
	if !strings.Contains(sum, "smt hit rate") {
		t.Fatalf("Summary %q does not mention the smt hit rate", sum)
	}
	// The checker-level registry aggregates what the per-report snapshot
	// recorded.
	total := chk.Metrics().Snapshot()
	if total.Counter("circ.iterations") < iters {
		t.Fatalf("checker registry (%d iterations) lost the report's %d",
			total.Counter("circ.iterations"), iters)
	}
}

// TestBatchReportMetrics: a batch run snapshots its merged unit metrics
// plus the batch-level utilisation counters.
func TestBatchReportMetrics(t *testing.T) {
	b, err := CheckAllRaces(context.Background(), tasSrc, WithParallelism(2), WithTriage(false))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.Metrics.Counter("batch.units"), int64(len(b.Results)); got != want {
		t.Fatalf("batch.units = %d, want %d", got, want)
	}
	if b.Metrics.Gauge("batch.workers") == 0 {
		t.Fatal("batch.workers gauge not set")
	}
	if b.Metrics.Counter("batch.busy_nanos") == 0 {
		t.Fatal("batch.busy_nanos counter not recorded")
	}
	if b.Metrics.Counter("circ.iterations") == 0 {
		t.Fatal("unit engine metrics did not roll up into the batch snapshot")
	}
}

// TestWithLogShim: the io.Writer entry point still produces the classic
// plain-text narration through the slog-based handler.
func TestWithLogShim(t *testing.T) {
	var buf bytes.Buffer
	_, err := NewChecker(WithLog(&buf), WithParallelism(1), WithTriage(false)).
		CheckSource(context.Background(), tasSrc, "", "x")
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== round") {
		t.Fatalf("narration missing round headers:\n%s", out)
	}
	if strings.Contains(out, "level=INFO") {
		t.Fatalf("narration leaked slog's default text format:\n%s", out)
	}
}
