package circ

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"circ/internal/cfa"
	"circ/internal/journal"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

// Target names one (thread, variable) analysis unit of a batch run.
type Target struct {
	// Thread is the thread template name.
	Thread string
	// Variable is the global checked for races.
	Variable string
}

func (t Target) String() string { return t.Thread + "/" + t.Variable }

// TargetReport is one batch result: the target, its report (nil when the
// analysis errored), the error if any, and the unit's wall-clock time.
type TargetReport struct {
	Target
	Report  *Report
	Err     error
	Elapsed time.Duration
}

// BatchReport aggregates a CheckAllRaces run.
type BatchReport struct {
	// Results holds one entry per (thread, global) pair, in deterministic
	// program order (threads outer, globals inner) regardless of
	// parallelism.
	Results []TargetReport
	// Elapsed is the batch's wall-clock time.
	Elapsed time.Duration
	// SMT snapshots the shared SMT cache counters after the run.
	SMT smt.CacheStats
	// Metrics snapshots the batch's telemetry counters: the merged
	// per-unit engine metrics plus batch.units, batch.workers, and
	// batch.busy_nanos (summed worker busy time, for utilisation).
	Metrics Metrics
}

// Racy returns the results whose verdict is Unsafe.
func (b *BatchReport) Racy() []TargetReport {
	var out []TargetReport
	for _, r := range b.Results {
		if r.Report != nil && r.Report.Verdict == Unsafe {
			out = append(out, r)
		}
	}
	return out
}

// Unknowns returns the results that are neither proved safe nor racy:
// Unknown verdicts and unit errors.
func (b *BatchReport) Unknowns() []TargetReport {
	var out []TargetReport
	for _, r := range b.Results {
		if r.Report == nil || r.Report.Verdict == Unknown {
			out = append(out, r)
		}
	}
	return out
}

// Summary renders one line per target plus a footer with timing and SMT
// cache effectiveness.
func (b *BatchReport) Summary() string {
	var sb strings.Builder
	for _, r := range b.Results {
		switch {
		case r.Err != nil:
			fmt.Fprintf(&sb, "%-24s error: %v\n", r.Target, r.Err)
		default:
			fmt.Fprintf(&sb, "%-24s %s (%s)\n", r.Target, r.Report.Summary(), r.Elapsed.Round(time.Millisecond))
		}
	}
	fmt.Fprintf(&sb, "total %s, smt cache hit rate %.1f%% (%d hits, %d misses)\n",
		b.Elapsed.Round(time.Millisecond), 100*b.SMT.HitRate(), b.SMT.Hits, b.SMT.Misses)
	return sb.String()
}

// CheckAll runs CIRC on every (thread, global) pair of p, fanning the
// units out over a worker pool bounded by the checker's parallelism. All
// units share the checker's SMT cache, so formulas discharged for one
// variable are free for the next. Unit failures are recorded per target
// rather than aborting the batch; the returned error is non-nil only when
// the context was cancelled.
//
// Each unit first passes through the static triage stage (unless
// disabled with WithTriage): pairs proved race-free by the linear-time
// dataflow rules get a TargetReport whose Report.Triage names the rule
// ("read-only", "atomic-covered", "thread-local", "flag-guarded") and never touch the
// SMT solver. Surviving pairs run CIRC on a per-target cone-of-influence
// slice of the thread CFA (unless disabled with WithSlicing), so batch
// wall-time scales with the number of hard pairs rather than all pairs.
// The batch Metrics carry triage.discharged (with a per-rule
// triage.discharged{reason=...} labelled family), seed.predicates, and
// slice.edges_removed / slice.locs_removed totals.
//
// When more than one unit runs concurrently, each unit's reachability runs
// sequentially (the pool is the parallelism); a single-unit batch uses
// frontier-parallel reachability instead. Verdicts are identical either
// way.
func (c *Checker) CheckAll(ctx context.Context, p *Program) (*BatchReport, error) {
	return c.CheckTargets(ctx, p, nil)
}

// CheckTargets is CheckAll restricted to an explicit target list, in the
// given order. A nil or empty list means every (thread, global) pair. It
// is the daemon's submission path: a request naming targets runs exactly
// those units, with the same pooling, journaling, and certificate-store
// behaviour as a whole-program batch.
func (c *Checker) CheckTargets(ctx context.Context, p *Program, targets []Target) (*BatchReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(targets) == 0 {
		for _, th := range p.ThreadNames() {
			for _, g := range p.Globals() {
				targets = append(targets, Target{Thread: th, Variable: g})
			}
		}
	}
	// Pre-build the CFAs sequentially: construction is cheap relative to
	// analysis and keeps the AST access single-threaded.
	cfas := make([]*cfa.CFA, len(targets))
	prebuildErr := make([]error, len(targets))
	built := make(map[string]*cfa.CFA, len(p.ThreadNames()))
	for i, t := range targets {
		if g, ok := built[t.Thread]; ok {
			cfas[i] = g
			continue
		}
		g, err := p.CFA(t.Thread)
		if err != nil {
			prebuildErr[i] = err
			continue
		}
		built[t.Thread] = g
		cfas[i] = g
	}

	workers := c.parallelism
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers < 1 {
		workers = 1
	}
	// Inner frontier parallelism: when the pool itself is the parallelism,
	// each unit runs sequentially; a lone unit gets the whole budget.
	inner := 1
	if len(targets) == 1 {
		inner = c.parallelism
	}
	// Interleaved narration from concurrent units would be unreadable;
	// only pass the log through when a single analysis runs at a time.
	logger := c.logger
	if workers > 1 && len(targets) > 1 {
		logger = nil
	}

	// Batch-level telemetry: a child registry keeps this run's counters
	// attributable (and mergeable into the Checker's process-wide view),
	// and a root span groups the per-unit spans in the trace.
	breg := telemetry.ChildOf(c.registry)
	breg.Gauge("batch.workers").Set(int64(workers))
	cUnits := breg.Counter("batch.units")
	cBusy := breg.Counter("batch.busy_nanos")
	if c.tracer != nil {
		ctx = telemetry.NewContext(ctx, c.tracer)
	}
	// Flight recorder: one stream per target, registered sequentially here
	// so every case appears queued (in deterministic program order) before
	// any worker starts. Multi-target batches share the SMT solver across
	// concurrently-running units, so their streams suppress per-phase
	// solver deltas — suppressed at every worker count, keeping the journal
	// independent of the parallelism setting.
	var streams []*journal.Stream
	if c.journal != nil {
		streams = make([]*journal.Stream, len(targets))
		for i, t := range targets {
			name := journalCase(t.Thread, t.Variable)
			if len(targets) > 1 {
				streams[i] = c.journal.StreamShared(name)
			} else {
				streams[i] = c.journal.Stream(name)
			}
			streams[i].Emit(journal.Event{Type: journal.EvCaseQueued})
		}
	}
	bctx, bsp := telemetry.StartSpan(ctx, "batch")
	bsp.Annotate("units", len(targets))
	bsp.Annotate("workers", workers)

	start := time.Now()
	results := make([]TargetReport, len(targets))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t := targets[i]
				unitStart := time.Now()
				uctx, usp := telemetry.StartSpan(bctx, "unit")
				usp.Annotate("target", t.String())
				var s *journal.Stream
				if streams != nil {
					s = streams[i]
				}
				s.Emit(journal.Event{Type: journal.EvCaseStarted})
				var rep *Report
				err := prebuildErr[i]
				if err == nil {
					if cerr := ctx.Err(); cerr != nil {
						err = cerr
					} else {
						// checkUnit runs static triage first (discharged
						// pairs produce their report without touching the
						// solver), then the certificate store when one is
						// attached, then CIRC on the cone-of-influence
						// slice. Every stage is deterministic per case, so
						// the journal stays independent of the worker
						// count.
						o := c.options(logger, inner)
						o.Metrics = breg
						rep, err = c.checkUnit(uctx, cfas[i], t.Variable, s, o)
					}
				}
				done := journal.Event{Type: journal.EvCaseDone}
				switch {
				case rep != nil:
					done.Verdict = rep.Verdict.String()
				default:
					done.Verdict = "error"
					if err != nil {
						done.Reason = err.Error()
					}
				}
				s.Emit(done)
				usp.End()
				elapsed := time.Since(unitStart)
				cUnits.Inc()
				cBusy.Add(elapsed.Nanoseconds())
				results[i] = TargetReport{Target: t, Report: rep, Err: err, Elapsed: elapsed}
			}
		}()
	}
	for i := range targets {
		idx <- i
	}
	close(idx)
	wg.Wait()
	bsp.End()

	b := &BatchReport{
		Results: results,
		Elapsed: time.Since(start),
		SMT:     c.solver.Stats(),
		Metrics: breg.Snapshot(),
	}
	return b, ctx.Err()
}

// CheckAllRaces parses src and checks every (thread, global) pair for
// races in one batch: one unit per pair, fanned out over a worker pool
// bounded by WithParallelism (default GOMAXPROCS), all sharing one SMT
// cache. It is the batch complement of Checker.Check — "check the whole
// program" rather than one variable — and its verdicts are identical at
// any parallelism.
func CheckAllRaces(ctx context.Context, src string, opts ...Option) (*BatchReport, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return NewChecker(opts...).CheckAll(ctx, p)
}
