package circ

import (
	"context"
	"strconv"

	"circ/internal/cfa"
	icirc "circ/internal/circ"
	"circ/internal/expr"
	"circ/internal/journal"
	"circ/internal/smt"
	"circ/internal/store"
	"circ/internal/telemetry"
)

// Certificate-store surface (implemented in internal/store): the
// incremental re-checking layer behind the checker-as-a-service daemon.
//
// A CertStore is a content-addressed map from a canonical serialization
// of (sliced thread CFA, race variable, engine configuration) to the
// evidence of a previously computed verdict. Attach one with
// WithCertStore and re-submitting an unchanged program costs a
// certificate re-verification per target instead of a context-inference
// run: Safe entries are re-proved with Algorithm Check
// (VerifyCertificate), Unsafe entries re-establish their race by
// re-checking the stored trace formula's satisfiability, and Unknown
// entries replay (sound because the engine is deterministic on identical
// input). A store hit whose evidence fails re-validation falls back to a
// full run and overwrites the entry.
//
// Store keys never rely on hashing alone: the full canonical
// serialization is stored and compared byte-for-byte on every hit, so a
// hash collision degrades to a miss, never a wrong verdict.
type (
	// CertStore is a concurrency-safe content-addressed certificate
	// store, shared across any number of Checkers and requests.
	CertStore = store.Store
	// CertStoreStats snapshots store traffic: hits, misses, writes,
	// revalidations, and entry count.
	CertStoreStats = store.Stats
)

// NewCertStore returns an empty, unbounded certificate store.
func NewCertStore() *CertStore { return store.New() }

// NewCertStoreLRU returns an empty certificate store that holds at most
// maxEntries entries, evicting the least recently used certificate when
// the bound is exceeded. maxEntries <= 0 means unbounded.
func NewCertStoreLRU(maxEntries int) *CertStore { return store.NewLRU(maxEntries) }

// WithCertStore attaches a certificate store: every unit analysed by the
// Checker first probes st, and verdicts computed the hard way are stored
// for the next identical submission. A nil store (the default) disables
// incremental re-checking.
func WithCertStore(st *CertStore) Option { return func(c *Checker) { c.store = st } }

// CertStore returns the attached certificate store, or nil.
func (c *Checker) CertStore() *CertStore { return c.store }

// storeVerdict maps an engine verdict onto the store's own enumeration
// (kept separate so the store package has no engine dependency).
func storeVerdict(v Verdict) store.Verdict {
	switch v {
	case Safe:
		return store.Safe
	case Unsafe:
		return store.Unsafe
	}
	return store.Unknown
}

func engineVerdict(v store.Verdict) Verdict {
	switch v {
	case store.Safe:
		return Safe
	case store.Unsafe:
		return Unsafe
	}
	return Unknown
}

// storeCanon serializes everything that determines a unit's verdict: a
// format version, the race variable, every verdict-affecting engine
// option, and the canonical form of the (sliced) thread CFA the engine
// will analyse. Parallelism and observability options are deliberately
// excluded — verdicts are identical at any parallelism. Option defaults
// are not normalized (a Checker built with K=0 and one with the explicit
// default K=1 key differently); that costs at most one redundant entry
// per configuration spelling, never a wrong reuse.
func storeCanon(g *cfa.CFA, variable string, o icirc.Options) []byte {
	b := make([]byte, 0, 1024)
	b = append(b, "circ-store-v1|var="...)
	b = append(b, variable...)
	b = append(b, "|k="...)
	b = strconv.AppendInt(b, int64(o.K), 10)
	b = append(b, "|omega="...)
	b = strconv.AppendBool(b, o.Omega)
	b = append(b, "|rounds="...)
	b = strconv.AppendInt(b, int64(o.MaxRounds), 10)
	b = append(b, "|inner="...)
	b = strconv.AppendInt(b, int64(o.MaxInner), 10)
	b = append(b, "|states="...)
	b = strconv.AppendInt(b, int64(o.MaxStates), 10)
	b = append(b, "|mine="...)
	b = strconv.AppendInt(b, int64(o.MineStrategy), 10)
	b = append(b, "|nomin="...)
	b = strconv.AppendBool(b, o.NoMinimize)
	b = append(b, "|maxraces="...)
	b = strconv.AppendInt(b, int64(o.MaxRaces), 10)
	for _, p := range o.InitialPreds {
		b = append(b, "|seed="...)
		b = append(b, p.Key()...)
	}
	b = append(b, "|cfa="...)
	return g.AppendCanonical(b)
}

// storeEntry assembles the store entry for a freshly computed report.
// Reports that carry no replayable evidence (they should not occur) are
// dropped rather than stored.
func storeEntry(canon []byte, rep *Report) *store.Entry {
	if rep.Verdict == Safe && rep.FinalACFA == nil {
		return nil
	}
	return &store.Entry{
		Canon:   canon,
		Verdict: storeVerdict(rep.Verdict),
		ACFA:    rep.FinalACFA,
		Preds:   rep.Preds,
		K:       rep.K,
		Rounds:  rep.Rounds,
		Race:    rep.Race,
		Witness: rep.Witness,
		TF:      rep.TF,
		Reason:  rep.Reason,
	}
}

// checkUnit runs one (thread CFA, variable) unit end to end: static
// triage, cone-of-influence slicing, then — when a certificate store is
// attached — the incremental path (probe, re-validate, reuse) with a full
// CIRC run as the fallback and store writer. It is the single analysis
// path shared by Checker.Check and Checker.CheckAll.
func (c *Checker) checkUnit(ctx context.Context, g *cfa.CFA, variable string, s *journal.Stream, o icirc.Options) (*Report, error) {
	g, seeds, rep := c.prepareUnit(g, variable, s, o.Metrics)
	if rep != nil {
		return rep, nil
	}
	// Seed predicates join the engine options before the store key is
	// computed: a seeded and an unseeded run of the same unit follow
	// different inference trajectories, so they must never share a
	// certificate entry.
	o.InitialPreds = append(append([]expr.Expr(nil), o.InitialPreds...), seeds...)
	// The inference engine reads the journal stream from the context; the
	// reuse path keeps it out of its re-validation runs (their internal
	// events are not part of the case's canonical history) and emits its
	// own events through s directly.
	jctx := ctx
	if s.Enabled() {
		jctx = journal.NewContext(ctx, s)
	}
	if c.store == nil {
		return icirc.Check(jctx, g, variable, o, c.solver)
	}
	canon := storeCanon(g, variable, o)
	if ent, ok := c.store.Get(canon); ok {
		o.Metrics.Counter("store.hit").Inc()
		if rep, err := c.reuseEntry(ctx, g, variable, ent, s, o.Metrics); rep != nil || err != nil {
			return rep, err
		}
		// Stored evidence no longer verified: fall through to a full run
		// (which overwrites the entry).
	} else {
		o.Metrics.Counter("store.miss").Inc()
	}
	rep, err := icirc.Check(jctx, g, variable, o, c.solver)
	if err == nil {
		if ent := storeEntry(canon, rep); ent != nil {
			c.store.Put(ent)
			o.Metrics.Counter("store.write").Inc()
		}
	}
	return rep, err
}

// reuseEntry re-establishes a stored verdict without running context
// inference. It returns (nil, nil) when the stored evidence fails its
// re-validation — the caller then runs the engine — and a non-nil error
// only for infrastructure failures (e.g. context cancellation during
// certificate re-verification).
//
// Soundness: the store key matched byte-for-byte, so g is structurally
// identical to the CFA the evidence was computed for. Safe evidence is
// nevertheless re-proved with Algorithm Check and Unsafe evidence
// re-checked for satisfiability — the store is treated as untrusted
// input, exactly like a certificate handed to VerifyCertificate.
func (c *Checker) reuseEntry(ctx context.Context, g *cfa.CFA, variable string, ent *store.Entry, s *journal.Stream, reg *telemetry.Registry) (*Report, error) {
	verdict := engineVerdict(ent.Verdict)
	unit := telemetry.ChildOf(reg)
	var outcome string
	switch verdict {
	case Safe:
		err := icirc.VerifyCertificate(ctx, g, variable, ent.ACFA, ent.Preds, ent.K, c.solver)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			c.store.Revalidated(false)
			reg.Counter("store.revalidation_failed").Inc()
			return nil, nil
		}
		outcome = "certificate"
	case Unsafe:
		ids := make([]expr.ID, len(ent.TF))
		for i, clause := range ent.TF {
			ids[i] = expr.Intern(clause)
		}
		if c.solver.SatID(expr.IDConj(ids...)) != smt.Sat {
			c.store.Revalidated(false)
			reg.Counter("store.revalidation_failed").Inc()
			return nil, nil
		}
		outcome = "witness"
	default:
		// Unknown: no independent evidence to re-check beyond the
		// byte-identical input; the engine is deterministic, so the
		// stored outcome is what a re-run would compute.
		outcome = "replay"
	}
	c.store.Revalidated(true)
	reg.Counter("store.reused").Inc()
	unit.Counter("store.reused").Inc()
	s.Emit(journal.Event{Type: journal.EvCertificateReused, Verdict: verdict.String(), Outcome: outcome})
	// The verdict event is reconstructed from the stored evidence with
	// exactly the fields the original inference run emitted, keeping warm
	// and cold journals identical in verdict content.
	s.Emit(journal.Event{
		Type:     journal.EvVerdict,
		Verdict:  verdict.String(),
		Reason:   ent.Reason,
		K:        ent.K,
		NumPreds: len(ent.Preds),
		Rounds:   ent.Rounds,
	})
	rep := &Report{
		Verdict: verdict,
		Reason:  ent.Reason,
		Preds:   ent.Preds,
		K:       ent.K,
		Rounds:  ent.Rounds,
		Race:    ent.Race,
		Witness: ent.Witness,
		TF:      ent.TF,
		Metrics: unit.Snapshot(),
	}
	if verdict == Safe {
		rep.FinalACFA = ent.ACFA
	}
	rep.LastACFA = ent.ACFA
	return rep, nil
}
