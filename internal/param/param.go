// Package param implements Appendix A of the paper: counter-guided
// parameterized verification of finite-state threads (Algorithm 6). For a
// thread whose only local state is its control location, the counter
// abstraction (T,k) is model-checked directly; counterexamples no longer
// than k are genuine (they need at most k threads), longer ones refine the
// abstraction by incrementing k. Lemmas 1-2 guarantee termination and
// correctness (Theorem 3) for finite-state threads.
package param

import (
	"fmt"
	"sort"
	"strings"

	"circ/internal/acfa"
	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/reach"
)

// Verdict is the analysis outcome.
type Verdict int

// Verdicts.
const (
	Unknown Verdict = iota
	Safe
	Unsafe
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case Unsafe:
		return "unsafe"
	}
	return "unknown"
}

// Options configures the checker.
type Options struct {
	// ValueBound wraps written values into [0, ValueBound) (default 8),
	// making the shared state finite.
	ValueBound int64
	// HavocDomain is the value domain of havoc edges (default {0,1}).
	HavocDomain []int64
	// MaxK bounds refinement (default 16).
	MaxK int
	// MaxStates bounds each model-checking run (default 2,000,000).
	MaxStates int
}

func (o Options) valueBound() int64 {
	if o.ValueBound > 0 {
		return o.ValueBound
	}
	return 8
}

func (o Options) havocDomain() []int64 {
	if len(o.HavocDomain) > 0 {
		return o.HavocDomain
	}
	return []int64{0, 1}
}

func (o Options) maxK() int {
	if o.MaxK > 0 {
		return o.MaxK
	}
	return 16
}

func (o Options) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return 2000000
}

// Step is one transition of the counter-abstracted program.
type Step struct {
	Loc        cfa.Loc // source location of the moving thread
	Edge       *cfa.Edge
	HavocValue int64
}

// Result is the analysis outcome with evidence.
type Result struct {
	Verdict Verdict
	// K is the counter parameter at termination.
	K int
	// Trace is the counterexample (Unsafe only).
	Trace []Step
	// NumStates is the size of the last exploration.
	NumStates int
	Reason    string
}

// Check runs Algorithm 6 for races on x over unboundedly many copies of
// the finite-state thread c. The thread must have no local variables (the
// appendix's "pc is the only local variable" assumption); Check rejects
// CFAs with locals.
func Check(c *cfa.CFA, x string, opts Options) (*Result, error) {
	if len(c.Locals) > 0 {
		return nil, fmt.Errorf("param: thread has local variables %v; Appendix A requires finite-state threads with pc as the only local", c.Locals)
	}
	if !c.IsGlobal(x) {
		return nil, fmt.Errorf("param: %q is not a global", x)
	}
	for k := 1; k <= opts.maxK(); k++ {
		trace, states, err := modelCheck(c, x, k, opts)
		if err != nil {
			return nil, err
		}
		if trace == nil {
			return &Result{Verdict: Safe, K: k, NumStates: states}, nil
		}
		// A counterexample of length m needs at most m threads away from
		// the initial location; if m <= k the counter abstraction was
		// exact along it (Lemma 2) and the trace is genuine.
		if len(trace) <= k {
			return &Result{Verdict: Unsafe, K: k, Trace: trace, NumStates: states}, nil
		}
	}
	return &Result{Verdict: Unknown, K: opts.maxK(), Reason: "refinement budget exhausted"}, nil
}

// cstate is a counter-abstracted configuration: shared valuation plus a
// counter per location.
type cstate struct {
	vars map[string]int64
	ctx  reach.Ctx
}

func (s *cstate) key() string {
	var b strings.Builder
	names := make([]string, 0, len(s.vars))
	for n := range s.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d;", n, s.vars[n])
	}
	b.WriteByte('|')
	b.WriteString(s.ctx.Key())
	return b.String()
}

func (s *cstate) clone() *cstate {
	out := &cstate{vars: make(map[string]int64, len(s.vars)), ctx: s.ctx.CloneCtx()}
	for k, v := range s.vars {
		out.vars[k] = v
	}
	return out
}

func wrap(v, m int64) int64 { return ((v % m) + m) % m }

// modelCheck explores (T,k) and returns a shortest race trace, or nil.
func modelCheck(c *cfa.CFA, x string, k int, opts Options) ([]Step, int, error) {
	init := &cstate{vars: make(map[string]int64), ctx: make(reach.Ctx, c.NumLocs())}
	for _, g := range c.Globals {
		init.vars[g] = 0
	}
	init.ctx[c.Entry] = reach.Omega

	type parent struct {
		key  string
		step Step
	}
	seen := map[string]parent{init.key(): {}}
	queue := []*cstate{init}
	n := 0
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		n++
		if n > opts.maxStates() {
			return nil, n, fmt.Errorf("param: state budget exceeded")
		}
		if isRace(c, s, x) {
			var rev []Step
			kk := s.key()
			for {
				p := seen[kk]
				if p.step.Edge == nil {
					break
				}
				rev = append(rev, p.step)
				kk = p.key
			}
			for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
				rev[l], rev[r] = rev[r], rev[l]
			}
			return rev, n, nil
		}
		for _, loc := range enabledLocs(c, s) {
			for _, e := range c.OutEdges(loc) {
				for _, succ := range apply(s, e, k, opts) {
					key := succ.st.key()
					if _, ok := seen[key]; ok {
						continue
					}
					seen[key] = parent{key: s.key(), step: succ.step}
					queue = append(queue, succ.st)
				}
			}
		}
	}
	return nil, n, nil
}

// enabledLocs returns the occupied locations whose threads may run,
// honouring atomic scheduling.
func enabledLocs(c *cfa.CFA, s *cstate) []cfa.Loc {
	for l := 0; l < c.NumLocs(); l++ {
		if c.IsAtomic(cfa.Loc(l)) && s.ctx.Occupied(acfa.Loc(l)) {
			return []cfa.Loc{cfa.Loc(l)}
		}
	}
	var out []cfa.Loc
	for l := 0; l < c.NumLocs(); l++ {
		if s.ctx.Occupied(acfa.Loc(l)) {
			out = append(out, cfa.Loc(l))
		}
	}
	return out
}

type succ struct {
	st   *cstate
	step Step
}

// apply executes edge e by one thread at e.Src.
func apply(s *cstate, e *cfa.Edge, k int, opts Options) []succ {
	move := func(st *cstate) {
		st.ctx = st.ctx.Dec(acfa.Loc(e.Src)).Inc(acfa.Loc(e.Dst), k)
	}
	switch e.Op.Kind {
	case cfa.OpAssume:
		ok, err := expr.EvalFormula(e.Op.Pred, s.vars)
		if err != nil || !ok {
			return nil
		}
		st := s.clone()
		move(st)
		return []succ{{st: st, step: Step{Loc: e.Src, Edge: e}}}
	case cfa.OpAssign:
		v, err := expr.EvalTerm(e.Op.RHS, s.vars)
		if err != nil {
			return nil
		}
		st := s.clone()
		st.vars[e.Op.LHS] = wrap(v, opts.valueBound())
		move(st)
		return []succ{{st: st, step: Step{Loc: e.Src, Edge: e}}}
	case cfa.OpHavoc:
		var out []succ
		for _, hv := range opts.havocDomain() {
			st := s.clone()
			st.vars[e.Op.LHS] = wrap(hv, opts.valueBound())
			move(st)
			out = append(out, succ{st: st, step: Step{Loc: e.Src, Edge: e, HavocValue: hv}})
		}
		return out
	}
	return nil
}

// isRace checks the race condition on x: no atomic location occupied and
// two distinct threads with enabled accesses, one of them a write.
func isRace(c *cfa.CFA, s *cstate, x string) bool {
	for l := 0; l < c.NumLocs(); l++ {
		if c.IsAtomic(cfa.Loc(l)) && s.ctx.Occupied(acfa.Loc(l)) {
			return false
		}
	}
	type cap struct{ write, access bool }
	var caps []cap
	var multi []bool
	for l := 0; l < c.NumLocs(); l++ {
		if !s.ctx.Occupied(acfa.Loc(l)) {
			continue
		}
		w, a := locAccess(c, cfa.Loc(l), s, x)
		if w || a {
			caps = append(caps, cap{write: w, access: a})
			multi = append(multi, s.ctx.AtLeastTwo(acfa.Loc(l)))
		}
	}
	for i, ci := range caps {
		if !ci.write {
			continue
		}
		if multi[i] {
			return true // two threads at the same writing location
		}
		for j, cj := range caps {
			if i != j && cj.access {
				return true
			}
		}
	}
	return false
}

// locAccess reports whether a thread at l has an enabled write/access of x.
func locAccess(c *cfa.CFA, l cfa.Loc, s *cstate, x string) (write, access bool) {
	for _, e := range c.OutEdges(l) {
		switch e.Op.Kind {
		case cfa.OpAssign:
			if e.Op.LHS == x {
				write, access = true, true
			}
			if expr.Mentions(e.Op.RHS, x) {
				access = true
			}
		case cfa.OpHavoc:
			if e.Op.LHS == x {
				write, access = true, true
			}
		case cfa.OpAssume:
			if expr.Mentions(e.Op.Pred, x) {
				if ok, err := expr.EvalFormula(e.Op.Pred, s.vars); err == nil && ok {
					access = true
				}
			}
		}
	}
	return
}
