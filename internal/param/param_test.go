package param

import (
	"testing"

	"circ/internal/cfa"
	"circ/internal/lang"
)

func build(t *testing.T, src string) *cfa.CFA {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

func TestAtomicCounterSafe(t *testing.T) {
	c := build(t, `
global int x;
thread T {
  while (1) { atomic { x = x + 1; } }
}
`)
	res, err := Check(c, "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v (%s), want safe", res.Verdict, res.Reason)
	}
	if res.K != 1 {
		t.Fatalf("k = %d, want 1 (no refinement needed)", res.K)
	}
}

func TestUnprotectedUnsafe(t *testing.T) {
	c := build(t, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`)
	res, err := Check(c, "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe {
		t.Fatalf("verdict = %v, want unsafe", res.Verdict)
	}
	if len(res.Trace) == 0 {
		t.Fatalf("unsafe verdict without trace")
	}
	// Algorithm 6's genuineness criterion: the trace is no longer than k.
	if len(res.Trace) > res.K {
		t.Fatalf("trace length %d exceeds k=%d", len(res.Trace), res.K)
	}
}

func TestFlagProtocolSafe(t *testing.T) {
	// A finite-state spin-lock protocol: busy is the only guard; the whole
	// critical section sits inside atomic claims so x never races.
	c := build(t, `
global int x;
global int busy;
thread T {
  while (1) {
    atomic {
      if (busy == 0) {
        busy = 1;
        x = x + 1;
      }
    }
    atomic { busy = 0; }
  }
}
`)
	res, err := Check(c, "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe {
		t.Fatalf("verdict = %v (%s), want safe", res.Verdict, res.Reason)
	}
}

func TestStateGuardedButNonAtomicRace(t *testing.T) {
	// The test-and-set idiom WITHOUT locals cannot be written; an
	// unguarded two-phase write races.
	c := build(t, `
global int x;
global int s;
thread T {
  while (1) {
    if (s == 0) { s = 1; x = x + 1; s = 0; }
  }
}
`)
	res, err := Check(c, "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe {
		t.Fatalf("verdict = %v, want unsafe (check-then-act without atomicity)", res.Verdict)
	}
}

func TestRejectsLocals(t *testing.T) {
	c := build(t, `
global int x;
thread T {
  local int l;
  l = x;
}
`)
	if _, err := Check(c, "x", Options{}); err == nil {
		t.Fatalf("expected error for thread with locals")
	}
}

func TestRejectsNonGlobal(t *testing.T) {
	c := build(t, `
global int x;
thread T {
  x = 1;
}
`)
	if _, err := Check(c, "nope", Options{}); err == nil {
		t.Fatalf("expected error for unknown variable")
	}
}

func TestHavocRace(t *testing.T) {
	c := build(t, `
global int x;
thread T {
  while (1) { x = *; }
}
`)
	res, err := Check(c, "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe {
		t.Fatalf("verdict = %v, want unsafe (havoc write-write)", res.Verdict)
	}
}

func TestVerdictString(t *testing.T) {
	if Safe.String() != "safe" || Unsafe.String() != "unsafe" || Unknown.String() != "unknown" {
		t.Fatalf("verdict strings broken")
	}
}

func TestKRefinementProgress(t *testing.T) {
	// A program whose shortest race needs two moved threads: k must grow
	// past 1 before Unsafe is reported.
	c := build(t, `
global int x;
global int gate;
thread T {
  while (1) {
    assume(gate == 0);
    gate = 1;
    x = x + 1;
    gate = 0;
  }
}
`)
	res, err := Check(c, "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unsafe {
		t.Fatalf("verdict = %v, want unsafe", res.Verdict)
	}
	if res.K < 2 {
		t.Fatalf("k = %d, expected counter refinement past 1", res.K)
	}
}
