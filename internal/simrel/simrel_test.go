package simrel

import (
	"math/rand"
	"testing"

	"circ/internal/acfa"
	"circ/internal/expr"
	"circ/internal/pred"
	"circ/internal/smt"
)

func trueACFA(n int, atomic []int, edges [][3]interface{}) *acfa.ACFA {
	s := pred.NewSet()
	a := &acfa.ACFA{}
	at := map[int]bool{}
	for _, i := range atomic {
		at[i] = true
	}
	for i := 0; i < n; i++ {
		a.AddLoc(pred.TrueRegion(s), at[i])
	}
	for _, e := range edges {
		a.AddEdge(acfa.Loc(e[0].(int)), acfa.Loc(e[1].(int)), e[2].([]string))
	}
	a.Finish()
	return a
}

func TestSelfSimulation(t *testing.T) {
	a := trueACFA(3, []int{1}, [][3]interface{}{
		{0, 1, []string(nil)},
		{1, 2, []string{"x"}},
		{2, 0, []string{"x", "y"}},
	})
	if !Simulates(a, a, smt.NewChecker()) {
		t.Fatalf("ACFA does not simulate itself")
	}
}

func TestEmptySimulatesEmpty(t *testing.T) {
	chk := smt.NewChecker()
	e1 := acfa.Empty(pred.NewSet())
	e2 := acfa.Empty(pred.NewSet())
	if !Simulates(e1, e2, chk) {
		t.Fatalf("empty should simulate empty")
	}
}

func TestEmptyDoesNotSimulateWriter(t *testing.T) {
	chk := smt.NewChecker()
	writer := trueACFA(2, nil, [][3]interface{}{
		{0, 1, []string{"x"}},
	})
	if Simulates(writer, acfa.Empty(pred.NewSet()), chk) {
		t.Fatalf("do-nothing context cannot simulate a writer")
	}
	if !Simulates(acfa.Empty(pred.NewSet()), writer, chk) {
		t.Fatalf("a writer can simulate doing nothing")
	}
}

func TestHavocSupersetMatches(t *testing.T) {
	chk := smt.NewChecker()
	g := trueACFA(2, nil, [][3]interface{}{
		{0, 1, []string{"x"}},
	})
	a := trueACFA(2, nil, [][3]interface{}{
		{0, 1, []string{"x", "y"}},
	})
	if !Simulates(g, a, chk) {
		t.Fatalf("havoc {x} should be matched by havoc {x,y}")
	}
	if Simulates(a, g, chk) {
		t.Fatalf("havoc {x,y} must not be matched by havoc {x}")
	}
}

func TestWeakMatchingThroughTau(t *testing.T) {
	chk := smt.NewChecker()
	// g: 0 -{x}-> 1. a: 0 -tau-> 1 -{x}-> 2.
	g := trueACFA(2, nil, [][3]interface{}{
		{0, 1, []string{"x"}},
	})
	a := trueACFA(3, nil, [][3]interface{}{
		{0, 1, []string(nil)},
		{1, 2, []string{"x"}},
	})
	if !Simulates(g, a, chk) {
		t.Fatalf("strong {x} move should be matched by tau-{x} weak move")
	}
}

func TestAtomicityObservable(t *testing.T) {
	chk := smt.NewChecker()
	g := trueACFA(2, []int{1}, [][3]interface{}{
		{0, 1, []string(nil)},
	})
	aNoAtomic := trueACFA(2, nil, [][3]interface{}{
		{0, 1, []string(nil)},
	})
	if Simulates(g, aNoAtomic, chk) {
		t.Fatalf("atomic target must not be matched by non-atomic one")
	}
}

func TestLabelImplication(t *testing.T) {
	chk := smt.NewChecker()
	s := pred.NewSet(expr.Eq(expr.V("g"), expr.Num(0)))
	mk := func(tv pred.TV) *acfa.ACFA {
		a := &acfa.ACFA{}
		r := pred.NewRegion(s)
		if tv == pred.Unknown {
			r.Add(pred.TopCube(s))
		} else {
			r.Add(pred.NewCube(s, map[int]pred.TV{0: tv}))
		}
		a.AddLoc(r, false)
		a.Finish()
		return a
	}
	strong := mk(pred.True) // g == 0
	weak := mk(pred.Unknown)
	if !Simulates(strong, weak, chk) {
		t.Fatalf("g==0 location should be simulated by true location")
	}
	if Simulates(weak, strong, chk) {
		t.Fatalf("true location must not be simulated by g==0 location")
	}
}

// Property: simulation is transitive on random automata triples (we test
// g <= a and a <= b implies g <= b).
func TestQuickTransitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	chk := smt.NewChecker()
	gen := func() *acfa.ACFA {
		n := 2 + rng.Intn(3)
		var edges [][3]interface{}
		for i := 0; i < rng.Intn(2*n); i++ {
			var havoc []string
			if rng.Intn(2) == 0 {
				havoc = []string{"x"}
			}
			edges = append(edges, [3]interface{}{rng.Intn(n), rng.Intn(n), havoc})
		}
		return trueACFA(n, nil, edges)
	}
	checked := 0
	for trial := 0; trial < 200 && checked < 30; trial++ {
		g, a, b := gen(), gen(), gen()
		if Simulates(g, a, chk) && Simulates(a, b, chk) {
			checked++
			if !Simulates(g, b, chk) {
				t.Fatalf("transitivity violated")
			}
		}
	}
	if checked == 0 {
		t.Skip("no chained pairs generated")
	}
}
