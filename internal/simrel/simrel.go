// Package simrel implements CheckSim, the paper's guarantee check: a weak
// simulation preorder between ACFAs. A simulates G when every behaviour of
// G — location labels (over the globals), atomicity, and havoc effects —
// can be matched by A, with G's strong moves answered by A's weak
// (tau*-Y-tau*) moves whose havoc sets are at least as permissive.
package simrel

import (
	"circ/internal/acfa"
	"circ/internal/smt"
)

// Simulates reports whether a simulates g (g \preceq a): there is a weak
// simulation relating g's entry to a's entry.
func Simulates(g, a *acfa.ACFA, chk smt.Solver) bool {
	rel := Relation(g, a, chk)
	return rel[pairKey(g.Entry, a.Entry)]
}

// Relation computes the largest weak simulation between g and a as a set
// of related pairs keyed by pairKey.
func Relation(g, a *acfa.ACFA, chk smt.Solver) map[string]bool {
	ng, na := g.NumLocs(), a.NumLocs()
	rel := make(map[string]bool)
	// Initialise with the static conditions: label implication and equal
	// atomicity.
	for x := 0; x < ng; x++ {
		for y := 0; y < na; y++ {
			if g.IsAtomic(acfa.Loc(x)) != a.IsAtomic(acfa.Loc(y)) {
				continue
			}
			if !chk.Implies(g.Label(acfa.Loc(x)).Formula(), a.Label(acfa.Loc(y)).Formula()) {
				continue
			}
			rel[pairKey(acfa.Loc(x), acfa.Loc(y))] = true
		}
	}
	weakA := acfa.WeakMoves(a)
	// Greatest fixpoint: drop pairs whose moves cannot be matched.
	for {
		changed := false
		for x := 0; x < ng; x++ {
			for y := 0; y < na; y++ {
				key := pairKey(acfa.Loc(x), acfa.Loc(y))
				if !rel[key] {
					continue
				}
				if !movesMatched(g, acfa.Loc(x), acfa.Loc(y), weakA, rel) {
					delete(rel, key)
					changed = true
				}
			}
		}
		if !changed {
			return rel
		}
	}
}

// movesMatched checks that every strong move of g from x is matched by a
// weak move of a from y landing in a related pair.
func movesMatched(g *acfa.ACFA, x, y acfa.Loc, weakA [][]acfa.WeakMove, rel map[string]bool) bool {
	for _, e := range g.OutEdges(x) {
		matched := false
		for _, m := range weakA[y] {
			if !havocCovers(m.Havoc, e.Havoc) {
				continue
			}
			if rel[pairKey(e.Dst, m.Dst)] {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// havocCovers reports whether sup (a weak move's havoc, possibly empty for
// pure tau) covers sub: sub must be a subset of sup, with the pure-tau
// move covering only empty sub.
func havocCovers(sup, sub []string) bool {
	if len(sub) == 0 {
		return true // a tau move of g is matched by any weak move ending related; prefer tau
	}
	if len(sup) == 0 {
		return false
	}
	set := make(map[string]bool, len(sup))
	for _, v := range sup {
		set[v] = true
	}
	for _, v := range sub {
		if !set[v] {
			return false
		}
	}
	return true
}

func pairKey(x, y acfa.Loc) string {
	return itoa(int(x)) + "," + itoa(int(y))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
