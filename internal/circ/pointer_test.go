package circ

import (
	"context"
	"testing"

	"circ/internal/cfa"
	"circ/internal/lang"
	"circ/internal/smt"
)

// Pointer-aware race checking (the paper's Section 5 memory model): stores
// and loads through pointers are lowered into address-guarded accesses of
// the points-to targets, so the race check covers aliased accesses.

// Unprotected store through a pointer that always aliases x: racy on x.
const ptrRacySrc = `
global int x;

thread Worker {
  local int p;
  p = &x;
  while (1) {
    *p = 1;
  }
}
`

// The test-and-set idiom with the protected access performed through a
// pointer: still race-free, and the checker must see through the alias.
const ptrSafeSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  local int p;
  p = &x;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      *p = 7;
      state = 0;
    }
  }
}
`

// A pointer that may alias two variables: the store races with a direct
// unprotected write to y.
const ptrAliasRacySrc = `
global int x;
global int y;

thread Worker {
  local int p;
  choose {
    p = &x;
  } or {
    p = &y;
  }
  *p = 3;
}
`

func TestPointerStoreRace(t *testing.T) {
	rep := checkSrc(t, ptrRacySrc, Options{})
	if rep.Verdict != Unsafe {
		t.Fatalf("verdict = %v (%s), want unsafe", rep.Verdict, rep.Reason)
	}
}

func TestPointerProtectedStoreSafe(t *testing.T) {
	rep := checkSrc(t, ptrSafeSrc, Options{})
	if rep.Verdict != Safe {
		t.Fatalf("verdict = %v (%s), want safe", rep.Verdict, rep.Reason)
	}
}

func TestPointerMayAliasRace(t *testing.T) {
	p, err := lang.Parse(ptrAliasRacySrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"x", "y"} {
		rep, err := Check(context.Background(), c, v, Options{}, smt.NewChecker())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != Unsafe {
			t.Fatalf("verdict on %s = %v (%s), want unsafe", v, rep.Verdict, rep.Reason)
		}
	}
}

// Loads through pointers participate in races too: a reader via *p against
// a writer.
const ptrLoadRaceSrc = `
global int x;

thread Worker {
  local int p;
  local int v;
  p = &x;
  while (1) {
    choose {
      v = *p;
    } or {
      x = x + 1;
    }
  }
}
`

func TestPointerLoadRace(t *testing.T) {
	rep := checkSrc(t, ptrLoadRaceSrc, Options{})
	if rep.Verdict != Unsafe {
		t.Fatalf("verdict = %v (%s), want unsafe", rep.Verdict, rep.Reason)
	}
}

// Disjoint pointers: each thread instance always writes through &y while x
// is checked; no race on x.
const ptrDisjointSrc = `
global int x;
global int y;

thread Worker {
  local int p;
  p = &y;
  while (1) {
    atomic { *p = 1; }
    atomic { x = x + 1; }
  }
}
`

func TestPointerDisjointSafe(t *testing.T) {
	rep := checkSrc(t, ptrDisjointSrc, Options{})
	if rep.Verdict != Safe {
		t.Fatalf("verdict = %v (%s), want safe", rep.Verdict, rep.Reason)
	}
}

func TestEmptyPointsToRejected(t *testing.T) {
	p, err := lang.Parse(`
global int x;
thread T {
  local int p;
  p = 5;
  *p = 1;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cfa.Build(p, ""); err == nil {
		t.Fatalf("store through address-free pointer should be rejected")
	}
}
