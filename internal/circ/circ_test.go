package circ

import (
	"context"
	"os"
	"testing"

	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/lang"
	"circ/internal/refine"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

// The paper's Figure 1 test-and-set program: race-free on x.
const testAndSetSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

// The broken variant: without the atomic section two threads can both
// read state = 0 and proceed to write x.
const racySrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    old = state;
    if (state == 0) { state = 1; }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

func checkSrc(t *testing.T, src string, opts Options) *Report {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if testing.Verbose() && opts.Logger == nil {
		opts.Logger = telemetry.NarrationLogger(os.Stderr)
	}
	rep, err := Check(context.Background(), c, "x", opts, smt.NewChecker())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

func TestTestAndSetIsSafe(t *testing.T) {
	rep := checkSrc(t, testAndSetSrc, Options{})
	if rep.Verdict != Safe {
		t.Fatalf("verdict = %v (reason %q), want safe; preds = %v", rep.Verdict, rep.Reason, rep.Preds)
	}
	if rep.FinalACFA == nil || rep.FinalACFA.NumLocs() == 0 {
		t.Fatalf("no final ACFA on safe verdict")
	}
	if len(rep.Preds) == 0 {
		t.Fatalf("expected discovered predicates, got none")
	}
}

func TestRacyVariantIsUnsafe(t *testing.T) {
	rep := checkSrc(t, racySrc, Options{})
	if rep.Verdict != Unsafe {
		t.Fatalf("verdict = %v (reason %q), want unsafe", rep.Verdict, rep.Reason)
	}
	if rep.Race == nil || len(rep.Race.Steps) == 0 {
		t.Fatalf("no race trace on unsafe verdict")
	}
}

func TestOmegaCIRCTestAndSet(t *testing.T) {
	rep := checkSrc(t, testAndSetSrc, Options{Omega: true})
	if rep.Verdict != Safe {
		t.Fatalf("omega verdict = %v (reason %q), want safe", rep.Verdict, rep.Reason)
	}
}

func TestOmegaCIRCRacy(t *testing.T) {
	rep := checkSrc(t, racySrc, Options{Omega: true})
	if rep.Verdict != Unsafe {
		t.Fatalf("omega verdict = %v (reason %q), want unsafe", rep.Verdict, rep.Reason)
	}
}

// Conditional locking: the protected access happens only when a function
// that toggles the state variable returns a particular value (Section 1's
// "conditional locking" idiom). Lockset and type-based checkers flag this;
// CIRC must prove it safe.
const conditionalLockSrc = `
global int x;
global int state;

int tryLock() {
  local int got;
  got = 0;
  atomic {
    if (state == 0) { state = 1; got = 1; }
  }
  return got;
}

void unlock() { atomic { state = 0; } }

thread Worker {
  while (1) {
    if (tryLock() == 1) {
      x = x + 1;
      unlock();
    }
  }
}
`

func TestConditionalLockingIsSafe(t *testing.T) {
	rep := checkSrc(t, conditionalLockSrc, Options{})
	if rep.Verdict != Safe {
		t.Fatalf("verdict = %v (reason %q), want safe; preds=%v", rep.Verdict, rep.Reason, rep.Preds)
	}
}

// All accesses inside atomic sections: trivially safe, no predicates
// needed (the paper's "examples requiring no predicates").
const atomicOnlySrc = `
global int x;

thread Worker {
  while (1) {
    atomic {
      x = x + 1;
    }
  }
}
`

func TestAtomicOnlyNeedsNoPredicates(t *testing.T) {
	rep := checkSrc(t, atomicOnlySrc, Options{})
	if rep.Verdict != Safe {
		t.Fatalf("verdict = %v (reason %q), want safe", rep.Verdict, rep.Reason)
	}
	if len(rep.Preds) != 0 {
		t.Fatalf("expected no predicates, got %v", rep.Preds)
	}
}

// Completely unprotected counter: racy.
const unprotectedSrc = `
global int x;

thread Worker {
  while (1) {
    x = x + 1;
  }
}
`

func TestUnprotectedIsUnsafe(t *testing.T) {
	rep := checkSrc(t, unprotectedSrc, Options{})
	if rep.Verdict != Unsafe {
		t.Fatalf("verdict = %v (reason %q), want unsafe", rep.Verdict, rep.Reason)
	}
}

func TestCheckRejectsNonGlobalRaceVar(t *testing.T) {
	p, err := lang.Parse(testAndSetSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := Check(context.Background(), c, "old", Options{}, smt.NewChecker()); err == nil {
		t.Fatalf("expected error for non-global race variable")
	}
}

func TestInitialPredsSpeedConvergence(t *testing.T) {
	// Seeding the predicates the refinement would discover lets CIRC
	// converge in a single round.
	p, err := lang.Parse(testAndSetSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatal(err)
	}
	seed := []expr.Expr{
		expr.Eq(expr.V("old"), expr.V("state")),
		expr.Eq(expr.Num(0), expr.V("state")),
		expr.Eq(expr.Num(0), expr.V("old")),
	}
	rep, err := Check(context.Background(), c, "x", Options{InitialPreds: seed}, smt.NewChecker())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe {
		t.Fatalf("verdict = %v (%s)", rep.Verdict, rep.Reason)
	}
	if rep.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 with seeded predicates", rep.Rounds)
	}
}

func TestMaxRoundsBudget(t *testing.T) {
	// A single round cannot both discover predicates and converge on the
	// test-and-set program: expect unknown with the budget reason.
	rep := checkSrc(t, testAndSetSrc, Options{MaxRounds: 1})
	if rep.Verdict != Unknown {
		t.Fatalf("verdict = %v, want unknown under 1-round budget", rep.Verdict)
	}
}

func TestNoMinimizeStillSoundOnSmallProgram(t *testing.T) {
	rep := checkSrc(t, atomicOnlySrc, Options{NoMinimize: true})
	if rep.Verdict != Safe {
		t.Fatalf("verdict = %v (%s), want safe without minimisation", rep.Verdict, rep.Reason)
	}
}

func TestMineStrategiesAllVerdictsAgree(t *testing.T) {
	for _, s := range []refine.MineStrategy{refine.MineAtoms, refine.MineWP, refine.MineBoth} {
		rep := checkSrc(t, testAndSetSrc, Options{MineStrategy: s})
		if rep.Verdict != Safe {
			t.Fatalf("strategy %v: verdict = %v (%s)", s, rep.Verdict, rep.Reason)
		}
		rep = checkSrc(t, racySrc, Options{MineStrategy: s})
		if rep.Verdict != Unsafe {
			t.Fatalf("strategy %v: verdict = %v (%s)", s, rep.Verdict, rep.Reason)
		}
	}
}

func TestHistoryRecorded(t *testing.T) {
	rep := checkSrc(t, testAndSetSrc, Options{})
	if len(rep.History) == 0 {
		t.Fatalf("no iteration history")
	}
	last := rep.History[len(rep.History)-1]
	if last.Round != rep.Rounds {
		t.Fatalf("history round %d != rounds %d", last.Round, rep.Rounds)
	}
}

func TestWitnessSatisfiesTF(t *testing.T) {
	rep := checkSrc(t, racySrc, Options{})
	if rep.Verdict != Unsafe {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
	if rep.Witness == nil {
		t.Skip("no witness (solver returned unknown)")
	}
	ok, err := expr.EvalFormula(expr.Conj(rep.TF...), rep.Witness)
	if err != nil {
		// Model may omit don't-care variables; fill zeros and retry.
		env := make(map[string]int64, len(rep.Witness))
		for k, v := range rep.Witness {
			env[k] = v
		}
		f := expr.Conj(rep.TF...)
		for v := range expr.FreeVars(f) {
			if _, okk := env[v]; !okk {
				env[v] = 0
			}
		}
		ok, err = expr.EvalFormula(f, env)
		if err != nil {
			t.Fatalf("eval: %v", err)
		}
	}
	if !ok {
		t.Fatalf("witness does not satisfy the trace formula")
	}
}
