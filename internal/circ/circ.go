// Package circ implements the paper's main contribution: the CIRC context
// inference algorithm (Algorithm 5) and its omega-CIRC optimisation
// (Section 5). CIRC interleaves two nested loops:
//
//   - the inner loop alternately weakens the context model — running
//     ReachAndBuild under the current ACFA and Collapse-ing the resulting
//     ARG into a new, weaker ACFA — until the context model simulates the
//     thread's observed behaviour (circular assume-guarantee closure);
//   - the outer loop refines the abstraction — adding predicates mined
//     from spurious counterexamples or incrementing the thread counter —
//     whenever the inner loop trips over an abstract race.
//
// The result is either a proof of race freedom (a sound context model), a
// genuine interleaved race trace, or an "unknown" verdict when refinement
// stalls or budgets run out.
package circ

import (
	"context"
	"fmt"
	"io"

	"circ/internal/acfa"
	"circ/internal/bisim"
	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/pred"
	"circ/internal/reach"
	"circ/internal/refine"
	"circ/internal/simrel"
	"circ/internal/smt"
)

// Verdict is the analysis outcome.
type Verdict int

// Verdicts.
const (
	Unknown Verdict = iota
	Safe
	Unsafe
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case Unsafe:
		return "unsafe"
	}
	return "unknown"
}

// Options configures the checker.
type Options struct {
	// K is the initial counter parameter (default 1).
	K int
	// InitialPreds seeds the predicate set.
	InitialPreds []expr.Expr
	// Omega selects the omega-CIRC variant: reachability with exactly K
	// context threads plus the good-location generalisation check.
	Omega bool
	// MaxRounds bounds outer (refinement) rounds; default 40.
	MaxRounds int
	// MaxInner bounds inner (context-weakening) rounds; default 60.
	MaxInner int
	// MaxStates bounds each reachability run.
	MaxStates int
	// Log, when non-nil, receives a detailed narration of every iteration
	// (the Figures 2-5 reproduction).
	Log io.Writer
	// MineStrategy selects how predicates are discovered from spurious
	// counterexamples (default: unsat-core atoms).
	MineStrategy refine.MineStrategy
	// NoMinimize disables the weak-bisimulation quotient: the context is
	// weakened to the (projected) ARG itself. Ablation switch; sound but
	// produces larger context models.
	NoMinimize bool
	// MaxRaces caps how many abstract race traces each reachability run
	// collects (0 = default). MaxRaces = 1 reproduces the paper's
	// first-trace-only behaviour, as an ablation.
	MaxRaces int
	// Parallelism is the number of workers used for frontier-parallel
	// reachability (0 or 1: sequential). Verdicts are identical at any
	// parallelism; values > 1 require chk to be safe for concurrent use
	// (smt.CachedChecker).
	Parallelism int
}

func (o Options) k() int {
	if o.K > 0 {
		return o.K
	}
	return 1
}

func (o Options) maxRounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 40
}

func (o Options) maxInner() int {
	if o.MaxInner > 0 {
		return o.MaxInner
	}
	return 60
}

// IterationInfo records one inner iteration, for the evaluation harness.
type IterationInfo struct {
	Round, Inner  int
	NumPreds      int
	NumStates     int
	ARGLocs       int
	ACFALocs      int
	RaceFound     bool
	RefineOutcome string
}

// Report is the analysis result with its evidence.
type Report struct {
	Verdict Verdict
	// Reason explains Unknown verdicts.
	Reason string
	// Preds is the final predicate set.
	Preds []expr.Expr
	// K is the final counter parameter.
	K int
	// FinalACFA is the inferred sound context model (Safe only).
	FinalACFA *acfa.ACFA
	// Race is the genuine interleaved trace (Unsafe only).
	Race *refine.Interleaving
	// Witness is a satisfying SSA model of the race's trace formula; use
	// refine.FormatTraceWithWitness to render the trace with values.
	Witness map[string]int64
	// TF is the trace formula of the final analysed trace.
	TF []expr.Expr
	// Rounds counts outer iterations; History records every inner one.
	Rounds  int
	History []IterationInfo
}

// Summary renders the report as a one-line human-readable verdict with
// its headline evidence.
func (r *Report) Summary() string {
	switch r.Verdict {
	case Safe:
		locs := 0
		if r.FinalACFA != nil {
			locs = r.FinalACFA.NumLocs()
		}
		return fmt.Sprintf("safe: race freedom proved (%d predicates, %d-location context, k=%d, %d rounds)",
			len(r.Preds), locs, r.K, r.Rounds)
	case Unsafe:
		steps := 0
		if r.Race != nil {
			steps = len(r.Race.Steps)
		}
		return fmt.Sprintf("unsafe: genuine race, %d-step interleaved trace (k=%d, %d rounds)",
			steps, r.K, r.Rounds)
	}
	reason := r.Reason
	if reason == "" {
		reason = "analysis inconclusive"
	}
	return "unknown: " + reason
}

// Check runs CIRC on thread CFA c, verifying the absence of races on
// raceVar (a global of c). The context cancels the analysis between
// iterations and between reachability frontier levels; cancellation
// surfaces as a non-nil error wrapping ctx.Err().
func Check(ctx context.Context, c *cfa.CFA, raceVar string, opts Options, chk smt.Solver) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !c.IsGlobal(raceVar) {
		return nil, fmt.Errorf("circ: race variable %q is not a global", raceVar)
	}
	if chk == nil {
		chk = smt.NewChecker()
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format, args...)
		}
	}

	preds := append([]expr.Expr(nil), opts.InitialPreds...)
	k := opts.k()
	rep := &Report{}

	for round := 1; round <= opts.maxRounds(); round++ {
		rep.Rounds = round
		set := pred.NewSet(preds...)
		abs := pred.NewAbstractor(chk, set)
		logf("== round %d: k=%d preds=%s\n", round, k, set)

		A := acfa.Empty(set)
		var prevARG *reach.ARG
		var mu map[int]acfa.Loc

		advanceOuter := false
		for inner := 1; inner <= opts.maxInner() && !advanceOuter; inner++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("circ: analysis cancelled: %w", err)
			}
			res, err := reach.ReachAndBuild(ctx, c, A, abs, raceVar, reach.Options{
				K:           k,
				ExactSeed:   opts.Omega,
				MaxStates:   opts.MaxStates,
				MaxRaces:    opts.MaxRaces,
				Parallelism: opts.Parallelism,
			})
			if err != nil {
				if ctx.Err() != nil {
					return nil, fmt.Errorf("circ: analysis cancelled: %w", ctx.Err())
				}
				rep.Verdict = Unknown
				rep.Reason = err.Error()
				rep.Preds = set.Preds()
				rep.K = k
				return rep, nil
			}
			info := IterationInfo{
				Round: round, Inner: inner,
				NumPreds:  set.Len(),
				NumStates: res.NumStates,
				ARGLocs:   len(res.ARG.Roots()),
				ACFALocs:  A.NumLocs(),
				RaceFound: len(res.Races) > 0,
			}
			logf("-- round %d.%d: states=%d argLocs=%d races=%d\n",
				round, inner, res.NumStates, info.ARGLocs, len(res.Races))

			if len(res.Races) > 0 {
				// Analyse counterexamples until one is genuine or the
				// abstraction can be refined. Different abstract races may
				// concretise differently, so trying several avoids getting
				// stuck on a spurious interleaving the predicates cannot
				// exclude.
				known := make(map[string]bool, set.Len())
				for _, p := range set.Preds() {
					known[p.Key()] = true
				}
				var fresh []expr.Expr
				anyIncK := false
				var lastTF []expr.Expr
				var lastErr error
				for _, trace := range res.Races {
					out, err := refine.Refine(refine.Input{
						C: c, A: A, ARG: prevARG, Mu: mu,
						Trace: trace, RaceVar: raceVar,
						K: k, ExactSeed: opts.Omega, Chk: chk,
						Strategy: opts.MineStrategy,
					})
					if err != nil {
						lastErr = err
						continue
					}
					switch out.Kind {
					case refine.Real:
						info.RefineOutcome = out.Kind.String()
						rep.History = append(rep.History, info)
						logf("   genuine race:\n%s", out.Interleaving)
						rep.Verdict = Unsafe
						rep.Race = out.Interleaving
						rep.Witness = out.Witness
						rep.TF = out.TF
						rep.Preds = set.Preds()
						rep.K = k
						return rep, nil
					case refine.IncrementK:
						anyIncK = true
					case refine.NewPreds:
						lastTF = out.TF
						for _, p := range out.Preds {
							if !known[p.Key()] {
								known[p.Key()] = true
								fresh = append(fresh, p)
							}
						}
					}
				}
				switch {
				case len(fresh) > 0:
					info.RefineOutcome = "new-predicates"
					logf("   spurious; new predicates: %v\n", fresh)
					preds = append(preds, fresh...)
					rep.TF = lastTF
					advanceOuter = true
				case anyIncK:
					info.RefineOutcome = "increment-k"
					k++
					logf("   counter too low; k := %d\n", k)
					advanceOuter = true
				default:
					info.RefineOutcome = "stuck"
					rep.History = append(rep.History, info)
					rep.Verdict = Unknown
					rep.Reason = "spurious counterexamples yielded no new predicates"
					if lastErr != nil {
						rep.Reason += " (" + lastErr.Error() + ")"
					}
					rep.Preds = set.Preds()
					rep.K = k
					rep.TF = lastTF
					return rep, nil
				}
				rep.History = append(rep.History, info)
				continue
			}

			// No race reachable: guarantee check (CheckSim).
			argACFA, _ := res.ARG.ToACFA()
			if simrel.Simulates(argACFA, A, chk) {
				rep.History = append(rep.History, info)
				if opts.Omega {
					ok, err := goodLocationCheck(c, A, res.ARG, mu, k, chk)
					if err != nil {
						rep.Verdict = Unknown
						rep.Reason = err.Error()
						rep.Preds = set.Preds()
						rep.K = k
						return rep, nil
					}
					if !ok {
						k++
						logf("   good-location check failed; k := %d\n", k)
						advanceOuter = true
						continue
					}
				}
				logf("   context sound: SAFE with %d-location ACFA\n", A.NumLocs())
				rep.Verdict = Safe
				rep.FinalACFA = A
				rep.Preds = set.Preds()
				rep.K = k
				return rep, nil
			}
			// Weaken the context: A := Collapse(G).
			if opts.NoMinimize {
				var locMap map[int]acfa.Loc
				A, locMap = res.ARG.ToACFA()
				mu = locMap
			} else {
				A, mu = bisim.Collapse(res.ARG, chk)
			}
			prevARG = res.ARG
			info.ACFALocs = A.NumLocs()
			rep.History = append(rep.History, info)
			logf("   context unsound; collapsed to %d-location ACFA\n%s", A.NumLocs(), indent(A.String()))
		}
		if !advanceOuter {
			rep.Verdict = Unknown
			rep.Reason = "inner context-weakening loop did not converge"
			rep.Preds = preds
			rep.K = k
			return rep, nil
		}
	}
	rep.Verdict = Unknown
	rep.Reason = "refinement budget exhausted"
	rep.Preds = preds
	rep.K = k
	return rep, nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "      " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
