// Package circ implements the paper's main contribution: the CIRC context
// inference algorithm (Algorithm 5) and its omega-CIRC optimisation
// (Section 5). CIRC interleaves two nested loops:
//
//   - the inner loop alternately weakens the context model — running
//     ReachAndBuild under the current ACFA and Collapse-ing the resulting
//     ARG into a new, weaker ACFA — until the context model simulates the
//     thread's observed behaviour (circular assume-guarantee closure);
//   - the outer loop refines the abstraction — adding predicates mined
//     from spurious counterexamples or incrementing the thread counter —
//     whenever the inner loop trips over an abstract race.
//
// The result is either a proof of race freedom (a sound context model), a
// genuine interleaved race trace, or an "unknown" verdict when refinement
// stalls or budgets run out.
package circ

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"circ/internal/acfa"
	"circ/internal/bisim"
	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/journal"
	"circ/internal/pred"
	"circ/internal/reach"
	"circ/internal/refine"
	"circ/internal/simrel"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

// Verdict is the analysis outcome.
type Verdict int

// Verdicts.
const (
	Unknown Verdict = iota
	Safe
	Unsafe
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case Unsafe:
		return "unsafe"
	}
	return "unknown"
}

// Options configures the checker.
type Options struct {
	// K is the initial counter parameter (default 1).
	K int
	// InitialPreds seeds the predicate set.
	InitialPreds []expr.Expr
	// Omega selects the omega-CIRC variant: reachability with exactly K
	// context threads plus the good-location generalisation check.
	Omega bool
	// MaxRounds bounds outer (refinement) rounds; default 40.
	MaxRounds int
	// MaxInner bounds inner (context-weakening) rounds; default 60.
	MaxInner int
	// MaxStates bounds each reachability run.
	MaxStates int
	// Logger, when non-nil, receives a structured narration of every
	// iteration (the Figures 2-5 reproduction). Wrap an io.Writer with
	// telemetry.NarrationLogger for the classic text rendering.
	Logger *slog.Logger
	// Metrics, when non-nil, aggregates this analysis's counters into a
	// harness- or process-wide registry; the analysis additionally keeps a
	// per-run child registry whose snapshot lands in Report.Metrics.
	Metrics *telemetry.Registry
	// MineStrategy selects how predicates are discovered from spurious
	// counterexamples (default: unsat-core atoms).
	MineStrategy refine.MineStrategy
	// NoMinimize disables the weak-bisimulation quotient: the context is
	// weakened to the (projected) ARG itself. Ablation switch; sound but
	// produces larger context models.
	NoMinimize bool
	// MaxRaces caps how many abstract race traces each reachability run
	// collects (0 = default). MaxRaces = 1 reproduces the paper's
	// first-trace-only behaviour, as an ablation.
	MaxRaces int
	// Parallelism is the number of workers used for frontier-parallel
	// reachability (0 or 1: sequential). Verdicts are identical at any
	// parallelism; values > 1 require chk to be safe for concurrent use
	// (smt.CachedChecker).
	Parallelism int
	// Sched selects the reachability scheduler (default: work-stealing).
	Sched reach.Sched
}

func (o Options) k() int {
	if o.K > 0 {
		return o.K
	}
	return 1
}

func (o Options) maxRounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 40
}

func (o Options) maxInner() int {
	if o.MaxInner > 0 {
		return o.MaxInner
	}
	return 60
}

// IterationInfo records one inner iteration, for the evaluation harness.
type IterationInfo struct {
	Round, Inner  int
	NumPreds      int
	NumStates     int
	ARGLocs       int
	ACFALocs      int
	RaceFound     bool
	RefineOutcome string
}

// Report is the analysis result with its evidence.
type Report struct {
	Verdict Verdict
	// Reason explains Unknown verdicts.
	Reason string
	// Preds is the final predicate set.
	Preds []expr.Expr
	// K is the final counter parameter.
	K int
	// FinalACFA is the inferred sound context model (Safe only).
	FinalACFA *acfa.ACFA
	// LastACFA is the most recent context model the inner loop worked
	// under, whatever the verdict: for Safe reports it equals FinalACFA,
	// for Unsafe and Unknown it is the abstraction in force when the
	// analysis stopped — the model a dot export should show for non-safe
	// outcomes.
	LastACFA *acfa.ACFA
	// Race is the genuine interleaved trace (Unsafe only).
	Race *refine.Interleaving
	// Witness is a satisfying SSA model of the race's trace formula; use
	// refine.FormatTraceWithWitness to render the trace with values.
	Witness map[string]int64
	// TF is the trace formula of the final analysed trace.
	TF []expr.Expr
	// Rounds counts outer iterations; History records every inner one.
	Rounds  int
	History []IterationInfo
	// Triage, when non-empty, records that the verdict was discharged by
	// the static triage stage without running CIRC at all: "read-only",
	// "atomic-covered", "thread-local", or "flag-guarded". Triage reports
	// are always Safe and carry no context model or predicates.
	Triage string
	// SeededPreds counts the initial predicates the caller injected via
	// Options.InitialPreds (e.g. exported by the static flag-guard
	// analysis). Zero when inference started from the empty abstraction.
	SeededPreds int
	// Metrics snapshots this analysis's telemetry registry at the end of
	// the run: iteration/refinement counters, reachability statistics, and
	// the SMT cache state ("smt.cache.hits"/"smt.cache.misses" gauges),
	// so the report is self-describing without a live checker.
	Metrics telemetry.Metrics
}

// Summary renders the report as a one-line human-readable verdict with
// its headline evidence, including the iteration count and SMT cache hit
// rate from the embedded Metrics snapshot (no live checker needed).
func (r *Report) Summary() string {
	switch r.Verdict {
	case Safe:
		if r.Triage != "" {
			return fmt.Sprintf("safe: discharged statically (triage: %s)", r.Triage)
		}
		locs := 0
		if r.FinalACFA != nil {
			locs = r.FinalACFA.NumLocs()
		}
		return fmt.Sprintf("safe: race freedom proved (%d predicates, %d-location context, k=%d, %d rounds%s)",
			len(r.Preds), locs, r.K, r.Rounds, r.metricsSuffix())
	case Unsafe:
		steps := 0
		if r.Race != nil {
			steps = len(r.Race.Steps)
		}
		return fmt.Sprintf("unsafe: genuine race, %d-step interleaved trace (k=%d, %d rounds%s)",
			steps, r.K, r.Rounds, r.metricsSuffix())
	}
	reason := r.Reason
	if reason == "" {
		reason = "analysis inconclusive"
	}
	return "unknown: " + reason
}

// metricsSuffix renders the Metrics-sourced part of Summary; empty when
// the report carries no snapshot (hand-built reports, old callers).
func (r *Report) metricsSuffix() string {
	iters := r.Metrics.Counter("circ.iterations")
	hits := r.Metrics.Gauge("smt.cache.hits")
	misses := r.Metrics.Gauge("smt.cache.misses")
	if iters == 0 && hits+misses == 0 {
		return ""
	}
	s := fmt.Sprintf(", %d iterations, smt hit rate %.1f%%", iters, 100*r.Metrics.SMTHitRate())
	if h := r.Metrics.Histograms["refine.analyze"]; h.Count > 0 {
		s += fmt.Sprintf(", refine p95 %s", h.Quantile(0.95).Round(100*time.Nanosecond))
	}
	return s
}

// Check runs CIRC on thread CFA c, verifying the absence of races on
// raceVar (a global of c). The context cancels the analysis between
// iterations and between reachability frontier levels; cancellation
// surfaces as a non-nil error wrapping ctx.Err().
//
// Check wraps the core loop with the per-analysis telemetry: a
// "circ.check" root span (when ctx carries a telemetry.Tracer), a child
// metrics registry aggregating into opts.Metrics when one is set, and the
// Report.Metrics snapshot, which also records the solver's cumulative
// cache counters when chk exposes them.
func Check(ctx context.Context, c *cfa.CFA, raceVar string, opts Options, chk smt.Solver) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	unit := telemetry.ChildOf(opts.Metrics)
	opts.Metrics = unit
	ctx, sp := telemetry.StartSpan(ctx, "circ.check")
	sp.Annotate("variable", raceVar)
	rep, err := check(ctx, c, raceVar, opts, chk)
	if rep != nil {
		unit.Gauge("circ.k").Set(int64(rep.K))
		unit.Gauge("circ.preds").Set(int64(len(rep.Preds)))
		if pc, ok := chk.(interface{ PublishStats(*telemetry.Registry) }); ok {
			pc.PublishStats(unit)
		} else if sc, ok := chk.(interface{ Stats() smt.CacheStats }); ok {
			st := sc.Stats()
			unit.Gauge("smt.cache.hits").Set(st.Hits)
			unit.Gauge("smt.cache.misses").Set(st.Misses)
			unit.Gauge("smt.queries").Set(st.Solver.Queries)
		}
		rep.Metrics = unit.Snapshot()
		sp.Annotate("verdict", rep.Verdict.String())
		journal.FromContext(ctx).Emit(journal.Event{
			Type:     journal.EvVerdict,
			Verdict:  rep.Verdict.String(),
			Reason:   rep.Reason,
			K:        rep.K,
			NumPreds: len(rep.Preds),
			Rounds:   rep.Rounds,
		})
	}
	sp.End()
	return rep, err
}

// check is the core CIRC loop (Algorithm 5): context weakening inside,
// abstraction refinement outside.
func check(ctx context.Context, c *cfa.CFA, raceVar string, opts Options, chk smt.Solver) (*Report, error) {
	if !c.IsGlobal(raceVar) {
		return nil, fmt.Errorf("circ: race variable %q is not a global", raceVar)
	}
	if chk == nil {
		chk = smt.NewChecker()
	}
	log := opts.Logger
	cIters := opts.Metrics.Counter("circ.iterations")
	cRounds := opts.Metrics.Counter("circ.rounds")
	cKInc := opts.Metrics.Counter("circ.k.increments")
	cPredsFound := opts.Metrics.Counter("circ.preds.discovered")

	logInfo := func(msg string, args ...any) {
		if log != nil {
			log.Info(msg, args...)
		}
	}

	preds := append([]expr.Expr(nil), opts.InitialPreds...)
	k := opts.k()
	rep := &Report{SeededPreds: len(opts.InitialPreds)}

	j := journal.FromContext(ctx)
	for _, p := range opts.InitialPreds {
		j.Emit(journal.Event{Type: journal.EvPredicateDiscovered, Outcome: "seeded", Pred: p.String()})
	}
	// beginPhase opens a per-phase solver-work measurement for the journal
	// and returns the closure that emits it. Full smt.Stats deltas are only
	// attributable (and only deterministic) when this analysis has
	// exclusive use of the solver and the phase runs sequentially; the
	// frontier-parallel reach phase passes cachedOnly, reporting just the
	// cache-content growth, which stays deterministic under racing workers.
	var solver interface {
		Stats() smt.CacheStats
		CacheSize() int
	}
	if j.ExclusiveSolver() {
		solver, _ = chk.(interface {
			Stats() smt.CacheStats
			CacheSize() int
		})
	}
	beginPhase := func(phase string, cachedOnly bool) func() {
		if solver == nil {
			return func() {}
		}
		before := solver.Stats()
		sizeBefore := solver.CacheSize()
		return func() {
			after := solver.Stats()
			e := journal.Event{
				Type: journal.EvSMTPhaseStats, Phase: phase,
				NewCached: int64(solver.CacheSize() - sizeBefore),
			}
			if !cachedOnly {
				e.Queries = after.Solver.Queries - before.Solver.Queries
				e.CacheHits = after.Hits - before.Hits
				e.CacheMisses = after.Misses - before.Misses
				e.TheoryChecks = after.Solver.TheoryChecks - before.Solver.TheoryChecks
				e.SatConflicts = after.Solver.SatConflicts - before.Solver.SatConflicts
			}
			j.Emit(e)
		}
	}

	// curSpan is the open per-iteration span; the deferred End covers the
	// early-return paths (End is idempotent, and a nil span ignores it).
	var curSpan *telemetry.Span
	defer func() { curSpan.End() }()

	for round := 1; round <= opts.maxRounds(); round++ {
		rep.Rounds = round
		cRounds.Inc()
		set := pred.NewSet(preds...)
		abs := pred.NewAbstractor(chk, set)
		abs.Instrument(opts.Metrics)
		logInfo("== round", "round", round, "k", k, "preds", set.String())

		A := acfa.Empty(set)
		rep.LastACFA = A
		var prevARG *reach.ARG
		var mu map[int]acfa.Loc

		advanceOuter := false
		for inner := 1; inner <= opts.maxInner() && !advanceOuter; inner++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("circ: analysis cancelled: %w", err)
			}
			cIters.Inc()
			j.Emit(journal.Event{
				Type:  journal.EvIterationStart,
				Round: round, Inner: inner, K: k, NumPreds: set.Len(),
			})
			ictx, isp := telemetry.StartSpan(ctx, "iteration")
			curSpan = isp
			isp.Annotate("round", round)
			isp.Annotate("inner", inner)
			reachDone := beginPhase("reach", true)
			res, err := reach.ReachAndBuild(ictx, c, A, abs, raceVar, reach.Options{
				K:           k,
				ExactSeed:   opts.Omega,
				MaxStates:   opts.MaxStates,
				MaxRaces:    opts.MaxRaces,
				Parallelism: opts.Parallelism,
				Sched:       opts.Sched,
				Metrics:     opts.Metrics,
			})
			reachDone()
			if err != nil {
				if ctx.Err() != nil {
					return nil, fmt.Errorf("circ: analysis cancelled: %w", ctx.Err())
				}
				rep.Verdict = Unknown
				rep.Reason = err.Error()
				rep.Preds = set.Preds()
				rep.K = k
				return rep, nil
			}
			info := IterationInfo{
				Round: round, Inner: inner,
				NumPreds:  set.Len(),
				NumStates: res.NumStates,
				ARGLocs:   len(res.ARG.Roots()),
				ACFALocs:  A.NumLocs(),
				RaceFound: len(res.Races) > 0,
			}
			isp.Annotate("states", res.NumStates)
			logInfo("-- iteration", "round", round, "inner", inner,
				"states", res.NumStates, "argLocs", info.ARGLocs, "races", len(res.Races))

			if len(res.Races) > 0 {
				// Analyse counterexamples until one is genuine or the
				// abstraction can be refined. Different abstract races may
				// concretise differently, so trying several avoids getting
				// stuck on a spurious interleaving the predicates cannot
				// exclude.
				known := make(map[string]bool, set.Len())
				for _, p := range set.Preds() {
					known[p.Key()] = true
				}
				var fresh []expr.Expr
				// freshProv carries the provenance of each fresh predicate —
				// the spurious trace and unsat-core atoms it was mined from —
				// and is journalled only if the predicates are adopted below
				// (a later genuine trace discards them, and the journal should
				// record the abstraction that was actually used).
				var freshProv []journal.Event
				anyIncK := false
				var lastTF []expr.Expr
				var lastErr error
				refineDone := beginPhase("refine", false)
				_, rsp := telemetry.StartSpan(ictx, "refine")
				for _, trace := range res.Races {
					out, err := refine.Refine(refine.Input{
						C: c, A: A, ARG: prevARG, Mu: mu,
						Trace: trace, RaceVar: raceVar,
						K: k, ExactSeed: opts.Omega, Chk: chk,
						Strategy: opts.MineStrategy,
						Metrics:  opts.Metrics,
						Journal:  j,
					})
					if err != nil {
						lastErr = err
						continue
					}
					switch out.Kind {
					case refine.Real:
						rsp.End()
						refineDone()
						info.RefineOutcome = out.Kind.String()
						rep.History = append(rep.History, info)
						logInfo("   genuine race", "trace", out.Interleaving.String())
						rep.Verdict = Unsafe
						rep.Race = out.Interleaving
						rep.Witness = out.Witness
						rep.TF = out.TF
						rep.Preds = set.Preds()
						rep.K = k
						return rep, nil
					case refine.IncrementK:
						anyIncK = true
					case refine.NewPreds:
						lastTF = out.TF
						var traceStr string
						var coreAtoms []string
						if j.Enabled() {
							traceStr = out.Interleaving.String()
							for _, ci := range out.Core {
								if ci >= 0 && ci < len(out.TF) {
									coreAtoms = append(coreAtoms, out.TF[ci].String())
								}
							}
						}
						for _, p := range out.Preds {
							if !known[p.Key()] {
								known[p.Key()] = true
								fresh = append(fresh, p)
								if j.Enabled() {
									freshProv = append(freshProv, journal.Event{
										Type: journal.EvPredicateDiscovered, Outcome: "mined",
										Pred:  p.String(),
										Round: round, Inner: inner,
										Trace: traceStr, Core: coreAtoms,
									})
								}
							}
						}
					}
				}
				rsp.End()
				refineDone()
				switch {
				case len(fresh) > 0:
					info.RefineOutcome = "new-predicates"
					logInfo("   spurious; new predicates", "preds", fmt.Sprintf("%v", fresh))
					cPredsFound.Add(int64(len(fresh)))
					preds = append(preds, fresh...)
					for _, pe := range freshProv {
						j.Emit(pe)
					}
					rep.TF = lastTF
					advanceOuter = true
				case anyIncK:
					info.RefineOutcome = "increment-k"
					k++
					cKInc.Inc()
					logInfo("   counter too low", "k", k)
					advanceOuter = true
				default:
					info.RefineOutcome = "stuck"
					rep.History = append(rep.History, info)
					rep.Verdict = Unknown
					rep.Reason = "spurious counterexamples yielded no new predicates"
					if lastErr != nil {
						rep.Reason += " (" + lastErr.Error() + ")"
					}
					rep.Preds = set.Preds()
					rep.K = k
					rep.TF = lastTF
					return rep, nil
				}
				rep.History = append(rep.History, info)
				isp.End()
				curSpan = nil
				continue
			}

			// No race reachable: guarantee check (CheckSim).
			argACFA, _ := res.ARG.ToACFA()
			_, ssp := telemetry.StartSpan(ictx, "simcheck")
			simDone := beginPhase("simcheck", false)
			simulates := simrel.Simulates(argACFA, A, chk)
			simDone()
			ssp.End()
			if simulates {
				rep.History = append(rep.History, info)
				if opts.Omega {
					_, osp := telemetry.StartSpan(ictx, "goodloc")
					glDone := beginPhase("goodloc", false)
					ok, err := goodLocationCheck(ictx, c, A, res.ARG, mu, k, chk, opts.Metrics)
					glDone()
					osp.End()
					if err != nil {
						rep.Verdict = Unknown
						rep.Reason = err.Error()
						rep.Preds = set.Preds()
						rep.K = k
						return rep, nil
					}
					if !ok {
						k++
						cKInc.Inc()
						logInfo("   good-location check failed", "k", k)
						advanceOuter = true
						isp.End()
						curSpan = nil
						continue
					}
				}
				logInfo("   context sound: SAFE", "acfaLocs", A.NumLocs())
				rep.Verdict = Safe
				rep.FinalACFA = A
				rep.Preds = set.Preds()
				rep.K = k
				return rep, nil
			}
			// Weaken the context: A := Collapse(G).
			_, csp := telemetry.StartSpan(ictx, "collapse")
			colDone := beginPhase("collapse", false)
			if opts.NoMinimize {
				var locMap map[int]acfa.Loc
				A, locMap = res.ARG.ToACFA()
				mu = locMap
			} else {
				A, mu = bisim.Collapse(ictx, res.ARG, chk, opts.Metrics)
			}
			colDone()
			csp.End()
			rep.LastACFA = A
			prevARG = res.ARG
			info.ACFALocs = A.NumLocs()
			rep.History = append(rep.History, info)
			logInfo("   context unsound; collapsed", "acfaLocs", A.NumLocs(), "acfa", A.String())
			isp.End()
			curSpan = nil
		}
		if !advanceOuter {
			rep.Verdict = Unknown
			rep.Reason = "inner context-weakening loop did not converge"
			rep.Preds = preds
			rep.K = k
			return rep, nil
		}
	}
	rep.Verdict = Unknown
	rep.Reason = "refinement budget exhausted"
	rep.Preds = preds
	rep.K = k
	return rep, nil
}
