package circ

import (
	"context"
	"fmt"

	"circ/internal/acfa"
	"circ/internal/bisim"
	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/pred"
	"circ/internal/reach"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

// goodLocationCheck implements the omega-CIRC generalisation test of
// Section 5: after the inner loop converges with exactly k context
// threads, verify that the inferred context also describes arbitrarily
// many threads. A location n of the final ARG G is good for a context
// transition e = q' -{Y}-> q” of the quotient when (1) e is enabled at
// mu(n) in some reachable environment configuration and (2) executing e
// from n's region stays within n's region:
//
//	(exists Y. R(n)) ∧ label(q'')  ⟹  R(n)
//
// If every location is good for every enabled transition, the context
// soundly over-approximates an unbounded number of threads.
//
// Enabledness is computed by a data-aware context-only reachability: a
// configuration is a counter map plus an abstract cube over the global
// predicates, and context moves are gated by the target-location labels.
// The data makes label-encoded mutual exclusion visible (e.g. two threads
// can never both occupy the critical-section locations), without which the
// check would fail spuriously and k would diverge.
func goodLocationCheck(ctx context.Context, c *cfa.CFA, a *acfa.ACFA, g *reach.ARG, mu map[int]acfa.Loc, k int, chk smt.Solver, reg *telemetry.Registry) (bool, error) {
	_, _, _ = c, a, mu
	// Re-collapse the final ARG so locations and classes line up.
	quot, muq := bisim.Collapse(ctx, g, chk, reg)
	if quot.IsEmpty() {
		return true, nil // a do-nothing context trivially generalises
	}
	abs := pred.NewAbstractor(chk, g.Set)
	configs, err := contextReach(quot, k, c, abs)
	if err != nil {
		return false, err
	}
	for _, n := range g.Roots() {
		cls, ok := muq[n]
		if !ok {
			continue
		}
		// While the main-representing thread occupies an atomic location,
		// no context transition can fire, so its region need not be closed
		// under context effects.
		if quot.IsAtomic(cls) {
			continue
		}
		rn := g.Region(n)
		rnFormula := rn.Formula()
		for _, e := range quot.Edges {
			if !enabledAt(configs, e, cls) {
				continue
			}
			drop := e.HavocSet()
			lhs := expr.Conj(rn.ProjectVars(drop).Formula(), quot.Label(e.Dst).Formula())
			if !chk.Implies(lhs, rnFormula) {
				return false, nil
			}
		}
	}
	return true, nil
}

// ctxConfig is a context-only configuration: counters plus an abstract
// view of the global state.
type ctxConfig struct {
	ctx  reach.Ctx
	cube *pred.Cube
}

// contextReach enumerates the configurations reachable by the context
// alone, seeding the entry location with omega under the k-counter
// abstraction and the all-zero global state.
func contextReach(a *acfa.ACFA, k int, c *cfa.CFA, abs *pred.Abstractor) ([]ctxConfig, error) {
	init := ctxConfig{
		ctx:  make(reach.Ctx, a.NumLocs()),
		cube: abs.InitialCube(c.Globals),
	}
	init.ctx[a.Entry] = reach.Omega
	key := func(cf ctxConfig) string { return cf.ctx.Key() + "#" + cf.cube.Key() }
	seen := map[string]bool{key(init): true}
	queue := []ctxConfig{init}
	var out []ctxConfig
	const budget = 100000
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		if len(out) > budget {
			return nil, fmt.Errorf("circ: context configuration budget exceeded")
		}
		// Atomic scheduling: if an atomic location is occupied, only its
		// thread moves.
		sources := make([]acfa.Loc, 0, a.NumLocs())
		atomicOccupied := -1
		for n := 0; n < a.NumLocs(); n++ {
			if cur.ctx.Occupied(acfa.Loc(n)) {
				if a.IsAtomic(acfa.Loc(n)) {
					atomicOccupied = n
					break
				}
				sources = append(sources, acfa.Loc(n))
			}
		}
		if atomicOccupied >= 0 {
			sources = []acfa.Loc{acfa.Loc(atomicOccupied)}
		}
		for _, src := range sources {
			for _, e := range a.OutEdges(src) {
				ctx2 := cur.ctx.Dec(e.Src).Inc(e.Dst, k)
				for _, tc := range a.Label(e.Dst).Cubes() {
					next := abs.PostHavoc(cur.cube, e.Havoc, tc.Formula(), expr.TrueExpr)
					if next == nil {
						continue
					}
					cf := ctxConfig{ctx: ctx2, cube: next}
					if kk := key(cf); !seen[kk] {
						seen[kk] = true
						queue = append(queue, cf)
					}
				}
			}
		}
	}
	return out, nil
}

// enabledAt reports whether context transition e can fire while the
// distinguished (main-representing) thread sits at class cls: some
// reachable configuration has a thread at e.Src in addition to the one at
// cls.
func enabledAt(configs []ctxConfig, e *acfa.Edge, cls acfa.Loc) bool {
	for _, cf := range configs {
		if !cf.ctx.Occupied(e.Src) {
			continue
		}
		if cls != e.Src {
			if cf.ctx.Occupied(cls) {
				return true
			}
		} else if cf.ctx.AtLeastTwo(e.Src) {
			return true
		}
	}
	return false
}
