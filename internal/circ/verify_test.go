package circ

import (
	"context"
	"errors"
	"testing"

	"circ/internal/acfa"
	"circ/internal/cfa"
	"circ/internal/lang"
	"circ/internal/pred"
	"circ/internal/smt"
)

// TestCertificateRoundTrip: the context model and predicates from a Safe
// CIRC run must pass the standalone Algorithm Check.
func TestCertificateRoundTrip(t *testing.T) {
	p, err := lang.Parse(testAndSetSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatal(err)
	}
	chk := smt.NewChecker()
	rep, err := Check(context.Background(), c, "x", Options{}, chk)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
	if err := VerifyCertificate(context.Background(), c, "x", rep.FinalACFA, rep.Preds, rep.K, chk); err != nil {
		t.Fatalf("genuine certificate rejected: %v", err)
	}
}

// TestCertificateTamperedLabels: weakening the certificate's labels to
// true must break one of the obligations (the assume check now reaches a
// race, or the guarantee fails), reported as a *CertificateError.
func TestCertificateTamperedLabels(t *testing.T) {
	p, err := lang.Parse(testAndSetSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatal(err)
	}
	chk := smt.NewChecker()
	rep, err := Check(context.Background(), c, "x", Options{}, chk)
	if err != nil || rep.Verdict != Safe {
		t.Fatalf("setup failed: %v %v", err, rep.Verdict)
	}
	// Tamper: erase every label.
	set := pred.NewSet(rep.Preds...)
	bad := &acfa.ACFA{Entry: rep.FinalACFA.Entry}
	for l := 0; l < rep.FinalACFA.NumLocs(); l++ {
		bad.AddLoc(pred.TrueRegion(set), rep.FinalACFA.IsAtomic(acfa.Loc(l)))
	}
	for _, e := range rep.FinalACFA.Edges {
		bad.AddEdge(e.Src, e.Dst, e.Havoc)
	}
	bad.Finish()
	err = VerifyCertificate(context.Background(), c, "x", bad, rep.Preds, rep.K, chk)
	if err == nil {
		t.Fatalf("tampered certificate (labels erased) accepted")
	}
	var cerr *CertificateError
	if !errors.As(err, &cerr) {
		t.Fatalf("want *CertificateError, got %T: %v", err, err)
	}
	if cerr.Detail == "" {
		t.Fatalf("no failure detail reported")
	}
}

// TestCertificateEmptyContextRejected: the empty context cannot certify a
// program whose thread writes globals (guarantee fails).
func TestCertificateEmptyContextRejected(t *testing.T) {
	p, err := lang.Parse(testAndSetSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatal(err)
	}
	chk := smt.NewChecker()
	err = VerifyCertificate(context.Background(), c, "x", acfa.Empty(pred.NewSet()), nil, 1, chk)
	var cerr *CertificateError
	if !errors.As(err, &cerr) {
		t.Fatalf("empty context not rejected with CertificateError: %v", err)
	}
	if cerr.Obligation != ObligationAssume && cerr.Obligation != ObligationGuarantee {
		t.Fatalf("bad obligation %v", cerr.Obligation)
	}
}

func TestCertificateBadVariable(t *testing.T) {
	p, _ := lang.Parse(testAndSetSrc)
	c, _ := cfa.Build(p, "")
	err := VerifyCertificate(context.Background(), c, "old", acfa.Empty(pred.NewSet()), nil, 1, nil)
	if err == nil {
		t.Fatalf("non-global accepted")
	}
	var cerr *CertificateError
	if errors.As(err, &cerr) {
		t.Fatalf("setup error must not be a CertificateError: %v", err)
	}
}

func TestObligationString(t *testing.T) {
	if ObligationAssume.String() != "assume" || ObligationGuarantee.String() != "guarantee" {
		t.Fatalf("obligation strings: %s, %s", ObligationAssume, ObligationGuarantee)
	}
}
