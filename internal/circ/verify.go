package circ

import (
	"context"
	"fmt"

	"circ/internal/acfa"
	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/pred"
	"circ/internal/reach"
	"circ/internal/simrel"
	"circ/internal/smt"
)

// Obligation identifies which assume-guarantee proof obligation of
// Algorithm Check a certificate failed.
type Obligation int

// Obligations.
const (
	// ObligationAssume is the assume check: reachability of ((C,P),(A,k))
	// hits no race state.
	ObligationAssume Obligation = iota
	// ObligationGuarantee is the guarantee check: the context model weakly
	// simulates the thread's observed behaviour.
	ObligationGuarantee
)

func (o Obligation) String() string {
	switch o {
	case ObligationAssume:
		return "assume"
	case ObligationGuarantee:
		return "guarantee"
	}
	return fmt.Sprintf("Obligation(%d)", int(o))
}

// CertificateError reports an invalid Safe certificate: which obligation
// failed and why. It replaces the earlier stringly (bool, string, error)
// reporting so callers can branch with errors.As and inspect the failed
// obligation programmatically.
type CertificateError struct {
	// Obligation is the failed proof obligation.
	Obligation Obligation
	// Detail is a human-readable explanation.
	Detail string
}

func (e *CertificateError) Error() string {
	return fmt.Sprintf("circ: certificate invalid: %s check failed: %s", e.Obligation, e.Detail)
}

// VerifyCertificate implements the paper's Algorithm Check (Section 4.2)
// standalone: given a purported context model A, predicate set P, and
// counter parameter k — e.g. the certificate produced by a Safe run of
// CIRC — it discharges the two assume-guarantee obligations without any
// inference:
//
//  1. Assume: reachability of ((C,P),(A,k)) hits no race state on raceVar;
//  2. Guarantee: the resulting ARG is weakly simulated by A.
//
// Both passing proves race freedom of C^omega by Proposition 1; the
// function then returns nil. A failed obligation is reported as a
// *CertificateError (making the Safe verdict's evidence independently
// checkable and tampering detectable); any other error means the check
// could not be run at all.
func VerifyCertificate(ctx context.Context, c *cfa.CFA, raceVar string, a *acfa.ACFA, preds []expr.Expr, k int, chk smt.Solver) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !c.IsGlobal(raceVar) {
		return fmt.Errorf("circ: race variable %q is not a global", raceVar)
	}
	if chk == nil {
		chk = smt.NewChecker()
	}
	if k <= 0 {
		k = 1
	}
	set := pred.NewSet(preds...)
	abs := pred.NewAbstractor(chk, set)
	res, err := reach.ReachAndBuild(ctx, c, a, abs, raceVar, reach.Options{K: k})
	if err != nil {
		return err
	}
	if len(res.Races) > 0 {
		return &CertificateError{
			Obligation: ObligationAssume,
			Detail:     "an abstract race state is reachable under the given context",
		}
	}
	argACFA, _ := res.ARG.ToACFA()
	if !simrel.Simulates(argACFA, a, chk) {
		return &CertificateError{
			Obligation: ObligationGuarantee,
			Detail:     "the context does not simulate the thread's behaviour",
		}
	}
	return nil
}
