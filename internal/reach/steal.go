package reach

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"circ/internal/acfa"
	"circ/internal/telemetry"
)

// Deterministic work-stealing scheduler.
//
// The level-synchronous scheduler (runLevel) alternates a parallel
// expand phase with a sequential merge phase, so workers idle at the
// level barrier whenever expansion times are uneven — and they always
// are: a state whose posts hit the cache costs microseconds, one that
// misses costs SMT solves. This scheduler removes the barrier.
//
// Shape: the merger (the calling goroutine) walks a global `order` list
// of discovered states — strictly in discovery order, exactly the FIFO
// dequeue order of a sequential BFS. Each state occupies a slot with an
// atomic status (empty → claimed → done). Workers pull slots from
// per-worker deques — the owner pops newest-first (LIFO, cache-warm),
// thieves steal oldest-first (FIFO), Chase-Lev style — claim them by
// CAS, and expand: successors plus the isRace check, both pure
// (post-cache + concurrency-safe solver only). The merger resolves slot
// i by claiming it inline if nobody has, or waiting for its result;
// then it merges sequentially — budget accounting, race recording, ARG
// edges, dedup, discovery of new slots — and publishes fresh slots to
// the deques. Every state is therefore merged by one goroutine in a
// globally fixed order while expansion runs arbitrarily far ahead.
//
// Determinism argument. Verdict-relevant state (numStates, races, ARG,
// seen, journal widening events) is touched only by the merger, in
// discovery order, which is itself a deterministic function of the
// merged prefix — parallelism only changes *when* an expansion runs,
// never what it computes (expansions are pure functions of the state).
// The one side channel is the shared SMT cache: its *content* after the
// phase feeds the journal's new_cached delta. On a run that completes,
// every discovered slot is expanded at any parallelism (the merger
// reaches it), so the cache absorbs the same query set. On an early
// break — state budget exceeded or the race cap — workers may have
// speculatively expanded an arbitrary subset of outstanding slots, so
// the merger deterministically drains ALL outstanding slots before
// returning: the expanded set is again exactly the discovered set.
// Context cancellation skips the drain (an aborted run's journal is not
// compared). Slot results are published with an atomic status store
// after the fields are written; readers observe status==done before
// touching them (happens-before via sync/atomic).
//
// minStealOutstanding is the outstanding-work cutover: fresh slots are
// handed to workers only while at least this many states are already
// outstanding (discovered but unmerged). Below it the merger expands
// inline — a wakeup round-trip costs more than a (mostly
// post-cache-hit) expansion saves. Unlike SchedLevel's
// minParallelFrontier (= 8, a per-level width test), this keys on
// outstanding work items, which is what actually bounds how far a
// worker could run ahead; it is lower (4) because the steal handoff —
// a mutex push plus one broadcast onto an already-running pool — is far
// cheaper than spawning a per-level goroutine pool.
const minStealOutstanding = 4

const (
	slotEmpty int32 = iota
	slotClaimed
	slotDone
)

// slot is one discovered state and its expansion result. status guards
// recs/race: they are written before status is atomically set to
// slotDone and read only after observing slotDone.
type slot struct {
	state  *State
	status int32
	recs   []succRecord
	race   bool
}

// deque is a mutex-guarded work deque of slots. The owning worker pops
// the tail (newest, LIFO); thieves and the merger push/steal at the
// head (oldest, FIFO). A slot may be claimed elsewhere by the time it
// is popped; the CAS on slot.status resolves ownership.
type deque struct {
	mu  sync.Mutex
	buf []*slot
}

func (d *deque) push(sl *slot) {
	d.mu.Lock()
	d.buf = append(d.buf, sl)
	d.mu.Unlock()
}

func (d *deque) popTail() *slot {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) == 0 {
		return nil
	}
	sl := d.buf[len(d.buf)-1]
	d.buf = d.buf[:len(d.buf)-1]
	return sl
}

func (d *deque) popHead() *slot {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) == 0 {
		return nil
	}
	sl := d.buf[0]
	d.buf = d.buf[1:]
	return sl
}

// stealPool runs parallelism-1 expansion workers (the merger is the
// remaining participant); at parallelism 1 it spawns nothing and every
// slot is expanded inline by the merger.
type stealPool struct {
	e    *explorer
	deqs []*deque
	next int // round-robin publish cursor

	mu       sync.Mutex
	workCond *sync.Cond // workers wait here for pubGen to move
	doneCond *sync.Cond // the merger waits here for a claimed slot
	pubGen   uint64
	stop     bool
	wg       sync.WaitGroup
}

func newStealPool(e *explorer, workers int) *stealPool {
	p := &stealPool{e: e}
	p.workCond = sync.NewCond(&p.mu)
	p.doneCond = sync.NewCond(&p.mu)
	for w := 0; w < workers; w++ {
		p.deqs = append(p.deqs, &deque{})
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// expand computes a claimed slot's result and publishes it. The status
// store is the release point for recs/race.
func (p *stealPool) expand(sl *slot) {
	sl.recs = p.e.successors(sl.state)
	sl.race = p.e.isRace(sl.state)
	atomic.StoreInt32(&sl.status, slotDone)
}

// workerLane names a worker's flight-deck timeline lane. The per-worker
// index is stable across the reach runs of one job, so segments from
// every phase of the job coalesce onto one lane per worker slot.
func workerLane(id int) string {
	return fmt.Sprintf("reach.worker.%02d", id)
}

func (p *stealPool) worker(id int) {
	defer p.wg.Done()
	// Flight-deck timeline: one busy segment per work burst (first claim
	// after a park until the deques run dry) and one idle segment per
	// park, bounded by the timeline's own cap. With no timeline attached
	// the loop pays a nil check per iteration, nothing more.
	tl := p.e.tl
	var lane string
	if tl != nil {
		lane = workerLane(id)
	}
	var busyStart time.Time // zero: not in a work burst
	var myGen uint64
	for {
		sl := p.deqs[id].popTail()
		if sl == nil {
			sl = p.steal(id, lane)
		}
		if sl == nil {
			idle := time.Now()
			if tl != nil && !busyStart.IsZero() {
				tl.Record(lane, telemetry.SegBusy, busyStart, idle.Sub(busyStart))
				busyStart = time.Time{}
			}
			p.mu.Lock()
			for !p.stop && p.pubGen == myGen {
				p.workCond.Wait()
			}
			myGen = p.pubGen
			stop := p.stop
			p.mu.Unlock()
			idleDur := time.Since(idle)
			p.e.hIdle.Observe(idleDur)
			tl.Record(lane, telemetry.SegIdle, idle, idleDur)
			if stop {
				return
			}
			continue
		}
		if atomic.CompareAndSwapInt32(&sl.status, slotEmpty, slotClaimed) {
			if tl != nil && busyStart.IsZero() {
				busyStart = time.Now()
			}
			p.expand(sl)
			p.mu.Lock()
			p.doneCond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// steal takes the oldest slot from another worker's deque. A successful
// steal leaves an instant mark on the thief's timeline lane, so steal
// traffic is attributable per worker in the trace view.
func (p *stealPool) steal(id int, lane string) *slot {
	for i := 1; i < len(p.deqs); i++ {
		if sl := p.deqs[(id+i)%len(p.deqs)].popHead(); sl != nil {
			p.e.cSteals.Inc()
			if lane != "" {
				p.e.tl.Mark(lane, telemetry.SegSteal)
			}
			return sl
		}
	}
	return nil
}

// publish hands fresh slots to the workers, round-robin, once the
// outstanding count clears the cutover.
func (p *stealPool) publish(fresh []*slot, outstanding int) {
	p.e.gFrontier.Max(int64(outstanding))
	if len(fresh) == 0 || len(p.deqs) == 0 || outstanding < minStealOutstanding {
		return
	}
	for _, sl := range fresh {
		p.deqs[p.next%len(p.deqs)].push(sl)
		p.next++
	}
	p.mu.Lock()
	p.pubGen++
	p.workCond.Broadcast()
	p.mu.Unlock()
}

// resolve returns slot sl's expansion, claiming it inline when no
// worker has, or waiting for the worker that did.
func (p *stealPool) resolve(sl *slot) ([]succRecord, bool) {
	if atomic.CompareAndSwapInt32(&sl.status, slotEmpty, slotClaimed) {
		p.expand(sl)
		return sl.recs, sl.race
	}
	if atomic.LoadInt32(&sl.status) != slotDone {
		p.mu.Lock()
		for atomic.LoadInt32(&sl.status) != slotDone {
			p.doneCond.Wait()
		}
		p.mu.Unlock()
	}
	return sl.recs, sl.race
}

// drain expands every remaining slot (or waits for its in-flight
// expansion), discarding results. Called on early break so the set of
// expanded states — and with it the SMT cache content the journal
// reports — is the full discovered set at any parallelism.
func (p *stealPool) drain(rest []*slot) {
	for _, sl := range rest {
		if atomic.CompareAndSwapInt32(&sl.status, slotEmpty, slotClaimed) {
			p.expand(sl)
			continue
		}
		if atomic.LoadInt32(&sl.status) != slotDone {
			p.mu.Lock()
			for atomic.LoadInt32(&sl.status) != slotDone {
				p.doneCond.Wait()
			}
			p.mu.Unlock()
		}
	}
}

// shutdown stops the workers and waits for them to exit.
func (p *stealPool) shutdown() {
	if len(p.deqs) == 0 {
		return
	}
	p.mu.Lock()
	p.stop = true
	p.workCond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// runSteal is the work-stealing exploration loop. It reproduces
// runLevel's results exactly: the merged order is the same FIFO BFS
// discovery order, and all verdict-relevant bookkeeping happens here,
// sequentially.
func (e *explorer) runSteal(ctx context.Context) (*Result, error) {
	arg, init := e.seed()
	seen := make(map[string]*parentInfo)
	seen[init.Key()] = &parentInfo{state: init}

	order := []*slot{{state: init}}
	numStates := 0
	var races []*Trace
	var widened map[acfa.Loc]bool
	if e.j.Enabled() {
		widened = make(map[acfa.Loc]bool)
	}

	p := newStealPool(e, e.opts.parallelism()-1)
	defer p.shutdown()

	var retErr error
	breakAt := -1
merge:
	for i := 0; i < len(order); i++ {
		if err := ctx.Err(); err != nil {
			// Cancellation: no drain — an aborted run's journal is not
			// held to the determinism contract.
			return nil, err
		}
		sl := order[i]
		recs, isRace := p.resolve(sl)
		numStates++
		e.cStates.Inc()
		if numStates > e.opts.maxStates() {
			retErr = fmt.Errorf("reach: state budget exceeded (%d states)", e.opts.maxStates())
			breakAt = i
			break merge
		}
		if isRace {
			e.cRaces.Inc()
			races = append(races, e.buildTrace(seen, sl.state))
			if len(races) >= e.opts.maxRaces() {
				// Enough counterexamples for this refinement round; the
				// ARG is partial but unused on the error path.
				breakAt = i
				break merge
			}
		}
		var fresh []*slot
		dedup := make(map[string]bool)
		for _, rec := range recs {
			// ARG bookkeeping happens here, in deterministic order, not
			// in the parallel expansion phase.
			if rec.op.IsEnv() {
				arg.ConnectEnv(sl.state.TS, rec.state.TS)
			} else {
				arg.ConnectMain(sl.state.TS, rec.op.MainEdge, rec.state.TS)
			}
			k := rec.state.Key()
			if dedup[k] {
				continue
			}
			dedup[k] = true
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = &parentInfo{parentKey: sl.state.Key(), op: rec.op, state: rec.state}
			ns := &slot{state: rec.state}
			order = append(order, ns)
			fresh = append(fresh, ns)
			e.emitWidened(widened, sl.state, rec.state)
		}
		p.publish(fresh, len(order)-(i+1))
	}
	if breakAt >= 0 {
		p.drain(order[breakAt+1:])
	}
	if retErr != nil {
		return nil, retErr
	}
	return &Result{Races: races, ARG: arg, NumStates: numStates}, nil
}
