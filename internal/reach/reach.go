package reach

import (
	"context"
	"fmt"
	"sync"

	"circ/internal/acfa"
	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/journal"
	"circ/internal/pred"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

// Sched selects the exploration scheduler. Both schedulers produce
// identical verdicts, race lists, ARGs, and journals at any parallelism;
// they differ only in how expansion work is distributed across workers.
type Sched int

const (
	// SchedSteal (the default) runs the deterministic work-stealing pool:
	// a sequential merger walks states in discovery order while workers
	// race ahead expanding outstanding states from per-worker deques. No
	// level barrier — workers stay busy as long as any work is
	// outstanding. See steal.go for the determinism argument.
	SchedSteal Sched = iota
	// SchedLevel runs the original level-synchronous BFS: each frontier
	// level is expanded by a worker pool, then merged sequentially before
	// the next level starts. Kept for comparison (-sched level).
	SchedLevel
)

func (s Sched) String() string {
	if s == SchedLevel {
		return "level"
	}
	return "steal"
}

// Options configures ReachAndBuild.
type Options struct {
	// K is the counter parameter: counts above K abstract to Omega.
	K int
	// ExactSeed seeds the ACFA entry location with exactly K threads
	// instead of Omega (the omega-CIRC ReachAndBuild_k variant).
	ExactSeed bool
	// MaxStates bounds exploration; 0 means the default (200000).
	MaxStates int
	// MaxRaces caps how many distinct race traces are collected; 0 means
	// the default (64).
	MaxRaces int
	// Parallelism is the number of workers expanding frontier states
	// concurrently; 0 or 1 runs sequentially. Results are identical at any
	// parallelism: successors are computed in parallel but merged in
	// deterministic BFS order. Parallelism > 1 requires the abstractor's
	// solver to be safe for concurrent use (smt.CachedChecker).
	Parallelism int
	// Sched selects the scheduler; the zero value is SchedSteal.
	Sched Sched
	// Metrics, when non-nil, receives exploration counters (states,
	// levels, frontier high-water mark, post-cache effectiveness, races,
	// steals, worker idle time). Telemetry never affects the verdict,
	// only observes it.
	Metrics *telemetry.Registry
}

func (o Options) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return 200000
}

func (o Options) maxRaces() int {
	if o.MaxRaces > 0 {
		return o.MaxRaces
	}
	return 64
}

func (o Options) parallelism() int {
	if o.Parallelism > 1 {
		return o.Parallelism
	}
	return 1
}

// Result is the outcome of ReachAndBuild.
type Result struct {
	// Races holds the abstract counterexamples for every reachable race
	// state (shortest first, capped at MaxRaces). Exploring all of them
	// lets the refiner fall back to alternative interleavings when the
	// first trace is spurious for reasons the abstraction cannot express.
	Races []*Trace
	// ARG is the abstract reachability graph built during exploration.
	ARG *ARG
	// NumStates is the number of distinct abstract states explored.
	NumStates int
}

// Race returns the first (shortest) race trace, or nil.
func (r *Result) Race() *Trace {
	if len(r.Races) == 0 {
		return nil
	}
	return r.Races[0]
}

type parentInfo struct {
	parentKey string
	op        Op
	state     *State
}

// ReachAndBuild explores the abstract multithreaded program ((C,P),(A,k)),
// checking for races on raceVar, and builds the ARG. abs carries the
// predicate set P and the SMT solver. The context cancels long runs
// between frontier levels.
func ReachAndBuild(ctx context.Context, C *cfa.CFA, A *acfa.ACFA, abs *pred.Abstractor, raceVar string, opts Options) (*Result, error) {
	e := &explorer{C: C, A: A, abs: abs, raceVar: raceVar, opts: opts}
	for i := range e.posts.shards {
		e.posts.shards[i].m = make(map[postKey]*pred.Cube)
	}
	// Instrument handles are fetched once; with a nil registry they are nil
	// and every update on the hot path degrades to a nil check.
	if reg := opts.Metrics; reg != nil {
		e.cStates = reg.Counter("reach.states")
		e.cLevels = reg.Counter("reach.levels")
		e.cRaces = reg.Counter("reach.races")
		e.cPostHits = reg.Counter("reach.post.cache.hits")
		e.cPostMisses = reg.Counter("reach.post.cache.misses")
		e.cSteals = reg.Counter("reach.steal.count")
		e.gFrontier = reg.Gauge("reach.frontier.max")
		// Exported to Prometheus as circ_reach_worker_idle_seconds (the
		// exporter appends the unit suffix to histogram families).
		e.hIdle = reg.Histogram("reach.worker.idle")
	}
	e.j = journal.FromContext(ctx)
	e.tl = telemetry.TimelineFromContext(ctx)
	ctx, sp := telemetry.StartSpan(ctx, "reach")
	res, err := e.run(ctx)
	if res != nil {
		sp.Annotate("states", res.NumStates)
		sp.Annotate("races", len(res.Races))
	}
	sp.End()
	return res, err
}

// postShardCount shards the abstract-post cache; frontier workers hit it
// on every expansion, so it is the engine's hottest shared structure after
// the SMT cache.
const postShardCount = 32

// postKey identifies an abstract-post computation. Posts are a pure
// function of the source cube's canonical formula (its interned ID) and
// the edge being taken, so the key is a small comparable struct — no
// string is built on the cache path, and states whose cubes differ only
// in spelling share entries. Main edges are identified by (source
// location, edge index); env moves by (ACFA location, edge index, target
// cube index) — the main-thread location is irrelevant to an env post,
// which widens sharing further.
type postKey struct {
	fid     expr.ID
	kind    byte // 'm' main edge, 'e' env move
	a, b, c int32
}

func mainPostKey(fid expr.ID, loc cfa.Loc, ei int) postKey {
	return postKey{fid: fid, kind: 'm', a: int32(loc), b: int32(ei)}
}

func envPostKey(fid expr.ID, n acfa.Loc, ai, ti int) postKey {
	return postKey{fid: fid, kind: 'e', a: int32(n), b: int32(ai), c: int32(ti)}
}

// shard mixes the key fields into a shard index with one multiply-fold.
func (k postKey) shard() uint32 {
	h := uint64(k.fid) ^ uint64(k.kind)<<56 ^
		uint64(uint32(k.a))<<8 ^ uint64(uint32(k.b))<<24 ^ uint64(uint32(k.c))<<40
	h *= 0x9E3779B97F4A7C15
	return uint32(h>>32) % postShardCount
}

type postShard struct {
	mu sync.RWMutex
	m  map[postKey]*pred.Cube // nil values record bottom
}

// postCache memoises abstract posts behind sharded RW mutexes: states
// sharing a cube formula but differing in counters or spelling would
// otherwise recompute identical SMT-heavy posts, and concurrent frontier
// workers share each other's results.
type postCache struct {
	shards [postShardCount]postShard
}

func (p *postCache) get(key postKey, compute func() *pred.Cube) (*pred.Cube, bool) {
	sh := &p.shards[key.shard()]
	sh.mu.RLock()
	c, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		return c, true
	}
	// Compute outside the lock; a concurrent duplicate computes the same
	// deterministic cube, so last-write-wins is harmless.
	c = compute()
	sh.mu.Lock()
	sh.m[key] = c
	sh.mu.Unlock()
	return c, false
}

type explorer struct {
	C       *cfa.CFA
	A       *acfa.ACFA
	abs     *pred.Abstractor
	raceVar string
	opts    Options

	posts postCache

	// Telemetry handles, nil when no registry is configured (each update
	// is then a single nil check — see BenchmarkReachTelemetry).
	cStates, cLevels, cRaces *telemetry.Counter
	cPostHits, cPostMisses   *telemetry.Counter
	cSteals                  *telemetry.Counter
	gFrontier                *telemetry.Gauge
	hIdle                    *telemetry.Histogram

	// tl, when a flight-deck timeline rides in on the context, receives
	// per-worker busy/idle/steal segments from the steal scheduler. Like
	// the journal it is carried alongside the verdict path: segments are
	// wall-clock observations and never feed back into exploration.
	tl *telemetry.Timeline

	// j records counter-widening events; emission happens only in the
	// sequential merge phase, so the journal stays deterministic at any
	// parallelism.
	j *journal.Stream
}

func (e *explorer) cachedPost(key postKey, compute func() *pred.Cube) *pred.Cube {
	c, hit := e.posts.get(key, compute)
	if hit {
		e.cPostHits.Inc()
	} else {
		e.cPostMisses.Inc()
	}
	return c
}

// run dispatches to the configured scheduler. Both produce identical
// results; see the Sched constants.
func (e *explorer) run(ctx context.Context) (*Result, error) {
	if e.opts.Sched == SchedLevel {
		return e.runLevel(ctx)
	}
	return e.runSteal(ctx)
}

// seed builds the ARG and the initial state shared by both schedulers.
func (e *explorer) seed() (*ARG, *State) {
	arg := NewARG(e.C, e.abs.Set)
	allVars := append(append([]string(nil), e.C.Globals...), e.C.Locals...)
	cube0 := e.abs.InitialCube(allVars)
	ctx0 := make(Ctx, e.A.NumLocs())
	if e.opts.ExactSeed {
		ctx0[e.A.Entry] = e.opts.K
	} else {
		ctx0[e.A.Entry] = Omega
	}
	init := &State{TS: ThreadState{Loc: e.C.Entry, Cube: cube0}, Ctx: ctx0}
	arg.SetEntry(init.TS)
	return arg, init
}

// emitWidened journals context locations whose counter just saturated to
// omega on the parent→child transition, once per run. Called only from
// sequential merge phases, so emission order is deterministic.
func (e *explorer) emitWidened(widened map[acfa.Loc]bool, parent, child *State) {
	if widened == nil {
		return
	}
	// A location whose counter just saturated (the parent's was finite)
	// crossed k → omega on this transition. The omega-seeded entry never
	// trips this: its parent value is already Omega.
	for n := range child.Ctx {
		l := acfa.Loc(n)
		if child.Ctx[l] == Omega && parent.Ctx[l] != Omega && !widened[l] {
			widened[l] = true
			e.j.Emit(journal.Event{
				Type: journal.EvCounterWidened,
				Loc:  n, K: e.opts.K,
			})
		}
	}
}

// runLevel is a level-synchronous BFS. Each level's states are expanded
// by a worker pool (the expansion is pure: abstract posts and SMT
// queries, no shared mutable state beyond the concurrent caches); the
// results are then merged sequentially in frontier order, which
// reproduces the exact dequeue order, race list, ARG, and budget
// accounting of a sequential FIFO worklist — verdicts are bit-identical
// at any parallelism.
func (e *explorer) runLevel(ctx context.Context) (*Result, error) {
	arg, init := e.seed()

	seen := make(map[string]*parentInfo)
	seen[init.Key()] = &parentInfo{state: init}
	frontier := []*State{init}
	numStates := 0
	var races []*Trace
	// widened tracks which context locations have already been journalled
	// as saturating their counter to omega (reported once per run).
	var widened map[acfa.Loc]bool
	if e.j.Enabled() {
		widened = make(map[acfa.Loc]bool)
	}

levels:
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e.cLevels.Inc()
		e.gFrontier.Max(int64(len(frontier)))
		recs := e.expandLevel(frontier)

		var next []*State
		for i, s := range frontier {
			numStates++
			e.cStates.Inc()
			if numStates > e.opts.maxStates() {
				return nil, fmt.Errorf("reach: state budget exceeded (%d states)", e.opts.maxStates())
			}
			if e.isRace(s) {
				e.cRaces.Inc()
				races = append(races, e.buildTrace(seen, s))
				if len(races) >= e.opts.maxRaces() {
					// Enough counterexamples for this refinement round; the
					// ARG is partial but unused on the error path.
					break levels
				}
			}
			dedup := make(map[string]bool)
			for _, rec := range recs[i] {
				// ARG bookkeeping happens here, in deterministic order, not
				// in the parallel expansion phase.
				if rec.op.IsEnv() {
					arg.ConnectEnv(s.TS, rec.state.TS)
				} else {
					arg.ConnectMain(s.TS, rec.op.MainEdge, rec.state.TS)
				}
				k := rec.state.Key()
				if dedup[k] {
					continue
				}
				dedup[k] = true
				if _, ok := seen[k]; ok {
					continue
				}
				seen[k] = &parentInfo{parentKey: s.Key(), op: rec.op, state: rec.state}
				next = append(next, rec.state)
				e.emitWidened(widened, s, rec.state)
			}
		}
		frontier = next
	}
	return &Result{Races: races, ARG: arg, NumStates: numStates}, nil
}

// minParallelFrontier is the frontier size below which SchedLevel
// expansion runs sequentially even when a worker pool is configured.
// Small levels — common in the narrow early and late phases of a run,
// and throughout programs whose frontier never widens — cost more in
// goroutine spawn and channel handoff than their (mostly post-cache-hit)
// expansions save; this cutover is what fixed the table1/surge parallel
// regression. It keys on frontier length because that IS the outstanding
// work of a level-synchronous round; the work-stealing scheduler has no
// levels and uses the (smaller) outstanding-work cutover
// minStealOutstanding in steal.go instead.
const minParallelFrontier = 8

// expandLevel computes the successor records of every frontier state,
// fanning the states out over the configured worker pool once the level
// is large enough to amortise the handoff.
func (e *explorer) expandLevel(frontier []*State) [][]succRecord {
	recs := make([][]succRecord, len(frontier))
	workers := e.opts.parallelism()
	if workers > len(frontier) {
		workers = len(frontier)
	}
	if workers <= 1 || len(frontier) < minParallelFrontier {
		for i, s := range frontier {
			recs[i] = e.successors(s)
		}
		return recs
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				recs[i] = e.successors(frontier[i])
			}
		}()
	}
	for i := range frontier {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return recs
}

// atomicOccupancy classifies the scheduling state: which ops are enabled.
func (e *explorer) atomicOccupancy(s *State) (mainEnabled bool, envLocs []acfa.Loc) {
	mainAtomic := e.C.IsAtomic(s.TS.Loc)
	var atomicEnv []acfa.Loc
	for n := 0; n < e.A.NumLocs(); n++ {
		if e.A.IsAtomic(acfa.Loc(n)) && s.Ctx.Occupied(acfa.Loc(n)) {
			atomicEnv = append(atomicEnv, acfa.Loc(n))
		}
	}
	total := len(atomicEnv)
	if mainAtomic {
		total++
	}
	switch {
	case total == 0:
		// Everything runs.
		for n := 0; n < e.A.NumLocs(); n++ {
			if s.Ctx.Occupied(acfa.Loc(n)) {
				envLocs = append(envLocs, acfa.Loc(n))
			}
		}
		return true, envLocs
	case total == 1 && mainAtomic:
		return true, nil
	case total == 1:
		return false, atomicEnv
	default:
		// Multiple atomic occupants: nothing is enabled (cannot arise when
		// the initial location is non-atomic; kept for soundness).
		return false, nil
	}
}

// succRecord is one computed successor, carrying what the merge phase
// needs to record the ARG transition (op) and enqueue the state.
type succRecord struct {
	state *State
	op    Op
}

// successors expands a state. It is pure with respect to the explorer —
// safe to call from concurrent workers — touching only the concurrent
// post cache and the (concurrency-safe) solver; ARG recording and
// deduplication happen later in the sequential merge.
func (e *explorer) successors(s *State) []succRecord {
	var out []succRecord
	add := func(st *State, op Op) {
		out = append(out, succRecord{state: st, op: op})
	}

	mainEnabled, envLocs := e.atomicOccupancy(s)

	// Note on the paper's Lambda-G conjunct: the abstract post in the
	// paper additionally conjoins the labels of all occupied context
	// locations. Taken literally this is unsound in combination with the
	// omega-seeded entry location: the entry label would become a
	// permanent pseudo-invariant pruning the main thread's own writes (a
	// non-moving context thread's label is not an invariant — other
	// threads may break it, leaving that thread stuck but the state
	// reachable). We therefore constrain only by the moving thread's
	// target label (part of the ACFA transition semantics), which the
	// worked example's proof actually relies on.
	fid := s.TS.Cube.FormulaID()
	if mainEnabled {
		for ei, edge := range e.C.OutEdges(s.TS.Loc) {
			edge := edge
			next := e.cachedPost(mainPostKey(fid, s.TS.Loc, ei), func() *pred.Cube {
				switch edge.Op.Kind {
				case cfa.OpAssign:
					return e.abs.PostAssign(s.TS.Cube, edge.Op.LHS, edge.Op.RHS, expr.TrueExpr)
				case cfa.OpAssume:
					return e.abs.PostAssume(s.TS.Cube, edge.Op.Pred, expr.TrueExpr)
				case cfa.OpHavoc:
					return e.abs.PostHavoc(s.TS.Cube, []string{edge.Op.LHS}, expr.TrueExpr, expr.TrueExpr)
				}
				return nil
			})
			if next == nil {
				continue
			}
			ts2 := ThreadState{Loc: edge.Dst, Cube: next}
			add(&State{TS: ts2, Ctx: s.Ctx}, Op{MainEdge: edge})
		}
	}

	for _, n := range envLocs {
		for ai, aedge := range e.A.OutEdges(n) {
			aedge := aedge
			ctx2 := s.Ctx.Dec(n).Inc(aedge.Dst, e.opts.K)
			targets := e.A.Label(aedge.Dst)
			for ti, tc := range targets.Cubes() {
				tc := tc
				next := e.cachedPost(envPostKey(fid, n, ai, ti), func() *pred.Cube {
					return e.abs.PostHavoc(s.TS.Cube, aedge.Havoc, tc.Formula(), expr.TrueExpr)
				})
				if next == nil {
					continue
				}
				ts2 := ThreadState{Loc: s.TS.Loc, Cube: next}
				add(&State{TS: ts2, Ctx: ctx2}, Op{EnvEdge: aedge})
			}
		}
	}
	return out
}

func (e *explorer) buildTrace(seen map[string]*parentInfo, last *State) *Trace {
	var rev []*parentInfo
	cur := seen[last.Key()]
	for {
		rev = append(rev, cur)
		if cur.parentKey == "" {
			break
		}
		cur = seen[cur.parentKey]
	}
	t := &Trace{}
	for i := len(rev) - 1; i >= 0; i-- {
		t.States = append(t.States, rev[i].state)
		if i > 0 {
			t.Steps = append(t.Steps, rev[i-1].op)
		}
	}
	return t
}

// isRace reports whether s is a race state on e.raceVar: no occupied
// atomic location, and two distinct threads with enabled accesses of which
// at least one is a write (paper Section 4.1; abstract threads never
// read).
func (e *explorer) isRace(s *State) bool {
	if e.C.IsAtomic(s.TS.Loc) {
		return false
	}
	for n := 0; n < e.A.NumLocs(); n++ {
		if e.A.IsAtomic(acfa.Loc(n)) && s.Ctx.Occupied(acfa.Loc(n)) {
			return false
		}
	}
	x := e.raceVar

	mainWrites := e.C.WritesVarAt(s.TS.Loc, x)
	mainReads := e.mainReadEnabled(s, x)

	// Context write capability, requiring a genuinely enabled havoc edge.
	writerLocs := 0
	multiWriter := false
	for n := 0; n < e.A.NumLocs(); n++ {
		if !s.Ctx.Occupied(acfa.Loc(n)) {
			continue
		}
		if !e.envWriteEnabled(s, acfa.Loc(n), x) {
			continue
		}
		writerLocs++
		if s.Ctx.AtLeastTwo(acfa.Loc(n)) {
			multiWriter = true
		}
	}
	ctxWrites := writerLocs > 0

	// main vs context.
	if (mainWrites || mainReads) && ctxWrites {
		return true
	}
	// context vs context (write-write; abstract threads never read).
	if writerLocs >= 2 || multiWriter {
		return true
	}
	return false
}

// mainReadEnabled reports whether the main thread has an enabled operation
// reading x at its current location: an assignment mentioning x on its
// right-hand side, or an assume mentioning x whose predicate is abstractly
// satisfiable in the current cube.
func (e *explorer) mainReadEnabled(s *State, x string) bool {
	for _, edge := range e.C.OutEdges(s.TS.Loc) {
		switch edge.Op.Kind {
		case cfa.OpAssign:
			if expr.Mentions(edge.Op.RHS, x) {
				return true
			}
		case cfa.OpAssume:
			// An assume reading x is enabled unless the cube refutes its
			// predicate (Unknown counts as enabled: sound over-approximation).
			// cube ⊭ ¬p  ⇔  sat(cube ∧ p) is not unsat, queried on interned
			// IDs so no formula tree is rebuilt.
			if expr.Mentions(edge.Op.Pred, x) &&
				e.abs.Chk.SatID(expr.IDConj(s.TS.Cube.FormulaID(), expr.Intern(edge.Op.Pred))) != smt.Unsat {
				return true
			}
		}
	}
	return false
}

// envWriteEnabled reports whether some havoc edge out of n writes x and
// has a non-empty abstract post from the current state. It shares the
// explorer's post cache with successor expansion (identical computations).
func (e *explorer) envWriteEnabled(s *State, n acfa.Loc, x string) bool {
	fid := s.TS.Cube.FormulaID()
	for ai, aedge := range e.A.OutEdges(n) {
		aedge := aedge
		writes := false
		for _, v := range aedge.Havoc {
			if v == x {
				writes = true
				break
			}
		}
		if !writes {
			continue
		}
		for ti, tc := range e.A.Label(aedge.Dst).Cubes() {
			tc := tc
			if e.cachedPost(envPostKey(fid, n, ai, ti), func() *pred.Cube {
				return e.abs.PostHavoc(s.TS.Cube, aedge.Havoc, tc.Formula(), expr.TrueExpr)
			}) != nil {
				return true
			}
		}
	}
	return false
}
