package reach

import (
	"fmt"
	"sort"

	"circ/internal/acfa"
	"circ/internal/cfa"
	"circ/internal/pred"
)

// ARG is the abstract reachability graph built alongside reachability
// (paper Algorithms 2-4). Its locations group abstract thread states; the
// context-state component is dropped. Program operations become edges
// labelled with the written variables; environment moves identify source
// and target locations (ARG condition (4)), implemented with a union-find.
//
// The ARG also records the underlying program-operation transitions
// between thread states, which the refiner uses to concretise abstract
// context paths into CFA paths.
type ARG struct {
	C   *cfa.CFA
	Set *pred.Set

	parent  []int          // union-find over location ids
	region  []*pred.Region // per root: union of member cubes
	cfaLoc  []cfa.Loc      // per location: the shared CFA location
	members [][]ThreadState

	stateLoc map[string]int // thread-state key -> location id

	edges []argEdge // program-op edges (raw ids; canonicalise via Find)

	// opEdges records program transitions at thread-state granularity for
	// trace concretisation.
	opEdges map[string][]OpTransition

	entryKey string
}

type argEdge struct {
	src, dst int
	havoc    map[string]bool // written variables (possibly empty: assume)
}

// OpTransition is a program-op move between two abstract thread states.
type OpTransition struct {
	SrcKey string
	Edge   *cfa.Edge
	Dst    ThreadState
}

// NewARG returns an empty ARG for thread C over predicate set s.
func NewARG(c *cfa.CFA, s *pred.Set) *ARG {
	return &ARG{
		C:        c,
		Set:      s,
		stateLoc: make(map[string]int),
		opEdges:  make(map[string][]OpTransition),
	}
}

// Find returns the canonical location id for id.
func (g *ARG) Find(id int) int {
	for g.parent[id] != id {
		g.parent[id] = g.parent[g.parent[id]]
		id = g.parent[id]
	}
	return id
}

// FindState returns the canonical location id holding thread state key, or
// -1.
func (g *ARG) FindState(key string) int {
	id, ok := g.stateLoc[key]
	if !ok {
		return -1
	}
	return g.Find(id)
}

// EntryLoc returns the location of the initial thread state.
func (g *ARG) EntryLoc() int { return g.FindState(g.entryKey) }

// EntryKey returns the initial thread state's key.
func (g *ARG) EntryKey() string { return g.entryKey }

// NumRawLocs returns the number of allocated (pre-union) location ids.
func (g *ARG) NumRawLocs() int { return len(g.parent) }

// register ensures thread state r has a location (paper Algorithm 3,
// Find). It returns the canonical location id.
func (g *ARG) register(r ThreadState) int {
	key := r.Key()
	if id, ok := g.stateLoc[key]; ok {
		return g.Find(id)
	}
	id := len(g.parent)
	g.parent = append(g.parent, id)
	reg := pred.NewRegion(g.Set)
	reg.Add(r.Cube)
	g.region = append(g.region, reg)
	g.cfaLoc = append(g.cfaLoc, r.Loc)
	g.members = append(g.members, []ThreadState{r})
	g.stateLoc[key] = id
	return id
}

// SetEntry records the initial thread state.
func (g *ARG) SetEntry(r ThreadState) {
	g.entryKey = r.Key()
	g.register(r)
}

// ConnectMain records a program-op transition r --edge--> r2 (paper
// Algorithm 2).
func (g *ARG) ConnectMain(r ThreadState, edge *cfa.Edge, r2 ThreadState) {
	src := g.register(r)
	dst := g.register(r2)
	havoc := map[string]bool{}
	if w := edge.Op.WritesVar(); w != "" {
		havoc[w] = true
	}
	g.edges = append(g.edges, argEdge{src: src, dst: dst, havoc: havoc})
	g.opEdges[r.Key()] = append(g.opEdges[r.Key()], OpTransition{SrcKey: r.Key(), Edge: edge, Dst: r2})
}

// ConnectEnv records an environment move from r to r2: both thread states
// are identified into a single location (ARG condition (4), the paper's
// Union for context edges).
func (g *ARG) ConnectEnv(r ThreadState, r2 ThreadState) {
	a := g.register(r)
	b := g.register(r2)
	g.union(a, b)
}

// union merges two locations (paper Algorithm 4).
func (g *ARG) union(a, b int) {
	ra, rb := g.Find(a), g.Find(b)
	if ra == rb {
		return
	}
	if g.cfaLoc[ra] != g.cfaLoc[rb] {
		panic(fmt.Sprintf("reach: union across CFA locations %d and %d", g.cfaLoc[ra], g.cfaLoc[rb]))
	}
	g.parent[rb] = ra
	g.region[ra].AddRegion(g.region[rb])
	g.members[ra] = append(g.members[ra], g.members[rb]...)
	g.region[rb] = nil
	g.members[rb] = nil
}

// OpTransitionsFrom returns the recorded program transitions out of the
// thread state with the given key.
func (g *ARG) OpTransitionsFrom(key string) []OpTransition { return g.opEdges[key] }

// Roots returns the canonical location ids in ascending order.
func (g *ARG) Roots() []int {
	var out []int
	for id := range g.parent {
		if g.Find(id) == id {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Region returns the label region of canonical location id.
func (g *ARG) Region(id int) *pred.Region { return g.region[g.Find(id)] }

// CFALoc returns the CFA location shared by the states of location id.
func (g *ARG) CFALoc(id int) cfa.Loc { return g.cfaLoc[g.Find(id)] }

// Members returns the thread states grouped at canonical location id.
func (g *ARG) Members(id int) []ThreadState { return g.members[g.Find(id)] }

// ToACFA converts the ARG into an ACFA whose labels are the location
// regions projected to global variables and whose edge havoc sets are
// intersected with the globals (local writes become tau edges). It also
// returns the map from canonical ARG location ids to ACFA locations.
func (g *ARG) ToACFA() (*acfa.ACFA, map[int]acfa.Loc) {
	a := &acfa.ACFA{}
	locMap := make(map[int]acfa.Loc)
	roots := g.Roots()
	for _, r := range roots {
		label := g.region[r].ProjectLocals(g.C.IsGlobal)
		locMap[r] = a.AddLoc(label, g.C.IsAtomic(g.cfaLoc[r]))
	}
	// Group edges by canonical endpoints, union havoc sets.
	type pair struct{ s, d acfa.Loc }
	grouped := make(map[pair]map[string]bool)
	for _, e := range g.edges {
		p := pair{locMap[g.Find(e.src)], locMap[g.Find(e.dst)]}
		hs, ok := grouped[p]
		if !ok {
			hs = make(map[string]bool)
			grouped[p] = hs
		}
		for v := range e.havoc {
			if g.C.IsGlobal(v) {
				hs[v] = true
			}
		}
	}
	pairs := make([]pair, 0, len(grouped))
	for p := range grouped {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].s != pairs[j].s {
			return pairs[i].s < pairs[j].s
		}
		return pairs[i].d < pairs[j].d
	})
	for _, p := range pairs {
		hs := grouped[p]
		havoc := make([]string, 0, len(hs))
		for v := range hs {
			havoc = append(havoc, v)
		}
		a.AddEdge(p.s, p.d, havoc)
	}
	if g.entryKey != "" {
		a.Entry = locMap[g.EntryLoc()]
	}
	a.Finish()
	return a, locMap
}
