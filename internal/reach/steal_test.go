package reach

import (
	"context"
	"strings"
	"testing"

	"circ/internal/acfa"
	"circ/internal/cfa"
	"circ/internal/pred"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

// stealFixture builds the CFA/ACFA/abstractor used by the scheduler
// determinism tests (the testandset-style program from
// TestReachParallelDeterminism, which explores a few hundred states and
// finds races).
func stealFixture(t *testing.T) *fixtureParts {
	t.Helper()
	c := buildCFA(t, `
global int x;
global int state;
thread T {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`)
	chk := smt.NewCachedChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	a := acfa.Empty(set)
	l1 := a.AddLoc(pred.TrueRegion(set), false)
	a.AddEdge(a.Entry, l1, []string{"x", "state"})
	a.AddEdge(l1, a.Entry, []string{"x", "state"})
	a.Finish()
	return &fixtureParts{c: c, a: a, abs: abs}
}

type fixtureParts struct {
	c   *cfa.CFA
	a   *acfa.ACFA
	abs *pred.Abstractor
}

// runFixture runs ReachAndBuild on the fixture with the given scheduler
// and parallelism.
func (f *fixtureParts) run(t *testing.T, sched Sched, par int, extra func(*Options)) *Result {
	t.Helper()
	opts := Options{K: 2, Parallelism: par, Sched: sched}
	if extra != nil {
		extra(&opts)
	}
	res, err := ReachAndBuild(context.Background(), f.c, f.a, f.abs, "x", opts)
	if err != nil {
		t.Fatalf("sched=%v par=%d: %v", sched, par, err)
	}
	return res
}

// fingerprint summarises the verdict-relevant parts of a Result.
func fingerprint(r *Result) string {
	var b strings.Builder
	for _, tr := range r.Races {
		b.WriteString(tr.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestStealMatchesLevel: both schedulers agree on states, races, and
// ARG shape at every parallelism.
func TestStealMatchesLevel(t *testing.T) {
	f := stealFixture(t)
	base := f.run(t, SchedLevel, 1, nil)
	for _, sched := range []Sched{SchedSteal, SchedLevel} {
		for _, par := range []int{1, 2, 4, 8} {
			got := f.run(t, sched, par, nil)
			if got.NumStates != base.NumStates {
				t.Fatalf("sched=%v par=%d: NumStates = %d, want %d", sched, par, got.NumStates, base.NumStates)
			}
			if fingerprint(got) != fingerprint(base) {
				t.Fatalf("sched=%v par=%d: race traces differ from level/seq baseline", sched, par)
			}
			if len(got.ARG.Roots()) != len(base.ARG.Roots()) {
				t.Fatalf("sched=%v par=%d: %d ARG roots, want %d", sched, par, len(got.ARG.Roots()), len(base.ARG.Roots()))
			}
		}
	}
}

// TestStealRaceCapDeterminism: hitting the race cap (the early-break
// path, which triggers the deterministic drain) yields the same races
// at every parallelism.
func TestStealRaceCapDeterminism(t *testing.T) {
	f := stealFixture(t)
	cap1 := f.run(t, SchedSteal, 1, func(o *Options) { o.MaxRaces = 2 })
	if len(cap1.Races) != 2 {
		t.Fatalf("race cap ignored: %d races", len(cap1.Races))
	}
	for _, par := range []int{2, 4, 8} {
		got := f.run(t, SchedSteal, par, func(o *Options) { o.MaxRaces = 2 })
		if fingerprint(got) != fingerprint(cap1) {
			t.Fatalf("par=%d: capped race traces differ from sequential", par)
		}
		if got.NumStates != cap1.NumStates {
			t.Fatalf("par=%d: NumStates = %d, want %d", par, got.NumStates, cap1.NumStates)
		}
	}
}

// TestStealBudgetExceeded: the state-budget error fires identically
// under stealing.
func TestStealBudgetExceeded(t *testing.T) {
	f := stealFixture(t)
	for _, par := range []int{1, 4} {
		_, err := ReachAndBuild(context.Background(), f.c, f.a, f.abs, "x",
			Options{K: 2, Parallelism: par, Sched: SchedSteal, MaxStates: 10})
		if err == nil || !strings.Contains(err.Error(), "state budget exceeded") {
			t.Fatalf("par=%d: err = %v, want state budget exceeded", par, err)
		}
	}
}

// TestStealCounters: parallel steal runs record scheduler telemetry
// (steals and/or idle observations are plausible but load-dependent;
// states and races must be exact).
func TestStealCounters(t *testing.T) {
	f := stealFixture(t)
	reg := telemetry.NewRegistry()
	res := f.run(t, SchedSteal, 4, func(o *Options) { o.Metrics = reg })
	snap := reg.Snapshot()
	if snap.Counters["reach.states"] != int64(res.NumStates) {
		t.Fatalf("reach.states = %d, want %d", snap.Counters["reach.states"], res.NumStates)
	}
	if snap.Counters["reach.races"] != int64(len(res.Races)) {
		t.Fatalf("reach.races = %d, want %d", snap.Counters["reach.races"], len(res.Races))
	}
	if _, ok := snap.Counters["reach.steal.count"]; !ok {
		t.Fatalf("reach.steal.count not registered; counters: %v", snap.Counters)
	}
}
