package reach

import (
	"context"
	"errors"
	"testing"

	"circ/internal/acfa"
	"circ/internal/pred"
	"circ/internal/smt"
)

// TestReachParallelDeterminism: the level-synchronous engine must produce
// the same races, state count, and ARG shape at every parallelism.
func TestReachParallelDeterminism(t *testing.T) {
	c := buildCFA(t, `
global int x;
global int state;
thread T {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`)
	chk := smt.NewCachedChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	a := acfa.Empty(set)
	l1 := a.AddLoc(pred.TrueRegion(set), false)
	a.AddEdge(a.Entry, l1, []string{"x", "state"})
	a.AddEdge(l1, a.Entry, []string{"x", "state"})
	a.Finish()

	base, err := ReachAndBuild(context.Background(), c, a, abs, "x",
		Options{K: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		got, err := ReachAndBuild(context.Background(), c, a, abs, "x",
			Options{K: 2, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if got.NumStates != base.NumStates {
			t.Fatalf("parallelism %d: NumStates = %d, want %d", par, got.NumStates, base.NumStates)
		}
		if len(got.Races) != len(base.Races) {
			t.Fatalf("parallelism %d: %d races, want %d", par, len(got.Races), len(base.Races))
		}
		for i := range got.Races {
			if got.Races[i].String() != base.Races[i].String() {
				t.Fatalf("parallelism %d: race %d differs:\n%s\nvs\n%s",
					par, i, got.Races[i], base.Races[i])
			}
		}
		if len(got.ARG.Roots()) != len(base.ARG.Roots()) {
			t.Fatalf("parallelism %d: %d ARG roots, want %d",
				par, len(got.ARG.Roots()), len(base.ARG.Roots()))
		}
	}
}

// TestReachCancellation: a cancelled context stops exploration between
// levels with the context's error.
func TestReachCancellation(t *testing.T) {
	c := buildCFA(t, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	a := acfa.Empty(set)
	l1 := a.AddLoc(pred.TrueRegion(set), false)
	a.AddEdge(a.Entry, l1, []string{"x"})
	a.Finish()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ReachAndBuild(ctx, c, a, abs, "x", Options{K: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
