package reach

import (
	"context"
	"testing"

	"circ/internal/acfa"
	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/lang"
	"circ/internal/pred"
	"circ/internal/smt"
)

func buildCFA(t testing.TB, src string) *cfa.CFA {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

func TestCtxCounters(t *testing.T) {
	c := Ctx{0, 1, Omega}
	if c.Occupied(0) || !c.Occupied(1) || !c.Occupied(2) {
		t.Fatalf("Occupied broken")
	}
	if c.AtLeastTwo(1) || !c.AtLeastTwo(2) {
		t.Fatalf("AtLeastTwo broken")
	}
	// Inc saturates above k.
	d := c.Inc(1, 1)
	if d[1] != Omega {
		t.Fatalf("Inc(1,k=1) = %v", d)
	}
	d = c.Inc(0, 2)
	if d[0] != 1 {
		t.Fatalf("Inc = %v", d)
	}
	// Dec of omega stays omega; of 1 goes to 0.
	d = c.Dec(2)
	if d[2] != Omega {
		t.Fatalf("Dec(omega) = %v", d)
	}
	d = c.Dec(1)
	if d[1] != 0 {
		t.Fatalf("Dec(1) = %v", d)
	}
	if c.Key() != "0,1,w" {
		t.Fatalf("Key = %q", c.Key())
	}
	// Clone must not alias.
	e := c.CloneCtx()
	e[0] = 5
	if c[0] != 0 {
		t.Fatalf("CloneCtx aliased")
	}
}

func TestReachEmptyContextNoRace(t *testing.T) {
	// A single thread can never race with a do-nothing context.
	c := buildCFA(t, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	res, err := ReachAndBuild(context.Background(), c, acfa.Empty(set), abs, "x", Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 0 {
		t.Fatalf("race against empty context: %v", res.Races[0])
	}
	if res.NumStates == 0 || len(res.ARG.Roots()) == 0 {
		t.Fatalf("no exploration happened")
	}
}

func TestReachFindsRaceUnderWritingContext(t *testing.T) {
	c := buildCFA(t, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	// Context that can write x from its entry.
	a := acfa.Empty(set)
	l1 := a.AddLoc(pred.TrueRegion(set), false)
	a.AddEdge(a.Entry, l1, []string{"x"})
	a.AddEdge(l1, a.Entry, nil)
	a.Finish()
	res, err := ReachAndBuild(context.Background(), c, a, abs, "x", Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) == 0 {
		t.Fatalf("expected a race against an x-writing context")
	}
	tr := res.Races[0]
	if len(tr.States) != len(tr.Steps)+1 {
		t.Fatalf("malformed trace: %d states, %d steps", len(tr.States), len(tr.Steps))
	}
}

func TestOmegaEntryWriterRacesWithItself(t *testing.T) {
	// Omega threads parked at an x-writing location race pairwise even if
	// the main thread never touches x.
	c := buildCFA(t, `
global int x;
thread T {
  while (1) { atomic { x = x + 1; } }
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	a := acfa.Empty(set)
	l1 := a.AddLoc(pred.TrueRegion(set), false)
	a.AddEdge(a.Entry, l1, []string{"x"})
	a.AddEdge(l1, a.Entry, nil)
	a.Finish()
	res, err := ReachAndBuild(context.Background(), c, a, abs, "x", Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) == 0 {
		t.Fatalf("context-context race among omega entry threads not detected")
	}
}

func TestAtomicBlocksContextMoves(t *testing.T) {
	// While the main thread sits at an atomic location, no environment
	// move may fire (atomic scheduling).
	c := buildCFA(t, `
global int x;
thread T {
  while (1) { atomic { x = x + 1; } }
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	a := acfa.Empty(set)
	l1 := a.AddLoc(pred.TrueRegion(set), false)
	a.AddEdge(a.Entry, l1, []string{"x"})
	a.Finish()
	e := &explorer{C: c, A: a, abs: abs, raceVar: "x", opts: Options{K: 1}}
	for i := range e.posts.shards {
		e.posts.shards[i].m = make(map[postKey]*pred.Cube)
	}
	// Find an atomic main location.
	var atomicLoc cfa.Loc = -1
	for l := 0; l < c.NumLocs(); l++ {
		if c.IsAtomic(cfa.Loc(l)) {
			atomicLoc = cfa.Loc(l)
			break
		}
	}
	if atomicLoc < 0 {
		t.Fatalf("no atomic location in CFA")
	}
	ctx := make(Ctx, a.NumLocs())
	ctx[a.Entry] = Omega
	st := &State{TS: ThreadState{Loc: atomicLoc, Cube: pred.TopCube(set)}, Ctx: ctx}
	for _, s := range e.successors(st) {
		if s.op.IsEnv() {
			t.Fatalf("environment move fired while main is atomic: %v", s.op)
		}
	}
	// And a race must not be reported at an atomic state.
	if e.isRace(st) {
		t.Fatalf("race reported while main is atomic")
	}
}

func TestContextContextRace(t *testing.T) {
	// Main never accesses x, but two context threads can both reach a
	// writing location: context-context write-write race.
	c := buildCFA(t, `
global int x;
global int y;
thread T {
  while (1) { y = y + 1; }
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	a := acfa.Empty(set)
	l1 := a.AddLoc(pred.TrueRegion(set), false)
	a.AddEdge(a.Entry, l1, nil)
	a.AddEdge(l1, a.Entry, []string{"x"})
	a.Finish()
	res, err := ReachAndBuild(context.Background(), c, a, abs, "x", Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) == 0 {
		t.Fatalf("context-context race not detected")
	}
}

func TestExactSeedLimitsThreads(t *testing.T) {
	// With ExactSeed and K=0 there are no context threads at all, so no
	// env moves can happen.
	c := buildCFA(t, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	a := acfa.Empty(set)
	l1 := a.AddLoc(pred.TrueRegion(set), false)
	a.AddEdge(a.Entry, l1, []string{"x"})
	a.Finish()
	res, err := ReachAndBuild(context.Background(), c, a, abs, "x", Options{K: 0, ExactSeed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 0 {
		t.Fatalf("race with zero context threads")
	}
}

func TestARGEnvIdentification(t *testing.T) {
	// Environment moves register successor thread states at the same ARG
	// location (condition (4) of the ARG definition).
	c := buildCFA(t, `
global int g;
thread T {
  while (1) { g = g + 1; }
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet(expr.Eq(expr.V("g"), expr.Num(0)))
	abs := pred.NewAbstractor(chk, set)
	a := acfa.Empty(set)
	l1 := a.AddLoc(pred.TrueRegion(set), false)
	a.AddEdge(a.Entry, l1, []string{"g"})
	a.AddEdge(l1, a.Entry, []string{"g"})
	a.Finish()
	res, err := ReachAndBuild(context.Background(), c, a, abs, "g", Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := res.ARG
	// For every location, all member thread states share one CFA loc.
	for _, root := range g.Roots() {
		locs := map[cfa.Loc]bool{}
		for _, m := range g.Members(root) {
			locs[m.Loc] = true
		}
		if len(locs) != 1 {
			t.Fatalf("ARG location %d mixes CFA locations %v", root, locs)
		}
	}
}

func TestARGToACFAProjectsLocals(t *testing.T) {
	c := buildCFA(t, `
global int g;
thread T {
  local int l;
  l = g;
  g = l + 1;
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet(
		expr.Eq(expr.V("l"), expr.V("g")),
		expr.Eq(expr.V("g"), expr.Num(0)),
	)
	abs := pred.NewAbstractor(chk, set)
	res, err := ReachAndBuild(context.Background(), c, acfa.Empty(set), abs, "g", Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, locMap := res.ARG.ToACFA()
	if len(locMap) != len(res.ARG.Roots()) {
		t.Fatalf("locMap incomplete")
	}
	// No ACFA label may mention the local l.
	for l := 0; l < a.NumLocs(); l++ {
		f := a.Label(acfa.Loc(l)).Formula()
		if expr.Mentions(f, "l") {
			t.Fatalf("label %v mentions local", f)
		}
	}
	// Havoc sets contain only globals.
	for _, e := range a.Edges {
		for _, v := range e.Havoc {
			if v != "g" {
				t.Fatalf("non-global havoc %q", v)
			}
		}
	}
}

func TestStateBudget(t *testing.T) {
	c := buildCFA(t, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	_, err := ReachAndBuild(context.Background(), c, acfa.Empty(set), abs, "x", Options{K: 1, MaxStates: 1})
	if err == nil {
		t.Fatalf("expected budget error")
	}
}

func TestTraceStringAndOpString(t *testing.T) {
	c := buildCFA(t, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	a := acfa.Empty(set)
	l1 := a.AddLoc(pred.TrueRegion(set), false)
	a.AddEdge(a.Entry, l1, []string{"x"})
	a.Finish()
	res, err := ReachAndBuild(context.Background(), c, a, abs, "x", Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Race() == nil {
		t.Fatalf("expected race")
	}
	if res.Race().String() == "" {
		t.Fatalf("empty trace render")
	}
	for _, s := range res.Race().Steps {
		if s.String() == "" {
			t.Fatalf("empty op render")
		}
	}
}
