package reach

import (
	"context"
	"testing"

	"circ/internal/acfa"
	"circ/internal/pred"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

// benchReach runs one full reachability build of the test-and-set model
// under a havocking context, with or without a metrics registry attached.
// The disabled case is the nil-sink overhead the ISSUE bounds: every
// instrument handle is nil, so each instrumentation point must cost only a
// nil check.
func benchReach(b *testing.B, reg *telemetry.Registry) {
	c := buildCFA(b, `
global int x;
global int state;
thread T {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`)
	chk := smt.NewCachedChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	a := acfa.Empty(set)
	l1 := a.AddLoc(pred.TrueRegion(set), false)
	a.AddEdge(a.Entry, l1, []string{"x", "state"})
	a.AddEdge(l1, a.Entry, []string{"x", "state"})
	a.Finish()
	ctx := context.Background()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReachAndBuild(ctx, c, a, abs, "x",
			Options{K: 2, Parallelism: 1, Metrics: reg}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReachTelemetryOff measures the hot path with telemetry fully
// disabled (nil registry, no tracer in ctx).
func BenchmarkReachTelemetryOff(b *testing.B) { benchReach(b, nil) }

// BenchmarkReachTelemetryOn measures the same run with a live registry, for
// comparison against the Off case (the ISSUE's acceptance bound is <3%
// overhead for the Off case relative to unmodified code; compare with
// benchstat across commits).
func BenchmarkReachTelemetryOn(b *testing.B) { benchReach(b, telemetry.NewRegistry()) }
