// Package reach implements ReachAndBuild (paper Algorithm 1): worklist
// reachability of the abstract multithreaded program ((C,P),(A,k)) — the
// main thread under predicate abstraction composed with counted abstract
// context threads — together with race detection, abstract counterexample
// extraction, and abstract reachability graph (ARG) construction
// (Algorithms 2-4).
package reach

import (
	"fmt"
	"strconv"
	"strings"

	"circ/internal/acfa"
	"circ/internal/cfa"
	"circ/internal/pred"
)

// Omega is the counter value abstracting "more than k" threads.
const Omega = -1

// Ctx is an abstract context state: a counter per ACFA location, each in
// {0..k, Omega}.
type Ctx []int

// CloneCtx copies the counter map.
func (c Ctx) CloneCtx() Ctx { return append(Ctx(nil), c...) }

// Key returns a canonical key.
func (c Ctx) Key() string {
	buf := make([]byte, 0, 2*len(c))
	for i, v := range c {
		if i > 0 {
			buf = append(buf, ',')
		}
		if v == Omega {
			buf = append(buf, 'w')
		} else {
			buf = strconv.AppendInt(buf, int64(v), 10)
		}
	}
	return string(buf)
}

func (c Ctx) String() string { return "[" + c.Key() + "]" }

// Occupied reports whether location n holds at least one thread.
func (c Ctx) Occupied(n acfa.Loc) bool { return c[n] != 0 }

// AtLeastTwo reports whether location n holds two or more threads.
func (c Ctx) AtLeastTwo(n acfa.Loc) bool { return c[n] == Omega || c[n] >= 2 }

// Inc returns the counter map with location n incremented under the
// k-counter abstraction (values above k saturate to Omega).
func (c Ctx) Inc(n acfa.Loc, k int) Ctx {
	out := c.CloneCtx()
	switch {
	case out[n] == Omega:
	case out[n]+1 > k:
		out[n] = Omega
	default:
		out[n]++
	}
	return out
}

// Dec returns the counter map with location n decremented; Omega-1 = Omega
// (an arbitrary number of threads remain).
func (c Ctx) Dec(n acfa.Loc) Ctx {
	out := c.CloneCtx()
	if out[n] != Omega && out[n] > 0 {
		out[n]--
	}
	return out
}

// ThreadState is an abstract state of the main thread: control location
// plus a predicate cube (locals refer to the main thread's copies).
type ThreadState struct {
	Loc  cfa.Loc
	Cube *pred.Cube
}

// Key returns a canonical key.
func (t ThreadState) Key() string {
	return strconv.Itoa(int(t.Loc)) + "|" + t.Cube.Key()
}

func (t ThreadState) String() string {
	return fmt.Sprintf("(%d, %s)", t.Loc, t.Cube)
}

// State is an abstract program state: the main thread's state plus the
// abstract context state.
type State struct {
	TS  ThreadState
	Ctx Ctx

	key string // lazily memoised Key; safe because Key is only called
	// from the sequential merge phase (workers hand states over a
	// happens-before edge before anyone asks for a key)
}

// Key returns a canonical key, memoised on first call.
func (s *State) Key() string {
	if s.key == "" {
		s.key = s.TS.Key() + "#" + s.Ctx.Key()
	}
	return s.key
}

func (s *State) String() string {
	return fmt.Sprintf("%s %s", s.TS, s.Ctx)
}

// Op is one abstract transition: exactly one of MainEdge/EnvEdge is set.
type Op struct {
	MainEdge *cfa.Edge
	EnvEdge  *acfa.Edge
}

// IsEnv reports whether the op is a context move.
func (o Op) IsEnv() bool { return o.EnvEdge != nil }

func (o Op) String() string {
	if o.MainEdge != nil {
		return "T0: " + o.MainEdge.Op.String()
	}
	return "env: " + o.EnvEdge.String()
}

// Trace is an abstract counterexample: States[0] is initial and
// Steps[i] moves States[i] to States[i+1].
type Trace struct {
	States []*State
	Steps  []Op
}

func (t *Trace) String() string {
	var b strings.Builder
	for i, s := range t.States {
		fmt.Fprintf(&b, "%3d: %s\n", i, s)
		if i < len(t.Steps) {
			fmt.Fprintf(&b, "     %s\n", t.Steps[i])
		}
	}
	return b.String()
}
