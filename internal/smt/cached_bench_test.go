package smt

import (
	"testing"

	"circ/internal/expr"
)

// BenchmarkCacheHit measures the hot cache-hit path: CachedChecker.Sat on
// a formula in canonical interned form. The lookup is an arena walk plus
// one shard map probe keyed by ID — no string construction; the
// acceptance bar is ≤ 1 alloc/op.
func BenchmarkCacheHit(b *testing.B) {
	c := NewCachedChecker()
	f := expr.Conj(
		expr.Le(expr.Num(0), expr.V("x")),
		expr.Lt(expr.V("x"), expr.Num(10)),
		expr.Eq(expr.V("lock"), expr.Num(1)),
	)
	canon := expr.FromID(expr.Intern(f))
	if got := c.Sat(canon); got != Sat {
		b.Fatalf("warmup verdict = %v, want sat", got)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Sat(canon) != Sat {
			b.Fatal("verdict drift on cache hit")
		}
	}
}

// BenchmarkCacheHitID is the same hit served straight from an interned
// ID, the form the analysis layers use: constant check, shard RLock, map
// probe. Zero allocations.
func BenchmarkCacheHitID(b *testing.B) {
	c := NewCachedChecker()
	id := expr.Intern(expr.Conj(
		expr.Le(expr.Num(0), expr.V("y")),
		expr.Lt(expr.V("y"), expr.Num(4)),
	))
	if got := c.SatID(id); got != Sat {
		b.Fatalf("warmup verdict = %v, want sat", got)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.SatID(id) != Sat {
			b.Fatal("verdict drift on cache hit")
		}
	}
}

// BenchmarkSessionCube measures an incremental session's cube loop on a
// warm cache — the shape of every abstract-post computation.
func BenchmarkSessionCube(b *testing.B) {
	c := NewCachedChecker()
	x := expr.V("x")
	preds := []expr.ID{
		expr.Intern(expr.Lt(x, expr.Num(0))),
		expr.Intern(expr.Eq(x, expr.Num(0))),
		expr.Intern(expr.Lt(expr.Num(5), x)),
		expr.Intern(expr.Le(expr.Num(10), x)),
	}
	phi := expr.IDConj(expr.Intern(expr.Le(expr.Num(1), x)), expr.Intern(expr.Le(x, expr.Num(3))))
	sess := c.NewSession(phi)
	for _, p := range preds {
		sess.SatConj(p)
		sess.SatConj(expr.InternNot(p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := c.NewSession(phi)
		for _, p := range preds {
			s.SatConj(p)
			s.SatConj(expr.InternNot(p))
		}
	}
}
