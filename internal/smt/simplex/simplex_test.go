package simplex

import (
	"math/big"
	"testing"
)

func rat(n int64) *big.Rat { return big.NewRat(n, 1) }

func TestTrivialFeasible(t *testing.T) {
	tb := New()
	x := tb.NewVar(true)
	if !tb.AssertLower(x, rat(3)) || !tb.AssertUpper(x, rat(5)) {
		t.Fatalf("bounds rejected")
	}
	if got := tb.Check(0); got != Feasible {
		t.Fatalf("got %v, want feasible", got)
	}
	v := tb.Value(x)
	if v.Cmp(rat(3)) < 0 || v.Cmp(rat(5)) > 0 {
		t.Fatalf("value %v out of [3,5]", v)
	}
}

func TestContradictoryBounds(t *testing.T) {
	tb := New()
	x := tb.NewVar(true)
	if !tb.AssertLower(x, rat(5)) {
		t.Fatalf("lower rejected")
	}
	if tb.AssertUpper(x, rat(3)) {
		t.Fatalf("contradictory upper accepted")
	}
}

func TestSlackSystemFeasible(t *testing.T) {
	// x + y <= 10, x - y <= 2, x >= 3, y >= 1.
	tb := New()
	x := tb.NewVar(true)
	y := tb.NewVar(true)
	s1 := tb.NewSlack(map[int]*big.Rat{x: rat(1), y: rat(1)}, true)
	s2 := tb.NewSlack(map[int]*big.Rat{x: rat(1), y: rat(-1)}, true)
	tb.AssertUpper(s1, rat(10))
	tb.AssertUpper(s2, rat(2))
	tb.AssertLower(x, rat(3))
	tb.AssertLower(y, rat(1))
	if got := tb.Check(0); got != Feasible {
		t.Fatalf("got %v, want feasible", got)
	}
	xv, yv := tb.Value(x), tb.Value(y)
	sum := new(big.Rat).Add(xv, yv)
	diff := new(big.Rat).Sub(xv, yv)
	if sum.Cmp(rat(10)) > 0 || diff.Cmp(rat(2)) > 0 || xv.Cmp(rat(3)) < 0 || yv.Cmp(rat(1)) < 0 {
		t.Fatalf("model x=%v y=%v violates constraints", xv, yv)
	}
}

func TestSlackSystemInfeasible(t *testing.T) {
	// x + y <= 4, x >= 3, y >= 3.
	tb := New()
	x := tb.NewVar(true)
	y := tb.NewVar(true)
	s := tb.NewSlack(map[int]*big.Rat{x: rat(1), y: rat(1)}, true)
	tb.AssertUpper(s, rat(4))
	tb.AssertLower(x, rat(3))
	tb.AssertLower(y, rat(3))
	if got := tb.Check(0); got != Infeasible {
		t.Fatalf("got %v, want infeasible", got)
	}
}

func TestEqualityChain(t *testing.T) {
	// x = y, y = z, x = 7 => z = 7.
	tb := New()
	x := tb.NewVar(true)
	y := tb.NewVar(true)
	z := tb.NewVar(true)
	xy := tb.NewSlack(map[int]*big.Rat{x: rat(1), y: rat(-1)}, true)
	yz := tb.NewSlack(map[int]*big.Rat{y: rat(1), z: rat(-1)}, true)
	for _, s := range []int{xy, yz} {
		tb.AssertLower(s, rat(0))
		tb.AssertUpper(s, rat(0))
	}
	tb.AssertLower(x, rat(7))
	tb.AssertUpper(x, rat(7))
	if got := tb.Check(0); got != Feasible {
		t.Fatalf("got %v, want feasible", got)
	}
	if tb.Value(z).Cmp(rat(7)) != 0 {
		t.Fatalf("z = %v, want 7", tb.Value(z))
	}
}

func TestIntegerBranchAndBound(t *testing.T) {
	// 2x = 3 has a rational solution but no integer one.
	tb := New()
	x := tb.NewVar(true)
	s := tb.NewSlack(map[int]*big.Rat{x: rat(2)}, true)
	tb.AssertLower(s, rat(3))
	tb.AssertUpper(s, rat(3))
	if got := tb.Check(0); got != Feasible {
		t.Fatalf("rational relaxation: got %v, want feasible", got)
	}
	tb2 := New()
	x2 := tb2.NewVar(true)
	s2 := tb2.NewSlack(map[int]*big.Rat{x2: rat(2)}, true)
	tb2.AssertLower(s2, rat(3))
	tb2.AssertUpper(s2, rat(3))
	if got := tb2.CheckInt(0, 100); got != Infeasible {
		t.Fatalf("integer: got %v, want infeasible", got)
	}
}

func TestIntegerFeasibleAfterBranching(t *testing.T) {
	// 2x + 2y = 6 with x,y in [0,3]: integer solutions exist.
	tb := New()
	x := tb.NewVar(true)
	y := tb.NewVar(true)
	s := tb.NewSlack(map[int]*big.Rat{x: rat(2), y: rat(2)}, true)
	tb.AssertLower(s, rat(6))
	tb.AssertUpper(s, rat(6))
	tb.AssertLower(x, rat(0))
	tb.AssertUpper(x, rat(3))
	tb.AssertLower(y, rat(0))
	tb.AssertUpper(y, rat(3))
	if got := tb.CheckInt(0, 100); got != Feasible {
		t.Fatalf("got %v, want feasible", got)
	}
	if !tb.Value(x).IsInt() || !tb.Value(y).IsInt() {
		t.Fatalf("non-integral model x=%v y=%v", tb.Value(x), tb.Value(y))
	}
}

func TestRatFloor(t *testing.T) {
	cases := []struct {
		num, den, want int64
	}{
		{7, 2, 3}, {-7, 2, -4}, {6, 2, 3}, {-6, 2, -3}, {0, 1, 0}, {1, 3, 0}, {-1, 3, -1},
	}
	for _, c := range cases {
		got := ratFloor(big.NewRat(c.num, c.den))
		if got.Cmp(rat(c.want)) != 0 {
			t.Errorf("floor(%d/%d) = %v, want %d", c.num, c.den, got, c.want)
		}
	}
}

func TestManyPivots(t *testing.T) {
	// A chain x1 <= x2 <= ... <= xn with x1 >= 0, xn <= 0 forces all zero.
	tb := New()
	n := 20
	vars := make([]int, n)
	for i := range vars {
		vars[i] = tb.NewVar(true)
	}
	for i := 0; i+1 < n; i++ {
		s := tb.NewSlack(map[int]*big.Rat{vars[i]: rat(1), vars[i+1]: rat(-1)}, true)
		tb.AssertUpper(s, rat(0))
	}
	tb.AssertLower(vars[0], rat(0))
	tb.AssertUpper(vars[n-1], rat(0))
	if got := tb.Check(0); got != Feasible {
		t.Fatalf("got %v, want feasible", got)
	}
	for i, v := range vars {
		if tb.Value(v).Sign() != 0 {
			t.Fatalf("x%d = %v, want 0", i, tb.Value(v))
		}
	}
	// Now force x0 >= 1: infeasible.
	if tb.AssertLower(vars[0], rat(1)) {
		if got := tb.Check(0); got != Infeasible {
			t.Fatalf("after x0>=1: got %v, want infeasible", got)
		}
	}
}

func BenchmarkChainPivots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := New()
		n := 30
		vars := make([]int, n)
		for j := range vars {
			vars[j] = tb.NewVar(true)
		}
		for j := 0; j+1 < n; j++ {
			s := tb.NewSlack(map[int]*big.Rat{vars[j]: rat(1), vars[j+1]: rat(-1)}, true)
			tb.AssertUpper(s, rat(0))
		}
		tb.AssertLower(vars[0], rat(0))
		tb.AssertUpper(vars[n-1], rat(0))
		if tb.Check(0) != Feasible {
			b.Fatal("expected feasible")
		}
	}
}

func BenchmarkBranchAndBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := New()
		x := tb.NewVar(true)
		y := tb.NewVar(true)
		s := tb.NewSlack(map[int]*big.Rat{x: rat(2), y: rat(2)}, true)
		tb.AssertLower(s, rat(7))
		tb.AssertUpper(s, rat(7))
		tb.AssertLower(x, rat(0))
		tb.AssertUpper(x, rat(10))
		tb.AssertLower(y, rat(0))
		tb.AssertUpper(y, rat(10))
		if tb.CheckInt(0, 200) != Infeasible {
			b.Fatal("2x+2y=7 has no integer solution")
		}
	}
}
