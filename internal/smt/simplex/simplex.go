// Package simplex implements the general simplex procedure of Dutertre and
// de Moura ("A Fast Linear-Arithmetic Solver for DPLL(T)", CAV 2006) over
// exact rationals, with branch-and-bound on top for integer feasibility.
//
// The client creates variables, defines slack variables as linear rows over
// them, and asserts lower/upper bounds. Check reports rational
// (in)feasibility; CheckInt additionally searches for an integer model for
// the variables marked integral.
package simplex

import (
	"fmt"
	"math/big"
	"sort"
)

var (
	ratZero = big.NewRat(0, 1)
	ratOne  = big.NewRat(1, 1)
)

type bound struct {
	val *big.Rat // nil means unbounded
}

type varInfo struct {
	lower   *big.Rat // nil = -inf
	upper   *big.Rat // nil = +inf
	beta    *big.Rat
	integer bool
	basic   bool
}

// Tableau is a simplex instance. Not safe for concurrent use.
type Tableau struct {
	vars []varInfo
	// rows[b] is defined only when vars[b].basic: the linear expression of
	// b over nonbasic variables.
	rows map[int]map[int]*big.Rat
}

// New returns an empty tableau.
func New() *Tableau {
	return &Tableau{rows: make(map[int]map[int]*big.Rat)}
}

// NewVar allocates a structural variable and returns its index. If integer
// is set, CheckInt requires it to take an integral value.
func (t *Tableau) NewVar(integer bool) int {
	t.vars = append(t.vars, varInfo{beta: new(big.Rat), integer: integer})
	return len(t.vars) - 1
}

// NewSlack allocates a basic slack variable defined as Σ coeffs[x]·x over
// previously created variables and returns its index.
func (t *Tableau) NewSlack(coeffs map[int]*big.Rat, integer bool) int {
	s := len(t.vars)
	row := make(map[int]*big.Rat, len(coeffs))
	beta := new(big.Rat)
	for x, c := range coeffs {
		if c.Sign() == 0 {
			continue
		}
		cc := new(big.Rat).Set(c)
		// If x is itself basic, inline its row.
		if t.vars[x].basic {
			for y, d := range t.rows[x] {
				addInto(row, y, new(big.Rat).Mul(cc, d))
			}
		} else {
			addInto(row, x, cc)
		}
	}
	for x, c := range row {
		beta.Add(beta, new(big.Rat).Mul(c, t.vars[x].beta))
	}
	t.vars = append(t.vars, varInfo{beta: beta, integer: integer, basic: true})
	t.rows[s] = row
	return s
}

func addInto(row map[int]*big.Rat, x int, c *big.Rat) {
	if old, ok := row[x]; ok {
		old.Add(old, c)
		if old.Sign() == 0 {
			delete(row, x)
		}
	} else if c.Sign() != 0 {
		row[x] = c
	}
}

// AssertLower tightens the lower bound of x to c. It returns false if the
// bounds become immediately contradictory.
func (t *Tableau) AssertLower(x int, c *big.Rat) bool {
	v := &t.vars[x]
	if v.lower != nil && v.lower.Cmp(c) >= 0 {
		return true
	}
	if v.upper != nil && c.Cmp(v.upper) > 0 {
		return false
	}
	v.lower = new(big.Rat).Set(c)
	if !v.basic && v.beta.Cmp(c) < 0 {
		t.update(x, c)
	}
	return true
}

// AssertUpper tightens the upper bound of x to c. It returns false if the
// bounds become immediately contradictory.
func (t *Tableau) AssertUpper(x int, c *big.Rat) bool {
	v := &t.vars[x]
	if v.upper != nil && v.upper.Cmp(c) <= 0 {
		return true
	}
	if v.lower != nil && c.Cmp(v.lower) < 0 {
		return false
	}
	v.upper = new(big.Rat).Set(c)
	if !v.basic && v.beta.Cmp(c) > 0 {
		t.update(x, c)
	}
	return true
}

// update sets nonbasic variable x to value v, adjusting all basic betas.
func (t *Tableau) update(x int, v *big.Rat) {
	delta := new(big.Rat).Sub(v, t.vars[x].beta)
	for b, row := range t.rows {
		if c, ok := row[x]; ok {
			t.vars[b].beta.Add(t.vars[b].beta, new(big.Rat).Mul(c, delta))
		}
	}
	t.vars[x].beta.Set(v)
}

// pivot swaps basic b with nonbasic x.
func (t *Tableau) pivot(b, x int) {
	row := t.rows[b]
	a := row[x]
	delete(t.rows, b)
	// Solve b = ... + a·x + rest  for  x = b/a - rest/a.
	newRow := make(map[int]*big.Rat, len(row))
	inv := new(big.Rat).Inv(a)
	newRow[b] = new(big.Rat).Set(inv)
	negInv := new(big.Rat).Neg(inv)
	for y, c := range row {
		if y == x {
			continue
		}
		newRow[y] = new(big.Rat).Mul(negInv, c)
	}
	t.vars[b].basic = false
	t.vars[x].basic = true
	// Substitute x in every other row.
	for bb, r := range t.rows {
		if c, ok := r[x]; ok {
			delete(r, x)
			for y, d := range newRow {
				addInto(r, y, new(big.Rat).Mul(c, d))
			}
			_ = bb
		}
	}
	t.rows[x] = newRow
}

// pivotAndUpdate performs the combined pivot of basic b toward value v
// using nonbasic x.
func (t *Tableau) pivotAndUpdate(b, x int, v *big.Rat) {
	a := t.rows[b][x]
	theta := new(big.Rat).Sub(v, t.vars[b].beta)
	theta.Quo(theta, a)
	t.vars[b].beta.Set(v)
	newX := new(big.Rat).Add(t.vars[x].beta, theta)
	// Update all other basic variables that depend on x.
	for bb, row := range t.rows {
		if bb == b {
			continue
		}
		if c, ok := row[x]; ok {
			t.vars[bb].beta.Add(t.vars[bb].beta, new(big.Rat).Mul(c, theta))
		}
	}
	t.vars[x].beta.Set(newX)
	t.pivot(b, x)
}

// Check determines rational feasibility of the current bound set,
// restoring a consistent assignment. maxPivots bounds the work (0 = no
// bound); exceeding it returns Unknown.
func (t *Tableau) Check(maxPivots int) Result {
	pivots := 0
	for {
		// Find the smallest basic variable violating a bound (Bland).
		b := -1
		var target *big.Rat
		low := false
		basics := make([]int, 0, len(t.rows))
		for bb := range t.rows {
			basics = append(basics, bb)
		}
		sort.Ints(basics)
		for _, bb := range basics {
			v := &t.vars[bb]
			if v.lower != nil && v.beta.Cmp(v.lower) < 0 {
				b, target, low = bb, v.lower, true
				break
			}
			if v.upper != nil && v.beta.Cmp(v.upper) > 0 {
				b, target, low = bb, v.upper, false
				break
			}
		}
		if b == -1 {
			return Feasible
		}
		if maxPivots > 0 && pivots >= maxPivots {
			return Unknown
		}
		pivots++
		row := t.rows[b]
		cols := make([]int, 0, len(row))
		for x := range row {
			cols = append(cols, x)
		}
		sort.Ints(cols)
		found := -1
		for _, x := range cols {
			c := row[x]
			vx := &t.vars[x]
			if low {
				// Need to increase b.
				if (c.Sign() > 0 && (vx.upper == nil || vx.beta.Cmp(vx.upper) < 0)) ||
					(c.Sign() < 0 && (vx.lower == nil || vx.beta.Cmp(vx.lower) > 0)) {
					found = x
					break
				}
			} else {
				// Need to decrease b.
				if (c.Sign() < 0 && (vx.upper == nil || vx.beta.Cmp(vx.upper) < 0)) ||
					(c.Sign() > 0 && (vx.lower == nil || vx.beta.Cmp(vx.lower) > 0)) {
					found = x
					break
				}
			}
		}
		if found == -1 {
			return Infeasible
		}
		t.pivotAndUpdate(b, found, target)
	}
}

// Result is the outcome of a feasibility check.
type Result int

// Feasibility outcomes.
const (
	Unknown Result = iota
	Feasible
	Infeasible
)

func (r Result) String() string {
	switch r {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	}
	return "unknown"
}

// Value returns the current assignment of variable x.
func (t *Tableau) Value(x int) *big.Rat { return new(big.Rat).Set(t.vars[x].beta) }

// NumVars returns the number of variables (structural and slack).
func (t *Tableau) NumVars() int { return len(t.vars) }

// Bounds returns copies of x's current bounds (nil = unbounded).
func (t *Tableau) Bounds(x int) (lower, upper *big.Rat) {
	v := t.vars[x]
	if v.lower != nil {
		lower = new(big.Rat).Set(v.lower)
	}
	if v.upper != nil {
		upper = new(big.Rat).Set(v.upper)
	}
	return
}

// snapshot captures the full tableau state for backtracking in
// branch-and-bound.
type snapshot struct {
	vars []varInfo
	rows map[int]map[int]*big.Rat
}

func (t *Tableau) save() snapshot {
	vars := make([]varInfo, len(t.vars))
	for i, v := range t.vars {
		vars[i] = varInfo{beta: new(big.Rat).Set(v.beta), integer: v.integer, basic: v.basic}
		if v.lower != nil {
			vars[i].lower = new(big.Rat).Set(v.lower)
		}
		if v.upper != nil {
			vars[i].upper = new(big.Rat).Set(v.upper)
		}
	}
	rows := make(map[int]map[int]*big.Rat, len(t.rows))
	for b, row := range t.rows {
		r := make(map[int]*big.Rat, len(row))
		for x, c := range row {
			r[x] = new(big.Rat).Set(c)
		}
		rows[b] = r
	}
	return snapshot{vars: vars, rows: rows}
}

func (t *Tableau) restore(s snapshot) {
	t.vars = s.vars
	t.rows = s.rows
}

// CheckInt determines feasibility with all integer-marked variables
// required to take integral values, using branch-and-bound over the
// rational relaxation. maxNodes bounds the number of branch nodes explored;
// exhausting the budget yields Unknown.
func (t *Tableau) CheckInt(maxPivots, maxNodes int) Result {
	nodes := 0
	var rec func() Result
	rec = func() Result {
		if maxNodes > 0 && nodes >= maxNodes {
			return Unknown
		}
		nodes++
		switch t.Check(maxPivots) {
		case Infeasible:
			return Infeasible
		case Unknown:
			return Unknown
		}
		// Find an integer variable with a fractional value.
		frac := -1
		for i := range t.vars {
			if t.vars[i].integer && !t.vars[i].beta.IsInt() {
				frac = i
				break
			}
		}
		if frac == -1 {
			return Feasible
		}
		val := t.vars[frac].beta
		fl := ratFloor(val)
		// Branch x <= floor(val).
		snap := t.save()
		unknownSeen := false
		if t.AssertUpper(frac, fl) {
			switch rec() {
			case Feasible:
				return Feasible
			case Unknown:
				unknownSeen = true
			}
		}
		t.restore(snap)
		// Branch x >= floor(val)+1.
		ceil := new(big.Rat).Add(fl, ratOne)
		snap2 := t.save()
		if t.AssertLower(frac, ceil) {
			switch rec() {
			case Feasible:
				return Feasible
			case Unknown:
				unknownSeen = true
			}
		}
		t.restore(snap2)
		if unknownSeen {
			return Unknown
		}
		return Infeasible
	}
	return rec()
}

func ratFloor(r *big.Rat) *big.Rat {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return new(big.Rat).SetInt(q)
}

// String renders the tableau for debugging.
func (t *Tableau) String() string {
	s := ""
	for b, row := range t.rows {
		s += fmt.Sprintf("x%d =", b)
		for x, c := range row {
			s += fmt.Sprintf(" %v·x%d", c.RatString(), x)
		}
		s += "\n"
	}
	return s
}
