// Package smt implements a lazy DPLL(T) decision procedure for
// quantifier-free formulas over linear integer arithmetic, built from the
// CDCL SAT solver in smt/sat and the simplex core in smt/simplex.
//
// Nonlinear products are soundly over-approximated by abstracting them as
// fresh integer variables with Ackermann functional-consistency lemmas.
// Strict comparisons are strengthened to non-strict ones (all variables are
// integers), so the theory solver only deals with <=-bounds plus equality
// case splits for disequalities.
//
// The package-level entry points (Sat, Valid, Implies, UnsatCore, ...) are
// methods on Checker, which memoises results by formula key; predicate
// abstraction issues many repeated implication queries and the cache is the
// difference between seconds and minutes on the evaluation suite.
package smt

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync/atomic"

	"circ/internal/expr"
	"circ/internal/smt/sat"
	"circ/internal/smt/simplex"
)

// Result is a three-valued satisfiability verdict.
type Result int

// Verdicts.
const (
	Unknown Result = iota
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Stats counts solver work, for the benchmark harness. Counters are
// updated with atomic operations so the underlying solve path can be
// shared by concurrent goroutines (see CachedChecker); read them through
// Snapshot when other goroutines may be solving.
type Stats struct {
	Queries      int64 // top-level Sat queries (cache misses)
	CacheHits    int64
	TheoryChecks int64
	SatConflicts int64
}

// Solver is the query interface shared by Checker (single-goroutine,
// simple memoisation) and CachedChecker (concurrency-safe, sharded
// memoisation). All analysis layers — predicate abstraction, bisimulation
// minimisation, simulation checking, refinement — are written against this
// interface so one process-wide memoising instance can be threaded through
// an entire batch of analyses.
type Solver interface {
	// Sat reports the satisfiability of f.
	Sat(f expr.Expr) Result
	// SatID reports the satisfiability of the interned formula id. This is
	// the allocation-free hot path: the cache key is the ID itself.
	SatID(id expr.ID) Result
	// SatModel reports satisfiability and, when Sat, an integer model.
	SatModel(f expr.Expr) (Result, map[string]int64)
	// Valid reports whether f is valid (Unknown degrades to false).
	Valid(f expr.Expr) bool
	// Implies reports whether a entails b.
	Implies(a, b expr.Expr) bool
	// Equivalent reports whether a and b are logically equivalent.
	Equivalent(a, b expr.Expr) bool
	// UnsatCore returns a minimal unsatisfiable subset of parts.
	UnsatCore(parts []expr.Expr) (core []int, ok bool)
	// NewSession opens an incremental solving session for conjunctions of
	// phi with varying literals (the predicate-abstraction cube loop).
	// Verdicts and cache contents are identical to issuing the equivalent
	// SatID(IDConj(phi, lit)) calls, just cheaper.
	NewSession(phi expr.ID) *Session
}

// Checker is a memoising SMT front door. The zero value is not usable;
// call NewChecker. A Checker's cache is not safe for concurrent use; for
// concurrent callers use CachedChecker, which shares the same solving core
// behind a sharded concurrent cache.
type Checker struct {
	cache map[expr.ID]Result
	// Budgets; zero selects a sensible default.
	MaxPivots int // simplex pivots per theory check
	MaxNodes  int // branch-and-bound nodes per theory check
	MaxLoops  int // lazy-loop iterations per query
	Stats     Stats
}

// NewChecker returns a Checker with default budgets.
func NewChecker() *Checker {
	return &Checker{
		cache:     make(map[expr.ID]Result),
		MaxPivots: 200000,
		MaxNodes:  400,
		MaxLoops:  20000,
	}
}

// Snapshot returns an atomically-read copy of the stats, safe to call
// while other goroutines are solving.
func (c *Checker) Snapshot() Stats {
	return Stats{
		Queries:      atomic.LoadInt64(&c.Stats.Queries),
		CacheHits:    atomic.LoadInt64(&c.Stats.CacheHits),
		TheoryChecks: atomic.LoadInt64(&c.Stats.TheoryChecks),
		SatConflicts: atomic.LoadInt64(&c.Stats.SatConflicts),
	}
}

// Sat reports the satisfiability of formula f. Interning canonicalises f
// (a superset of Simplify), so logically-trivial formulas resolve without
// touching the cache or the solver.
func (c *Checker) Sat(f expr.Expr) Result {
	if id, ok := expr.LookupID(f); ok {
		return c.SatID(id)
	}
	return c.SatID(expr.Intern(f))
}

// SatID reports the satisfiability of the interned formula id.
func (c *Checker) SatID(id expr.ID) Result {
	if v, ok := expr.IDBoolValue(id); ok {
		if v {
			return Sat
		}
		return Unsat
	}
	if r, ok := c.cache[id]; ok {
		atomic.AddInt64(&c.Stats.CacheHits, 1)
		return r
	}
	r, _ := c.solve(id, false)
	c.cache[id] = r
	return r
}

// SatModel reports satisfiability and, when Sat, an integer model.
func (c *Checker) SatModel(f expr.Expr) (Result, map[string]int64) {
	id := expr.Intern(f)
	r, m := c.solve(id, true)
	c.cache[id] = r
	return r, m
}

// Valid reports whether f is valid. Unknown degrades to false ("cannot
// prove"), which is the sound direction for abstraction.
func (c *Checker) Valid(f expr.Expr) bool {
	return c.SatID(expr.InternNot(expr.Intern(f))) == Unsat
}

// Implies reports whether a entails b.
func (c *Checker) Implies(a, b expr.Expr) bool {
	return c.SatID(expr.IDConj(expr.Intern(a), expr.InternNot(expr.Intern(b)))) == Unsat
}

// Equivalent reports whether a and b are logically equivalent.
func (c *Checker) Equivalent(a, b expr.Expr) bool {
	return c.Implies(a, b) && c.Implies(b, a)
}

// NewSession opens an incremental session for conjunctions with phi,
// backed by this checker's cache. Not safe for concurrent use, matching
// Checker itself.
func (c *Checker) NewSession(phi expr.ID) *Session {
	return &Session{
		core: c,
		phi:  phi,
		lookup: func(id expr.ID) (Result, bool) {
			r, ok := c.cache[id]
			return r, ok
		},
		store: func(id expr.ID, r Result) { c.cache[id] = r },
		onHit: func() { atomic.AddInt64(&c.Stats.CacheHits, 1) },
		solveFresh: func(id expr.ID) Result {
			r, _ := c.solve(id, false)
			return r
		},
	}
}

// UnsatCore returns the indices of a minimal (irreducible) subset of parts
// whose conjunction is unsatisfiable. ok is false when the conjunction is
// satisfiable or unknown.
func (c *Checker) UnsatCore(parts []expr.Expr) (core []int, ok bool) {
	return unsatCore(c, parts)
}

// unsatCore is the deletion-based core minimisation, shared by Checker and
// CachedChecker (both route the Sat queries through their own caches).
func unsatCore(s Solver, parts []expr.Expr) (core []int, ok bool) {
	all := make([]int, len(parts))
	for i := range parts {
		all[i] = i
	}
	conj := func(idx []int) expr.Expr {
		fs := make([]expr.Expr, len(idx))
		for i, j := range idx {
			fs[i] = parts[j]
		}
		return expr.Conj(fs...)
	}
	if s.Sat(conj(all)) != Unsat {
		return nil, false
	}
	// Deletion-based minimisation.
	cur := all
	for i := 0; i < len(cur); {
		trial := make([]int, 0, len(cur)-1)
		trial = append(trial, cur[:i]...)
		trial = append(trial, cur[i+1:]...)
		if s.Sat(conj(trial)) == Unsat {
			cur = trial
		} else {
			i++
		}
	}
	return cur, true
}

// --- query encoding ---

// tAtom is a canonical theory atom: Σ Coeffs·v  (<= | ==)  RHS.
type tAtom struct {
	coeffs map[string]int64
	rhs    int64
	eq     bool
	key    string
}

func atomKey(coeffs map[string]int64, rhs int64, eq bool) string {
	names := make([]string, 0, len(coeffs))
	for n := range coeffs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	if eq {
		b.WriteString("eq:")
	} else {
		b.WriteString("le:")
	}
	for _, n := range names {
		fmt.Fprintf(&b, "%d*%s+", coeffs[n], n)
	}
	fmt.Fprintf(&b, "%d", rhs)
	return b.String()
}

type query struct {
	chk    *Checker
	solver *sat.Solver
	atoms  []*tAtom            // indexed by atom id
	atomID map[string]int      // atom key -> id
	atomV  map[int]int         // atom id -> sat var
	enc    map[expr.ID]sat.Lit // Tseitin memo by interned formula ID
	nlName map[expr.ID]string  // nonlinear subterm ID -> fresh var name
	nlList []expr.ID           // abstracted products, for Ackermann lemmas
	// learnSink, when set, receives every minimised theory conflict the
	// DPLL(T) loop blocks — the capture side of the shared-learning
	// portfolio (see portfolio.go). The slice is not retained.
	learnSink func(conflict []assertedAtom)
}

func (c *Checker) newQuery() *query {
	return &query{
		chk:    c,
		solver: sat.New(),
		atomID: make(map[string]int),
		atomV:  make(map[int]int),
		enc:    make(map[expr.ID]sat.Lit),
		nlName: make(map[expr.ID]string),
	}
}

func (q *query) abstractNonlinear(e expr.Expr) string {
	id := expr.Intern(e)
	if n, ok := q.nlName[id]; ok {
		return n
	}
	n := fmt.Sprintf("$nl%d", len(q.nlName))
	q.nlName[id] = n
	q.nlList = append(q.nlList, id)
	return n
}

// atomLit canonicalises a comparison into a theory atom and returns the SAT
// literal representing it (possibly negated relative to the stored atom).
func (q *query) atomLit(cmp expr.Cmp) (sat.Lit, error) {
	lin, op, err := expr.NormalizeAtom(cmp, q.abstractNonlinear)
	if err != nil {
		return 0, err
	}
	if lin.IsConst() {
		// Constant atom: encode as a forced fresh variable.
		truth := expr.Simplify(expr.Compare(op, expr.Num(lin.Const), expr.Num(0)))
		v := q.solver.NewVar()
		b, _ := truth.(expr.Bool)
		q.solver.AddClause(sat.MkLit(v, !b.Value))
		return sat.MkLit(v, false), nil
	}
	coeffs := lin.Coeffs
	neg := false
	var rhs int64
	var eq bool
	switch op {
	case expr.OpEq:
		eq, rhs = true, -lin.Const
	case expr.OpNe:
		eq, rhs, neg = true, -lin.Const, true
	case expr.OpLe:
		rhs = -lin.Const
	case expr.OpLt:
		rhs = -lin.Const - 1
	case expr.OpGe:
		coeffs = negateCoeffs(coeffs)
		rhs = lin.Const
	case expr.OpGt:
		coeffs = negateCoeffs(coeffs)
		rhs = lin.Const - 1
	}
	key := atomKey(coeffs, rhs, eq)
	id, ok := q.atomID[key]
	if !ok {
		id = len(q.atoms)
		q.atoms = append(q.atoms, &tAtom{coeffs: coeffs, rhs: rhs, eq: eq, key: key})
		q.atomID[key] = id
		q.atomV[id] = q.solver.NewVar()
	}
	return sat.MkLit(q.atomV[id], neg), nil
}

func negateCoeffs(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = -v
	}
	return out
}

// encodeID Tseitin-encodes the interned formula id and returns its
// literal. The memo is keyed by ID, so re-encoding shared structure (and,
// in incremental sessions, whole repeated queries) is a map hit.
func (q *query) encodeID(id expr.ID) (sat.Lit, error) {
	if l, ok := q.enc[id]; ok {
		return l, nil
	}
	view := expr.IDView(id)
	var lit sat.Lit
	switch view.Kind {
	case expr.KindBool:
		v := q.solver.NewVar()
		q.solver.AddClause(sat.MkLit(v, !view.Bool))
		lit = sat.MkLit(v, false)
	case expr.KindCmp:
		l, err := q.atomLit(expr.FromID(id).(expr.Cmp))
		if err != nil {
			return 0, err
		}
		lit = l
	case expr.KindNot:
		l, err := q.encodeID(view.Kids[0])
		if err != nil {
			return 0, err
		}
		lit = l.Not()
	case expr.KindAnd:
		v := q.solver.NewVar()
		lv := sat.MkLit(v, false)
		long := []sat.Lit{lv}
		for _, x := range view.Kids {
			lx, err := q.encodeID(x)
			if err != nil {
				return 0, err
			}
			q.solver.AddClause(lv.Not(), lx)
			long = append(long, lx.Not())
		}
		q.solver.AddClause(long...)
		lit = lv
	case expr.KindOr:
		v := q.solver.NewVar()
		lv := sat.MkLit(v, false)
		long := []sat.Lit{lv.Not()}
		for _, x := range view.Kids {
			lx, err := q.encodeID(x)
			if err != nil {
				return 0, err
			}
			q.solver.AddClause(lv, lx.Not())
			long = append(long, lx)
		}
		q.solver.AddClause(long...)
		lit = lv
	default:
		return 0, fmt.Errorf("smt: cannot encode %v as formula", view.Kind)
	}
	q.enc[id] = lit
	return lit, nil
}

// ackermannLemmas returns functional-consistency lemmas for the abstracted
// nonlinear products: equal arguments imply equal results (including the
// commuted case for multiplication).
func (q *query) ackermannLemmas() []expr.Expr {
	var lemmas []expr.Expr
	for i := 0; i < len(q.nlList); i++ {
		bi := expr.FromID(q.nlList[i]).(expr.Bin)
		vi := expr.V(q.nlName[q.nlList[i]])
		for j := i + 1; j < len(q.nlList); j++ {
			bj := expr.FromID(q.nlList[j]).(expr.Bin)
			vj := expr.V(q.nlName[q.nlList[j]])
			same := expr.Conj(expr.Eq(bi.X, bj.X), expr.Eq(bi.Y, bj.Y))
			lemmas = append(lemmas, expr.Implies(same, expr.Eq(vi, vj)))
			commuted := expr.Conj(expr.Eq(bi.X, bj.Y), expr.Eq(bi.Y, bj.X))
			lemmas = append(lemmas, expr.Implies(commuted, expr.Eq(vi, vj)))
		}
	}
	return lemmas
}

// addAckermann encodes and asserts functional-consistency lemmas for all
// abstracted nonlinear products. Lemmas reference abstraction names
// created during encoding, and encoding them may abstract further
// products, so it iterates to a fixpoint. Re-asserting an already-known
// lemma is a no-op (the encoder memo returns the same unit literal), so
// incremental sessions call this after every new encode. It returns
// ok=false when the clause database became unsatisfiable and a non-nil
// error when a lemma failed to encode.
func (q *query) addAckermann() (bool, error) {
	done := 0
	for done < len(q.nlList) {
		lemmas := q.ackermannLemmas()
		done = len(q.nlList)
		for _, lem := range lemmas {
			ll, err := q.encodeID(expr.Intern(lem))
			if err != nil {
				return false, err
			}
			if !q.solver.AddClause(ll) {
				return false, nil
			}
		}
	}
	return true, nil
}

// solve runs the lazy DPLL(T) loop on a fresh solver instance.
func (c *Checker) solve(id expr.ID, wantModel bool) (Result, map[string]int64) {
	atomic.AddInt64(&c.Stats.Queries, 1)
	if v, ok := expr.IDBoolValue(id); ok {
		if v {
			return Sat, map[string]int64{}
		}
		return Unsat, nil
	}
	q := c.newQuery()
	root, err := q.encodeID(id)
	if err != nil {
		return Unknown, nil
	}
	if !q.solver.AddClause(root) {
		return Unsat, nil
	}
	if ok, err := q.addAckermann(); err != nil {
		return Unknown, nil
	} else if !ok {
		return Unsat, nil
	}
	return c.dpll(q, nil, wantModel)
}

// dpll is the lazy theory-refinement loop: SAT-solve (under optional
// assumptions), theory-check the asserted atoms, block irreducible
// conflicts, repeat. Blocking clauses are theory-valid lemmas, so they —
// and the solver's learned clauses — remain sound for later queries
// against the same clause database, which is what makes incremental
// sessions possible.
func (c *Checker) dpll(q *query, assumptions []sat.Lit, wantModel bool) (Result, map[string]int64) {
	for iter := 0; iter < c.MaxLoops; iter++ {
		switch q.solver.Solve(assumptions...) {
		case sat.Unsat:
			return Unsat, nil
		case sat.Unknown:
			return Unknown, nil
		}
		model := q.solver.Model()
		// Gather asserted theory literals.
		lits := make([]assertedAtom, 0, len(q.atoms))
		for id, a := range q.atoms {
			v := q.atomV[id]
			lits = append(lits, assertedAtom{a: a, pos: model[v]})
		}
		res, vals := c.theoryCheck(lits)
		switch res {
		case simplex.Feasible:
			if wantModel {
				return Sat, vals
			}
			return Sat, nil
		case simplex.Unknown:
			return Unknown, nil
		}
		// Infeasible: minimise the conflicting literal set, then block it.
		conflict := c.minimizeConflict(lits)
		if q.learnSink != nil {
			q.learnSink(conflict)
		}
		block := make([]sat.Lit, 0, len(conflict))
		for _, tl := range conflict {
			v := q.atomV[q.atomID[tl.a.key]]
			block = append(block, sat.MkLit(v, tl.pos)) // negated literal
		}
		if !q.solver.AddClause(block...) {
			return Unsat, nil
		}
	}
	return Unknown, nil
}

type assertedAtom struct {
	a   *tAtom
	pos bool
}

// minimizeConflict greedily deletes literals while the set stays
// theory-infeasible, yielding an irreducible conflict.
func (c *Checker) minimizeConflict(lits []assertedAtom) []assertedAtom {
	cur := lits
	for i := 0; i < len(cur); {
		trial := make([]assertedAtom, 0, len(cur)-1)
		trial = append(trial, cur[:i]...)
		trial = append(trial, cur[i+1:]...)
		res, _ := c.theoryCheck(trial)
		if res == simplex.Infeasible {
			cur = trial
		} else {
			i++
		}
	}
	return cur
}

// theoryCheck decides the conjunction of asserted atoms over the integers.
// On feasibility it returns an integer model for the structural variables.
func (c *Checker) theoryCheck(lits []assertedAtom) (simplex.Result, map[string]int64) {
	atomic.AddInt64(&c.Stats.TheoryChecks, 1)
	type diseq struct {
		slack int
		rhs   *big.Rat
	}
	build := func(extra []func(t *simplex.Tableau, vars map[string]int, slacks map[string]int) bool) (simplex.Result, *simplex.Tableau, map[string]int, []diseq) {
		t := simplex.New()
		vars := make(map[string]int)
		slacks := make(map[string]int)
		getVar := func(n string) int {
			if i, ok := vars[n]; ok {
				return i
			}
			i := t.NewVar(true)
			vars[n] = i
			return i
		}
		getSlack := func(a *tAtom) int {
			ck := coeffKey(a.coeffs)
			if s, ok := slacks[ck]; ok {
				return s
			}
			cs := make(map[int]*big.Rat, len(a.coeffs))
			for n, cv := range a.coeffs {
				cs[getVar(n)] = new(big.Rat).SetInt64(cv)
			}
			s := t.NewSlack(cs, true)
			slacks[ck] = s
			return s
		}
		var diseqs []diseq
		for _, l := range lits {
			s := getSlack(l.a)
			rhs := new(big.Rat).SetInt64(l.a.rhs)
			switch {
			case l.a.eq && l.pos:
				if !t.AssertUpper(s, rhs) || !t.AssertLower(s, rhs) {
					return simplex.Infeasible, nil, nil, nil
				}
			case l.a.eq && !l.pos:
				diseqs = append(diseqs, diseq{slack: s, rhs: rhs})
			case !l.a.eq && l.pos:
				if !t.AssertUpper(s, rhs) {
					return simplex.Infeasible, nil, nil, nil
				}
			default: // ¬(Σ ≤ rhs)  ⇔  Σ ≥ rhs+1
				lb := new(big.Rat).Add(rhs, big.NewRat(1, 1))
				if !t.AssertLower(s, lb) {
					return simplex.Infeasible, nil, nil, nil
				}
			}
		}
		for _, fn := range extra {
			if !fn(t, vars, slacks) {
				return simplex.Infeasible, nil, nil, nil
			}
		}
		return simplex.Unknown, t, vars, diseqs
	}

	// Recursive search over disequality case splits. extraBounds carries
	// the split decisions as closures applied at build time.
	var rec func(extra []func(t *simplex.Tableau, vars map[string]int, slacks map[string]int) bool, depth int) (simplex.Result, map[string]int64)
	rec = func(extra []func(t *simplex.Tableau, vars map[string]int, slacks map[string]int) bool, depth int) (simplex.Result, map[string]int64) {
		if depth > 64 {
			return simplex.Unknown, nil
		}
		early, t, vars, diseqs := build(extra)
		if early == simplex.Infeasible {
			return simplex.Infeasible, nil
		}
		res := t.CheckInt(c.MaxPivots, c.MaxNodes)
		if res != simplex.Feasible {
			return res, nil
		}
		// Check disequalities against the model.
		for _, d := range diseqs {
			if t.Value(d.slack).Cmp(d.rhs) == 0 {
				// Violated: split into < and >.
				slackCoeffs := d.slack
				rhs := d.rhs
				lo := func(tt *simplex.Tableau, _ map[string]int, _ map[string]int) bool {
					up := new(big.Rat).Sub(rhs, big.NewRat(1, 1))
					return tt.AssertUpper(slackVarIn(tt, slackCoeffs), up)
				}
				hi := func(tt *simplex.Tableau, _ map[string]int, _ map[string]int) bool {
					lb := new(big.Rat).Add(rhs, big.NewRat(1, 1))
					return tt.AssertLower(slackVarIn(tt, slackCoeffs), lb)
				}
				r1, m1 := rec(append(append([]func(*simplex.Tableau, map[string]int, map[string]int) bool{}, extra...), lo), depth+1)
				if r1 == simplex.Feasible {
					return r1, m1
				}
				r2, m2 := rec(append(append([]func(*simplex.Tableau, map[string]int, map[string]int) bool{}, extra...), hi), depth+1)
				if r2 == simplex.Feasible {
					return r2, m2
				}
				if r1 == simplex.Unknown || r2 == simplex.Unknown {
					return simplex.Unknown, nil
				}
				return simplex.Infeasible, nil
			}
		}
		// Feasible and all disequalities hold: extract the model.
		m := make(map[string]int64, len(vars))
		for n, i := range vars {
			v := t.Value(i)
			if !v.IsInt() {
				return simplex.Unknown, nil
			}
			m[n] = v.Num().Int64()
		}
		return simplex.Feasible, m
	}
	return rec(nil, 0)
}

// slackVarIn exists because split closures capture slack indices created in
// a previous tableau; slack variable indices are deterministic given the
// same build order, so the captured index is valid in the rebuilt tableau.
func slackVarIn(_ *simplex.Tableau, idx int) int { return idx }

func coeffKey(m map[string]int64) string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%d*%s+", m[n], n)
	}
	return b.String()
}
