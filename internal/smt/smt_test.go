package smt

import (
	"testing"
	"testing/quick"

	"circ/internal/expr"
)

func TestBasicSat(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	y := expr.V("y")
	cases := []struct {
		f    expr.Expr
		want Result
	}{
		{expr.TrueExpr, Sat},
		{expr.FalseExpr, Unsat},
		{expr.Eq(x, expr.Num(3)), Sat},
		{expr.Conj(expr.Eq(x, expr.Num(3)), expr.Eq(x, expr.Num(4))), Unsat},
		{expr.Conj(expr.Lt(x, y), expr.Lt(y, x)), Unsat},
		{expr.Conj(expr.Le(x, y), expr.Le(y, x), expr.Ne(x, y)), Unsat},
		{expr.Conj(expr.Le(x, y), expr.Le(y, x), expr.Eq(x, y)), Sat},
		{expr.Conj(expr.Lt(x, y), expr.Lt(y, expr.Add(x, expr.Num(1)))), Unsat}, // integer gap
		{expr.Disj(expr.Eq(x, expr.Num(0)), expr.Eq(x, expr.Num(1))), Sat},
		{expr.Conj(expr.Ne(x, expr.Num(0)), expr.Ne(x, expr.Num(1)), expr.Ge(x, expr.Num(0)), expr.Le(x, expr.Num(1))), Unsat},
		{expr.Conj(expr.Eq(expr.Add(x, y), expr.Num(10)), expr.Eq(expr.Sub(x, y), expr.Num(4))), Sat},
		{expr.Conj(expr.Eq(expr.Mul(expr.Num(2), x), expr.Num(3))), Unsat}, // parity
	}
	for i, tc := range cases {
		if got := c.Sat(tc.f); got != tc.want {
			t.Errorf("case %d: Sat(%s) = %v, want %v", i, tc.f, got, tc.want)
		}
	}
}

func TestValidAndImplies(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	y := expr.V("y")
	if !c.Valid(expr.Disj(expr.Le(x, y), expr.Gt(x, y))) {
		t.Errorf("x<=y || x>y should be valid")
	}
	if c.Valid(expr.Le(x, y)) {
		t.Errorf("x<=y should not be valid")
	}
	if !c.Implies(expr.Eq(x, expr.Num(3)), expr.Gt(x, expr.Num(2))) {
		t.Errorf("x=3 should imply x>2")
	}
	if c.Implies(expr.Gt(x, expr.Num(2)), expr.Eq(x, expr.Num(3))) {
		t.Errorf("x>2 should not imply x=3")
	}
	// Transitivity with three variables.
	z := expr.V("z")
	if !c.Implies(expr.Conj(expr.Le(x, y), expr.Le(y, z)), expr.Le(x, z)) {
		t.Errorf("transitivity failed")
	}
}

func TestModelIsCorrect(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	y := expr.V("y")
	f := expr.Conj(
		expr.Eq(expr.Add(x, y), expr.Num(10)),
		expr.Eq(expr.Sub(x, y), expr.Num(4)),
	)
	r, m := c.SatModel(f)
	if r != Sat {
		t.Fatalf("got %v, want sat", r)
	}
	ok, err := expr.EvalFormula(f, m)
	if err != nil || !ok {
		t.Fatalf("model %v does not satisfy %s (err=%v)", m, f, err)
	}
	if m["x"] != 7 || m["y"] != 3 {
		t.Fatalf("model %v, want x=7 y=3", m)
	}
}

func TestNonlinearAckermann(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	y := expr.V("y")
	// x*y abstracted: x*y != y*x must be unsat by the commuted lemma.
	f := expr.Ne(expr.Mul(x, y), expr.Mul(y, x))
	if got := c.Sat(f); got != Unsat {
		t.Errorf("x*y != y*x: got %v, want unsat", got)
	}
	// x*y = 6 is satisfiable in the abstraction (over-approximation).
	if got := c.Sat(expr.Eq(expr.Mul(x, y), expr.Num(6))); got != Sat {
		t.Errorf("x*y = 6: got %v, want sat", got)
	}
}

func TestUnsatCoreMinimal(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	y := expr.V("y")
	parts := []expr.Expr{
		expr.Le(x, expr.Num(5)), // 0 (irrelevant)
		expr.Eq(y, expr.Num(2)), // 1
		expr.Gt(y, expr.Num(7)), // 2
		expr.Ge(x, expr.Num(0)), // 3 (irrelevant)
	}
	core, ok := c.UnsatCore(parts)
	if !ok {
		t.Fatalf("expected unsat")
	}
	if len(core) != 2 || core[0] != 1 || core[1] != 2 {
		t.Fatalf("core = %v, want [1 2]", core)
	}
}

func TestUnsatCoreSatInput(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	if _, ok := c.UnsatCore([]expr.Expr{expr.Le(x, expr.Num(5))}); ok {
		t.Fatalf("satisfiable input reported a core")
	}
}

func TestCacheHits(t *testing.T) {
	c := NewChecker()
	f := expr.Eq(expr.V("x"), expr.Num(1))
	c.Sat(f)
	before := c.Stats.CacheHits
	c.Sat(f)
	if c.Stats.CacheHits != before+1 {
		t.Fatalf("second identical query did not hit the cache")
	}
}

func TestEquivalent(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	a := expr.Ge(x, expr.Num(1))
	b := expr.Gt(x, expr.Num(0))
	if !c.Equivalent(a, b) {
		t.Errorf("x>=1 and x>0 should be equivalent over integers")
	}
	if c.Equivalent(a, expr.Gt(x, expr.Num(1))) {
		t.Errorf("x>=1 and x>1 should differ")
	}
}

// Property: for random small conjunctions of bound constraints, the solver
// agrees with brute-force enumeration over a small box.
func TestQuickAgainstBruteForce(t *testing.T) {
	c := NewChecker()
	type bounds struct {
		Lo1, Hi1, Lo2, Hi2 int8
		SumLe              int8
	}
	f := func(b bounds) bool {
		x := expr.V("x")
		y := expr.V("y")
		form := expr.Conj(
			expr.Ge(x, expr.Num(int64(b.Lo1))), expr.Le(x, expr.Num(int64(b.Hi1))),
			expr.Ge(y, expr.Num(int64(b.Lo2))), expr.Le(y, expr.Num(int64(b.Hi2))),
			expr.Le(expr.Add(x, y), expr.Num(int64(b.SumLe))),
		)
		want := false
		for xv := int64(b.Lo1); xv <= int64(b.Hi1); xv++ {
			for yv := int64(b.Lo2); yv <= int64(b.Hi2); yv++ {
				if xv+yv <= int64(b.SumLe) {
					want = true
				}
			}
		}
		got := c.Sat(form) == Sat
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDisequalitySplitDeep(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	// x in [0,4] and x != 0..4 simultaneously: unsat after 5 splits.
	conj := []expr.Expr{expr.Ge(x, expr.Num(0)), expr.Le(x, expr.Num(4))}
	for i := int64(0); i <= 4; i++ {
		conj = append(conj, expr.Ne(x, expr.Num(i)))
	}
	if got := c.Sat(expr.Conj(conj...)); got != Unsat {
		t.Errorf("got %v, want unsat", got)
	}
	// Remove one disequality: satisfiable.
	if got := c.Sat(expr.Conj(conj[:len(conj)-1]...)); got != Sat {
		t.Errorf("got %v, want sat", got)
	}
}

func TestNegativeCoefficientsAndConstants(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	y := expr.V("y")
	cases := []struct {
		f    expr.Expr
		want Result
	}{
		// -2x + 3y = 7, x = -2  =>  y = 1: satisfiable.
		{expr.Conj(
			expr.Eq(expr.Add(expr.Mul(expr.Num(-2), x), expr.Mul(expr.Num(3), y)), expr.Num(7)),
			expr.Eq(x, expr.Num(-2)),
		), Sat},
		// x <= -5 and x >= -3: unsat.
		{expr.Conj(expr.Le(x, expr.Num(-5)), expr.Ge(x, expr.Num(-3))), Unsat},
		// 3x = -6 has integer solution x = -2.
		{expr.Eq(expr.Mul(expr.Num(3), x), expr.Num(-6)), Sat},
		// 3x = -7 has no integer solution.
		{expr.Eq(expr.Mul(expr.Num(3), x), expr.Num(-7)), Unsat},
	}
	for i, tc := range cases {
		if got := c.Sat(tc.f); got != tc.want {
			t.Errorf("case %d: Sat(%s) = %v, want %v", i, tc.f, got, tc.want)
		}
	}
}

func TestSubtermSharingAcrossPolarity(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	// (x <= 3 || x > 3) && (x <= 3 || x >= 10): satisfiable.
	f := expr.Conj(
		expr.Disj(expr.Le(x, expr.Num(3)), expr.Gt(x, expr.Num(3))),
		expr.Disj(expr.Le(x, expr.Num(3)), expr.Ge(x, expr.Num(10))),
	)
	if got := c.Sat(f); got != Sat {
		t.Errorf("got %v, want sat", got)
	}
}

func TestBigConstants(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	f := expr.Conj(
		expr.Ge(x, expr.Num(1000000)),
		expr.Le(x, expr.Num(1000001)),
		expr.Ne(x, expr.Num(1000000)),
		expr.Ne(x, expr.Num(1000001)),
	)
	if got := c.Sat(f); got != Unsat {
		t.Errorf("got %v, want unsat", got)
	}
}

func TestDeeplyNestedBoolean(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	// Build ((x=0 || x=1) && (x=1 || x=2) && ... chain): only overlaps sat.
	var conj []expr.Expr
	for i := int64(0); i < 8; i++ {
		conj = append(conj, expr.Disj(expr.Eq(x, expr.Num(i)), expr.Eq(x, expr.Num(i+1))))
	}
	if got := c.Sat(expr.Conj(conj...)); got != Unsat {
		// x must equal i or i+1 for every i in 0..7 simultaneously:
		// impossible since x=k fails clause (k+1, k+2) when k+1 > ... check:
		// x must be in {i, i+1} for all i: intersection over i of {i,i+1}
		// is empty for 8 clauses.
		t.Errorf("got %v, want unsat", got)
	}
	conj = conj[:2] // {0,1} ∩ {1,2} = {1}: sat
	r, m := c.SatModel(expr.Conj(conj...))
	if r != Sat || m["x"] != 1 {
		t.Errorf("got %v model %v, want x=1", r, m)
	}
}

func TestValidTautologies(t *testing.T) {
	c := NewChecker()
	x := expr.V("x")
	y := expr.V("y")
	tautologies := []expr.Expr{
		expr.Implies(expr.Conj(expr.Le(x, y), expr.Le(y, x)), expr.Eq(x, y)),
		expr.Implies(expr.Eq(x, expr.Num(5)), expr.Disj(expr.Gt(x, expr.Num(4)), expr.Lt(x, expr.Num(0)))),
		expr.Disj(expr.Eq(x, y), expr.Ne(x, y)),
		// Integer rounding: x > 0 && x < 2 -> x = 1.
		expr.Implies(expr.Conj(expr.Gt(x, expr.Num(0)), expr.Lt(x, expr.Num(2))), expr.Eq(x, expr.Num(1))),
	}
	for i, f := range tautologies {
		if !c.Valid(f) {
			t.Errorf("tautology %d not proved: %s", i, f)
		}
	}
}

func TestStatsCount(t *testing.T) {
	c := NewChecker()
	before := c.Stats.Queries
	c.Sat(expr.Eq(expr.V("q"), expr.Num(3)))
	if c.Stats.Queries != before+1 {
		t.Errorf("query not counted")
	}
	if c.Stats.TheoryChecks == 0 {
		t.Errorf("theory checks not counted")
	}
}

func BenchmarkImplicationQueries(b *testing.B) {
	c := NewChecker()
	x := expr.V("x")
	y := expr.V("y")
	phi := expr.Conj(expr.Eq(x, y), expr.Ge(y, expr.Num(0)), expr.Lt(x, expr.Num(5)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mix of cache hits and distinct queries, like the abstractor's load.
		if !c.Implies(phi, expr.Ge(x, expr.Num(0))) {
			b.Fatal("implication should hold")
		}
		if c.Implies(phi, expr.Eq(x, expr.Num(int64(i%7)))) && i%7 > 5 {
			b.Fatal("implication should not hold")
		}
	}
}

// TestSessionStatsCounted asserts that incremental assumption queries
// contribute to Stats.Queries exactly like from-scratch solves — including
// on the baseBad short-circuit path, where phi alone is unsatisfiable and
// every SatConj answers Unsat without touching the SAT solver.
func TestSessionStatsCounted(t *testing.T) {
	x := expr.V("x")
	lits := []expr.ID{
		expr.Intern(expr.Eq(x, expr.Num(1))),
		expr.Intern(expr.Eq(x, expr.Num(2))),
	}

	c := NewChecker()
	sess := c.NewSession(expr.Intern(expr.Ge(x, expr.Num(0))))
	before := c.Stats.Queries
	if r := sess.SatConj(lits[0]); r != Sat {
		t.Fatalf("SatConj = %v, want Sat", r)
	}
	if got := c.Stats.Queries - before; got != 1 {
		t.Errorf("session query counted %d times, want 1", got)
	}

	// Unsatisfiable phi: every conjunction answers Unsat (whether refuted
	// up front or per query), and each SatConj is still one top-level
	// query that must be counted.
	bad := NewChecker()
	badPhi := expr.IDConj(
		expr.Intern(expr.Lt(x, expr.Num(0))),
		expr.Intern(expr.Gt(x, expr.Num(0))),
	)
	bsess := bad.NewSession(badPhi)
	before = bad.Stats.Queries
	for _, l := range lits {
		if r := bsess.SatConj(l); r != Unsat {
			t.Fatalf("SatConj under unsat phi = %v, want Unsat", r)
		}
	}
	if got := bad.Stats.Queries - before; got != 2 {
		t.Errorf("baseBad session queries counted %d times, want 2", got)
	}

	// The cached wrapper routes session queries to the same counter,
	// surfaced through CacheStats.Solver.
	cc := NewCachedChecker()
	csess := cc.NewSession(expr.Intern(expr.Ge(x, expr.Num(0))))
	if r := csess.SatConj(lits[0]); r != Sat {
		t.Fatalf("cached SatConj = %v, want Sat", r)
	}
	if got := cc.Stats().Solver.Queries; got != 1 {
		t.Errorf("cached session queries = %d, want 1", got)
	}
}
