package smt

import (
	"sync/atomic"

	"circ/internal/expr"
	"circ/internal/smt/sat"
)

// Session is an incremental solving context for the predicate-abstraction
// cube loop: a run of queries of the form Sat(phi ∧ lit) where phi is
// fixed and lit varies over predicate literals. Instead of building a
// fresh SAT instance per query, the session encodes phi once into one
// persistent solver and discharges each conjunction under an assumption
// literal, so Tseitin structure, theory atoms, theory blocking clauses,
// and CDCL-learned clauses are all shared across the enumeration.
//
// Determinism contract: SatConj(lit) returns exactly the verdict that
// SatID(IDConj(phi, lit)) would, and stores it in the owning checker's
// cache under that ID. Sat/Unsat answers from the shared solver are sound
// and procedure-independent; only Unknown (a budget artifact) could
// depend on session history, so an incremental Unknown is re-derived with
// a from-scratch solve before caching. Cached entries therefore remain a
// pure function of the formula, and verdicts are identical at any
// parallelism.
//
// A Session is single-goroutine, like the query it wraps. Concurrent
// callers each open their own session (the caches behind lookup/store are
// the concurrency-safe layer).
type Session struct {
	core *Checker
	phi  expr.ID

	// Cache plumbing, provided by the owning checker.
	lookup func(expr.ID) (Result, bool)
	store  func(expr.ID, Result)
	onHit  func()
	onMiss func()
	onFast func()
	// run wraps each incremental miss-solve, for instrumentation. It
	// receives the full query ID and the session itself so the slow-query
	// log can attribute cube key and clause-sharing deltas.
	run func(expr.ID, *Session, func() Result) Result
	// solveFresh performs an uninstrumented from-scratch solve (the
	// deterministic fallback for incremental Unknowns). It never sees the
	// clause pool: Unknown re-derivation opts out of the portfolio so the
	// cached verdict stays a pure function of the formula.
	solveFresh func(expr.ID) Result
	// getPool, when set, returns the shared learned-clause pool for phi
	// (see portfolio.go). Resolved lazily on first real solve so sessions
	// that are answered entirely from the cache never allocate a pool.
	getPool func() *clausePool
	// onShared observes the number of pooled clauses replayed into this
	// session's solver.
	onShared func(n int)

	q       *query
	started bool
	baseBad bool // phi's clause database is unsatisfiable outright
	broken  bool // phi failed to encode; degrade to from-scratch solving

	// Clause-sharing traffic, maintained on the session goroutine:
	// lemmas replayed from the pool at first start, and conflicts this
	// session's DPLL(T) loop captured into the pool. The instrumentation
	// wrapper reads deltas across one solve for slow-query attribution.
	replayed int
	learned  int
}

// Phi returns the fixed conjunct of the session.
func (s *Session) Phi() expr.ID { return s.phi }

// SatConj reports the satisfiability of phi ∧ lit. Constant collapses
// (interning detects complementary literals and folds constants) resolve
// without touching cache or solver; cached verdicts return without
// solving; everything else is one assumption-based incremental solve.
func (s *Session) SatConj(lit expr.ID) Result {
	qid := expr.IDConj(s.phi, lit)
	if v, ok := expr.IDBoolValue(qid); ok {
		if s.onFast != nil {
			s.onFast()
		}
		if v {
			return Sat
		}
		return Unsat
	}
	if r, ok := s.lookup(qid); ok {
		if s.onHit != nil {
			s.onHit()
		}
		return r
	}
	if s.onMiss != nil {
		s.onMiss()
	}
	solve := func() Result {
		r := s.solveAssuming(lit)
		if r == Unknown {
			// Unknown is the one verdict that can depend on session
			// history (shared budgets, learned-clause order). Re-derive it
			// from scratch so the cached result is a pure function of qid.
			r = s.solveFresh(qid)
		}
		return r
	}
	var r Result
	if s.run != nil {
		r = s.run(qid, s, solve)
	} else {
		r = solve()
	}
	s.store(qid, r)
	return r
}

// ImpliesLit reports whether phi entails the interned formula b, via
// SatConj(¬b) == Unsat. This is the shape of every cube-strengthening
// query in predicate abstraction.
func (s *Session) ImpliesLit(b expr.ID) bool {
	return s.SatConj(expr.InternNot(b)) == Unsat
}

// solveAssuming discharges phi ∧ lit on the persistent solver with lit's
// encoding as an assumption. Returns Unknown on any encode failure or
// budget exhaustion; the caller falls back to a from-scratch solve.
func (s *Session) solveAssuming(lit expr.ID) Result {
	if s.broken {
		return Unknown
	}
	c := s.core
	if !s.started {
		s.started = true
		s.q = c.newQuery()
		root, err := s.q.encodeID(s.phi)
		if err != nil {
			s.broken = true
			return Unknown
		}
		if !s.q.solver.AddClause(root) {
			s.baseBad = true
		} else if ok, err := s.q.addAckermann(); err != nil {
			s.broken = true
			return Unknown
		} else if !ok {
			s.baseBad = true
		}
		if !s.baseBad && s.getPool != nil {
			// Portfolio attach: replay the lemmas earlier sessions on this
			// phi learned, then capture our own conflicts into the pool.
			pool := s.getPool()
			replayed := 0
			for _, cl := range pool.snapshot() {
				if !s.q.replayClause(cl) {
					// Valid lemmas made the database unsat: phi is unsat.
					s.baseBad = true
					break
				}
				replayed++
			}
			s.replayed += replayed
			if replayed > 0 && s.onShared != nil {
				s.onShared(replayed)
			}
			s.q.learnSink = func(conflict []assertedAtom) {
				s.learned++
				pool.add(conflict)
			}
		}
	}
	// Count the assumption query before any short-circuit: a baseBad
	// session still answers a top-level query per SatConj, and dropping
	// those from Stats.Queries would understate solver traffic in metrics
	// snapshots (the session-vs-direct counts are asserted by
	// TestSessionStatsCounted).
	atomic.AddInt64(&c.Stats.Queries, 1)
	if s.baseBad {
		// phi alone is unsatisfiable, so every conjunction is.
		return Unsat
	}
	l, err := s.q.encodeID(lit)
	if err != nil {
		return Unknown
	}
	if ok, err := s.q.addAckermann(); err != nil {
		return Unknown
	} else if !ok {
		s.baseBad = true
		return Unsat
	}
	r, _ := c.dpll(s.q, []sat.Lit{l}, false)
	return r
}
