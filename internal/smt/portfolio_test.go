package smt

import (
	"sync"
	"testing"

	"circ/internal/expr"
)

// conflictPhi returns a φ whose cube enumeration forces theory conflicts:
// (x >= 5 || x <= 0). Asserting a cube like 1 <= x <= 4 makes every
// boolean model theory-infeasible, so the DPLL(T) loop learns blocking
// lemmas the portfolio can capture.
func conflictPhi() expr.ID {
	x := expr.V("x")
	return expr.Intern(expr.Disj(expr.Ge(x, expr.Num(5)), expr.Le(x, expr.Num(0))))
}

func cubeLit(lo, hi int64) expr.ID {
	x := expr.V("x")
	return expr.Intern(expr.Conj(expr.Ge(x, expr.Num(lo)), expr.Le(x, expr.Num(hi))))
}

// TestPortfolioSharesClauses: a second session on the same φ replays the
// lemmas the first session learned, and the counter records it.
func TestPortfolioSharesClauses(t *testing.T) {
	c := NewCachedChecker()
	phi := conflictPhi()

	s1 := c.NewSession(phi)
	if got := s1.SatConj(cubeLit(1, 4)); got != Unsat {
		t.Fatalf("phi && 1<=x<=4 = %v, want Unsat", got)
	}
	if got := s1.SatConj(cubeLit(6, 9)); got != Sat {
		t.Fatalf("phi && 6<=x<=9 = %v, want Sat", got)
	}
	c.core.poolMu.Lock()
	pool := c.core.pools[phi]
	c.core.poolMu.Unlock()
	if pool == nil || len(pool.snapshot()) == 0 {
		t.Fatalf("no lemmas captured for phi after conflicting cubes")
	}

	// A fresh session on the same φ must replay the pool on its first
	// real (cache-missing) solve.
	s2 := c.NewSession(phi)
	if got := s2.SatConj(cubeLit(2, 3)); got != Unsat {
		t.Fatalf("phi && 2<=x<=3 = %v, want Unsat", got)
	}
	if st := c.Stats(); st.ClausesShared == 0 {
		t.Fatalf("ClausesShared = 0 after second session, stats %+v", st)
	}
}

// TestPortfolioVerdictsMatchPlain: with pools active, session verdicts
// still agree with a from-scratch single-goroutine Checker on every
// query — the portfolio must never flip a verdict.
func TestPortfolioVerdictsMatchPlain(t *testing.T) {
	c := NewCachedChecker()
	phi := conflictPhi()
	cubes := [][2]int64{{1, 4}, {6, 9}, {2, 3}, {-5, -1}, {0, 0}, {5, 5}, {4, 5}, {1, 1}}
	// Interleave two sessions so both capture into and replay from the
	// shared pool.
	s1, s2 := c.NewSession(phi), c.NewSession(phi)
	for i, cb := range cubes {
		lit := cubeLit(cb[0], cb[1])
		s := s1
		if i%2 == 1 {
			s = s2
		}
		got := s.SatConj(lit)
		want := NewChecker().SatID(expr.IDConj(phi, lit))
		if got != want {
			t.Fatalf("cube [%d,%d]: session %v, plain %v", cb[0], cb[1], got, want)
		}
	}
}

// TestSingleFlightBroadcast: concurrent misses on one formula collapse
// to a single solve whose result is broadcast to the waiters.
func TestSingleFlightBroadcast(t *testing.T) {
	c := NewCachedChecker()
	x := expr.V("sfx")
	id := expr.Intern(expr.Conj(expr.Gt(x, expr.Num(10)), expr.Lt(x, expr.Num(20))))

	const goroutines = 8
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	results := make([]Result, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			results[g] = c.SatID(id)
		}(g)
	}
	start.Done()
	done.Wait()
	for g, r := range results {
		if r != Sat {
			t.Fatalf("goroutine %d: %v, want Sat", g, r)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight)", st.Misses)
	}
	if st.Solver.Queries != 1 {
		t.Fatalf("solver queries = %d, want 1", st.Solver.Queries)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, goroutines-1)
	}
}

// TestSweepDead: after an arena compaction, cached verdicts for
// tombstoned formulas and stale clause pools are dropped, and live
// entries survive.
func TestSweepDead(t *testing.T) {
	c := NewCachedChecker()
	x := expr.V("swx")
	liveID := expr.Intern(expr.Gt(x, expr.Num(100)))
	deadID := expr.Intern(expr.Conj(expr.Gt(x, expr.Num(200)), expr.Lt(x, expr.Num(199))))
	c.SatID(liveID)
	c.SatID(deadID)
	s := c.NewSession(conflictPhi())
	s.SatConj(cubeLit(1, 4)) // populate a pool

	expr.Compact([]expr.ID{liveID})
	removed := c.SweepDead()
	if removed == 0 {
		t.Fatalf("SweepDead removed nothing")
	}
	sh := c.shard(liveID)
	sh.mu.RLock()
	_, liveKept := sh.m[liveID]
	sh.mu.RUnlock()
	if !liveKept {
		t.Fatalf("live entry was swept")
	}
	sh = c.shard(deadID)
	sh.mu.RLock()
	_, deadKept := sh.m[deadID]
	sh.mu.RUnlock()
	if deadKept {
		t.Fatalf("dead entry survived the sweep")
	}
	c.core.poolMu.Lock()
	npools := len(c.core.pools)
	c.core.poolMu.Unlock()
	if npools != 0 {
		t.Fatalf("%d stale pools survived the sweep", npools)
	}
}
