package smt

import (
	"fmt"
	"sync"
	"testing"

	"circ/internal/expr"
)

// queryMix builds a batch of satisfiable and unsatisfiable LIA formulas.
func queryMix(n int) []expr.Expr {
	var out []expr.Expr
	for i := 0; i < n; i++ {
		x := expr.V("x")
		// x > i && x < i+2: satisfiable (x = i+1).
		out = append(out, expr.Conj(
			expr.Gt(x, expr.Num(int64(i))),
			expr.Lt(x, expr.Num(int64(i)+2))))
		// x > i && x < i: unsatisfiable.
		out = append(out, expr.Conj(
			expr.Gt(x, expr.Num(int64(i))),
			expr.Lt(x, expr.Num(int64(i)))))
	}
	return out
}

// TestCachedCheckerMatchesChecker: the concurrent cached solver must agree
// with a fresh single-goroutine Checker on every query.
func TestCachedCheckerMatchesChecker(t *testing.T) {
	cached := NewCachedChecker()
	plain := NewChecker()
	for i, f := range queryMix(20) {
		want := plain.Sat(f)
		if got := cached.Sat(f); got != want {
			t.Fatalf("query %d: cached %v, plain %v (%s)", i, got, want, f)
		}
		// Second lookup must hit the cache and still agree.
		if got := cached.Sat(f); got != want {
			t.Fatalf("query %d repeat: cached %v, plain %v", i, got, want)
		}
	}
	st := cached.Stats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits after repeated queries: %+v", st)
	}
	if st.Hits+st.Misses != 2*20*2 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 2*20*2)
	}
}

// TestCachedCheckerConcurrent hammers one CachedChecker from many
// goroutines, mixing identical and distinct queries, and checks both the
// verdicts and the counter bookkeeping.
func TestCachedCheckerConcurrent(t *testing.T) {
	cached := NewCachedChecker()
	queries := queryMix(10)
	want := make([]Result, len(queries))
	plain := NewChecker()
	for i, f := range queries {
		want[i] = plain.Sat(f)
	}

	const goroutines = 16
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(queries)
				if got := cached.Sat(queries[i]); got != want[i] {
					errs <- fmt.Errorf("goroutine %d round %d: query %d = %v, want %v", g, r, i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := cached.Stats()
	if st.Hits+st.Misses != goroutines*rounds {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d", st.Hits, st.Misses, st.Hits+st.Misses, goroutines*rounds)
	}
	// Each distinct query must have been solved at least once; the rest of
	// the lookups may be hits or (benign) duplicate concurrent solves.
	if st.Misses < int64(len(queries)) {
		t.Fatalf("misses = %d < %d distinct queries", st.Misses, len(queries))
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Fatalf("hit rate %v out of (0,1)", st.HitRate())
	}
}

// TestCachedCheckerDerivedOps: Valid/Implies/Equivalent/SatModel behave
// like the plain checker's.
func TestCachedCheckerDerivedOps(t *testing.T) {
	cached := NewCachedChecker()
	x := expr.V("x")
	if !cached.Valid(expr.Disj(expr.Ge(x, expr.Num(0)), expr.Lt(x, expr.Num(0)))) {
		t.Fatalf("tautology not valid")
	}
	if cached.Valid(expr.Gt(x, expr.Num(0))) {
		t.Fatalf("x>0 reported valid")
	}
	if !cached.Implies(expr.Gt(x, expr.Num(2)), expr.Gt(x, expr.Num(0))) {
		t.Fatalf("x>2 => x>0 failed")
	}
	if !cached.Equivalent(expr.Gt(x, expr.Num(0)), expr.Ge(x, expr.Num(1))) {
		t.Fatalf("x>0 <=> x>=1 failed over integers")
	}
	res, m := cached.SatModel(expr.Eq(x, expr.Num(7)))
	if res != Sat || m["x"] != 7 {
		t.Fatalf("SatModel: %v %v", res, m)
	}
	// UnsatCore through the interface-shared helper.
	parts := []expr.Expr{expr.Gt(x, expr.Num(5)), expr.Lt(x, expr.Num(3)), expr.Eq(expr.V("y"), expr.Num(0))}
	core, ok := cached.UnsatCore(parts)
	if !ok || len(core) == 0 {
		t.Fatalf("UnsatCore: %v %v", core, ok)
	}
	for _, i := range core {
		if i == 2 {
			t.Fatalf("irrelevant conjunct in core: %v", core)
		}
	}
}

// TestSolverInterface: both checkers satisfy smt.Solver (compile-time
// asserted in the package) and are interchangeable at runtime.
func TestSolverInterface(t *testing.T) {
	for _, s := range []Solver{NewChecker(), NewCachedChecker()} {
		if s.Sat(expr.Eq(expr.V("a"), expr.Num(1))) != Sat {
			t.Fatalf("%T: trivial sat failed", s)
		}
	}
}
