// Package sat implements a CDCL (conflict-driven clause learning) boolean
// satisfiability solver with two-watched-literal propagation, 1-UIP clause
// learning, VSIDS branching, Luby restarts, and solving under assumptions
// (which yields failed-assumption sets used for unsat cores upstream).
package sat

import (
	"fmt"
	"sort"
)

// Lit is a literal: variable index v (1-based) encoded as 2v for the
// positive literal and 2v+1 for the negated literal.
type Lit int

// MkLit builds a literal from a 1-based variable index and a sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l) >> 1 }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

// Value is a three-valued assignment.
type Value int8

// Assignment values.
const (
	Unassigned Value = iota
	True
	False
)

func (v Value) neg() Value {
	switch v {
	case True:
		return False
	case False:
		return True
	}
	return Unassigned
}

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Status is the solver outcome.
type Status int

// Solver outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	nVars    int
	clauses  []*clause
	learnts  []*clause
	watches  map[Lit][]watcher
	assign   []Value // indexed by var
	level    []int   // decision level of var
	reason   []*clause
	trail    []Lit
	trailLim []int // trail indices at decision levels
	qhead    int

	activity []float64
	varInc   float64
	order    []int // lazy heap substitute: vars sorted on demand

	seen      []bool
	conflicts int64
	// MaxConflicts bounds the search; 0 means no bound. When exceeded,
	// Solve returns Unknown.
	MaxConflicts int64

	assumptions []Lit
	failed      map[Lit]bool
	model       []bool

	okay bool // false once a top-level conflict is established
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		watches: make(map[Lit][]watcher),
		varInc:  1.0,
		okay:    true,
	}
}

// NewVar allocates a fresh variable and returns its 1-based index.
func (s *Solver) NewVar() int {
	s.nVars++
	s.assign = append(s.assign, Unassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	if s.nVars == 1 {
		// index 0 is unused; grow once more so slices index by var.
		s.assign = append(s.assign, Unassigned)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, false)
	}
	return s.nVars
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

func (s *Solver) value(l Lit) Value {
	v := s.assign[l.Var()]
	if l.Neg() {
		return v.neg()
	}
	return v
}

// VarValue returns the current assignment of variable v.
func (s *Solver) VarValue(v int) Value { return s.assign[v] }

// AddClause adds a clause over existing variables. It returns false if the
// clause set is already unsatisfiable at the top level.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.okay {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Normalise: sort, dedupe, drop false lits, detect tautology/true.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if l == prev {
			continue
		}
		if l == prev.Not() && prev != -1 && l.Var() == prev.Var() {
			return true // tautology
		}
		switch s.value(l) {
		case True:
			return true // already satisfied
		case False:
			continue // drop falsified literal
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.okay = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.okay = false
			return false
		}
		return true
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return true
}

func (s *Solver) watchClause(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assign[v] = False
	} else {
		s.assign[v] = True
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if confl != nil {
				kept = append(kept, w)
				continue
			}
			if s.value(w.blocker) == True {
				kept = append(kept, w)
				continue
			}
			c := w.c
			if c.deleted {
				continue
			}
			// Ensure c.lits[0] is the other watched literal.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == True {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.value(first) == False {
				confl = c
				s.qhead = len(s.trail)
			} else {
				s.uncheckedEnqueue(first, c)
			}
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

func (s *Solver) decayVar() { s.varInc /= 0.95 }

// analyze performs 1-UIP conflict analysis and returns the learnt clause
// (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot for asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	for {
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Pick next literal to expand from trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Not()
			break
		}
		confl = s.reason[v]
	}
	// Compute backtrack level: max level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, btLevel
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	lim := s.trailLim[level]
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := s.trail[i].Var()
		s.assign[v] = Unassigned
		s.reason[v] = nil
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	best := -1
	var bestAct float64 = -1
	for v := 1; v <= s.nVars; v++ {
		if s.assign[v] == Unassigned && s.activity[v] > bestAct {
			best = v
			bestAct = s.activity[v]
		}
	}
	return best
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	for k := uint(1); ; k++ {
		full := int64(1)<<k - 1
		if i == full {
			return 1 << (k - 1)
		}
		if i < full {
			return luby(i - int64(1)<<(k-1) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumptions. When the
// result is Unsat, FailedAssumptions reports which assumptions were used.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.okay {
		s.failed = map[Lit]bool{}
		return Unsat
	}
	s.assumptions = assumptions
	s.failed = nil
	defer s.backtrackTo(0)

	var restarts int64
	conflictBudget := int64(100) * luby(1)
	var conflictsHere int64

	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.okay = false
				s.failed = map[Lit]bool{}
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			// Never backtrack past the assumption levels: if the asserting
			// level is inside assumptions, conflict analysis below handles
			// it when re-deciding.
			s.backtrackTo(btLevel)
			if len(learnt) == 1 {
				s.backtrackTo(0)
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.watchClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayVar()
			continue
		}
		if s.MaxConflicts > 0 && s.conflicts > s.MaxConflicts {
			return Unknown
		}
		if conflictsHere > conflictBudget {
			// Restart (keep assumption decisions by replaying them).
			conflictsHere = 0
			restarts++
			conflictBudget = int64(100) * luby(restarts+1)
			s.backtrackTo(0)
		}
		// Assumptions as pseudo-decisions.
		if s.decisionLevel() < len(s.assumptions) {
			a := s.assumptions[s.decisionLevel()]
			switch s.value(a) {
			case True:
				// Already satisfied: open a dummy level to keep indexing.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case False:
				s.analyzeFinal(a.Not())
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(a, nil)
			continue
		}
		v := s.pickBranchVar()
		if v == -1 {
			s.model = make([]bool, s.nVars+1)
			for u := 1; u <= s.nVars; u++ {
				s.model[u] = s.assign[u] == True
			}
			return Sat
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		// Phase: default false (negated) — tends to produce sparse models.
		s.uncheckedEnqueue(MkLit(v, true), nil)
	}
}

// analyzeFinal computes the subset of assumptions implying literal p's
// negation, populating s.failed.
func (s *Solver) analyzeFinal(p Lit) {
	s.failed = map[Lit]bool{p.Not(): true}
	if s.decisionLevel() == 0 {
		return
	}
	isAssump := make(map[int]Lit, len(s.assumptions))
	for _, a := range s.assumptions {
		isAssump[a.Var()] = a
	}
	seen := make(map[int]bool)
	seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !seen[v] {
			continue
		}
		if s.reason[v] == nil {
			if a, ok := isAssump[v]; ok {
				s.failed[a] = true
			}
		} else {
			for _, l := range s.reason[v].lits {
				if s.level[l.Var()] > 0 {
					seen[l.Var()] = true
				}
			}
		}
		seen[v] = false
	}
}

// FailedAssumptions returns the assumptions involved in the final conflict
// of the last Unsat result from Solve (a subset of the assumptions passed).
func (s *Solver) FailedAssumptions() []Lit {
	out := make([]Lit, 0, len(s.failed))
	for l := range s.failed {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Model returns the satisfying assignment captured at the last Sat result.
// Index by variable (1-based); unassigned variables read as false.
func (s *Solver) Model() []bool { return s.model }

// Okay reports whether the clause database is still possibly satisfiable
// (no top-level conflict has been derived).
func (s *Solver) Okay() bool { return s.okay }
