package sat

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestEmptySolverIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("empty solver: got %v, want sat", got)
	}
}

func TestUnitPropagation(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true), MkLit(b, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	m := s.Model()
	if !m[a] || !m[b] {
		t.Fatalf("model = a:%t b:%t, want both true", m[a], m[b])
	}
}

func TestSimpleUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if ok := s.AddClause(MkLit(a, true)); ok {
		t.Fatalf("AddClause of contradicting unit returned true")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestPigeonhole3Into2(t *testing.T) {
	// 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j. Unsat.
	s := New()
	var p [3][2]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < 3; i++ {
		s.AddClause(MkLit(p[i][0], false), MkLit(p[i][1], false))
	}
	for j := 0; j < 2; j++ {
		for i := 0; i < 3; i++ {
			for k := i + 1; k < 3; k++ {
				s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("pigeonhole: got %v, want unsat", got)
	}
}

func TestPigeonhole4Into4Sat(t *testing.T) {
	s := New()
	n := 4
	p := make([][]int, n)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			for k := i + 1; k < n; k++ {
				s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
			}
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	// Verify the model is a valid assignment.
	m := s.Model()
	for i := 0; i < n; i++ {
		cnt := 0
		for j := 0; j < n; j++ {
			if m[p[i][j]] {
				cnt++
			}
		}
		if cnt == 0 {
			t.Fatalf("pigeon %d has no hole in model", i)
		}
	}
}

func TestAssumptionsAndFailedSet(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	c := s.NewVar()
	// a -> b, b -> !c
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(b, true), MkLit(c, true))
	// Assume a and c: contradiction through the chain.
	if got := s.Solve(MkLit(a, false), MkLit(c, false)); got != Unsat {
		t.Fatalf("got %v, want unsat under assumptions", got)
	}
	failed := s.FailedAssumptions()
	if len(failed) == 0 {
		t.Fatalf("no failed assumptions reported")
	}
	// Without assumptions it must still be satisfiable.
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat without assumptions", got)
	}
}

func TestModelSatisfiesAllClauses(t *testing.T) {
	// Randomised 3-SAT at a satisfiable density; validate returned models.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		s := New()
		n := 30
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		for k := 0; k < 80; k++ {
			var cl []Lit
			for j := 0; j < 3; j++ {
				v := rng.Intn(n) + 1
				cl = append(cl, MkLit(v, rng.Intn(2) == 0))
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		if s.Solve() != Sat {
			continue // low density but can still be unsat; skip
		}
		m := s.Model()
		for ci, cl := range clauses {
			ok := false
			for _, l := range cl {
				if m[l.Var()] != l.Neg() {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: model does not satisfy clause %d: %v", trial, ci, cl)
			}
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(a, true)) // tautology, dropped
	s.AddClause(MkLit(b, false), MkLit(b, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if !s.Model()[b] {
		t.Fatalf("b not forced true by duplicate-literal unit clause")
	}
}

func TestManyRestartStress(t *testing.T) {
	// A chain of xor-ish constraints that forces conflicts and learning.
	s := New()
	n := 40
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		// v[i] != v[i+1]
		s.AddClause(MkLit(vars[i], false), MkLit(vars[i+1], false))
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], true))
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("alternating chain: got %v, want sat", got)
	}
	m := s.Model()
	for i := 0; i+1 < n; i++ {
		if m[vars[i]] == m[vars[i+1]] {
			t.Fatalf("chain broken at %d", i)
		}
	}
	// Pin the two ends to equal values with even distance: unsat when the
	// chain length forces alternation parity.
	s.AddClause(MkLit(vars[0], false))
	if got := s.Solve(MkLit(vars[1], false)); got != Unsat {
		t.Fatalf("got %v, want unsat (adjacent equal)", got)
	}
}

func ExampleSolver() {
	s := New()
	x := s.NewVar()
	y := s.NewVar()
	s.AddClause(MkLit(x, false), MkLit(y, false)) // x || y
	s.AddClause(MkLit(x, true))                   // !x
	fmt.Println(s.Solve())
	fmt.Println(s.Model()[y])
	// Output:
	// sat
	// true
}

func BenchmarkPigeonhole5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		n := 5
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			lits := make([]Lit, n)
			for j := 0; j < n; j++ {
				lits[j] = MkLit(p[i][j], false)
			}
			s.AddClause(lits...)
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= n; i++ {
				for k := i + 1; k <= n; k++ {
					s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
				}
			}
		}
		if s.Solve() != Unsat {
			b.Fatal("pigeonhole should be unsat")
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		s := New()
		n := 50
		for v := 0; v < n; v++ {
			s.NewVar()
		}
		for k := 0; k < 180; k++ {
			s.AddClause(
				MkLit(rng.Intn(n)+1, rng.Intn(2) == 0),
				MkLit(rng.Intn(n)+1, rng.Intn(2) == 0),
				MkLit(rng.Intn(n)+1, rng.Intn(2) == 0),
			)
		}
		s.Solve()
	}
}
