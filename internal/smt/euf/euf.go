// Package euf implements a congruence-closure decision procedure for the
// theory of equality with uninterpreted functions (EUF). The smt package
// over-approximates nonlinear arithmetic by treating products as
// uninterpreted applications; Ackermann expansion covers the common case,
// and this solver provides the general decision procedure (and a test
// oracle for the expansion).
//
// The implementation is the classic Downey-Sethi-Tarjan / Nelson-Oppen
// congruence closure: hash-consed term DAG, union-find over equivalence
// classes, and congruence propagation through parent lists.
package euf

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a hash-consed term: a constant/variable (no Args) or a function
// application. Terms must be created through a Solver's Var/Const/Apply so
// that structural sharing holds.
type Term struct {
	op   string
	args []*Term
	id   int
}

// Op returns the head symbol.
func (t *Term) Op() string { return t.op }

// Args returns the argument terms.
func (t *Term) Args() []*Term { return t.args }

func (t *Term) String() string {
	if len(t.args) == 0 {
		return t.op
	}
	parts := make([]string, len(t.args))
	for i, a := range t.args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", t.op, strings.Join(parts, ","))
}

// Solver decides conjunctions of equalities and disequalities over terms.
type Solver struct {
	terms map[string]*Term
	all   []*Term

	parent  []int // union-find
	rank    []int
	parents [][]*Term // class representative -> application terms using it

	diseqs [][2]*Term

	// sigs maps the signature (op + representative ids of args) of every
	// application to its representative application term.
	sigs map[string]*Term
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{
		terms: make(map[string]*Term),
		sigs:  make(map[string]*Term),
	}
}

func termKey(op string, args []*Term) string {
	var b strings.Builder
	b.WriteString(op)
	for _, a := range args {
		fmt.Fprintf(&b, "/%d", a.id)
	}
	return b.String()
}

// mk hash-conses a term.
func (s *Solver) mk(op string, args []*Term) *Term {
	k := termKey(op, args)
	if t, ok := s.terms[k]; ok {
		return t
	}
	t := &Term{op: op, args: args, id: len(s.all)}
	s.terms[k] = t
	s.all = append(s.all, t)
	s.parent = append(s.parent, t.id)
	s.rank = append(s.rank, 0)
	s.parents = append(s.parents, nil)
	for _, a := range args {
		r := s.find(a.id)
		s.parents[r] = append(s.parents[r], t)
	}
	// Congruence: an existing application with the same signature is equal.
	if len(args) > 0 {
		sig := s.signature(t)
		if u, ok := s.sigs[sig]; ok {
			s.merge(t, u)
		} else {
			s.sigs[sig] = t
		}
	}
	return t
}

// Var returns the variable/constant term with the given name.
func (s *Solver) Var(name string) *Term { return s.mk(name, nil) }

// Apply returns the application op(args...).
func (s *Solver) Apply(op string, args ...*Term) *Term {
	return s.mk(op, append([]*Term(nil), args...))
}

func (s *Solver) find(i int) int {
	for s.parent[i] != i {
		s.parent[i] = s.parent[s.parent[i]]
		i = s.parent[i]
	}
	return i
}

func (s *Solver) signature(t *Term) string {
	var b strings.Builder
	b.WriteString(t.op)
	for _, a := range t.args {
		fmt.Fprintf(&b, "/%d", s.find(a.id))
	}
	return b.String()
}

// merge unions the classes of a and b, propagating congruences.
func (s *Solver) merge(a, b *Term) {
	ra, rb := s.find(a.id), s.find(b.id)
	if ra == rb {
		return
	}
	// Union by rank.
	if s.rank[ra] < s.rank[rb] {
		ra, rb = rb, ra
	}
	if s.rank[ra] == s.rank[rb] {
		s.rank[ra]++
	}
	// Collect the applications whose signatures change.
	moved := s.parents[rb]
	s.parent[rb] = ra
	s.parents[ra] = append(s.parents[ra], moved...)
	s.parents[rb] = nil
	// Re-sign moved parents and the parents of the absorbed class; any
	// signature collision triggers a recursive merge.
	var pending [][2]*Term
	for _, p := range moved {
		sig := s.signature(p)
		if u, ok := s.sigs[sig]; ok {
			if s.find(u.id) != s.find(p.id) {
				pending = append(pending, [2]*Term{p, u})
			}
		} else {
			s.sigs[sig] = p
		}
	}
	for _, pr := range pending {
		s.merge(pr[0], pr[1])
	}
}

// AssertEq asserts a = b.
func (s *Solver) AssertEq(a, b *Term) { s.merge(a, b) }

// AssertNe asserts a != b.
func (s *Solver) AssertNe(a, b *Term) { s.diseqs = append(s.diseqs, [2]*Term{a, b}) }

// Equal reports whether a and b are currently known equal.
func (s *Solver) Equal(a, b *Term) bool { return s.find(a.id) == s.find(b.id) }

// Check reports whether the asserted constraints are consistent: no
// disequality joins two terms forced equal.
func (s *Solver) Check() bool {
	for _, d := range s.diseqs {
		if s.find(d[0].id) != s.find(d[1].id) {
			continue
		}
		return false
	}
	return true
}

// Classes returns the current equivalence classes (sorted term strings),
// for debugging and tests.
func (s *Solver) Classes() [][]string {
	groups := make(map[int][]string)
	for _, t := range s.all {
		r := s.find(t.id)
		groups[r] = append(groups[r], t.String())
	}
	var out [][]string
	for _, g := range groups {
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
