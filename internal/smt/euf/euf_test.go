package euf

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestBasicEquality(t *testing.T) {
	s := NewSolver()
	a, b, c := s.Var("a"), s.Var("b"), s.Var("c")
	s.AssertEq(a, b)
	s.AssertEq(b, c)
	if !s.Equal(a, c) {
		t.Fatalf("transitivity broken")
	}
	if !s.Check() {
		t.Fatalf("consistent set declared inconsistent")
	}
	s.AssertNe(a, c)
	if s.Check() {
		t.Fatalf("a=b=c with a!=c should be inconsistent")
	}
}

func TestCongruence(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	fa := s.Apply("f", a)
	fb := s.Apply("f", b)
	if s.Equal(fa, fb) {
		t.Fatalf("f(a)=f(b) before a=b")
	}
	s.AssertEq(a, b)
	if !s.Equal(fa, fb) {
		t.Fatalf("congruence not propagated")
	}
}

func TestCongruenceChainDeep(t *testing.T) {
	// The classic: f(f(f(a))) = a and f(f(f(f(f(a))))) = a imply f(a) = a.
	s := NewSolver()
	a := s.Var("a")
	f := func(x *Term) *Term { return s.Apply("f", x) }
	f3 := f(f(f(a)))
	f5 := f(f(f(f(f(a)))))
	s.AssertEq(f3, a)
	s.AssertEq(f5, a)
	if !s.Equal(f(a), a) {
		t.Fatalf("f(a) = a not derived")
	}
	s.AssertNe(f(a), a)
	if s.Check() {
		t.Fatalf("inconsistency missed")
	}
}

func TestBinaryCongruence(t *testing.T) {
	s := NewSolver()
	a, b, c, d := s.Var("a"), s.Var("b"), s.Var("c"), s.Var("d")
	g1 := s.Apply("g", a, b)
	g2 := s.Apply("g", c, d)
	s.AssertEq(a, c)
	if s.Equal(g1, g2) {
		t.Fatalf("congruence fired with only one arg equal")
	}
	s.AssertEq(b, d)
	if !s.Equal(g1, g2) {
		t.Fatalf("binary congruence not propagated")
	}
}

func TestHashConsing(t *testing.T) {
	s := NewSolver()
	a := s.Var("a")
	if s.Apply("f", a) != s.Apply("f", a) {
		t.Fatalf("identical terms not shared")
	}
	if s.Var("a") != a {
		t.Fatalf("variables not shared")
	}
}

func TestDisequalityBetweenDistinctClasses(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.AssertNe(a, b)
	if !s.Check() {
		t.Fatalf("a != b alone must be consistent")
	}
}

func TestCommutedProductsViaSharedRepresentation(t *testing.T) {
	// The smt package's Ackermann lemmas make x*y = y*x explicit; with raw
	// EUF, mul(x,y) and mul(y,x) are distinct unless arguments collapse.
	s := NewSolver()
	x, y := s.Var("x"), s.Var("y")
	xy := s.Apply("mul", x, y)
	yx := s.Apply("mul", y, x)
	if s.Equal(xy, yx) {
		t.Fatalf("EUF should not know commutativity")
	}
	s.AssertEq(x, y)
	if !s.Equal(xy, yx) {
		t.Fatalf("after x=y the products must merge")
	}
}

func TestClasses(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.Var("c")
	s.AssertEq(a, b)
	cls := s.Classes()
	if len(cls) != 2 {
		t.Fatalf("classes = %v", cls)
	}
}

// Property: congruence closure agrees with brute-force ground enumeration
// on random small instances. We generate random equalities over a fixed
// term universe, close them by brute force, and compare Equal verdicts.
func TestQuickAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		s := NewSolver()
		vars := []*Term{s.Var("a"), s.Var("b"), s.Var("c")}
		univ := append([]*Term(nil), vars...)
		for _, v := range vars {
			univ = append(univ, s.Apply("f", v))
		}
		for _, v := range vars[:2] {
			univ = append(univ, s.Apply("f", s.Apply("f", v)))
		}
		// Random equalities.
		type eq struct{ a, b int }
		var eqs []eq
		for i := 0; i < 3+rng.Intn(3); i++ {
			e := eq{rng.Intn(len(univ)), rng.Intn(len(univ))}
			eqs = append(eqs, e)
			s.AssertEq(univ[e.a], univ[e.b])
		}
		// Brute force: iterate union-find by hand with congruence via
		// repeated scanning.
		cls := make([]int, len(univ))
		for i := range cls {
			cls[i] = i
		}
		var root func(int) int
		root = func(i int) int {
			for cls[i] != i {
				i = cls[i]
			}
			return i
		}
		union := func(i, j int) {
			ri, rj := root(i), root(j)
			if ri != rj {
				cls[rj] = ri
			}
		}
		for _, e := range eqs {
			union(e.a, e.b)
		}
		// Congruence to fixpoint: f(x) ~ f(y) when x ~ y. We rely on the
		// universe listing f(v) after v and f(f(v)) after f(v).
		argOf := map[int]int{3: 0, 4: 1, 5: 2, 6: 3, 7: 4} // index of f-arg
		for changed := true; changed; {
			changed = false
			for i, ai := range argOf {
				for j, aj := range argOf {
					if i < j && root(ai) == root(aj) && root(i) != root(j) {
						union(i, j)
						changed = true
					}
				}
			}
		}
		for i := range univ {
			for j := range univ {
				want := root(i) == root(j)
				got := s.Equal(univ[i], univ[j])
				if got != want {
					t.Fatalf("trial %d: Equal(%v,%v) = %t, brute force %t\neqs: %v",
						trial, univ[i], univ[j], got, want, eqs)
				}
			}
		}
	}
}

func TestStringRender(t *testing.T) {
	s := NewSolver()
	tm := s.Apply("g", s.Var("a"), s.Apply("f", s.Var("b")))
	if got := tm.String(); got != "g(a,f(b))" {
		t.Fatalf("String = %q", got)
	}
	if tm.Op() != "g" || len(tm.Args()) != 2 {
		t.Fatalf("accessors broken")
	}
}

func ExampleSolver() {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.AssertEq(a, b)
	fmt.Println(s.Equal(s.Apply("f", a), s.Apply("f", b)))
	// Output: true
}
