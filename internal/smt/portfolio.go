package smt

import (
	"sort"
	"strings"
	"sync"

	"circ/internal/expr"
	"circ/internal/smt/sat"
)

// Shared-learning SMT portfolio.
//
// Incremental Sessions solving the same φ (predicate-abstraction re-runs
// the same cube formula across frontier workers, refinement rounds, and
// the targets of a batch) each rediscover the same theory-conflict
// lemmas. The portfolio keeps a bounded pool of those lemmas per φ,
// keyed by the formula's interned ID: a session captures every
// minimised theory conflict its DPLL(T) loop blocks, and later sessions
// on the same φ replay the pooled clauses into their fresh solver right
// after encoding φ — the enumeration starts with the conflicts already
// learned instead of re-deriving them query by query.
//
// Soundness and determinism: a pooled clause is the blocking form of an
// irreducible theory conflict, i.e. a theory-valid lemma over canonical
// atoms (variable names, not expr.IDs — pools survive arena compaction
// of everything but φ itself). Adding valid lemmas can never flip a
// Sat/Unsat verdict; the only verdict they can shift is Unknown (a
// budget artifact), and Sessions already re-derive every incremental
// Unknown with a from-scratch solve that never sees the pool (the
// "opt-out" path). Cached verdicts therefore remain a pure function of
// the formula at any parallelism, pool or no pool.
//
// Bounds: at most maxPoolClauses clauses of at most maxPoolLits literals
// per φ, and at most maxPools formulas; past the caps the pool simply
// stops absorbing (and the pool registry resets), so memory stays O(1)
// per process. Pools are generation-stamped with expr.Generation() and
// are dropped wholesale when the arena is compacted (φ's ID may have
// been tombstoned; dead IDs are never reused, so a stale pool is
// unreachable garbage, not a collision).
const (
	maxPoolClauses = 128  // clauses retained per formula
	maxPoolLits    = 8    // max literals per pooled clause
	maxPools       = 1024 // distinct formulas with pools
)

// pooledLit is one literal of a pooled theory lemma: a canonical atom
// plus the polarity it was *asserted* with in the conflict (the replayed
// clause negates it, exactly like the original blocking clause).
// tAtoms are immutable after interning into a query, so sharing the
// pointer across queries is safe.
type pooledLit struct {
	a   *tAtom
	pos bool
}

type pooledClause struct {
	lits []pooledLit
}

// clausePool is the shared learned-clause pool for one φ. Concurrent
// sessions capture into and replay from it under a single mutex; the
// pool is append-only up to its bound, so replay sees a prefix of a
// deterministic-per-run sequence.
type clausePool struct {
	mu   sync.Mutex
	gen  uint64 // expr.Generation() at creation
	seen map[string]struct{}
	cls  []pooledClause
}

// add captures a minimised theory conflict. Oversized conflicts are
// skipped (long clauses prune little and cost replay time), duplicates
// are dropped, and a full pool stops absorbing.
func (p *clausePool) add(conflict []assertedAtom) {
	if p == nil || len(conflict) == 0 || len(conflict) > maxPoolLits {
		return
	}
	keys := make([]string, len(conflict))
	for i, tl := range conflict {
		if tl.pos {
			keys[i] = "+" + tl.a.key
		} else {
			keys[i] = "-" + tl.a.key
		}
	}
	sort.Strings(keys)
	ck := strings.Join(keys, "|")
	p.mu.Lock()
	if _, dup := p.seen[ck]; !dup && len(p.cls) < maxPoolClauses {
		lits := make([]pooledLit, len(conflict))
		for i, tl := range conflict {
			lits[i] = pooledLit{a: tl.a, pos: tl.pos}
		}
		p.seen[ck] = struct{}{}
		p.cls = append(p.cls, pooledClause{lits: lits})
	}
	p.mu.Unlock()
}

// snapshot returns the pooled clauses for replay.
func (p *clausePool) snapshot() []pooledClause {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]pooledClause, len(p.cls))
	copy(out, p.cls)
	p.mu.Unlock()
	return out
}

// replayClause asserts a pooled lemma into q, interning its atoms (and
// allocating their SAT variables) as needed. Replayed atoms that do not
// occur in φ are unconstrained extra theory atoms — sound, because the
// theory check covers whatever the SAT model asserts of them. It
// returns false when the clause database became unsatisfiable — with
// valid lemmas that means φ itself is unsatisfiable.
func (q *query) replayClause(cl pooledClause) bool {
	lits := make([]sat.Lit, 0, len(cl.lits))
	for _, pl := range cl.lits {
		id, ok := q.atomID[pl.a.key]
		if !ok {
			id = len(q.atoms)
			q.atoms = append(q.atoms, pl.a)
			q.atomID[pl.a.key] = id
			q.atomV[id] = q.solver.NewVar()
		}
		// Same construction as the original blocking clause in dpll:
		// the clause holds the negation of each asserted literal.
		lits = append(lits, sat.MkLit(q.atomV[id], pl.pos))
	}
	return q.solver.AddClause(lits...)
}

// pool returns the learned-clause pool for phi, creating it on first
// use. A pool stamped with an older arena generation is replaced (its
// clauses referenced a pre-compaction world; they are still name-based
// and thus valid, but the wholesale reset keeps the invariant trivial).
func (c *CachedChecker) pool(phi expr.ID) *clausePool {
	gen := expr.Generation()
	core := c.core
	core.poolMu.Lock()
	defer core.poolMu.Unlock()
	if core.pools == nil {
		core.pools = make(map[expr.ID]*clausePool)
	}
	p := core.pools[phi]
	if p != nil && p.gen == gen {
		return p
	}
	if p == nil && len(core.pools) >= maxPools {
		// The registry is a cache; resetting it wholesale is the simplest
		// bound that cannot starve any particular φ forever.
		core.pools = make(map[expr.ID]*clausePool)
	}
	p = &clausePool{gen: gen, seen: make(map[string]struct{})}
	core.pools[phi] = p
	return p
}

// SweepDead drops cached verdicts for tombstoned formulas and every
// stale clause pool after an arena compaction. The daemon calls this
// right after expr.Compact, with no analyses in flight. It returns the
// number of cache entries removed.
func (c *CachedChecker) SweepDead() (removed int) {
	gen := expr.Generation()
	for i := range c.core.shards {
		sh := &c.core.shards[i]
		sh.mu.Lock()
		for id := range sh.m {
			if !expr.Live(id) {
				delete(sh.m, id)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	c.core.poolMu.Lock()
	for id, p := range c.core.pools {
		if p.gen != gen || !expr.Live(id) {
			delete(c.core.pools, id)
		}
	}
	c.core.poolMu.Unlock()
	return removed
}
