package smt

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"circ/internal/expr"
)

// TestSlowLogDisabledByDefault: with no threshold set, nothing is
// captured regardless of solve durations.
func TestSlowLogDisabledByDefault(t *testing.T) {
	c := NewCachedChecker()
	for _, f := range queryMix(5) {
		c.Sat(f)
	}
	if got := c.SlowQueries(); len(got) != 0 {
		t.Fatalf("slow log captured %d entries with capture disabled", len(got))
	}
	if c.Stats().SlowQueries != 0 {
		t.Fatalf("SlowQueries counter = %d with capture disabled", c.Stats().SlowQueries)
	}
}

// TestSlowLogCapture: a 1ns threshold makes every miss-solve slow; the
// log records direct and session queries newest first with attribution.
func TestSlowLogCapture(t *testing.T) {
	c := NewCachedChecker()
	c.SetSlowQueryThreshold(time.Nanosecond)
	if c.SlowQueryThreshold() != time.Nanosecond {
		t.Fatalf("threshold = %v, want 1ns", c.SlowQueryThreshold())
	}
	queries := queryMix(3)
	for _, f := range queries {
		c.Sat(f)
	}
	// Cache hits are never slow: re-running the same queries must not
	// grow the log.
	before := c.Stats().SlowQueries
	for _, f := range queries {
		c.Sat(f)
	}
	if after := c.Stats().SlowQueries; after != before {
		t.Fatalf("cache hits grew the slow log: %d -> %d", before, after)
	}

	x := expr.V("x")
	phi := expr.Intern(expr.Gt(x, expr.Num(0)))
	sess := c.NewSession(phi)
	sess.SatConj(expr.Intern(expr.Lt(x, expr.Num(10))))

	entries := c.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("no slow queries captured at a 1ns threshold")
	}
	if int64(len(entries)) != c.Stats().SlowQueries {
		t.Fatalf("retained %d entries, counter says %d", len(entries), c.Stats().SlowQueries)
	}
	var sawDirect, sawSession bool
	for i, e := range entries {
		if i > 0 && e.Seq >= entries[i-1].Seq {
			t.Fatalf("entries not newest-first: seq %d at %d after %d", e.Seq, i, entries[i-1].Seq)
		}
		if e.FormulaID == 0 || e.At.IsZero() || e.DurationMS < 0 {
			t.Fatalf("malformed entry: %+v", e)
		}
		switch e.Kind {
		case "direct":
			sawDirect = true
		case "session":
			sawSession = true
			if e.CubeKey == "" {
				t.Fatalf("session entry missing cube key: %+v", e)
			}
		default:
			t.Fatalf("unknown kind %q", e.Kind)
		}
	}
	if !sawDirect || !sawSession {
		t.Fatalf("want both direct and session entries, got direct=%v session=%v", sawDirect, sawSession)
	}
}

// TestSlowLogConcurrent hammers the slow log from concurrent solvers and
// readers — the -race guard for record-vs-snapshot interleavings.
func TestSlowLogConcurrent(t *testing.T) {
	c := NewCachedChecker()
	c.SetSlowQueryThreshold(time.Nanosecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			x := expr.V(fmt.Sprintf("x%d", w))
			for i := 0; i < 50; i++ {
				c.Sat(expr.Conj(
					expr.Gt(x, expr.Num(int64(i))),
					expr.Lt(x, expr.Num(int64(i)+2))))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				for j, e := range c.SlowQueries() {
					if j > 0 && e.Seq == 0 {
						t.Error("snapshot saw an unstamped entry")
						return
					}
				}
				c.Stats()
			}
		}()
	}
	wg.Wait()
	if c.Stats().SlowQueries == 0 {
		t.Fatal("concurrent run captured nothing at a 1ns threshold")
	}
}

// TestSlowLogRingBound: the ring retains the newest slowLogCap entries
// and keeps counting the rest.
func TestSlowLogRingBound(t *testing.T) {
	var l slowLog
	for i := 0; i < slowLogCap+40; i++ {
		l.record(SlowQuery{FormulaID: uint64(i + 1)})
	}
	if got := l.total.Load(); got != slowLogCap+40 {
		t.Fatalf("total = %d, want %d", got, slowLogCap+40)
	}
	snap := l.snapshot()
	if len(snap) != slowLogCap {
		t.Fatalf("retained %d, want %d", len(snap), slowLogCap)
	}
	if snap[0].Seq != slowLogCap+40 {
		t.Fatalf("newest seq = %d, want %d", snap[0].Seq, slowLogCap+40)
	}
	if snap[len(snap)-1].Seq != 41 {
		t.Fatalf("oldest retained seq = %d, want 41", snap[len(snap)-1].Seq)
	}
}

// TestTruncateKey bounds cube keys for display.
func TestTruncateKey(t *testing.T) {
	if got := truncateKey("short"); got != "short" {
		t.Fatalf("short key mangled: %q", got)
	}
	long := make([]byte, cubeKeyMax+50)
	for i := range long {
		long[i] = 'k'
	}
	got := truncateKey(string(long))
	if len(got) <= cubeKeyMax || len(got) > cubeKeyMax+4 {
		t.Fatalf("truncated length %d", len(got))
	}
}
