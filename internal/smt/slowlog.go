package smt

import (
	"sync"
	"sync/atomic"
	"time"
)

// Slow-query log: a bounded ring of the SMT solves that exceeded a
// configurable wall-clock threshold, the flight deck's answer to "which
// formulas is this daemon actually spending its time on?". Capture sits
// on the miss-solve path only (cache hits cannot be slow), is disabled
// until a threshold is set, and records wall-clock observations — so the
// log lives alongside the byte-deterministic journal, never inside it.

// slowLogCap bounds the ring. 256 entries of ~200 bytes keeps the debug
// endpoint cheap while covering far more history than a human reads.
const slowLogCap = 256

// cubeKeyMax truncates cube keys: φ renders to its full canonical key,
// which for large cube formulas runs to kilobytes nobody scrolls.
const cubeKeyMax = 160

// SlowQuery is one logged solve. FormulaID is the interned ID of the
// full query formula (φ ∧ lit for session queries); CubeKey is the
// canonical key of the session's fixed cube φ, truncated for display.
type SlowQuery struct {
	Seq             int64     `json:"seq"`
	At              time.Time `json:"at"`
	FormulaID       uint64    `json:"formula_id"`
	Kind            string    `json:"kind"` // "direct" or "session"
	CubeKey         string    `json:"cube_key,omitempty"`
	DurationMS      float64   `json:"duration_ms"`
	Result          string    `json:"result"`
	ClausesReplayed int       `json:"clauses_replayed,omitempty"`
	ClausesLearned  int       `json:"clauses_learned,omitempty"`
	TraceID         string    `json:"trace_id,omitempty"`
}

// slowLog is the bounded ring plus its configuration. Threshold zero
// (the zero value) disables capture entirely, so un-configured checkers
// pay one atomic load per miss-solve.
type slowLog struct {
	threshold atomic.Int64 // nanoseconds; 0 = disabled
	total     atomic.Int64 // entries ever recorded (including overwritten)
	seq       atomic.Int64

	mu   sync.Mutex
	buf  []SlowQuery // ring storage, grown up to slowLogCap
	next int         // ring write cursor once buf is full
}

func (l *slowLog) record(q SlowQuery) {
	q.Seq = l.seq.Add(1)
	q.At = time.Now()
	l.total.Add(1)
	l.mu.Lock()
	if len(l.buf) < slowLogCap {
		l.buf = append(l.buf, q)
	} else {
		l.buf[l.next] = q
		l.next = (l.next + 1) % slowLogCap
	}
	l.mu.Unlock()
}

// snapshot returns the retained entries, newest first.
func (l *slowLog) snapshot() []SlowQuery {
	l.mu.Lock()
	out := make([]SlowQuery, 0, len(l.buf))
	// Oldest-first ring order is [next, len) then [0, next).
	for i := l.next; i < len(l.buf); i++ {
		out = append(out, l.buf[i])
	}
	for i := 0; i < l.next; i++ {
		out = append(out, l.buf[i])
	}
	l.mu.Unlock()
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// SetSlowQueryThreshold enables slow-query capture for solves at or above
// d. Zero or negative disables capture. The threshold is process-wide:
// every view over the same cache core shares it.
func (c *CachedChecker) SetSlowQueryThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.core.slow.threshold.Store(int64(d))
}

// SlowQueryThreshold returns the active capture threshold (0: disabled).
func (c *CachedChecker) SlowQueryThreshold() time.Duration {
	return time.Duration(c.core.slow.threshold.Load())
}

// SlowQueries returns the retained slow-query entries, newest first.
func (c *CachedChecker) SlowQueries() []SlowQuery {
	return c.core.slow.snapshot()
}

// SlowQueryCount returns how many slow queries were ever recorded,
// including entries the bounded ring has since overwritten.
func (c *CachedChecker) SlowQueryCount() int64 {
	return c.core.slow.total.Load()
}

// truncateKey bounds a canonical formula key for display.
func truncateKey(k string) string {
	if len(k) <= cubeKeyMax {
		return k
	}
	return k[:cubeKeyMax] + "…"
}
