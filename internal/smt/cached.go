package smt

import (
	"sync"
	"sync/atomic"
	"time"

	"circ/internal/expr"
	"circ/internal/telemetry"
)

// numShards is the cache shard count. 64 keeps lock contention negligible
// for the worker-pool sizes the analysis engine runs with (≤ GOMAXPROCS
// frontier workers plus one goroutine per (thread, variable) pair) while
// staying cheap to allocate per process.
const numShards = 64

type cacheShard struct {
	mu sync.RWMutex
	m  map[expr.ID]Result
	// inflight single-flights concurrent misses on the same formula:
	// the first goroutine solves, the rest wait on done and read r — the
	// "solved once and broadcast" half of the SMT portfolio. r is written
	// before done is closed, so waiters read it race-free.
	inflight map[expr.ID]*inflightSolve
}

type inflightSolve struct {
	done chan struct{}
	r    Result
}

// CachedChecker is a process-wide memoising SMT layer that is safe for
// concurrent use. Results are keyed by interned formula ID — equality and
// shard selection are integer operations, and a cache hit performs no
// string construction and no allocation — hashed across mutex-guarded
// shards with hit/miss counters. One CachedChecker is meant to be shared
// by every analysis in a process — across frontier workers of one
// reachability run, across refinement rounds, and across the (thread,
// variable) pairs of a batch check — so identical predicate-abstraction
// cubes and validity queries are never re-discharged.
//
// Two goroutines racing on the same uncached formula may both solve it;
// the solver is deterministic, so both compute the same result and the
// duplicated work is bounded by the race window. This keeps the hot hit
// path a single RLock with no per-key latching.
//
// The struct is split in two: cacheCore owns the shared mutable state
// (shards, counters, pools, the slow-query log) and is held by pointer,
// while CachedChecker itself is a cheap copyable *view* that adds
// telemetry bindings. WithTracer derives a view with a different span
// sink over the same core, which is how the daemon gives every job its
// own trace while all jobs keep sharing one verdict cache.
type cacheCore struct {
	inner    *Checker // solving core; its private cache is bypassed
	shards   [numShards]cacheShard
	hits     atomic.Int64
	misses   atomic.Int64
	fastpath atomic.Int64 // queries folded to constants at intern time
	shared   atomic.Int64 // pooled clauses replayed into sessions

	// Shared-learning portfolio: per-formula learned-clause pools (see
	// portfolio.go).
	poolMu sync.Mutex
	pools  map[expr.ID]*clausePool

	// Slow-query log (see slowlog.go). Threshold zero disables capture.
	slow slowLog
}

// CachedChecker is the concurrency-safe view over a shared cacheCore.
type CachedChecker struct {
	core *cacheCore

	// Telemetry, attached with Instrument. All handles are nil-safe, so an
	// uninstrumented checker pays only nil checks.
	cHits, cMisses, cFast  *telemetry.Counter
	cSat, cUnsat, cUnknown *telemetry.Counter
	cShared, cSlow         *telemetry.Counter
	hSolve                 *telemetry.Histogram
	tracer                 *telemetry.Tracer
}

// Instrument attaches a metrics registry and an optional tracer. Cache
// hits and misses feed counters, and every cache miss (an actual solve)
// records its duration in the "smt.solve" histogram, a per-verdict
// counter, and — when a tracer is attached — an "smt.solve" span. Call it
// before the checker is shared with concurrent solvers.
func (c *CachedChecker) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	c.cHits = reg.Counter("smt.cache.hits")
	c.cMisses = reg.Counter("smt.cache.misses")
	c.cFast = reg.Counter("smt.cache.fastpath")
	c.cSat = reg.Counter("smt.sat")
	c.cUnsat = reg.Counter("smt.unsat")
	c.cUnknown = reg.Counter("smt.unknown")
	c.cShared = reg.Counter("smt.portfolio.clauses_shared")
	c.cSlow = reg.Counter("smt.slow_queries")
	if reg != nil {
		c.hSolve = reg.Histogram("smt.solve")
	}
	c.tracer = tr
}

// WithTracer returns a view over the same cache core whose solve spans
// and slow-query attribution go to tr. Counters, the verdict cache, the
// clause pools, and the slow-query log stay shared with the parent view,
// so deriving a per-job view costs one small allocation and changes no
// cache behavior.
func (c *CachedChecker) WithTracer(tr *telemetry.Tracer) *CachedChecker {
	view := *c
	view.tracer = tr
	return &view
}

// instrumented runs one cache-miss solve under the attached telemetry:
// duration histogram, per-verdict counter, a detached "smt.solve" span
// (cache misses are the only real solver work, so the trace stays
// proportionate to where time goes), and — past the configured threshold
// — a slow-query log entry. sess is non-nil for incremental session
// queries and supplies the cube key and clause-sharing deltas.
func (c *CachedChecker) instrumented(qid expr.ID, sess *Session, solve func() Result) Result {
	slowNS := c.core.slow.threshold.Load()
	if c.hSolve == nil && c.tracer == nil && slowNS == 0 {
		return solve()
	}
	sp := c.tracer.StartDetached("smt.solve", "smt")
	var replayedBefore, learnedBefore int
	if sess != nil {
		replayedBefore, learnedBefore = sess.replayed, sess.learned
	}
	start := time.Now()
	r := solve()
	dur := time.Since(start)
	c.hSolve.Observe(dur)
	sp.Annotate("result", r.String())
	sp.Annotate("formula_id", uint64(qid))
	sp.End()
	switch r {
	case Sat:
		c.cSat.Inc()
	case Unsat:
		c.cUnsat.Inc()
	default:
		c.cUnknown.Inc()
	}
	if slowNS > 0 && dur >= time.Duration(slowNS) {
		q := SlowQuery{
			FormulaID:  uint64(qid),
			Kind:       "direct",
			DurationMS: float64(dur.Nanoseconds()) / 1e6,
			Result:     r.String(),
			TraceID:    c.tracer.TraceContext().TraceID,
		}
		if sess != nil {
			q.Kind = "session"
			q.CubeKey = truncateKey(expr.IDKey(sess.phi))
			q.ClausesReplayed = sess.replayed - replayedBefore
			q.ClausesLearned = sess.learned - learnedBefore
		}
		c.core.slow.record(q)
		c.cSlow.Inc()
	}
	return r
}

// CacheStats is a point-in-time view of a CachedChecker's counters.
type CacheStats struct {
	Hits          int64
	Misses        int64
	FastPath      int64 // queries answered syntactically at intern time
	ClausesShared int64 // pooled lemmas replayed into incremental sessions
	SlowQueries   int64 // solves that exceeded the slow-query threshold
	Solver        Stats // underlying solve-path work (queries, theory checks)
}

// HitRate returns the fraction of cache-consulting queries answered from
// the cache, in [0, 1]; 0 when no queries were issued. Fast-path queries
// never reach the cache and are excluded.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCachedChecker returns a concurrency-safe memoising checker with
// default budgets.
func NewCachedChecker() *CachedChecker {
	core := &cacheCore{inner: NewChecker()}
	for i := range core.shards {
		core.shards[i].m = make(map[expr.ID]Result)
	}
	return &CachedChecker{core: core}
}

// Stats returns a snapshot of the cache and solver counters.
func (c *CachedChecker) Stats() CacheStats {
	return CacheStats{
		Hits:          c.core.hits.Load(),
		Misses:        c.core.misses.Load(),
		FastPath:      c.core.fastpath.Load(),
		ClausesShared: c.core.shared.Load(),
		SlowQueries:   c.core.slow.total.Load(),
		Solver:        c.core.inner.Snapshot(),
	}
}

// CacheSize returns the number of distinct formulas with cached verdicts.
// Unlike the hit/miss split — which depends on how concurrent workers
// interleave on uncached formulas — the cache *content* is a deterministic
// function of the queries the analysis issues, so size deltas are safe to
// journal from frontier-parallel phases.
func (c *CachedChecker) CacheSize() int {
	n := 0
	for i := range c.core.shards {
		sh := &c.core.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// PublishStats writes the current cache and solver counters into reg as
// gauges, so metrics snapshots (Report.Metrics, BatchReport.Metrics)
// carry the solver internals — queries, theory checks, SAT conflicts —
// not just the cache hit rate. Queries issued through incremental
// Sessions land in the same counters as direct SatID calls.
func (c *CachedChecker) PublishStats(reg *telemetry.Registry) {
	st := c.Stats()
	reg.Gauge("smt.cache.hits").Set(st.Hits)
	reg.Gauge("smt.cache.misses").Set(st.Misses)
	reg.Gauge("smt.cache.fastpath").Set(st.FastPath)
	reg.Gauge("smt.cache.size").Set(int64(c.CacheSize()))
	reg.Gauge("smt.portfolio.clauses_shared").Set(st.ClausesShared)
	reg.Gauge("smt.queries").Set(st.Solver.Queries)
	reg.Gauge("smt.solver.cache_hits").Set(st.Solver.CacheHits)
	reg.Gauge("smt.theory.checks").Set(st.Solver.TheoryChecks)
	reg.Gauge("smt.sat.conflicts").Set(st.Solver.SatConflicts)
}

// shard maps an interned formula to its cache shard. IDs are dense and
// assigned in intern order, so the low bits distribute uniformly; no
// arena access or hashing is needed on the hit path.
func (c *CachedChecker) shard(id expr.ID) *cacheShard {
	return &c.core.shards[uint32(id)%numShards]
}

// Sat reports the satisfiability of formula f, consulting the shared
// cache first. If f is already in canonical interned form (for example a
// formula built by the interning constructors, or obtained from FromID),
// the lookup allocates nothing.
func (c *CachedChecker) Sat(f expr.Expr) Result {
	if id, ok := expr.LookupID(f); ok {
		return c.SatID(id)
	}
	return c.SatID(expr.Intern(f))
}

// SatID reports the satisfiability of the interned formula id. This is
// the hot path: a constant check, one shard RLock, and a map probe.
func (c *CachedChecker) SatID(id expr.ID) Result {
	if v, ok := expr.IDBoolValue(id); ok {
		c.core.fastpath.Add(1)
		c.cFast.Inc()
		if v {
			return Sat
		}
		return Unsat
	}
	sh := c.shard(id)
	sh.mu.RLock()
	r, ok := sh.m[id]
	sh.mu.RUnlock()
	if ok {
		c.core.hits.Add(1)
		c.cHits.Inc()
		return r
	}
	// Miss: single-flight the solve. Re-check under the write lock, then
	// either join an in-flight solve of the same formula or become its
	// leader. Followers count as hits — they do no solver work.
	sh.mu.Lock()
	if r, ok := sh.m[id]; ok {
		sh.mu.Unlock()
		c.core.hits.Add(1)
		c.cHits.Inc()
		return r
	}
	if f, ok := sh.inflight[id]; ok {
		sh.mu.Unlock()
		<-f.done
		c.core.hits.Add(1)
		c.cHits.Inc()
		return f.r
	}
	f := &inflightSolve{done: make(chan struct{})}
	if sh.inflight == nil {
		sh.inflight = make(map[expr.ID]*inflightSolve)
	}
	sh.inflight[id] = f
	sh.mu.Unlock()
	c.core.misses.Add(1)
	c.cMisses.Inc()
	r = c.instrumented(id, nil, func() Result {
		r, _ := c.core.inner.solve(id, false)
		return r
	})
	f.r = r
	sh.mu.Lock()
	sh.m[id] = r
	delete(sh.inflight, id)
	sh.mu.Unlock()
	close(f.done)
	return r
}

// SatModel reports satisfiability and, when Sat, an integer model. Models
// are not cached (only the verdict is), so the query always solves.
func (c *CachedChecker) SatModel(f expr.Expr) (Result, map[string]int64) {
	id := expr.Intern(f)
	var m map[string]int64
	r := c.instrumented(id, nil, func() Result {
		r, vals := c.core.inner.solve(id, true)
		m = vals
		return r
	})
	sh := c.shard(id)
	sh.mu.Lock()
	sh.m[id] = r
	sh.mu.Unlock()
	return r, m
}

// Valid reports whether f is valid. Unknown degrades to false ("cannot
// prove"), the sound direction for abstraction.
func (c *CachedChecker) Valid(f expr.Expr) bool {
	return c.SatID(expr.InternNot(expr.Intern(f))) == Unsat
}

// Implies reports whether a entails b.
func (c *CachedChecker) Implies(a, b expr.Expr) bool {
	return c.SatID(expr.IDConj(expr.Intern(a), expr.InternNot(expr.Intern(b)))) == Unsat
}

// Equivalent reports whether a and b are logically equivalent.
func (c *CachedChecker) Equivalent(a, b expr.Expr) bool {
	return c.Implies(a, b) && c.Implies(b, a)
}

// UnsatCore returns the indices of a minimal (irreducible) subset of parts
// whose conjunction is unsatisfiable.
func (c *CachedChecker) UnsatCore(parts []expr.Expr) (core []int, ok bool) {
	return unsatCore(c, parts)
}

// NewSession opens an incremental session for conjunctions with phi. The
// session itself is single-goroutine, but it reads and populates the
// shared sharded cache, so concurrent sessions (one per frontier worker)
// still share verdicts.
func (c *CachedChecker) NewSession(phi expr.ID) *Session {
	return &Session{
		core: c.core.inner,
		phi:  phi,
		lookup: func(id expr.ID) (Result, bool) {
			sh := c.shard(id)
			sh.mu.RLock()
			r, ok := sh.m[id]
			sh.mu.RUnlock()
			return r, ok
		},
		store: func(id expr.ID, r Result) {
			sh := c.shard(id)
			sh.mu.Lock()
			sh.m[id] = r
			sh.mu.Unlock()
		},
		onHit: func() {
			c.core.hits.Add(1)
			c.cHits.Inc()
		},
		onMiss: func() {
			c.core.misses.Add(1)
			c.cMisses.Inc()
		},
		onFast: func() {
			c.core.fastpath.Add(1)
			c.cFast.Inc()
		},
		run: c.instrumented,
		solveFresh: func(id expr.ID) Result {
			r, _ := c.core.inner.solve(id, false)
			return r
		},
		getPool: func() *clausePool { return c.pool(phi) },
		onShared: func(n int) {
			c.core.shared.Add(int64(n))
			c.cShared.Add(int64(n))
		},
	}
}

// Compile-time interface checks.
var (
	_ Solver = (*Checker)(nil)
	_ Solver = (*CachedChecker)(nil)
)
