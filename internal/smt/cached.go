package smt

import (
	"sync"
	"sync/atomic"
	"time"

	"circ/internal/expr"
	"circ/internal/telemetry"
)

// numShards is the cache shard count. 64 keeps lock contention negligible
// for the worker-pool sizes the analysis engine runs with (≤ GOMAXPROCS
// frontier workers plus one goroutine per (thread, variable) pair) while
// staying cheap to allocate per process.
const numShards = 64

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]Result
}

// CachedChecker is a process-wide memoising SMT layer that is safe for
// concurrent use. Results are keyed by the canonicalized formula key (the
// same canonical form Checker caches on), hashed across mutex-guarded
// shards, with hit/miss counters. One CachedChecker is meant to be shared
// by every analysis in a process — across frontier workers of one
// reachability run, across refinement rounds, and across the (thread,
// variable) pairs of a batch check — so identical predicate-abstraction
// cubes and validity queries are never re-discharged.
//
// Two goroutines racing on the same uncached formula may both solve it;
// the solver is deterministic, so both compute the same result and the
// duplicated work is bounded by the race window. This keeps the hot hit
// path a single RLock with no per-key latching.
type CachedChecker struct {
	inner  *Checker // solving core; its private cache is bypassed
	shards [numShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64

	// Telemetry, attached with Instrument. All handles are nil-safe, so an
	// uninstrumented checker pays only nil checks.
	cHits, cMisses         *telemetry.Counter
	cSat, cUnsat, cUnknown *telemetry.Counter
	hSolve                 *telemetry.Histogram
	tracer                 *telemetry.Tracer
}

// Instrument attaches a metrics registry and an optional tracer. Cache
// hits and misses feed counters, and every cache miss (an actual solve)
// records its duration in the "smt.solve" histogram, a per-verdict
// counter, and — when a tracer is attached — an "smt.solve" span. Call it
// before the checker is shared with concurrent solvers.
func (c *CachedChecker) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	c.cHits = reg.Counter("smt.cache.hits")
	c.cMisses = reg.Counter("smt.cache.misses")
	c.cSat = reg.Counter("smt.sat")
	c.cUnsat = reg.Counter("smt.unsat")
	c.cUnknown = reg.Counter("smt.unknown")
	if reg != nil {
		c.hSolve = reg.Histogram("smt.solve")
	}
	c.tracer = tr
}

// solveInstrumented runs one cache-miss solve under the attached
// telemetry: duration histogram, per-verdict counter, and a detached
// "smt.solve" span (cache misses are the only real solver work, so the
// trace stays proportionate to where time goes).
func (c *CachedChecker) solveInstrumented(f expr.Expr, wantModel bool) (Result, map[string]int64) {
	if c.hSolve == nil && c.tracer == nil {
		return c.inner.solve(f, wantModel)
	}
	sp := c.tracer.StartDetached("smt.solve", "smt")
	start := time.Now()
	r, m := c.inner.solve(f, wantModel)
	c.hSolve.Observe(time.Since(start))
	sp.Annotate("result", r.String())
	sp.End()
	switch r {
	case Sat:
		c.cSat.Inc()
	case Unsat:
		c.cUnsat.Inc()
	default:
		c.cUnknown.Inc()
	}
	return r, m
}

// CacheStats is a point-in-time view of a CachedChecker's counters.
type CacheStats struct {
	Hits   int64
	Misses int64
	Solver Stats // underlying solve-path work (queries, theory checks)
}

// HitRate returns the fraction of queries answered from the cache, in
// [0, 1]; 0 when no queries were issued.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCachedChecker returns a concurrency-safe memoising checker with
// default budgets.
func NewCachedChecker() *CachedChecker {
	c := &CachedChecker{inner: NewChecker()}
	for i := range c.shards {
		c.shards[i].m = make(map[string]Result)
	}
	return c
}

// Stats returns a snapshot of the cache and solver counters.
func (c *CachedChecker) Stats() CacheStats {
	return CacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Solver: c.inner.Snapshot(),
	}
}

// shardIndex is FNV-1a over the canonical key, reduced to a shard.
func shardIndex(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % numShards
}

// Sat reports the satisfiability of formula f, consulting the shared
// cache first.
func (c *CachedChecker) Sat(f expr.Expr) Result {
	f = expr.Simplify(f)
	key := f.Key()
	sh := &c.shards[shardIndex(key)]
	sh.mu.RLock()
	r, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		c.cHits.Inc()
		return r
	}
	c.misses.Add(1)
	c.cMisses.Inc()
	r, _ = c.solveInstrumented(f, false)
	sh.mu.Lock()
	sh.m[key] = r
	sh.mu.Unlock()
	return r
}

// SatModel reports satisfiability and, when Sat, an integer model. Models
// are not cached (only the verdict is), so the query always solves.
func (c *CachedChecker) SatModel(f expr.Expr) (Result, map[string]int64) {
	f = expr.Simplify(f)
	key := f.Key()
	r, m := c.solveInstrumented(f, true)
	sh := &c.shards[shardIndex(key)]
	sh.mu.Lock()
	sh.m[key] = r
	sh.mu.Unlock()
	return r, m
}

// Valid reports whether f is valid. Unknown degrades to false ("cannot
// prove"), the sound direction for abstraction.
func (c *CachedChecker) Valid(f expr.Expr) bool {
	return c.Sat(expr.Negate(f)) == Unsat
}

// Implies reports whether a entails b.
func (c *CachedChecker) Implies(a, b expr.Expr) bool {
	return c.Sat(expr.Conj(a, expr.Negate(b))) == Unsat
}

// Equivalent reports whether a and b are logically equivalent.
func (c *CachedChecker) Equivalent(a, b expr.Expr) bool {
	return c.Implies(a, b) && c.Implies(b, a)
}

// UnsatCore returns the indices of a minimal (irreducible) subset of parts
// whose conjunction is unsatisfiable.
func (c *CachedChecker) UnsatCore(parts []expr.Expr) (core []int, ok bool) {
	return unsatCore(c, parts)
}

// Compile-time interface checks.
var (
	_ Solver = (*Checker)(nil)
	_ Solver = (*CachedChecker)(nil)
)
