package lang

import (
	"fmt"
	"strings"
)

// Program is a parsed MiniNesC compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
	Threads []*ThreadDecl
}

// Global returns the global declaration with the given name, or nil.
func (p *Program) Global(name string) *GlobalDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Thread returns the thread with the given name, or nil.
func (p *Program) Thread(name string) *ThreadDecl {
	for _, t := range p.Threads {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// GlobalDecl declares a shared integer variable, zero-initialised unless an
// explicit initialiser is given.
type GlobalDecl struct {
	Name string
	Init int64
	Pos  Pos
}

// FuncDecl declares a function. ReturnsValue is true for `int` functions.
// Functions are inlined at CFA construction; recursion is rejected.
type FuncDecl struct {
	Name         string
	Params       []string
	Locals       []*LocalDecl
	Body         *Block
	ReturnsValue bool
	Pos          Pos
}

// ThreadDecl declares a thread body.
type ThreadDecl struct {
	Name   string
	Locals []*LocalDecl
	Body   *Block
	Pos    Pos
}

// LocalDecl declares a thread- or function-local integer variable.
type LocalDecl struct {
	Name string
	Pos  Pos
}

// Block is a statement sequence.
type Block struct {
	Stmts []Stmt
}

// Stmt is a statement node.
type Stmt interface {
	Position() Pos
	isStmt()
}

// SAssign assigns RHS to a variable. RHS may be the nondeterministic
// expression (ANondet), modelling havoc.
type SAssign struct {
	LHS string
	RHS AExpr
	Pos Pos
}

// SIf is a conditional.
type SIf struct {
	Cond AExpr
	Then *Block
	Else *Block // may be nil
	Pos  Pos
}

// SWhile is a loop.
type SWhile struct {
	Cond AExpr
	Body *Block
	Pos  Pos
}

// SAtomic is a nesC atomic section: its body executes without preemption.
type SAtomic struct {
	Body *Block
	Pos  Pos
}

// SChoose is nondeterministic choice among branches.
type SChoose struct {
	Branches []*Block
	Pos      Pos
}

// SSkip is a no-op.
type SSkip struct {
	Pos Pos
}

// SAssume blocks until the condition holds.
type SAssume struct {
	Cond AExpr
	Pos  Pos
}

// SReturn returns from a function; Val is nil for void returns.
type SReturn struct {
	Val AExpr
	Pos Pos
}

// SCall invokes a function for effect.
type SCall struct {
	Call *ACall
	Pos  Pos
}

// SStore writes through a pointer: *Ptr = RHS.
type SStore struct {
	Ptr string
	RHS AExpr
	Pos Pos
}

// SBreak exits the innermost loop.
type SBreak struct {
	Pos Pos
}

// SContinue restarts the innermost loop.
type SContinue struct {
	Pos Pos
}

func (s *SAssign) Position() Pos   { return s.Pos }
func (s *SIf) Position() Pos       { return s.Pos }
func (s *SWhile) Position() Pos    { return s.Pos }
func (s *SAtomic) Position() Pos   { return s.Pos }
func (s *SChoose) Position() Pos   { return s.Pos }
func (s *SSkip) Position() Pos     { return s.Pos }
func (s *SAssume) Position() Pos   { return s.Pos }
func (s *SReturn) Position() Pos   { return s.Pos }
func (s *SCall) Position() Pos     { return s.Pos }
func (s *SStore) Position() Pos    { return s.Pos }
func (s *SBreak) Position() Pos    { return s.Pos }
func (s *SContinue) Position() Pos { return s.Pos }

func (*SAssign) isStmt()   {}
func (*SIf) isStmt()       {}
func (*SWhile) isStmt()    {}
func (*SAtomic) isStmt()   {}
func (*SChoose) isStmt()   {}
func (*SSkip) isStmt()     {}
func (*SAssume) isStmt()   {}
func (*SReturn) isStmt()   {}
func (*SCall) isStmt()     {}
func (*SStore) isStmt()    {}
func (*SBreak) isStmt()    {}
func (*SContinue) isStmt() {}

// AExpr is a surface expression node. Unlike expr.Expr it may contain
// function calls and the nondeterministic '*', which are eliminated during
// CFA construction.
type AExpr interface {
	Position() Pos
	String() string
	isAExpr()
}

// ALit is an integer literal.
type ALit struct {
	Value int64
	Pos   Pos
}

// AVar is a variable reference.
type AVar struct {
	Name string
	Pos  Pos
}

// ANondet is the nondeterministic value '*'.
type ANondet struct {
	Pos Pos
}

// ABin is a binary operation; Op is one of the token kinds Plus, Minus,
// Star, EqEq, NotEq, Lt, Le, Gt, Ge, AndAnd, OrOr.
type ABin struct {
	Op   Kind
	X, Y AExpr
	Pos  Pos
}

// ANot is logical negation.
type ANot struct {
	X   AExpr
	Pos Pos
}

// ANeg is arithmetic negation.
type ANeg struct {
	X   AExpr
	Pos Pos
}

// ACall is a function call.
type ACall struct {
	Name string
	Args []AExpr
	Pos  Pos
}

// AAddr is the address of a global variable, '&g'. Addresses are abstract
// integer constants; only globals may have their address taken (threads do
// not reference each other's locals).
type AAddr struct {
	Name string
	Pos  Pos
}

// ADeref is a pointer dereference, '*p'. The CFA builder expands it into a
// case split over the points-to set computed by the alias analysis.
type ADeref struct {
	Ptr string // the pointer variable
	Pos Pos
}

func (e *ALit) Position() Pos    { return e.Pos }
func (e *AVar) Position() Pos    { return e.Pos }
func (e *ANondet) Position() Pos { return e.Pos }
func (e *ABin) Position() Pos    { return e.Pos }
func (e *ANot) Position() Pos    { return e.Pos }
func (e *ANeg) Position() Pos    { return e.Pos }
func (e *ACall) Position() Pos   { return e.Pos }
func (e *AAddr) Position() Pos   { return e.Pos }
func (e *ADeref) Position() Pos  { return e.Pos }

func (*ALit) isAExpr()    {}
func (*AVar) isAExpr()    {}
func (*ANondet) isAExpr() {}
func (*ABin) isAExpr()    {}
func (*ANot) isAExpr()    {}
func (*ANeg) isAExpr()    {}
func (*ACall) isAExpr()   {}
func (*AAddr) isAExpr()   {}
func (*ADeref) isAExpr()  {}

func (e *ALit) String() string    { return fmt.Sprintf("%d", e.Value) }
func (e *AVar) String() string    { return e.Name }
func (e *ANondet) String() string { return "*" }

func binOpText(op Kind) string {
	switch op {
	case Plus:
		return "+"
	case Minus:
		return "-"
	case Star:
		return "*"
	case EqEq:
		return "=="
	case NotEq:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case AndAnd:
		return "&&"
	case OrOr:
		return "||"
	}
	return op.String()
}

func (e *ABin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.X, binOpText(e.Op), e.Y)
}

func (e *ANot) String() string { return fmt.Sprintf("!%s", e.X) }
func (e *ANeg) String() string { return fmt.Sprintf("-%s", e.X) }

func (e *AAddr) String() string  { return "&" + e.Name }
func (e *ADeref) String() string { return "*" + e.Ptr }

func (e *ACall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}
