package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for MiniNesC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete program from source text and runs semantic
// analysis on the result.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := Analyze(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("%s: expected %s, found %s", t.Pos, k, t)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != EOF {
		switch p.cur().Kind {
		case KwGlobal:
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case KwThread:
			t, err := p.parseThread()
			if err != nil {
				return nil, err
			}
			prog.Threads = append(prog.Threads, t)
		case KwInt, KwVoid:
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, fmt.Errorf("%s: expected declaration, found %s", p.cur().Pos, p.cur())
		}
	}
	return prog, nil
}

// global int x;  or  global int x = 3;
func (p *Parser) parseGlobal() (*GlobalDecl, error) {
	kw, _ := p.expect(KwGlobal)
	if _, err := p.expect(KwInt); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name.Text, Pos: kw.Pos}
	if p.accept(Assign) {
		neg := p.accept(Minus)
		num, err := p.expect(NUMBER)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(num.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad integer literal %q", num.Pos, num.Text)
		}
		if neg {
			v = -v
		}
		g.Init = v
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return g, nil
}

// thread Name { local int v; ... stmts }
func (p *Parser) parseThread() (*ThreadDecl, error) {
	kw, _ := p.expect(KwThread)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	locals, err := p.parseLocalDecls()
	if err != nil {
		return nil, err
	}
	body, err := p.parseStmtsUntilRBrace()
	if err != nil {
		return nil, err
	}
	return &ThreadDecl{Name: name.Text, Locals: locals, Body: body, Pos: kw.Pos}, nil
}

// int f(a, b) { local int t; ... }  |  void g() { ... }
func (p *Parser) parseFunc() (*FuncDecl, error) {
	retTok := p.next() // KwInt or KwVoid
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var params []string
	if p.cur().Kind != RParen {
		for {
			// Allow an optional 'int' before each parameter name.
			p.accept(KwInt)
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			params = append(params, pn.Text)
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	locals, err := p.parseLocalDecls()
	if err != nil {
		return nil, err
	}
	body, err := p.parseStmtsUntilRBrace()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{
		Name:         name.Text,
		Params:       params,
		Locals:       locals,
		Body:         body,
		ReturnsValue: retTok.Kind == KwInt,
		Pos:          retTok.Pos,
	}, nil
}

func (p *Parser) parseLocalDecls() ([]*LocalDecl, error) {
	var out []*LocalDecl
	for p.cur().Kind == KwLocal {
		kw := p.next()
		if _, err := p.expect(KwInt); err != nil {
			return nil, err
		}
		for {
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			out = append(out, &LocalDecl{Name: name.Text, Pos: kw.Pos})
			if !p.accept(Comma) {
				break
			}
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (p *Parser) parseStmtsUntilRBrace() (*Block, error) {
	b := &Block{}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, fmt.Errorf("%s: unexpected end of file, expected '}'", p.cur().Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume '}'
	return b, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	return p.parseStmtsUntilRBrace()
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case KwIf:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els *Block
		if p.accept(KwElse) {
			if p.cur().Kind == KwIf {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = &Block{Stmts: []Stmt{s}}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &SIf{Cond: cond, Then: then, Else: els, Pos: t.Pos}, nil
	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &SWhile{Cond: cond, Body: body, Pos: t.Pos}, nil
	case KwAtomic:
		p.next()
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &SAtomic{Body: body, Pos: t.Pos}, nil
	case KwChoose:
		p.next()
		var branches []*Block
		b, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		branches = append(branches, b)
		for p.accept(KwOr) {
			b, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			branches = append(branches, b)
		}
		return &SChoose{Branches: branches, Pos: t.Pos}, nil
	case KwSkip:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &SSkip{Pos: t.Pos}, nil
	case KwAssume:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &SAssume{Cond: cond, Pos: t.Pos}, nil
	case KwReturn:
		p.next()
		var val AExpr
		if p.cur().Kind != Semi {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			val = v
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &SReturn{Val: val, Pos: t.Pos}, nil
	case KwBreak:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &SBreak{Pos: t.Pos}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &SContinue{Pos: t.Pos}, nil
	case IDENT:
		// Assignment or call statement.
		name := p.next()
		if p.cur().Kind == LParen {
			call, err := p.parseCallTail(name)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
			return &SCall{Call: call, Pos: name.Pos}, nil
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &SAssign{LHS: name.Text, RHS: rhs, Pos: name.Pos}, nil
	case Star:
		// Store through a pointer: *p = e;
		p.next()
		ptr, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &SStore{Ptr: ptr.Text, RHS: rhs, Pos: t.Pos}, nil
	case LBrace:
		// A bare block is sugar for its statements wrapped in choose-of-one.
		b, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &SChoose{Branches: []*Block{b}, Pos: t.Pos}, nil
	}
	return nil, fmt.Errorf("%s: expected statement, found %s", t.Pos, t)
}

func (p *Parser) parseCallTail(name Token) (*ACall, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var args []AExpr
	if p.cur().Kind != RParen {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	return &ACall{Name: name.Text, Args: args, Pos: name.Pos}, nil
}

// Expression grammar (loosest to tightest):
//
//	expr    := orExpr
//	orExpr  := andExpr { '||' andExpr }
//	andExpr := cmpExpr { '&&' cmpExpr }
//	cmpExpr := addExpr [ relop addExpr ]
//	addExpr := mulExpr { ('+'|'-') mulExpr }
//	mulExpr := unary { '*' unary }
//	unary   := '!' unary | '-' unary | primary
//	primary := NUMBER | IDENT [callTail] | '*' | '(' expr ')'
func (p *Parser) parseExpr() (AExpr, error) { return p.parseOr() }

func (p *Parser) parseOr() (AExpr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == OrOr {
		op := p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &ABin{Op: OrOr, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *Parser) parseAnd() (AExpr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == AndAnd {
		op := p.next()
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &ABin{Op: AndAnd, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *Parser) parseCmp() (AExpr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case EqEq, NotEq, Lt, Le, Gt, Ge:
		op := p.next()
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &ABin{Op: op.Kind, X: x, Y: y, Pos: op.Pos}, nil
	}
	return x, nil
}

func (p *Parser) parseAdd() (AExpr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == Plus || p.cur().Kind == Minus {
		op := p.next()
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &ABin{Op: op.Kind, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *Parser) parseMul() (AExpr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == Star {
		// Disambiguate multiplication from a trailing nondet: '*' as a
		// binary operator must be followed by the start of a unary.
		switch p.toks[p.pos+1].Kind {
		case NUMBER, IDENT, LParen, Not, Minus, Star:
		default:
			return x, nil
		}
		op := p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &ABin{Op: Star, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *Parser) parseUnary() (AExpr, error) {
	t := p.cur()
	switch t.Kind {
	case Not:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ANot{X: x, Pos: t.Pos}, nil
	case Minus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ANeg{X: x, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (AExpr, error) {
	t := p.cur()
	switch t.Kind {
	case NUMBER:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad integer literal %q", t.Pos, t.Text)
		}
		return &ALit{Value: v, Pos: t.Pos}, nil
	case IDENT:
		p.next()
		if p.cur().Kind == LParen {
			return p.parseCallTail(t)
		}
		return &AVar{Name: t.Text, Pos: t.Pos}, nil
	case Star:
		p.next()
		// '*' followed by an identifier is a dereference; bare '*' is the
		// nondeterministic value.
		if p.cur().Kind == IDENT {
			id := p.next()
			return &ADeref{Ptr: id.Text, Pos: t.Pos}, nil
		}
		return &ANondet{Pos: t.Pos}, nil
	case Amp:
		p.next()
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		return &AAddr{Name: id.Text, Pos: t.Pos}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, fmt.Errorf("%s: expected expression, found %s", t.Pos, t)
}
