package lang

import (
	"testing"
)

// roundTrip parses, formats, reparses, and reformats: the two formatted
// strings must be identical (Format is a fixpoint of Parse∘Format).
func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out1 := Format(p1)
	p2, err := Parse(out1)
	if err != nil {
		t.Fatalf("reparse of formatted output: %v\n%s", err, out1)
	}
	out2 := Format(p2)
	if out1 != out2 {
		t.Fatalf("format not stable:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
}

func TestRoundTripTestAndSet(t *testing.T) {
	roundTrip(t, testAndSetSrc)
}

func TestRoundTripAllConstructs(t *testing.T) {
	roundTrip(t, `
global int x = -3;
global int cell;

int tryLock(a, b) {
  local int got;
  got = (a + b) * 2;
  if (got >= 0 && got != 7 || x < got) {
    return 1;
  }
  return got;
}

void reset() {
  x = 0;
  return;
}

thread T {
  local int p;
  local int v;
  p = &x;
  while (1) {
    choose {
      atomic {
        *p = tryLock(1, 2);
      }
    } or {
      v = *p;
      v = -v;
    } or {
      skip;
    }
    if (v == 0) {
      break;
    } else if (v == 1) {
      continue;
    }
    assume(!(v > 5));
    v = *;
    reset();
  }
}
`)
}

func TestFormatOutputIsReadable(t *testing.T) {
	p, err := Parse(`
global int g;
thread T {
  while (1) { atomic { g = g + 1; } }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(p)
	want := `global int g;

thread T {
  while (1) {
    atomic {
      g = (g + 1);
    }
  }
}
`
	if out != want {
		t.Fatalf("formatted output:\n%s\nwant:\n%s", out, want)
	}
}

// Round-trip over every evaluation model ensures the printer covers the
// constructs the repository actually uses.
func TestRoundTripSamplePrograms(t *testing.T) {
	samples := []string{
		testAndSetSrc,
		`
global int a;
global int b;
thread T {
  local int p;
  choose { p = &a; } or { p = &b; }
  *p = *;
}
`,
	}
	for i, src := range samples {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if _, err := Parse(Format(p1)); err != nil {
			t.Fatalf("sample %d: formatted output does not reparse: %v", i, err)
		}
	}
}
