package lang

import "fmt"

// Analyze runs semantic checks over the program: name resolution,
// duplicate detection, arity and value/void checks for calls, recursion
// rejection (functions are inlined), placement of break/continue/return,
// nondet placement, and term/formula typing of expressions.
func Analyze(p *Program) error {
	globals := make(map[string]bool)
	for _, g := range p.Globals {
		if globals[g.Name] {
			return fmt.Errorf("%s: duplicate global %q", g.Pos, g.Name)
		}
		globals[g.Name] = true
	}
	funcs := make(map[string]*FuncDecl)
	for _, f := range p.Funcs {
		if _, ok := funcs[f.Name]; ok {
			return fmt.Errorf("%s: duplicate function %q", f.Pos, f.Name)
		}
		if globals[f.Name] {
			return fmt.Errorf("%s: function %q shadows a global", f.Pos, f.Name)
		}
		funcs[f.Name] = f
	}
	threads := make(map[string]bool)
	for _, t := range p.Threads {
		if threads[t.Name] {
			return fmt.Errorf("%s: duplicate thread %q", t.Pos, t.Name)
		}
		threads[t.Name] = true
	}
	if len(p.Threads) == 0 {
		return fmt.Errorf("program declares no threads")
	}

	if err := checkNoRecursion(p, funcs); err != nil {
		return err
	}

	for _, f := range p.Funcs {
		sc := newScope(globals, funcs)
		for _, param := range f.Params {
			if err := sc.declareLocal(param, f.Pos); err != nil {
				return err
			}
		}
		for _, l := range f.Locals {
			if err := sc.declareLocal(l.Name, l.Pos); err != nil {
				return err
			}
		}
		if err := sc.checkBlock(f.Body, blockCtx{inFunc: f}); err != nil {
			return err
		}
	}
	for _, t := range p.Threads {
		sc := newScope(globals, funcs)
		for _, l := range t.Locals {
			if err := sc.declareLocal(l.Name, l.Pos); err != nil {
				return err
			}
		}
		if err := sc.checkBlock(t.Body, blockCtx{}); err != nil {
			return err
		}
	}
	return nil
}

func checkNoRecursion(p *Program, funcs map[string]*FuncDecl) error {
	// Colour-based DFS over the call graph.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[string]int)
	var visit func(f *FuncDecl) error
	visit = func(f *FuncDecl) error {
		colour[f.Name] = grey
		var err error
		walkCalls(f.Body, func(c *ACall) {
			if err != nil {
				return
			}
			g, ok := funcs[c.Name]
			if !ok {
				return // reported by name resolution later
			}
			switch colour[g.Name] {
			case grey:
				err = fmt.Errorf("%s: recursive call to %q (functions are inlined; recursion is not supported)", c.Pos, c.Name)
			case white:
				err = visit(g)
			}
		})
		if err != nil {
			return err
		}
		colour[f.Name] = black
		return nil
	}
	for _, f := range p.Funcs {
		if colour[f.Name] == white {
			if err := visit(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// walkCalls applies fn to every call appearing in the block.
func walkCalls(b *Block, fn func(*ACall)) {
	var walkExpr func(AExpr)
	walkExpr = func(e AExpr) {
		switch g := e.(type) {
		case *ABin:
			walkExpr(g.X)
			walkExpr(g.Y)
		case *ANot:
			walkExpr(g.X)
		case *ANeg:
			walkExpr(g.X)
		case *ACall:
			fn(g)
			for _, a := range g.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmt func(Stmt)
	walkBlock := func(b *Block) {
		if b == nil {
			return
		}
		for _, s := range b.Stmts {
			walkStmt(s)
		}
	}
	walkStmt = func(s Stmt) {
		switch g := s.(type) {
		case *SAssign:
			walkExpr(g.RHS)
		case *SIf:
			walkExpr(g.Cond)
			walkBlock(g.Then)
			walkBlock(g.Else)
		case *SWhile:
			walkExpr(g.Cond)
			walkBlock(g.Body)
		case *SAtomic:
			walkBlock(g.Body)
		case *SChoose:
			for _, br := range g.Branches {
				walkBlock(br)
			}
		case *SAssume:
			walkExpr(g.Cond)
		case *SReturn:
			if g.Val != nil {
				walkExpr(g.Val)
			}
		case *SCall:
			fn(g.Call)
			for _, a := range g.Call.Args {
				walkExpr(a)
			}
		case *SStore:
			walkExpr(g.RHS)
		}
	}
	walkBlock(b)
}

type scope struct {
	globals map[string]bool
	funcs   map[string]*FuncDecl
	locals  map[string]bool
}

func newScope(globals map[string]bool, funcs map[string]*FuncDecl) *scope {
	return &scope{globals: globals, funcs: funcs, locals: make(map[string]bool)}
}

func (sc *scope) declareLocal(name string, pos Pos) error {
	if sc.locals[name] {
		return fmt.Errorf("%s: duplicate local %q", pos, name)
	}
	if sc.globals[name] {
		return fmt.Errorf("%s: local %q shadows a global", pos, name)
	}
	sc.locals[name] = true
	return nil
}

func (sc *scope) resolve(name string, pos Pos) error {
	if sc.locals[name] || sc.globals[name] {
		return nil
	}
	return fmt.Errorf("%s: undeclared variable %q", pos, name)
}

type blockCtx struct {
	inFunc *FuncDecl
	inLoop bool
}

func (sc *scope) checkBlock(b *Block, ctx blockCtx) error {
	if b == nil {
		return nil
	}
	for _, s := range b.Stmts {
		if err := sc.checkStmt(s, ctx); err != nil {
			return err
		}
	}
	return nil
}

func (sc *scope) checkStmt(s Stmt, ctx blockCtx) error {
	switch g := s.(type) {
	case *SAssign:
		if err := sc.resolve(g.LHS, g.Pos); err != nil {
			return err
		}
		if _, ok := g.RHS.(*ANondet); ok {
			return nil
		}
		return sc.checkTerm(g.RHS)
	case *SIf:
		if err := sc.checkCond(g.Cond); err != nil {
			return err
		}
		if err := sc.checkBlock(g.Then, ctx); err != nil {
			return err
		}
		return sc.checkBlock(g.Else, ctx)
	case *SWhile:
		if err := sc.checkCond(g.Cond); err != nil {
			return err
		}
		inner := ctx
		inner.inLoop = true
		return sc.checkBlock(g.Body, inner)
	case *SAtomic:
		return sc.checkBlock(g.Body, ctx)
	case *SChoose:
		for _, br := range g.Branches {
			if err := sc.checkBlock(br, ctx); err != nil {
				return err
			}
		}
		return nil
	case *SSkip:
		return nil
	case *SAssume:
		return sc.checkCond(g.Cond)
	case *SReturn:
		if ctx.inFunc == nil {
			return fmt.Errorf("%s: return outside a function", g.Pos)
		}
		if ctx.inFunc.ReturnsValue && g.Val == nil {
			return fmt.Errorf("%s: int function %q must return a value", g.Pos, ctx.inFunc.Name)
		}
		if !ctx.inFunc.ReturnsValue && g.Val != nil {
			return fmt.Errorf("%s: void function %q cannot return a value", g.Pos, ctx.inFunc.Name)
		}
		if g.Val != nil {
			return sc.checkTerm(g.Val)
		}
		return nil
	case *SCall:
		return sc.checkCall(g.Call, false)
	case *SStore:
		if err := sc.resolve(g.Ptr, g.Pos); err != nil {
			return err
		}
		if _, ok := g.RHS.(*ANondet); ok {
			return nil
		}
		return sc.checkTerm(g.RHS)
	case *SBreak:
		if !ctx.inLoop {
			return fmt.Errorf("%s: break outside a loop", g.Pos)
		}
		return nil
	case *SContinue:
		if !ctx.inLoop {
			return fmt.Errorf("%s: continue outside a loop", g.Pos)
		}
		return nil
	}
	return fmt.Errorf("%s: unknown statement %T", s.Position(), s)
}

func (sc *scope) checkCall(c *ACall, needValue bool) error {
	f, ok := sc.funcs[c.Name]
	if !ok {
		return fmt.Errorf("%s: call to undeclared function %q", c.Pos, c.Name)
	}
	if len(c.Args) != len(f.Params) {
		return fmt.Errorf("%s: %q expects %d argument(s), got %d", c.Pos, c.Name, len(f.Params), len(c.Args))
	}
	if needValue && !f.ReturnsValue {
		return fmt.Errorf("%s: void function %q used as a value", c.Pos, c.Name)
	}
	for _, a := range c.Args {
		if err := sc.checkTerm(a); err != nil {
			return err
		}
	}
	return nil
}

// checkTerm verifies e is integer-valued.
func (sc *scope) checkTerm(e AExpr) error {
	switch g := e.(type) {
	case *ALit:
		return nil
	case *AVar:
		return sc.resolve(g.Name, g.Pos)
	case *ANondet:
		return fmt.Errorf("%s: '*' is only allowed as the entire right-hand side of an assignment", g.Pos)
	case *AAddr:
		if !sc.globals[g.Name] {
			return fmt.Errorf("%s: '&' may only take the address of a global (got %q)", g.Pos, g.Name)
		}
		return nil
	case *ADeref:
		return sc.resolve(g.Ptr, g.Pos)
	case *ANeg:
		return sc.checkTerm(g.X)
	case *ACall:
		return sc.checkCall(g, true)
	case *ABin:
		switch g.Op {
		case Plus, Minus, Star:
			if err := sc.checkTerm(g.X); err != nil {
				return err
			}
			return sc.checkTerm(g.Y)
		}
		return fmt.Errorf("%s: boolean expression used as a value", g.Pos)
	case *ANot:
		return fmt.Errorf("%s: boolean expression used as a value", g.Pos)
	}
	return fmt.Errorf("%s: unknown expression %T", e.Position(), e)
}

// checkCond verifies e is usable as a condition: a boolean expression, or
// an integer term (interpreted as t != 0).
func (sc *scope) checkCond(e AExpr) error {
	switch g := e.(type) {
	case *ANot:
		return sc.checkCond(g.X)
	case *ABin:
		switch g.Op {
		case AndAnd, OrOr:
			if err := sc.checkCond(g.X); err != nil {
				return err
			}
			return sc.checkCond(g.Y)
		case EqEq, NotEq, Lt, Le, Gt, Ge:
			if err := sc.checkTerm(g.X); err != nil {
				return err
			}
			return sc.checkTerm(g.Y)
		default:
			return sc.checkTerm(e)
		}
	default:
		return sc.checkTerm(e)
	}
}
