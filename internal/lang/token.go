// Package lang implements the MiniNesC frontend: a small C-like modelling
// language with global/local integer variables, functions (inlined during
// CFA construction), threads, nesC-style atomic sections, nondeterministic
// choice, and assume statements.
//
// MiniNesC stands in for the nesC-compiled C sources the paper's tool
// consumed through CIL: the race checker operates on control-flow automata,
// so any frontend producing the same CFAs exercises the same verifier.
package lang

import "fmt"

// Kind identifies a token class.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KwGlobal
	KwLocal
	KwInt
	KwVoid
	KwThread
	KwIf
	KwElse
	KwWhile
	KwAtomic
	KwSkip
	KwAssume
	KwReturn
	KwBreak
	KwContinue
	KwChoose
	KwOr

	// Punctuation and operators.
	LBrace
	RBrace
	LParen
	RParen
	Semi
	Comma
	Assign
	Star // '*' both multiplication and nondet
	Plus
	Minus
	EqEq
	NotEq
	Lt
	Le
	Gt
	Ge
	AndAnd
	OrOr
	Not
	Amp // '&' address-of
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", NUMBER: "number",
	KwGlobal: "'global'", KwLocal: "'local'", KwInt: "'int'", KwVoid: "'void'",
	KwThread: "'thread'", KwIf: "'if'", KwElse: "'else'", KwWhile: "'while'",
	KwAtomic: "'atomic'", KwSkip: "'skip'", KwAssume: "'assume'",
	KwReturn: "'return'", KwBreak: "'break'", KwContinue: "'continue'",
	KwChoose: "'choose'", KwOr: "'or'",
	LBrace: "'{'", RBrace: "'}'", LParen: "'('", RParen: "')'",
	Semi: "';'", Comma: "','", Assign: "'='", Star: "'*'", Plus: "'+'",
	Minus: "'-'", EqEq: "'=='", NotEq: "'!='", Lt: "'<'", Le: "'<='",
	Gt: "'>'", Ge: "'>='", AndAnd: "'&&'", OrOr: "'||'", Not: "'!'",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"global": KwGlobal, "local": KwLocal, "int": KwInt, "void": KwVoid,
	"thread": KwThread, "if": KwIf, "else": KwElse, "while": KwWhile,
	"atomic": KwAtomic, "skip": KwSkip, "assume": KwAssume,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"choose": KwChoose, "or": KwOr,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}
