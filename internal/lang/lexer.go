package lang

import (
	"fmt"
	"strings"
)

// Lexer tokenises MiniNesC source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("%s: unterminated block comment", start)
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return Token{Kind: NUMBER, Text: l.src[start:l.off], Pos: pos}, nil
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	}
	two := func(k Kind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Text: l.src[l.off-2 : l.off], Pos: pos}, nil
	}
	one := func(k Kind) (Token, error) {
		l.advance()
		return Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	switch c {
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case ';':
		return one(Semi)
	case ',':
		return one(Comma)
	case '*':
		return one(Star)
	case '+':
		return one(Plus)
	case '-':
		return one(Minus)
	case '=':
		if l.peek2() == '=' {
			return two(EqEq)
		}
		return one(Assign)
	case '!':
		if l.peek2() == '=' {
			return two(NotEq)
		}
		return one(Not)
	case '<':
		if l.peek2() == '=' {
			return two(Le)
		}
		return one(Lt)
	case '>':
		if l.peek2() == '=' {
			return two(Ge)
		}
		return one(Gt)
	case '&':
		if l.peek2() == '&' {
			return two(AndAnd)
		}
		return one(Amp)
	case '|':
		if l.peek2() == '|' {
			return two(OrOr)
		}
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", pos, string(c))
}

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

// FormatTokens renders tokens for debugging.
func FormatTokens(ts []Token) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}
