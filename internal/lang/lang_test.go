package lang

import (
	"strings"
	"testing"
)

// The paper's Figure 1 test-and-set program.
const testAndSetSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

func TestParseTestAndSet(t *testing.T) {
	p, err := Parse(testAndSetSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(p.Globals) != 2 || p.Globals[0].Name != "x" || p.Globals[1].Name != "state" {
		t.Fatalf("globals = %+v", p.Globals)
	}
	th := p.Thread("Worker")
	if th == nil {
		t.Fatalf("thread Worker missing")
	}
	if len(th.Locals) != 1 || th.Locals[0].Name != "old" {
		t.Fatalf("locals = %+v", th.Locals)
	}
	if len(th.Body.Stmts) != 1 {
		t.Fatalf("body stmts = %d, want 1 (while)", len(th.Body.Stmts))
	}
	w, ok := th.Body.Stmts[0].(*SWhile)
	if !ok {
		t.Fatalf("first stmt is %T, want *SWhile", th.Body.Stmts[0])
	}
	if len(w.Body.Stmts) != 2 {
		t.Fatalf("while body stmts = %d, want 2", len(w.Body.Stmts))
	}
	if _, ok := w.Body.Stmts[0].(*SAtomic); !ok {
		t.Fatalf("expected atomic block, got %T", w.Body.Stmts[0])
	}
}

func TestParseFunctionsAndCalls(t *testing.T) {
	src := `
global int state;
int tryLock() {
  local int got;
  atomic {
    got = 0;
    if (state == 0) { state = 1; got = 1; }
  }
  return got;
}
void unlock() { state = 0; }
thread T {
  while (1) {
    if (tryLock() == 1) {
      unlock();
    }
  }
}
`
	if _, err := Parse(src); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

func TestParseChooseAndNondet(t *testing.T) {
	src := `
global int g;
thread T {
  local int c;
  c = *;
  choose {
    g = 1;
  } or {
    g = 2;
  } or {
    skip;
  }
  assume(g > 0);
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ch, ok := p.Threads[0].Body.Stmts[1].(*SChoose)
	if !ok {
		t.Fatalf("stmt 1 is %T, want *SChoose", p.Threads[0].Body.Stmts[1])
	}
	if len(ch.Branches) != 3 {
		t.Fatalf("branches = %d, want 3", len(ch.Branches))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`thread T { x = 1; }`, "undeclared variable"},
		{`global int x; global int x; thread T { skip; }`, "duplicate global"},
		{`global int x; thread T { break; }`, "break outside"},
		{`global int x;`, "no threads"},
		{`global int x; thread T { f(); }`, "undeclared function"},
		{`global int x; int f() { return 0; } thread T { f(1); }`, "expects 0 argument"},
		{`global int x; void f() { skip; } thread T { x = f(); }`, "used as a value"},
		{`global int x; int f() { return f(); } thread T { x = f(); }`, "recursive"},
		{`global int x; thread T { x = * + 1; }`, "only allowed"},
		{`global int x; thread T { x = (1 < 2); }`, "boolean expression used as a value"},
		{`global int x; thread T { return; }`, "return outside"},
		{`global int x; thread T { x = 1 }`, "expected ';'"},
		{`global int x; thread T { local int x; skip; }`, "shadows a global"},
	}
	for i, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("case %d: expected error containing %q, got none", i, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not contain %q", i, err, c.want)
		}
	}
}

func TestLexerPositionsAndComments(t *testing.T) {
	src := "global /* block\ncomment */ int x; // line comment\nthread T { skip; }"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("tokenize: %v", err)
	}
	if toks[1].Kind != KwInt || toks[1].Pos.Line != 2 {
		t.Fatalf("token after block comment: %v at %v", toks[1], toks[1].Pos)
	}
	if _, err := Tokenize("/* unterminated"); err == nil {
		t.Fatalf("expected unterminated comment error")
	}
	if _, err := Tokenize("$"); err == nil {
		t.Fatalf("expected unexpected character error")
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := `
global int a;
global int b;
thread T {
  a = 1 + 2 * 3;
  if (a + 1 < b * 2 && b == 3 || a != 0) { skip; }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	asn := p.Threads[0].Body.Stmts[0].(*SAssign)
	if got := asn.RHS.String(); got != "(1 + (2 * 3))" {
		t.Errorf("precedence: got %s", got)
	}
	iff := p.Threads[0].Body.Stmts[1].(*SIf)
	if got := iff.Cond.String(); got != "((((a + 1) < (b * 2)) && (b == 3)) || (a != 0))" {
		t.Errorf("cond: got %s", got)
	}
}

func TestNegativeGlobalInit(t *testing.T) {
	p, err := Parse("global int x = -5;\nthread T { skip; }")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if p.Globals[0].Init != -5 {
		t.Fatalf("init = %d, want -5", p.Globals[0].Init)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
global int s;
thread T {
  if (s == 0) { s = 1; }
  else if (s == 1) { s = 2; }
  else { s = 0; }
}
`
	if _, err := Parse(src); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

func TestMulVsNondetDisambiguation(t *testing.T) {
	// `a * b` is multiplication; a bare `*` is nondet.
	src := `
global int a;
global int b;
thread T {
  a = a * b;
  b = *;
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := p.Threads[0].Body.Stmts[1].(*SAssign).RHS.(*ANondet); !ok {
		t.Fatalf("second RHS not nondet")
	}
}
