package lang

import (
	"fmt"
	"strings"
)

// Format renders a parsed program back to MiniNesC source text. The output
// reparses to a structurally identical program (see the round-trip tests),
// making it usable for program transformation tooling and golden tests.
func Format(p *Program) string {
	var b strings.Builder
	for _, g := range p.Globals {
		if g.Init != 0 {
			fmt.Fprintf(&b, "global int %s = %d;\n", g.Name, g.Init)
		} else {
			fmt.Fprintf(&b, "global int %s;\n", g.Name)
		}
	}
	for _, f := range p.Funcs {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		ret := "void"
		if f.ReturnsValue {
			ret = "int"
		}
		fmt.Fprintf(&b, "%s %s(%s) {\n", ret, f.Name, strings.Join(f.Params, ", "))
		writeLocals(&b, f.Locals, 1)
		writeBlock(&b, f.Body, 1)
		b.WriteString("}\n")
	}
	for _, t := range p.Threads {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "thread %s {\n", t.Name)
		writeLocals(&b, t.Locals, 1)
		writeBlock(&b, t.Body, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func writeLocals(b *strings.Builder, locals []*LocalDecl, depth int) {
	for _, l := range locals {
		indent(b, depth)
		fmt.Fprintf(b, "local int %s;\n", l.Name)
	}
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func writeBlock(b *strings.Builder, blk *Block, depth int) {
	if blk == nil {
		return
	}
	for _, s := range blk.Stmts {
		writeStmt(b, s, depth)
	}
}

func writeStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch g := s.(type) {
	case *SAssign:
		fmt.Fprintf(b, "%s = %s;\n", g.LHS, formatExpr(g.RHS))
	case *SStore:
		fmt.Fprintf(b, "*%s = %s;\n", g.Ptr, formatExpr(g.RHS))
	case *SIf:
		fmt.Fprintf(b, "if (%s) {\n", formatExpr(g.Cond))
		writeBlock(b, g.Then, depth+1)
		indent(b, depth)
		if g.Else != nil {
			b.WriteString("} else {\n")
			writeBlock(b, g.Else, depth+1)
			indent(b, depth)
		}
		b.WriteString("}\n")
	case *SWhile:
		fmt.Fprintf(b, "while (%s) {\n", formatExpr(g.Cond))
		writeBlock(b, g.Body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *SAtomic:
		b.WriteString("atomic {\n")
		writeBlock(b, g.Body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *SChoose:
		for i, br := range g.Branches {
			if i == 0 {
				b.WriteString("choose {\n")
			} else {
				indent(b, depth)
				b.WriteString("} or {\n")
			}
			writeBlock(b, br, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *SSkip:
		b.WriteString("skip;\n")
	case *SAssume:
		fmt.Fprintf(b, "assume(%s);\n", formatExpr(g.Cond))
	case *SReturn:
		if g.Val != nil {
			fmt.Fprintf(b, "return %s;\n", formatExpr(g.Val))
		} else {
			b.WriteString("return;\n")
		}
	case *SCall:
		fmt.Fprintf(b, "%s;\n", formatExpr(g.Call))
	case *SBreak:
		b.WriteString("break;\n")
	case *SContinue:
		b.WriteString("continue;\n")
	default:
		fmt.Fprintf(b, "/* unknown statement %T */\n", s)
	}
}

// formatExpr renders an expression with explicit parentheses around every
// binary operation, guaranteeing the round trip regardless of precedence.
func formatExpr(e AExpr) string {
	switch g := e.(type) {
	case *ALit:
		return fmt.Sprintf("%d", g.Value)
	case *AVar:
		return g.Name
	case *ANondet:
		return "*"
	case *AAddr:
		return "&" + g.Name
	case *ADeref:
		return "*" + g.Ptr
	case *ANeg:
		return "(-" + formatExpr(g.X) + ")"
	case *ANot:
		return "!(" + formatExpr(g.X) + ")"
	case *ABin:
		return "(" + formatExpr(g.X) + " " + binOpText(g.Op) + " " + formatExpr(g.Y) + ")"
	case *ACall:
		args := make([]string, len(g.Args))
		for i, a := range g.Args {
			args[i] = formatExpr(a)
		}
		return g.Name + "(" + strings.Join(args, ", ") + ")"
	}
	return fmt.Sprintf("/* unknown expr %T */", e)
}
