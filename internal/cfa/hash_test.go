package cfa_test

import (
	"math/rand"
	"testing"

	"circ/internal/cfa"
	"circ/internal/dataflow"
	"circ/internal/expr"
	"circ/internal/lang"
)

func buildCFA(t *testing.T, src, thread string) *cfa.CFA {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := cfa.Build(p, thread)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

const tasSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

// The same protocol with an extra shared variable and extra statements
// entirely outside the cone of influence of x.
const tasNoiseSrc = `
global int x;
global int state;
global int noise;

thread Worker {
  local int old;
  local int scratch;
  while (1) {
    noise = noise + 2;
    scratch = noise;
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
    noise = scratch;
  }
}
`

// TestHashDeterministic: re-parsing and re-building the same source gives
// the same hash, and the hash is stable across repeated calls.
func TestHashDeterministic(t *testing.T) {
	a := buildCFA(t, tasSrc, "Worker")
	b := buildCFA(t, tasSrc, "Worker")
	if a.Hash() != b.Hash() {
		t.Fatalf("same source hashed differently: %#x vs %#x", a.Hash(), b.Hash())
	}
	if a.Hash() != a.Hash() {
		t.Fatalf("hash not stable across calls")
	}
	if string(a.AppendCanonical(nil)) != string(b.AppendCanonical(nil)) {
		t.Fatalf("canonical serializations differ for identical source")
	}
}

// TestHashSlicingEquivalent: two programs that differ only outside the
// cone of influence of the target hash equal after slicing — the property
// the certificate store's incremental re-checking rests on.
func TestHashSlicingEquivalent(t *testing.T) {
	a, _ := dataflow.Slice(buildCFA(t, tasSrc, "Worker"), "x")
	b, _ := dataflow.Slice(buildCFA(t, tasNoiseSrc, "Worker"), "x")
	ca, cb := string(a.AppendCanonical(nil)), string(b.AppendCanonical(nil))
	if ca != cb {
		t.Fatalf("slicing-equivalent CFAs serialize differently:\n%s\nvs\n%s", ca, cb)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("slicing-equivalent CFAs hash differently: %#x vs %#x", a.Hash(), b.Hash())
	}
	// The unsliced automata are genuinely different.
	if buildCFA(t, tasSrc, "Worker").Hash() == buildCFA(t, tasNoiseSrc, "Worker").Hash() {
		t.Fatalf("unsliced variants unexpectedly hash equal")
	}
}

// TestHashIgnoresIncidentals: name, source positions, and edge order do
// not contribute to the hash.
func TestHashIgnoresIncidentals(t *testing.T) {
	base := buildCFA(t, tasSrc, "Worker")
	clone := func() *cfa.CFA {
		edges := make([]*cfa.Edge, len(base.Edges))
		for i, e := range base.Edges {
			edges[i] = &cfa.Edge{Src: e.Src, Dst: e.Dst, Op: e.Op, Pos: e.Pos}
		}
		return cfa.New(base.Name, base.Globals, base.Locals, base.Entry,
			append([]bool(nil), base.Atomic...), edges)
	}

	renamed := clone()
	renamed.Name = "Other"
	if renamed.Hash() != base.Hash() {
		t.Errorf("renaming the automaton changed the hash")
	}

	moved := clone()
	for _, e := range moved.Edges {
		e.Pos.Line += 100
	}
	if moved.Hash() != base.Hash() {
		t.Errorf("moving source positions changed the hash")
	}

	shuffled := clone()
	r := rand.New(rand.NewSource(1))
	perm := shuffled.Edges
	r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	shuffled = cfa.New(base.Name, base.Globals, base.Locals, base.Entry,
		append([]bool(nil), base.Atomic...), perm)
	if shuffled.Hash() != base.Hash() {
		t.Errorf("reordering the edge slice changed the hash")
	}
}

// TestHashMutationSensitive: every class of structural mutation — edge
// endpoints, operation kind, assigned variable, right-hand side, assume
// predicate, atomicity, and variable sharing — changes the hash.
func TestHashMutationSensitive(t *testing.T) {
	base := buildCFA(t, tasSrc, "Worker")
	baseHash := base.Hash()

	// Pick representative edges to mutate.
	var assign, assume *cfa.Edge
	for _, e := range base.Edges {
		switch {
		case e.Op.Kind == cfa.OpAssign && assign == nil:
			assign = e
		case e.Op.Kind == cfa.OpAssume && assume == nil:
			assume = e
		}
	}
	if assign == nil || assume == nil {
		t.Fatalf("test program lacks an assign or assume edge")
	}

	mutate := func(name string, f func(c *cfa.CFA, edges []*cfa.Edge) []*cfa.Edge) {
		t.Helper()
		edges := make([]*cfa.Edge, len(base.Edges))
		for i, e := range base.Edges {
			cp := *e
			edges[i] = &cp
		}
		atomic := append([]bool(nil), base.Atomic...)
		c := &cfa.CFA{Name: base.Name, Globals: base.Globals, Locals: base.Locals,
			Entry: base.Entry, Atomic: atomic}
		edges = f(c, edges)
		mutated := cfa.New(c.Name, c.Globals, c.Locals, c.Entry, c.Atomic, edges)
		if mutated.Hash() == baseHash {
			t.Errorf("%s: mutation did not change the hash", name)
		}
	}

	find := func(edges []*cfa.Edge, want *cfa.Edge) *cfa.Edge {
		for i, e := range base.Edges {
			if e == want {
				return edges[i]
			}
		}
		t.Fatalf("edge not found")
		return nil
	}

	mutate("retarget edge", func(c *cfa.CFA, edges []*cfa.Edge) []*cfa.Edge {
		e := find(edges, assign)
		e.Dst = (e.Dst + 1) % cfa.Loc(len(c.Atomic))
		return edges
	})
	mutate("assign to different variable", func(c *cfa.CFA, edges []*cfa.Edge) []*cfa.Edge {
		find(edges, assign).Op.LHS = "zz"
		return edges
	})
	mutate("change right-hand side", func(c *cfa.CFA, edges []*cfa.Edge) []*cfa.Edge {
		find(edges, assign).Op.RHS = expr.Int{Value: 42}
		return edges
	})
	mutate("assign becomes havoc", func(c *cfa.CFA, edges []*cfa.Edge) []*cfa.Edge {
		e := find(edges, assign)
		e.Op = cfa.Op{Kind: cfa.OpHavoc, LHS: e.Op.LHS}
		return edges
	})
	mutate("change assume predicate", func(c *cfa.CFA, edges []*cfa.Edge) []*cfa.Edge {
		find(edges, assume).Op.Pred = expr.Cmp{Op: expr.OpLt, X: expr.Var{Name: "state"}, Y: expr.Int{Value: 7}}
		return edges
	})
	mutate("drop an edge", func(c *cfa.CFA, edges []*cfa.Edge) []*cfa.Edge {
		return edges[:len(edges)-1]
	})
	mutate("flip atomicity", func(c *cfa.CFA, edges []*cfa.Edge) []*cfa.Edge {
		c.Atomic[int(assign.Src)] = !c.Atomic[int(assign.Src)]
		return edges
	})
	mutate("move entry", func(c *cfa.CFA, edges []*cfa.Edge) []*cfa.Edge {
		c.Entry = (c.Entry + 1) % cfa.Loc(len(c.Atomic))
		return edges
	})
	mutate("local becomes global", func(c *cfa.CFA, edges []*cfa.Edge) []*cfa.Edge {
		c.Globals = append(append([]string(nil), c.Globals...), "old")
		c.Locals = []string{}
		return edges
	})
}
