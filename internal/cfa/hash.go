package cfa

import (
	"sort"
	"strconv"
)

// Canonical serialization and structural hashing of CFAs, the foundation
// of the content-addressed certificate store: two CFAs that serialize to
// the same bytes are interchangeable inputs to the race checker, so a
// verdict (and its certificate) computed for one is a verdict for the
// other.
//
// The serialization covers exactly the analysis-relevant structure —
// location count, entry, per-location atomicity, the accessed shared and
// local variable sets (sorted), and every edge's (src, dst, operation) —
// and deliberately excludes source positions, the automaton name, and
// declared-but-never-accessed variables, none of which influence a
// verdict. Edges are serialized in a canonical sort order, so automata
// that differ only in edge-slice order (e.g. two equivalent slices
// assembled along different traversals) hash equal. The variable sets are
// collected from the memoized Edge.Reads/Writes caches, so serializing an
// already-constructed CFA allocates no per-edge maps.

// AppendCanonical appends the canonical serialization of the CFA to b and
// returns the extended slice. The encoding is deterministic: it is a pure
// function of the automaton's structure modulo name, source positions,
// edge order, and unaccessed variable declarations. In particular, two
// programs that differ only outside the cone of influence of a target
// variable serialize (and hash) identically after dataflow.Slice.
func (c *CFA) AppendCanonical(b []byte) []byte {
	b = append(b, "cfa1|"...)
	b = strconv.AppendInt(b, int64(c.NumLocs()), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(c.Entry), 10)
	b = append(b, "|a:"...)
	for _, atomic := range c.Atomic {
		if atomic {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	}
	// Partition the variables the edges actually access into shared and
	// thread-local; which side a name falls on changes the race semantics,
	// so both sets are part of the canonical form.
	var globals, locals []string
	seen := make(map[string]bool)
	addVar := func(v string) {
		if v == "" || seen[v] {
			return
		}
		seen[v] = true
		if c.IsGlobal(v) {
			globals = append(globals, v)
		} else {
			locals = append(locals, v)
		}
	}
	for _, e := range c.Edges {
		for v := range e.Reads() {
			addVar(v)
		}
		addVar(e.Writes())
	}
	b = append(b, "|g:"...)
	sort.Strings(globals)
	for _, v := range globals {
		b = append(b, v...)
		b = append(b, ',')
	}
	b = append(b, "|l:"...)
	sort.Strings(locals)
	for _, v := range locals {
		b = append(b, v...)
		b = append(b, ',')
	}
	b = append(b, "|e:"...)
	edges := make([]string, len(c.Edges))
	for i, e := range c.Edges {
		edges[i] = canonicalEdge(e)
	}
	sort.Strings(edges)
	for _, e := range edges {
		b = append(b, e...)
		b = append(b, ';')
	}
	return b
}

// canonicalEdge renders one edge as "src>dst>op" with the operation in
// canonical form: expression Key strings (structurally equal expressions
// have equal keys) rather than surface syntax.
func canonicalEdge(e *Edge) string {
	b := make([]byte, 0, 32)
	b = strconv.AppendInt(b, int64(e.Src), 10)
	b = append(b, '>')
	b = strconv.AppendInt(b, int64(e.Dst), 10)
	b = append(b, '>')
	switch e.Op.Kind {
	case OpAssign:
		b = append(b, "=:"...)
		b = append(b, e.Op.LHS...)
		b = append(b, ':')
		b = append(b, e.Op.RHS.Key()...)
	case OpAssume:
		b = append(b, "?:"...)
		b = append(b, e.Op.Pred.Key()...)
	case OpHavoc:
		b = append(b, "*:"...)
		b = append(b, e.Op.LHS...)
	}
	return string(b)
}

// Hash returns a 64-bit structural hash of the CFA: FNV-1a over the
// canonical serialization. Structurally equal automata (modulo name,
// source positions, and edge order) hash equal; any change to a location,
// edge, operation, atomicity flag, or variable set changes the hash with
// overwhelming probability. Use AppendCanonical itself where collisions
// must be ruled out entirely (the certificate store stores and compares
// the full serialization, never the hash alone).
func (c *CFA) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, x := range c.AppendCanonical(nil) {
		h ^= uint64(x)
		h *= prime64
	}
	return h
}
