package cfa

import (
	"fmt"

	"circ/internal/alias"
	"circ/internal/expr"
	"circ/internal/lang"
)

// Build constructs the CFA for the named thread of the program, inlining
// all function calls. If threadName is empty, the program's single thread
// is used.
func Build(prog *lang.Program, threadName string) (*CFA, error) {
	var th *lang.ThreadDecl
	if threadName == "" {
		if len(prog.Threads) != 1 {
			return nil, fmt.Errorf("cfa: program has %d threads; specify one", len(prog.Threads))
		}
		th = prog.Threads[0]
	} else {
		th = prog.Thread(threadName)
		if th == nil {
			return nil, fmt.Errorf("cfa: no thread named %q", threadName)
		}
	}
	b := &builder{
		prog:    prog,
		cfa:     &CFA{Name: th.Name},
		aliases: alias.Analyze(prog),
		scope:   th.Name,
	}
	for _, g := range prog.Globals {
		b.cfa.Globals = append(b.cfa.Globals, g.Name)
	}
	for _, l := range th.Locals {
		b.cfa.Locals = append(b.cfa.Locals, l.Name)
	}
	entry := b.newLoc()
	b.cfa.Entry = entry
	end, err := b.block(th.Body, entry, loopCtx{})
	if err != nil {
		return nil, err
	}
	_ = end // a thread that falls off its body simply halts
	b.cfa.finish()
	return b.cfa, nil
}

type loopCtx struct {
	breakTo    Loc
	continueTo Loc
	active     bool
	// fnExit is the current function-inlining exit; returns jump there.
	fnExit    Loc
	fnRet     string // name of the return temp, "" for void
	inFunc    bool
	atomDepth int
}

type builder struct {
	prog    *lang.Program
	cfa     *CFA
	aliases *alias.Result
	scope   string // thread name, for alias lookups of unmangled locals
	inlines int
	derefs  int
	atom    int // current atomic nesting depth
}

// ptsOf returns the points-to set of a (possibly inlining-mangled) pointer
// variable.
func (b *builder) ptsOf(ptrVar string) []string {
	scope, base := alias.SplitMangled(ptrVar)
	if scope == "" {
		scope = b.scope
	}
	return b.aliases.PointsTo(scope, base)
}

func (b *builder) newLoc() Loc {
	b.cfa.Atomic = append(b.cfa.Atomic, b.atom > 0)
	return Loc(len(b.cfa.Atomic) - 1)
}

func (b *builder) edge(src, dst Loc, op Op, pos lang.Pos) {
	b.cfa.Edges = append(b.cfa.Edges, &Edge{Src: src, Dst: dst, Op: op, Pos: pos})
}

func (b *builder) addLocal(name string) {
	b.cfa.Locals = append(b.cfa.Locals, name)
}

// block lowers a statement block starting at from; it returns the location
// reached after the block.
func (b *builder) block(blk *lang.Block, from Loc, ctx loopCtx) (Loc, error) {
	cur := from
	if blk == nil {
		return cur, nil
	}
	for _, s := range blk.Stmts {
		next, err := b.stmt(s, cur, ctx)
		if err != nil {
			return 0, err
		}
		cur = next
	}
	return cur, nil
}

func (b *builder) stmt(s lang.Stmt, from Loc, ctx loopCtx) (Loc, error) {
	switch g := s.(type) {
	case *lang.SSkip:
		return from, nil

	case *lang.SAssign:
		if _, ok := g.RHS.(*lang.ANondet); ok {
			to := b.newLoc()
			b.edge(from, to, Op{Kind: OpHavoc, LHS: g.LHS}, g.Pos)
			return to, nil
		}
		rhs, cur, err := b.term(g.RHS, from, ctx)
		if err != nil {
			return 0, err
		}
		to := b.newLoc()
		b.edge(cur, to, Op{Kind: OpAssign, LHS: g.LHS, RHS: rhs}, g.Pos)
		return to, nil

	case *lang.SIf:
		cond, cur, err := b.cond(g.Cond, from, ctx)
		if err != nil {
			return 0, err
		}
		join := b.newLoc()
		// Then branch.
		if thenEntry, ok := b.assumeEdge(cur, cond, g.Pos); ok {
			end, err := b.block(g.Then, thenEntry, ctx)
			if err != nil {
				return 0, err
			}
			b.edge(end, join, skipOp(), g.Pos)
		}
		// Else branch.
		if elseEntry, ok := b.assumeEdge(cur, expr.Negate(cond), g.Pos); ok {
			end, err := b.block(g.Else, elseEntry, ctx)
			if err != nil {
				return 0, err
			}
			b.edge(end, join, skipOp(), g.Pos)
		}
		return join, nil

	case *lang.SWhile:
		head := b.newLoc()
		b.edge(from, head, skipOp(), g.Pos)
		cond, condEnd, err := b.cond(g.Cond, head, ctx)
		if err != nil {
			return 0, err
		}
		after := b.newLoc()
		if bodyEntry, ok := b.assumeEdge(condEnd, cond, g.Pos); ok {
			inner := ctx
			inner.breakTo = after
			inner.continueTo = head
			inner.active = true
			bodyEnd, err := b.block(g.Body, bodyEntry, inner)
			if err != nil {
				return 0, err
			}
			b.edge(bodyEnd, head, skipOp(), g.Pos)
		}
		if exitLoc, ok := b.assumeEdge(condEnd, expr.Negate(cond), g.Pos); ok {
			b.edge(exitLoc, after, skipOp(), g.Pos)
		}
		return after, nil

	case *lang.SAtomic:
		b.atom++
		entry := b.newLoc()
		b.edge(from, entry, skipOp(), g.Pos)
		end, err := b.block(g.Body, entry, ctx)
		b.atom--
		if err != nil {
			return 0, err
		}
		after := b.newLoc()
		b.edge(end, after, skipOp(), g.Pos)
		return after, nil

	case *lang.SChoose:
		join := b.newLoc()
		for _, br := range g.Branches {
			entry := b.newLoc()
			b.edge(from, entry, skipOp(), g.Pos)
			end, err := b.block(br, entry, ctx)
			if err != nil {
				return 0, err
			}
			b.edge(end, join, skipOp(), g.Pos)
		}
		return join, nil

	case *lang.SAssume:
		cond, cur, err := b.cond(g.Cond, from, ctx)
		if err != nil {
			return 0, err
		}
		to := b.newLoc()
		b.edge(cur, to, Op{Kind: OpAssume, Pred: cond}, g.Pos)
		return to, nil

	case *lang.SStore:
		// *p = e: case split over the points-to set of p (Section 5
		// memory model). Each branch assumes p holds the target's address
		// and performs a direct write, so downstream race checking sees
		// pointer stores as guarded writes to concrete globals.
		pts := b.ptsOf(g.Ptr)
		if len(pts) == 0 {
			return 0, fmt.Errorf("%s: store through %q, which has an empty points-to set", g.Pos, g.Ptr)
		}
		var rhs expr.Expr
		cur := from
		havoc := false
		if _, ok := g.RHS.(*lang.ANondet); ok {
			havoc = true
		} else {
			var err error
			rhs, cur, err = b.term(g.RHS, from, ctx)
			if err != nil {
				return 0, err
			}
		}
		join := b.newLoc()
		for _, tgt := range pts {
			guard := expr.Eq(expr.V(g.Ptr), expr.Num(b.aliases.Addr(tgt)))
			l1, ok := b.assumeEdge(cur, guard, g.Pos)
			if !ok {
				continue
			}
			if havoc {
				b.edge(l1, join, Op{Kind: OpHavoc, LHS: tgt}, g.Pos)
			} else {
				b.edge(l1, join, Op{Kind: OpAssign, LHS: tgt, RHS: rhs}, g.Pos)
			}
		}
		return join, nil

	case *lang.SBreak:
		if !ctx.active {
			return 0, fmt.Errorf("%s: break outside loop", g.Pos)
		}
		b.edge(from, ctx.breakTo, skipOp(), g.Pos)
		// Dead continuation location.
		return b.deadLoc(), nil

	case *lang.SContinue:
		if !ctx.active {
			return 0, fmt.Errorf("%s: continue outside loop", g.Pos)
		}
		b.edge(from, ctx.continueTo, skipOp(), g.Pos)
		return b.deadLoc(), nil

	case *lang.SReturn:
		if !ctx.inFunc {
			return 0, fmt.Errorf("%s: return outside function", g.Pos)
		}
		cur := from
		if g.Val != nil {
			rhs, c2, err := b.term(g.Val, from, ctx)
			if err != nil {
				return 0, err
			}
			mid := b.newLoc()
			b.edge(c2, mid, Op{Kind: OpAssign, LHS: ctx.fnRet, RHS: rhs}, g.Pos)
			cur = mid
		}
		b.edge(cur, ctx.fnExit, skipOp(), g.Pos)
		return b.deadLoc(), nil

	case *lang.SCall:
		_, cur, err := b.inlineCall(g.Call, from, ctx)
		return cur, err
	}
	return 0, fmt.Errorf("%s: unknown statement %T", s.Position(), s)
}

// deadLoc returns a fresh location with no incoming edges; code lowered
// after a break/continue/return is unreachable.
func (b *builder) deadLoc() Loc { return b.newLoc() }

func skipOp() Op { return Op{Kind: OpAssume, Pred: expr.TrueExpr} }

// assumeEdge adds an assume(pred) edge from cur to a fresh location; edges
// whose predicate simplifies to false are elided (ok=false).
func (b *builder) assumeEdge(cur Loc, pred expr.Expr, pos lang.Pos) (Loc, bool) {
	p := expr.Simplify(pred)
	if bb, ok := p.(expr.Bool); ok && !bb.Value {
		return 0, false
	}
	to := b.newLoc()
	b.edge(cur, to, Op{Kind: OpAssume, Pred: p}, pos)
	return to, true
}

// term lowers a surface term to an expr.Expr, emitting edges for any
// inlined calls. It returns the lowered term and the control location
// after evaluation.
func (b *builder) term(e lang.AExpr, from Loc, ctx loopCtx) (expr.Expr, Loc, error) {
	switch g := e.(type) {
	case *lang.ALit:
		return expr.Num(g.Value), from, nil
	case *lang.AVar:
		return expr.V(g.Name), from, nil
	case *lang.ANeg:
		x, cur, err := b.term(g.X, from, ctx)
		if err != nil {
			return nil, 0, err
		}
		return expr.Sub(expr.Num(0), x), cur, nil
	case *lang.ABin:
		x, cur, err := b.term(g.X, from, ctx)
		if err != nil {
			return nil, 0, err
		}
		y, cur2, err := b.term(g.Y, cur, ctx)
		if err != nil {
			return nil, 0, err
		}
		switch g.Op {
		case lang.Plus:
			return expr.Add(x, y), cur2, nil
		case lang.Minus:
			return expr.Sub(x, y), cur2, nil
		case lang.Star:
			return expr.Mul(x, y), cur2, nil
		}
		return nil, 0, fmt.Errorf("%s: boolean operator in term context", g.Pos)
	case *lang.ACall:
		ret, cur, err := b.inlineCall(g, from, ctx)
		if err != nil {
			return nil, 0, err
		}
		if ret == "" {
			return nil, 0, fmt.Errorf("%s: void function %q used as a value", g.Pos, g.Name)
		}
		return expr.V(ret), cur, nil
	case *lang.AAddr:
		a := b.aliases.Addr(g.Name)
		if a == 0 {
			return nil, 0, fmt.Errorf("%s: cannot take the address of %q", g.Pos, g.Name)
		}
		return expr.Num(a), from, nil
	case *lang.ADeref:
		// t = *p: case split over the points-to set, loading the target
		// into a fresh temporary.
		pts := b.ptsOf(g.Ptr)
		if len(pts) == 0 {
			return nil, 0, fmt.Errorf("%s: dereference of %q, which has an empty points-to set", g.Pos, g.Ptr)
		}
		b.derefs++
		tmp := fmt.Sprintf("deref%d", b.derefs)
		b.addLocal(tmp)
		join := b.newLoc()
		for _, tgt := range pts {
			guard := expr.Eq(expr.V(g.Ptr), expr.Num(b.aliases.Addr(tgt)))
			l1, ok := b.assumeEdge(from, guard, g.Pos)
			if !ok {
				continue
			}
			b.edge(l1, join, Op{Kind: OpAssign, LHS: tmp, RHS: expr.V(tgt)}, g.Pos)
		}
		return expr.V(tmp), join, nil
	case *lang.ANondet:
		return nil, 0, fmt.Errorf("%s: '*' only allowed as a whole assignment right-hand side", g.Pos)
	}
	return nil, 0, fmt.Errorf("%s: unknown expression %T", e.Position(), e)
}

// cond lowers a surface condition to a formula, emitting edges for inlined
// calls in its subterms (evaluated left to right before the branch).
func (b *builder) cond(e lang.AExpr, from Loc, ctx loopCtx) (expr.Expr, Loc, error) {
	switch g := e.(type) {
	case *lang.ANot:
		f, cur, err := b.cond(g.X, from, ctx)
		if err != nil {
			return nil, 0, err
		}
		return expr.Negate(f), cur, nil
	case *lang.ABin:
		switch g.Op {
		case lang.AndAnd:
			x, cur, err := b.cond(g.X, from, ctx)
			if err != nil {
				return nil, 0, err
			}
			y, cur2, err := b.cond(g.Y, cur, ctx)
			if err != nil {
				return nil, 0, err
			}
			return expr.Conj(x, y), cur2, nil
		case lang.OrOr:
			x, cur, err := b.cond(g.X, from, ctx)
			if err != nil {
				return nil, 0, err
			}
			y, cur2, err := b.cond(g.Y, cur, ctx)
			if err != nil {
				return nil, 0, err
			}
			return expr.Disj(x, y), cur2, nil
		case lang.EqEq, lang.NotEq, lang.Lt, lang.Le, lang.Gt, lang.Ge:
			x, cur, err := b.term(g.X, from, ctx)
			if err != nil {
				return nil, 0, err
			}
			y, cur2, err := b.term(g.Y, cur, ctx)
			if err != nil {
				return nil, 0, err
			}
			var op expr.CmpOp
			switch g.Op {
			case lang.EqEq:
				op = expr.OpEq
			case lang.NotEq:
				op = expr.OpNe
			case lang.Lt:
				op = expr.OpLt
			case lang.Le:
				op = expr.OpLe
			case lang.Gt:
				op = expr.OpGt
			case lang.Ge:
				op = expr.OpGe
			}
			return expr.Compare(op, x, y), cur2, nil
		}
	}
	// Arithmetic condition t is sugar for t != 0.
	t, cur, err := b.term(e, from, ctx)
	if err != nil {
		return nil, 0, err
	}
	return expr.Ne(t, expr.Num(0)), cur, nil
}

// inlineCall inlines a call to a function, returning the name of the
// return-value temporary ("" for void) and the location after the call.
func (b *builder) inlineCall(c *lang.ACall, from Loc, ctx loopCtx) (string, Loc, error) {
	fn := b.prog.Func(c.Name)
	if fn == nil {
		return "", 0, fmt.Errorf("%s: call to undeclared function %q", c.Pos, c.Name)
	}
	if len(c.Args) != len(fn.Params) {
		return "", 0, fmt.Errorf("%s: %q expects %d argument(s), got %d", c.Pos, c.Name, len(fn.Params), len(c.Args))
	}
	b.inlines++
	inst := b.inlines
	mangle := func(v string) string { return fmt.Sprintf("%s$%s$%d", fn.Name, v, inst) }

	// Parameter temporaries.
	cur := from
	rename := make(map[string]string, len(fn.Params)+len(fn.Locals))
	for i, p := range fn.Params {
		pv := mangle(p)
		rename[p] = pv
		b.addLocal(pv)
		arg, c2, err := b.term(c.Args[i], cur, ctx)
		if err != nil {
			return "", 0, err
		}
		to := b.newLoc()
		b.edge(c2, to, Op{Kind: OpAssign, LHS: pv, RHS: arg}, c.Pos)
		cur = to
	}
	for _, l := range fn.Locals {
		lv := mangle(l.Name)
		rename[l.Name] = lv
		b.addLocal(lv)
	}
	ret := ""
	if fn.ReturnsValue {
		ret = mangle("ret")
		b.addLocal(ret)
	}

	exit := b.newLoc()
	inner := loopCtx{
		inFunc: true,
		fnExit: exit,
		fnRet:  ret,
		// break/continue do not escape the function body.
	}
	body := renameBlock(fn.Body, rename)
	end, err := b.block(body, cur, inner)
	if err != nil {
		return "", 0, err
	}
	// Implicit return: int functions yield 0, matching C's (undefined but
	// common) zero-on-fallthrough modelling choice; void simply exits.
	if ret != "" {
		mid := b.newLoc()
		b.edge(end, mid, Op{Kind: OpAssign, LHS: ret, RHS: expr.Num(0)}, c.Pos)
		end = mid
	}
	b.edge(end, exit, skipOp(), c.Pos)
	return ret, exit, nil
}
