package cfa

import (
	"testing"

	"circ/internal/expr"
	"circ/internal/lang"
)

const testAndSetSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

func build(t *testing.T, src, thread string) *CFA {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Build(p, thread)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

func TestBuildTestAndSet(t *testing.T) {
	c := build(t, testAndSetSrc, "")
	if c.Name != "Worker" {
		t.Fatalf("name = %q", c.Name)
	}
	if len(c.Globals) != 2 {
		t.Fatalf("globals = %v", c.Globals)
	}
	// Some locations must be atomic (inside the atomic block), some not.
	var atomics, nonAtomics int
	for l := 0; l < c.NumLocs(); l++ {
		if c.IsAtomic(Loc(l)) {
			atomics++
		} else {
			nonAtomics++
		}
	}
	if atomics == 0 || nonAtomics == 0 {
		t.Fatalf("atomic/non-atomic split: %d/%d", atomics, nonAtomics)
	}
	// Exactly one location can write x (the x = x + 1 edge's source), and
	// the entry cannot.
	writers := 0
	for l := 0; l < c.NumLocs(); l++ {
		if c.WritesVarAt(Loc(l), "x") {
			writers++
			if c.IsAtomic(Loc(l)) {
				t.Errorf("x written at an atomic location %d", l)
			}
		}
	}
	if writers != 1 {
		t.Fatalf("locations that can write x = %d, want 1", writers)
	}
	// x is also read at that location (x = x + 1 reads x).
	for l := 0; l < c.NumLocs(); l++ {
		if c.WritesVarAt(Loc(l), "x") && !c.ReadsVarAt(Loc(l), "x") {
			t.Errorf("x=x+1 source should read x")
		}
	}
}

func TestAssumeEdgesFromIf(t *testing.T) {
	c := build(t, `
global int s;
thread T {
  if (s == 0) { s = 1; } else { s = 2; }
}
`, "")
	// Find assume edges for s == 0 and s != 0.
	var eq, ne bool
	for _, e := range c.Edges {
		if e.Op.Kind != OpAssume {
			continue
		}
		switch e.Op.Pred.Key() {
		case expr.Eq(expr.V("s"), expr.Num(0)).Key():
			eq = true
		case expr.Ne(expr.V("s"), expr.Num(0)).Key():
			ne = true
		}
	}
	if !eq || !ne {
		t.Fatalf("missing branch assume edges (eq=%t ne=%t)", eq, ne)
	}
}

func TestWhileTrueHasNoExit(t *testing.T) {
	c := build(t, `
global int g;
thread T {
  while (1) { g = g + 1; }
}
`, "")
	// The negated condition simplifies to false, so no exit edge exists:
	// the "after" location must have no incoming edges.
	incoming := make(map[Loc]int)
	for _, e := range c.Edges {
		incoming[e.Dst]++
	}
	reachedDead := false
	for l := 0; l < c.NumLocs(); l++ {
		if incoming[Loc(l)] == 0 && Loc(l) != c.Entry {
			reachedDead = true
		}
	}
	if !reachedDead {
		t.Fatalf("expected an unreachable after-loop location")
	}
}

func TestInlineCall(t *testing.T) {
	c := build(t, `
global int state;
global int x;
int tryLock() {
  local int got;
  got = 0;
  atomic {
    if (state == 0) { state = 1; got = 1; }
  }
  return got;
}
thread T {
  while (1) {
    if (tryLock() == 1) {
      x = x + 1;
      state = 0;
    }
  }
}
`, "")
	// The inlined return temp must appear in the locals.
	foundRet := false
	for _, l := range c.Locals {
		if l == "tryLock$ret$1" {
			foundRet = true
		}
	}
	if !foundRet {
		t.Fatalf("missing inlined return temp; locals = %v", c.Locals)
	}
	// There must be an assume edge comparing the ret temp with 1.
	found := false
	for _, e := range c.Edges {
		if e.Op.Kind == OpAssume && expr.Mentions(e.Op.Pred, "tryLock$ret$1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing condition on inlined return value")
	}
}

func TestInlineTwiceGetsFreshTemps(t *testing.T) {
	c := build(t, `
global int g;
int get() { return g; }
thread T {
  local int a;
  local int b;
  a = get();
  b = get();
}
`, "")
	has := func(n string) bool {
		for _, l := range c.Locals {
			if l == n {
				return true
			}
		}
		return false
	}
	if !has("get$ret$1") || !has("get$ret$2") {
		t.Fatalf("expected two distinct inline temps; locals = %v", c.Locals)
	}
}

func TestHavocEdge(t *testing.T) {
	c := build(t, `
global int g;
thread T {
  g = *;
}
`, "")
	found := false
	for _, e := range c.Edges {
		if e.Op.Kind == OpHavoc && e.Op.LHS == "g" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing havoc edge")
	}
}

func TestBreakContinue(t *testing.T) {
	c := build(t, `
global int g;
thread T {
  while (1) {
    if (g == 5) { break; }
    if (g == 3) { continue; }
    g = g + 1;
  }
  g = 0;
}
`, "")
	// Sanity: the final assignment g := 0 is present and reachable from
	// entry via some path (break edge).
	reach := map[Loc]bool{c.Entry: true}
	work := []Loc{c.Entry}
	for len(work) > 0 {
		l := work[0]
		work = work[1:]
		for _, e := range c.OutEdges(l) {
			if !reach[e.Dst] {
				reach[e.Dst] = true
				work = append(work, e.Dst)
			}
		}
	}
	foundZero := false
	for _, e := range c.Edges {
		if e.Op.Kind == OpAssign && e.Op.LHS == "g" && expr.Equal(e.Op.RHS, expr.Num(0)) && reach[e.Src] {
			foundZero = true
		}
	}
	if !foundZero {
		t.Fatalf("g := 0 unreachable: break edge wiring broken")
	}
}

func TestChooseBranches(t *testing.T) {
	c := build(t, `
global int g;
thread T {
  choose { g = 1; } or { g = 2; }
}
`, "")
	// Both assignments must exist.
	vals := map[string]bool{}
	for _, e := range c.Edges {
		if e.Op.Kind == OpAssign && e.Op.LHS == "g" {
			vals[e.Op.RHS.Key()] = true
		}
	}
	if len(vals) != 2 {
		t.Fatalf("choose branches: %v", vals)
	}
}

func TestAtomicNesting(t *testing.T) {
	c := build(t, `
global int g;
thread T {
  atomic {
    g = 1;
    atomic { g = 2; }
    g = 3;
  }
}
`, "")
	// All three assignment source locations must be atomic.
	for _, e := range c.Edges {
		if e.Op.Kind == OpAssign && !c.IsAtomic(e.Src) {
			t.Errorf("assignment %s from non-atomic location %d", e.Op, e.Src)
		}
	}
}

func TestDotAndString(t *testing.T) {
	c := build(t, testAndSetSrc, "Worker")
	if s := c.String(); len(s) == 0 {
		t.Fatalf("empty String()")
	}
	dot := c.Dot()
	if len(dot) == 0 || dot[0] != 'd' {
		t.Fatalf("bad dot output")
	}
}

func TestBuildErrors(t *testing.T) {
	p, err := lang.Parse(`
global int g;
thread A { skip; }
thread B { skip; }
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Build(p, ""); err == nil {
		t.Fatalf("expected error for ambiguous thread")
	}
	if _, err := Build(p, "C"); err == nil {
		t.Fatalf("expected error for missing thread")
	}
	if _, err := Build(p, "A"); err != nil {
		t.Fatalf("Build(A): %v", err)
	}
}
