package cfa

import (
	"strings"
	"testing"

	"circ/internal/expr"
	"circ/internal/lang"
)

func mustBuild(t *testing.T, src string) *CFA {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Build(p, "")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

func buildErr(t *testing.T, src string) error {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Build(p, "")
	return err
}

func TestStoreLoweringSingleTarget(t *testing.T) {
	c := mustBuild(t, `
global int x;
thread T {
  local int p;
  p = &x;
  *p = 7;
}
`)
	// The store becomes: assume(p == 1) ; x := 7.
	var sawGuard, sawWrite bool
	for _, e := range c.Edges {
		if e.Op.Kind == OpAssume && expr.Equal(e.Op.Pred, expr.Eq(expr.V("p"), expr.Num(1))) {
			sawGuard = true
		}
		if e.Op.Kind == OpAssign && e.Op.LHS == "x" && expr.Equal(e.Op.RHS, expr.Num(7)) {
			sawWrite = true
		}
	}
	if !sawGuard || !sawWrite {
		t.Fatalf("store lowering missing guard(%t)/write(%t):\n%s", sawGuard, sawWrite, c)
	}
}

func TestStoreLoweringMultiTarget(t *testing.T) {
	c := mustBuild(t, `
global int a;
global int b;
thread T {
  local int p;
  choose { p = &a; } or { p = &b; }
  *p = 1;
}
`)
	writes := map[string]bool{}
	for _, e := range c.Edges {
		if e.Op.Kind == OpAssign && expr.Equal(e.Op.RHS, expr.Num(1)) {
			writes[e.Op.LHS] = true
		}
	}
	if !writes["a"] || !writes["b"] {
		t.Fatalf("case split missing branches: %v", writes)
	}
}

func TestStoreHavocThroughPointer(t *testing.T) {
	c := mustBuild(t, `
global int a;
thread T {
  local int p;
  p = &a;
  *p = *;
}
`)
	found := false
	for _, e := range c.Edges {
		if e.Op.Kind == OpHavoc && e.Op.LHS == "a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("havoc-through-pointer not lowered")
	}
}

func TestDerefLoweringCreatesTemp(t *testing.T) {
	c := mustBuild(t, `
global int a;
thread T {
  local int p;
  local int v;
  p = &a;
  v = *p;
}
`)
	hasTemp := false
	for _, l := range c.Locals {
		if strings.HasPrefix(l, "deref") {
			hasTemp = true
		}
	}
	if !hasTemp {
		t.Fatalf("no deref temporary; locals = %v", c.Locals)
	}
	// Some edge loads a into the temp.
	found := false
	for _, e := range c.Edges {
		if e.Op.Kind == OpAssign && strings.HasPrefix(e.Op.LHS, "deref") && expr.Equal(e.Op.RHS, expr.V("a")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("load not lowered")
	}
}

func TestAddrBecomesConstant(t *testing.T) {
	c := mustBuild(t, `
global int a;
global int b;
thread T {
  local int p;
  p = &b;
}
`)
	found := false
	for _, e := range c.Edges {
		if e.Op.Kind == OpAssign && e.Op.LHS == "p" && expr.Equal(e.Op.RHS, expr.Num(2)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("&b (address 2) not lowered to a constant")
	}
}

func TestPointerThroughFunctionParam(t *testing.T) {
	c := mustBuild(t, `
global int a;
void setIt(q) {
  *q = 3;
}
thread T {
  setIt(&a);
}
`)
	found := false
	for _, e := range c.Edges {
		if e.Op.Kind == OpAssign && e.Op.LHS == "a" && expr.Equal(e.Op.RHS, expr.Num(3)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("store through inlined parameter pointer not lowered:\n%s", c)
	}
}

func TestDerefErrors(t *testing.T) {
	if err := buildErr(t, `
global int a;
thread T {
  local int p;
  local int v;
  p = 3;
  v = *p;
}
`); err == nil || !strings.Contains(err.Error(), "empty points-to") {
		t.Fatalf("deref of address-free pointer: %v", err)
	}
	if err := buildErr(t, `
global int a;
thread T {
  local int p;
  p = 3;
  *p = 1;
}
`); err == nil || !strings.Contains(err.Error(), "empty points-to") {
		t.Fatalf("store through address-free pointer: %v", err)
	}
}

func TestVoidFunctionAsValueError(t *testing.T) {
	// Bypass sema by building the AST manually: the builder must still
	// reject a void call in term position.
	p, err := lang.Parse(`
global int g;
void f() { skip; }
thread T {
  f();
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// Splice an assignment g = f() into the thread body.
	th := p.Threads[0]
	th.Body.Stmts = append(th.Body.Stmts, &lang.SAssign{
		LHS: "g",
		RHS: &lang.ACall{Name: "f"},
	})
	if _, err := Build(p, ""); err == nil {
		t.Fatalf("void call in term position accepted by builder")
	}
}

func TestOpAccessors(t *testing.T) {
	asn := Op{Kind: OpAssign, LHS: "x", RHS: expr.Add(expr.V("y"), expr.Num(1))}
	if asn.WritesVar() != "x" || !asn.ReadVars()["y"] {
		t.Fatalf("assign accessors broken")
	}
	asm := Op{Kind: OpAssume, Pred: expr.Eq(expr.V("z"), expr.Num(0))}
	if asm.WritesVar() != "" || !asm.ReadVars()["z"] {
		t.Fatalf("assume accessors broken")
	}
	hv := Op{Kind: OpHavoc, LHS: "w"}
	if hv.WritesVar() != "w" || len(hv.ReadVars()) != 0 {
		t.Fatalf("havoc accessors broken")
	}
	if asn.String() == "" || asm.String() == "" || hv.String() == "" {
		t.Fatalf("op rendering broken")
	}
}

func TestEdgeString(t *testing.T) {
	c := mustBuild(t, `
global int g;
thread T { g = 1; }
`)
	for _, e := range c.Edges {
		if e.String() == "" {
			t.Fatalf("empty edge render")
		}
	}
	if len(c.SortedLocals()) != 0 {
		t.Fatalf("unexpected locals")
	}
}
