package cfa

import "circ/internal/lang"

// renameBlock deep-copies a statement block, renaming variables through m
// (names absent from m are kept). Used to give each function inlining its
// own copies of parameters and locals.
func renameBlock(b *lang.Block, m map[string]string) *lang.Block {
	if b == nil {
		return nil
	}
	out := &lang.Block{Stmts: make([]lang.Stmt, len(b.Stmts))}
	for i, s := range b.Stmts {
		out.Stmts[i] = renameStmt(s, m)
	}
	return out
}

func renameStmt(s lang.Stmt, m map[string]string) lang.Stmt {
	ren := func(n string) string {
		if r, ok := m[n]; ok {
			return r
		}
		return n
	}
	switch g := s.(type) {
	case *lang.SAssign:
		return &lang.SAssign{LHS: ren(g.LHS), RHS: renameAExpr(g.RHS, m), Pos: g.Pos}
	case *lang.SIf:
		return &lang.SIf{Cond: renameAExpr(g.Cond, m), Then: renameBlock(g.Then, m), Else: renameBlock(g.Else, m), Pos: g.Pos}
	case *lang.SWhile:
		return &lang.SWhile{Cond: renameAExpr(g.Cond, m), Body: renameBlock(g.Body, m), Pos: g.Pos}
	case *lang.SAtomic:
		return &lang.SAtomic{Body: renameBlock(g.Body, m), Pos: g.Pos}
	case *lang.SChoose:
		brs := make([]*lang.Block, len(g.Branches))
		for i, br := range g.Branches {
			brs[i] = renameBlock(br, m)
		}
		return &lang.SChoose{Branches: brs, Pos: g.Pos}
	case *lang.SSkip:
		return &lang.SSkip{Pos: g.Pos}
	case *lang.SAssume:
		return &lang.SAssume{Cond: renameAExpr(g.Cond, m), Pos: g.Pos}
	case *lang.SReturn:
		var v lang.AExpr
		if g.Val != nil {
			v = renameAExpr(g.Val, m)
		}
		return &lang.SReturn{Val: v, Pos: g.Pos}
	case *lang.SCall:
		return &lang.SCall{Call: renameAExpr(g.Call, m).(*lang.ACall), Pos: g.Pos}
	case *lang.SStore:
		return &lang.SStore{Ptr: ren(g.Ptr), RHS: renameAExpr(g.RHS, m), Pos: g.Pos}
	case *lang.SBreak:
		return &lang.SBreak{Pos: g.Pos}
	case *lang.SContinue:
		return &lang.SContinue{Pos: g.Pos}
	}
	return s
}

func renameAExpr(e lang.AExpr, m map[string]string) lang.AExpr {
	switch g := e.(type) {
	case *lang.ALit, *lang.ANondet:
		return e
	case *lang.AVar:
		if r, ok := m[g.Name]; ok {
			return &lang.AVar{Name: r, Pos: g.Pos}
		}
		return g
	case *lang.ABin:
		return &lang.ABin{Op: g.Op, X: renameAExpr(g.X, m), Y: renameAExpr(g.Y, m), Pos: g.Pos}
	case *lang.ANot:
		return &lang.ANot{X: renameAExpr(g.X, m), Pos: g.Pos}
	case *lang.ANeg:
		return &lang.ANeg{X: renameAExpr(g.X, m), Pos: g.Pos}
	case *lang.AAddr:
		return g // addresses name globals, which are never renamed
	case *lang.ADeref:
		if r, ok := m[g.Ptr]; ok {
			return &lang.ADeref{Ptr: r, Pos: g.Pos}
		}
		return g
	case *lang.ACall:
		args := make([]lang.AExpr, len(g.Args))
		for i, a := range g.Args {
			args[i] = renameAExpr(a, m)
		}
		return &lang.ACall{Name: g.Name, Args: args, Pos: g.Pos}
	}
	return e
}
