// Package cfa defines control flow automata (CFAs), the program
// representation the race checker operates on, and their construction from
// MiniNesC threads (with function calls inlined).
//
// A CFA has integer variables (global and thread-local), control locations
// (some atomic, one initial), and edges labelled with operations: an
// assignment x := e, an assume [p], or a havoc x := * (nondeterministic
// write, from MiniNesC's '*').
package cfa

import (
	"fmt"
	"sort"
	"strings"

	"circ/internal/expr"
	"circ/internal/lang"
)

// Loc is a control location index.
type Loc int

// OpKind identifies the operation on an edge.
type OpKind int

// Edge operations.
const (
	OpAssign OpKind = iota
	OpAssume
	OpHavoc
)

// Op is an edge label.
type Op struct {
	Kind OpKind
	LHS  string    // OpAssign, OpHavoc
	RHS  expr.Expr // OpAssign
	Pred expr.Expr // OpAssume
}

func (o Op) String() string {
	switch o.Kind {
	case OpAssign:
		return fmt.Sprintf("%s := %s", o.LHS, o.RHS)
	case OpAssume:
		return fmt.Sprintf("[%s]", o.Pred)
	case OpHavoc:
		return fmt.Sprintf("%s := *", o.LHS)
	}
	return fmt.Sprintf("Op(%d)", int(o.Kind))
}

// WritesVar returns the variable written by the operation, or "".
func (o Op) WritesVar() string {
	if o.Kind == OpAssign || o.Kind == OpHavoc {
		return o.LHS
	}
	return ""
}

// ReadVars returns the variables read by the operation. Following the
// paper, an assignment reads the variables of its right-hand side and an
// assume reads the variables of its predicate.
func (o Op) ReadVars() map[string]bool {
	switch o.Kind {
	case OpAssign:
		return expr.FreeVars(o.RHS)
	case OpAssume:
		return expr.FreeVars(o.Pred)
	}
	return map[string]bool{}
}

// Edge is a directed CFA edge.
type Edge struct {
	Src, Dst Loc
	Op       Op
	Pos      lang.Pos

	// reads and writes memoize Op.ReadVars/Op.WritesVar; populated once by
	// finish(). The race checks of reachability and the dataflow passes hit
	// these per abstract state, so rebuilding a fresh map per call is pure
	// allocation churn.
	reads    map[string]bool
	writes   string
	memoized bool
}

// Reads returns the variables read by the edge's operation, memoized at
// CFA construction time. Callers must not mutate the returned map.
func (e *Edge) Reads() map[string]bool {
	if e.memoized {
		return e.reads
	}
	return e.Op.ReadVars()
}

// Writes returns the variable written by the edge's operation ("" for
// assumes), memoized at CFA construction time.
func (e *Edge) Writes() string {
	if e.memoized {
		return e.writes
	}
	return e.Op.WritesVar()
}

func (e *Edge) String() string {
	return fmt.Sprintf("%d --%s--> %d", e.Src, e.Op, e.Dst)
}

// CFA is a control flow automaton.
type CFA struct {
	Name    string
	Globals []string // shared variables (program-wide)
	Locals  []string // this thread's locals, including inlining temps
	Entry   Loc
	Atomic  []bool // per location
	Edges   []*Edge
	Out     [][]*Edge // adjacency, indexed by source location

	globalSet map[string]bool
	reachable []bool // per location: path exists from Entry
}

// NumLocs returns the number of control locations.
func (c *CFA) NumLocs() int { return len(c.Atomic) }

// IsGlobal reports whether name is a shared variable.
func (c *CFA) IsGlobal(name string) bool { return c.globalSet[name] }

// IsAtomic reports whether location l is atomic.
func (c *CFA) IsAtomic(l Loc) bool { return c.Atomic[l] }

// OutEdges returns the edges leaving l.
func (c *CFA) OutEdges(l Loc) []*Edge { return c.Out[l] }

// Reachable reports whether l has a path from the entry, memoized at
// construction time. Analyses skip unreachable locations: operations
// there can never execute.
func (c *CFA) Reachable(l Loc) bool { return c.reachable[l] }

// ReachableLocs returns the per-location reachability table (indexed by
// Loc). Callers must not mutate it.
func (c *CFA) ReachableLocs() []bool { return c.reachable }

// WritesVarAt reports whether some edge out of l writes x, i.e. the thread
// "can write x" at l in the paper's terminology.
func (c *CFA) WritesVarAt(l Loc, x string) bool {
	for _, e := range c.Out[l] {
		if e.Writes() == x {
			return true
		}
	}
	return false
}

// ReadsVarAt reports whether some edge out of l reads x.
func (c *CFA) ReadsVarAt(l Loc, x string) bool {
	for _, e := range c.Out[l] {
		if e.Reads()[x] {
			return true
		}
	}
	return false
}

// AccessesVarAt reports whether some edge out of l reads or writes x.
func (c *CFA) AccessesVarAt(l Loc, x string) bool {
	return c.WritesVarAt(l, x) || c.ReadsVarAt(l, x)
}

// String renders the CFA as a location/edge listing (used for the Figure 1
// reproduction).
func (c *CFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CFA %s (entry %d)\n", c.Name, c.Entry)
	for l := 0; l < c.NumLocs(); l++ {
		mark := " "
		if c.Atomic[l] {
			mark = "*"
		}
		fmt.Fprintf(&b, "  %s%d:\n", mark, l)
		for _, e := range c.Out[l] {
			fmt.Fprintf(&b, "      --%s--> %d\n", e.Op, e.Dst)
		}
	}
	return b.String()
}

// Dot renders the CFA in Graphviz dot format.
func (c *CFA) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", c.Name)
	for l := 0; l < c.NumLocs(); l++ {
		shape := "circle"
		if c.Atomic[l] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  n%d [shape=%s,label=\"%d\"];\n", l, shape, l)
	}
	for _, e := range c.Edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", e.Src, e.Dst, e.Op.String())
	}
	b.WriteString("}\n")
	return b.String()
}

// SortedLocals returns a sorted copy of the locals.
func (c *CFA) SortedLocals() []string {
	out := append([]string(nil), c.Locals...)
	sort.Strings(out)
	return out
}

// New assembles a CFA from parts and finalises its derived structures
// (adjacency lists, the global-name set, and the per-edge access caches).
// It is the constructor for CFAs produced outside this package, such as
// the sliced automata built by internal/dataflow.
func New(name string, globals, locals []string, entry Loc, atomic []bool, edges []*Edge) *CFA {
	c := &CFA{
		Name:    name,
		Globals: globals,
		Locals:  locals,
		Entry:   entry,
		Atomic:  atomic,
		Edges:   edges,
	}
	c.finish()
	return c
}

func (c *CFA) finish() {
	c.Out = make([][]*Edge, c.NumLocs())
	for _, e := range c.Edges {
		c.Out[e.Src] = append(c.Out[e.Src], e)
		e.reads = e.Op.ReadVars()
		e.writes = e.Op.WritesVar()
		e.memoized = true
	}
	c.globalSet = make(map[string]bool, len(c.Globals))
	for _, g := range c.Globals {
		c.globalSet[g] = true
	}
	c.reachable = make([]bool, c.NumLocs())
	stack := []Loc{c.Entry}
	c.reachable[c.Entry] = true
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range c.Out[l] {
			if !c.reachable[e.Dst] {
				c.reachable[e.Dst] = true
				stack = append(stack, e.Dst)
			}
		}
	}
}
