// Package lockset implements an Eraser-style dynamic lockset race detector
// (Savage et al., TOCS 1997) over the concrete MiniNesC interpreter, as the
// paper's representative of the lockset-based tool family that raises
// false positives on state-variable synchronisation idioms.
//
// MiniNesC has a single locking discipline — nesC atomic sections, which
// TinyOS implements by disabling interrupts — modelled here as one global
// pseudo-lock held exactly while a thread executes inside an atomic
// section. Eraser's per-variable state machine is implemented in full:
// Virgin -> Exclusive -> Shared / Shared-Modified, with lockset refinement
// and warnings only in the states Eraser warns in.
package lockset

import (
	"fmt"
	"sort"
	"strings"

	"circ/internal/cfa"
	"circ/internal/explicit"
	"circ/internal/expr"
)

// VarState is the Eraser per-variable automaton state.
type VarState int

// Eraser states.
const (
	Virgin VarState = iota
	Exclusive
	Shared
	SharedModified
)

func (s VarState) String() string {
	switch s {
	case Virgin:
		return "virgin"
	case Exclusive:
		return "exclusive"
	case Shared:
		return "shared"
	case SharedModified:
		return "shared-modified"
	}
	return fmt.Sprintf("VarState(%d)", int(s))
}

// the single pseudo-lock: nesC atomic sections / interrupt disabling.
const atomicLock = "atomic"

type varInfo struct {
	state     VarState
	owner     int
	lockset   map[string]bool // candidate lockset C(v)
	warned    bool
	firstWarn string
}

// Report is the analysis outcome.
type Report struct {
	// Warnings maps each global variable with an empty candidate lockset
	// in a warning state to a description of the first offending access.
	Warnings map[string]string
	// Runs and Steps record how much dynamic coverage was used.
	Runs, Steps int
}

// Racy reports whether variable x was flagged.
func (r *Report) Racy(x string) bool {
	_, ok := r.Warnings[x]
	return ok
}

func (r *Report) String() string {
	if len(r.Warnings) == 0 {
		return "lockset: no warnings"
	}
	vars := make([]string, 0, len(r.Warnings))
	for v := range r.Warnings {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&b, "lockset: potential race on %s: %s\n", v, r.Warnings[v])
	}
	return b.String()
}

// Options configures the dynamic analysis.
type Options struct {
	// Runs is the number of random schedules (default 20).
	Runs int
	// StepsPerRun bounds each schedule (default 2000).
	StepsPerRun int
	// Seed seeds the scheduler.
	Seed int64
	// Exec configures the underlying interpreter.
	Exec explicit.Options
}

func (o Options) runs() int {
	if o.Runs > 0 {
		return o.Runs
	}
	return 20
}

func (o Options) steps() int {
	if o.StepsPerRun > 0 {
		return o.StepsPerRun
	}
	return 2000
}

// Analyze runs the Eraser algorithm over random schedules of the instance
// and reports per-variable warnings.
func Analyze(in *explicit.Instance, opts Options) (*Report, error) {
	vars := make(map[string]*varInfo)
	// The lockset state persists across runs: Eraser accumulates evidence
	// over the whole observed execution history.
	globals := make(map[string]bool)
	for _, c := range in.CFAs {
		for _, g := range c.Globals {
			globals[g] = true
		}
	}
	steps := 0
	for run := 0; run < opts.runs(); run++ {
		err := in.RandomRun(opts.Seed+int64(run)*7919, opts.steps(), opts.Exec, func(c *explicit.Config, s explicit.Step) {
			steps++
			held := map[string]bool{}
			if in.CFAs[s.Thread].IsAtomic(s.Edge.Src) {
				held[atomicLock] = true
			}
			for _, acc := range accessesOf(s.Edge.Op, globals) {
				onAccess(vars, acc.v, s.Thread, acc.write, held, s.Edge)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	rep := &Report{Warnings: make(map[string]string), Runs: opts.runs(), Steps: steps}
	for v, info := range vars {
		if info.warned {
			rep.Warnings[v] = info.firstWarn
		}
	}
	return rep, nil
}

type access struct {
	v     string
	write bool
}

// accessesOf lists the global variables an operation reads or writes.
func accessesOf(op cfa.Op, globals map[string]bool) []access {
	var out []access
	switch op.Kind {
	case cfa.OpAssign:
		for v := range expr.FreeVars(op.RHS) {
			if globals[v] {
				out = append(out, access{v: v, write: false})
			}
		}
		if globals[op.LHS] {
			out = append(out, access{v: op.LHS, write: true})
		}
	case cfa.OpHavoc:
		if globals[op.LHS] {
			out = append(out, access{v: op.LHS, write: true})
		}
	case cfa.OpAssume:
		for v := range expr.FreeVars(op.Pred) {
			if globals[v] {
				out = append(out, access{v: v, write: false})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
	return out
}

// onAccess advances the Eraser state machine for one access.
func onAccess(vars map[string]*varInfo, v string, thread int, write bool, held map[string]bool, edge *cfa.Edge) {
	info, ok := vars[v]
	if !ok {
		info = &varInfo{state: Virgin, owner: -1, lockset: map[string]bool{atomicLock: true}}
		vars[v] = info
	}
	switch info.state {
	case Virgin:
		if write {
			info.state = Exclusive
			info.owner = thread
		}
		// Eraser tracks reads of virgin data as exclusive too.
		if !write {
			info.state = Exclusive
			info.owner = thread
		}
		return
	case Exclusive:
		if thread == info.owner {
			return
		}
		// Second thread: refine the lockset now.
		intersect(info.lockset, held)
		if write {
			info.state = SharedModified
		} else {
			info.state = Shared
		}
	case Shared:
		intersect(info.lockset, held)
		if write {
			info.state = SharedModified
		}
	case SharedModified:
		intersect(info.lockset, held)
	}
	if info.state == SharedModified && len(info.lockset) == 0 && !info.warned {
		info.warned = true
		kind := "read"
		if write {
			kind = "write"
		}
		info.firstWarn = fmt.Sprintf("%s by thread %d at %s with empty lockset (op %s)", kind, thread, edge.Pos, edge.Op)
	}
}

func intersect(dst map[string]bool, src map[string]bool) {
	for l := range dst {
		if !src[l] {
			delete(dst, l)
		}
	}
}
