package lockset

import (
	"strings"
	"testing"

	"circ/internal/cfa"
	"circ/internal/explicit"
	"circ/internal/lang"
)

func instance(t *testing.T, src string, n int) *explicit.Instance {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return explicit.NewSymmetric(c, n)
}

func TestAtomicProtectedIsSilent(t *testing.T) {
	in := instance(t, `
global int x;
thread T {
  while (1) { atomic { x = x + 1; } }
}
`, 3)
	rep, err := Analyze(in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy("x") {
		t.Fatalf("atomic-protected variable flagged: %s", rep.Warnings["x"])
	}
	if !strings.Contains(rep.String(), "no warnings") {
		t.Fatalf("String() = %q", rep.String())
	}
}

// The paper's core claim: lockset-based tools falsely flag the test-and-set
// idiom because x is accessed outside any lock (atomic section) even though
// the state variable orders the accesses.
func TestTestAndSetFalsePositive(t *testing.T) {
	in := instance(t, `
global int x;
global int state;
thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`, 3)
	rep, err := Analyze(in, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Racy("x") {
		t.Fatalf("lockset should flag x in the test-and-set idiom (false positive)")
	}
	if rep.String() == "" || !strings.Contains(rep.String(), "x") {
		t.Fatalf("warning rendering broken: %q", rep.String())
	}
}

func TestGenuineRaceFlagged(t *testing.T) {
	in := instance(t, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`, 2)
	rep, err := Analyze(in, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Racy("x") {
		t.Fatalf("unprotected counter not flagged")
	}
}

func TestExclusiveSingleThreadSilent(t *testing.T) {
	// One thread only: variables stay Exclusive, never warned.
	in := instance(t, `
global int x;
thread T {
  while (1) { x = x + 1; }
}
`, 1)
	rep, err := Analyze(in, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy("x") {
		t.Fatalf("single-thread access flagged")
	}
}

func TestReadSharedStaysSilent(t *testing.T) {
	// One writer-free global read by everyone: Shared state, no warning.
	in := instance(t, `
global int r;
global int sink;
thread T {
  local int tmp;
  while (1) {
    tmp = r;
    atomic { sink = tmp; }
  }
}
`, 3)
	rep, err := Analyze(in, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy("r") {
		t.Fatalf("read-only shared variable flagged")
	}
}

func TestStateMachineStates(t *testing.T) {
	for s, want := range map[VarState]string{
		Virgin: "virgin", Exclusive: "exclusive", Shared: "shared", SharedModified: "shared-modified",
	} {
		if s.String() != want {
			t.Errorf("VarState(%d) = %q", int(s), s.String())
		}
	}
}

func TestAccessesOf(t *testing.T) {
	in := instance(t, `
global int a;
global int b;
thread T {
  local int l;
  l = a + b;
  a = l;
  b = *;
  assume(a > 0);
}
`, 1)
	c := in.CFAs[0]
	globals := map[string]bool{"a": true, "b": true}
	var reads, writes int
	for _, e := range c.Edges {
		for _, acc := range accessesOf(e.Op, globals) {
			if acc.write {
				writes++
			} else {
				reads++
			}
		}
	}
	// Reads: a,b in l=a+b; a in assume. Writes: a=l; b=*.
	if reads != 3 || writes != 2 {
		t.Fatalf("reads=%d writes=%d, want 3/2", reads, writes)
	}
}
