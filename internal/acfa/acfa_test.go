package acfa

import (
	"testing"

	"circ/internal/pred"
)

func TestEmptyACFA(t *testing.T) {
	a := Empty(pred.NewSet())
	if !a.IsEmpty() || a.NumLocs() != 1 || a.Entry != 0 {
		t.Fatalf("empty ACFA malformed: %d locs, %d edges", a.NumLocs(), len(a.Edges))
	}
	if a.IsAtomic(0) {
		t.Fatalf("empty ACFA location should not be atomic")
	}
	if a.Label(0) == nil || a.Label(0).Len() != 1 {
		t.Fatalf("empty ACFA label should be the true region")
	}
}

func TestAddEdgeSortsAndDedups(t *testing.T) {
	s := pred.NewSet()
	a := Empty(s)
	l1 := a.AddLoc(pred.TrueRegion(s), true)
	e := a.AddEdge(0, l1, []string{"z", "a", "z"})
	if len(e.Havoc) != 2 || e.Havoc[0] != "a" || e.Havoc[1] != "z" {
		t.Fatalf("havoc = %v", e.Havoc)
	}
	a.Finish()
	if len(a.OutEdges(0)) != 1 {
		t.Fatalf("adjacency not rebuilt")
	}
	if !a.WritesVarAt(0, "z") || a.WritesVarAt(0, "q") {
		t.Fatalf("WritesVarAt broken")
	}
	hs := e.HavocSet()
	if !hs["a"] || !hs["z"] || len(hs) != 2 {
		t.Fatalf("HavocSet = %v", hs)
	}
}

// buildChain returns an ACFA 0 -tau-> 1 -{g}-> 2 -tau-> 3.
func buildChain(t *testing.T) *ACFA {
	t.Helper()
	s := pred.NewSet()
	a := &ACFA{}
	for i := 0; i < 4; i++ {
		a.AddLoc(pred.TrueRegion(s), false)
	}
	a.AddEdge(0, 1, nil)
	a.AddEdge(1, 2, []string{"g"})
	a.AddEdge(2, 3, nil)
	a.Finish()
	return a
}

func TestTauClosure(t *testing.T) {
	a := buildChain(t)
	tc := TauClosure(a)
	if len(tc[0]) != 2 || tc[0][0] != 0 || tc[0][1] != 1 {
		t.Fatalf("tc[0] = %v", tc[0])
	}
	if len(tc[2]) != 2 {
		t.Fatalf("tc[2] = %v", tc[2])
	}
	if len(tc[3]) != 1 {
		t.Fatalf("tc[3] = %v", tc[3])
	}
}

func TestWeakMoves(t *testing.T) {
	a := buildChain(t)
	w := WeakMoves(a)
	// From 0: tau moves to {0,1}, and a weak {g} move to {2,3}.
	var tauTargets, gTargets []Loc
	for _, m := range w[0] {
		if len(m.Havoc) == 0 {
			tauTargets = append(tauTargets, m.Dst)
		} else {
			gTargets = append(gTargets, m.Dst)
		}
	}
	if len(tauTargets) != 2 {
		t.Fatalf("tau targets from 0: %v", tauTargets)
	}
	if len(gTargets) != 2 {
		t.Fatalf("{g} targets from 0: %v (want 2 and 3)", gTargets)
	}
}

func TestWeakMovesCycle(t *testing.T) {
	// Tau cycle 0 <-> 1 must terminate and include both.
	s := pred.NewSet()
	a := &ACFA{}
	a.AddLoc(pred.TrueRegion(s), false)
	a.AddLoc(pred.TrueRegion(s), false)
	a.AddEdge(0, 1, nil)
	a.AddEdge(1, 0, nil)
	a.Finish()
	tc := TauClosure(a)
	if len(tc[0]) != 2 || len(tc[1]) != 2 {
		t.Fatalf("cycle closure: %v %v", tc[0], tc[1])
	}
}

func TestHavocKey(t *testing.T) {
	if HavocKey(nil) != "" {
		t.Fatalf("empty havoc key should be empty string")
	}
	if HavocKey([]string{"a", "b"}) != "a,b" {
		t.Fatalf("key = %q", HavocKey([]string{"a", "b"}))
	}
}

func TestStringAndDot(t *testing.T) {
	a := buildChain(t)
	if a.String() == "" || a.Dot() == "" {
		t.Fatalf("empty render")
	}
}
