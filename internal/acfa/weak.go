package acfa

import (
	"sort"
	"strings"
)

// HavocKey returns the canonical string for a sorted havoc set; the empty
// string denotes a tau move.
func HavocKey(h []string) string { return strings.Join(h, ",") }

// WeakMove is a weak transition: tau* (Havoc empty) or tau*-Y-tau*.
type WeakMove struct {
	Dst   Loc
	Havoc []string // sorted; empty = pure tau
}

// TauClosure returns, per location, the set of locations reachable via
// zero or more tau edges (edges with empty havoc).
func TauClosure(a *ACFA) [][]Loc {
	n := a.NumLocs()
	out := make([][]Loc, n)
	for l := 0; l < n; l++ {
		seen := make([]bool, n)
		seen[l] = true
		stack := []Loc{Loc(l)}
		var reach []Loc
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			reach = append(reach, cur)
			for _, e := range a.Out[cur] {
				if len(e.Havoc) == 0 && !seen[e.Dst] {
					seen[e.Dst] = true
					stack = append(stack, e.Dst)
				}
			}
		}
		sort.Slice(reach, func(i, j int) bool { return reach[i] < reach[j] })
		out[l] = reach
	}
	return out
}

// WeakMoves computes the saturated weak transition relation: for each
// location, the pure-tau moves (tau*, including staying put) and the
// tau*-Y-tau* moves for each non-empty havoc label Y.
func WeakMoves(a *ACFA) [][]WeakMove {
	n := a.NumLocs()
	tc := TauClosure(a)
	out := make([][]WeakMove, n)
	for l := 0; l < n; l++ {
		seen := make(map[string]bool)
		var moves []WeakMove
		add := func(dst Loc, havoc []string) {
			key := HavocKey(havoc) + "@" + itoa(int(dst))
			if seen[key] {
				return
			}
			seen[key] = true
			moves = append(moves, WeakMove{Dst: dst, Havoc: havoc})
		}
		for _, mid := range tc[l] {
			// Pure tau move.
			add(mid, nil)
			for _, e := range a.Out[mid] {
				if len(e.Havoc) == 0 {
					continue
				}
				for _, end := range tc[e.Dst] {
					add(end, e.Havoc)
				}
			}
		}
		out[l] = moves
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
