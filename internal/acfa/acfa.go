// Package acfa defines abstract control flow automata (ACFAs), the paper's
// context model: directed graphs whose locations are labelled with regions
// over the global variables (and optionally marked atomic) and whose edges
// are labelled with sets of havoced globals.
//
// When an abstract thread traverses an edge, the havoced variables take
// arbitrary values constrained only by the target location's region.
package acfa

import (
	"fmt"
	"sort"
	"strings"

	"circ/internal/expr"
	"circ/internal/pred"
)

// Loc is an abstract location index.
type Loc int

// Edge is a havoc edge between abstract locations.
type Edge struct {
	Src, Dst Loc
	Havoc    []string // sorted global names written along the edge
}

// HavocSet returns the havoc variables as a set.
func (e *Edge) HavocSet() map[string]bool {
	m := make(map[string]bool, len(e.Havoc))
	for _, v := range e.Havoc {
		m[v] = true
	}
	return m
}

func (e *Edge) String() string {
	return fmt.Sprintf("%d --{%s}--> %d", e.Src, strings.Join(e.Havoc, ","), e.Dst)
}

// LocInfo carries a location's label and atomicity.
type LocInfo struct {
	Label  *pred.Region // over global variables; nil means true
	Atomic bool
}

// ACFA is an abstract control flow automaton. The empty ACFA (a context
// that does nothing) has a single true-labelled location and no edges.
type ACFA struct {
	Locs  []LocInfo
	Entry Loc
	Edges []*Edge
	Out   [][]*Edge
}

// Empty returns the empty ACFA over predicate set s: one non-atomic
// location labelled true, no edges.
func Empty(s *pred.Set) *ACFA {
	a := &ACFA{
		Locs:  []LocInfo{{Label: pred.TrueRegion(s)}},
		Entry: 0,
	}
	a.Finish()
	return a
}

// NumLocs returns the number of abstract locations.
func (a *ACFA) NumLocs() int { return len(a.Locs) }

// IsAtomic reports whether location l is atomic.
func (a *ACFA) IsAtomic(l Loc) bool { return a.Locs[l].Atomic }

// Label returns the region labelling l.
func (a *ACFA) Label(l Loc) *pred.Region { return a.Locs[l].Label }

// OutEdges returns the edges leaving l.
func (a *ACFA) OutEdges(l Loc) []*Edge { return a.Out[l] }

// WritesVarAt reports whether some edge out of l havocs x (the abstract
// thread "can write x" at l). Abstract threads never read.
func (a *ACFA) WritesVarAt(l Loc, x string) bool {
	for _, e := range a.Out[l] {
		for _, v := range e.Havoc {
			if v == x {
				return true
			}
		}
	}
	return false
}

// AddLoc appends a location and returns its index.
func (a *ACFA) AddLoc(label *pred.Region, atomic bool) Loc {
	a.Locs = append(a.Locs, LocInfo{Label: label, Atomic: atomic})
	return Loc(len(a.Locs) - 1)
}

// AddEdge appends an edge (havoc is sorted and deduplicated).
func (a *ACFA) AddEdge(src, dst Loc, havoc []string) *Edge {
	h := dedupSorted(havoc)
	e := &Edge{Src: src, Dst: dst, Havoc: h}
	a.Edges = append(a.Edges, e)
	return e
}

func dedupSorted(vs []string) []string {
	out := append([]string(nil), vs...)
	sort.Strings(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// Finish (re)computes the adjacency index; call after mutation.
func (a *ACFA) Finish() {
	a.Out = make([][]*Edge, len(a.Locs))
	for _, e := range a.Edges {
		a.Out[e.Src] = append(a.Out[e.Src], e)
	}
}

// IsEmpty reports whether the ACFA has no edges (the do-nothing context).
func (a *ACFA) IsEmpty() bool { return len(a.Edges) == 0 }

// String renders the automaton for the figure reproductions.
func (a *ACFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ACFA (entry %d, %d locations, %d edges)\n", a.Entry, a.NumLocs(), len(a.Edges))
	for l := 0; l < a.NumLocs(); l++ {
		mark := " "
		if a.Locs[l].Atomic {
			mark = "*"
		}
		label := "true"
		if a.Locs[l].Label != nil {
			label = a.Locs[l].Label.String()
		}
		fmt.Fprintf(&b, "  %s%d: [%s]\n", mark, l, label)
		for _, e := range a.Out[l] {
			fmt.Fprintf(&b, "      --{%s}--> %d\n", strings.Join(e.Havoc, ","), e.Dst)
		}
	}
	return b.String()
}

// Dot renders the automaton in Graphviz dot format.
func (a *ACFA) Dot() string {
	var b strings.Builder
	b.WriteString("digraph acfa {\n")
	for l := 0; l < a.NumLocs(); l++ {
		shape := "ellipse"
		if a.Locs[l].Atomic {
			shape = "doubleoctagon"
		}
		label := "true"
		if a.Locs[l].Label != nil {
			label = a.Locs[l].Label.String()
		}
		fmt.Fprintf(&b, "  n%d [shape=%s,label=\"%d: %s\"];\n", l, shape, l, label)
	}
	for _, e := range a.Edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"{%s}\"];\n", e.Src, e.Dst, strings.Join(e.Havoc, ","))
	}
	b.WriteString("}\n")
	return b.String()
}

// AppendExprIDs appends every interned formula ID the context model's
// location labels hold (region cube formulas and predicate literals) to
// dst — the ACFA's contribution to an arena-compaction root set.
func (a *ACFA) AppendExprIDs(dst []expr.ID) []expr.ID {
	for _, li := range a.Locs {
		if li.Label != nil {
			dst = li.Label.AppendExprIDs(dst)
		}
	}
	return dst
}
