package refine

import (
	"context"
	"strings"
	"testing"

	"circ/internal/acfa"
	"circ/internal/bisim"
	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/lang"
	"circ/internal/pred"
	"circ/internal/reach"
	"circ/internal/smt"
)

func buildCFA(t *testing.T, src string) *cfa.CFA {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

func TestStripSSA(t *testing.T) {
	cases := map[string]string{
		"x":       "x",
		"x#3":     "x",
		"old@2#1": "old",
		"old@2":   "old",
		"a#0":     "a",
		"f$ret$1": "f$ret$1",
		"y#12#3":  "y", // defensive: first # wins
	}
	for in, want := range cases {
		if got := stripSSA(in); got != want {
			t.Errorf("stripSSA(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCanonicalAtom(t *testing.T) {
	x := expr.V("x")
	y := expr.V("y")
	// Ne becomes Eq; Eq orients by key.
	a := canonicalAtom(expr.Ne(y, x))
	b := canonicalAtom(expr.Eq(x, y))
	if a.Key() != b.Key() {
		t.Errorf("Ne/Eq not canonicalised: %s vs %s", a.Key(), b.Key())
	}
	// Gt becomes Le, Ge becomes Lt.
	if canonicalAtom(expr.Gt(x, y)).(expr.Cmp).Op != expr.OpLe {
		t.Errorf("Gt not canonicalised")
	}
	if canonicalAtom(expr.Ge(x, y)).(expr.Cmp).Op != expr.OpLt {
		t.Errorf("Ge not canonicalised")
	}
}

func TestTraceFormulaSSA(t *testing.T) {
	c := buildCFA(t, `
global int g;
thread T {
  local int l;
  l = g;
  g = l + 1;
}
`)
	// Manually build the interleaving: thread 0 runs l=g; g=l+1, then
	// thread 1 runs its own l=g.
	var lg, gl *cfa.Edge
	for _, e := range c.Edges {
		if e.Op.Kind == cfa.OpAssign && e.Op.LHS == "l" {
			lg = e
		}
		if e.Op.Kind == cfa.OpAssign && e.Op.LHS == "g" {
			gl = e
		}
	}
	if lg == nil || gl == nil {
		t.Fatalf("edges not found")
	}
	iv := &Interleaving{Steps: []ConcreteStep{
		{ThreadID: 0, Edge: lg},
		{ThreadID: 0, Edge: gl},
		{ThreadID: 1, Edge: lg},
	}}
	clauses := TraceFormula(c, iv)
	joined := ""
	for _, cl := range clauses {
		joined += cl.String() + "\n"
	}
	// Expect: g#0 == 0 (init), l#1 == g#0, g#1 == l#1 + 1, l@1#1 == g#1.
	for _, want := range []string{"g#0 == 0", "l#1 == g#0", "g#1 == (l#1 + 1)", "l@1#1 == g#1"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace formula missing %q:\n%s", want, joined)
		}
	}
	// And it must be satisfiable (a straight-line feasible trace).
	chk := smt.NewChecker()
	if chk.Sat(expr.Conj(clauses...)) != smt.Sat {
		t.Fatalf("feasible trace declared unsat:\n%s", joined)
	}
}

func TestTraceFormulaInfeasibleBranch(t *testing.T) {
	c := buildCFA(t, `
global int g;
thread T {
  g = 1;
  if (g == 0) { g = 2; }
}
`)
	var set1 *cfa.Edge
	var asmEq *cfa.Edge
	for _, e := range c.Edges {
		if e.Op.Kind == cfa.OpAssign && expr.Equal(e.Op.RHS, expr.Num(1)) {
			set1 = e
		}
		if e.Op.Kind == cfa.OpAssume && expr.Equal(e.Op.Pred, expr.Eq(expr.V("g"), expr.Num(0))) {
			asmEq = e
		}
	}
	if set1 == nil || asmEq == nil {
		t.Fatalf("edges not found")
	}
	iv := &Interleaving{Steps: []ConcreteStep{
		{ThreadID: 0, Edge: set1},
		{ThreadID: 0, Edge: asmEq},
	}}
	clauses := TraceFormula(c, iv)
	chk := smt.NewChecker()
	if chk.Sat(expr.Conj(clauses...)) != smt.Unsat {
		t.Fatalf("infeasible trace declared sat")
	}
	core, ok := chk.UnsatCore(clauses)
	if !ok || len(core) == 0 {
		t.Fatalf("no core")
	}
	preds := minePredicates(clauses, core)
	if len(preds) == 0 {
		t.Fatalf("no predicates mined")
	}
	// Expect g == 1 (canonicalised as 1 == g or g == 1) and g == 0 shaped atoms.
	keys := map[string]bool{}
	for _, p := range preds {
		keys[p.String()] = true
	}
	if len(keys) < 2 {
		t.Fatalf("mined predicates too few: %v", preds)
	}
	for _, p := range preds {
		if expr.Mentions(p, "g#1") || expr.Mentions(p, "g#0") {
			t.Fatalf("SSA decoration leaked into predicate %v", p)
		}
	}
}

func TestMinePredicatesNilCore(t *testing.T) {
	clauses := []expr.Expr{expr.Eq(expr.V("a#0"), expr.Num(0))}
	preds := minePredicates(clauses, nil)
	if len(preds) != 1 || preds[0].String() != "0 == a" {
		t.Fatalf("preds = %v", preds)
	}
}

// fullRefineSetup reproduces the worked example's iteration 2: reach under
// the empty context, collapse, reach under the weak context, and a race
// trace to refine.
func fullRefineSetup(t *testing.T) (Input, *reach.Result) {
	t.Helper()
	c := buildCFA(t, `
global int x;
global int state;
thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`)
	chk := smt.NewChecker()
	set := pred.NewSet()
	abs := pred.NewAbstractor(chk, set)
	res1, err := reach.ReachAndBuild(context.Background(), c, acfa.Empty(set), abs, "x", reach.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	a1, mu := bisim.Collapse(context.Background(), res1.ARG, chk, nil)
	res2, err := reach.ReachAndBuild(context.Background(), c, a1, abs, "x", reach.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Races) == 0 {
		t.Fatal("no race under weak context")
	}
	return Input{
		C: c, A: a1, ARG: res1.ARG, Mu: mu,
		Trace: res2.Races[0], RaceVar: "x", K: 1, Chk: chk,
	}, res2
}

func TestRefineWorkedExample(t *testing.T) {
	in, _ := fullRefineSetup(t)
	out, err := Refine(in)
	if err != nil {
		t.Fatalf("refine: %v", err)
	}
	if out.Kind != NewPreds {
		t.Fatalf("kind = %v, want new-predicates", out.Kind)
	}
	// The paper's iteration 2 discovers old = state and old = 0 (we may
	// also find state = 0); check the essential ones are present.
	found := map[string]bool{}
	for _, p := range out.Preds {
		found[p.String()] = true
	}
	if !found["old == state"] && !found["state == old"] {
		t.Errorf("missing predicate old == state in %v", out.Preds)
	}
	if len(out.TF) == 0 {
		t.Errorf("no trace formula recorded")
	}
	if out.Interleaving == nil || len(out.Interleaving.Steps) == 0 {
		t.Errorf("no interleaving recorded")
	}
	if out.Interleaving.String() == "" {
		t.Errorf("empty interleaving render")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Real: "real", NewPreds: "new-predicates", IncrementK: "increment-k", Stuck: "stuck",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", int(k), k.String())
		}
	}
}

func TestAssignThreadsExactSeedLimit(t *testing.T) {
	in, _ := fullRefineSetup(t)
	in.ExactSeed = true
	in.K = 0 // no context threads may be minted
	out, err := Refine(in)
	if err != nil {
		t.Fatalf("refine: %v", err)
	}
	if out.Kind != IncrementK {
		t.Fatalf("kind = %v, want increment-k when minting is forbidden", out.Kind)
	}
}

func TestWPMiningStrategy(t *testing.T) {
	in, _ := fullRefineSetup(t)
	in.Strategy = MineWP
	out, err := Refine(in)
	if err != nil {
		t.Fatalf("refine: %v", err)
	}
	if out.Kind != NewPreds {
		t.Fatalf("kind = %v, want new-predicates", out.Kind)
	}
	if len(out.Preds) == 0 {
		t.Fatalf("WP mining produced no predicates")
	}
	for _, p := range out.Preds {
		for v := range map[string]bool{} {
			_ = v
		}
		s := p.String()
		if strings.Contains(s, "#") || strings.Contains(s, "@") {
			t.Fatalf("SSA decoration leaked: %s", s)
		}
	}
}

func TestMineBothSupersetOfAtoms(t *testing.T) {
	in, _ := fullRefineSetup(t)
	in.Strategy = MineBoth
	both, err := Refine(in)
	if err != nil {
		t.Fatal(err)
	}
	in2, _ := fullRefineSetup(t)
	atoms, err := Refine(in2)
	if err != nil {
		t.Fatal(err)
	}
	if both.Kind != NewPreds || atoms.Kind != NewPreds {
		t.Fatalf("kinds: %v %v", both.Kind, atoms.Kind)
	}
	keys := map[string]bool{}
	for _, p := range both.Preds {
		keys[p.Key()] = true
	}
	for _, p := range atoms.Preds {
		if !keys[p.Key()] {
			t.Fatalf("MineBoth missing atom predicate %v", p)
		}
	}
}

func TestFormatTraceWithWitness(t *testing.T) {
	c := buildCFA(t, `
global int g;
thread T {
  local int l;
  l = g;
  g = l + 1;
}
`)
	var lg, gl *cfa.Edge
	for _, e := range c.Edges {
		if e.Op.Kind == cfa.OpAssign && e.Op.LHS == "l" {
			lg = e
		}
		if e.Op.Kind == cfa.OpAssign && e.Op.LHS == "g" {
			gl = e
		}
	}
	iv := &Interleaving{Steps: []ConcreteStep{
		{ThreadID: 0, Edge: lg},
		{ThreadID: 0, Edge: gl},
		{ThreadID: 1, Edge: lg},
	}}
	clauses := TraceFormula(c, iv)
	chk := smt.NewChecker()
	res, model := chk.SatModel(expr.Conj(clauses...))
	if res != smt.Sat {
		t.Fatalf("trace should be sat")
	}
	out := FormatTraceWithWitness(c, iv, model)
	if !strings.Contains(out, "[l = 0]") || !strings.Contains(out, "[g = 1]") {
		t.Fatalf("witness annotations missing:\n%s", out)
	}
	if !strings.Contains(out, "T1: l := g") {
		t.Fatalf("thread tags missing:\n%s", out)
	}
}

func TestTraceFormulaStepsAlignment(t *testing.T) {
	c := buildCFA(t, `
global int g;
thread T {
  g = 1;
  assume(g == 1);
}
`)
	var set1, asm *cfa.Edge
	for _, e := range c.Edges {
		if e.Op.Kind == cfa.OpAssign {
			set1 = e
		}
		if e.Op.Kind == cfa.OpAssume && expr.Mentions(e.Op.Pred, "g") {
			asm = e
		}
	}
	iv := &Interleaving{Steps: []ConcreteStep{
		{ThreadID: 0, Edge: set1},
		{ThreadID: 0, Edge: asm},
	}}
	clauses, stepOf := TraceFormulaSteps(c, iv)
	if len(clauses) != len(stepOf) {
		t.Fatalf("misaligned: %d clauses, %d steps", len(clauses), len(stepOf))
	}
	if stepOf[len(stepOf)-1] != 1 {
		t.Fatalf("last clause step = %d, want 1", stepOf[len(stepOf)-1])
	}
}
