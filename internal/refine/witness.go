package refine

import (
	"fmt"
	"strings"

	"circ/internal/cfa"
	"circ/internal/expr"
)

// FormatTraceWithWitness renders an interleaved trace with concrete
// variable values from an SSA model of its trace formula (obtained when
// the feasibility check returned satisfiable). Each step that writes a
// variable is annotated with the written value; assumes show the values
// of the variables they read. Model entries are SSA names as produced by
// TraceFormula.
func FormatTraceWithWitness(c *cfa.CFA, iv *Interleaving, model map[string]int64) string {
	ver := make(map[string]int)
	key := func(v string, t int) string {
		if c.IsGlobal(v) || t == 0 {
			return v
		}
		return v + "@" + itoa(t)
	}
	cur := func(v string, t int) string {
		k := key(v, t)
		return k + "#" + itoa(ver[k])
	}
	lookup := func(ssa string) (int64, bool) {
		v, ok := model[ssa]
		return v, ok
	}

	var b strings.Builder
	for _, s := range iv.Steps {
		op := s.Edge.Op
		fmt.Fprintf(&b, "T%d: %s", s.ThreadID, op)
		switch op.Kind {
		case cfa.OpAssign, cfa.OpHavoc:
			k := key(op.LHS, s.ThreadID)
			ver[k]++
			if v, ok := lookup(k + "#" + itoa(ver[k])); ok {
				fmt.Fprintf(&b, "   [%s = %d]", op.LHS, v)
			}
		case cfa.OpAssume:
			var parts []string
			for _, v := range expr.SortedVars(op.Pred) {
				if val, ok := lookup(cur(v, s.ThreadID)); ok {
					parts = append(parts, fmt.Sprintf("%s = %d", v, val))
				}
			}
			if len(parts) > 0 {
				fmt.Fprintf(&b, "   [%s]", strings.Join(parts, ", "))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
