// Package refine implements the paper's Refine procedure: analysing an
// abstract counterexample from ReachAndBuild. It
//
//  1. assigns the trace's environment moves to individual context threads,
//     detecting when the counter parameter k was too small;
//  2. concretises each context thread's abstract (ACFA) path into a CFA
//     path, using the previous ARG of which the context model is the weak
//     bisimulation quotient;
//  3. builds the interleaved trace formula (Figure 5) in SSA form and
//     checks its satisfiability;
//  4. on unsatisfiability, mines new predicates from a minimal unsat core
//     (the BLAST-style substitute for the proof-based predicate discovery
//     of "Abstractions from Proofs").
package refine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"circ/internal/acfa"
	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/journal"
	"circ/internal/reach"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

// Kind classifies the refinement outcome.
type Kind int

// Outcomes.
const (
	// Real: the counterexample is genuine; Interleaving is a feasible
	// concrete interleaved trace ending in a race.
	Real Kind = iota
	// NewPreds: the counterexample is spurious; Preds contains new
	// predicates ruling it out.
	NewPreds
	// IncrementK: the trace needs more context threads than the counter
	// tracks; retry with k+1.
	IncrementK
	// Stuck: the trace is spurious but no new predicates were found (the
	// checker must give up with "unknown").
	Stuck
)

func (k Kind) String() string {
	switch k {
	case Real:
		return "real"
	case NewPreds:
		return "new-predicates"
	case IncrementK:
		return "increment-k"
	case Stuck:
		return "stuck"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Input bundles what Refine needs.
type Input struct {
	C   *cfa.CFA
	A   *acfa.ACFA // current context model
	ARG *reach.ARG // ARG of which A is the quotient; nil when A is empty
	Mu  map[int]acfa.Loc
	// Trace is the abstract counterexample.
	Trace *reach.Trace
	// RaceVar is the variable the trace races on.
	RaceVar string
	// K and ExactSeed mirror the reachability options: with ExactSeed only
	// K context threads exist, bounding thread minting.
	K         int
	ExactSeed bool
	Chk       smt.Solver
	// Strategy selects the predicate-mining method (default MineAtoms).
	Strategy MineStrategy
	// Metrics, when non-nil, receives per-outcome refinement counters.
	Metrics *telemetry.Registry
	// Journal, when non-nil, receives one trace_analyzed event per call,
	// classifying this counterexample.
	Journal *journal.Stream
}

// ConcreteStep is one operation of the interleaved concrete trace;
// ThreadID 0 is the main thread, context threads count from 1.
type ConcreteStep struct {
	ThreadID int
	Edge     *cfa.Edge
}

// Interleaving is a concrete interleaved trace.
type Interleaving struct {
	Steps []ConcreteStep
}

func (iv *Interleaving) String() string {
	var b strings.Builder
	for _, s := range iv.Steps {
		fmt.Fprintf(&b, "T%d: %s\n", s.ThreadID, s.Edge.Op)
	}
	return b.String()
}

// Outcome is the refinement result.
type Outcome struct {
	Kind         Kind
	Preds        []expr.Expr   // NewPreds
	Interleaving *Interleaving // Real (feasible) and NewPreds (spurious)
	// TF is the SSA trace formula, one clause per concrete step (skipping
	// trivially-true clauses); Core indexes the minimal unsat subset when
	// the trace is spurious.
	TF   []expr.Expr
	Core []int
	// Witness is a satisfying SSA model of TF (Real only; may be nil when
	// the solver returned unknown). Render with FormatTraceWithWitness.
	Witness map[string]int64
}

// Refine analyses the abstract counterexample.
func Refine(in Input) (*Outcome, error) {
	start := time.Now()
	out, err := refine(in)
	in.Metrics.Histogram("refine.analyze").Since(start)
	switch {
	case err != nil:
		in.Metrics.Counter("refine.errors").Inc()
	case out != nil:
		in.Metrics.Counter("refine." + outcomeKey(out.Kind)).Inc()
		in.Metrics.Counter("refine.preds.mined").Add(int64(len(out.Preds)))
	}
	if in.Journal.Enabled() {
		e := journal.Event{Type: journal.EvTraceAnalyzed}
		if in.Trace != nil {
			e.TraceLen = len(in.Trace.Steps)
		}
		switch {
		case err != nil:
			e.Outcome = "error"
		case out != nil:
			e.Outcome = out.Kind.String()
			if out.Interleaving != nil {
				e.Steps = len(out.Interleaving.Steps)
			}
		}
		in.Journal.Emit(e)
	}
	return out, err
}

// outcomeKey is the metric-name suffix of a refinement outcome.
func outcomeKey(k Kind) string {
	switch k {
	case Real:
		return "real"
	case NewPreds:
		return "newpreds"
	case IncrementK:
		return "inck"
	}
	return "stuck"
}

func refine(in Input) (*Outcome, error) {
	threads, err := assignThreads(in)
	if err != nil {
		if err == errCounterTooLow {
			return &Outcome{Kind: IncrementK}, nil
		}
		return nil, err
	}
	iv, err := concretize(in, threads)
	if err != nil {
		return nil, err
	}
	clauses, stepOf := TraceFormulaSteps(in.C, iv)
	conj := expr.Conj(clauses...)
	switch in.Chk.Sat(conj) {
	case smt.Sat, smt.Unknown:
		// Feasible (or not provably infeasible): report as a genuine race,
		// with a witness model over the SSA variables when available.
		_, model := in.Chk.SatModel(conj)
		return &Outcome{Kind: Real, Interleaving: iv, TF: clauses, Witness: model}, nil
	}
	core, _ := in.Chk.UnsatCore(clauses)
	var preds []expr.Expr
	switch in.Strategy {
	case MineWP:
		preds = wpMinePredicates(in.C, iv, clauses, stepOf, core)
	case MineBoth:
		preds = minePredicates(clauses, core)
		seen := make(map[string]bool, len(preds))
		for _, p := range preds {
			seen[p.Key()] = true
		}
		for _, p := range wpMinePredicates(in.C, iv, clauses, stepOf, core) {
			if !seen[p.Key()] {
				seen[p.Key()] = true
				preds = append(preds, p)
			}
		}
	default:
		preds = minePredicates(clauses, core)
	}
	if len(preds) == 0 {
		return &Outcome{Kind: Stuck, Interleaving: iv, TF: clauses, Core: core}, nil
	}
	return &Outcome{Kind: NewPreds, Preds: preds, Interleaving: iv, TF: clauses, Core: core}, nil
}

var errCounterTooLow = fmt.Errorf("refine: counter parameter too low")

// ctxThread tracks one context thread's abstract path through A.
type ctxThread struct {
	id       int // 1-based
	loc      acfa.Loc
	path     []*acfa.Edge
	stepIdx  []int // index in the abstract trace of each path element
	needGoal bool  // must end at a CFA location writing RaceVar
}

// assignThreads walks the abstract trace and attributes each environment
// move to a specific context thread, minting new threads at the ACFA entry
// as needed (possible because the entry counter is omega; with ExactSeed
// minting is limited to K threads).
func assignThreads(in Input) ([]*ctxThread, error) {
	var threads []*ctxThread
	mint := func() (*ctxThread, error) {
		if in.ExactSeed && len(threads) >= in.K {
			return nil, errCounterTooLow
		}
		t := &ctxThread{id: len(threads) + 1, loc: in.A.Entry}
		threads = append(threads, t)
		return t, nil
	}
	for i, op := range in.Trace.Steps {
		if !op.IsEnv() {
			continue
		}
		e := op.EnvEdge
		var chosen *ctxThread
		for _, t := range threads {
			if t.loc == e.Src {
				chosen = t
				break
			}
		}
		if chosen == nil {
			if e.Src != in.A.Entry {
				// The counter allowed a move no tracked thread can make:
				// an omega counter at a non-entry location was drained
				// further than the threads we materialised.
				return nil, errCounterTooLow
			}
			t, err := mint()
			if err != nil {
				return nil, err
			}
			chosen = t
		}
		chosen.loc = e.Dst
		chosen.path = append(chosen.path, e)
		chosen.stepIdx = append(chosen.stepIdx, i)
	}
	// Decide which threads must end write-capable, from the final state.
	final := in.Trace.States[len(in.Trace.States)-1]
	mainLoc := final.TS.Loc
	mainAccesses := in.C.WritesVarAt(mainLoc, in.RaceVar) || in.C.ReadsVarAt(mainLoc, in.RaceVar)
	need := 2
	if mainAccesses {
		need = 1
	}
	for _, t := range threads {
		if need == 0 {
			break
		}
		if in.A.WritesVarAt(t.loc, in.RaceVar) {
			t.needGoal = true
			need--
		}
	}
	// Remaining writers must be freshly minted threads sitting at entry.
	for need > 0 {
		if !in.A.WritesVarAt(in.A.Entry, in.RaceVar) {
			// The abstract race relied on phantom omega occupancy: a
			// saturated counter kept a location "occupied" after the last
			// tracked thread left it. A larger k delays saturation and
			// either realises the race with real threads or removes it.
			return nil, errCounterTooLow
		}
		t, err := mint()
		if err != nil {
			return nil, err
		}
		t.needGoal = true
		need--
	}
	return threads, nil
}

// segment is the concrete realisation of one abstract step: zero or more
// tau operations followed (except for trailing goal segments) by the
// crossing operation.
type segment []*cfa.Edge

// concretize realises every context thread's abstract path as a CFA path
// through the previous ARG and splices the segments into the main thread's
// operations at the abstract steps' positions.
func concretize(in Input, threads []*ctxThread) (*Interleaving, error) {
	segments := make(map[int][]segment) // thread id -> per-step segments
	trailing := make(map[int]segment)   // thread id -> goal-reaching tail
	for _, t := range threads {
		segs, tail, err := realizePath(in, t)
		if err != nil {
			return nil, err
		}
		segments[t.id] = segs
		trailing[t.id] = tail
	}
	iv := &Interleaving{}
	envSeen := make(map[int]int) // thread id -> next path index
	for i, op := range in.Trace.Steps {
		if !op.IsEnv() {
			iv.Steps = append(iv.Steps, ConcreteStep{ThreadID: 0, Edge: op.MainEdge})
			continue
		}
		// Find which thread owns this step.
		owner := -1
		var pathIdx int
		for _, t := range threads {
			for j, si := range t.stepIdx {
				if si == i {
					owner = t.id
					pathIdx = j
					break
				}
			}
			if owner != -1 {
				break
			}
		}
		if owner == -1 {
			return nil, fmt.Errorf("refine: unattributed environment step %d", i)
		}
		_ = pathIdx
		next := envSeen[owner]
		envSeen[owner] = next + 1
		for _, e := range segments[owner][next] {
			iv.Steps = append(iv.Steps, ConcreteStep{ThreadID: owner, Edge: e})
		}
	}
	// Trailing tau segments that position racing threads on their access
	// locations.
	ids := make([]int, 0, len(trailing))
	for id := range trailing {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		for _, e := range trailing[id] {
			iv.Steps = append(iv.Steps, ConcreteStep{ThreadID: id, Edge: e})
		}
	}
	return iv, nil
}

// realizePath finds a concrete CFA path through the previous ARG whose
// class projection follows the thread's abstract path, split into
// per-abstract-step segments, plus a trailing tau segment satisfying the
// thread's goal (ending at a location that writes RaceVar) when required.
func realizePath(in Input, t *ctxThread) ([]segment, segment, error) {
	if in.ARG == nil {
		// Empty context: threads cannot move; only a goal at the entry is
		// realisable.
		if len(t.path) > 0 {
			return nil, nil, fmt.Errorf("refine: context moves with empty ARG")
		}
		if t.needGoal && !in.C.WritesVarAt(in.C.Entry, in.RaceVar) {
			return nil, nil, fmt.Errorf("refine: goal unreachable in empty context")
		}
		return nil, nil, nil
	}
	classOfKey := func(key string) (acfa.Loc, bool) {
		root := in.ARG.FindState(key)
		if root < 0 {
			return 0, false
		}
		c, ok := in.Mu[root]
		return c, ok
	}

	start := visit{key: in.ARG.EntryKey()}
	startClass, ok := classOfKey(start.key)
	if !ok || startClass != in.A.Entry {
		return nil, nil, fmt.Errorf("refine: ARG entry not mapped to ACFA entry")
	}
	goalMet := func(v *visit) bool {
		if v.i != len(t.path) {
			return false
		}
		st, ok := threadStateOf(in.ARG, v.key)
		if !ok {
			return false
		}
		if !t.needGoal {
			// Resting position between/after moves must respect the
			// abstract location's atomicity (a thread parked inside an
			// atomic section would invalidate the interleaving's
			// scheduling).
			return len(t.path) == 0 || in.C.IsAtomic(st.Loc) == in.A.IsAtomic(t.path[len(t.path)-1].Dst)
		}
		// A race participant must sit at a non-atomic location with the
		// racing write enabled (a race state has no thread in an atomic
		// section).
		return !in.C.IsAtomic(st.Loc) && in.C.WritesVarAt(st.Loc, in.RaceVar)
	}
	seen := map[string]bool{fmt.Sprintf("%s/%d", start.key, 0): true}
	queue := []*visit{&start}
	push := func(v *visit) {
		k := fmt.Sprintf("%s/%d", v.key, v.i)
		if seen[k] {
			return
		}
		seen[k] = true
		queue = append(queue, v)
	}
	var goal *visit
	for len(queue) > 0 && goal == nil {
		v := queue[0]
		queue = queue[1:]
		if goalMet(v) {
			goal = v
			break
		}
		for _, tr := range in.ARG.OpTransitionsFrom(v.key) {
			dstKey := tr.Dst.Key()
			w := tr.Edge.Op.WritesVar()
			wGlobal := w != "" && in.C.IsGlobal(w)
			// tau move: writes no global. Weak-transition semantics places
			// no class constraint on intermediate states (tau* may pass
			// through other classes, e.g. straight through an atomic
			// block).
			if !wGlobal {
				push(&visit{key: dstKey, i: v.i, parent: v, edge: tr.Edge})
			}
			// Consuming the next abstract edge: the op's written global
			// must be covered by the edge's havoc set and the landing
			// location's atomicity must match the abstract target's (the
			// thread rests there until its next abstract move, so a
			// mismatch would break the interleaving's scheduling).
			if v.i < len(t.path) && havocAllows(t.path[v.i], w, wGlobal) {
				if st, ok := threadStateOf(in.ARG, dstKey); ok &&
					in.C.IsAtomic(st.Loc) == in.A.IsAtomic(t.path[v.i].Dst) {
					push(&visit{key: dstKey, i: v.i + 1, parent: v, edge: tr.Edge, boundary: true})
				}
			}
		}
	}
	if goal == nil {
		return nil, nil, fmt.Errorf("refine: could not realise abstract path (len %d, goal=%t)", len(t.path), t.needGoal)
	}
	// Reconstruct segments: ops up to and including each boundary edge.
	var ops []*visit
	for v := goal; v.parent != nil; v = v.parent {
		ops = append(ops, v)
	}
	// Reverse.
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	segs := make([]segment, len(t.path))
	var cur segment
	idx := 0
	var tail segment
	for _, v := range ops {
		cur = append(cur, v.edge)
		if v.boundary {
			segs[idx] = cur
			idx++
			cur = nil
		}
	}
	tail = cur
	if idx != len(t.path) {
		return nil, nil, fmt.Errorf("refine: segment reconstruction mismatch")
	}
	return segs, tail, nil
}

// visit is a BFS node of the path realisation: an ARG thread state plus
// the number of abstract edges consumed so far. boundary marks that the
// incoming edge consumed abstract step i-1.
type visit struct {
	key      string
	i        int
	parent   *visit
	edge     *cfa.Edge
	boundary bool
}

// havocAllows reports whether abstract edge ae permits an operation
// writing w (wGlobal indicates whether w is shared).
func havocAllows(ae *acfa.Edge, w string, wGlobal bool) bool {
	if !wGlobal {
		return true
	}
	for _, v := range ae.Havoc {
		if v == w {
			return true
		}
	}
	return false
}

// threadStateOf recovers the thread state stored under key in the ARG.
func threadStateOf(g *reach.ARG, key string) (reach.ThreadState, bool) {
	root := g.FindState(key)
	if root < 0 {
		return reach.ThreadState{}, false
	}
	for _, m := range g.Members(root) {
		if m.Key() == key {
			return m, true
		}
	}
	return reach.ThreadState{}, false
}
