package refine

import (
	"circ/internal/cfa"
	"circ/internal/expr"
)

// MineStrategy selects how predicates are discovered from infeasible
// traces.
type MineStrategy int

// Strategies.
const (
	// MineAtoms extracts the atoms of a minimal unsat core (the default;
	// the classic BLAST heuristic).
	MineAtoms MineStrategy = iota
	// MineWP propagates weakest preconditions backwards from the last
	// core clause and collects the atoms of the intermediate conditions
	// (a proof-slicing approximation of the predicate discovery in
	// "Abstractions from Proofs").
	MineWP
	// MineBoth unions the two.
	MineBoth
)

func (s MineStrategy) String() string {
	switch s {
	case MineWP:
		return "wp"
	case MineBoth:
		return "both"
	}
	return "atoms"
}

// wpMinePredicates discovers predicates by weakest-precondition
// propagation: starting from the latest unsat-core clause, the condition
// is pushed backwards through the interleaved trace; at every core clause
// passed on the way the current condition's atoms are recorded. SSA
// decorations are stripped like in minePredicates.
//
// stepOf maps each trace-formula clause to the index of the interleaving
// step that produced it (-1 for the synthetic zero-initialisation
// clauses, which behave like position -1: before everything).
func wpMinePredicates(c *cfa.CFA, iv *Interleaving, clauses []expr.Expr, stepOf []int, core []int) []expr.Expr {
	if len(core) == 0 {
		return nil
	}
	coreSet := make(map[int]bool, len(core))
	last := -2
	lastClause := -1
	for _, ci := range core {
		coreSet[stepOf[ci]] = true
		if stepOf[ci] > last {
			last = stepOf[ci]
			lastClause = ci
		}
	}
	if lastClause < 0 {
		return nil
	}
	first := last
	for _, ci := range core {
		if stepOf[ci] < first {
			first = stepOf[ci]
		}
	}

	seen := make(map[string]bool)
	var out []expr.Expr
	record := func(f expr.Expr) {
		for _, atom := range expr.Atoms(f) {
			p := expr.Simplify(canonicalAtom(expr.Rename(atom, stripSSA)))
			if _, ok := p.(expr.Bool); ok {
				continue
			}
			if k := p.Key(); !seen[k] {
				seen[k] = true
				out = append(out, p)
			}
		}
	}

	// The condition being propagated, in SSA form (so substitution through
	// assignments is exact). Start from the latest core clause.
	psi := clauses[lastClause]
	record(psi)

	// Walk the interleaved steps backwards from `last` to `first`,
	// replaying the SSA versioning to know which SSA name each assignment
	// defines.
	names := ssaNamesPerStep(c, iv)
	for i := last - 1; i >= first && i >= 0; i-- {
		op := iv.Steps[i].Edge.Op
		switch op.Kind {
		case cfa.OpAssign:
			// psi[x_ssa -> e_ssa]
			psi = expr.SubstVar(psi, names[i].def, names[i].rhs)
		case cfa.OpHavoc:
			// The havoced SSA name becomes unconstrained: drop knowledge by
			// leaving psi unchanged (its occurrences now refer to an
			// unconstrained variable; atoms containing it are still worth
			// recording at the cut below).
		case cfa.OpAssume:
			if coreSet[i] {
				record(psi)
				psi = expr.Conj(psi, names[i].pred)
			}
		}
	}
	record(psi)
	return out
}

// stepSSA records the SSA effect of one step: for assignments, the defined
// SSA name and the SSA right-hand side; for assumes, the SSA predicate.
type stepSSA struct {
	def  string
	rhs  expr.Expr
	pred expr.Expr
}

// ssaNamesPerStep replays TraceFormula's SSA numbering and returns the
// per-step SSA facts.
func ssaNamesPerStep(c *cfa.CFA, iv *Interleaving) []stepSSA {
	ver := make(map[string]int)
	key := func(v string, t int) string {
		if c.IsGlobal(v) || t == 0 {
			return v
		}
		return v + "@" + itoa(t)
	}
	cur := func(v string, t int) string {
		k := key(v, t)
		return k + "#" + itoa(ver[k])
	}
	out := make([]stepSSA, len(iv.Steps))
	for i, s := range iv.Steps {
		op := s.Edge.Op
		switch op.Kind {
		case cfa.OpAssign:
			rhs := expr.Rename(op.RHS, func(v string) string { return cur(v, s.ThreadID) })
			k := key(op.LHS, s.ThreadID)
			ver[k]++
			out[i] = stepSSA{def: k + "#" + itoa(ver[k]), rhs: rhs}
		case cfa.OpAssume:
			out[i] = stepSSA{pred: expr.Rename(op.Pred, func(v string) string { return cur(v, s.ThreadID) })}
		case cfa.OpHavoc:
			k := key(op.LHS, s.ThreadID)
			ver[k]++
			out[i] = stepSSA{def: k + "#" + itoa(ver[k])}
		}
	}
	return out
}
