package refine

import (
	"strings"

	"circ/internal/cfa"
	"circ/internal/expr"
)

// SSA naming: a program variable v at version n in thread t is rendered
//
//	globals:        v#n
//	main locals:    v#n           (thread 0 owns the unannotated local)
//	ctx-t locals:   v@t#n
//
// The '#' and '@' characters cannot occur in source identifiers, so
// stripping suffixes recovers the program variable (context-thread locals
// map back to the main thread's copy, as the paper requires of predicates).

// TraceFormula builds the SSA trace formula of an interleaved trace: one
// clause per operation (assignments yield defining equations, assumes
// yield their guards at current versions, havocs advance versions without
// a clause). Trivially-true clauses are dropped.
func TraceFormula(c *cfa.CFA, iv *Interleaving) []expr.Expr {
	clauses, _ := TraceFormulaSteps(c, iv)
	return clauses
}

// TraceFormulaSteps is TraceFormula plus, for each clause, the index of
// the interleaving step that produced it (-1 for the synthetic
// zero-initialisation clauses).
func TraceFormulaSteps(c *cfa.CFA, iv *Interleaving) ([]expr.Expr, []int) {
	ver := make(map[string]int)
	// name returns the SSA variable for program var v in thread t at its
	// current version.
	key := func(v string, t int) string {
		if c.IsGlobal(v) || t == 0 {
			return v
		}
		return v + "@" + itoa(t)
	}
	cur := func(v string, t int) string {
		k := key(v, t)
		return k + "#" + itoa(ver[k])
	}
	bump := func(v string, t int) string {
		k := key(v, t)
		ver[k]++
		return k + "#" + itoa(ver[k])
	}
	renameIn := func(e expr.Expr, t int) expr.Expr {
		return expr.Rename(e, func(v string) string { return cur(v, t) })
	}

	var clauses []expr.Expr
	var stepOf []int
	// Initial state: all variables are zero. Rather than emitting v#0 = 0
	// for every variable (which would bloat cores with irrelevant
	// clauses), emit the zero clause lazily, only for variables read
	// before their first write.
	initialised := make(map[string]bool)
	emitInit := func(v string, t int) {
		k := key(v, t)
		if initialised[k] {
			return
		}
		initialised[k] = true
		clauses = append(clauses, expr.Eq(expr.V(k+"#0"), expr.Num(0)))
		stepOf = append(stepOf, -1)
	}
	// Emit initials lazily below: a variable read at version 0 gets its
	// zero clause first.
	written := make(map[string]bool)

	for i, s := range iv.Steps {
		op := s.Edge.Op
		for v := range op.ReadVars() {
			if k := key(v, s.ThreadID); !written[k] {
				emitInit(v, s.ThreadID)
			}
		}
		switch op.Kind {
		case cfa.OpAssign:
			rhs := renameIn(op.RHS, s.ThreadID)
			lhs := bump(op.LHS, s.ThreadID)
			written[key(op.LHS, s.ThreadID)] = true
			clauses = append(clauses, expr.Eq(expr.V(lhs), rhs))
			stepOf = append(stepOf, i)
		case cfa.OpAssume:
			p := expr.Simplify(renameIn(op.Pred, s.ThreadID))
			if b, ok := p.(expr.Bool); ok && b.Value {
				continue
			}
			clauses = append(clauses, p)
			stepOf = append(stepOf, i)
		case cfa.OpHavoc:
			bump(op.LHS, s.ThreadID)
			written[key(op.LHS, s.ThreadID)] = true
		}
	}
	return clauses, stepOf
}

// minePredicates extracts candidate predicates from the clauses of a
// minimal unsat core by stripping SSA decorations, mapping context-thread
// locals back to the main thread's copies.
func minePredicates(clauses []expr.Expr, core []int) []expr.Expr {
	seen := make(map[string]bool)
	var out []expr.Expr
	add := func(p expr.Expr) {
		p = expr.Simplify(canonicalAtom(p))
		if _, ok := p.(expr.Bool); ok {
			return
		}
		if k := p.Key(); !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	idxs := core
	if idxs == nil {
		idxs = make([]int, len(clauses))
		for i := range clauses {
			idxs[i] = i
		}
	}
	for _, i := range idxs {
		for _, atom := range expr.Atoms(clauses[i]) {
			add(expr.Rename(atom, stripSSA))
		}
	}
	return out
}

// canonicalAtom normalises an atom so that syntactic variants (x == y vs
// y == x, x != 0 vs its negation) do not produce duplicate predicates: the
// negation-closed predicate set treats p and !p alike, so we keep the
// positive comparison of a canonical orientation.
func canonicalAtom(p expr.Expr) expr.Expr {
	cmp, ok := p.(expr.Cmp)
	if !ok {
		return p
	}
	// Prefer Eq over Ne, Le over Gt etc.: predicate sets are closed under
	// negation, so store the positive/smaller operator.
	switch cmp.Op {
	case expr.OpNe:
		cmp = expr.Cmp{Op: expr.OpEq, X: cmp.X, Y: cmp.Y}
	case expr.OpGt:
		cmp = expr.Cmp{Op: expr.OpLe, X: cmp.X, Y: cmp.Y}
	case expr.OpGe:
		cmp = expr.Cmp{Op: expr.OpLt, X: cmp.X, Y: cmp.Y}
	}
	// Canonical orientation: order operands by key for symmetric Eq.
	if cmp.Op == expr.OpEq && cmp.Y.Key() < cmp.X.Key() {
		cmp = expr.Cmp{Op: expr.OpEq, X: cmp.Y, Y: cmp.X}
	}
	return cmp
}

// stripSSA removes version and thread decorations from an SSA name.
func stripSSA(v string) string {
	if i := strings.IndexByte(v, '#'); i >= 0 {
		v = v[:i]
	}
	if i := strings.IndexByte(v, '@'); i >= 0 {
		v = v[:i]
	}
	return v
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
