package expr

import (
	"math/rand"
	"reflect"
	"testing"
)

// genExpr builds a random formula from a byte stream, consuming bytes as
// structure decisions. Shared between the property tests and the fuzzer.
func genExpr(data []byte, pos *int, depth int) Expr {
	next := func() byte {
		if *pos >= len(data) {
			return 0
		}
		b := data[*pos]
		*pos++
		return b
	}
	vars := []string{"x", "y", "z", "lock", "n"}
	term := func(d int) Expr {
		var t func(d int) Expr
		t = func(d int) Expr {
			b := next()
			if d <= 0 {
				if b%2 == 0 {
					return Num(int64(int8(next())))
				}
				return V(vars[int(next())%len(vars)])
			}
			switch b % 4 {
			case 0:
				return Num(int64(int8(next())))
			case 1:
				return V(vars[int(next())%len(vars)])
			default:
				return Bin{Op: BinOp(next() % 3), X: t(d - 1), Y: t(d - 1)}
			}
		}
		return t(d)
	}
	var form func(d int) Expr
	form = func(d int) Expr {
		b := next()
		if d <= 0 {
			switch b % 3 {
			case 0:
				return Bool{Value: next()%2 == 0}
			default:
				return Cmp{Op: CmpOp(next() % 6), X: term(1), Y: term(1)}
			}
		}
		switch b % 6 {
		case 0:
			return Bool{Value: next()%2 == 0}
		case 1:
			return Cmp{Op: CmpOp(next() % 6), X: term(d), Y: term(d)}
		case 2:
			return Not{X: form(d - 1)}
		case 3, 4:
			n := 2 + int(next()%3)
			xs := make([]Expr, n)
			for i := range xs {
				xs[i] = form(d - 1)
			}
			if b%6 == 3 {
				return And{Xs: xs}
			}
			return Or{Xs: xs}
		default:
			return Cmp{Op: CmpOp(next() % 6), X: term(d), Y: term(d)}
		}
	}
	return form(depth)
}

// checkInternProperties asserts the arena invariants for one formula.
func checkInternProperties(t *testing.T, f Expr) {
	t.Helper()
	id := Intern(f)

	// Idempotence: re-interning the same tree gives the same ID.
	if id2 := Intern(f); id2 != id {
		t.Fatalf("Intern not idempotent: %v then %v for %s", id, id2, f.Key())
	}
	// Round-trip: the canonical representative reinterns to the same ID,
	// and LookupID finds it without inserting.
	rep := FromID(id)
	if id2 := Intern(rep); id2 != id {
		t.Fatalf("Intern(FromID(id)) = %v, want %v for %s", id2, id, f.Key())
	}
	if got, ok := LookupID(rep); !ok || got != id {
		t.Fatalf("LookupID(FromID(%v)) = %v, %v", id, got, ok)
	}
	// The canonical form is logically equivalent to the input: under any
	// total environment both evaluate identically.
	env := map[string]int64{}
	rng := rand.New(rand.NewSource(int64(IDHash(id))))
	for v := range FreeVars(f) {
		env[v] = int64(rng.Intn(11) - 5)
	}
	want, err1 := EvalFormula(f, env)
	got, err2 := EvalFormula(rep, env)
	if err1 == nil && err2 == nil && want != got {
		t.Fatalf("canonical form not equivalent: %s=%v but %s=%v under %v",
			f.Key(), want, rep.Key(), got, env)
	}
	// Canonicalisation subsumes Simplify: the simplified tree interns to
	// the same ID (Key-level agreement of interned and uninterned forms).
	if id2 := Intern(Simplify(f)); id2 != id {
		t.Fatalf("Intern(Simplify(f)) = %v, want %v for %s", id2, id, f.Key())
	}
	// Hash is content-stable and matches the node.
	if IDHash(id) != IDHash(Intern(f)) {
		t.Fatalf("hash unstable for %s", f.Key())
	}

	// Negation round-trips through the arena and matches Negate semantics.
	nid := InternNot(id)
	if back := InternNot(nid); back != id {
		t.Fatalf("double negation: %v -> %v -> %v for %s", id, nid, back, f.Key())
	}
	if id2 := Intern(Negate(rep)); id2 != nid {
		t.Fatalf("Intern(Negate(rep)) = %v, want InternNot = %v for %s", id2, nid, f.Key())
	}

	// Conj/Disj round-trip: the tree-level constructors over canonical
	// reps intern to the ID-level constructors' results.
	other := Intern(Lt(V("x"), Num(3)))
	if a, b := Intern(Conj(rep, FromID(other))), IDConj(id, other); a != b {
		t.Fatalf("Conj/IDConj disagree: %v vs %v for %s", a, b, f.Key())
	}
	if a, b := Intern(Disj(rep, FromID(other))), IDDisj(id, other); a != b {
		t.Fatalf("Disj/IDDisj disagree: %v vs %v for %s", a, b, f.Key())
	}
}

func TestInternProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		data := make([]byte, 64)
		rng.Read(data)
		pos := 0
		f := genExpr(data, &pos, 3)
		checkInternProperties(t, f)
	}
}

func TestInternSharing(t *testing.T) {
	// Structurally-equal terms share one canonical representative:
	// pointer-equal for reference kinds, identical interface value for
	// value kinds.
	a := Intern(And{Xs: []Expr{Lt(V("a"), Num(1)), Eq(V("b"), Num(2))}})
	b := Intern(And{Xs: []Expr{Eq(V("b"), Num(2)), Lt(V("a"), Num(1))}}) // commuted
	if a != b {
		t.Fatalf("commuted conjunctions intern differently: %v vs %v", a, b)
	}
	ra, rb := FromID(a).(And), FromID(b).(And)
	if reflect.ValueOf(ra.Xs).Pointer() != reflect.ValueOf(rb.Xs).Pointer() {
		t.Fatalf("canonical And children not shared")
	}
	if FromID(Intern(V("a"))) != FromID(Intern(V("a"))) {
		t.Fatalf("canonical Var not shared")
	}

	// Different spellings of one atom share an ID.
	if Intern(Gt(V("x"), Num(0))) != Intern(Lt(Num(0), V("x"))) {
		t.Fatalf("x > 0 and 0 < x intern differently")
	}
}

func TestInternSyntacticCollapse(t *testing.T) {
	p := Lt(V("x"), Num(5))
	if got := IDConj(Intern(p), InternNot(Intern(p))); got != BoolID(false) {
		t.Fatalf("p ∧ ¬p = %v, want false", got)
	}
	if got := IDDisj(Intern(p), InternNot(Intern(p))); got != BoolID(true) {
		t.Fatalf("p ∨ ¬p = %v, want true", got)
	}
	if got := Intern(Lt(Num(3), Num(2))); got != BoolID(false) {
		t.Fatalf("3 < 2 = %v, want false", got)
	}
	if got := IDConj(); got != BoolID(true) {
		t.Fatalf("empty conjunction = %v, want true", got)
	}
	if got := IDDisj(); got != BoolID(false) {
		t.Fatalf("empty disjunction = %v, want false", got)
	}
	// Duplicates collapse; nested conjunctions flatten.
	q := Le(V("y"), Num(0))
	flat := IDConj(Intern(p), IDConj(Intern(p), Intern(q)))
	if flat != IDConj(Intern(p), Intern(q)) {
		t.Fatalf("flatten/dedup failed")
	}
	if IDImplies(Intern(p), Intern(p)) != BoolID(true) {
		t.Fatalf("p -> p should collapse to true")
	}
}

func TestInternDeterministicOrder(t *testing.T) {
	// Canonical child order is content-determined (structural hash), not
	// intern-order-determined: interleaving fresh interns between the two
	// constructions must not change the canonical key.
	a := Lt(V("detA"), Num(1))
	b := Eq(V("detB"), Num(2))
	k1 := IDKey(IDConj(Intern(a), Intern(b)))
	Intern(Lt(V("detNoise"), Num(99))) // shift subsequent ID values
	k2 := IDKey(IDConj(Intern(b), Intern(a)))
	if k1 != k2 {
		t.Fatalf("canonical key depends on intern order: %q vs %q", k1, k2)
	}
}

func FuzzIntern(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{250, 7, 42, 1, 99, 3, 18, 200, 5, 5, 5, 5, 61, 62, 63})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		e := genExpr(data, &pos, 3)
		checkInternProperties(t, e)
	})
}

func TestArenaStats(t *testing.T) {
	before := Stats()
	if before.Nodes <= 0 || before.Bytes <= 0 {
		t.Fatalf("arena stats empty: %+v", before)
	}
	// A fresh composite over fresh leaves must grow both nodes and the
	// byte estimate; re-interning the same structure must grow neither.
	e := Lt(V("arenaStatsProbe"), Num(987654321))
	id := Intern(e)
	mid := Stats()
	if mid.Nodes <= before.Nodes || mid.Bytes <= before.Bytes {
		t.Fatalf("arena did not grow: %+v -> %+v", before, mid)
	}
	if Intern(e) != id {
		t.Fatalf("re-intern changed identity")
	}
	after := Stats()
	if after.Nodes != mid.Nodes || after.Bytes != mid.Bytes {
		t.Fatalf("re-intern grew the arena: %+v -> %+v", mid, after)
	}
	if after.NodesHighWater < after.Nodes || after.BytesHighWater < after.Bytes {
		t.Fatalf("high-water below live values: %+v", after)
	}
	if InternStats() != after.Nodes {
		t.Fatalf("InternStats shim disagrees with Stats")
	}
}
