package expr

import (
	"fmt"
	"math/rand"
	"testing"
)

// randExprID builds a random interned expression tree over a small
// variable alphabet, returning its ID.
func randExprID(r *rand.Rand, depth int) ID {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return InternNum(int64(r.Intn(7) - 3))
		case 1:
			return InternV(fmt.Sprintf("v%d", r.Intn(5)))
		default:
			return BoolID(r.Intn(2) == 0)
		}
	}
	switch r.Intn(5) {
	case 0:
		return InternBin(BinOp(r.Intn(3)), randExprID(r, depth-1), randExprID(r, depth-1))
	case 1:
		return InternCmp(CmpOp(r.Intn(6)), randExprID(r, depth-1), randExprID(r, depth-1))
	case 2:
		return InternNot(randExprID(r, depth-1))
	case 3:
		return IDConj(randExprID(r, depth-1), randExprID(r, depth-1))
	default:
		return IDDisj(randExprID(r, depth-1), randExprID(r, depth-1))
	}
}

// closure returns the transitive kid-closure of roots plus the boolean
// constants — exactly the set Compact must keep alive.
func closure(roots []ID) map[ID]bool {
	live := map[ID]bool{}
	stack := append([]ID{BoolID(true), BoolID(false)}, roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id == NoID || live[id] {
			continue
		}
		live[id] = true
		v := IDView(id)
		stack = append(stack, v.Kids...)
	}
	return live
}

// TestCompactPreservesLiveLookups is the compaction property test: after
// Compact(roots), every ID reachable from roots resolves to exactly the
// same expression (FromID/IDKey/IDHash/IDKind), interning a live
// expression again returns its old ID, dead IDs report !Live and are
// never reused, and the arena accounting (live count, bytes, generation,
// high-water marks) stays coherent.
func TestCompactPreservesLiveLookups(t *testing.T) {
	r := rand.New(rand.NewSource(8))

	var all []ID
	for i := 0; i < 400; i++ {
		all = append(all, randExprID(r, 3+r.Intn(3)))
	}
	// Keep a random quarter as roots.
	var roots []ID
	for _, id := range all {
		if r.Intn(4) == 0 {
			roots = append(roots, id)
		}
	}
	live := closure(roots)

	type snap struct {
		key  string
		hash uint64
		kind Kind
	}
	before := map[ID]snap{}
	for id := range live {
		before[id] = snap{key: IDKey(id), hash: IDHash(id), kind: IDKind(id)}
	}
	preStats := Stats()

	st := Compact(roots)
	// Tombstones keep their slots, so the arena end right after the sweep
	// is the boundary below which no *new* ID may ever appear again.
	hw := ID(len(ar.nodes))
	if st.Live < len(live) {
		t.Fatalf("Compact reported %d live, want >= %d (closure of roots)", st.Live, len(live))
	}

	post := Stats()
	if post.Nodes != st.Live {
		t.Fatalf("Stats().Nodes = %d, want %d (Compact's live count)", post.Nodes, st.Live)
	}
	if post.Compactions != preStats.Compactions+1 || st.Generation != post.Compactions {
		t.Fatalf("generation bookkeeping: pre=%d post=%d stat=%d", preStats.Compactions, post.Compactions, st.Generation)
	}
	if Generation() != st.Generation {
		t.Fatalf("Generation() = %d, want %d", Generation(), st.Generation)
	}
	if post.NodesHighWater < preStats.NodesHighWater || post.BytesHighWater < preStats.BytesHighWater {
		t.Fatalf("high-water marks regressed after Compact: %+v -> %+v", preStats, post)
	}
	if st.Freed > 0 && post.Bytes >= preStats.Bytes {
		t.Fatalf("freed %d nodes but bytes did not drop: %d -> %d", st.Freed, preStats.Bytes, post.Bytes)
	}

	// Property 1: live IDs keep their identity and content.
	for id, want := range before {
		if !Live(id) {
			t.Fatalf("live ID %d reports !Live after Compact", id)
		}
		if got := IDKey(id); got != want.key {
			t.Fatalf("ID %d key changed: %q -> %q", id, want.key, got)
		}
		if got := IDHash(id); got != want.hash {
			t.Fatalf("ID %d hash changed: %d -> %d", id, want.hash, got)
		}
		if got := IDKind(id); got != want.kind {
			t.Fatalf("ID %d kind changed: %v -> %v", id, want.kind, got)
		}
		// Re-interning a live expression must hash-cons back to the same ID.
		if got := Intern(FromID(id)); got != id {
			t.Fatalf("re-interning live ID %d returned %d", id, got)
		}
	}

	// Property 2: dead IDs report !Live and are never handed out again.
	for _, id := range all {
		if !live[id] && Live(id) {
			t.Fatalf("ID %d not in root closure but still Live", id)
		}
	}
	// Rebuild the same random expressions: every fresh intern must come
	// back either at an ID that was live at sweep time (a hash-cons hit),
	// at an ID minted after the sweep (e.g. a re-memoised negation from
	// the identity checks above), or at a brand-new ID — never at a
	// recycled tombstone slot.
	r2 := rand.New(rand.NewSource(8))
	for i := 0; i < 400; i++ {
		id := randExprID(r2, 3+r2.Intn(3))
		if !Live(id) {
			t.Fatalf("freshly interned ID %d is not Live", id)
		}
		if !live[id] && id <= hw {
			t.Fatalf("fresh intern returned recycled ID %d <= %d", id, hw)
		}
	}

	// Property 3: Compact is idempotent over an unchanged root set plus
	// the re-interned nodes.
	roots2 := append([]ID(nil), roots...)
	for id := ID(hw) + 1; int(id) <= len(ar.nodes); id++ {
		roots2 = append(roots2, id)
	}
	st2 := Compact(roots2)
	if st2.Freed != 0 {
		t.Fatalf("second Compact with superset roots freed %d nodes", st2.Freed)
	}
	for id, want := range before {
		if got := IDKey(id); got != want.key {
			t.Fatalf("after second Compact, ID %d key changed: %q -> %q", id, want.key, got)
		}
	}
}

// TestCompactNegationLinks checks that a live node whose memoised
// negation was swept re-memoises a fresh negation correctly.
func TestCompactNegationLinks(t *testing.T) {
	x := InternCmp(OpLt, InternV("negprop"), InternNum(42))
	nx := InternNot(x)
	if nx == NoID || nx == x {
		t.Fatalf("bad negation %d of %d", nx, x)
	}
	key := IDKey(nx)
	Compact([]ID{x}) // nx is dead: Lt memoises its negation as a separate Cmp node
	if Live(nx) {
		t.Fatalf("negation %d should have been swept", nx)
	}
	nx2 := InternNot(x)
	if !Live(nx2) || nx2 == nx {
		t.Fatalf("re-negation returned %d (old %d, live=%v)", nx2, nx, Live(nx2))
	}
	if got := IDKey(nx2); got != key {
		t.Fatalf("re-negation key %q, want %q", got, key)
	}
	if InternNot(nx2) != x {
		t.Fatalf("double negation of %d did not return %d", nx2, x)
	}
}
