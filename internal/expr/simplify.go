package expr

import "fmt"

// Simplify performs constant folding and shallow logical simplification.
// It is sound (the result is logically equivalent) but makes no completeness
// claims; the decision procedure does the real work.
func Simplify(e Expr) Expr {
	switch g := e.(type) {
	case Int, Var, Bool:
		return e
	case Bin:
		x := Simplify(g.X)
		y := Simplify(g.Y)
		xi, xok := x.(Int)
		yi, yok := y.(Int)
		if xok && yok {
			switch g.Op {
			case OpAdd:
				return Int{Value: xi.Value + yi.Value}
			case OpSub:
				return Int{Value: xi.Value - yi.Value}
			case OpMul:
				return Int{Value: xi.Value * yi.Value}
			}
		}
		// Identity elements.
		switch g.Op {
		case OpAdd:
			if xok && xi.Value == 0 {
				return y
			}
			if yok && yi.Value == 0 {
				return x
			}
		case OpSub:
			if yok && yi.Value == 0 {
				return x
			}
		case OpMul:
			if xok && xi.Value == 1 {
				return y
			}
			if yok && yi.Value == 1 {
				return x
			}
			if (xok && xi.Value == 0) || (yok && yi.Value == 0) {
				return Int{Value: 0}
			}
		}
		return Bin{Op: g.Op, X: x, Y: y}
	case Cmp:
		x := Simplify(g.X)
		y := Simplify(g.Y)
		xi, xok := x.(Int)
		yi, yok := y.(Int)
		if xok && yok {
			return Bool{Value: evalCmp(g.Op, xi.Value, yi.Value)}
		}
		if Equal(x, y) {
			switch g.Op {
			case OpEq, OpLe, OpGe:
				return TrueExpr
			case OpNe, OpLt, OpGt:
				return FalseExpr
			}
		}
		return Cmp{Op: g.Op, X: x, Y: y}
	case Not:
		x := Simplify(g.X)
		return Negate(x)
	case And:
		xs := make([]Expr, 0, len(g.Xs))
		for _, c := range g.Xs {
			xs = append(xs, Simplify(c))
		}
		return Conj(xs...)
	case Or:
		xs := make([]Expr, 0, len(g.Xs))
		for _, c := range g.Xs {
			xs = append(xs, Simplify(c))
		}
		return Disj(xs...)
	default:
		panic(fmt.Sprintf("expr: unknown node %T", e))
	}
}

func evalCmp(op CmpOp, a, b int64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	}
	panic(fmt.Sprintf("expr: unknown CmpOp %d", int(op)))
}

// EvalTerm evaluates term e under the given environment. It returns an
// error if a variable is unbound or the expression is not a term.
func EvalTerm(e Expr, env map[string]int64) (int64, error) {
	switch g := e.(type) {
	case Int:
		return g.Value, nil
	case Var:
		v, ok := env[g.Name]
		if !ok {
			return 0, fmt.Errorf("expr: unbound variable %q", g.Name)
		}
		return v, nil
	case Bin:
		x, err := EvalTerm(g.X, env)
		if err != nil {
			return 0, err
		}
		y, err := EvalTerm(g.Y, env)
		if err != nil {
			return 0, err
		}
		switch g.Op {
		case OpAdd:
			return x + y, nil
		case OpSub:
			return x - y, nil
		case OpMul:
			return x * y, nil
		}
		return 0, fmt.Errorf("expr: unknown BinOp %v", g.Op)
	default:
		return 0, fmt.Errorf("expr: %s is not a term", e)
	}
}

// EvalFormula evaluates formula e under the given environment.
func EvalFormula(e Expr, env map[string]int64) (bool, error) {
	switch g := e.(type) {
	case Bool:
		return g.Value, nil
	case Cmp:
		x, err := EvalTerm(g.X, env)
		if err != nil {
			return false, err
		}
		y, err := EvalTerm(g.Y, env)
		if err != nil {
			return false, err
		}
		return evalCmp(g.Op, x, y), nil
	case Not:
		v, err := EvalFormula(g.X, env)
		return !v, err
	case And:
		for _, x := range g.Xs {
			v, err := EvalFormula(x, env)
			if err != nil {
				return false, err
			}
			if !v {
				return false, nil
			}
		}
		return true, nil
	case Or:
		for _, x := range g.Xs {
			v, err := EvalFormula(x, env)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("expr: %s is not a formula", e)
	}
}
