package expr

// Arena snapshot/compaction: a long-lived process (the circd daemon)
// interns every formula of every job into the process-wide arena, which
// is otherwise append-only. Compact sweeps the arena between jobs,
// reclaiming the payloads of nodes unreachable from a caller-supplied
// root set while preserving the identity of every live ID.
//
// Invariants the rest of the engine relies on:
//
//   - Live IDs keep their value: the nodes slice is never reindexed, so
//     FromID/IDView/IDHash/LookupID on a live ID return exactly what they
//     returned before the sweep, and ID-keyed caches holding live keys
//     stay valid.
//   - Dead IDs are never reused: tombstones keep their slot, and new
//     interns always append. A stale dead key in an external cache can
//     therefore never alias a new formula — it is merely garbage.
//   - The boolean constants are always live (IDBoolValue never locks and
//     the engine treats their IDs as fixed).
//
// What a caller must guarantee: the root set covers every ID it will
// ever dereference again (memoised cube formulas, predicate sets,
// certificate-store evidence). Compacting while analyses are in flight
// is unsound — the daemon only compacts between jobs, with no job
// running.

// CompactStats reports one Compact pass.
type CompactStats struct {
	// Live and Freed count nodes surviving and tombstoned by the pass.
	Live, Freed int
	// FreedBytes is the estimated footprint reclaimed.
	FreedBytes int64
	// Generation is the arena generation after the pass (the total number
	// of Compact passes over the process lifetime).
	Generation uint64
}

// Compact tombstones every arena node not reachable from roots (through
// child links) and rebuilds the hash-cons indexes over the survivors.
// Memoised negation links into dead nodes are cleared (they re-memoise
// on demand). It returns what was reclaimed.
func Compact(roots []ID) CompactStats {
	ar.mu.Lock()
	defer ar.mu.Unlock()

	n := len(ar.nodes)
	mark := make([]bool, n+1) // 1-based, like IDs
	stack := make([]ID, 0, len(roots)+2)
	push := func(id ID) {
		if id != NoID && int(id) <= n && !mark[id] {
			mark[id] = true
			stack = append(stack, id)
		}
	}
	push(falseID)
	push(trueID)
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, k := range ar.nodes[id-1].kids {
			push(k)
		}
	}

	st := CompactStats{}
	// Sweep: tombstone the dead, clear dangling negation links on the
	// live, and rebuild the lookup indexes from the survivors.
	byHash := make(map[uint64][]ID)
	ints := make(map[int64]ID)
	vars := make(map[string]ID)
	for i := range ar.nodes {
		id := ID(i + 1)
		nd := &ar.nodes[i]
		if nd.kind == KindInvalid {
			continue // already a tombstone from an earlier pass
		}
		if !mark[id] {
			st.Freed++
			st.FreedBytes += nodeBytes(len(nd.name), len(nd.kids))
			*nd = inode{} // kind == KindInvalid; payloads released
			continue
		}
		st.Live++
		if nd.neg != NoID && !mark[nd.neg] {
			nd.neg = NoID
		}
		byHash[nd.hash] = append(byHash[nd.hash], id)
		switch nd.kind {
		case KindInt:
			ints[nd.ival] = id
		case KindVar:
			vars[nd.name] = id
		}
	}
	ar.byHash, ar.ints, ar.vars = byHash, ints, vars
	ar.live = st.Live
	ar.bytes -= st.FreedBytes
	ar.gen++
	st.Generation = ar.gen
	return st
}

// Live reports whether id refers to a live (non-tombstoned) arena node.
// Out-of-range and NoID report false.
func Live(id ID) bool {
	ar.mu.RLock()
	ok := id != NoID && int(id) <= len(ar.nodes) && ar.nodes[id-1].kind != KindInvalid
	ar.mu.RUnlock()
	return ok
}

// Generation returns the number of Compact passes completed so far.
// ID-keyed structures outside the arena (learned-clause pools, verdict
// caches) stamp themselves with this and invalidate when it moves.
func Generation() uint64 {
	ar.mu.RLock()
	g := ar.gen
	ar.mu.RUnlock()
	return g
}
