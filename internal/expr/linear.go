package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Lin is a linear combination of variables plus a constant:
//
//	Const + Σ Coeffs[v]·v
//
// Coefficients are int64 and never zero in a normalised Lin.
type Lin struct {
	Coeffs map[string]int64
	Const  int64
}

// NewLin returns the zero linear form.
func NewLin() *Lin { return &Lin{Coeffs: make(map[string]int64)} }

// Clone returns a deep copy.
func (l *Lin) Clone() *Lin {
	out := &Lin{Coeffs: make(map[string]int64, len(l.Coeffs)), Const: l.Const}
	for k, v := range l.Coeffs {
		out.Coeffs[k] = v
	}
	return out
}

// AddVar adds c·v to the form.
func (l *Lin) AddVar(v string, c int64) {
	n := l.Coeffs[v] + c
	if n == 0 {
		delete(l.Coeffs, v)
	} else {
		l.Coeffs[v] = n
	}
}

// AddLin adds c·m to the form.
func (l *Lin) AddLin(m *Lin, c int64) {
	l.Const += c * m.Const
	for v, k := range m.Coeffs {
		l.AddVar(v, c*k)
	}
}

// Scale multiplies the form by c.
func (l *Lin) Scale(c int64) {
	l.Const *= c
	for v := range l.Coeffs {
		l.Coeffs[v] *= c
		if l.Coeffs[v] == 0 {
			delete(l.Coeffs, v)
		}
	}
}

// IsConst reports whether the form has no variables.
func (l *Lin) IsConst() bool { return len(l.Coeffs) == 0 }

// Vars returns the variable names in sorted order.
func (l *Lin) Vars() []string {
	out := make([]string, 0, len(l.Coeffs))
	for v := range l.Coeffs {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Key returns a canonical string for the form.
func (l *Lin) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", l.Const)
	for _, v := range l.Vars() {
		fmt.Fprintf(&b, "+%d*%s", l.Coeffs[v], v)
	}
	return b.String()
}

func (l *Lin) String() string {
	var parts []string
	for _, v := range l.Vars() {
		c := l.Coeffs[v]
		switch c {
		case 1:
			parts = append(parts, v)
		case -1:
			parts = append(parts, "-"+v)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, v))
		}
	}
	if l.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", l.Const))
	}
	return strings.Join(parts, " + ")
}

// Linearize converts term e into a linear form. Products of two
// non-constant subterms are abstracted: abstract is called with the
// offending subterm and must return a (stable) fresh variable name for it;
// the returned form then refers to that variable. If abstract is nil,
// Linearize reports an error on nonlinear input.
func Linearize(e Expr, abstract func(Expr) string) (*Lin, error) {
	switch g := e.(type) {
	case Int:
		l := NewLin()
		l.Const = g.Value
		return l, nil
	case Var:
		l := NewLin()
		l.AddVar(g.Name, 1)
		return l, nil
	case Bin:
		x, err := Linearize(g.X, abstract)
		if err != nil {
			return nil, err
		}
		y, err := Linearize(g.Y, abstract)
		if err != nil {
			return nil, err
		}
		switch g.Op {
		case OpAdd:
			x.AddLin(y, 1)
			return x, nil
		case OpSub:
			x.AddLin(y, -1)
			return x, nil
		case OpMul:
			if x.IsConst() {
				y.Scale(x.Const)
				return y, nil
			}
			if y.IsConst() {
				x.Scale(y.Const)
				return x, nil
			}
			if abstract == nil {
				return nil, fmt.Errorf("expr: nonlinear term %s", e)
			}
			l := NewLin()
			l.AddVar(abstract(g), 1)
			return l, nil
		}
		return nil, fmt.Errorf("expr: unknown BinOp %v", g.Op)
	default:
		return nil, fmt.Errorf("expr: %s is not a term", e)
	}
}

// NormalizeAtom rewrites a comparison into the canonical form
//
//	lhs ⋈ 0    where lhs = Linearize(X - Y)
//
// and returns the linear form together with the (possibly flipped)
// operator. The sign is normalised so the lexicographically smallest
// variable has a positive coefficient when possible, letting syntactically
// different spellings of the same atom share a key.
func NormalizeAtom(c Cmp, abstract func(Expr) string) (*Lin, CmpOp, error) {
	l, err := Linearize(Sub(c.X, c.Y), abstract)
	if err != nil {
		return nil, 0, err
	}
	op := c.Op
	// Normalise sign: make the first (sorted) variable coefficient positive.
	if vs := l.Vars(); len(vs) > 0 && l.Coeffs[vs[0]] < 0 {
		l.Scale(-1)
		switch op {
		case OpLt:
			op = OpGt
		case OpLe:
			op = OpGe
		case OpGt:
			op = OpLt
		case OpGe:
			op = OpLe
		}
	}
	return l, op, nil
}
