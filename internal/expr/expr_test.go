package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructorsAndStrings(t *testing.T) {
	x := V("x")
	y := V("y")
	cases := []struct {
		e    Expr
		want string
	}{
		{Num(42), "42"},
		{x, "x"},
		{Add(x, Num(1)), "(x + 1)"},
		{Sub(x, y), "(x - y)"},
		{Mul(Num(2), x), "(2 * x)"},
		{Eq(x, y), "x == y"},
		{Ne(x, y), "x != y"},
		{Lt(x, y), "x < y"},
		{Le(x, y), "x <= y"},
		{Gt(x, y), "x > y"},
		{Ge(x, y), "x >= y"},
		{Conj(Eq(x, y), Lt(x, y)), "(x == y) && (x < y)"},
		{Disj(Eq(x, y), Lt(x, y)), "(x == y) || (x < y)"},
		{Negate(Conj(Eq(x, y), Lt(x, y))), "!((x == y) && (x < y))"},
		{TrueExpr, "true"},
		{FalseExpr, "false"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String(%v-key %s) = %q, want %q", c.e, c.e.Key(), got, c.want)
		}
	}
}

func TestKeyDistinguishes(t *testing.T) {
	pairs := [][2]Expr{
		{Add(V("x"), V("y")), Sub(V("x"), V("y"))},
		{Eq(V("x"), Num(0)), Eq(V("x"), Num(1))},
		{Conj(Eq(V("x"), Num(0))), Disj(Eq(V("x"), Num(0)), FalseExpr)},
		{V("x"), V("x1")},
	}
	for _, p := range pairs {
		a, b := Simplify(p[0]), Simplify(p[1])
		if Equal(a, b) && a.Key() != b.Key() {
			t.Errorf("inconsistent Equal/Key on %v vs %v", p[0], p[1])
		}
	}
	// Keys must be injective modulo structure: "x"+"y" vs "xy" style
	// collisions.
	if Add(V("x"), V("y")).Key() == V("xy").Key() {
		t.Errorf("key collision between (x+y) and xy")
	}
}

func TestNegateInvolution(t *testing.T) {
	es := []Expr{
		Eq(V("x"), Num(0)),
		Lt(V("x"), V("y")),
		TrueExpr,
		Conj(Eq(V("x"), Num(0)), Lt(V("y"), Num(2))),
	}
	env := map[string]int64{"x": 0, "y": 1}
	for _, e := range es {
		v1, err := EvalFormula(e, env)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := EvalFormula(Negate(Negate(e)), env)
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Errorf("double negation changed value of %v", e)
		}
		v3, err := EvalFormula(Negate(e), env)
		if err != nil {
			t.Fatal(err)
		}
		if v3 == v1 {
			t.Errorf("negation did not flip value of %v", e)
		}
	}
}

func TestConjDisjFlattening(t *testing.T) {
	x := V("x")
	a := Eq(x, Num(0))
	b := Eq(x, Num(1))
	c := Eq(x, Num(2))
	f := Conj(a, Conj(b, c))
	and, ok := f.(And)
	if !ok || len(and.Xs) != 3 {
		t.Fatalf("Conj did not flatten: %v", f)
	}
	if got := Conj(a, TrueExpr); !Equal(got, a) {
		t.Errorf("Conj(a, true) = %v", got)
	}
	if got := Conj(a, FalseExpr); !Equal(got, FalseExpr) {
		t.Errorf("Conj(a, false) = %v", got)
	}
	if got := Disj(a, FalseExpr); !Equal(got, a) {
		t.Errorf("Disj(a, false) = %v", got)
	}
	if got := Disj(a, TrueExpr); !Equal(got, TrueExpr) {
		t.Errorf("Disj(a, true) = %v", got)
	}
	if got := Conj(); !Equal(got, TrueExpr) {
		t.Errorf("empty Conj = %v", got)
	}
	if got := Disj(); !Equal(got, FalseExpr) {
		t.Errorf("empty Disj = %v", got)
	}
}

func TestSubstSimultaneous(t *testing.T) {
	// x -> y, y -> x must swap, not chain.
	e := Sub(V("x"), V("y"))
	got := Subst(e, map[string]Expr{"x": V("y"), "y": V("x")})
	if got.String() != "(y - x)" {
		t.Errorf("simultaneous subst = %v", got)
	}
}

func TestSubstVarAndMentions(t *testing.T) {
	e := Conj(Eq(V("a"), Add(V("b"), Num(1))), Lt(V("c"), Num(5)))
	if !Mentions(e, "b") || Mentions(e, "z") {
		t.Fatalf("Mentions broken")
	}
	e2 := SubstVar(e, "b", Num(7))
	if Mentions(e2, "b") {
		t.Fatalf("SubstVar left b behind: %v", e2)
	}
	fv := FreeVars(e)
	if !fv["a"] || !fv["b"] || !fv["c"] || len(fv) != 3 {
		t.Fatalf("FreeVars = %v", fv)
	}
	sv := SortedVars(e)
	if len(sv) != 3 || sv[0] != "a" || sv[2] != "c" {
		t.Fatalf("SortedVars = %v", sv)
	}
}

func TestRename(t *testing.T) {
	e := Eq(V("x"), Add(V("y"), Num(1)))
	got := Rename(e, func(n string) string { return n + "#0" })
	if got.String() != "x#0 == (y#0 + 1)" {
		t.Errorf("Rename = %v", got)
	}
}

// randTerm builds a random term over {x, y} with bounded depth.
func randTerm(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return Num(int64(rng.Intn(7) - 3))
		case 1:
			return V("x")
		default:
			return V("y")
		}
	}
	x := randTerm(rng, depth-1)
	y := randTerm(rng, depth-1)
	switch rng.Intn(3) {
	case 0:
		return Add(x, y)
	case 1:
		return Sub(x, y)
	default:
		return Mul(x, y)
	}
}

func randFormula(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return Compare(ops[rng.Intn(len(ops))], randTerm(rng, 1), randTerm(rng, 1))
	}
	switch rng.Intn(3) {
	case 0:
		return Negate(randFormula(rng, depth-1))
	case 1:
		return Conj(randFormula(rng, depth-1), randFormula(rng, depth-1))
	default:
		return Disj(randFormula(rng, depth-1), randFormula(rng, depth-1))
	}
}

// Property: Simplify preserves the value of terms and formulas.
func TestQuickSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		env := map[string]int64{
			"x": int64(rng.Intn(9) - 4),
			"y": int64(rng.Intn(9) - 4),
		}
		tm := randTerm(rng, 3)
		v1, err1 := EvalTerm(tm, env)
		v2, err2 := EvalTerm(Simplify(tm), env)
		if (err1 == nil) != (err2 == nil) || v1 != v2 {
			t.Fatalf("Simplify changed term %v: %d vs %d", tm, v1, v2)
		}
		f := randFormula(rng, 3)
		b1, err1 := EvalFormula(f, env)
		b2, err2 := EvalFormula(Simplify(f), env)
		if (err1 == nil) != (err2 == nil) || b1 != b2 {
			t.Fatalf("Simplify changed formula %v under %v: %t vs %t", f, env, b1, b2)
		}
	}
}

// Property: Negate flips formula values.
func TestQuickNegateFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		env := map[string]int64{
			"x": int64(rng.Intn(9) - 4),
			"y": int64(rng.Intn(9) - 4),
		}
		f := randFormula(rng, 3)
		b1, err := EvalFormula(f, env)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := EvalFormula(Negate(f), env)
		if err != nil {
			t.Fatal(err)
		}
		if b1 == b2 {
			t.Fatalf("Negate did not flip %v", f)
		}
	}
}

// Property (testing/quick): linearisation agrees with direct evaluation on
// linear terms.
func TestQuickLinearizeAgrees(t *testing.T) {
	f := func(a, b, c int8, xv, yv int8) bool {
		// a*x + b*y + c, built as a tree.
		e := Add(Add(Mul(Num(int64(a)), V("x")), Mul(Num(int64(b)), V("y"))), Num(int64(c)))
		lin, err := Linearize(e, nil)
		if err != nil {
			return false
		}
		env := map[string]int64{"x": int64(xv), "y": int64(yv)}
		direct, err := EvalTerm(e, env)
		if err != nil {
			return false
		}
		fromLin := lin.Const
		for v, coef := range lin.Coeffs {
			fromLin += coef * env[v]
		}
		return direct == fromLin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearizeNonlinear(t *testing.T) {
	e := Mul(V("x"), V("y"))
	if _, err := Linearize(e, nil); err == nil {
		t.Fatalf("expected error for nonlinear term without abstraction")
	}
	calls := 0
	lin, err := Linearize(e, func(Expr) string { calls++; return "$nl0" })
	if err != nil || calls != 1 {
		t.Fatalf("abstraction not used: %v %d", err, calls)
	}
	if len(lin.Coeffs) != 1 || lin.Coeffs["$nl0"] != 1 {
		t.Fatalf("lin = %v", lin)
	}
}

func TestNormalizeAtomCanonicalSign(t *testing.T) {
	// x <= y and y >= x must normalise identically.
	l1, op1, err1 := NormalizeAtom(Le(V("x"), V("y")).(Cmp), nil)
	l2, op2, err2 := NormalizeAtom(Ge(V("y"), V("x")).(Cmp), nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if l1.Key() != l2.Key() || op1 != op2 {
		t.Fatalf("normalisation differs: %s %v vs %s %v", l1, op1, l2, op2)
	}
}

func TestLinOperations(t *testing.T) {
	l := NewLin()
	l.AddVar("x", 2)
	l.AddVar("x", -2)
	if !l.IsConst() {
		t.Fatalf("cancelled coefficient kept: %v", l)
	}
	l.AddVar("y", 3)
	l.Const = 4
	m := l.Clone()
	m.Scale(-2)
	if m.Coeffs["y"] != -6 || m.Const != -8 {
		t.Fatalf("Scale: %v", m)
	}
	if l.Coeffs["y"] != 3 {
		t.Fatalf("Clone aliased: %v", l)
	}
	l.AddLin(m, 1)
	if l.Coeffs["y"] != -3 || l.Const != -4 {
		t.Fatalf("AddLin: %v", l)
	}
	if l.String() == "" || l.Key() == "" {
		t.Fatalf("empty render")
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := EvalTerm(V("missing"), map[string]int64{}); err == nil {
		t.Fatalf("unbound variable not reported")
	}
	if _, err := EvalTerm(Eq(V("x"), Num(0)), map[string]int64{"x": 0}); err == nil {
		t.Fatalf("formula in term position not reported")
	}
	if _, err := EvalFormula(Add(V("x"), Num(0)), map[string]int64{"x": 0}); err == nil {
		t.Fatalf("term in formula position not reported")
	}
}

func TestAtoms(t *testing.T) {
	x := V("x")
	f := Disj(Conj(Eq(x, Num(0)), Negate(Lt(x, Num(5)))), Eq(x, Num(0)))
	atoms := Atoms(f)
	if len(atoms) != 2 {
		t.Fatalf("Atoms = %v, want 2 distinct", atoms)
	}
}

func TestIsTermIsFormulaIsAtom(t *testing.T) {
	if !IsTerm(Add(V("x"), Num(1))) || IsTerm(Eq(V("x"), Num(1))) {
		t.Fatalf("IsTerm broken")
	}
	if !IsFormula(TrueExpr) || IsFormula(V("x")) {
		t.Fatalf("IsFormula broken")
	}
	if !IsAtom(Eq(V("x"), Num(1))) || !IsAtom(TrueExpr) {
		t.Fatalf("IsAtom broken on atoms")
	}
	if IsAtom(Conj(Eq(V("x"), Num(1)), Eq(V("y"), Num(2)))) {
		t.Fatalf("IsAtom true on conjunction")
	}
}

func TestMentionsAny(t *testing.T) {
	e := Eq(V("a"), V("b"))
	if !MentionsAny(e, map[string]bool{"b": true}) {
		t.Fatalf("MentionsAny missed b")
	}
	if MentionsAny(e, map[string]bool{"z": true}) {
		t.Fatalf("MentionsAny false positive")
	}
}
