// Package expr defines the expression and formula intermediate
// representation shared by the frontend, the predicate-abstraction layer,
// and the decision procedure.
//
// Terms are integer-valued: constants, variables, and the arithmetic
// operators +, -, * (unary minus is represented as 0-x by the parser).
// Formulas are boolean-valued: the constants true/false, comparisons
// between terms, and the connectives not/and/or.
//
// Expressions are immutable trees. Two expressions are semantically
// interchangeable for hashing purposes iff their Key strings are equal.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is an expression node: either a term (integer-valued) or a formula
// (boolean-valued). The concrete types are Int, Var, Bin, Bool, Cmp, Not,
// And, and Or.
type Expr interface {
	// Key returns a canonical string for the expression, used as a hash
	// key. Structurally equal expressions have equal keys.
	Key() string
	// String renders the expression in MiniNesC surface syntax.
	String() string
	isExpr()
}

// BinOp enumerates arithmetic operators.
type BinOp int

// Arithmetic operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", int(op))
}

// Negate returns the complementary comparison (e.g. == becomes !=).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	panic(fmt.Sprintf("expr: unknown CmpOp %d", int(op)))
}

// Int is an integer constant term.
type Int struct {
	Value int64
}

// Var is a variable reference term. Names may carry SSA version or thread
// suffixes introduced by Rename; the frontend guarantees base names contain
// no '#' or '@'.
type Var struct {
	Name string
}

// Bin is a binary arithmetic term.
type Bin struct {
	Op   BinOp
	X, Y Expr
}

// Bool is a boolean constant formula.
type Bool struct {
	Value bool
}

// Cmp is a comparison formula between two terms.
type Cmp struct {
	Op   CmpOp
	X, Y Expr
}

// Not is boolean negation.
type Not struct {
	X Expr
}

// And is n-ary conjunction. An empty And is true.
type And struct {
	Xs []Expr
}

// Or is n-ary disjunction. An empty Or is false.
type Or struct {
	Xs []Expr
}

func (Int) isExpr()  {}
func (Var) isExpr()  {}
func (Bin) isExpr()  {}
func (Bool) isExpr() {}
func (Cmp) isExpr()  {}
func (Not) isExpr()  {}
func (And) isExpr()  {}
func (Or) isExpr()   {}

// Constructors. These perform light normalisation (constant folding is left
// to Simplify).

// Num returns an integer constant.
func Num(v int64) Expr { return Int{Value: v} }

// V returns a variable reference.
func V(name string) Expr { return Var{Name: name} }

// Add returns x + y.
func Add(x, y Expr) Expr { return Bin{Op: OpAdd, X: x, Y: y} }

// Sub returns x - y.
func Sub(x, y Expr) Expr { return Bin{Op: OpSub, X: x, Y: y} }

// Mul returns x * y.
func Mul(x, y Expr) Expr { return Bin{Op: OpMul, X: x, Y: y} }

// True and False are the boolean constants.
var (
	TrueExpr  Expr = Bool{Value: true}
	FalseExpr Expr = Bool{Value: false}
)

// Compare returns the comparison x op y.
func Compare(op CmpOp, x, y Expr) Expr { return Cmp{Op: op, X: x, Y: y} }

// Eq returns x == y.
func Eq(x, y Expr) Expr { return Cmp{Op: OpEq, X: x, Y: y} }

// Ne returns x != y.
func Ne(x, y Expr) Expr { return Cmp{Op: OpNe, X: x, Y: y} }

// Lt returns x < y.
func Lt(x, y Expr) Expr { return Cmp{Op: OpLt, X: x, Y: y} }

// Le returns x <= y.
func Le(x, y Expr) Expr { return Cmp{Op: OpLe, X: x, Y: y} }

// Gt returns x > y.
func Gt(x, y Expr) Expr { return Cmp{Op: OpGt, X: x, Y: y} }

// Ge returns x >= y.
func Ge(x, y Expr) Expr { return Cmp{Op: OpGe, X: x, Y: y} }

// Negate returns the logical negation of f, pushing the negation into
// comparisons and boolean constants where immediate.
func Negate(f Expr) Expr {
	switch g := f.(type) {
	case Bool:
		return Bool{Value: !g.Value}
	case Cmp:
		return Cmp{Op: g.Op.Negate(), X: g.X, Y: g.Y}
	case Not:
		return g.X
	default:
		return Not{X: f}
	}
}

// Conj returns the conjunction of fs, flattening nested Ands and dropping
// true conjuncts. Conj of nothing is true; a false conjunct collapses the
// result to false.
func Conj(fs ...Expr) Expr {
	var out []Expr
	var walk func(Expr) bool
	walk = func(f Expr) bool {
		switch g := f.(type) {
		case Bool:
			return g.Value
		case And:
			for _, x := range g.Xs {
				if !walk(x) {
					return false
				}
			}
			return true
		default:
			out = append(out, f)
			return true
		}
	}
	for _, f := range fs {
		if !walk(f) {
			return FalseExpr
		}
	}
	switch len(out) {
	case 0:
		return TrueExpr
	case 1:
		return out[0]
	}
	return And{Xs: out}
}

// Disj returns the disjunction of fs, flattening nested Ors and dropping
// false disjuncts. Disj of nothing is false; a true disjunct collapses the
// result to true.
func Disj(fs ...Expr) Expr {
	var out []Expr
	var walk func(Expr) bool
	walk = func(f Expr) bool {
		switch g := f.(type) {
		case Bool:
			return !g.Value
		case Or:
			for _, x := range g.Xs {
				if !walk(x) {
					return false
				}
			}
			return true
		default:
			out = append(out, f)
			return true
		}
	}
	for _, f := range fs {
		if !walk(f) {
			return TrueExpr
		}
	}
	switch len(out) {
	case 0:
		return FalseExpr
	case 1:
		return out[0]
	}
	return Or{Xs: out}
}

// Implies returns the formula a -> b, encoded as !a || b.
func Implies(a, b Expr) Expr { return Disj(Negate(a), b) }

// Key implementations. The encodings are unambiguous prefix forms.

func (e Int) Key() string  { return fmt.Sprintf("i%d", e.Value) }
func (e Var) Key() string  { return "v" + e.Name }
func (e Bin) Key() string  { return fmt.Sprintf("(%s %s %s)", e.Op, e.X.Key(), e.Y.Key()) }
func (e Bool) Key() string { return fmt.Sprintf("b%t", e.Value) }
func (e Cmp) Key() string  { return fmt.Sprintf("(%s %s %s)", e.Op, e.X.Key(), e.Y.Key()) }
func (e Not) Key() string  { return fmt.Sprintf("(! %s)", e.X.Key()) }

func (e And) Key() string {
	parts := make([]string, len(e.Xs))
	for i, x := range e.Xs {
		parts[i] = x.Key()
	}
	return "(& " + strings.Join(parts, " ") + ")"
}

func (e Or) Key() string {
	parts := make([]string, len(e.Xs))
	for i, x := range e.Xs {
		parts[i] = x.Key()
	}
	return "(| " + strings.Join(parts, " ") + ")"
}

// String implementations render MiniNesC surface syntax with minimal
// parenthesisation.

func (e Int) String() string  { return fmt.Sprintf("%d", e.Value) }
func (e Var) String() string  { return e.Name }
func (e Bool) String() string { return fmt.Sprintf("%t", e.Value) }

func (e Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y)
}

func (e Cmp) String() string {
	return fmt.Sprintf("%s %s %s", e.X, e.Op, e.Y)
}

func (e Not) String() string { return fmt.Sprintf("!(%s)", e.X) }

func (e And) String() string {
	parts := make([]string, len(e.Xs))
	for i, x := range e.Xs {
		parts[i] = fmt.Sprintf("(%s)", x)
	}
	return strings.Join(parts, " && ")
}

func (e Or) String() string {
	parts := make([]string, len(e.Xs))
	for i, x := range e.Xs {
		parts[i] = fmt.Sprintf("(%s)", x)
	}
	return strings.Join(parts, " || ")
}

// Equal reports structural equality.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Key() == b.Key()
}

// FreeVars returns the set of variable names occurring in e.
func FreeVars(e Expr) map[string]bool {
	out := make(map[string]bool)
	CollectVars(e, out)
	return out
}

// CollectVars adds the variable names occurring in e to out.
func CollectVars(e Expr, out map[string]bool) {
	switch g := e.(type) {
	case Int, Bool:
	case Var:
		out[g.Name] = true
	case Bin:
		CollectVars(g.X, out)
		CollectVars(g.Y, out)
	case Cmp:
		CollectVars(g.X, out)
		CollectVars(g.Y, out)
	case Not:
		CollectVars(g.X, out)
	case And:
		for _, x := range g.Xs {
			CollectVars(x, out)
		}
	case Or:
		for _, x := range g.Xs {
			CollectVars(x, out)
		}
	default:
		panic(fmt.Sprintf("expr: unknown node %T", e))
	}
}

// SortedVars returns the variable names occurring in e in sorted order.
func SortedVars(e Expr) []string {
	set := FreeVars(e)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Mentions reports whether variable name occurs in e.
func Mentions(e Expr, name string) bool {
	switch g := e.(type) {
	case Int, Bool:
		return false
	case Var:
		return g.Name == name
	case Bin:
		return Mentions(g.X, name) || Mentions(g.Y, name)
	case Cmp:
		return Mentions(g.X, name) || Mentions(g.Y, name)
	case Not:
		return Mentions(g.X, name)
	case And:
		for _, x := range g.Xs {
			if Mentions(x, name) {
				return true
			}
		}
		return false
	case Or:
		for _, x := range g.Xs {
			if Mentions(x, name) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("expr: unknown node %T", e))
	}
}

// MentionsAny reports whether any variable in names occurs in e.
func MentionsAny(e Expr, names map[string]bool) bool {
	for v := range FreeVars(e) {
		if names[v] {
			return true
		}
	}
	return false
}

// Subst returns e with every free occurrence of a variable in m replaced by
// the corresponding expression. The substitution is simultaneous.
func Subst(e Expr, m map[string]Expr) Expr {
	switch g := e.(type) {
	case Int, Bool:
		return e
	case Var:
		if r, ok := m[g.Name]; ok {
			return r
		}
		return e
	case Bin:
		return Bin{Op: g.Op, X: Subst(g.X, m), Y: Subst(g.Y, m)}
	case Cmp:
		return Cmp{Op: g.Op, X: Subst(g.X, m), Y: Subst(g.Y, m)}
	case Not:
		return Not{X: Subst(g.X, m)}
	case And:
		xs := make([]Expr, len(g.Xs))
		for i, x := range g.Xs {
			xs[i] = Subst(x, m)
		}
		return And{Xs: xs}
	case Or:
		xs := make([]Expr, len(g.Xs))
		for i, x := range g.Xs {
			xs[i] = Subst(x, m)
		}
		return Or{Xs: xs}
	default:
		panic(fmt.Sprintf("expr: unknown node %T", e))
	}
}

// SubstVar returns e with variable name replaced by r.
func SubstVar(e Expr, name string, r Expr) Expr {
	return Subst(e, map[string]Expr{name: r})
}

// Rename returns e with every variable name mapped through f.
func Rename(e Expr, f func(string) string) Expr {
	switch g := e.(type) {
	case Int, Bool:
		return e
	case Var:
		return Var{Name: f(g.Name)}
	case Bin:
		return Bin{Op: g.Op, X: Rename(g.X, f), Y: Rename(g.Y, f)}
	case Cmp:
		return Cmp{Op: g.Op, X: Rename(g.X, f), Y: Rename(g.Y, f)}
	case Not:
		return Not{X: Rename(g.X, f)}
	case And:
		xs := make([]Expr, len(g.Xs))
		for i, x := range g.Xs {
			xs[i] = Rename(x, f)
		}
		return And{Xs: xs}
	case Or:
		xs := make([]Expr, len(g.Xs))
		for i, x := range g.Xs {
			xs[i] = Rename(x, f)
		}
		return Or{Xs: xs}
	default:
		panic(fmt.Sprintf("expr: unknown node %T", e))
	}
}

// IsTerm reports whether e is integer-valued.
func IsTerm(e Expr) bool {
	switch e.(type) {
	case Int, Var, Bin:
		return true
	}
	return false
}

// IsFormula reports whether e is boolean-valued.
func IsFormula(e Expr) bool { return !IsTerm(e) }

// IsAtom reports whether e is an atomic formula (a comparison or boolean
// constant).
func IsAtom(e Expr) bool {
	switch e.(type) {
	case Cmp, Bool:
		return true
	}
	return false
}

// Atoms collects the distinct comparison atoms of formula f in first-seen
// order.
func Atoms(f Expr) []Expr {
	var out []Expr
	seen := make(map[string]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch g := e.(type) {
		case Cmp:
			if k := g.Key(); !seen[k] {
				seen[k] = true
				out = append(out, g)
			}
		case Not:
			walk(g.X)
		case And:
			for _, x := range g.Xs {
				walk(x)
			}
		case Or:
			for _, x := range g.Xs {
				walk(x)
			}
		}
	}
	walk(f)
	return out
}
