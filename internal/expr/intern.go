package expr

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements hash-consing for expressions: a process-wide
// interning arena that assigns every structurally-distinct *canonical*
// expression a unique 32-bit ID and a precomputed 64-bit structural hash.
//
// Interning happens through smart constructors that canonicalise as they
// build: constants fold, And/Or flatten, deduplicate, sort their children
// and collapse complementary literals, and comparisons normalise (Gt/Ge
// rewrite to Lt/Le by swapping operands), all preserving logical
// equivalence. Consequently
//
//   - equality of canonical forms is ID equality (O(1)),
//   - map keys and cache keys are IDs, not recursive Key() strings,
//   - obvious tautologies/contradictions (x ∧ ¬x, 3 < 2) intern directly
//     to the boolean constants, giving SMT callers a syntactic sat/unsat
//     fast path that never touches a solver.
//
// Children are ordered by structural hash (ties broken by canonical key),
// which is a function of content only — canonical forms are identical
// across runs and across goroutine interleavings, so verdicts derived
// from them stay deterministic at any parallelism. ID *values* are
// process-local (assigned in first-intern order) and must never leak into
// anything order-sensitive; the codebase only uses them as cache keys.
//
// The arena is append-only and guarded by a single RWMutex: reads (the
// overwhelming majority — hash/kind lookups and re-interning of existing
// structure) take the read lock, inserts double-check under the write
// lock. Memory is monotonic for the process lifetime, which is the right
// trade for an analysis engine that re-queries the same predicate cubes
// thousands of times.

// ID is the arena identity of a canonical interned expression. The zero
// ID is invalid (NoID); valid IDs start at 1.
type ID uint32

// NoID is the invalid ID.
const NoID ID = 0

// Kind discriminates interned node shapes. It mirrors the concrete Expr
// types one-to-one.
type Kind uint8

// Node kinds.
const (
	KindInvalid Kind = iota
	KindInt
	KindVar
	KindBin
	KindBool
	KindCmp
	KindNot
	KindAnd
	KindOr
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindVar:
		return "var"
	case KindBin:
		return "bin"
	case KindBool:
		return "bool"
	case KindCmp:
		return "cmp"
	case KindNot:
		return "not"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// inode is one arena entry. Nodes are immutable after insertion except
// for the memoised negation link, which is written under the arena lock.
type inode struct {
	kind Kind
	op   int8   // BinOp or CmpOp, by kind
	ival int64  // KindInt value; KindBool truth (0/1)
	name string // KindVar
	kids []ID   // children, canonical order; never mutated after insert
	hash uint64 // structural hash (content-only, stable across runs)
	rep  Expr   // canonical representative tree (children shared)
	neg  ID     // memoised logical negation; NoID until first computed
}

type arena struct {
	mu     sync.RWMutex
	nodes  []inode
	byHash map[uint64][]ID
	ints   map[int64]ID
	vars   map[string]ID
	// bytes is a running estimate of the arena's memory footprint,
	// maintained at insert and decremented by Compact, so observability
	// reads are O(1). nodesHW/bytesHW are the process-lifetime high-water
	// marks; they diverge from the live values after a compaction pass.
	bytes   int64
	nodesHW int
	bytesHW int64
	// live counts non-tombstoned nodes; it equals len(nodes) until the
	// first Compact. gen increments on every Compact so ID-keyed caches
	// outside the arena can detect that a sweep happened.
	live int
	gen  uint64
}

var ar = &arena{
	byHash: make(map[uint64][]ID),
	ints:   make(map[int64]ID),
	vars:   make(map[string]ID),
}

var falseID, trueID ID

func init() {
	falseID = internLeaf(KindBool, 0, "", FalseExpr)
	trueID = internLeaf(KindBool, 1, "", TrueExpr)
}

// BoolID returns the ID of a boolean constant. It never locks.
func BoolID(v bool) ID {
	if v {
		return trueID
	}
	return falseID
}

// --- structural hashing ---

// mix64 folds x into h with strong avalanche, so child order and node
// content both shape the result. The constants are the usual splitmix64
// multipliers.
func mix64(h, x uint64) uint64 {
	h ^= x
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

func hashSeed(kind Kind, op int8) uint64 {
	return mix64(0x2545F4914F6CDD1D, uint64(kind)<<8|uint64(uint8(op)))
}

func hashString(kind Kind, s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(hashSeed(kind, 0), h)
}

func hashInt(kind Kind, v int64) uint64 {
	return mix64(hashSeed(kind, 0), uint64(v))
}

// --- arena primitives ---

// findLocked returns the existing composite node matching (kind, op,
// kids), or NoID. Caller holds at least the read lock.
func (a *arena) findLocked(h uint64, kind Kind, op int8, kids []ID) ID {
	for _, id := range a.byHash[h] {
		n := &a.nodes[id-1]
		if n.kind != kind || n.op != op || len(n.kids) != len(kids) {
			continue
		}
		same := true
		for i := range kids {
			if n.kids[i] != kids[i] {
				same = false
				break
			}
		}
		if same {
			return id
		}
	}
	return NoID
}

// compositeHash folds the children's hashes into the node seed. Caller
// holds at least the read lock.
func (a *arena) compositeHash(kind Kind, op int8, kids []ID) uint64 {
	h := hashSeed(kind, op)
	for _, k := range kids {
		h = mix64(h, a.nodes[k-1].hash)
	}
	return h
}

// internLeaf interns an Int, Bool, or Var node.
func internLeaf(kind Kind, ival int64, name string, rep Expr) ID {
	ar.mu.RLock()
	var id ID
	switch kind {
	case KindInt:
		id = ar.ints[ival]
	case KindVar:
		id = ar.vars[name]
	case KindBool:
		if len(ar.nodes) >= 2 { // after init
			id = BoolID(ival != 0)
		}
	}
	ar.mu.RUnlock()
	if id != NoID {
		return id
	}
	var h uint64
	if kind == KindVar {
		h = hashString(kind, name)
	} else {
		h = hashInt(kind, ival)
	}
	ar.mu.Lock()
	defer ar.mu.Unlock()
	switch kind {
	case KindInt:
		if id := ar.ints[ival]; id != NoID {
			return id
		}
	case KindVar:
		if id := ar.vars[name]; id != NoID {
			return id
		}
	}
	ar.nodes = append(ar.nodes, inode{kind: kind, ival: ival, name: name, hash: h, rep: rep})
	id = ID(len(ar.nodes))
	ar.byHash[h] = append(ar.byHash[h], id)
	ar.accountInsertLocked(nodeBytes(len(name), 0))
	switch kind {
	case KindInt:
		ar.ints[ival] = id
	case KindVar:
		ar.vars[name] = id
	}
	return id
}

// internComposite interns a node with children, building the canonical
// representative from the children's representatives. kids must already
// be in canonical order; the slice is copied on insert.
func internComposite(kind Kind, op int8, kids []ID) ID {
	ar.mu.RLock()
	h := ar.compositeHash(kind, op, kids)
	id := ar.findLocked(h, kind, op, kids)
	ar.mu.RUnlock()
	if id != NoID {
		return id
	}
	ar.mu.Lock()
	defer ar.mu.Unlock()
	if id := ar.findLocked(h, kind, op, kids); id != NoID {
		return id
	}
	var rep Expr
	switch kind {
	case KindBin:
		rep = Bin{Op: BinOp(op), X: ar.nodes[kids[0]-1].rep, Y: ar.nodes[kids[1]-1].rep}
	case KindCmp:
		rep = Cmp{Op: CmpOp(op), X: ar.nodes[kids[0]-1].rep, Y: ar.nodes[kids[1]-1].rep}
	case KindNot:
		rep = Not{X: ar.nodes[kids[0]-1].rep}
	case KindAnd, KindOr:
		xs := make([]Expr, len(kids))
		for i, k := range kids {
			xs[i] = ar.nodes[k-1].rep
		}
		if kind == KindAnd {
			rep = And{Xs: xs}
		} else {
			rep = Or{Xs: xs}
		}
	default:
		panic(fmt.Sprintf("expr: internComposite of %v", kind))
	}
	own := make([]ID, len(kids))
	copy(own, kids)
	ar.nodes = append(ar.nodes, inode{kind: kind, op: op, kids: own, hash: h, rep: rep})
	id = ID(len(ar.nodes))
	ar.byHash[h] = append(ar.byHash[h], id)
	ar.accountInsertLocked(nodeBytes(0, len(kids)))
	return id
}

// accountInsertLocked updates the live/bytes accounting and high-water
// marks for one inserted node. Caller holds the write lock.
func (a *arena) accountInsertLocked(nb int64) {
	a.live++
	a.bytes += nb
	if a.live > a.nodesHW {
		a.nodesHW = a.live
	}
	if a.bytes > a.bytesHW {
		a.bytesHW = a.bytes
	}
}

// --- public accessors ---

// FromID returns the canonical representative expression of id. The
// returned tree shares substructure with every other representative;
// treat it as immutable.
func FromID(id ID) Expr {
	ar.mu.RLock()
	rep := ar.nodes[id-1].rep
	ar.mu.RUnlock()
	return rep
}

// IDHash returns the precomputed 64-bit structural hash of id. Hashes
// are a function of content only and identical across runs.
func IDHash(id ID) uint64 {
	ar.mu.RLock()
	h := ar.nodes[id-1].hash
	ar.mu.RUnlock()
	return h
}

// IDKind returns the node kind of id.
func IDKind(id ID) Kind {
	ar.mu.RLock()
	k := ar.nodes[id-1].kind
	ar.mu.RUnlock()
	return k
}

// IDBoolValue reports whether id is a boolean constant and, if so, its
// truth value. It never locks: the two constant IDs are fixed at init.
func IDBoolValue(id ID) (value, ok bool) {
	switch id {
	case trueID:
		return true, true
	case falseID:
		return false, true
	}
	return false, false
}

// IDKey returns the canonical Key() string of id's representative. This
// exists for diagnostics and tests; hot paths compare IDs instead.
func IDKey(id ID) string { return FromID(id).Key() }

// View is a read-only structural decomposition of an interned node.
type View struct {
	Kind  Kind
	BinOp BinOp  // KindBin
	CmpOp CmpOp  // KindCmp
	Int   int64  // KindInt
	Bool  bool   // KindBool
	Name  string // KindVar
	Kids  []ID   // children; shared with the arena, do not mutate
}

// IDView decomposes id for structure-directed consumers (the SMT encoder
// walks formulas this way without rebuilding trees or keys).
func IDView(id ID) View {
	ar.mu.RLock()
	n := &ar.nodes[id-1]
	v := View{Kind: n.kind, Kids: n.kids}
	switch n.kind {
	case KindInt:
		v.Int = n.ival
	case KindBool:
		v.Bool = n.ival != 0
	case KindVar:
		v.Name = n.name
	case KindBin:
		v.BinOp = BinOp(n.op)
	case KindCmp:
		v.CmpOp = CmpOp(n.op)
	}
	ar.mu.RUnlock()
	return v
}

// InternStats reports the number of distinct canonical expressions in the
// arena, for observability.
func InternStats() (nodes int) {
	return Stats().Nodes
}

// ArenaStats describes the process-wide interning arena for resource
// watermarking: distinct canonical nodes, an estimated memory footprint,
// and the high-water marks of both. The live values and the high-water
// marks diverge after a Compact pass reclaims dead nodes.
type ArenaStats struct {
	// Nodes is the number of live (non-tombstoned) interned nodes.
	Nodes int
	// Bytes estimates the arena's memory footprint: per-node struct and
	// hash-index overhead plus variable-length payloads (names, child
	// slices, canonical representatives). An estimate, not an exact
	// runtime measurement — its value is trend visibility.
	Bytes int64
	// NodesHighWater and BytesHighWater are the largest values observed
	// over the process lifetime.
	NodesHighWater int
	BytesHighWater int64
	// Compactions counts completed Compact passes.
	Compactions uint64
}

// Stats snapshots the arena's size accounting in O(1).
func Stats() ArenaStats {
	ar.mu.RLock()
	s := ArenaStats{
		Nodes: ar.live, Bytes: ar.bytes,
		NodesHighWater: ar.nodesHW, BytesHighWater: ar.bytesHW,
		Compactions: ar.gen,
	}
	ar.mu.RUnlock()
	return s
}

// nodeBytes estimates one interned node's footprint: the inode struct
// (~88 bytes with padding), its byHash index slot, an amortized share of
// the canonical representative tree, the name payload, and 4 bytes per
// child ID. Constants were calibrated against unsafe.Sizeof; exactness
// is not the point — monotone growth visibility is.
func nodeBytes(nameLen, kids int) int64 {
	const perNode = 88 + 16 + 48 // inode + index slot + representative share
	return int64(perNode + nameLen + 4*kids)
}

// --- smart constructors ---

// InternNum interns an integer constant.
func InternNum(v int64) ID { return internLeaf(KindInt, v, "", Int{Value: v}) }

// InternV interns a variable reference.
func InternV(name string) ID { return internLeaf(KindVar, 0, name, Var{Name: name}) }

// InternBin interns x op y with the same constant folding and identity
// rules as Simplify, plus hash-ordering of commutative operands.
func InternBin(op BinOp, x, y ID) ID {
	xv, yv := IDView(x), IDView(y)
	if xv.Kind == KindInt && yv.Kind == KindInt {
		switch op {
		case OpAdd:
			return InternNum(xv.Int + yv.Int)
		case OpSub:
			return InternNum(xv.Int - yv.Int)
		case OpMul:
			return InternNum(xv.Int * yv.Int)
		}
	}
	switch op {
	case OpAdd:
		if xv.Kind == KindInt && xv.Int == 0 {
			return y
		}
		if yv.Kind == KindInt && yv.Int == 0 {
			return x
		}
	case OpSub:
		if yv.Kind == KindInt && yv.Int == 0 {
			return x
		}
	case OpMul:
		if xv.Kind == KindInt && xv.Int == 1 {
			return y
		}
		if yv.Kind == KindInt && yv.Int == 1 {
			return x
		}
		if (xv.Kind == KindInt && xv.Int == 0) || (yv.Kind == KindInt && yv.Int == 0) {
			return InternNum(0)
		}
	}
	if op != OpSub && idLess(y, x) {
		x, y = y, x
	}
	return internComposite(KindBin, int8(op), []ID{x, y})
}

// InternCmp interns the comparison x op y: constant comparisons fold,
// identical operands fold, and Gt/Ge normalise to Lt/Le by swapping, so
// different spellings of one atom share an ID.
func InternCmp(op CmpOp, x, y ID) ID {
	xv, yv := IDView(x), IDView(y)
	if xv.Kind == KindInt && yv.Kind == KindInt {
		return BoolID(evalCmp(op, xv.Int, yv.Int))
	}
	if x == y {
		switch op {
		case OpEq, OpLe, OpGe:
			return trueID
		case OpNe, OpLt, OpGt:
			return falseID
		}
	}
	switch op {
	case OpGt:
		op, x, y = OpLt, y, x
	case OpGe:
		op, x, y = OpLe, y, x
	}
	return internComposite(KindCmp, int8(op), []ID{x, y})
}

// InternNot interns the logical negation of x, pushing the negation into
// boolean constants, comparisons, and double negations (the same rules as
// Negate). Negations are memoised both ways on the nodes, so repeated
// complement lookups are a read-locked field load.
func InternNot(x ID) ID {
	ar.mu.RLock()
	n := ar.nodes[x-1] // struct copy; kids slice is immutable
	ar.mu.RUnlock()
	if n.neg != NoID {
		return n.neg
	}
	var out ID
	switch n.kind {
	case KindBool:
		out = BoolID(n.ival == 0)
	case KindCmp:
		out = InternCmp(CmpOp(n.op).Negate(), n.kids[0], n.kids[1])
	case KindNot:
		out = n.kids[0]
	default:
		out = internComposite(KindNot, 0, []ID{x})
	}
	ar.mu.Lock()
	ar.nodes[x-1].neg = out
	ar.nodes[out-1].neg = x
	ar.mu.Unlock()
	return out
}

// idLess is the canonical child order: by structural hash, with the
// (vanishingly rare) hash ties broken by canonical key so the order is a
// pure function of content — never of intern order.
func idLess(a, b ID) bool {
	if a == b {
		return false
	}
	ha, hb := IDHash(a), IDHash(b)
	if ha != hb {
		return ha < hb
	}
	return IDKey(a) < IDKey(b)
}

// internNary builds a canonical And/Or: flatten same-kind children, drop
// identity constants, collapse on absorbing constants, deduplicate,
// detect complementary children (x and ¬x), and sort. For KindAnd a
// complementary pair collapses to false; for KindOr to true.
func internNary(kind Kind, xs []ID) ID {
	identity, absorb := trueID, falseID
	if kind == KindOr {
		identity, absorb = falseID, trueID
	}
	kids := make([]ID, 0, len(xs)+4)
	ar.mu.RLock()
	for _, x := range xs {
		n := &ar.nodes[x-1]
		if n.kind == kind {
			kids = append(kids, n.kids...)
			continue
		}
		kids = append(kids, x)
	}
	ar.mu.RUnlock()
	out := kids[:0]
	for _, k := range kids {
		if k == identity {
			continue
		}
		if k == absorb {
			return absorb
		}
		out = append(out, k)
	}
	kids = out
	sort.Slice(kids, func(i, j int) bool { return idLess(kids[i], kids[j]) })
	// Dedup adjacent (sorted ⇒ equal IDs adjacent).
	out = kids[:0]
	var prev ID
	for _, k := range kids {
		if k == prev {
			continue
		}
		out = append(out, k)
		prev = k
	}
	kids = out
	// Complementary pair ⇒ the absorbing constant. Negations are memoised
	// on the nodes, so this is n hash lookups, not n interns after warmup.
	for _, k := range kids {
		if containsID(kids, InternNot(k)) {
			return absorb
		}
	}
	switch len(kids) {
	case 0:
		return identity
	case 1:
		return kids[0]
	}
	return internComposite(kind, 0, kids)
}

// containsID reports membership via binary search over the hash order.
func containsID(sorted []ID, want ID) bool {
	wh := IDHash(want)
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if IDHash(sorted[mid]) < wh {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ; lo < len(sorted) && IDHash(sorted[lo]) == wh; lo++ {
		if sorted[lo] == want {
			return true
		}
	}
	return false
}

// IDConj interns the canonical conjunction of xs (see internNary).
func IDConj(xs ...ID) ID { return internNary(KindAnd, xs) }

// IDDisj interns the canonical disjunction of xs.
func IDDisj(xs ...ID) ID { return internNary(KindOr, xs) }

// IDImplies interns a -> b as ¬a ∨ b.
func IDImplies(a, b ID) ID { return IDDisj(InternNot(a), b) }

// Intern canonicalises and interns expression e, returning its ID.
// Structurally equal inputs — and many logically equal ones, thanks to
// canonicalisation — share one ID, and Intern(FromID(id)) == id.
func Intern(e Expr) ID {
	switch g := e.(type) {
	case Int:
		return InternNum(g.Value)
	case Var:
		return InternV(g.Name)
	case Bool:
		return BoolID(g.Value)
	case Bin:
		return InternBin(g.Op, Intern(g.X), Intern(g.Y))
	case Cmp:
		return InternCmp(g.Op, Intern(g.X), Intern(g.Y))
	case Not:
		return InternNot(Intern(g.X))
	case And:
		kids := make([]ID, len(g.Xs))
		for i, x := range g.Xs {
			kids[i] = Intern(x)
		}
		return internNary(KindAnd, kids)
	case Or:
		kids := make([]ID, len(g.Xs))
		for i, x := range g.Xs {
			kids[i] = Intern(x)
		}
		return internNary(KindOr, kids)
	default:
		panic(fmt.Sprintf("expr: unknown node %T", e))
	}
}

// LookupID returns the ID of e without inserting anything: it succeeds
// exactly when e is already in canonical interned form (for example a
// tree obtained from FromID). It allocates nothing on success, which
// keeps Sat-style cache hits on interned formulas allocation-free.
func LookupID(e Expr) (ID, bool) {
	ar.mu.RLock()
	id, ok := lookupLocked(e)
	ar.mu.RUnlock()
	return id, ok
}

func lookupLocked(e Expr) (ID, bool) {
	switch g := e.(type) {
	case Int:
		id, ok := ar.ints[g.Value]
		return id, ok
	case Var:
		id, ok := ar.vars[g.Name]
		return id, ok
	case Bool:
		return BoolID(g.Value), true
	case Bin:
		var kids [2]ID
		var ok bool
		if kids[0], ok = lookupLocked(g.X); !ok {
			return NoID, false
		}
		if kids[1], ok = lookupLocked(g.Y); !ok {
			return NoID, false
		}
		h := ar.compositeHash(KindBin, int8(g.Op), kids[:])
		id := ar.findLocked(h, KindBin, int8(g.Op), kids[:])
		return id, id != NoID
	case Cmp:
		var kids [2]ID
		var ok bool
		if kids[0], ok = lookupLocked(g.X); !ok {
			return NoID, false
		}
		if kids[1], ok = lookupLocked(g.Y); !ok {
			return NoID, false
		}
		h := ar.compositeHash(KindCmp, int8(g.Op), kids[:])
		id := ar.findLocked(h, KindCmp, int8(g.Op), kids[:])
		return id, id != NoID
	case Not:
		var kids [1]ID
		var ok bool
		if kids[0], ok = lookupLocked(g.X); !ok {
			return NoID, false
		}
		h := ar.compositeHash(KindNot, 0, kids[:])
		id := ar.findLocked(h, KindNot, 0, kids[:])
		return id, id != NoID
	case And:
		return lookupNaryLocked(KindAnd, g.Xs)
	case Or:
		return lookupNaryLocked(KindOr, g.Xs)
	}
	return NoID, false
}

func lookupNaryLocked(kind Kind, xs []Expr) (ID, bool) {
	var buf [16]ID
	kids := buf[:0]
	if len(xs) > len(buf) {
		kids = make([]ID, 0, len(xs))
	}
	for _, x := range xs {
		id, ok := lookupLocked(x)
		if !ok {
			return NoID, false
		}
		kids = append(kids, id)
	}
	h := ar.compositeHash(kind, 0, kids)
	id := ar.findLocked(h, kind, 0, kids)
	return id, id != NoID
}
