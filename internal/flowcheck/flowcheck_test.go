package flowcheck

import (
	"strings"
	"testing"

	"circ/internal/cfa"
	"circ/internal/lang"
)

func build(t *testing.T, src string) *cfa.CFA {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := cfa.Build(p, "")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

func TestAtomicOnlyIsSilent(t *testing.T) {
	c := build(t, `
global int x;
thread T {
  while (1) { atomic { x = x + 1; } }
}
`)
	rep := Analyze([]*cfa.CFA{c})
	if rep.Racy("x") {
		t.Fatalf("atomic-only access flagged: %s", rep)
	}
	if !strings.Contains(rep.String(), "no warnings") {
		t.Fatalf("String() = %q", rep.String())
	}
}

// The nesC analysis flags the test-and-set idiom: x is accessed outside an
// atomic section (this is why the original code carries `norace`).
func TestTestAndSetFalsePositive(t *testing.T) {
	c := build(t, `
global int x;
global int state;
thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`)
	rep := Analyze([]*cfa.CFA{c})
	if !rep.Racy("x") {
		t.Fatalf("flow analysis should flag x")
	}
	if !rep.Racy("state") {
		t.Fatalf("flow analysis should flag state (written outside atomic)")
	}
	vars := rep.Vars()
	if len(vars) != 2 || vars[0] != "state" || vars[1] != "x" {
		t.Fatalf("Vars() = %v", vars)
	}
}

func TestWarningsDistinguishReadWrite(t *testing.T) {
	c := build(t, `
global int g;
thread T {
  local int l;
  l = g;
  g = 1;
}
`)
	rep := Analyze([]*cfa.CFA{c})
	var reads, writes int
	for _, w := range rep.Warnings {
		if w.Var != "g" {
			t.Fatalf("unexpected var %q", w.Var)
		}
		if w.Write {
			writes++
		} else {
			reads++
		}
		if w.String() == "" {
			t.Fatalf("empty warning render")
		}
	}
	if reads != 1 || writes != 1 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
}

func TestLocalAccessesIgnored(t *testing.T) {
	c := build(t, `
global int g;
thread T {
  local int l;
  l = l + 1;
  atomic { g = l; }
}
`)
	rep := Analyze([]*cfa.CFA{c})
	if len(rep.Warnings) != 0 {
		t.Fatalf("locals flagged: %v", rep.Warnings)
	}
}

func TestHavocAndAssumeAccesses(t *testing.T) {
	c := build(t, `
global int g;
thread T {
  g = *;
  assume(g == 1);
}
`)
	rep := Analyze([]*cfa.CFA{c})
	var havocWrite, assumeRead bool
	for _, w := range rep.Warnings {
		if w.Write && strings.Contains(w.Op, "*") {
			havocWrite = true
		}
		if !w.Write && strings.Contains(w.Op, "==") {
			assumeRead = true
		}
	}
	if !havocWrite || !assumeRead {
		t.Fatalf("havoc/assume accesses missed: %v", rep.Warnings)
	}
}

func TestWarningsSorted(t *testing.T) {
	c := build(t, `
global int b;
global int a;
thread T {
  b = 1;
  a = 1;
}
`)
	rep := Analyze([]*cfa.CFA{c})
	if len(rep.Warnings) != 2 || rep.Warnings[0].Var != "a" {
		t.Fatalf("not sorted: %v", rep.Warnings)
	}
}
