// Package flowcheck implements the nesC compiler's flow-based static race
// analysis (Gay et al., PLDI 2003), the paper's second baseline: every
// access to a shared variable that can happen in preemptive code must
// occur inside an atomic section; any other access is flagged as a
// potential race.
//
// In the MiniNesC model all threads are preemptive (the nesC frontend
// models interrupt handlers as nondeterministically dispatched threads),
// so the analysis reduces to: flag each global accessed on an edge whose
// source location is not atomic. This is precisely the analysis whose
// false positives motivated the paper's `norace` annotations.
package flowcheck

import (
	"fmt"
	"sort"
	"strings"

	"circ/internal/cfa"
	"circ/internal/expr"
	"circ/internal/lang"
)

// Warning describes one non-atomic shared access.
type Warning struct {
	Var   string
	Op    string
	Pos   lang.Pos
	Write bool
}

func (w Warning) String() string {
	kind := "read"
	if w.Write {
		kind = "write"
	}
	return fmt.Sprintf("flowcheck: %s of shared %q outside atomic at %s (%s)", kind, w.Var, w.Pos, w.Op)
}

// Report is the analysis outcome.
type Report struct {
	Warnings []Warning
}

// Racy reports whether variable x was flagged.
func (r *Report) Racy(x string) bool {
	for _, w := range r.Warnings {
		if w.Var == x {
			return true
		}
	}
	return false
}

// Vars returns the flagged variables in sorted order.
func (r *Report) Vars() []string {
	set := map[string]bool{}
	for _, w := range r.Warnings {
		set[w.Var] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (r *Report) String() string {
	if len(r.Warnings) == 0 {
		return "flowcheck: no warnings"
	}
	var b strings.Builder
	for _, w := range r.Warnings {
		b.WriteString(w.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Analyze flags every access to a global variable occurring outside an
// atomic section in any of the given thread CFAs.
func Analyze(cfas []*cfa.CFA) *Report {
	rep := &Report{}
	for _, c := range cfas {
		for _, e := range c.Edges {
			if c.IsAtomic(e.Src) {
				continue
			}
			switch e.Op.Kind {
			case cfa.OpAssign:
				for v := range expr.FreeVars(e.Op.RHS) {
					if c.IsGlobal(v) {
						rep.Warnings = append(rep.Warnings, Warning{Var: v, Op: e.Op.String(), Pos: e.Pos})
					}
				}
				if c.IsGlobal(e.Op.LHS) {
					rep.Warnings = append(rep.Warnings, Warning{Var: e.Op.LHS, Op: e.Op.String(), Pos: e.Pos, Write: true})
				}
			case cfa.OpHavoc:
				if c.IsGlobal(e.Op.LHS) {
					rep.Warnings = append(rep.Warnings, Warning{Var: e.Op.LHS, Op: e.Op.String(), Pos: e.Pos, Write: true})
				}
			case cfa.OpAssume:
				for v := range expr.FreeVars(e.Op.Pred) {
					if c.IsGlobal(v) {
						rep.Warnings = append(rep.Warnings, Warning{Var: v, Op: e.Op.String(), Pos: e.Pos})
					}
				}
			}
		}
	}
	sort.Slice(rep.Warnings, func(i, j int) bool {
		a, b := rep.Warnings[i], rep.Warnings[j]
		if a.Var != b.Var {
			return a.Var < b.Var
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Col < b.Pos.Col
	})
	return rep
}
