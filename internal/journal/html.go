package journal

import (
	"fmt"
	"html/template"
	"io"
	"strings"
)

// HTMLData is everything RenderHTML needs: the per-case result sections
// (assembled by the caller, which owns the Report values) plus the journal
// events the provenance and timeline views are derived from.
type HTMLData struct {
	// Title heads the report.
	Title string
	// Summary is the overall one-line outcome (e.g. "2 safe, 1 unsafe").
	Summary string
	// Cases are the per-analysis result panels.
	Cases []CaseSection
	// Events is the journal in canonical order (Recorder.Events()).
	Events []Event
}

// CaseSection is one analysis unit's result panel.
type CaseSection struct {
	// Name identifies the case (matches Event.Case).
	Name string
	// Verdict is "safe", "unsafe", or "unknown".
	Verdict string
	// Summary is the one-line report rendering (Report.Summary()).
	Summary string
	// Preds is the final predicate set.
	Preds []string
	// Trace is the witness-annotated interleaved race trace (unsafe only).
	Trace string
	// ACFAText is the textual rendering of the final (safe) or last
	// (unsafe/unknown) context model — the SVG-free fallback view.
	ACFAText string
	// ACFADot is the same automaton as Graphviz dot source, for users who
	// want to render it themselves.
	ACFADot string
}

// timelineRow is one rendered event for the iteration-timeline table.
type timelineRow struct {
	Case   string
	Seq    int64
	Kind   string
	Detail string
	Block  string // multi-line payload shown in a collapsible block
}

// predRow is one row of the predicate-provenance table.
type predRow struct {
	Case    string
	Pred    string
	Round   int
	Inner   int
	Outcome string
	Core    []string
	Trace   string
}

// htmlModel is the template's root object.
type htmlModel struct {
	Title     string
	Summary   string
	Cases     []CaseSection
	MultiCase bool
	Timeline  []timelineRow
	Preds     []predRow
	NumEvents int
}

// RenderHTML writes a self-contained HTML report: verdict panels per case,
// the predicate-provenance table (which refinement introduced which
// predicate, from which spurious trace and unsat-core atoms), the
// iteration timeline, and the final context model as dot source with a
// textual fallback. Output uses only html/template — no scripts, no
// external assets — so the file can be archived with the run.
func RenderHTML(w io.Writer, d HTMLData) error {
	m := htmlModel{
		Title:     d.Title,
		Summary:   d.Summary,
		Cases:     d.Cases,
		MultiCase: len(d.Cases) > 1,
		NumEvents: len(d.Events),
	}
	for _, e := range d.Events {
		if e.Type == EvPredicateDiscovered {
			m.Preds = append(m.Preds, predRow{
				Case: e.Case, Pred: e.Pred, Round: e.Round, Inner: e.Inner,
				Outcome: e.Outcome, Core: e.Core, Trace: e.Trace,
			})
		}
		if row, ok := renderTimeline(e); ok {
			m.Timeline = append(m.Timeline, row)
		}
	}
	return reportTmpl.Execute(w, m)
}

// renderTimeline formats one event as a timeline row; verbose payloads go
// into the collapsible block.
func renderTimeline(e Event) (timelineRow, bool) {
	row := timelineRow{Case: e.Case, Seq: e.Seq, Kind: e.Type}
	switch e.Type {
	case EvCaseQueued, EvCaseStarted:
		return row, false // progress bookkeeping, not analysis history
	case EvIterationStart:
		row.Detail = fmt.Sprintf("round %d, inner %d, k=%d, %d predicates", e.Round, e.Inner, e.K, e.NumPreds)
	case EvCounterWidened:
		row.Detail = fmt.Sprintf("context counter at location %d saturated: %d → ω", e.Loc, e.K)
	case EvTraceAnalyzed:
		row.Detail = fmt.Sprintf("counterexample (%d abstract steps): %s", e.TraceLen, e.Outcome)
		if e.Steps > 0 {
			row.Detail += fmt.Sprintf(", %d concrete steps", e.Steps)
		}
	case EvPredicateDiscovered:
		row.Detail = fmt.Sprintf("%s predicate %s (round %d)", e.Outcome, e.Pred, e.Round)
	case EvACFACollapsed:
		row.Detail = fmt.Sprintf("bisimulation quotient: %d → %d locations", e.LocsBefore, e.LocsAfter)
	case EvPredicateSeeded:
		row.Detail = fmt.Sprintf("seeded predicate %s", e.Pred)
		if e.Reason != "" {
			row.Detail += fmt.Sprintf(" (from flag %s)", e.Reason)
		}
	case EvTriageVerdict:
		row.Detail = fmt.Sprintf("statically discharged: %s (%s)", e.Verdict, e.Reason)
		if e.Detail != "" {
			row.Detail += ": " + e.Detail
		}
	case EvCFASliced:
		row.Detail = fmt.Sprintf("cone-of-influence slice: %d → %d locations, %d → %d edges",
			e.LocsBefore, e.LocsAfter, e.EdgesBefore, e.EdgesAfter)
	case EvCertificateReused:
		row.Detail = fmt.Sprintf("certificate store hit: %s verdict re-established (%s)", e.Verdict, e.Outcome)
	case EvSMTPhaseStats:
		var parts []string
		if e.Queries > 0 {
			parts = append(parts, fmt.Sprintf("%d solves", e.Queries))
		}
		if e.CacheHits+e.CacheMisses > 0 {
			parts = append(parts, fmt.Sprintf("%d hits / %d misses", e.CacheHits, e.CacheMisses))
		}
		if e.TheoryChecks > 0 {
			parts = append(parts, fmt.Sprintf("%d theory checks", e.TheoryChecks))
		}
		if e.NewCached > 0 {
			parts = append(parts, fmt.Sprintf("%d new cached formulas", e.NewCached))
		}
		if len(parts) == 0 {
			parts = append(parts, "no solver work")
		}
		row.Detail = fmt.Sprintf("smt [%s]: %s", e.Phase, strings.Join(parts, ", "))
	case EvVerdict:
		row.Detail = fmt.Sprintf("verdict: %s", e.Verdict)
		if e.Reason != "" {
			row.Detail += " (" + e.Reason + ")"
		}
	case EvCaseDone:
		row.Detail = "case done: " + e.Verdict
	default:
		row.Detail = e.Type
	}
	return row, true
}

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.summary { color: #444; margin-bottom: 1.5rem; }
.case { border: 1px solid #ddd; border-radius: 6px; padding: 0.8rem 1rem; margin: 0.8rem 0; }
.verdict { display: inline-block; padding: 0.1rem 0.55rem; border-radius: 9px; font-weight: 600; font-size: 0.85rem; }
.verdict-safe { background: #e2f5e5; color: #176628; }
.verdict-unsafe { background: #fbe3e3; color: #99201c; }
.verdict-unknown { background: #fdf2d0; color: #7a5a00; }
pre { background: #f6f6f6; border: 1px solid #e3e3e3; border-radius: 4px; padding: 0.6rem; overflow-x: auto; font-size: 12px; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { border: 1px solid #ddd; padding: 0.25rem 0.5rem; text-align: left; vertical-align: top; }
th { background: #f2f2f2; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
details summary { cursor: pointer; color: #2a5db0; }
.atoms li { font-family: ui-monospace, monospace; font-size: 12px; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="summary">{{.Summary}} &mdash; {{.NumEvents}} journal events</p>

{{range .Cases}}
<div class="case">
<h2>{{.Name}} <span class="verdict verdict-{{.Verdict}}">{{.Verdict}}</span></h2>
<p>{{.Summary}}</p>
{{if .Preds}}<p>Predicates:</p><ul class="atoms">{{range .Preds}}<li>{{.}}</li>{{end}}</ul>{{end}}
{{if .Trace}}<p>Interleaved race trace (T0 = main thread), annotated with witness values:</p>
<pre>{{.Trace}}</pre>{{end}}
{{if .ACFAText}}<details open><summary>Context model (ACFA)</summary>
<pre>{{.ACFAText}}</pre>
{{if .ACFADot}}<details><summary>Graphviz dot source</summary><pre>{{.ACFADot}}</pre></details>{{end}}
</details>{{end}}
</div>
{{end}}

{{if .Preds}}
<h2>Predicate provenance</h2>
<table>
<tr>{{if .MultiCase}}<th>case</th>{{end}}<th>predicate</th><th>round</th><th>origin</th><th>unsat-core atoms / source trace</th></tr>
{{$multi := .MultiCase}}
{{range .Preds}}
<tr>
{{if $multi}}<td>{{.Case}}</td>{{end}}
<td><code>{{.Pred}}</code></td>
<td class="num">{{.Round}}.{{.Inner}}</td>
<td>{{.Outcome}}</td>
<td>
{{if .Core}}<ul class="atoms">{{range .Core}}<li>{{.}}</li>{{end}}</ul>{{end}}
{{if .Trace}}<details><summary>spurious trace</summary><pre>{{.Trace}}</pre></details>{{end}}
</td>
</tr>
{{end}}
</table>
{{end}}

{{if .Timeline}}
<h2>Inference timeline</h2>
<table>
<tr>{{if .MultiCase}}<th>case</th>{{end}}<th>seq</th><th>event</th><th>detail</th></tr>
{{$multi := .MultiCase}}
{{range .Timeline}}
<tr>
{{if $multi}}<td>{{.Case}}</td>{{end}}
<td class="num">{{.Seq}}</td>
<td><code>{{.Kind}}</code></td>
<td>{{.Detail}}{{if .Block}}<details><summary>details</summary><pre>{{.Block}}</pre></details>{{end}}</td>
</tr>
{{end}}
</table>
{{end}}

</body>
</html>
`))
