package journal

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sidecar validation: schema checks for the flight-deck artifacts that
// travel alongside the journal — the per-job Chrome trace_event export
// and the SMT slow-query log. Both are wall-clock side channels, so
// validation checks structure, identity stamping, and internal
// consistency, never byte content.

// sidecarTrace mirrors the trace_event JSON object shape loosely: every
// field the validator checks, nothing more, so exporter additions do not
// break old validators.
type sidecarTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// ValidateTrace checks a Chrome trace_event JSON export: the traceEvents
// array exists, every event has a name and a known phase, timestamps and
// durations are non-negative, and — when otherData carries a trace_id —
// every non-metadata event is stamped with that same ID. It returns the
// event count.
func ValidateTrace(r io.Reader) (int, error) {
	var t sidecarTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return 0, fmt.Errorf("trace: not a JSON object: %w", err)
	}
	if t.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	traceID := t.OtherData["trace_id"]
	for i, ev := range t.TraceEvents {
		if ev.Name == "" {
			return i, fmt.Errorf("trace: event %d has no name", i)
		}
		switch ev.Ph {
		case "X", "i", "M":
		default:
			return i, fmt.Errorf("trace: event %d (%s) has unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			return i, fmt.Errorf("trace: event %d (%s) has negative ts/dur", i, ev.Name)
		}
		if traceID != "" && ev.Ph != "M" {
			got, _ := ev.Args["trace_id"].(string)
			if got != traceID {
				return i, fmt.Errorf("trace: event %d (%s) trace_id %q != file trace_id %q",
					i, ev.Name, got, traceID)
			}
		}
	}
	return len(t.TraceEvents), nil
}

// sidecarSlowLog mirrors the /debug/circ/slowlog response shape.
type sidecarSlowLog struct {
	ThresholdMS float64 `json:"threshold_ms"`
	Total       int64   `json:"total"`
	Entries     []struct {
		Seq        int64   `json:"seq"`
		Kind       string  `json:"kind"`
		FormulaID  uint64  `json:"formula_id"`
		DurationMS float64 `json:"duration_ms"`
		Result     string  `json:"result"`
	} `json:"entries"`
}

// ValidateSlowLog checks a slow-query log (the /debug/circ/slowlog
// body): entries carry positive sequence numbers in strictly descending
// (newest-first) order, a known kind and result, and durations at or
// above the stated threshold. It returns the entry count.
func ValidateSlowLog(r io.Reader) (int, error) {
	var l sidecarSlowLog
	dec := json.NewDecoder(r)
	if err := dec.Decode(&l); err != nil {
		return 0, fmt.Errorf("slowlog: not a JSON object: %w", err)
	}
	if l.Total < int64(len(l.Entries)) {
		return 0, fmt.Errorf("slowlog: total %d < %d retained entries", l.Total, len(l.Entries))
	}
	prev := int64(0)
	for i, e := range l.Entries {
		if e.Seq <= 0 {
			return i, fmt.Errorf("slowlog: entry %d has non-positive seq %d", i, e.Seq)
		}
		if prev != 0 && e.Seq >= prev {
			return i, fmt.Errorf("slowlog: entry %d out of order: seq %d after %d (want newest first)",
				i, e.Seq, prev)
		}
		prev = e.Seq
		switch e.Kind {
		case "direct", "session":
		default:
			return i, fmt.Errorf("slowlog: entry %d has unknown kind %q", i, e.Kind)
		}
		switch e.Result {
		case "sat", "unsat", "unknown":
		default:
			return i, fmt.Errorf("slowlog: entry %d has unknown result %q", i, e.Result)
		}
		if l.ThresholdMS > 0 && e.DurationMS < l.ThresholdMS {
			return i, fmt.Errorf("slowlog: entry %d duration %.3fms below threshold %.3fms",
				i, e.DurationMS, l.ThresholdMS)
		}
	}
	return len(l.Entries), nil
}
