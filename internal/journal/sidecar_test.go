package journal

import (
	"strings"
	"testing"
)

func TestValidateTrace(t *testing.T) {
	good := `{
	 "traceEvents": [
	  {"name": "thread_name", "ph": "M", "pid": 1, "tid": 3, "args": {"name": "reach.worker.00"}},
	  {"name": "smt.solve", "ph": "X", "ts": 1.5, "dur": 2.0, "pid": 1, "tid": 1,
	   "args": {"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736"}},
	  {"name": "steal", "ph": "i", "s": "t", "ts": 2.0, "dur": 0, "pid": 1, "tid": 3,
	   "args": {"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736"}}
	 ],
	 "displayTimeUnit": "ms",
	 "otherData": {"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "span_id": "00f067aa0ba902b7"}
	}`
	if n, err := ValidateTrace(strings.NewReader(good)); err != nil || n != 3 {
		t.Fatalf("ValidateTrace = %d, %v", n, err)
	}

	for name, bad := range map[string]string{
		"not json":      `[]`,
		"no events":     `{"displayTimeUnit": "ms"}`,
		"unknown phase": `{"traceEvents": [{"name": "x", "ph": "Q", "ts": 0, "dur": 0}]}`,
		"nameless":      `{"traceEvents": [{"ph": "X", "ts": 0, "dur": 0}]}`,
		"negative ts":   `{"traceEvents": [{"name": "x", "ph": "X", "ts": -1, "dur": 0}]}`,
		"unstamped event": `{
		 "traceEvents": [{"name": "x", "ph": "X", "ts": 0, "dur": 0}],
		 "otherData": {"trace_id": "abc"}
		}`,
		"wrong trace id": `{
		 "traceEvents": [{"name": "x", "ph": "X", "ts": 0, "dur": 0, "args": {"trace_id": "def"}}],
		 "otherData": {"trace_id": "abc"}
		}`,
	} {
		if _, err := ValidateTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateSlowLog(t *testing.T) {
	good := `{
	 "threshold_ms": 1,
	 "total": 5,
	 "entries": [
	  {"seq": 5, "formula_id": 9, "kind": "session", "duration_ms": 2.5, "result": "unsat"},
	  {"seq": 3, "formula_id": 7, "kind": "direct", "duration_ms": 1.0, "result": "sat"}
	 ]
	}`
	if n, err := ValidateSlowLog(strings.NewReader(good)); err != nil || n != 2 {
		t.Fatalf("ValidateSlowLog = %d, %v", n, err)
	}
	empty := `{"threshold_ms": 0, "total": 0, "entries": []}`
	if n, err := ValidateSlowLog(strings.NewReader(empty)); err != nil || n != 0 {
		t.Fatalf("empty log = %d, %v", n, err)
	}

	for name, bad := range map[string]string{
		"not json":        `[]`,
		"total too small": `{"total": 0, "entries": [{"seq": 1, "kind": "direct", "duration_ms": 1, "result": "sat"}]}`,
		"zero seq":        `{"total": 1, "entries": [{"seq": 0, "kind": "direct", "duration_ms": 1, "result": "sat"}]}`,
		"out of order": `{"total": 2, "entries": [
		 {"seq": 1, "kind": "direct", "duration_ms": 1, "result": "sat"},
		 {"seq": 2, "kind": "direct", "duration_ms": 1, "result": "sat"}]}`,
		"bad kind":   `{"total": 1, "entries": [{"seq": 1, "kind": "weird", "duration_ms": 1, "result": "sat"}]}`,
		"bad result": `{"total": 1, "entries": [{"seq": 1, "kind": "direct", "duration_ms": 1, "result": "maybe"}]}`,
		"below threshold": `{"threshold_ms": 5, "total": 1, "entries": [
		 {"seq": 1, "kind": "direct", "duration_ms": 1, "result": "sat"}]}`,
	} {
		if _, err := ValidateSlowLog(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
