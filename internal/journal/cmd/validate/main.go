// Command validate checks a JSONL inference journal (the output of
// circ -journal) against the event schema: known event types, required
// per-type fields, and strictly increasing per-case sequence numbers.
// It also validates the journal-adjacent flight-deck artifacts: Chrome
// trace_event exports (-trace) and SMT slow-query logs (-slowlog).
//
// Usage:
//
//	go run ./internal/journal/cmd/validate out.jsonl [more.jsonl ...]
//	circ ... -journal /dev/stdout | go run ./internal/journal/cmd/validate
//	go run ./internal/journal/cmd/validate -trace job.trace.json
//	go run ./internal/journal/cmd/validate -slowlog slowlog.json
//
// Exit status 0 when every file validates, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"circ/internal/journal"
)

func main() {
	asTrace := flag.Bool("trace", false, "validate Chrome trace_event JSON instead of a journal")
	asSlowLog := flag.Bool("slowlog", false, "validate an SMT slow-query log instead of a journal")
	flag.Parse()
	if *asTrace && *asSlowLog {
		fmt.Fprintln(os.Stderr, "validate: -trace and -slowlog are mutually exclusive")
		os.Exit(1)
	}
	validate, unit := journal.Validate, "events"
	switch {
	case *asTrace:
		validate, unit = journal.ValidateTrace, "trace events"
	case *asSlowLog:
		validate, unit = journal.ValidateSlowLog, "slow queries"
	}

	args := flag.Args()
	if len(args) == 0 {
		n, err := validate(os.Stdin)
		if !report("stdin", unit, n, err) {
			os.Exit(1)
		}
		return
	}
	bad := false
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "validate:", err)
			os.Exit(1)
		}
		n, err := validate(f)
		f.Close()
		if !report(path, unit, n, err) {
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

var _ func(io.Reader) (int, error) = journal.Validate // the three validators share this shape

func report(name, unit string, n int, err error) bool {
	if err != nil {
		fmt.Fprintf(os.Stderr, "validate: %s: %v (after %d valid %s)\n", name, err, n, unit)
		return false
	}
	fmt.Printf("%s: %d %s, schema OK\n", name, n, unit)
	return true
}
