// Command validate checks a JSONL inference journal (the output of
// circ -journal) against the event schema: known event types, required
// per-type fields, and strictly increasing per-case sequence numbers.
//
// Usage:
//
//	go run ./internal/journal/cmd/validate out.jsonl [more.jsonl ...]
//	circ ... -journal /dev/stdout | go run ./internal/journal/cmd/validate
//
// Exit status 0 when every file validates, 1 otherwise.
package main

import (
	"fmt"
	"os"

	"circ/internal/journal"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		n, err := journal.Validate(os.Stdin)
		if !report("stdin", n, err) {
			os.Exit(1)
		}
		return
	}
	bad := false
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "validate:", err)
			os.Exit(1)
		}
		n, err := journal.Validate(f)
		f.Close()
		if !report(path, n, err) {
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

func report(name string, n int, err error) bool {
	if err != nil {
		fmt.Fprintf(os.Stderr, "validate: %s: %v (after %d valid events)\n", name, err, n)
		return false
	}
	fmt.Printf("%s: %d events, schema OK\n", name, n)
	return true
}
