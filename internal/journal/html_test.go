package journal

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// reportFixture is a small two-case report exercising every template
// branch: an unsafe case with a witness trace, a safe case with a mined
// predicate (provenance row with core atoms and a spurious trace), a
// widened counter, and HTML-hostile characters that must be escaped.
func reportFixture() HTMLData {
	return HTMLData{
		Title:   "circ race report: examples/programs/pair.mn",
		Summary: "1 safe, 1 unsafe",
		Cases: []CaseSection{
			{
				Name:    "Worker/x",
				Verdict: "unsafe",
				Summary: "unsafe: race on x",
				Trace:   "T0: x = x + 1   [x=0]\nT1: x = x & 2   [x<1]\n",
			},
			{
				Name:     "Worker/y",
				Verdict:  "safe",
				Summary:  "safe: 1 predicate, k=1",
				Preds:    []string{"old == state"},
				ACFAText: "loc 0 -> loc 1 [y := 0]\n",
				ACFADot:  "digraph acfa { 0 -> 1 }\n",
			},
		},
		Events: []Event{
			{Seq: 0, Case: "Worker/x", Type: EvCaseStarted},
			{Seq: 1, Case: "Worker/x", Type: EvIterationStart, Round: 1, Inner: 1, K: 1},
			{Seq: 2, Case: "Worker/x", Type: EvCounterWidened, Loc: 3, K: 1},
			{Seq: 3, Case: "Worker/x", Type: EvTraceAnalyzed, Outcome: "real", TraceLen: 4, Steps: 6},
			{Seq: 4, Case: "Worker/x", Type: EvVerdict, Verdict: "unsafe", K: 1, Rounds: 1},
			{Seq: 0, Case: "Worker/y", Type: EvIterationStart, Round: 1, Inner: 1, K: 1},
			{Seq: 1, Case: "Worker/y", Type: EvSMTPhaseStats, Phase: "reach", NewCached: 12},
			{Seq: 2, Case: "Worker/y", Type: EvPredicateDiscovered, Outcome: "mined",
				Pred: "old == state", Round: 1, Inner: 1,
				Trace: "T1: old = state\nT1: if state != 0 <taken>\n",
				Core:  []string{"old@2#1 == state#0", "state#0 != 0"}},
			{Seq: 3, Case: "Worker/y", Type: EvACFACollapsed, LocsBefore: 9, LocsAfter: 4},
			{Seq: 4, Case: "Worker/y", Type: EvVerdict, Verdict: "safe", K: 1, NumPreds: 1, Rounds: 2},
		},
	}
}

func TestRenderHTMLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderHTML(&buf, reportFixture()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden.html")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("rendered HTML differs from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

func TestRenderHTMLContent(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderHTML(&buf, reportFixture()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`class="verdict verdict-unsafe"`,
		`class="verdict verdict-safe"`,
		"Predicate provenance",
		"Inference timeline",
		"old@2#1 == state#0",
		"9 → 4 locations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The raw race trace contains markup-hostile characters; they must be
	// escaped, never emitted verbatim.
	if strings.Contains(out, "x & 2") || strings.Contains(out, "x<1") {
		t.Error("unescaped trace characters in HTML output")
	}
	if !strings.Contains(out, "x &amp; 2") || !strings.Contains(out, "x&lt;1") {
		t.Error("escaped trace characters not found in HTML output")
	}
	if strings.Contains(out, "<script") {
		t.Error("report contains a script tag; it must be JS-free")
	}
}
