package journal

import "context"

type streamKey struct{}

// NewContext returns ctx carrying s, so analysis layers below can emit
// journal events without new parameters. A nil stream returns ctx
// unchanged.
func NewContext(ctx context.Context, s *Stream) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, streamKey{}, s)
}

// FromContext returns the stream carried by ctx, or nil (whose methods are
// all no-ops).
func FromContext(ctx context.Context) *Stream {
	s, _ := ctx.Value(streamKey{}).(*Stream)
	return s
}
