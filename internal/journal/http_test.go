package journal

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestServeProgress(t *testing.T) {
	r := New()
	r.Stream("t/x").Emit(Event{Type: EvCaseQueued})
	y := r.Stream("t/y")
	y.Emit(Event{Type: EvCaseStarted})
	y.Emit(Event{Type: EvVerdict, Verdict: "unsafe", NumPreds: 1})

	mux := http.NewServeMux()
	Mount(mux, r)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/circ/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap ProgressSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Queued != 1 || snap.Running != 0 || snap.Done != 1 || snap.Events != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Cases) != 2 || snap.Cases[1].Verdict != "unsafe" {
		t.Fatalf("cases = %+v", snap.Cases)
	}
}

// TestServeEvents checks the SSE stream end to end: recorded events are
// replayed as data: frames, a live event emitted after the subscription
// arrives too, and the handler exits when the client goes away.
func TestServeEvents(t *testing.T) {
	r := New()
	s := r.Stream("c")
	s.Emit(Event{Type: EvCaseStarted})
	s.Emit(Event{Type: EvIterationStart, Round: 1, Inner: 1})

	mux := http.NewServeMux()
	Mount(mux, r)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/debug/circ/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Emit a third event concurrently with the handler's subscription; it
	// reaches the client either via the replay (if it lands first) or the
	// live channel — the frame sequence is identical either way.
	emitDone := make(chan struct{})
	go func() {
		defer close(emitDone)
		time.Sleep(5 * time.Millisecond)
		s.Emit(Event{Type: EvVerdict, Verdict: "safe"})
	}()

	sc := bufio.NewScanner(resp.Body)
	var frames []Event
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		frames = append(frames, e)
		if len(frames) == 3 {
			break
		}
	}
	<-emitDone
	if len(frames) < 3 {
		t.Fatalf("read %d frames, want 3 (scan err: %v)", len(frames), sc.Err())
	}
	if frames[0].Type != EvCaseStarted || frames[1].Type != EvIterationStart {
		t.Fatalf("replayed frames = %+v", frames[:2])
	}
	if frames[2].Type != EvVerdict || frames[2].Verdict != "safe" {
		t.Fatalf("live frame = %+v", frames[2])
	}
	// Client disconnect must terminate the handler (srv.Close below would
	// hang on a leaked handler otherwise).
	cancel()
}

// TestServeEventsHeartbeat: an idle live stream emits SSE comment frames
// so intermediaries don't reap the connection.
func TestServeEventsHeartbeat(t *testing.T) {
	old := heartbeatInterval
	heartbeatInterval = 10 * time.Millisecond
	t.Cleanup(func() { heartbeatInterval = old })

	r := New()
	r.Stream("c").Emit(Event{Type: EvCaseStarted})
	mux := http.NewServeMux()
	Mount(mux, r)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/debug/circ/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// No further events are emitted: every frame after the replay is a
	// heartbeat comment.
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ":") {
			return // heartbeat observed on an otherwise idle stream
		}
		if line != "" && !strings.HasPrefix(line, "data: ") {
			t.Fatalf("unexpected frame %q", line)
		}
	}
	t.Fatalf("stream ended without a heartbeat: %v", sc.Err())
}
