package journal

import (
	"encoding/json"
	"net/http"
	"time"
)

// heartbeatInterval paces the SSE comment frames keeping an idle event
// stream alive through proxies and load balancers that reap quiet
// connections. Comment frames (": ...") are invisible to EventSource
// clients. Package variable so tests can shrink it.
var heartbeatInterval = 15 * time.Second

// Mount registers the live-progress endpoints on mux, next to the -pprof
// handlers when mux is http.DefaultServeMux:
//
//	/debug/circ/progress   JSON ProgressSnapshot of per-case batch state
//	/debug/circ/events     text/event-stream (SSE) of journal events
//
// Both endpoints are read-only and safe while analyses are running.
func Mount(mux *http.ServeMux, r *Recorder) {
	mux.HandleFunc("/debug/circ/progress", r.ServeProgress)
	mux.HandleFunc("/debug/circ/events", r.ServeEvents)
}

// ServeProgress writes the current ProgressSnapshot as indented JSON.
func (r *Recorder) ServeProgress(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Progress()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ServeEvents streams the journal as server-sent events: every recorded
// event is replayed first (in emission order), then live events follow as
// they are emitted, until the client disconnects. Each event is one
// "data: <json>" frame; slow clients may miss live events (the frame
// stream is a view, the canonical journal is not lossy).
func (r *Recorder) ServeEvents(w http.ResponseWriter, req *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	replay, live, cancel := r.SubscribeFrom(0)
	defer cancel()
	write := func(e Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := w.Write(append(append([]byte("data: "), data...), '\n', '\n')); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, e := range replay {
		if !write(e) {
			return
		}
	}
	if r == nil {
		return
	}
	heartbeat := time.NewTicker(heartbeatInterval)
	defer heartbeat.Stop()
	for {
		select {
		case <-req.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := w.Write([]byte(": heartbeat\n\n")); err != nil {
				return
			}
			flusher.Flush()
		case e := <-live:
			if !write(e) {
				return
			}
		}
	}
}
