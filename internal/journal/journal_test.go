package journal

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	s := r.Stream("a")
	if s != nil {
		t.Fatalf("nil recorder Stream = %v, want nil", s)
	}
	s.Emit(Event{Type: EvVerdict, Verdict: "safe"}) // must not panic
	if s.Enabled() {
		t.Fatal("nil stream reports Enabled")
	}
	if s.ExclusiveSolver() {
		t.Fatal("nil stream reports ExclusiveSolver")
	}
	if s.Case() != "" {
		t.Fatalf("nil stream Case = %q", s.Case())
	}
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder has events")
	}
	if got := r.Progress(); len(got.Cases) != 0 {
		t.Fatalf("nil recorder Progress = %+v", got)
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSequencing(t *testing.T) {
	r := New()
	a := r.Stream("a")
	b := r.Stream("b")
	a.Emit(Event{Type: EvCaseStarted})
	b.Emit(Event{Type: EvCaseStarted})
	a.Emit(Event{Type: EvVerdict, Verdict: "safe"})
	// A second stream for the same case continues its sequence.
	r.Stream("a").Emit(Event{Type: EvCaseDone, Verdict: "safe"})

	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	// Canonical order: by (case, seq), regardless of emission interleaving.
	want := []struct {
		c   string
		seq int64
	}{{"a", 0}, {"a", 1}, {"a", 2}, {"b", 0}}
	for i, w := range want {
		if evs[i].Case != w.c || evs[i].Seq != w.seq {
			t.Fatalf("Events[%d] = %s/%d, want %s/%d", i, evs[i].Case, evs[i].Seq, w.c, w.seq)
		}
	}
}

// TestConcurrentEmission exercises concurrent streams under the race
// detector and checks that canonical serialization is independent of the
// scheduling: every per-case sequence is dense and the JSONL output equals
// a sequentially-emitted reference journal.
func TestConcurrentEmission(t *testing.T) {
	const cases, perCase = 8, 50
	emit := func(r *Recorder, seq bool) {
		var wg sync.WaitGroup
		for c := 0; c < cases; c++ {
			s := r.Stream(fmt.Sprintf("case-%d", c))
			run := func(s *Stream, c int) {
				for i := 0; i < perCase; i++ {
					s.Emit(Event{Type: EvIterationStart, Round: 1, Inner: i + 1, K: c})
				}
			}
			if seq {
				run(s, c)
				continue
			}
			wg.Add(1)
			go func(s *Stream, c int) {
				defer wg.Done()
				run(s, c)
			}(s, c)
		}
		wg.Wait()
	}
	conc, ref := New(), New()
	emit(conc, false)
	emit(ref, true)

	var got, want bytes.Buffer
	if err := conc.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("concurrent emission serialized differently from sequential emission")
	}
	if n, err := Validate(&got); err != nil || n != cases*perCase {
		t.Fatalf("Validate = (%d, %v), want (%d, nil)", n, err, cases*perCase)
	}
}

func TestWriteJSONLOmitsEmptyFields(t *testing.T) {
	r := New()
	r.Stream("x").Emit(Event{Type: EvVerdict, Verdict: "unsafe", K: 1, Rounds: 2})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	for _, banned := range []string{"pred", "trace", "locs_before", "queries", "phase"} {
		if strings.Contains(line, `"`+banned+`"`) {
			t.Fatalf("unused field %q serialized: %s", banned, line)
		}
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatal(err)
	}
	if m["type"] != "verdict" || m["verdict"] != "unsafe" {
		t.Fatalf("round-trip mismatch: %v", m)
	}
}

func TestProgress(t *testing.T) {
	r := New()
	for _, name := range []string{"t/x", "t/y", "t/z"} {
		r.Stream(name).Emit(Event{Type: EvCaseQueued})
	}
	x := r.Stream("t/x")
	x.Emit(Event{Type: EvCaseStarted})
	x.Emit(Event{Type: EvIterationStart, Round: 2, Inner: 3, K: 1, NumPreds: 4})
	y := r.Stream("t/y")
	y.Emit(Event{Type: EvCaseStarted})
	y.Emit(Event{Type: EvVerdict, Verdict: "safe", NumPreds: 2})
	y.Emit(Event{Type: EvCaseDone, Verdict: "safe"})

	snap := r.Progress()
	if snap.Queued != 1 || snap.Running != 1 || snap.Done != 1 {
		t.Fatalf("totals = %d/%d/%d, want 1/1/1", snap.Queued, snap.Running, snap.Done)
	}
	if len(snap.Cases) != 3 {
		t.Fatalf("len(Cases) = %d", len(snap.Cases))
	}
	// First-seen order.
	if snap.Cases[0].Case != "t/x" || snap.Cases[1].Case != "t/y" || snap.Cases[2].Case != "t/z" {
		t.Fatalf("case order = %v", snap.Cases)
	}
	cx := snap.Cases[0]
	if cx.State != "running" || cx.Round != 2 || cx.Inner != 3 || cx.Preds != 4 {
		t.Fatalf("t/x progress = %+v", cx)
	}
	cy := snap.Cases[1]
	if cy.State != "done" || cy.Verdict != "safe" || cy.Preds != 2 {
		t.Fatalf("t/y progress = %+v", cy)
	}
}

func TestSubscribeFrom(t *testing.T) {
	r := New()
	s := r.Stream("c")
	s.Emit(Event{Type: EvCaseStarted})
	replay, live, cancel := r.SubscribeFrom(4)
	defer cancel()
	if len(replay) != 1 {
		t.Fatalf("replay = %d events, want 1", len(replay))
	}
	s.Emit(Event{Type: EvVerdict, Verdict: "safe"})
	e := <-live
	if e.Type != EvVerdict || e.Seq != 1 {
		t.Fatalf("live event = %+v", e)
	}
	cancel()
	s.Emit(Event{Type: EvCaseDone, Verdict: "safe"}) // no subscriber: must not block
}

func TestValidateRejections(t *testing.T) {
	bad := []struct {
		name string
		line string
	}{
		{"unknown type", `{"seq":0,"type":"nope"}`},
		{"non-monotone seq", `{"seq":0,"case":"a","type":"case_started"}` + "\n" + `{"seq":0,"case":"a","type":"case_started"}`},
		{"verdict value", `{"seq":0,"type":"verdict","verdict":"maybe"}`},
		{"pred without outcome", `{"seq":0,"type":"predicate_discovered","pred":"x == 0"}`},
		{"mined without trace", `{"seq":0,"type":"predicate_discovered","pred":"x == 0","outcome":"mined"}`},
		{"growing collapse", `{"seq":0,"type":"acfa_collapsed","locs_before":2,"locs_after":5}`},
		{"iteration coords", `{"seq":0,"type":"iteration_start","round":0,"inner":0}`},
		{"phase missing", `{"seq":0,"type":"smt_phase_stats"}`},
		{"not json", `{"seq":`},
	}
	for _, tc := range bad {
		if _, err := Validate(strings.NewReader(tc.line)); err == nil {
			t.Errorf("%s: Validate accepted %s", tc.name, tc.line)
		}
	}
	ok := `{"seq":0,"case":"a","type":"case_queued"}
{"seq":1,"case":"a","type":"iteration_start","round":1,"inner":1}
{"seq":2,"case":"a","type":"predicate_discovered","pred":"x == 0","outcome":"seeded"}
{"seq":3,"case":"a","type":"verdict","verdict":"unknown"}
`
	if n, err := Validate(strings.NewReader(ok)); err != nil || n != 4 {
		t.Fatalf("Validate(ok) = (%d, %v)", n, err)
	}
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if s := FromContext(ctx); s != nil {
		t.Fatalf("empty context carries stream %v", s)
	}
	if got := NewContext(ctx, nil); got != ctx {
		t.Fatal("NewContext(nil stream) did not return ctx unchanged")
	}
	r := New()
	s := r.Stream("c")
	ctx = NewContext(ctx, s)
	if got := FromContext(ctx); got != s {
		t.Fatalf("FromContext = %v, want %v", got, s)
	}
}

func TestStreamSharedSuppressesExclusive(t *testing.T) {
	r := New()
	if !r.Stream("a").ExclusiveSolver() {
		t.Fatal("Stream not exclusive")
	}
	if r.StreamShared("a").ExclusiveSolver() {
		t.Fatal("StreamShared reports exclusive solver")
	}
}
