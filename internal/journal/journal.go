// Package journal is the flight recorder of the CIRC pipeline: a
// concurrency-safe structured event log of the semantic decisions the
// inference loop makes — which traces were analysed, which predicates were
// discovered from which spurious counterexample, when counters widened to
// omega, how far each bisimulation collapse shrank the context — so a
// surprising verdict or a long-running batch can be diagnosed after the
// fact, replayed, or watched live.
//
// Like the rest of the telemetry surface the package is stdlib-only and
// nil-safe: a nil *Recorder or *Stream accepts every method as a no-op, so
// instrumentation points cost a nil check when no journal is attached.
// Events are carried to the analysis layers via context.Context
// (NewContext / FromContext), mirroring telemetry.Tracer.
//
// # Determinism
//
// Every event belongs to a case (one analysis unit, e.g. "Worker/x") and
// carries a per-case sequence number assigned at emission. Within a case,
// events are emitted by exactly one goroutine at a time and the engine
// emits them only from its sequential sections (the CIRC iteration loop,
// the reachability merge phase, refinement), so the per-case sequence is a
// pure function of the analysed program. Events() and WriteJSONL order
// events by (case, seq), which makes the serialized journal byte-identical
// at any -parallel setting — the same scheme that keeps the sharded
// post-cache merge deterministic. Scheduling-dependent solver counters are
// confined to smt_phase_stats events, which are only emitted where they
// too are deterministic (see EvSMTPhaseStats).
package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event types, in rough order of appearance during an analysis.
const (
	// EvCaseQueued: a batch target was registered, before any worker
	// picked it up.
	EvCaseQueued = "case_queued"
	// EvCaseStarted: a worker began analysing the case.
	EvCaseStarted = "case_started"
	// EvIterationStart: one inner iteration of the CIRC loop began
	// (round/inner/k/num_preds).
	EvIterationStart = "iteration_start"
	// EvCounterWidened: reachability saturated a context counter at a
	// location from k to omega (loc, k).
	EvCounterWidened = "counter_widened"
	// EvTraceAnalyzed: the refiner classified one abstract counterexample
	// (outcome: real / new-predicates / increment-k / stuck / error;
	// trace_len abstract steps, steps concrete interleaved operations).
	EvTraceAnalyzed = "trace_analyzed"
	// EvPredicateDiscovered: a predicate entered the abstraction — mined
	// from a spurious trace (outcome "mined", with the trace and the
	// unsat-core atoms it came from) or seeded by the caller ("seeded").
	EvPredicateDiscovered = "predicate_discovered"
	// EvPredicateSeeded: the static guard analysis exported one initial
	// predicate for this case before inference started (pred; reason names
	// the originating flag variable). Each seed also surfaces later as a
	// predicate_discovered event with outcome "seeded" once the engine
	// actually adopts it.
	EvPredicateSeeded = "predicate_seeded"
	// EvACFACollapsed: the weak-bisimulation quotient shrank the ARG
	// projection into a new context model (locs_before/locs_after).
	EvACFACollapsed = "acfa_collapsed"
	// EvSMTPhaseStats: solver-work deltas for one engine phase. Sequential
	// phases (refine, simcheck, collapse, goodloc) carry the full
	// smt.Stats delta; the frontier-parallel reach phase carries only
	// new_cached (the cache-content delta), because hit/miss splits under
	// racing workers are scheduling-dependent while the set of cached
	// formulas is not. The event is suppressed entirely when the solver is
	// shared with concurrently-running analyses (batch mode), where no
	// delta is attributable. These rules keep the journal byte-identical
	// at any parallelism.
	EvSMTPhaseStats = "smt_phase_stats"
	// EvTriageVerdict: the static triage stage discharged the case before
	// CIRC ran (verdict is always "safe"; reason names the discharge
	// rule: read-only, atomic-covered, or thread-local). A normal
	// EvVerdict follows so downstream consumers see one uniform verdict
	// stream.
	EvTriageVerdict = "triage_verdict"
	// EvCFASliced: the cone-of-influence slicer rewrote the thread CFA
	// for this case (locs_before/after, edges_before/after).
	EvCFASliced = "cfa_sliced"
	// EvCertificateReused: the certificate store served this case — the
	// target's sliced cone (plus checker configuration) matched a stored
	// entry byte-for-byte and the stored evidence was independently
	// re-established, so no context inference ran. Outcome names the
	// re-validation performed: "certificate" (a Safe entry re-verified
	// with Algorithm Check), "witness" (an Unsafe entry's race trace
	// formula re-checked satisfiable), or "replay" (an Unknown entry
	// replayed; sound because the engine is deterministic on identical
	// input). A normal EvVerdict follows, byte-identical in content to
	// the one the original inference run emitted.
	EvCertificateReused = "certificate_reused"
	// EvVerdict: the analysis concluded (verdict, reason, k, num_preds,
	// rounds).
	EvVerdict = "verdict"
	// EvCaseDone: the batch worker finished the case (verdict, or "error").
	EvCaseDone = "case_done"
)

// Event is one journal record. A single flat struct (rather than one type
// per event) keeps JSONL encoding canonical: field order is fixed by the
// struct, unused fields are omitted, and consumers switch on Type.
type Event struct {
	Seq  int64  `json:"seq"`
	Case string `json:"case,omitempty"`
	Type string `json:"type"`

	// Iteration coordinates (iteration_start and events attributed to it).
	Round int `json:"round,omitempty"`
	Inner int `json:"inner,omitempty"`
	K     int `json:"k,omitempty"`

	// iteration_start, verdict.
	NumPreds int `json:"num_preds,omitempty"`
	States   int `json:"states,omitempty"`

	// trace_analyzed, predicate_discovered.
	Outcome  string   `json:"outcome,omitempty"`
	TraceLen int      `json:"trace_len,omitempty"`
	Steps    int      `json:"steps,omitempty"`
	Pred     string   `json:"pred,omitempty"`
	Trace    string   `json:"trace,omitempty"`
	Core     []string `json:"core,omitempty"`

	// counter_widened.
	Loc int `json:"loc,omitempty"`

	// acfa_collapsed, cfa_sliced.
	LocsBefore int `json:"locs_before,omitempty"`
	LocsAfter  int `json:"locs_after,omitempty"`

	// cfa_sliced.
	EdgesBefore int `json:"edges_before,omitempty"`
	EdgesAfter  int `json:"edges_after,omitempty"`

	// smt_phase_stats.
	Phase        string `json:"phase,omitempty"`
	Queries      int64  `json:"queries,omitempty"`
	CacheHits    int64  `json:"cache_hits,omitempty"`
	CacheMisses  int64  `json:"cache_misses,omitempty"`
	TheoryChecks int64  `json:"theory_checks,omitempty"`
	SatConflicts int64  `json:"sat_conflicts,omitempty"`
	NewCached    int64  `json:"new_cached,omitempty"`

	// verdict, case_done.
	Verdict string `json:"verdict,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Rounds  int    `json:"rounds,omitempty"`

	// triage_verdict: one-line rendering of the discharge evidence.
	Detail string `json:"detail,omitempty"`
}

// Recorder accumulates journal events from any number of concurrent
// streams. It is safe for concurrent use; a nil Recorder is a valid
// disabled sink (Stream returns a nil, no-op stream).
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	nextSeq map[string]int64 // per-case sequence counter
	order   []string         // cases in first-seen order
	cases   map[string]*CaseProgress
	subs    map[int64]chan Event
	nextSub int64
	dropped int64 // events dropped from slow subscriber channels
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{
		nextSeq: make(map[string]int64),
		cases:   make(map[string]*CaseProgress),
		subs:    make(map[int64]chan Event),
	}
}

// Stream returns an event stream for the named case. Two streams for the
// same case share one sequence counter, so a case analysed in several
// stretches (e.g. re-checked after a fix) keeps a single monotone
// sequence. The caller must ensure at most one goroutine emits to a case
// at a time — which the engine guarantees by emitting only from its
// sequential sections. A nil recorder returns a nil (no-op) stream.
func (r *Recorder) Stream(caseName string) *Stream {
	if r == nil {
		return nil
	}
	return &Stream{rec: r, name: caseName, exclusive: true}
}

// StreamShared is Stream for an analysis whose SMT solver is shared with
// concurrently-running analyses (a batch unit): per-phase solver deltas
// are unattributable there, so smt_phase_stats events are suppressed.
func (r *Recorder) StreamShared(caseName string) *Stream {
	s := r.Stream(caseName)
	if s != nil {
		s.exclusive = false
	}
	return s
}

// Stream is a per-case event source: it stamps each emitted event with the
// case name and the next sequence number. A nil Stream ignores Emit.
type Stream struct {
	rec       *Recorder
	name      string
	exclusive bool
}

// Enabled reports whether emitted events are recorded; call it before
// assembling an expensive payload (trace renderings, core atoms).
func (s *Stream) Enabled() bool { return s != nil }

// ExclusiveSolver reports whether the analysis behind this stream has
// exclusive use of its SMT solver while it runs, i.e. whether per-phase
// solver deltas are attributable and smt_phase_stats may be emitted.
func (s *Stream) ExclusiveSolver() bool { return s != nil && s.exclusive }

// Case returns the stream's case name; "" on a nil stream.
func (s *Stream) Case() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Emit records one event, filling in Seq and Case. A nil stream drops it.
func (s *Stream) Emit(e Event) {
	if s == nil {
		return
	}
	r := s.rec
	e.Case = s.name
	r.mu.Lock()
	e.Seq = r.nextSeq[s.name]
	r.nextSeq[s.name]++
	r.events = append(r.events, e)
	r.observe(e)
	for _, ch := range r.subs {
		select {
		case ch <- e:
		default:
			r.dropped++
		}
	}
	r.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// CountType returns the number of recorded events of the given type
// (one of the Ev* constants). Nil-safe, like Len.
func (r *Recorder) CountType(t string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.events {
		if r.events[i].Type == t {
			n++
		}
	}
	return n
}

// Events returns a copy of the journal in canonical order: sorted by
// (case, seq). This order — not emission order — is what WriteJSONL
// serializes, and it is deterministic at any parallelism.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Case != out[j].Case {
			return out[i].Case < out[j].Case
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteJSONL serializes the journal in canonical (case, seq) order, one
// JSON object per line. The output is byte-identical across runs at
// different parallelism settings.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, e := range r.Events() {
		data, err := json.Marshal(e)
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return nil
}

// CaseProgress is the live state of one case, derived from its events.
type CaseProgress struct {
	Case    string `json:"case"`
	State   string `json:"state"` // "queued", "running", or "done"
	Round   int    `json:"round,omitempty"`
	Inner   int    `json:"inner,omitempty"`
	K       int    `json:"k,omitempty"`
	Preds   int    `json:"preds,omitempty"`
	Verdict string `json:"verdict,omitempty"`
	Events  int64  `json:"events"`
}

// ProgressSnapshot is a point-in-time view of a (batch) run: per-case
// states plus queued/running/done totals, for the /debug/circ/progress
// endpoint.
type ProgressSnapshot struct {
	Queued  int            `json:"queued"`
	Running int            `json:"running"`
	Done    int            `json:"done"`
	Events  int64          `json:"events"`
	Dropped int64          `json:"dropped_stream_events,omitempty"`
	Cases   []CaseProgress `json:"cases"`
}

// observe folds one event into the per-case progress state. Caller holds
// r.mu.
func (r *Recorder) observe(e Event) {
	cp, ok := r.cases[e.Case]
	if !ok {
		cp = &CaseProgress{Case: e.Case, State: "running"}
		r.cases[e.Case] = cp
		r.order = append(r.order, e.Case)
	}
	cp.Events++
	switch e.Type {
	case EvCaseQueued:
		cp.State = "queued"
	case EvCaseStarted:
		cp.State = "running"
	case EvIterationStart:
		cp.State = "running"
		cp.Round, cp.Inner, cp.K, cp.Preds = e.Round, e.Inner, e.K, e.NumPreds
	case EvPredicateDiscovered:
		cp.Preds++
	case EvVerdict:
		cp.State = "done"
		cp.Verdict = e.Verdict
		cp.Preds = e.NumPreds
	case EvCaseDone:
		cp.State = "done"
		if cp.Verdict == "" {
			cp.Verdict = e.Verdict
		}
	}
}

// Progress returns the per-case progress in first-seen order, with
// aggregate counts.
func (r *Recorder) Progress() ProgressSnapshot {
	var snap ProgressSnapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap.Events = int64(len(r.events))
	snap.Dropped = r.dropped
	for _, name := range r.order {
		cp := *r.cases[name]
		snap.Cases = append(snap.Cases, cp)
		switch cp.State {
		case "queued":
			snap.Queued++
		case "running":
			snap.Running++
		default:
			snap.Done++
		}
	}
	return snap
}

// SubscribeFrom atomically snapshots the events recorded so far (in
// emission order) and registers a live subscription for everything after
// them. The channel drops events rather than block when the subscriber
// falls behind (the canonical journal is never lossy — only the live
// feed). Call cancel exactly once to unregister.
func (r *Recorder) SubscribeFrom(buf int) (replay []Event, ch <-chan Event, cancel func()) {
	if r == nil {
		return nil, nil, func() {}
	}
	if buf <= 0 {
		buf = 256
	}
	c := make(chan Event, buf)
	r.mu.Lock()
	replay = append([]Event(nil), r.events...)
	id := r.nextSub
	r.nextSub++
	r.subs[id] = c
	r.mu.Unlock()
	return replay, c, func() {
		r.mu.Lock()
		delete(r.subs, id)
		r.mu.Unlock()
	}
}

// Validate checks a JSONL journal against the event schema: every line
// must parse as an Event with a known type, its required per-type fields
// present, and per-case sequence numbers strictly increasing. It returns
// the number of valid events.
func Validate(r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	lastSeq := make(map[string]int64)
	n := 0
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return n, nil
		} else if err != nil {
			return n, fmt.Errorf("journal: event %d: %w", n+1, err)
		}
		if err := validateEvent(e, lastSeq); err != nil {
			return n, fmt.Errorf("journal: event %d: %w", n+1, err)
		}
		n++
	}
}

func validateEvent(e Event, lastSeq map[string]int64) error {
	if e.Seq < 0 {
		return fmt.Errorf("negative seq %d", e.Seq)
	}
	if last, ok := lastSeq[e.Case]; ok && e.Seq <= last {
		return fmt.Errorf("case %q: seq %d not after %d", e.Case, e.Seq, last)
	}
	lastSeq[e.Case] = e.Seq
	switch e.Type {
	case EvCaseQueued, EvCaseStarted:
	case EvCaseDone:
		if e.Verdict == "" {
			return fmt.Errorf("case_done without verdict")
		}
	case EvIterationStart:
		if e.Round < 1 || e.Inner < 1 {
			return fmt.Errorf("iteration_start with round=%d inner=%d", e.Round, e.Inner)
		}
	case EvCounterWidened:
		if e.Loc < 0 {
			return fmt.Errorf("counter_widened with negative loc")
		}
	case EvTraceAnalyzed:
		if e.Outcome == "" {
			return fmt.Errorf("trace_analyzed without outcome")
		}
	case EvPredicateDiscovered:
		if e.Pred == "" {
			return fmt.Errorf("predicate_discovered without pred")
		}
		if e.Outcome != "mined" && e.Outcome != "seeded" {
			return fmt.Errorf("predicate_discovered with outcome %q", e.Outcome)
		}
		if e.Outcome == "mined" && e.Trace == "" {
			return fmt.Errorf("mined predicate %q without source trace", e.Pred)
		}
	case EvACFACollapsed:
		if e.LocsBefore < e.LocsAfter {
			return fmt.Errorf("acfa_collapsed grew: %d -> %d", e.LocsBefore, e.LocsAfter)
		}
	case EvPredicateSeeded:
		if e.Pred == "" {
			return fmt.Errorf("predicate_seeded without pred")
		}
	case EvTriageVerdict:
		if e.Verdict != "safe" {
			return fmt.Errorf("triage_verdict with verdict %q (triage can only prove safety)", e.Verdict)
		}
		if e.Reason == "" {
			return fmt.Errorf("triage_verdict without a discharge reason")
		}
	case EvCFASliced:
		if e.LocsBefore < e.LocsAfter || e.EdgesBefore < e.EdgesAfter {
			return fmt.Errorf("cfa_sliced grew: locs %d -> %d, edges %d -> %d",
				e.LocsBefore, e.LocsAfter, e.EdgesBefore, e.EdgesAfter)
		}
	case EvSMTPhaseStats:
		if e.Phase == "" {
			return fmt.Errorf("smt_phase_stats without phase")
		}
	case EvCertificateReused:
		switch e.Outcome {
		case "certificate", "witness", "replay":
		default:
			return fmt.Errorf("certificate_reused with outcome %q", e.Outcome)
		}
		switch e.Verdict {
		case "safe", "unsafe", "unknown":
		default:
			return fmt.Errorf("certificate_reused with verdict %q", e.Verdict)
		}
	case EvVerdict:
		switch e.Verdict {
		case "safe", "unsafe", "unknown":
		default:
			return fmt.Errorf("verdict event with verdict %q", e.Verdict)
		}
	default:
		return fmt.Errorf("unknown event type %q", e.Type)
	}
	return nil
}
