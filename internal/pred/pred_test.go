package pred

import (
	"testing"

	"circ/internal/expr"
	"circ/internal/smt"
)

func newAbs(t *testing.T, preds ...expr.Expr) *Abstractor {
	t.Helper()
	return NewAbstractor(smt.NewChecker(), NewSet(preds...))
}

func TestSetDedupAndOrder(t *testing.T) {
	x := expr.V("x")
	s := NewSet(expr.Eq(x, expr.Num(0)), expr.Eq(x, expr.Num(0)), expr.Lt(x, expr.Num(5)))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dedup)", s.Len())
	}
	if !expr.Equal(s.At(0), expr.Eq(x, expr.Num(0))) {
		t.Fatalf("order not preserved: %v", s.At(0))
	}
	if s.Add(expr.TrueExpr) {
		t.Fatalf("trivial predicate accepted")
	}
	if !s.Add(expr.Eq(x, expr.Num(9))) {
		t.Fatalf("new predicate rejected")
	}
	if len(s.Preds()) != 3 {
		t.Fatalf("Preds() = %v", s.Preds())
	}
}

func TestCubeFormulaAndKey(t *testing.T) {
	x := expr.V("x")
	s := NewSet(expr.Eq(x, expr.Num(0)), expr.Lt(x, expr.Num(5)))
	c := NewCube(s, map[int]TV{0: True, 1: False})
	if got := c.Key(); got != "TF" {
		t.Fatalf("Key = %q", got)
	}
	f := c.Formula()
	chk := smt.NewChecker()
	if chk.Sat(f) != smt.Unsat {
		t.Fatalf("x==0 && !(x<5) should be unsat, formula %v", f)
	}
	top := TopCube(s)
	if got := top.Formula(); !expr.Equal(got, expr.TrueExpr) {
		t.Fatalf("top cube formula = %v", got)
	}
	if top.Key() != "??" {
		t.Fatalf("top key = %q", top.Key())
	}
}

func TestCubeSubsumedBy(t *testing.T) {
	s := NewSet(expr.Eq(expr.V("x"), expr.Num(0)), expr.Eq(expr.V("y"), expr.Num(0)))
	strong := NewCube(s, map[int]TV{0: True, 1: False})
	weak := NewCube(s, map[int]TV{0: True})
	if !strong.SubsumedBy(weak) {
		t.Fatalf("strong should be subsumed by weak")
	}
	if weak.SubsumedBy(strong) {
		t.Fatalf("weak should not be subsumed by strong")
	}
	if !strong.SubsumedBy(TopCube(s)) {
		t.Fatalf("everything is subsumed by top")
	}
}

func TestProjectLocalsAndVars(t *testing.T) {
	x := expr.V("x") // global
	l := expr.V("l") // local
	s := NewSet(expr.Eq(x, expr.Num(0)), expr.Eq(l, x), expr.Eq(l, expr.Num(1)))
	c := NewCube(s, map[int]TV{0: True, 1: True, 2: False})
	isGlobal := func(n string) bool { return n == "x" }
	p := c.ProjectLocals(isGlobal)
	if p.TV(0) != True || p.TV(1) != Unknown || p.TV(2) != Unknown {
		t.Fatalf("ProjectLocals = %s", p.Key())
	}
	q := c.ProjectVars(map[string]bool{"x": true})
	if q.TV(0) != Unknown || q.TV(1) != Unknown || q.TV(2) != False {
		t.Fatalf("ProjectVars = %s", q.Key())
	}
}

func TestRegionBasics(t *testing.T) {
	s := NewSet(expr.Eq(expr.V("x"), expr.Num(0)))
	r := NewRegion(s)
	if !expr.Equal(r.Formula(), expr.FalseExpr) {
		t.Fatalf("empty region = %v", r.Formula())
	}
	c1 := NewCube(s, map[int]TV{0: True})
	c2 := NewCube(s, map[int]TV{0: False})
	if !r.Add(c1) || r.Add(c1) {
		t.Fatalf("Add dedup broken")
	}
	r.Add(c2)
	chk := smt.NewChecker()
	if !chk.Valid(r.Formula()) {
		t.Fatalf("x==0 or x!=0 should be valid: %v", r.Formula())
	}
	r2 := r.Clone()
	r2.Add(TopCube(s))
	if r.Len() != 2 || r2.Len() != 3 {
		t.Fatalf("Clone aliased: %d %d", r.Len(), r2.Len())
	}
	if TrueRegion(s).Len() != 1 {
		t.Fatalf("TrueRegion")
	}
	if r.Key() == "" || r.String() == "" {
		t.Fatalf("render")
	}
}

func TestAbstractStrongestCube(t *testing.T) {
	x := expr.V("x")
	a := newAbs(t, expr.Eq(x, expr.Num(3)), expr.Gt(x, expr.Num(0)), expr.Lt(x, expr.Num(0)))
	c := a.Abstract(expr.Eq(x, expr.Num(3)))
	if c == nil {
		t.Fatalf("bottom for satisfiable formula")
	}
	if c.TV(0) != True || c.TV(1) != True || c.TV(2) != False {
		t.Fatalf("cube = %s", c.Key())
	}
	if a.Abstract(expr.FalseExpr) != nil {
		t.Fatalf("Abstract(false) should be bottom")
	}
	// Unconstrained formula leaves everything unknown.
	c2 := a.Abstract(expr.TrueExpr)
	if c2.Key() != "???" {
		t.Fatalf("Abstract(true) = %s", c2.Key())
	}
}

// Soundness property: phi implies Abstract(phi).Formula().
func TestAbstractIsSound(t *testing.T) {
	x := expr.V("x")
	y := expr.V("y")
	a := newAbs(t,
		expr.Eq(x, expr.Num(0)), expr.Eq(x, y), expr.Le(y, expr.Num(2)))
	chk := a.Chk
	phis := []expr.Expr{
		expr.Eq(x, expr.Num(0)),
		expr.Conj(expr.Eq(x, y), expr.Eq(y, expr.Num(2))),
		expr.Disj(expr.Eq(x, expr.Num(0)), expr.Eq(x, expr.Num(1))),
		expr.Conj(expr.Lt(x, expr.Num(0)), expr.Eq(y, x)),
	}
	for _, phi := range phis {
		c := a.Abstract(phi)
		if c == nil {
			t.Fatalf("bottom for %v", phi)
		}
		if !chk.Implies(phi, c.Formula()) {
			t.Errorf("phi %v does not imply cube %v", phi, c.Formula())
		}
	}
}

func TestPostAssign(t *testing.T) {
	x := expr.V("x")
	y := expr.V("y")
	a := newAbs(t, expr.Eq(x, expr.Num(1)), expr.Eq(y, expr.Num(1)))
	// From x==1 (y unknown), execute y := x. Expect y==1 and x==1.
	c0 := a.Abstract(expr.Eq(x, expr.Num(1)))
	c1 := a.PostAssign(c0, "y", x, expr.TrueExpr)
	if c1 == nil || c1.TV(0) != True || c1.TV(1) != True {
		t.Fatalf("post = %v", c1)
	}
	// Self-referential update: x := x + 1 from x==1 gives x != 1.
	c2 := a.PostAssign(c0, "x", expr.Add(x, expr.Num(1)), expr.TrueExpr)
	if c2 == nil || c2.TV(0) != False {
		t.Fatalf("post x:=x+1 = %v", c2)
	}
}

func TestPostAssume(t *testing.T) {
	x := expr.V("x")
	a := newAbs(t, expr.Eq(x, expr.Num(0)))
	top := TopCube(a.Set)
	c := a.PostAssume(top, expr.Eq(x, expr.Num(0)), expr.TrueExpr)
	if c == nil || c.TV(0) != True {
		t.Fatalf("assume post = %v", c)
	}
	c0 := a.Abstract(expr.Eq(x, expr.Num(0)))
	if a.PostAssume(c0, expr.Ne(x, expr.Num(0)), expr.TrueExpr) != nil {
		t.Fatalf("contradictory assume should be bottom")
	}
}

func TestPostHavoc(t *testing.T) {
	x := expr.V("x")
	y := expr.V("y")
	a := newAbs(t, expr.Eq(x, expr.Num(0)), expr.Eq(y, expr.Num(0)))
	c0 := a.Abstract(expr.Conj(expr.Eq(x, expr.Num(0)), expr.Eq(y, expr.Num(0))))
	// Havoc x constrained to x != 0: y's knowledge survives, x flips.
	c1 := a.PostHavoc(c0, []string{"x"}, expr.Ne(x, expr.Num(0)), expr.TrueExpr)
	if c1 == nil || c1.TV(0) != False || c1.TV(1) != True {
		t.Fatalf("havoc post = %v", c1)
	}
	// Havoc with unsatisfiable target is bottom.
	if a.PostHavoc(c0, []string{"x"}, expr.FalseExpr, expr.TrueExpr) != nil {
		t.Fatalf("bottom expected")
	}
	// Havoc everything with true target loses all knowledge.
	c2 := a.PostHavoc(c0, []string{"x", "y"}, expr.TrueExpr, expr.TrueExpr)
	if c2 == nil || c2.Key() != "??" {
		t.Fatalf("total havoc = %v", c2)
	}
}

func TestInitialCube(t *testing.T) {
	x := expr.V("x")
	a := newAbs(t, expr.Eq(x, expr.Num(0)), expr.Gt(x, expr.Num(5)))
	c := a.InitialCube([]string{"x", "y"})
	if c.TV(0) != True || c.TV(1) != False {
		t.Fatalf("initial cube = %s", c.Key())
	}
}
