package pred

import "circ/internal/expr"

// Arena-compaction root enumeration. A long-lived process that compacts
// the expression arena (expr.Compact) must root every interned ID that
// long-lived predicate-abstraction structures will dereference again:
// the canonical predicate literals of a Set and the memoised cube
// formulas of Regions. These appenders force the memoisation (so the
// rooted ID is the one the structure will actually use) and hand the
// IDs to the caller; expr.Compact keeps their transitive subterms live.

// AppendExprIDs appends the set's interned predicate literals (positive
// and negated) to dst.
func (s *Set) AppendExprIDs(dst []expr.ID) []expr.ID {
	dst = append(dst, s.ids...)
	return append(dst, s.negIDs...)
}

// AppendExprIDs appends the cube's memoised formula ID and its set's
// literal IDs to dst.
func (c *Cube) AppendExprIDs(dst []expr.ID) []expr.ID {
	dst = c.set.AppendExprIDs(dst)
	return append(dst, c.FormulaID())
}

// AppendExprIDs appends every cube formula of the region and the
// underlying set's literal IDs to dst.
func (r *Region) AppendExprIDs(dst []expr.ID) []expr.ID {
	dst = r.set.AppendExprIDs(dst)
	for _, c := range r.cubes {
		dst = append(dst, c.FormulaID())
	}
	return dst
}
