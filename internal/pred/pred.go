// Package pred implements predicate abstraction: three-valued cubes over a
// finite predicate set, DNF regions, and the cartesian abstract post
// operators for assignment, assume, and havoc edges.
//
// A cube assigns each predicate True, False, or Unknown and denotes the
// conjunction of the decided literals; a region is a finite disjunction of
// cubes. Abstraction queries are discharged by the smt package.
package pred

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"circ/internal/expr"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

// Set is an ordered, deduplicated set of predicate atoms. All cubes over
// the same analysis share one Set. Alongside each predicate tree the set
// holds the interned IDs of the predicate and its negation, so the
// abstraction loop issues cube queries without rebuilding literal trees.
type Set struct {
	preds  []expr.Expr
	ids    []expr.ID // interned canonical predicate
	negIDs []expr.ID // interned canonical negation
	index  map[expr.ID]int
}

// NewSet returns a predicate set containing the given atoms.
func NewSet(preds ...expr.Expr) *Set {
	s := &Set{index: make(map[expr.ID]int)}
	for _, p := range preds {
		s.Add(p)
	}
	return s
}

// Add inserts an atom, reporting whether it was new. Atoms are simplified
// and deduplicated by interned identity, which also merges different
// spellings of one atom (x > 0 and 0 < x share a canonical form).
func (s *Set) Add(p expr.Expr) bool {
	p = expr.Simplify(p)
	if _, ok := p.(expr.Bool); ok {
		return false // trivial predicates carry no information
	}
	id := expr.Intern(p)
	if _, ok := expr.IDBoolValue(id); ok {
		return false
	}
	if _, ok := s.index[id]; ok {
		return false
	}
	s.index[id] = len(s.preds)
	s.preds = append(s.preds, p)
	s.ids = append(s.ids, id)
	s.negIDs = append(s.negIDs, expr.InternNot(id))
	return true
}

// Len returns the number of predicates.
func (s *Set) Len() int { return len(s.preds) }

// At returns the i-th predicate.
func (s *Set) At(i int) expr.Expr { return s.preds[i] }

// IDAt returns the interned ID of the i-th predicate.
func (s *Set) IDAt(i int) expr.ID { return s.ids[i] }

// NegIDAt returns the interned ID of the i-th predicate's negation.
func (s *Set) NegIDAt(i int) expr.ID { return s.negIDs[i] }

// Preds returns the predicates in order.
func (s *Set) Preds() []expr.Expr { return append([]expr.Expr(nil), s.preds...) }

func (s *Set) String() string {
	parts := make([]string, len(s.preds))
	for i, p := range s.preds {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// TV is a three-valued literal assignment.
type TV int8

// Truth values.
const (
	Unknown TV = iota
	True
	False
)

func (v TV) String() string {
	switch v {
	case True:
		return "T"
	case False:
		return "F"
	}
	return "?"
}

// Cube is a conjunction of decided literals over a Set. The zero-length
// cube (all Unknown) denotes true.
//
// Cubes are mutated only inside this package, before they are handed to
// callers; once published they are immutable. The canonical key and the
// interned formula ID are therefore memoised lazily on first use — the
// reachability engine keys states and post caches by them millions of
// times per run.
type Cube struct {
	set *Set
	tv  []TV

	memoOnce sync.Once
	memoKey  string
	memoFID  expr.ID
}

func (c *Cube) memo() {
	c.memoOnce.Do(func() {
		b := make([]byte, len(c.tv))
		for i, v := range c.tv {
			b[i] = "?TF"[v]
		}
		c.memoKey = string(b)
		ids := make([]expr.ID, 0, len(c.tv))
		for i, v := range c.tv {
			switch v {
			case True:
				ids = append(ids, c.set.IDAt(i))
			case False:
				ids = append(ids, c.set.NegIDAt(i))
			}
		}
		c.memoFID = expr.IDConj(ids...)
	})
}

// TopCube returns the all-Unknown cube (denoting true) over s.
func TopCube(s *Set) *Cube {
	return &Cube{set: s, tv: make([]TV, s.Len())}
}

// NewCube builds a cube with the given assignments (indices into the set).
func NewCube(s *Set, assign map[int]TV) *Cube {
	c := TopCube(s)
	for i, v := range assign {
		c.tv[i] = v
	}
	return c
}

// Set returns the predicate set the cube ranges over.
func (c *Cube) Set() *Set { return c.set }

// TV returns the truth value of predicate i.
func (c *Cube) TV(i int) TV { return c.tv[i] }

// Key returns a canonical key (one character per predicate), memoised on
// first call.
func (c *Cube) Key() string {
	c.memo()
	return c.memoKey
}

// FormulaID returns the interned ID of the cube's formula (the canonical
// conjunction of its decided literals), memoised on first call.
func (c *Cube) FormulaID() expr.ID {
	c.memo()
	return c.memoFID
}

// Formula returns the conjunction of the cube's decided literals.
func (c *Cube) Formula() expr.Expr {
	var parts []expr.Expr
	for i, v := range c.tv {
		switch v {
		case True:
			parts = append(parts, c.set.At(i))
		case False:
			parts = append(parts, expr.Negate(c.set.At(i)))
		}
	}
	return expr.Conj(parts...)
}

func (c *Cube) String() string {
	f := c.Formula()
	if b, ok := f.(expr.Bool); ok && b.Value {
		return "true"
	}
	return f.String()
}

// Clone returns a copy of the cube.
func (c *Cube) Clone() *Cube {
	return &Cube{set: c.set, tv: append([]TV(nil), c.tv...)}
}

// SubsumedBy reports whether c's constraints include all of d's, i.e. d is
// syntactically weaker (every decided literal of d is decided the same way
// in c).
func (c *Cube) SubsumedBy(d *Cube) bool {
	for i, v := range d.tv {
		if v != Unknown && c.tv[i] != v {
			return false
		}
	}
	return true
}

// ProjectLocals returns the cube with every predicate mentioning a
// non-global variable reset to Unknown (the paper's local-variable
// quantification during Collapse).
func (c *Cube) ProjectLocals(isGlobal func(string) bool) *Cube {
	out := c.Clone()
	for i := range out.tv {
		if out.tv[i] == Unknown {
			continue
		}
		for v := range expr.FreeVars(c.set.At(i)) {
			if !isGlobal(v) {
				out.tv[i] = Unknown
				break
			}
		}
	}
	return out
}

// ProjectVars returns the cube with every predicate mentioning a variable
// in drop reset to Unknown (existential projection, over-approximated at
// cube granularity).
func (c *Cube) ProjectVars(drop map[string]bool) *Cube {
	out := c.Clone()
	for i := range out.tv {
		if out.tv[i] == Unknown {
			continue
		}
		if expr.MentionsAny(c.set.At(i), drop) {
			out.tv[i] = Unknown
		}
	}
	return out
}

// Region is a finite disjunction of cubes over a common Set. The empty
// region denotes false.
type Region struct {
	set   *Set
	cubes []*Cube
	keys  map[string]bool
}

// NewRegion returns an empty (false) region over s.
func NewRegion(s *Set) *Region {
	return &Region{set: s, keys: make(map[string]bool)}
}

// Add inserts a cube, reporting whether it was new.
func (r *Region) Add(c *Cube) bool {
	k := c.Key()
	if r.keys[k] {
		return false
	}
	r.keys[k] = true
	r.cubes = append(r.cubes, c)
	return true
}

// AddRegion unions another region into r.
func (r *Region) AddRegion(o *Region) {
	for _, c := range o.cubes {
		r.Add(c)
	}
}

// Cubes returns the cubes in insertion order.
func (r *Region) Cubes() []*Cube { return r.cubes }

// Len returns the number of cubes.
func (r *Region) Len() int { return len(r.cubes) }

// Formula returns the disjunction of the cubes' formulas.
func (r *Region) Formula() expr.Expr {
	parts := make([]expr.Expr, len(r.cubes))
	for i, c := range r.cubes {
		parts[i] = c.Formula()
	}
	return expr.Disj(parts...)
}

// Key returns a canonical key: the sorted cube keys.
func (r *Region) Key() string {
	ks := make([]string, 0, len(r.cubes))
	for k := range r.keys {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, "|")
}

// Clone returns a copy of the region.
func (r *Region) Clone() *Region {
	out := NewRegion(r.set)
	out.AddRegion(r)
	return out
}

// ProjectLocals projects every cube (see Cube.ProjectLocals).
func (r *Region) ProjectLocals(isGlobal func(string) bool) *Region {
	out := NewRegion(r.set)
	for _, c := range r.cubes {
		out.Add(c.ProjectLocals(isGlobal))
	}
	return out
}

// ProjectVars projects every cube (see Cube.ProjectVars).
func (r *Region) ProjectVars(drop map[string]bool) *Region {
	out := NewRegion(r.set)
	for _, c := range r.cubes {
		out.Add(c.ProjectVars(drop))
	}
	return out
}

func (r *Region) String() string {
	if len(r.cubes) == 0 {
		return "false"
	}
	parts := make([]string, len(r.cubes))
	for i, c := range r.cubes {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∨ ")
}

// TrueRegion returns the region containing only the top cube.
func TrueRegion(s *Set) *Region {
	r := NewRegion(s)
	r.Add(TopCube(s))
	return r
}

// Abstractor computes cartesian predicate abstraction using an SMT checker.
type Abstractor struct {
	Chk smt.Solver
	Set *Set

	// Telemetry counters, attached with Instrument; nil handles are
	// no-ops, so an uninstrumented abstractor pays only nil checks.
	cCalls, cBottom *telemetry.Counter
}

// NewAbstractor returns an abstractor over the given set.
func NewAbstractor(chk smt.Solver, s *Set) *Abstractor {
	return &Abstractor{Chk: chk, Set: s}
}

// Instrument attaches abstraction counters ("pred.abstract.calls",
// "pred.abstract.bottom") to the registry. Call before sharing the
// abstractor with concurrent workers.
func (a *Abstractor) Instrument(reg *telemetry.Registry) {
	a.cCalls = reg.Counter("pred.abstract.calls")
	a.cBottom = reg.Counter("pred.abstract.bottom")
}

// Abstract computes the cartesian abstraction of formula phi: the
// strongest cube implied by phi. It returns nil when phi is unsatisfiable
// (abstract bottom).
//
// The per-predicate entailment queries phi ⊨ p (that is, unsat(phi ∧ ¬p))
// all share phi, so they run through one incremental session: phi is
// encoded once into a persistent solver and each literal is discharged
// under an assumption, with theory lemmas and learned clauses retained
// across the whole cube enumeration. Literals that appear in phi verbatim
// collapse syntactically at intern time and never reach the solver.
func (a *Abstractor) Abstract(phi expr.Expr) *Cube {
	a.cCalls.Inc()
	id := expr.Intern(phi)
	if a.Chk.SatID(id) == smt.Unsat {
		a.cBottom.Inc()
		return nil
	}
	sess := a.Chk.NewSession(id)
	c := TopCube(a.Set)
	for i := 0; i < a.Set.Len(); i++ {
		if sess.SatConj(a.Set.NegIDAt(i)) == smt.Unsat {
			c.tv[i] = True
		} else if sess.SatConj(a.Set.IDAt(i)) == smt.Unsat {
			c.tv[i] = False
		}
	}
	return c
}

// oldName returns the primed-out name used to existentially refer to the
// pre-state value of v in strongest-postcondition formulas. The '%'
// character cannot appear in source identifiers.
func oldName(v string) string { return v + "%old" }

// PostAssign computes the abstract successor of cube c under x := rhs.
// Returns nil for abstract bottom.
func (a *Abstractor) PostAssign(c *Cube, x string, rhs expr.Expr, extra expr.Expr) *Cube {
	old := expr.V(oldName(x))
	phi := expr.SubstVar(c.Formula(), x, old)
	eq := expr.Eq(expr.V(x), expr.SubstVar(rhs, x, old))
	return a.Abstract(expr.Conj(phi, eq, extra))
}

// PostAssume computes the abstract successor of cube c under assume(p).
// Returns nil when the guarded state is unsatisfiable.
func (a *Abstractor) PostAssume(c *Cube, p expr.Expr, extra expr.Expr) *Cube {
	return a.Abstract(expr.Conj(c.Formula(), p, extra))
}

// PostHavoc computes the abstract successor of cube c after the variables
// in ys receive arbitrary values, constrained by target (the label of the
// destination abstract location) and extra (the context invariant).
func (a *Abstractor) PostHavoc(c *Cube, ys []string, target expr.Expr, extra expr.Expr) *Cube {
	phi := c.Formula()
	m := make(map[string]expr.Expr, len(ys))
	for _, y := range ys {
		m[y] = expr.V(oldName(y))
	}
	phi = expr.Subst(phi, m)
	return a.Abstract(expr.Conj(phi, target, extra))
}

// InitialCube abstracts the initial state where all listed variables are 0.
func (a *Abstractor) InitialCube(vars []string) *Cube {
	parts := make([]expr.Expr, len(vars))
	for i, v := range vars {
		parts[i] = expr.Eq(expr.V(v), expr.Num(0))
	}
	cube := a.Abstract(expr.Conj(parts...))
	if cube == nil {
		panic(fmt.Sprintf("pred: initial state unsatisfiable for vars %v", vars))
	}
	return cube
}
