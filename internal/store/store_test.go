package store

import (
	"fmt"
	"sync"
	"testing"

	"circ/internal/expr"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	canon := []byte("cfa1|…|x|k=1")
	if _, ok := s.Get(canon); ok {
		t.Fatalf("empty store reported a hit")
	}
	e := &Entry{Canon: canon, Verdict: Safe, K: 2, Rounds: 3,
		Preds: []expr.Expr{expr.Var{Name: "state"}}}
	s.Put(e)
	got, ok := s.Get(canon)
	if !ok || got != e {
		t.Fatalf("Get = %v, %v; want the stored entry", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got, want := st.HitRatio(), 0.5; got != want {
		t.Fatalf("hit ratio = %v, want %v", got, want)
	}
}

// A key hit whose canonical bytes differ must be a miss: lookups never
// trust the hash alone.
func TestGetComparesCanonicalBytes(t *testing.T) {
	s := New()
	canon := []byte("payload-a")
	s.Put(&Entry{Canon: canon, Verdict: Unsafe})
	// Same key (we cannot forge a SHA-256 collision, so simulate the
	// defensive comparison by mutating the stored entry's bytes).
	k := KeyOf(canon)
	sh := s.shard(k)
	sh.mu.Lock()
	sh.entries[k].Canon = []byte("payload-b")
	sh.mu.Unlock()
	if _, ok := s.Get(canon); ok {
		t.Fatalf("hit despite canonical byte mismatch")
	}
}

func TestOverwrite(t *testing.T) {
	s := New()
	canon := []byte("same-key")
	s.Put(&Entry{Canon: canon, Verdict: Safe})
	s.Put(&Entry{Canon: canon, Verdict: Unsafe, Reason: "revalidation failed"})
	e, ok := s.Get(canon)
	if !ok || e.Verdict != Unsafe {
		t.Fatalf("overwrite not visible: %+v, %v", e, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", s.Len())
	}
}

func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	s.Put(&Entry{Canon: []byte("x")})
	if _, ok := s.Get([]byte("x")); ok {
		t.Fatalf("nil store hit")
	}
	s.Revalidated(true)
	if s.Len() != 0 || s.Stats() != (Stats{}) {
		t.Fatalf("nil store not empty")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				canon := []byte(fmt.Sprintf("unit-%d", i%50))
				if _, ok := s.Get(canon); !ok {
					s.Put(&Entry{Canon: canon, Verdict: Safe, K: i})
				}
				s.Revalidated(i%2 == 0)
			}
		}(w)
	}
	wg.Wait()
	if n := s.Len(); n != 50 {
		t.Fatalf("Len = %d, want 50", n)
	}
	st := s.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("lookups = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}
