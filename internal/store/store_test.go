package store

import (
	"fmt"
	"sync"
	"testing"

	"circ/internal/expr"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	canon := []byte("cfa1|…|x|k=1")
	if _, ok := s.Get(canon); ok {
		t.Fatalf("empty store reported a hit")
	}
	e := &Entry{Canon: canon, Verdict: Safe, K: 2, Rounds: 3,
		Preds: []expr.Expr{expr.Var{Name: "state"}}}
	s.Put(e)
	got, ok := s.Get(canon)
	if !ok || got != e {
		t.Fatalf("Get = %v, %v; want the stored entry", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got, want := st.HitRatio(), 0.5; got != want {
		t.Fatalf("hit ratio = %v, want %v", got, want)
	}
}

// A key hit whose canonical bytes differ must be a miss: lookups never
// trust the hash alone.
func TestGetComparesCanonicalBytes(t *testing.T) {
	s := New()
	canon := []byte("payload-a")
	s.Put(&Entry{Canon: canon, Verdict: Unsafe})
	// Same key (we cannot forge a SHA-256 collision, so simulate the
	// defensive comparison by mutating the stored entry's bytes).
	k := KeyOf(canon)
	sh := s.shard(k)
	sh.mu.Lock()
	sh.entries[k].Canon = []byte("payload-b")
	sh.mu.Unlock()
	if _, ok := s.Get(canon); ok {
		t.Fatalf("hit despite canonical byte mismatch")
	}
}

func TestOverwrite(t *testing.T) {
	s := New()
	canon := []byte("same-key")
	s.Put(&Entry{Canon: canon, Verdict: Safe})
	s.Put(&Entry{Canon: canon, Verdict: Unsafe, Reason: "revalidation failed"})
	e, ok := s.Get(canon)
	if !ok || e.Verdict != Unsafe {
		t.Fatalf("overwrite not visible: %+v, %v", e, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", s.Len())
	}
}

func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	s.Put(&Entry{Canon: []byte("x")})
	if _, ok := s.Get([]byte("x")); ok {
		t.Fatalf("nil store hit")
	}
	s.Revalidated(true)
	if s.Len() != 0 || s.Stats() != (Stats{}) {
		t.Fatalf("nil store not empty")
	}
}

func TestLRUEviction(t *testing.T) {
	s := NewLRU(3)
	canon := func(i int) []byte { return []byte(fmt.Sprintf("entry-%d", i)) }
	for i := 0; i < 5; i++ {
		s.Put(&Entry{Canon: canon(i), Verdict: Safe})
	}
	st := s.Stats()
	if st.Entries != 3 || st.Evictions != 2 {
		t.Fatalf("stats after 5 puts at cap 3 = %+v", st)
	}
	// 0 and 1 were least recently used and must be gone; 2..4 remain.
	for i := 0; i < 2; i++ {
		if _, ok := s.Get(canon(i)); ok {
			t.Fatalf("entry %d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := s.Get(canon(i)); !ok {
			t.Fatalf("entry %d evicted prematurely", i)
		}
	}
}

func TestLRUGetRefreshesRecency(t *testing.T) {
	s := NewLRU(3)
	canon := func(i int) []byte { return []byte(fmt.Sprintf("entry-%d", i)) }
	for i := 0; i < 3; i++ {
		s.Put(&Entry{Canon: canon(i), Verdict: Safe})
	}
	// Touch 0: it becomes most recent, so the next overflow evicts 1.
	if _, ok := s.Get(canon(0)); !ok {
		t.Fatal("warm entry missing")
	}
	s.Put(&Entry{Canon: canon(3), Verdict: Safe})
	if _, ok := s.Get(canon(1)); ok {
		t.Fatal("entry 1 should have been the LRU victim")
	}
	if _, ok := s.Get(canon(0)); !ok {
		t.Fatal("recently touched entry 0 evicted")
	}
}

func TestLRUOverwriteDoesNotEvict(t *testing.T) {
	s := NewLRU(2)
	canon := []byte("same-key")
	s.Put(&Entry{Canon: canon, Verdict: Safe})
	s.Put(&Entry{Canon: canon, Verdict: Unsafe})
	st := s.Stats()
	if st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("overwrite at cap miscounted: %+v", st)
	}
}

func TestBytesAccounting(t *testing.T) {
	s := New()
	s.Put(&Entry{Canon: []byte("a-canonical-serialization"), Verdict: Safe,
		Preds: []expr.Expr{expr.Var{Name: "x"}}})
	st := s.Stats()
	if st.Bytes <= 0 {
		t.Fatalf("Bytes = %d, want > 0", st.Bytes)
	}
	if st.BytesHighWater < st.Bytes || st.EntriesHighWater < int64(st.Entries) {
		t.Fatalf("high water below live: %+v", st)
	}
	// Eviction gives bytes back but the watermark holds.
	s2 := NewLRU(1)
	s2.Put(&Entry{Canon: []byte("first")})
	s2.Put(&Entry{Canon: []byte("second")})
	st2 := s2.Stats()
	if st2.Entries != 1 || st2.Evictions != 1 {
		t.Fatalf("cap-1 stats = %+v", st2)
	}
	if st2.EntriesHighWater != 2 {
		t.Fatalf("EntriesHighWater = %d, want 2", st2.EntriesHighWater)
	}
	if st2.BytesHighWater <= st2.Bytes {
		t.Fatalf("watermark %d should exceed live %d after eviction",
			st2.BytesHighWater, st2.Bytes)
	}
	if st2.MaxEntries != 1 {
		t.Fatalf("MaxEntries = %d, want 1", st2.MaxEntries)
	}
}

func TestConcurrentLRU(t *testing.T) {
	s := NewLRU(20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				canon := []byte(fmt.Sprintf("unit-%d", i%50))
				if _, ok := s.Get(canon); !ok {
					s.Put(&Entry{Canon: canon, Verdict: Safe, K: i})
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Entries > 20 {
		t.Fatalf("Entries = %d exceeds cap 20", st.Entries)
	}
	if st.Bytes < 0 {
		t.Fatalf("Bytes went negative: %d", st.Bytes)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				canon := []byte(fmt.Sprintf("unit-%d", i%50))
				if _, ok := s.Get(canon); !ok {
					s.Put(&Entry{Canon: canon, Verdict: Safe, K: i})
				}
				s.Revalidated(i%2 == 0)
			}
		}(w)
	}
	wg.Wait()
	if n := s.Len(); n != 50 {
		t.Fatalf("Len = %d, want 50", n)
	}
	st := s.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("lookups = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}
