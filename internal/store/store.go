// Package store is the content-addressed certificate store behind the
// checker's incremental re-checking: verdict evidence keyed by a
// canonical serialization of everything that determines the verdict —
// the sliced thread CFA, the race variable, and the engine configuration.
//
// The store is the daemon's memory between requests. When a program
// revision is re-submitted, each target's sliced cone of influence is
// re-serialized; an unchanged cone finds its previous entry and the
// verdict is re-established from the stored evidence (a Safe entry's
// certificate is re-verified with Algorithm Check, an Unsafe entry's
// race witness is re-checked for satisfiability) instead of re-running
// context inference.
//
// Lookups never trust the hash alone: every entry retains the full
// canonical serialization it was stored under, and Get compares it
// byte-for-byte, so a SHA-256 collision degrades to a cache miss rather
// than a wrong verdict.
package store

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"circ/internal/acfa"
	"circ/internal/expr"
	"circ/internal/refine"
)

// Key addresses one entry: SHA-256 of the canonical serialization of
// (sliced CFA, race variable, engine configuration).
type Key [sha256.Size]byte

// KeyOf hashes a canonical serialization.
func KeyOf(canon []byte) Key { return sha256.Sum256(canon) }

// Verdict mirrors the engine's verdict enumeration without importing it
// (the engine package is free to depend on the store in the future).
type Verdict int

// Verdicts.
const (
	Unknown Verdict = iota
	Safe
	Unsafe
)

// Entry is the stored evidence for one (sliced CFA, target, config)
// verdict. Exactly the fields needed to re-establish the verdict are
// kept; transient per-run data (metrics, iteration history) is not.
type Entry struct {
	// Canon is the full canonical serialization the entry was keyed
	// under; Get compares it byte-for-byte against the probe.
	Canon []byte
	// Verdict is the stored outcome.
	Verdict Verdict

	// Safe evidence: the inferred context model, predicate set, and
	// counter parameter — the certificate Algorithm Check re-verifies —
	// plus the round count for faithful reporting.
	ACFA   *acfa.ACFA
	Preds  []expr.Expr
	K      int
	Rounds int

	// Unsafe evidence: the concrete interleaved race trace, its SSA
	// trace formula (re-checked for satisfiability on reuse), and the
	// satisfying witness model.
	Race    *refine.Interleaving
	Witness map[string]int64
	TF      []expr.Expr

	// Unknown evidence: the engine's reason. Unknown verdicts are
	// deterministic given an identical canonical serialization, so they
	// replay without re-paying the exhausted budgets.
	Reason string
}

// Stats counts store traffic. Hits/Misses split lookup outcomes;
// Revalidations counts hits whose evidence was re-established,
// RevalidationFailures hits whose stored evidence no longer verified
// (these fall back to a full run and overwrite the entry).
type Stats struct {
	Hits                 int64
	Misses               int64
	Writes               int64
	Revalidations        int64
	RevalidationFailures int64
	Entries              int
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

const numShards = 16

type shard struct {
	mu      sync.RWMutex
	entries map[Key]*Entry
}

// Store is a sharded, concurrency-safe, content-addressed map from keys
// to verdict evidence. The zero value is not usable; call New.
type Store struct {
	shards [numShards]shard

	hits          atomic.Int64
	misses        atomic.Int64
	writes        atomic.Int64
	revalidations atomic.Int64
	revalFailures atomic.Int64
}

// New returns an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].entries = make(map[Key]*Entry)
	}
	return s
}

func (s *Store) shard(k Key) *shard { return &s.shards[int(k[0])%numShards] }

// Get looks up the entry for canon, comparing the stored serialization
// byte-for-byte (the key is a content hash; equality of content is what
// soundness arguments rest on). It records a hit or miss.
func (s *Store) Get(canon []byte) (*Entry, bool) {
	if s == nil {
		return nil, false
	}
	k := KeyOf(canon)
	sh := s.shard(k)
	sh.mu.RLock()
	e, ok := sh.entries[k]
	sh.mu.RUnlock()
	if !ok || string(e.Canon) != string(canon) {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return e, true
}

// Put stores e under the hash of its canonical serialization,
// overwriting any previous entry (e.g. after a failed revalidation).
func (s *Store) Put(e *Entry) {
	if s == nil || e == nil || len(e.Canon) == 0 {
		return
	}
	k := KeyOf(e.Canon)
	sh := s.shard(k)
	sh.mu.Lock()
	sh.entries[k] = e
	sh.mu.Unlock()
	s.writes.Add(1)
}

// Revalidated records that a hit's evidence was independently
// re-established (ok) or rejected (!ok).
func (s *Store) Revalidated(ok bool) {
	if s == nil {
		return
	}
	if ok {
		s.revalidations.Add(1)
	} else {
		s.revalFailures.Add(1)
	}
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// Stats snapshots the traffic counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:                 s.hits.Load(),
		Misses:               s.misses.Load(),
		Writes:               s.writes.Load(),
		Revalidations:        s.revalidations.Load(),
		RevalidationFailures: s.revalFailures.Load(),
		Entries:              s.Len(),
	}
}
