// Package store is the content-addressed certificate store behind the
// checker's incremental re-checking: verdict evidence keyed by a
// canonical serialization of everything that determines the verdict —
// the sliced thread CFA, the race variable, and the engine configuration.
//
// The store is the daemon's memory between requests. When a program
// revision is re-submitted, each target's sliced cone of influence is
// re-serialized; an unchanged cone finds its previous entry and the
// verdict is re-established from the stored evidence (a Safe entry's
// certificate is re-verified with Algorithm Check, an Unsafe entry's
// race witness is re-checked for satisfiability) instead of re-running
// context inference.
//
// Lookups never trust the hash alone: every entry retains the full
// canonical serialization it was stored under, and Get compares it
// byte-for-byte, so a SHA-256 collision degrades to a cache miss rather
// than a wrong verdict.
package store

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"circ/internal/acfa"
	"circ/internal/expr"
	"circ/internal/refine"
)

// Key addresses one entry: SHA-256 of the canonical serialization of
// (sliced CFA, race variable, engine configuration).
type Key [sha256.Size]byte

// KeyOf hashes a canonical serialization.
func KeyOf(canon []byte) Key { return sha256.Sum256(canon) }

// Verdict mirrors the engine's verdict enumeration without importing it
// (the engine package is free to depend on the store in the future).
type Verdict int

// Verdicts.
const (
	Unknown Verdict = iota
	Safe
	Unsafe
)

// Entry is the stored evidence for one (sliced CFA, target, config)
// verdict. Exactly the fields needed to re-establish the verdict are
// kept; transient per-run data (metrics, iteration history) is not.
type Entry struct {
	// Canon is the full canonical serialization the entry was keyed
	// under; Get compares it byte-for-byte against the probe.
	Canon []byte
	// Verdict is the stored outcome.
	Verdict Verdict

	// Safe evidence: the inferred context model, predicate set, and
	// counter parameter — the certificate Algorithm Check re-verifies —
	// plus the round count for faithful reporting.
	ACFA   *acfa.ACFA
	Preds  []expr.Expr
	K      int
	Rounds int

	// Unsafe evidence: the concrete interleaved race trace, its SSA
	// trace formula (re-checked for satisfiability on reuse), and the
	// satisfying witness model.
	Race    *refine.Interleaving
	Witness map[string]int64
	TF      []expr.Expr

	// Unknown evidence: the engine's reason. Unknown verdicts are
	// deterministic given an identical canonical serialization, so they
	// replay without re-paying the exhausted budgets.
	Reason string
}

// Stats counts store traffic. Hits/Misses split lookup outcomes;
// Revalidations counts hits whose evidence was re-established,
// RevalidationFailures hits whose stored evidence no longer verified
// (these fall back to a full run and overwrite the entry). Evictions
// counts entries dropped by the LRU cap; Bytes estimates the resident
// evidence footprint, with BytesHighWater / EntriesHighWater the largest
// values observed — the daemon's growth watermarks.
type Stats struct {
	Hits                 int64
	Misses               int64
	Writes               int64
	Revalidations        int64
	RevalidationFailures int64
	Evictions            int64
	Entries              int
	MaxEntries           int
	Bytes                int64
	BytesHighWater       int64
	EntriesHighWater     int64
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

const numShards = 16

type shard struct {
	mu      sync.RWMutex
	entries map[Key]*Entry
}

// Store is a sharded, concurrency-safe, content-addressed map from keys
// to verdict evidence. The zero value is not usable; call New or NewLRU.
//
// A capped store (NewLRU with maxEntries > 0) additionally keeps a
// single global recency list so eviction is true LRU across shards, not
// per-shard approximate. The list has its own mutex and is never held
// together with a shard lock: Get/Put touch the shard first, then the
// list, and evictions delete from shards after the list decision is
// made. A concurrent Get can therefore briefly hit an entry the evictor
// is about to drop — harmless, since entries are immutable and the next
// lookup simply misses.
type Store struct {
	shards     [numShards]shard
	maxEntries int // 0 = unbounded

	lruMu sync.Mutex
	lru   *list.List            // front = most recently used; values are Key
	elems map[Key]*list.Element // only for capped stores

	hits          atomic.Int64
	misses        atomic.Int64
	writes        atomic.Int64
	revalidations atomic.Int64
	revalFailures atomic.Int64
	evictions     atomic.Int64
	bytes         atomic.Int64
	count         atomic.Int64
	bytesHW       atomic.Int64
	countHW       atomic.Int64
}

// New returns an empty, unbounded store.
func New() *Store { return NewLRU(0) }

// NewLRU returns an empty store holding at most maxEntries entries,
// evicting the least recently used entry on overflow. maxEntries <= 0
// means unbounded (identical to New).
func NewLRU(maxEntries int) *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].entries = make(map[Key]*Entry)
	}
	if maxEntries > 0 {
		s.maxEntries = maxEntries
		s.lru = list.New()
		s.elems = make(map[Key]*list.Element)
	}
	return s
}

func (s *Store) shard(k Key) *shard { return &s.shards[int(k[0])%numShards] }

// Get looks up the entry for canon, comparing the stored serialization
// byte-for-byte (the key is a content hash; equality of content is what
// soundness arguments rest on). It records a hit or miss.
func (s *Store) Get(canon []byte) (*Entry, bool) {
	if s == nil {
		return nil, false
	}
	k := KeyOf(canon)
	sh := s.shard(k)
	sh.mu.RLock()
	e, ok := sh.entries[k]
	sh.mu.RUnlock()
	if !ok || string(e.Canon) != string(canon) {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.touch(k)
	return e, true
}

// touch marks k most recently used on capped stores.
func (s *Store) touch(k Key) {
	if s.maxEntries == 0 {
		return
	}
	s.lruMu.Lock()
	if el, ok := s.elems[k]; ok {
		s.lru.MoveToFront(el)
	}
	s.lruMu.Unlock()
}

// Put stores e under the hash of its canonical serialization,
// overwriting any previous entry (e.g. after a failed revalidation).
// On a capped store, the least recently used entries are evicted until
// the store fits its bound again.
func (s *Store) Put(e *Entry) {
	if s == nil || e == nil || len(e.Canon) == 0 {
		return
	}
	k := KeyOf(e.Canon)
	sh := s.shard(k)
	sh.mu.Lock()
	if old, ok := sh.entries[k]; ok {
		s.bytes.Add(-entrySize(old))
		s.count.Add(-1)
	}
	sh.entries[k] = e
	sh.mu.Unlock()
	s.bytes.Add(entrySize(e))
	s.count.Add(1)
	s.writes.Add(1)
	highWater(&s.bytesHW, s.bytes.Load())
	highWater(&s.countHW, s.count.Load())

	if s.maxEntries == 0 {
		return
	}
	var victims []Key
	s.lruMu.Lock()
	if el, ok := s.elems[k]; ok {
		s.lru.MoveToFront(el)
	} else {
		s.elems[k] = s.lru.PushFront(k)
	}
	for s.lru.Len() > s.maxEntries {
		back := s.lru.Back()
		vk := back.Value.(Key)
		s.lru.Remove(back)
		delete(s.elems, vk)
		victims = append(victims, vk)
	}
	s.lruMu.Unlock()
	for _, vk := range victims {
		vsh := s.shard(vk)
		vsh.mu.Lock()
		if victim, ok := vsh.entries[vk]; ok {
			delete(vsh.entries, vk)
			s.bytes.Add(-entrySize(victim))
			s.count.Add(-1)
			s.evictions.Add(1)
		}
		vsh.mu.Unlock()
	}
}

// entrySize estimates an entry's resident footprint: the retained
// canonical serialization dominates, plus fixed overheads for the
// evidence structures (interned expressions are shared process-wide, so
// only the slice headers and per-element pointers are charged here).
func entrySize(e *Entry) int64 {
	const fixed = 256
	sz := int64(fixed + len(e.Canon) + len(e.Reason))
	sz += int64(len(e.Preds)+len(e.TF)) * 16
	for key := range e.Witness {
		sz += int64(len(key)) + 40
	}
	if e.ACFA != nil {
		sz += 512
	}
	if e.Race != nil {
		sz += 256
	}
	return sz
}

// highWater raises hw to v if v is larger.
func highWater(hw *atomic.Int64, v int64) {
	for {
		cur := hw.Load()
		if v <= cur || hw.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Revalidated records that a hit's evidence was independently
// re-established (ok) or rejected (!ok).
func (s *Store) Revalidated(ok bool) {
	if s == nil {
		return
	}
	if ok {
		s.revalidations.Add(1)
	} else {
		s.revalFailures.Add(1)
	}
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	return int(s.count.Load())
}

// Stats snapshots the traffic counters and size watermarks.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:                 s.hits.Load(),
		Misses:               s.misses.Load(),
		Writes:               s.writes.Load(),
		Revalidations:        s.revalidations.Load(),
		RevalidationFailures: s.revalFailures.Load(),
		Evictions:            s.evictions.Load(),
		Entries:              s.Len(),
		MaxEntries:           s.maxEntries,
		Bytes:                s.bytes.Load(),
		BytesHighWater:       s.bytesHW.Load(),
		EntriesHighWater:     s.countHW.Load(),
	}
}

// AppendExprIDs appends every interned formula ID the stored
// certificates will dereference again — context-model labels, predicate
// sets, and trace formulas — to dst, for use as arena-compaction roots.
// Preds and TF are stored as expression trees; interning them here
// yields (and thereby roots) the canonical IDs any revalidation of the
// entry would intern on the spot.
func (s *Store) AppendExprIDs(dst []expr.ID) []expr.ID {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			if e.ACFA != nil {
				dst = e.ACFA.AppendExprIDs(dst)
			}
			for _, p := range e.Preds {
				dst = append(dst, expr.Intern(p))
			}
			for _, f := range e.TF {
				dst = append(dst, expr.Intern(f))
			}
		}
		sh.mu.RUnlock()
	}
	return dst
}
