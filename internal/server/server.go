// Package server implements the circd checker daemon: a long-running
// HTTP service that wraps the batch driver behind the versioned api.v1
// wire protocol (see circ/api/v1). One daemon process holds the three
// cross-request accelerators — the hash-consing arena, the shared SMT
// verdict cache, and the content-addressed certificate store — so that
// re-submitting a program costs certificate re-verification per target
// instead of context inference.
//
// Request flow: POST /v1/check parses and validates the submission,
// registers a job, and returns 202 immediately; a bounded pool of worker
// goroutines runs jobs through Checker.CheckTargets. Clients poll
// GET /v1/jobs/{id}, stream the live inference journal from
// GET /v1/jobs/{id}/events (the same SSE frames the flight recorder
// serves under /debug/circ/events), fetch the HTML flight-recorder
// report from GET /v1/jobs/{id}/report, and read daemon-wide cache
// telemetry from GET /v1/stats.
//
// Shutdown is a drain: BeginDrain makes new submissions fail with 503
// while in-flight and queued jobs run to completion and every GET
// endpoint keeps answering, so clients can still collect their results.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"circ"
	apiv1 "circ/api/v1"
	"circ/internal/expr"
	"circ/internal/journal"
	"circ/internal/refine"
	"circ/internal/telemetry"
)

// Config tunes a daemon instance. The zero value is usable: a default
// checker with a fresh certificate store, two concurrent jobs, a
// five-minute per-job timeout.
type Config struct {
	// Checker is the base checker every job derives from; its solver,
	// metrics registry, and certificate store are shared across all
	// requests. Nil builds a default checker with a fresh store.
	Checker *circ.Checker
	// MaxConcurrent bounds the number of jobs running at once; further
	// jobs queue. Zero means 2.
	MaxConcurrent int
	// JobTimeout is the default per-job wall-clock budget, applied when
	// a request does not set options.timeout_seconds. Zero means 5m.
	JobTimeout time.Duration
	// MaxJobs bounds the number of finished jobs retained for polling;
	// the oldest finished jobs are evicted beyond it. Zero means 256.
	MaxJobs int
	// JobRing bounds the completed-job flight-data ring served by
	// GET /v1/jobs and the ops dashboard. Zero means 64.
	JobRing int
	// CompactArena enables idle-time compaction of the shared
	// expression arena: whenever a job finishes and no other job is
	// running, nodes unreachable from the certificate store are swept
	// and SMT cache entries over them dropped. Off by default — a
	// short-lived daemon never needs it.
	CompactArena bool
	// Logger receives request and job lifecycle logs; nil discards.
	Logger *slog.Logger
}

// Server is the daemon: an http.Handler serving the /v1 API plus the job
// scheduler behind it.
type Server struct {
	base      *circ.Checker
	cfg       Config
	mux       *http.ServeMux
	log       *slog.Logger
	reg       *telemetry.Registry
	ring      *jobRing
	start     time.Time
	sem       chan struct{}
	wg        sync.WaitGroup
	drain     atomic.Bool
	flushOnce sync.Once
	// gate excludes arena compaction from running jobs: every job holds
	// the read side for the duration of CheckTargets, and the sweeper
	// takes the write side (TryLock — skipped, not queued, while busy).
	gate sync.RWMutex
	// lanes retains the most recent completed job's scheduler timeline
	// for the ops dashboard's worker-lane view.
	lanes  laneView
	nextID atomic.Int64
	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // insertion order, for eviction
	nJobs  [4]atomic.Int64
}

// job-outcome counters in Server.nJobs.
const (
	cSubmitted = iota
	cDone
	cFailed
	cCancelled
)

// job is one submission's full state. All mutable fields are guarded by
// mu; the journal is internally synchronised and is read concurrently by
// the SSE endpoint while the job runs. The tracer, timeline, and trace
// context are set once at submission and internally synchronised, so the
// trace endpoint reads them without j.mu.
type job struct {
	id       string
	tc       telemetry.TraceContext
	tracer   *telemetry.Tracer
	timeline *telemetry.Timeline
	mu       sync.Mutex
	state    string
	errMsg   string
	sub      time.Time
	started  *time.Time
	done     *time.Time
	elapsed  time.Duration
	results  []apiv1.TargetResult
	summary  string
	batch    *circ.BatchReport
	prog     *circ.Program
	journal  *circ.Journal
}

// maxTraceSpans bounds each job's recorded spans so a pathological job
// cannot grow its flight-deck trace without bound.
const maxTraceSpans = 16384

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Checker == nil {
		cfg.Checker = circ.NewChecker(circ.WithCertStore(circ.NewCertStore()))
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 5 * time.Minute
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 256
	}
	if cfg.JobRing <= 0 {
		cfg.JobRing = 64
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	reg := cfg.Checker.Metrics()
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		base:  cfg.Checker,
		cfg:   cfg,
		mux:   http.NewServeMux(),
		log:   log,
		reg:   reg,
		ring:  newJobRing(cfg.JobRing),
		start: time.Now(),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		jobs:  make(map[string]*job),
	}
	s.handle("POST /v1/check", s.handleSubmit)
	s.handle("GET /v1/jobs", s.handleJobs)
	s.handle("GET /v1/jobs/{id}", s.handleJob)
	s.handle("GET /v1/jobs/{id}/events", s.handleEvents)
	s.handle("GET /v1/jobs/{id}/report", s.handleReport)
	s.handle("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /debug/circ/ops", s.handleOps)
	s.handle("GET /debug/circ/slowlog", s.handleSlowlog)
	return s
}

// handle mounts h under the mux pattern "METHOD /path", instrumented
// with the pattern's path as the metrics endpoint label.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	endpoint := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		endpoint = pattern[i+1:]
	}
	s.mux.HandleFunc(pattern, s.instrument(endpoint, h))
}

// ServeHTTP makes the Server mountable anywhere an http.Handler goes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BeginDrain stops accepting new submissions: POST /v1/check answers 503
// with code "draining" from now on. Queued and running jobs continue, and
// the read-only endpoints keep serving.
func (s *Server) BeginDrain() { s.drain.Store(true) }

// Drain begins (or continues) draining and blocks until every accepted
// job has finished, or ctx expires. It returns ctx.Err() on timeout —
// jobs past their own deadlines are cancelled by their per-job timeout,
// not by Drain.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	doneCh := make(chan struct{})
	go func() { s.wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
		// Every job is accounted for: leave the daemon's final observed
		// state in the log before the process goes away.
		s.flushFinalMetrics()
		return nil
	case <-ctx.Done():
		s.flushFinalMetrics()
		return ctx.Err()
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing to recover
}

// writeError writes the api.v1 error body for status.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, apiv1.Error{Code: code, Message: msg})
}

// handleSubmit accepts a CheckRequest, validates it against the parsed
// program, and schedules the job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.drain.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining; not accepting new jobs")
		return
	}
	var req apiv1.CheckRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "malformed JSON body: "+err.Error())
		return
	}
	if req.Program == "" {
		writeError(w, http.StatusBadRequest, "invalid_request", "program is required")
		return
	}
	prog, err := circ.Parse(req.Program)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "parse_error", err.Error())
		return
	}
	targets, err := resolveTargets(prog, req.Targets)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "unknown_target", err.Error())
		return
	}
	opts, timeout, err := requestOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	if timeout <= 0 {
		timeout = s.cfg.JobTimeout
	}

	// Trace identity: join the caller's distributed trace when the submit
	// carries a valid W3C traceparent header, mint a fresh one otherwise.
	// Every span the job records, every slog line about it, and its ring
	// record carry the resolved trace ID.
	tc := telemetry.ContextFromTraceParent(r.Header.Get("traceparent"))
	tr := telemetry.NewTracer()
	tr.SetTraceContext(tc)
	tr.SetMaxSpans(maxTraceSpans)
	tl := telemetry.NewTimelineAt(tr.StartTime(), telemetry.DefaultTimelineCap)

	jr := circ.NewJournal()
	chk := s.base.Derive(append(opts, circ.WithJournal(jr), circ.WithTracer(tr))...)
	j := &job{
		id:       fmt.Sprintf("j%06d", s.nextID.Add(1)),
		tc:       tc,
		tracer:   tr,
		timeline: tl,
		state:    apiv1.StateQueued,
		sub:      time.Now(),
		prog:     prog,
		journal:  jr,
	}
	s.register(j)
	s.nJobs[cSubmitted].Add(1)
	s.wg.Add(1)
	go s.run(j, chk, targets, timeout)
	s.log.Info("job accepted", "job", j.id, "targets", len(targets),
		"trace_id", tc.TraceID, "span_id", tc.SpanID)
	w.Header().Set("Traceparent", tc.String())
	writeJSON(w, http.StatusAccepted, apiv1.SubmitResponse{
		JobID:     j.id,
		State:     apiv1.StateQueued,
		JobURL:    "/v1/jobs/" + j.id,
		EventsURL: "/v1/jobs/" + j.id + "/events",
		TraceURL:  "/v1/jobs/" + j.id + "/trace",
		TraceID:   tc.TraceID,
	})
}

// register adds j to the index, evicting the oldest finished jobs beyond
// the retention bound.
func (s *Server) register(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.jobs) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			old := s.jobs[id]
			if old == nil {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			old.mu.Lock()
			terminal := old.done != nil
			old.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything retained is still running
		}
	}
}

// run executes one job through the bounded worker pool.
func (s *Server) run(j *job, chk *circ.Checker, targets []circ.Target, timeout time.Duration) {
	defer s.wg.Done()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	now := time.Now()
	j.mu.Lock()
	j.state = apiv1.StateRunning
	j.started = &now
	j.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	// The scheduler timeline rides the context, alongside — never inside —
	// the byte-deterministic journal: workers record busy/idle/steal
	// segments into it whenever one is attached.
	ctx = telemetry.WithTimeline(ctx, j.timeline)
	s.gate.RLock()
	batch, err := chk.CheckTargets(ctx, j.prog, targets)
	s.gate.RUnlock()
	s.complete(j, batch, err)
	s.maybeCompactArena()
}

// maybeCompactArena sweeps the expression arena after a job completes,
// if enabled and the daemon is idle. The gate's write lock can only be
// taken while no job holds the read side, so live analyses never see a
// concurrent sweep; TryLock makes a busy daemon skip the pass rather
// than stall the queue behind it.
func (s *Server) maybeCompactArena() {
	if !s.cfg.CompactArena {
		return
	}
	if !s.gate.TryLock() {
		return
	}
	defer s.gate.Unlock()
	before := expr.Stats()
	st := s.base.CompactArena()
	s.log.Info("arena compacted",
		"freed_nodes", before.Nodes-st.Nodes,
		"freed_bytes", before.Bytes-st.Bytes,
		"live_nodes", st.Nodes,
		"compactions", st.Compactions)
}

// complete records a job's outcome: the polled job state, the ring's
// flight-data record, and the daemon's lifetime aggregates.
func (s *Server) complete(j *job, batch *circ.BatchReport, err error) {
	now := time.Now()
	j.mu.Lock()
	j.done = &now
	switch {
	case err == nil:
		j.state = apiv1.StateDone
		s.nJobs[cDone].Add(1)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.state = apiv1.StateCancelled
		j.errMsg = err.Error()
		s.nJobs[cCancelled].Add(1)
	default:
		j.state = apiv1.StateFailed
		j.errMsg = err.Error()
		s.nJobs[cFailed].Add(1)
	}
	if batch != nil {
		j.batch = batch
		j.elapsed = batch.Elapsed
		j.results = resultsOf(j.prog, batch)
		j.summary = batch.Summary()
	}
	rec := summarizeJob(j)
	state, elapsed := j.state, j.elapsed
	j.mu.Unlock()

	// Sample the daemon's growth watermarks at completion: the ring's
	// records form the trend the ops dashboard renders.
	if cs := s.base.CertStore(); cs != nil {
		rec.StoreBytes = cs.Stats().Bytes
	}
	rec.ArenaBytes = expr.Stats().Bytes
	s.ring.add(rec)

	// Lifetime aggregates: per-job latency distribution, verdicts by
	// class, and certificate reuse. These survive ring eviction.
	s.reg.Histogram("jobs.latency").Observe(elapsed)
	for class, n := range map[string]int{
		"safe": rec.Safe, "unsafe": rec.Unsafe,
		"unknown": rec.Unknown, "error": rec.Errors,
	} {
		if n > 0 {
			s.reg.Counter(`jobs.targets{class="` + class + `"}`).Add(int64(n))
		}
	}
	s.reg.Counter("jobs.certs_reused").Add(int64(rec.CertificatesReused))
	s.lanes.set(j.id, j.tc.TraceID, j.timeline)
	s.log.Info("job finished", "job", j.id, "state", state,
		"trace_id", j.tc.TraceID, "spans", j.tracer.NumSpans(),
		"timeline_segments", j.timeline.Len())
}

// resolveTargets validates the request's target list against the parsed
// program; nil means every (thread, global) pair.
func resolveTargets(p *circ.Program, reqs []apiv1.Target) ([]circ.Target, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	globals := make(map[string]bool)
	for _, g := range p.Globals() {
		globals[g] = true
	}
	threads := make(map[string]bool)
	for _, t := range p.ThreadNames() {
		threads[t] = true
	}
	out := make([]circ.Target, 0, len(reqs))
	for _, t := range reqs {
		if t.Variable == "" {
			return nil, fmt.Errorf("target is missing a variable")
		}
		if !globals[t.Variable] {
			return nil, fmt.Errorf("unknown global %q", t.Variable)
		}
		if t.Thread != "" && !threads[t.Thread] {
			return nil, fmt.Errorf("unknown thread %q", t.Thread)
		}
		out = append(out, circ.Target{Thread: t.Thread, Variable: t.Variable})
	}
	return out, nil
}

// requestOptions maps the wire options onto checker options plus the
// per-job timeout. Zero-valued fields keep the daemon defaults.
func requestOptions(o *apiv1.Options) ([]circ.Option, time.Duration, error) {
	if o == nil {
		return nil, 0, nil
	}
	var opts []circ.Option
	if o.K > 0 {
		opts = append(opts, circ.WithK(o.K))
	}
	if o.Omega {
		opts = append(opts, circ.WithOmega(true))
	}
	if o.Parallelism > 0 {
		opts = append(opts, circ.WithParallelism(o.Parallelism))
	}
	if o.Sched != "" {
		sched, err := circ.ParseSched(o.Sched)
		if err != nil {
			return nil, 0, fmt.Errorf("options.sched: %v", err)
		}
		opts = append(opts, circ.WithScheduler(sched))
	}
	onoff := func(name, v string) (bool, bool, error) {
		switch v {
		case "":
			return false, false, nil
		case "on":
			return true, true, nil
		case "off":
			return false, true, nil
		}
		return false, false, fmt.Errorf("options.%s: invalid value %q (want \"on\" or \"off\")", name, v)
	}
	if on, set, err := onoff("triage", o.Triage); err != nil {
		return nil, 0, err
	} else if set {
		opts = append(opts, circ.WithTriage(on))
	}
	if on, set, err := onoff("slicing", o.Slicing); err != nil {
		return nil, 0, err
	} else if set {
		opts = append(opts, circ.WithSlicing(on))
	}
	if on, set, err := onoff("seed_preds", o.SeedPreds); err != nil {
		return nil, 0, err
	} else if set {
		opts = append(opts, circ.WithSeedPredicates(on))
	}
	if o.MaxRounds > 0 || o.MaxInner > 0 || o.MaxStates > 0 {
		opts = append(opts, circ.WithBudgets(o.MaxRounds, o.MaxInner, o.MaxStates))
	}
	if o.TimeoutSeconds < 0 {
		return nil, 0, fmt.Errorf("options.timeout_seconds: must be non-negative")
	}
	return opts, time.Duration(o.TimeoutSeconds * float64(time.Second)), nil
}

// resultsOf maps a batch report onto the wire results.
func resultsOf(prog *circ.Program, b *circ.BatchReport) []apiv1.TargetResult {
	out := make([]apiv1.TargetResult, 0, len(b.Results))
	for _, r := range b.Results {
		tr := apiv1.TargetResult{
			Thread:         r.Thread,
			Variable:       r.Variable,
			ElapsedSeconds: r.Elapsed.Seconds(),
		}
		if r.Err != nil {
			tr.Verdict = "error"
			tr.Error = r.Err.Error()
			out = append(out, tr)
			continue
		}
		rep := r.Report
		tr.Verdict = rep.Verdict.String()
		tr.Reason = rep.Reason
		tr.Triage = rep.Triage
		tr.SeededPreds = rep.SeededPreds
		tr.Summary = rep.Summary()
		tr.K = rep.K
		tr.Preds = len(rep.Preds)
		tr.Rounds = rep.Rounds
		tr.CertificateReused = rep.Metrics.Counter("store.reused") > 0
		if rep.Race != nil {
			tr.Race = rep.Race.String()
			if rep.Witness != nil {
				if c, err := prog.CFA(r.Thread); err == nil {
					tr.Race = refine.FormatTraceWithWitness(c, rep.Race, rep.Witness)
				}
			}
		}
		out = append(out, tr)
	}
	return out
}

// lookup returns the job for the request's {id}, or answers 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "not_found", "no such job "+r.PathValue("id"))
	}
	return j
}

// handleJob answers the polled job view.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	view := apiv1.Job{
		ID:          j.id,
		State:       j.state,
		Error:       j.errMsg,
		Results:     j.results,
		Summary:     j.summary,
		SubmittedAt: j.sub,
		StartedAt:   j.started,
		FinishedAt:  j.done,
		TraceID:     j.tc.TraceID,
		TraceURL:    "/v1/jobs/" + j.id + "/trace",
	}
	if j.done != nil {
		view.ElapsedSeconds = j.elapsed.Seconds()
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// handleEvents streams the job's inference journal as server-sent
// events. For a finished job the recorded history is replayed and the
// stream closed; for a live job the flight recorder's SSE handler takes
// over (replay, then live events until the client disconnects).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	terminal := j.done != nil
	j.mu.Unlock()
	if !terminal {
		j.journal.ServeEvents(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	for _, e := range j.journal.Events() {
		data, err := json.Marshal(e)
		if err != nil {
			return
		}
		if _, err := w.Write(append(append([]byte("data: "), data...), '\n', '\n')); err != nil {
			return
		}
		// Flush per event so proxies and buffering clients see frames as
		// they are written, matching the live stream's behaviour.
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleReport renders the flight-recorder HTML report for a finished
// job.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done == nil {
		writeError(w, http.StatusConflict, "not_finished", "job is still "+j.state+"; report is available once it finishes")
		return
	}
	var sections []journal.CaseSection
	counts := map[string]int{}
	if j.batch != nil {
		for _, res := range j.batch.Results {
			sections = append(sections, sectionOf(j.prog, res))
			counts[sections[len(sections)-1].Verdict]++
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	journal.RenderHTML(w, journal.HTMLData{ //nolint:errcheck // headers are out
		Title:   "circd job " + j.id,
		Summary: summaryOf(counts),
		Cases:   sections,
		Events:  j.journal.Events(),
	})
}

// sectionOf builds one HTML case panel from a batch result, mirroring
// the circ CLI's report assembly.
func sectionOf(prog *circ.Program, r circ.TargetReport) journal.CaseSection {
	name := r.Variable
	if r.Thread != "" {
		name = r.Thread + "/" + r.Variable
	}
	sec := journal.CaseSection{Name: name}
	if r.Err != nil {
		sec.Verdict = "error"
		sec.Summary = r.Err.Error()
		return sec
	}
	rep := r.Report
	sec.Verdict = rep.Verdict.String()
	sec.Summary = rep.Summary()
	for _, p := range rep.Preds {
		sec.Preds = append(sec.Preds, p.String())
	}
	if a := rep.FinalACFA; a != nil {
		sec.ACFAText, sec.ACFADot = a.String(), a.Dot()
	} else if a := rep.LastACFA; a != nil {
		sec.ACFAText, sec.ACFADot = a.String(), a.Dot()
	}
	if rep.Race != nil {
		sec.Trace = rep.Race.String()
		if rep.Witness != nil {
			if c, err := prog.CFA(r.Thread); err == nil {
				sec.Trace = refine.FormatTraceWithWitness(c, rep.Race, rep.Witness)
			}
		}
	}
	return sec
}

// summaryOf renders per-verdict counts ("2 safe, 1 unsafe").
func summaryOf(counts map[string]int) string {
	var parts []string
	for _, v := range []string{"safe", "unsafe", "unknown", "error"} {
		if n := counts[v]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, v))
		}
	}
	if len(parts) == 0 {
		return "no cases"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += ", " + p
	}
	return out
}

// handleStats answers the daemon-wide cache and job telemetry.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	smtStats := s.base.SMTStats()
	as := expr.Stats()
	snap := s.reg.Snapshot()
	st := apiv1.Stats{
		Build: s.buildInfo(),
		Jobs: apiv1.JobStats{
			Submitted: s.nJobs[cSubmitted].Load(),
			Done:      s.nJobs[cDone].Load(),
			Failed:    s.nJobs[cFailed].Load(),
			Cancelled: s.nJobs[cCancelled].Load(),
		},
		Arena: apiv1.ArenaStats{
			Nodes:          int64(as.Nodes),
			Bytes:          as.Bytes,
			NodesHighWater: int64(as.NodesHighWater),
			BytesHighWater: as.BytesHighWater,
			Compactions:    int64(as.Compactions),
		},
		SMT: apiv1.SMTStats{
			Hits:               smtStats.Hits,
			Misses:             smtStats.Misses,
			FastPath:           smtStats.FastPath,
			HitRate:            smtStats.HitRate(),
			ClausesShared:      smtStats.ClausesShared,
			SlowQueries:        smtStats.SlowQueries,
			SlowLogThresholdMS: float64(s.base.SMTSlowLogThreshold()) / 1e6,
		},
		Scheduler: apiv1.SchedulerStats{
			Steals:            snap.Counters["reach.steal.count"],
			WorkerIdleSeconds: float64(snap.Histograms["reach.worker.idle"].SumNanos) / 1e9,
		},
		Triage:   triageStats(snap),
		Lifetime: s.lifetimeStats(),
	}
	st.Jobs.Active = st.Jobs.Submitted - st.Jobs.Done - st.Jobs.Failed - st.Jobs.Cancelled
	if cs := s.base.CertStore(); cs != nil {
		ss := cs.Stats()
		st.Store = apiv1.StoreStats{
			Entries:              ss.Entries,
			Hits:                 ss.Hits,
			Misses:               ss.Misses,
			Writes:               ss.Writes,
			Revalidations:        ss.Revalidations,
			RevalidationFailures: ss.RevalidationFailures,
			HitRatio:             ss.HitRatio(),
			Evictions:            ss.Evictions,
			MaxEntries:           ss.MaxEntries,
			Bytes:                ss.Bytes,
			BytesHighWater:       ss.BytesHighWater,
			EntriesHighWater:     ss.EntriesHighWater,
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// triageStats derives the static-analysis aggregates from a registry
// snapshot: the discharge total, its per-rule labelled family, and the
// seeded-predicate count.
func triageStats(snap circ.Metrics) apiv1.TriageStats {
	ts := apiv1.TriageStats{
		Discharged:       snap.Counters["triage.discharged"],
		SeededPredicates: snap.Counters["seed.predicates"],
	}
	const prefix = `triage.discharged{reason="`
	for name, n := range snap.Counters {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		reason := strings.TrimSuffix(strings.TrimPrefix(name, prefix), `"}`)
		if ts.ByReason == nil {
			ts.ByReason = make(map[string]int64)
		}
		ts.ByReason[reason] += n
	}
	return ts
}

// lifetimeStats derives the service-lifetime aggregates from the
// registry's completed-job instruments.
func (s *Server) lifetimeStats() apiv1.LifetimeStats {
	ls := apiv1.LifetimeStats{Verdicts: make(map[string]int64)}
	for _, class := range []string{"safe", "unsafe", "unknown", "error"} {
		n := s.reg.Counter(`jobs.targets{class="` + class + `"}`).Value()
		ls.Verdicts[class] = n
		ls.Targets += n
	}
	ls.CertificatesReused = s.reg.Counter("jobs.certs_reused").Value()
	if ls.Targets > 0 {
		ls.ReuseHitRate = float64(ls.CertificatesReused) / float64(ls.Targets)
	}
	hs := s.reg.Snapshot().Histograms["jobs.latency"]
	ls.CheckLatency = apiv1.LatencyQuantiles{
		Count:      hs.Count,
		P50Seconds: hs.Quantile(0.50).Seconds(),
		P95Seconds: hs.Quantile(0.95).Seconds(),
		P99Seconds: hs.Quantile(0.99).Seconds(),
	}
	return ls
}

// discardHandler is a no-op slog handler for Logger-less configs.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
