package server

import (
	"fmt"
	"net/http"
	"time"

	"circ/internal/expr"
	"circ/internal/telemetry"
)

// instrument wraps a handler with the daemon's request observability:
// a per-endpoint in-flight gauge, a per-endpoint 1-2-5 latency
// histogram, a per-(endpoint, status) request counter, and a structured
// request log line. endpoint is the route pattern, not the concrete
// path, so label cardinality stays bounded.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.reg.Histogram(fmt.Sprintf(`http.latency{endpoint=%q}`, endpoint))
	inFlight := s.reg.Gauge(fmt.Sprintf(`http.in_flight{endpoint=%q}`, endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Add(1)
		defer inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		lat.Observe(elapsed)
		s.reg.Counter(fmt.Sprintf(`http.requests{endpoint=%q,code="%d"}`, endpoint, rec.code)).Inc()
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path, "endpoint", endpoint,
			"code", rec.code, "elapsed", elapsed)
	}
}

// statusRecorder captures the response status for the request counter
// while passing everything else through — including Flush, which the SSE
// endpoint needs to stream.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleMetrics serves the Prometheus text exposition of the daemon's
// full telemetry snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, s.snapshotMetrics()) //nolint:errcheck // headers are out
}

// snapshotMetrics captures the registry and folds in the pull-style
// sources that do not push into it: the certificate store's counters and
// watermarks, the expression arena, the SMT cache, and the job ledger.
// The injected values are authoritative (read from the owning structure
// at scrape time), so a scrape is always internally consistent even
// while jobs run.
func (s *Server) snapshotMetrics() telemetry.Metrics {
	m := s.reg.Snapshot()
	if m.Counters == nil {
		m.Counters = make(map[string]int64)
	}
	if m.Gauges == nil {
		m.Gauges = make(map[string]int64)
	}

	// Build identity: the standard constant-1 gauge whose labels say what
	// is running. Dashboards join it against everything else by instance.
	bi := s.buildInfo()
	m.Gauges[fmt.Sprintf(`build_info{version=%q,go=%q,sched=%q,gomaxprocs="%d"}`,
		bi.Version, bi.GoVersion, bi.Sched, bi.GOMAXPROCS)] = 1

	// Job ledger. "submitted" counts accepted jobs; active is derived.
	sub, done := s.nJobs[cSubmitted].Load(), s.nJobs[cDone].Load()
	failed, cancelled := s.nJobs[cFailed].Load(), s.nJobs[cCancelled].Load()
	m.Counters[`jobs{outcome="submitted"}`] = sub
	m.Counters[`jobs{outcome="done"}`] = done
	m.Counters[`jobs{outcome="failed"}`] = failed
	m.Counters[`jobs{outcome="cancelled"}`] = cancelled
	m.Gauges["jobs.active"] = sub - done - failed - cancelled
	m.Counters["jobs.ring_evicted"] = s.ring.evicted()

	// Certificate store: traffic counters and growth watermarks. These
	// are the store's own authoritative totals; the engine-side
	// "store.hit"/"store.miss" counters in the same exposition attribute
	// the traffic to individual analyses.
	if cs := s.base.CertStore(); cs != nil {
		ss := cs.Stats()
		m.Counters["store.hits"] = ss.Hits
		m.Counters["store.misses"] = ss.Misses
		m.Counters["store.writes"] = ss.Writes
		m.Counters["store.revalidations"] = ss.Revalidations
		m.Counters["store.revalidation_failures"] = ss.RevalidationFailures
		m.Counters["store.evictions"] = ss.Evictions
		m.Gauges["store.entries"] = int64(ss.Entries)
		m.Gauges["store.max_entries"] = int64(ss.MaxEntries)
		m.Gauges["store.bytes"] = ss.Bytes
		m.Gauges["store.bytes_high_water"] = ss.BytesHighWater
		m.Gauges["store.entries_high_water"] = ss.EntriesHighWater
	}

	// Hash-consing arena. Compactions counts idle-time sweep passes
	// (monotonic, so a counter).
	as := expr.Stats()
	m.Gauges["arena.nodes"] = int64(as.Nodes)
	m.Gauges["arena.bytes"] = as.Bytes
	m.Gauges["arena.nodes_high_water"] = int64(as.NodesHighWater)
	m.Gauges["arena.bytes_high_water"] = as.BytesHighWater
	m.Counters["arena.compactions"] = int64(as.Compactions)

	// The shared SMT verdict cache and the reach scheduler need no
	// injection: the solver and engine are instrumented against this
	// registry, so "smt.cache.*", "smt.portfolio.clauses_shared",
	// "reach.steal.count", and the "reach.worker.idle" histogram are
	// already in the snapshot.

	m.Gauges["uptime_seconds"] = int64(time.Since(s.start).Seconds())
	return m
}

// flushFinalMetrics logs the final telemetry snapshot exactly once; the
// drain path calls it so a SIGTERM leaves the daemon's last observed
// state in the log.
func (s *Server) flushFinalMetrics() {
	s.flushOnce.Do(func() {
		s.log.Info("final metrics snapshot", "metrics", "\n"+s.snapshotMetrics().String())
	})
}
