package server

import (
	"fmt"
	"html/template"
	"net/http"
	"time"

	apiv1 "circ/api/v1"
	"circ/internal/expr"
)

// opsModel is the dashboard template's root object: the daemon's live
// stats, the completed-job ring, per-endpoint latency quantiles, and the
// watermark trend sampled at each job completion. Everything is computed
// server-side; the page is plain HTML and CSS, no scripts, so it can be
// archived as a CI artifact and read offline.
type opsModel struct {
	Uptime    string
	Jobs      apiv1.JobStats
	Lifetime  apiv1.LifetimeStats
	Store     apiv1.StoreStats
	Arena     apiv1.ArenaStats
	SMT       apiv1.SMTStats
	Scheduler apiv1.SchedulerStats
	Endpoints []endpointRow
	Ring      []ringRow
	Evicted   int64
	Trend     []trendBar
}

// endpointRow is one /metrics-derived HTTP latency line.
type endpointRow struct {
	Endpoint string
	Count    int64
	P50      string
	P95      string
	P99      string
	InFlight int64
}

// ringRow is one completed job with a CSS latency bar (percent of the
// slowest retained job).
type ringRow struct {
	apiv1.JobSummary
	Elapsed  string
	SMTSolve string
	BarPct   int
}

// trendBar is one watermark sample: the store and arena footprints when
// a job completed, as bar widths relative to the largest sample.
type trendBar struct {
	ID        string
	StorePct  int
	ArenaPct  int
	StoreText string
	ArenaText string
}

// handleOps renders the ops dashboard.
func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	m := opsModel{
		Uptime:   time.Since(s.start).Round(time.Second).String(),
		Lifetime: s.lifetimeStats(),
		Evicted:  s.ring.evicted(),
	}
	m.Jobs = apiv1.JobStats{
		Submitted: s.nJobs[cSubmitted].Load(),
		Done:      s.nJobs[cDone].Load(),
		Failed:    s.nJobs[cFailed].Load(),
		Cancelled: s.nJobs[cCancelled].Load(),
	}
	m.Jobs.Active = m.Jobs.Submitted - m.Jobs.Done - m.Jobs.Failed - m.Jobs.Cancelled

	if cs := s.base.CertStore(); cs != nil {
		ss := cs.Stats()
		m.Store = apiv1.StoreStats{
			Entries: ss.Entries, Hits: ss.Hits, Misses: ss.Misses,
			Writes: ss.Writes, Revalidations: ss.Revalidations,
			RevalidationFailures: ss.RevalidationFailures,
			HitRatio:             ss.HitRatio(), Evictions: ss.Evictions,
			MaxEntries: ss.MaxEntries, Bytes: ss.Bytes,
			BytesHighWater: ss.BytesHighWater, EntriesHighWater: ss.EntriesHighWater,
		}
	}
	as := expr.Stats()
	m.Arena = apiv1.ArenaStats{
		Nodes: int64(as.Nodes), Bytes: as.Bytes,
		NodesHighWater: int64(as.NodesHighWater), BytesHighWater: as.BytesHighWater,
		Compactions: int64(as.Compactions),
	}
	st := s.base.SMTStats()
	m.SMT = apiv1.SMTStats{
		Hits: st.Hits, Misses: st.Misses, FastPath: st.FastPath,
		HitRate: st.HitRate(), ClausesShared: st.ClausesShared,
	}

	// Per-endpoint HTTP latency, from the middleware's histograms.
	snap := s.reg.Snapshot()
	m.Scheduler = apiv1.SchedulerStats{
		Steals:            snap.Counters["reach.steal.count"],
		WorkerIdleSeconds: float64(snap.Histograms["reach.worker.idle"].SumNanos) / 1e9,
	}
	for _, ep := range []string{
		"/v1/check", "/v1/jobs", "/v1/jobs/{id}", "/v1/jobs/{id}/events",
		"/v1/jobs/{id}/report", "/v1/stats", "/metrics", "/debug/circ/ops",
	} {
		hs, ok := snap.Histograms[fmt.Sprintf(`http.latency{endpoint=%q}`, ep)]
		if !ok {
			continue
		}
		m.Endpoints = append(m.Endpoints, endpointRow{
			Endpoint: ep,
			Count:    hs.Count,
			P50:      hs.Quantile(0.50).Round(10 * time.Microsecond).String(),
			P95:      hs.Quantile(0.95).Round(10 * time.Microsecond).String(),
			P99:      hs.Quantile(0.99).Round(10 * time.Microsecond).String(),
			InFlight: snap.Gauges[fmt.Sprintf(`http.in_flight{endpoint=%q}`, ep)],
		})
	}

	ring := s.ring.snapshot()
	var maxElapsed float64
	var maxStore, maxArena int64
	for _, rec := range ring {
		maxElapsed = max(maxElapsed, rec.ElapsedSeconds)
		maxStore = max(maxStore, rec.StoreBytes)
		maxArena = max(maxArena, rec.ArenaBytes)
	}
	for _, rec := range ring {
		row := ringRow{
			JobSummary: rec,
			Elapsed:    time.Duration(rec.ElapsedSeconds * float64(time.Second)).Round(time.Millisecond).String(),
			SMTSolve:   time.Duration(rec.SMTSolveSeconds * float64(time.Second)).Round(time.Millisecond).String(),
		}
		if maxElapsed > 0 {
			row.BarPct = int(rec.ElapsedSeconds / maxElapsed * 100)
		}
		m.Ring = append(m.Ring, row)
	}
	// The trend reads oldest→newest, left to right.
	for i := len(ring) - 1; i >= 0; i-- {
		rec := ring[i]
		tb := trendBar{
			ID:        rec.ID,
			StoreText: fmtBytes(rec.StoreBytes),
			ArenaText: fmtBytes(rec.ArenaBytes),
		}
		if maxStore > 0 {
			tb.StorePct = int(rec.StoreBytes * 100 / maxStore)
		}
		if maxArena > 0 {
			tb.ArenaPct = int(rec.ArenaBytes * 100 / maxArena)
		}
		m.Trend = append(m.Trend, tb)
	}

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	opsTmpl.Execute(w, m) //nolint:errcheck // headers are out
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

var opsTmpl = template.Must(template.New("ops").Funcs(template.FuncMap{
	"mulf":  func(a, b float64) float64 { return a * b },
	"bytes": fmtBytes,
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>circd ops</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.summary { color: #444; margin-bottom: 1.5rem; }
.panel { border: 1px solid #ddd; border-radius: 6px; padding: 0.8rem 1rem; margin: 0.8rem 0; }
.verdict { display: inline-block; padding: 0.1rem 0.55rem; border-radius: 9px; font-weight: 600; font-size: 0.85rem; }
.verdict-done { background: #e2f5e5; color: #176628; }
.verdict-failed { background: #fbe3e3; color: #99201c; }
.verdict-cancelled { background: #fdf2d0; color: #7a5a00; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { border: 1px solid #ddd; padding: 0.25rem 0.5rem; text-align: left; vertical-align: top; }
th { background: #f2f2f2; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { display: inline-block; height: 0.7rem; background: #7aa6d9; border-radius: 2px; vertical-align: middle; min-width: 1px; }
.bar-store { background: #7aa6d9; }
.bar-arena { background: #a3c293; }
.barcell { width: 14rem; }
</style>
</head>
<body>
<h1>circd ops</h1>
<p class="summary">up {{.Uptime}} &mdash; {{.Jobs.Submitted}} jobs submitted, {{.Jobs.Active}} active</p>

<h2>Jobs</h2>
<div class="panel">
<table>
<tr><th>submitted</th><th>done</th><th>failed</th><th>cancelled</th><th>active</th></tr>
<tr><td class="num">{{.Jobs.Submitted}}</td><td class="num">{{.Jobs.Done}}</td>
<td class="num">{{.Jobs.Failed}}</td><td class="num">{{.Jobs.Cancelled}}</td>
<td class="num">{{.Jobs.Active}}</td></tr>
</table>
<p>Lifetime: {{.Lifetime.Targets}} targets checked,
{{.Lifetime.CertificatesReused}} verdicts re-established from certificates
(reuse rate {{printf "%.0f%%" (mulf .Lifetime.ReuseHitRate 100.0)}});
per-job latency p50 {{printf "%.3fs" .Lifetime.CheckLatency.P50Seconds}},
p95 {{printf "%.3fs" .Lifetime.CheckLatency.P95Seconds}},
p99 {{printf "%.3fs" .Lifetime.CheckLatency.P99Seconds}}.</p>
<p>Verdicts: {{range $class, $n := .Lifetime.Verdicts}}{{$class}}={{$n}} {{end}}</p>
</div>

<h2>HTTP endpoints</h2>
<div class="panel">
<table>
<tr><th>endpoint</th><th>requests</th><th>p50</th><th>p95</th><th>p99</th><th>in flight</th></tr>
{{range .Endpoints}}
<tr><td>{{.Endpoint}}</td><td class="num">{{.Count}}</td><td class="num">{{.P50}}</td>
<td class="num">{{.P95}}</td><td class="num">{{.P99}}</td><td class="num">{{.InFlight}}</td></tr>
{{end}}
</table>
</div>

<h2>Certificate store</h2>
<div class="panel">
<table>
<tr><th>entries</th><th>cap</th><th>bytes</th><th>hits</th><th>misses</th>
<th>writes</th><th>evictions</th><th>reval fail</th><th>entries HW</th><th>bytes HW</th></tr>
<tr><td class="num">{{.Store.Entries}}</td><td class="num">{{if .Store.MaxEntries}}{{.Store.MaxEntries}}{{else}}&infin;{{end}}</td>
<td class="num">{{bytes .Store.Bytes}}</td><td class="num">{{.Store.Hits}}</td>
<td class="num">{{.Store.Misses}}</td><td class="num">{{.Store.Writes}}</td>
<td class="num">{{.Store.Evictions}}</td><td class="num">{{.Store.RevalidationFailures}}</td>
<td class="num">{{.Store.EntriesHighWater}}</td><td class="num">{{bytes .Store.BytesHighWater}}</td></tr>
</table>
</div>

<h2>Expression arena, SMT cache &amp; scheduler</h2>
<div class="panel">
<p>Arena: {{.Arena.Nodes}} live nodes, {{bytes .Arena.Bytes}}
(high water {{.Arena.NodesHighWater}} nodes / {{bytes .Arena.BytesHighWater}};
{{.Arena.Compactions}} compactions).
SMT cache: {{.SMT.Hits}} hits, {{.SMT.Misses}} misses, {{.SMT.FastPath}} fast-path
(hit rate {{printf "%.0f%%" (mulf .SMT.HitRate 100.0)}});
{{.SMT.ClausesShared}} learned clauses shared across sessions.
Scheduler: {{.Scheduler.Steals}} steals,
{{printf "%.3fs" .Scheduler.WorkerIdleSeconds}} cumulative worker idle.</p>
</div>

<h2>Completed jobs (last {{len .Ring}}{{if .Evicted}}, {{.Evicted}} aged out{{end}})</h2>
<div class="panel">
<table>
<tr><th>job</th><th>state</th><th>targets</th><th>safe</th><th>unsafe</th><th>unknown</th>
<th>errors</th><th>reused</th><th>iters</th><th>events</th><th>SMT</th><th>elapsed</th><th class="barcell">latency</th></tr>
{{range .Ring}}
<tr><td>{{.ID}}</td><td><span class="verdict verdict-{{.State}}">{{.State}}</span></td>
<td class="num">{{.Targets}}</td><td class="num">{{.Safe}}</td><td class="num">{{.Unsafe}}</td>
<td class="num">{{.Unknown}}</td><td class="num">{{.Errors}}</td>
<td class="num">{{.CertificatesReused}}</td><td class="num">{{.CIRCIterations}}</td><td class="num">{{.JournalEvents}}</td>
<td class="num">{{.SMTSolve}}</td><td class="num">{{.Elapsed}}</td>
<td class="barcell"><span class="bar" style="width: {{.BarPct}}%"></span></td></tr>
{{end}}
</table>
</div>

<h2>Watermark trend (oldest &rarr; newest, sampled at job completion)</h2>
<div class="panel">
<table>
<tr><th>job</th><th>store</th><th class="barcell"></th><th>arena</th><th class="barcell"></th></tr>
{{range .Trend}}
<tr><td>{{.ID}}</td><td class="num">{{.StoreText}}</td>
<td class="barcell"><span class="bar bar-store" style="width: {{.StorePct}}%"></span></td>
<td class="num">{{.ArenaText}}</td>
<td class="barcell"><span class="bar bar-arena" style="width: {{.ArenaPct}}%"></span></td></tr>
{{end}}
</table>
</div>
</body>
</html>
`))
