package server

import (
	"fmt"
	"html/template"
	"net/http"
	"time"

	apiv1 "circ/api/v1"
	"circ/internal/expr"
)

// opsModel is the dashboard template's root object: the daemon's live
// stats, the completed-job ring, per-endpoint latency quantiles, and the
// watermark trend sampled at each job completion. Everything is computed
// server-side; the page is plain HTML and CSS, no scripts, so it can be
// archived as a CI artifact and read offline.
type opsModel struct {
	Uptime    string
	Jobs      apiv1.JobStats
	Lifetime  apiv1.LifetimeStats
	Store     apiv1.StoreStats
	Arena     apiv1.ArenaStats
	SMT       apiv1.SMTStats
	Scheduler apiv1.SchedulerStats
	Endpoints []endpointRow
	Ring      []ringRow
	Evicted   int64
	Trend     []trendBar
	// Lanes is the worker-lane view of the most recent completed job that
	// ran parallel workers: one row per scheduler worker, busy/idle/steal
	// segments as positioned spans.
	LaneJob     string
	LaneTraceID string
	Lanes       []laneRow
	LaneDropped int64
	// SlowLog mirrors /debug/circ/slowlog, newest first, truncated for
	// the dashboard.
	SlowThresholdMS float64
	SlowTotal       int64
	Slow            []slowRow
}

// laneRow is one scheduler worker's timeline: positioned busy/idle spans
// and instantaneous steal marks, plus per-lane totals.
type laneRow struct {
	Name      string
	Spans     []laneSpan
	Busy      time.Duration
	Idle      time.Duration
	BusyText  string
	IdleText  string
	Steals    int
	Truncated bool
}

// laneSpan is one positioned segment in a lane row, in percent of the
// job's timeline extent.
type laneSpan struct {
	Kind     string
	LeftPct  float64
	WidthPct float64
	Title    string
}

// slowRow is one slow-query line on the dashboard.
type slowRow struct {
	Seq        int64
	Kind       string
	FormulaID  uint64
	DurationMS float64
	Result     string
	Replayed   int
	Learned    int
	CubeKey    string
}

// endpointRow is one /metrics-derived HTTP latency line.
type endpointRow struct {
	Endpoint string
	Count    int64
	P50      string
	P95      string
	P99      string
	InFlight int64
}

// ringRow is one completed job with a CSS latency bar (percent of the
// slowest retained job).
type ringRow struct {
	apiv1.JobSummary
	Elapsed  string
	SMTSolve string
	BarPct   int
}

// trendBar is one watermark sample: the store and arena footprints when
// a job completed, as bar widths relative to the largest sample.
type trendBar struct {
	ID        string
	StorePct  int
	ArenaPct  int
	StoreText string
	ArenaText string
}

// handleOps renders the ops dashboard.
func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	m := opsModel{
		Uptime:   time.Since(s.start).Round(time.Second).String(),
		Lifetime: s.lifetimeStats(),
		Evicted:  s.ring.evicted(),
	}
	m.Jobs = apiv1.JobStats{
		Submitted: s.nJobs[cSubmitted].Load(),
		Done:      s.nJobs[cDone].Load(),
		Failed:    s.nJobs[cFailed].Load(),
		Cancelled: s.nJobs[cCancelled].Load(),
	}
	m.Jobs.Active = m.Jobs.Submitted - m.Jobs.Done - m.Jobs.Failed - m.Jobs.Cancelled

	if cs := s.base.CertStore(); cs != nil {
		ss := cs.Stats()
		m.Store = apiv1.StoreStats{
			Entries: ss.Entries, Hits: ss.Hits, Misses: ss.Misses,
			Writes: ss.Writes, Revalidations: ss.Revalidations,
			RevalidationFailures: ss.RevalidationFailures,
			HitRatio:             ss.HitRatio(), Evictions: ss.Evictions,
			MaxEntries: ss.MaxEntries, Bytes: ss.Bytes,
			BytesHighWater: ss.BytesHighWater, EntriesHighWater: ss.EntriesHighWater,
		}
	}
	as := expr.Stats()
	m.Arena = apiv1.ArenaStats{
		Nodes: int64(as.Nodes), Bytes: as.Bytes,
		NodesHighWater: int64(as.NodesHighWater), BytesHighWater: as.BytesHighWater,
		Compactions: int64(as.Compactions),
	}
	st := s.base.SMTStats()
	m.SMT = apiv1.SMTStats{
		Hits: st.Hits, Misses: st.Misses, FastPath: st.FastPath,
		HitRate: st.HitRate(), ClausesShared: st.ClausesShared,
		SlowQueries: st.SlowQueries,
	}

	// Flight deck: the latest parallel job's worker lanes and the SMT
	// slow-query log's most recent entries.
	laneJob, laneTrace, laneSegs, laneDropped := s.lanes.get()
	m.LaneJob, m.LaneTraceID, m.LaneDropped = laneJob, laneTrace, laneDropped
	m.Lanes = laneRowsOf(laneSegs)
	m.SlowThresholdMS = float64(s.base.SMTSlowLogThreshold()) / 1e6
	m.SlowTotal = st.SlowQueries
	for _, q := range s.base.SlowQueries() {
		if len(m.Slow) >= 20 {
			break
		}
		m.Slow = append(m.Slow, slowRow{
			Seq: q.Seq, Kind: q.Kind, FormulaID: q.FormulaID,
			DurationMS: q.DurationMS, Result: q.Result,
			Replayed: q.ClausesReplayed, Learned: q.ClausesLearned,
			CubeKey: q.CubeKey,
		})
	}

	// Per-endpoint HTTP latency, from the middleware's histograms.
	snap := s.reg.Snapshot()
	m.Scheduler = apiv1.SchedulerStats{
		Steals:            snap.Counters["reach.steal.count"],
		WorkerIdleSeconds: float64(snap.Histograms["reach.worker.idle"].SumNanos) / 1e9,
	}
	for _, ep := range []string{
		"/v1/check", "/v1/jobs", "/v1/jobs/{id}", "/v1/jobs/{id}/events",
		"/v1/jobs/{id}/report", "/v1/jobs/{id}/trace", "/v1/stats",
		"/metrics", "/debug/circ/ops", "/debug/circ/slowlog",
	} {
		hs, ok := snap.Histograms[fmt.Sprintf(`http.latency{endpoint=%q}`, ep)]
		if !ok {
			continue
		}
		m.Endpoints = append(m.Endpoints, endpointRow{
			Endpoint: ep,
			Count:    hs.Count,
			P50:      hs.Quantile(0.50).Round(10 * time.Microsecond).String(),
			P95:      hs.Quantile(0.95).Round(10 * time.Microsecond).String(),
			P99:      hs.Quantile(0.99).Round(10 * time.Microsecond).String(),
			InFlight: snap.Gauges[fmt.Sprintf(`http.in_flight{endpoint=%q}`, ep)],
		})
	}

	ring := s.ring.snapshot()
	var maxElapsed float64
	var maxStore, maxArena int64
	for _, rec := range ring {
		maxElapsed = max(maxElapsed, rec.ElapsedSeconds)
		maxStore = max(maxStore, rec.StoreBytes)
		maxArena = max(maxArena, rec.ArenaBytes)
	}
	for _, rec := range ring {
		row := ringRow{
			JobSummary: rec,
			Elapsed:    time.Duration(rec.ElapsedSeconds * float64(time.Second)).Round(time.Millisecond).String(),
			SMTSolve:   time.Duration(rec.SMTSolveSeconds * float64(time.Second)).Round(time.Millisecond).String(),
		}
		if maxElapsed > 0 {
			row.BarPct = int(rec.ElapsedSeconds / maxElapsed * 100)
		}
		m.Ring = append(m.Ring, row)
	}
	// The trend reads oldest→newest, left to right.
	for i := len(ring) - 1; i >= 0; i-- {
		rec := ring[i]
		tb := trendBar{
			ID:        rec.ID,
			StoreText: fmtBytes(rec.StoreBytes),
			ArenaText: fmtBytes(rec.ArenaBytes),
		}
		if maxStore > 0 {
			tb.StorePct = int(rec.StoreBytes * 100 / maxStore)
		}
		if maxArena > 0 {
			tb.ArenaPct = int(rec.ArenaBytes * 100 / maxArena)
		}
		m.Trend = append(m.Trend, tb)
	}

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	opsTmpl.Execute(w, m) //nolint:errcheck // headers are out
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

var opsTmpl = template.Must(template.New("ops").Funcs(template.FuncMap{
	"mulf":  func(a, b float64) float64 { return a * b },
	"bytes": fmtBytes,
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>circd ops</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.summary { color: #444; margin-bottom: 1.5rem; }
.panel { border: 1px solid #ddd; border-radius: 6px; padding: 0.8rem 1rem; margin: 0.8rem 0; }
.verdict { display: inline-block; padding: 0.1rem 0.55rem; border-radius: 9px; font-weight: 600; font-size: 0.85rem; }
.verdict-done { background: #e2f5e5; color: #176628; }
.verdict-failed { background: #fbe3e3; color: #99201c; }
.verdict-cancelled { background: #fdf2d0; color: #7a5a00; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { border: 1px solid #ddd; padding: 0.25rem 0.5rem; text-align: left; vertical-align: top; }
th { background: #f2f2f2; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { display: inline-block; height: 0.7rem; background: #7aa6d9; border-radius: 2px; vertical-align: middle; min-width: 1px; }
.bar-store { background: #7aa6d9; }
.bar-arena { background: #a3c293; }
.barcell { width: 14rem; }
.lanecell { width: 34rem; }
.lane { position: relative; height: 0.9rem; background: #f6f6f6; border-radius: 2px; overflow: hidden; }
.seg { position: absolute; top: 0; height: 100%; }
.seg-busy { background: #5a9e6f; }
.seg-idle { background: #d9d9d9; }
.seg-steal { background: #c4483a; z-index: 1; }
</style>
</head>
<body>
<h1>circd ops</h1>
<p class="summary">up {{.Uptime}} &mdash; {{.Jobs.Submitted}} jobs submitted, {{.Jobs.Active}} active</p>

<h2>Jobs</h2>
<div class="panel">
<table>
<tr><th>submitted</th><th>done</th><th>failed</th><th>cancelled</th><th>active</th></tr>
<tr><td class="num">{{.Jobs.Submitted}}</td><td class="num">{{.Jobs.Done}}</td>
<td class="num">{{.Jobs.Failed}}</td><td class="num">{{.Jobs.Cancelled}}</td>
<td class="num">{{.Jobs.Active}}</td></tr>
</table>
<p>Lifetime: {{.Lifetime.Targets}} targets checked,
{{.Lifetime.CertificatesReused}} verdicts re-established from certificates
(reuse rate {{printf "%.0f%%" (mulf .Lifetime.ReuseHitRate 100.0)}});
per-job latency p50 {{printf "%.3fs" .Lifetime.CheckLatency.P50Seconds}},
p95 {{printf "%.3fs" .Lifetime.CheckLatency.P95Seconds}},
p99 {{printf "%.3fs" .Lifetime.CheckLatency.P99Seconds}}.</p>
<p>Verdicts: {{range $class, $n := .Lifetime.Verdicts}}{{$class}}={{$n}} {{end}}</p>
</div>

<h2>HTTP endpoints</h2>
<div class="panel">
<table>
<tr><th>endpoint</th><th>requests</th><th>p50</th><th>p95</th><th>p99</th><th>in flight</th></tr>
{{range .Endpoints}}
<tr><td>{{.Endpoint}}</td><td class="num">{{.Count}}</td><td class="num">{{.P50}}</td>
<td class="num">{{.P95}}</td><td class="num">{{.P99}}</td><td class="num">{{.InFlight}}</td></tr>
{{end}}
</table>
</div>

<h2>Certificate store</h2>
<div class="panel">
<table>
<tr><th>entries</th><th>cap</th><th>bytes</th><th>hits</th><th>misses</th>
<th>writes</th><th>evictions</th><th>reval fail</th><th>entries HW</th><th>bytes HW</th></tr>
<tr><td class="num">{{.Store.Entries}}</td><td class="num">{{if .Store.MaxEntries}}{{.Store.MaxEntries}}{{else}}&infin;{{end}}</td>
<td class="num">{{bytes .Store.Bytes}}</td><td class="num">{{.Store.Hits}}</td>
<td class="num">{{.Store.Misses}}</td><td class="num">{{.Store.Writes}}</td>
<td class="num">{{.Store.Evictions}}</td><td class="num">{{.Store.RevalidationFailures}}</td>
<td class="num">{{.Store.EntriesHighWater}}</td><td class="num">{{bytes .Store.BytesHighWater}}</td></tr>
</table>
</div>

<h2>Expression arena, SMT cache &amp; scheduler</h2>
<div class="panel">
<p>Arena: {{.Arena.Nodes}} live nodes, {{bytes .Arena.Bytes}}
(high water {{.Arena.NodesHighWater}} nodes / {{bytes .Arena.BytesHighWater}};
{{.Arena.Compactions}} compactions).
SMT cache: {{.SMT.Hits}} hits, {{.SMT.Misses}} misses, {{.SMT.FastPath}} fast-path
(hit rate {{printf "%.0f%%" (mulf .SMT.HitRate 100.0)}});
{{.SMT.ClausesShared}} learned clauses shared across sessions;
{{.SMT.SlowQueries}} slow queries logged.
Scheduler: {{.Scheduler.Steals}} steals,
{{printf "%.3fs" .Scheduler.WorkerIdleSeconds}} cumulative worker idle.</p>
</div>

<h2>Worker lanes{{if .LaneJob}} ({{.LaneJob}}, trace {{.LaneTraceID}}){{end}}</h2>
<div class="panel">
{{if .Lanes}}
<table>
<tr><th>lane</th><th class="lanecell">timeline (busy / idle / steal)</th><th>busy</th><th>idle</th><th>steals</th></tr>
{{range .Lanes}}
<tr><td>{{.Name}}</td>
<td class="lanecell"><div class="lane">{{range .Spans}}<span class="seg seg-{{.Kind}}" style="left: {{printf "%.2f" .LeftPct}}%; width: {{printf "%.2f" .WidthPct}}%" title="{{.Title}}"></span>{{end}}</div>{{if .Truncated}}<small>&hellip; truncated</small>{{end}}</td>
<td class="num">{{.BusyText}}</td><td class="num">{{.IdleText}}</td><td class="num">{{.Steals}}</td></tr>
{{end}}
</table>
{{if .LaneDropped}}<p><small>{{.LaneDropped}} segments dropped at the timeline cap.</small></p>{{end}}
{{else}}
<p>No parallel job has completed yet &mdash; lanes appear once a job runs with parallelism &ge; 2.</p>
{{end}}
</div>

<h2>SMT slow queries{{if .SlowThresholdMS}} (&ge; {{printf "%.1f" .SlowThresholdMS}} ms){{end}}</h2>
<div class="panel">
{{if .Slow}}
<p>{{.SlowTotal}} logged since start; newest first.</p>
<table>
<tr><th>#</th><th>kind</th><th>formula</th><th>result</th><th>ms</th><th>replayed</th><th>learned</th><th>cube</th></tr>
{{range .Slow}}
<tr><td class="num">{{.Seq}}</td><td>{{.Kind}}</td><td class="num">{{.FormulaID}}</td>
<td>{{.Result}}</td><td class="num">{{printf "%.2f" .DurationMS}}</td>
<td class="num">{{.Replayed}}</td><td class="num">{{.Learned}}</td>
<td><code>{{.CubeKey}}</code></td></tr>
{{end}}
</table>
{{else if .SlowThresholdMS}}
<p>No solve has exceeded the threshold.</p>
{{else}}
<p>Slow-query capture is off &mdash; start circd with <code>-smt-slowlog</code> to enable it.</p>
{{end}}
</div>

<h2>Completed jobs (last {{len .Ring}}{{if .Evicted}}, {{.Evicted}} aged out{{end}})</h2>
<div class="panel">
<table>
<tr><th>job</th><th>state</th><th>targets</th><th>safe</th><th>unsafe</th><th>unknown</th>
<th>errors</th><th>reused</th><th>iters</th><th>events</th><th>SMT</th><th>elapsed</th><th class="barcell">latency</th></tr>
{{range .Ring}}
<tr><td>{{.ID}}</td><td><span class="verdict verdict-{{.State}}">{{.State}}</span></td>
<td class="num">{{.Targets}}</td><td class="num">{{.Safe}}</td><td class="num">{{.Unsafe}}</td>
<td class="num">{{.Unknown}}</td><td class="num">{{.Errors}}</td>
<td class="num">{{.CertificatesReused}}</td><td class="num">{{.CIRCIterations}}</td><td class="num">{{.JournalEvents}}</td>
<td class="num">{{.SMTSolve}}</td><td class="num">{{.Elapsed}}</td>
<td class="barcell"><span class="bar" style="width: {{.BarPct}}%"></span></td></tr>
{{end}}
</table>
</div>

<h2>Watermark trend (oldest &rarr; newest, sampled at job completion)</h2>
<div class="panel">
<table>
<tr><th>job</th><th>store</th><th class="barcell"></th><th>arena</th><th class="barcell"></th></tr>
{{range .Trend}}
<tr><td>{{.ID}}</td><td class="num">{{.StoreText}}</td>
<td class="barcell"><span class="bar bar-store" style="width: {{.StorePct}}%"></span></td>
<td class="num">{{.ArenaText}}</td>
<td class="barcell"><span class="bar bar-arena" style="width: {{.ArenaPct}}%"></span></td></tr>
{{end}}
</table>
</div>
</body>
</html>
`))
