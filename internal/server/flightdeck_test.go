package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"circ"
	apiv1 "circ/api/v1"
	"circ/internal/journal"
)

// newFlightDeckServer builds a server whose checker captures every SMT
// solve in the slow-query log (1ns threshold).
func newFlightDeckServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{
		Checker: circ.NewChecker(
			circ.WithCertStore(circ.NewCertStore()),
			circ.WithParallelism(1),
			circ.WithSMTSlowLog(time.Nanosecond)),
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// submitTraced posts a CheckRequest with a traceparent header and returns
// the acknowledgement plus the response's Traceparent header.
func submitTraced(t *testing.T, ts *httptest.Server, req apiv1.CheckRequest, traceparent string) (apiv1.SubmitResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/check", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var ack apiv1.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack, resp.Header.Get("Traceparent")
}

// TestTracePropagation is the end-to-end flight-deck check: a submit
// carrying a W3C traceparent yields a job whose Chrome trace export has
// per-worker scheduler lanes and SMT spans stamped with the caller's
// trace ID, a non-empty slow-query log attributed to the same trace, and
// stats/ring entries that surface the identity.
func TestTracePropagation(t *testing.T) {
	_, ts := newFlightDeckServer(t)
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const parent = "00-" + traceID + "-00f067aa0ba902b7-01"

	// A single target with parallelism > 1 exercises the work-stealing
	// pool, which is what populates the worker timeline lanes.
	ack, echoed := submitTraced(t, ts, apiv1.CheckRequest{
		Program: tasSrc,
		Targets: []apiv1.Target{{Variable: "x"}},
		Options: &apiv1.Options{Parallelism: 4, Triage: "off"},
	}, parent)
	if ack.TraceID != traceID {
		t.Fatalf("ack trace_id = %q, want caller's %q", ack.TraceID, traceID)
	}
	if ack.TraceURL == "" || !strings.HasSuffix(ack.TraceURL, "/trace") {
		t.Fatalf("ack trace_url = %q", ack.TraceURL)
	}
	if !strings.Contains(echoed, traceID) {
		t.Fatalf("response Traceparent %q does not carry trace id", echoed)
	}

	job := await(t, ts, ack.JobURL)
	if job.State != apiv1.StateDone {
		t.Fatalf("job state = %s", job.State)
	}
	if job.TraceID != traceID || job.TraceURL != ack.TraceURL {
		t.Fatalf("job identity = %q %q", job.TraceID, job.TraceURL)
	}

	// The trace export must validate, carry the caller's trace ID, and
	// include worker lanes and SMT spans.
	resp, err := http.Get(ts.URL + ack.TraceURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	if !strings.Contains(resp.Header.Get("Traceparent"), traceID) {
		t.Fatalf("trace response Traceparent = %q", resp.Header.Get("Traceparent"))
	}
	var buf bytes.Buffer
	if n, err := journal.ValidateTrace(io.TeeReader(resp.Body, &buf)); err != nil || n == 0 {
		t.Fatalf("ValidateTrace = %d, %v", n, err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if file.OtherData["trace_id"] != traceID {
		t.Fatalf("trace otherData = %v", file.OtherData)
	}
	var lanes, smtSpans int
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" {
			if name, _ := ev.Args["name"].(string); strings.HasPrefix(name, "reach.worker.") {
				lanes++
			}
			continue
		}
		if strings.HasPrefix(ev.Name, "smt.") {
			smtSpans++
		}
	}
	if lanes < 2 {
		t.Fatalf("trace has %d worker lanes, want >= 2", lanes)
	}
	if smtSpans == 0 {
		t.Fatal("trace has no SMT spans")
	}

	// The slow-query log is non-empty at a 1ns threshold and attributes
	// entries to the job's trace.
	var slow apiv1.SlowLog
	getJSON(t, ts, "/debug/circ/slowlog", &slow)
	if slow.Total == 0 || len(slow.Entries) == 0 {
		t.Fatalf("slowlog empty: %+v", slow)
	}
	var attributed bool
	for _, e := range slow.Entries {
		if e.TraceID == traceID {
			attributed = true
			break
		}
	}
	if !attributed {
		t.Fatalf("no slowlog entry carries trace %s", traceID)
	}

	// Stats surface the counter and build identity.
	var stats apiv1.Stats
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.SMT.SlowQueries == 0 {
		t.Fatal("stats.smt.slow_queries = 0")
	}
	if stats.Build.Version == "" || stats.Build.GoVersion == "" || stats.Build.Sched == "" || stats.Build.GOMAXPROCS < 1 {
		t.Fatalf("stats.build = %+v", stats.Build)
	}

	// The job ring records the trace identity and timeline size.
	var list apiv1.JobList
	getJSON(t, ts, "/v1/jobs", &list)
	if len(list.Jobs) != 1 {
		t.Fatalf("ring has %d jobs", len(list.Jobs))
	}
	if list.Jobs[0].TraceID != traceID || list.Jobs[0].TimelineSegments == 0 {
		t.Fatalf("ring summary = %+v", list.Jobs[0])
	}
}

// TestSubmitMintsTraceID: with no traceparent header, the daemon mints a
// valid identity of its own.
func TestSubmitMintsTraceID(t *testing.T) {
	_, ts := newTestServer(t)
	ack, echoed := submitTraced(t, ts, apiv1.CheckRequest{Program: racySrc}, "")
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(ack.TraceID) {
		t.Fatalf("minted trace_id = %q", ack.TraceID)
	}
	if !strings.Contains(echoed, ack.TraceID) {
		t.Fatalf("Traceparent %q does not carry minted id %q", echoed, ack.TraceID)
	}
	await(t, ts, ack.JobURL)
}

// TestJobsPaginationEdges covers the listing's boundary cases.
func TestJobsPaginationEdges(t *testing.T) {
	_, ts := newTestServer(t)

	// Empty ring with a state filter: well-formed, zero total.
	var list apiv1.JobList
	getJSON(t, ts, "/v1/jobs?state=done", &list)
	if list.Total != 0 || len(list.Jobs) != 0 {
		t.Fatalf("empty ring list = %+v", list)
	}

	ack := submit(t, ts, apiv1.CheckRequest{Program: racySrc})
	await(t, ts, ack.JobURL)

	// Offset beyond the ring: empty page, total intact.
	getJSON(t, ts, "/v1/jobs?offset=50", &list)
	if list.Total != 1 || len(list.Jobs) != 0 {
		t.Fatalf("offset-beyond list = %+v", list)
	}

	// limit=0 yields an empty page without disturbing total.
	getJSON(t, ts, "/v1/jobs?limit=0", &list)
	if list.Total != 1 || len(list.Jobs) != 0 {
		t.Fatalf("limit=0 list = total %d, %d jobs", list.Total, len(list.Jobs))
	}
}

// TestBuildInfoMetric: /metrics exposes the circ_build_info gauge with
// version and scheduler labels.
func TestBuildInfoMetric(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	want := fmt.Sprintf("circ_build_info{version=%q", circ.Version)
	if !strings.Contains(body, want) {
		t.Fatalf("/metrics missing %s...: %s", want, body)
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "circ_build_info{") {
			if !strings.Contains(line, `sched="`) || !strings.HasSuffix(strings.TrimSpace(line), " 1") {
				t.Fatalf("build_info line malformed: %q", line)
			}
			return
		}
	}
	t.Fatal("no circ_build_info sample line")
}

// getJSON fetches a URL from the test server and decodes the body.
func getJSON(t *testing.T, ts *httptest.Server, path string, into any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}
