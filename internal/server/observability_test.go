package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"circ"
	apiv1 "circ/api/v1"
	"circ/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// get fetches a URL and returns the body and status.
func get(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode
}

// deterministicSeries lists exposition series whose values are fixed for
// the golden job sequence (two identical tasSrc submissions, the second
// warm): job outcomes, store traffic, and lifetime target counters. All
// other sample values are timing-dependent and normalized to "V".
var deterministicSeries = []string{
	"circ_jobs_total{",
	"circ_jobs_targets_total{",
	"circ_jobs_certs_reused_total",
	"circ_jobs_ring_evicted_total",
	"circ_store_hits_total",
	"circ_store_misses_total",
	"circ_store_writes_total",
	"circ_store_evictions_total",
	"circ_store_revalidations_total",
	"circ_store_revalidation_failures_total",
	"circ_store_entries ",
	"circ_store_max_entries ",
	"circ_jobs_active ",
}

// normalizeExposition keeps family structure (TYPE lines, series names,
// labels, bucket ladders, ordering) and replaces timing-valued samples
// with "V", leaving the deterministic allowlist intact.
func normalizeExposition(b []byte) []byte {
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			out.WriteString(line)
			out.WriteByte('\n')
			continue
		}
		// build_info's labels (go toolchain, gomaxprocs) vary by
		// environment; keep the family, normalize the label set.
		if strings.HasPrefix(line, "circ_build_info{") {
			out.WriteString("circ_build_info{LABELS} V\n")
			continue
		}
		keep := false
		for _, pfx := range deterministicSeries {
			if strings.HasPrefix(line, pfx) {
				keep = true
				break
			}
		}
		if keep {
			out.WriteString(line)
		} else if i := strings.LastIndexByte(line, ' '); i >= 0 {
			out.WriteString(line[:i] + " V")
		} else {
			out.WriteString(line)
		}
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// runGoldenSequence drives the fixed job sequence the metrics golden is
// recorded against: the same program submitted twice, so the second job
// re-establishes both verdicts from the certificate store.
func runGoldenSequence(t *testing.T, ts *httptest.Server) apiv1.Job {
	t.Helper()
	// Triage off: the golden sequence exercises the engine and the
	// certificate store, which the flag-guard rule would short-circuit.
	ack := submit(t, ts, apiv1.CheckRequest{Program: tasSrc,
		Options: &apiv1.Options{Triage: "off"}})
	await(t, ts, ack.JobURL)
	ack = submit(t, ts, apiv1.CheckRequest{Program: tasSrc,
		Options: &apiv1.Options{Triage: "off"}})
	return await(t, ts, ack.JobURL)
}

// TestMetricsGolden locks the /metrics exposition's structure for a
// fixed job sequence: family names, TYPE lines, label sets, and bucket
// ladders are byte-stable; only timing-valued samples are normalized.
// Regenerate with -update after intentional metric changes.
func TestMetricsGolden(t *testing.T) {
	_, ts := newTestServer(t)
	warm := runGoldenSequence(t, ts)
	for _, res := range warm.Results {
		if !res.CertificateReused {
			t.Fatalf("warm target %s/%s not reused: %+v", res.Thread, res.Variable, res)
		}
	}

	// Scrape twice: the first scrape creates /metrics' own request
	// instruments (latency is observed after the handler returns), so
	// the second scrape sees the complete family set.
	get(t, ts.URL+"/metrics")
	body, code := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := telemetry.LintPrometheus(bytes.NewReader(body)); err != nil {
		t.Fatalf("exposition fails lint: %v", err)
	}

	got := normalizeExposition(body)
	golden := filepath.Join("testdata", "metrics_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("normalized exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestMetricsWarmHitVisible is the acceptance check: a warm
// re-submission of an unchanged program shows up in /metrics as
// certificate-store hits, and the warm job re-established every verdict
// without re-running inference.
func TestMetricsWarmHitVisible(t *testing.T) {
	_, ts := newTestServer(t)
	runGoldenSequence(t, ts)
	body, _ := get(t, ts.URL+"/metrics")
	hits := sampleValue(t, body, "circ_store_hits_total")
	if hits < 1 {
		t.Fatalf("circ_store_hits_total = %v after warm re-submission, want >= 1", hits)
	}
	reused := sampleValue(t, body, "circ_jobs_certs_reused_total")
	if reused < 2 {
		t.Fatalf("circ_jobs_certs_reused_total = %v, want the warm job's 2 targets", reused)
	}
	// The warm job ran zero CIRC iterations: every verdict came from the
	// store, and the ring record proves it.
	var list apiv1.JobList
	listBody, _ := get(t, ts.URL+"/v1/jobs?state=done")
	if err := json.Unmarshal(listBody, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("ring has %d done jobs, want 2", len(list.Jobs))
	}
	warmRec, coldRec := list.Jobs[0], list.Jobs[1] // newest first
	if coldRec.CIRCIterations == 0 {
		t.Errorf("cold job %s reports 0 CIRC iterations", coldRec.ID)
	}
	if warmRec.CIRCIterations != 0 {
		t.Errorf("warm job %s ran %d CIRC iterations, want 0", warmRec.ID, warmRec.CIRCIterations)
	}
}

// sampleValue extracts an unlabeled sample's value from an exposition.
func sampleValue(t *testing.T, body []byte, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition", series)
	return 0
}

// TestJobsRing: GET /v1/jobs pages the completed-job ring newest first,
// filters by state, evicts oldest records beyond the ring bound, and
// rejects bad parameters.
func TestJobsRing(t *testing.T) {
	srv := New(Config{
		Checker: circ.NewChecker(circ.WithCertStore(circ.NewCertStore()), circ.WithParallelism(1)),
		JobRing: 2,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var ids []string
	for i := 0; i < 3; i++ {
		ack := submit(t, ts, apiv1.CheckRequest{Program: racySrc})
		await(t, ts, ack.JobURL)
		ids = append(ids, ack.JobID)
	}

	var list apiv1.JobList
	body, code := get(t, ts.URL+"/v1/jobs?state=done")
	if code != http.StatusOK {
		t.Fatalf("/v1/jobs status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 2 || list.Evicted != 1 || len(list.Jobs) != 2 {
		t.Fatalf("ring bound not enforced: total=%d evicted=%d jobs=%d",
			list.Total, list.Evicted, len(list.Jobs))
	}
	// Newest first: the first submitted job aged out.
	if list.Jobs[0].ID != ids[2] || list.Jobs[1].ID != ids[1] {
		t.Fatalf("order = %s, %s; want %s, %s", list.Jobs[0].ID, list.Jobs[1].ID, ids[2], ids[1])
	}
	for _, j := range list.Jobs {
		if j.State != apiv1.StateDone || j.Targets != 1 || j.Unsafe != 1 {
			t.Fatalf("ring record = %+v", j)
		}
	}

	// Pagination: limit=1 offset=1 returns the second-newest record.
	body, _ = get(t, ts.URL+"/v1/jobs?limit=1&offset=1")
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != ids[1] || list.Offset != 1 {
		t.Fatalf("page = %+v", list)
	}

	// No failed jobs ran: the filter matches nothing but still answers.
	body, _ = get(t, ts.URL+"/v1/jobs?state=failed")
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 0 || len(list.Jobs) != 0 {
		t.Fatalf("state=failed matched %d", list.Total)
	}

	for _, bad := range []string{"?state=bogus", "?limit=-1", "?offset=x"} {
		if _, code := get(t, ts.URL+"/v1/jobs"+bad); code != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s = %d, want 400", bad, code)
		}
	}
}

// TestMetricsConcurrentScrape hammers /metrics, /v1/jobs, and the ops
// dashboard while jobs run — the -race guard for scrape-vs-work
// interleavings.
func TestMetricsConcurrentScrape(t *testing.T) {
	_, ts := newTestServer(t)
	var acks []apiv1.SubmitResponse
	for i := 0; i < 3; i++ {
		acks = append(acks, submit(t, ts, apiv1.CheckRequest{Program: tasSrc}))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				body, code := get(t, ts.URL+"/metrics")
				if code != http.StatusOK {
					t.Errorf("/metrics status %d", code)
					return
				}
				if err := telemetry.LintPrometheus(bytes.NewReader(body)); err != nil {
					t.Errorf("mid-run exposition fails lint: %v", err)
					return
				}
				get(t, ts.URL+"/v1/jobs")
				get(t, ts.URL+"/debug/circ/ops")
			}
		}()
	}
	for _, ack := range acks {
		await(t, ts, ack.JobURL)
	}
	wg.Wait()
}

// TestOpsDashboard: the dashboard renders the ring, quantiles, and
// watermarks without scripts.
func TestOpsDashboard(t *testing.T) {
	_, ts := newTestServer(t)
	warm := runGoldenSequence(t, ts)
	body, code := get(t, ts.URL+"/debug/circ/ops")
	if code != http.StatusOK {
		t.Fatalf("/debug/circ/ops status %d", code)
	}
	page := string(body)
	for _, want := range []string{
		"circd ops", warm.ID, "Certificate store", "Watermark trend",
		"verdicts re-established from certificates",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(page, "<script") {
		t.Error("dashboard must stay JS-free")
	}
}

// TestDrainFlushesFinalMetrics: the drain path logs one final metrics
// snapshot, exactly once.
func TestDrainFlushesFinalMetrics(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logw := &lockedWriter{w: &buf, mu: &mu}
	srv := New(Config{
		Checker: circ.NewChecker(circ.WithCertStore(circ.NewCertStore()), circ.WithParallelism(1)),
		Logger:  slog.New(slog.NewTextHandler(logw, nil)),
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	ack := submit(t, ts, apiv1.CheckRequest{Program: racySrc})
	await(t, ts, ack.JobURL)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(ctx); err != nil { // idempotent; must not re-flush
		t.Fatal(err)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if n := strings.Count(logged, "final metrics snapshot"); n != 1 {
		t.Fatalf("final snapshot logged %d times, want 1\n%s", n, logged)
	}
	if !strings.Contains(logged, "store.hits") {
		t.Fatalf("final snapshot misses store counters:\n%s", logged)
	}
}

type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestGaugeAddInFlight: the middleware's in-flight gauge returns to zero
// once requests finish.
func TestGaugeAddInFlight(t *testing.T) {
	srv, ts := newTestServer(t)
	get(t, ts.URL+"/v1/stats")
	get(t, ts.URL+"/v1/stats")
	if v := srv.reg.Gauge(fmt.Sprintf(`http.in_flight{endpoint=%q}`, "/v1/stats")).Value(); v != 0 {
		t.Fatalf("in-flight gauge = %d after requests completed, want 0", v)
	}
	snap := srv.reg.Snapshot()
	if c := snap.Counters[`http.requests{endpoint="/v1/stats",code="200"}`]; c != 2 {
		t.Fatalf("request counter = %d, want 2", c)
	}
}
