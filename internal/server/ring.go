package server

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	apiv1 "circ/api/v1"
	"circ/internal/journal"
)

// jobRing retains the flight data of the last N completed jobs — the
// compact per-job records behind GET /v1/jobs and the ops dashboard.
// It is deliberately separate from Server.jobs (the full-state index the
// polling endpoints serve): a job's full state is heavy (journal, batch
// report, parsed program) and is evicted aggressively, while the ring
// record is a few hundred bytes and survives long enough to show trends.
type jobRing struct {
	mu    sync.Mutex
	buf   []apiv1.JobSummary
	next  int   // index of the slot the next add overwrites
	added int64 // total records ever added
}

func newJobRing(capacity int) *jobRing {
	return &jobRing{buf: make([]apiv1.JobSummary, 0, capacity)}
}

// add records one completed job, overwriting the oldest record once the
// ring is full.
func (r *jobRing) add(rec apiv1.JobSummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.added++
}

// snapshot returns the retained records, newest first.
func (r *jobRing) snapshot() []apiv1.JobSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]apiv1.JobSummary, 0, len(r.buf))
	// Oldest-first order is buf[next:] then buf[:next]; walk it backwards.
	for i := len(r.buf) - 1; i >= 0; i-- {
		out = append(out, r.buf[(r.next+i)%len(r.buf)])
	}
	return out
}

// evicted counts completed jobs whose records have aged out of the ring.
func (r *jobRing) evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.added - int64(len(r.buf))
}

// handleJobs lists the completed-job ring, newest first, with optional
// ?state= filtering and ?limit=/?offset= pagination.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := q.Get("state")
	switch state {
	case "", apiv1.StateDone, apiv1.StateFailed, apiv1.StateCancelled:
	default:
		writeError(w, http.StatusBadRequest, "invalid_request",
			"state: invalid value "+strconv.Quote(state)+` (want "done", "failed", or "cancelled")`)
		return
	}
	limit, err := queryInt(q.Get("limit"), 50)
	if err != nil || limit < 0 {
		writeError(w, http.StatusBadRequest, "invalid_request", "limit: must be a non-negative integer")
		return
	}
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil || offset < 0 {
		writeError(w, http.StatusBadRequest, "invalid_request", "offset: must be a non-negative integer")
		return
	}

	recs := s.ring.snapshot()
	if state != "" {
		kept := recs[:0]
		for _, rec := range recs {
			if rec.State == state {
				kept = append(kept, rec)
			}
		}
		recs = kept
	}
	list := apiv1.JobList{
		Total:   len(recs),
		Offset:  offset,
		Evicted: s.ring.evicted(),
		Jobs:    []apiv1.JobSummary{},
	}
	if offset < len(recs) {
		end := offset + limit
		if end > len(recs) {
			end = len(recs)
		}
		list.Jobs = recs[offset:end]
	}
	writeJSON(w, http.StatusOK, list)
}

func queryInt(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

// summarizeJob builds the ring record for a finished job. Caller holds
// j.mu.
func summarizeJob(j *job) apiv1.JobSummary {
	rec := apiv1.JobSummary{
		ID:          j.id,
		State:       j.state,
		Error:       j.errMsg,
		SubmittedAt: j.sub,
		Summary:     j.summary,
		TraceID:     j.tc.TraceID,
	}
	rec.TimelineSegments = j.timeline.Len()
	if j.done != nil {
		rec.FinishedAt = *j.done
	}
	rec.ElapsedSeconds = j.elapsed.Seconds()
	rec.JournalEvents = j.journal.Len()
	rec.CIRCIterations = j.journal.CountType(journal.EvIterationStart)
	if j.batch != nil {
		rec.SMTSolveSeconds = time.Duration(
			j.batch.Metrics.Histograms["smt.solve"].SumNanos).Seconds()
	}
	for _, res := range j.results {
		rec.Targets++
		switch res.Verdict {
		case "safe":
			rec.Safe++
		case "unsafe":
			rec.Unsafe++
		case "unknown":
			rec.Unknown++
		default:
			rec.Errors++
		}
		if res.CertificateReused {
			rec.CertificatesReused++
		}
	}
	return rec
}
