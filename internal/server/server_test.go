package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"circ"
	apiv1 "circ/api/v1"
	"circ/internal/benchapps"
)

// tasSrc is the paper's test-and-set protocol plus one racy global, so a
// batch has both a proved-safe and a proved-unsafe target.
const tasSrc = `
global int x;
global int state;

thread Worker {
  local int old;
  while (1) {
    atomic {
      old = state;
      if (state == 0) { state = 1; }
    }
    if (old == 0) {
      x = x + 1;
      state = 0;
    }
  }
}
`

const racySrc = `
global int x;

thread Worker {
  while (1) { x = x + 1; }
}
`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{
		Checker: circ.NewChecker(circ.WithCertStore(circ.NewCertStore()), circ.WithParallelism(1)),
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// submit posts a CheckRequest and decodes the acknowledgement.
func submit(t *testing.T, ts *httptest.Server, req apiv1.CheckRequest) apiv1.SubmitResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e apiv1.Error
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d (%s: %s)", resp.StatusCode, e.Code, e.Message)
	}
	var ack apiv1.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.JobID == "" || ack.State != apiv1.StateQueued {
		t.Fatalf("submit ack = %+v", ack)
	}
	return ack
}

// await polls the job endpoint until the job reaches a terminal state.
func await(t *testing.T, ts *httptest.Server, jobURL string) apiv1.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + jobURL)
		if err != nil {
			t.Fatal(err)
		}
		var j apiv1.Job
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch j.State {
		case apiv1.StateDone, apiv1.StateFailed, apiv1.StateCancelled:
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: state %s", jobURL, j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sseEvents fetches a finished job's journal from the SSE endpoint and
// decodes every data frame.
func sseEvents(t *testing.T, ts *httptest.Server, jobURL string) []map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + jobURL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	var out []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e map[string]any
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRoundTrip: submit -> poll -> done, with per-target verdicts, the
// SSE journal, the HTML report, and /v1/stats all consistent.
func TestRoundTrip(t *testing.T) {
	// Triage off: the flag-guard rule would discharge both targets
	// statically, and this test exercises the engine, store, and SMT
	// surfaces end to end.
	_, ts := newTestServer(t)
	ack := submit(t, ts, apiv1.CheckRequest{Program: tasSrc,
		Options: &apiv1.Options{Triage: "off"}})
	job := await(t, ts, ack.JobURL)
	if job.State != apiv1.StateDone || job.Error != "" {
		t.Fatalf("job = %+v", job)
	}
	if job.StartedAt == nil || job.FinishedAt == nil || job.ElapsedSeconds <= 0 {
		t.Fatalf("missing timestamps: %+v", job)
	}
	// One result per (thread, global) pair, in program order.
	verdicts := map[string]apiv1.TargetResult{}
	for _, r := range job.Results {
		verdicts[r.Variable] = r
	}
	if len(job.Results) != 2 {
		t.Fatalf("results = %+v", job.Results)
	}
	if v := verdicts["x"]; v.Verdict != "safe" || v.Preds == 0 || v.CertificateReused {
		t.Fatalf("x: %+v", v)
	}
	// state is written only inside atomic sections or under the protocol;
	// whatever its verdict, the summary and elapsed fields must be filled.
	if v := verdicts["state"]; v.Summary == "" || v.ElapsedSeconds < 0 {
		t.Fatalf("state: %+v", v)
	}
	if !strings.Contains(job.Summary, "Worker/x") {
		t.Fatalf("summary = %q", job.Summary)
	}

	events := sseEvents(t, ts, ack.JobURL)
	var sawVerdict bool
	for _, e := range events {
		if e["type"] == "verdict" {
			sawVerdict = true
		}
	}
	if !sawVerdict {
		t.Fatalf("journal SSE stream carries no verdict events (%d events)", len(events))
	}

	resp, err := http.Get(ts.URL + ack.JobURL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	html, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(html, "Worker/x") {
		t.Fatalf("report: status %d, body %.120s", resp.StatusCode, html)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats apiv1.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Jobs.Submitted != 1 || stats.Jobs.Done != 1 || stats.Jobs.Active != 0 {
		t.Fatalf("job stats = %+v", stats.Jobs)
	}
	if stats.Arena.Nodes == 0 || stats.SMT.Hits+stats.SMT.Misses == 0 {
		t.Fatalf("arena/smt stats empty: %+v", stats)
	}
	if stats.Store.Writes == 0 {
		t.Fatalf("store stats = %+v", stats.Store)
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var sb strings.Builder
	_, err := bufio.NewReader(resp.Body).WriteTo(&sb)
	return sb.String(), err
}

// TestSubmitErrors covers the error contract: malformed body, missing
// program, parse errors, unknown targets, unknown jobs.
func TestSubmitErrors(t *testing.T) {
	_, ts := newTestServer(t)
	post := func(body string) (int, apiv1.Error) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e apiv1.Error
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e
	}
	if code, e := post("{"); code != http.StatusBadRequest || e.Code != "invalid_request" {
		t.Fatalf("malformed: %d %+v", code, e)
	}
	if code, e := post(`{}`); code != http.StatusBadRequest || e.Code != "invalid_request" {
		t.Fatalf("empty: %d %+v", code, e)
	}
	if code, e := post(`{"program": "global int"}`); code != http.StatusUnprocessableEntity || e.Code != "parse_error" {
		t.Fatalf("parse: %d %+v", code, e)
	}
	req, _ := json.Marshal(apiv1.CheckRequest{Program: tasSrc, Targets: []apiv1.Target{{Variable: "nope"}}})
	if code, e := post(string(req)); code != http.StatusUnprocessableEntity || e.Code != "unknown_target" {
		t.Fatalf("target: %d %+v", code, e)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
}

// TestColdWarmResubmit: the warm re-submission of an unchanged program
// performs zero CIRC iterations — every non-triaged verdict is served
// from the certificate store — and its verdicts are identical to the
// cold run's, with certificate_reused set and certificate_reused journal
// events present.
func TestColdWarmResubmit(t *testing.T) {
	srv, ts := newTestServer(t)
	// Triage off so the targets actually reach the certificate store.
	req := apiv1.CheckRequest{Program: tasSrc,
		Options: &apiv1.Options{Triage: "off"}}

	coldAck := submit(t, ts, req)
	cold := await(t, ts, coldAck.JobURL)
	if cold.State != apiv1.StateDone {
		t.Fatalf("cold: %+v", cold)
	}
	for _, r := range cold.Results {
		if r.CertificateReused {
			t.Fatalf("cold run claims certificate reuse: %+v", r)
		}
	}

	warmAck := submit(t, ts, req)
	warm := await(t, ts, warmAck.JobURL)
	if warm.State != apiv1.StateDone {
		t.Fatalf("warm: %+v", warm)
	}
	if len(warm.Results) != len(cold.Results) {
		t.Fatalf("result count drifted: %d vs %d", len(cold.Results), len(warm.Results))
	}
	nonTriaged := 0
	for i, c := range cold.Results {
		w := warm.Results[i]
		if c.Thread != w.Thread || c.Variable != w.Variable {
			t.Fatalf("result order drifted: %+v vs %+v", c, w)
		}
		if c.Verdict != w.Verdict || c.K != w.K || c.Preds != w.Preds || c.Rounds != w.Rounds {
			t.Fatalf("%s/%s: verdict drifted cold %+v warm %+v", c.Thread, c.Variable, c, w)
		}
		if c.Triage != "" {
			if w.CertificateReused {
				t.Fatalf("%s/%s: triaged target claims certificate reuse", w.Thread, w.Variable)
			}
			continue
		}
		nonTriaged++
		if !w.CertificateReused {
			t.Fatalf("%s/%s: warm verdict not served from the certificate store: %+v", w.Thread, w.Variable, w)
		}
	}
	if nonTriaged == 0 {
		t.Fatalf("no non-triaged targets; store path unexercised")
	}

	// The warm journal: certificate_reused events for every non-triaged
	// target, zero inference iterations anywhere.
	events := sseEvents(t, ts, warmAck.JobURL)
	reused, iterations := 0, 0
	for _, e := range events {
		switch e["type"] {
		case "certificate_reused":
			reused++
		case "iteration_start":
			iterations++
		}
	}
	if reused != nonTriaged || iterations != 0 {
		t.Fatalf("warm journal: %d certificate_reused (want %d), %d iteration_start (want 0)",
			reused, nonTriaged, iterations)
	}

	stats := srv.base.CertStore().Stats()
	if stats.Hits < int64(nonTriaged) || stats.RevalidationFailures != 0 {
		t.Fatalf("store stats = %+v; want >=%d hits, 0 revalidation failures", stats, nonTriaged)
	}
}

// TestTargetRestriction: a request naming targets runs exactly those.
func TestTargetRestriction(t *testing.T) {
	_, ts := newTestServer(t)
	ack := submit(t, ts, apiv1.CheckRequest{
		Program: tasSrc,
		Targets: []apiv1.Target{{Thread: "Worker", Variable: "x"}},
	})
	job := await(t, ts, ack.JobURL)
	if job.State != apiv1.StateDone || len(job.Results) != 1 {
		t.Fatalf("job = %+v", job)
	}
	if r := job.Results[0]; r.Thread != "Worker" || r.Variable != "x" || r.Verdict != "safe" {
		t.Fatalf("result = %+v", r)
	}
}

// TestTriageStatsAndSeededPreds: the /v1/stats triage section counts
// flag-guard discharges by reason, and a pair the guard analysis cannot
// discharge ships its exported seed predicates over the wire — in the
// target result, the stats, and the journal's predicate_seeded events.
func TestTriageStatsAndSeededPreds(t *testing.T) {
	_, ts := newTestServer(t)

	// Default pipeline: both tasSrc targets are flag-guarded.
	job := await(t, ts, submit(t, ts, apiv1.CheckRequest{Program: tasSrc}).JobURL)
	if job.State != apiv1.StateDone {
		t.Fatalf("job = %+v", job)
	}
	for _, r := range job.Results {
		if r.Triage != "flag-guarded" {
			t.Fatalf("%s/%s: triage = %q, want flag-guarded", r.Thread, r.Variable, r.Triage)
		}
	}
	st := getStats(t, ts)
	if st.Triage.Discharged < 2 || st.Triage.ByReason["flag-guarded"] < 2 {
		t.Fatalf("triage stats = %+v", st.Triage)
	}

	// A residue pair: the modelled sensePort releases its flag through
	// the interrupt handler, beyond the single-flag protocol — so it runs
	// inference, seeded with the handshake predicates.
	sense := benchapps.Get("sense", "tosPort")
	if sense == nil {
		t.Fatal("sense/tosPort benchapp missing")
	}
	ack := submit(t, ts, apiv1.CheckRequest{
		Program: sense.Source,
		Targets: []apiv1.Target{{Variable: "tosPort"}},
	})
	job = await(t, ts, ack.JobURL)
	if job.State != apiv1.StateDone || len(job.Results) != 1 {
		t.Fatalf("job = %+v", job)
	}
	if r := job.Results[0]; r.Triage != "" || r.SeededPreds == 0 {
		t.Fatalf("residue result = %+v, want seeded inference run", r)
	}
	if st = getStats(t, ts); st.Triage.SeededPredicates == 0 {
		t.Fatalf("triage stats after residue run = %+v", st.Triage)
	}
	seeded := 0
	for _, e := range sseEvents(t, ts, ack.JobURL) {
		if e["type"] == "predicate_seeded" {
			if p, _ := e["pred"].(string); p == "" {
				t.Fatalf("predicate_seeded without pred: %+v", e)
			}
			seeded++
		}
	}
	if seeded == 0 {
		t.Fatal("journal carries no predicate_seeded events")
	}
}

// TestRacyVerdictCarriesTrace: unsafe verdicts ship the interleaved race
// trace over the wire.
func TestRacyVerdictCarriesTrace(t *testing.T) {
	_, ts := newTestServer(t)
	ack := submit(t, ts, apiv1.CheckRequest{Program: racySrc})
	job := await(t, ts, ack.JobURL)
	if job.State != apiv1.StateDone || len(job.Results) != 1 {
		t.Fatalf("job = %+v", job)
	}
	r := job.Results[0]
	if r.Verdict != "unsafe" || r.Race == "" {
		t.Fatalf("result = %+v", r)
	}
}

// TestDrain: draining rejects new submissions with 503 while accepted
// jobs run to completion and stay pollable.
func TestDrain(t *testing.T) {
	srv, ts := newTestServer(t)
	ack := submit(t, ts, apiv1.CheckRequest{Program: tasSrc})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The in-flight job completed during the drain.
	job := await(t, ts, ack.JobURL)
	if job.State != apiv1.StateDone {
		t.Fatalf("in-flight job did not complete: %+v", job)
	}

	// New submissions are rejected...
	body, _ := json.Marshal(apiv1.CheckRequest{Program: tasSrc})
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var e apiv1.Error
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || e.Code != "draining" {
		t.Fatalf("submit while draining: %d %+v", resp.StatusCode, e)
	}

	// ... while results remain readable.
	resp, err = http.Get(ts.URL + ack.JobURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll while drained: %d", resp.StatusCode)
	}
}

// TestJobEviction: finished jobs beyond the retention bound are evicted
// oldest-first; running jobs are never evicted.
func TestJobEviction(t *testing.T) {
	srv := New(Config{
		Checker: circ.NewChecker(circ.WithCertStore(circ.NewCertStore()), circ.WithParallelism(1)),
		MaxJobs: 2,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var acks []apiv1.SubmitResponse
	for i := 0; i < 3; i++ {
		ack := submit(t, ts, apiv1.CheckRequest{
			Program: tasSrc,
			Targets: []apiv1.Target{{Variable: "x"}},
		})
		await(t, ts, ack.JobURL)
		acks = append(acks, ack)
	}
	resp, err := http.Get(ts.URL + acks[0].JobURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("oldest job not evicted: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + acks[2].JobURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("newest job evicted: %d", resp.StatusCode)
	}
}

// TestRequestOptionsValidation rejects bad option spellings.
func TestRequestOptionsValidation(t *testing.T) {
	if _, _, err := requestOptions(&apiv1.Options{Triage: "maybe"}); err == nil {
		t.Fatalf("bad triage spelling accepted")
	}
	if _, _, err := requestOptions(&apiv1.Options{SeedPreds: "sometimes"}); err == nil {
		t.Fatalf("bad seed_preds spelling accepted")
	}
	if _, _, err := requestOptions(&apiv1.Options{TimeoutSeconds: -1}); err == nil {
		t.Fatalf("negative timeout accepted")
	}
	opts, timeout, err := requestOptions(&apiv1.Options{K: 2, Omega: true, Slicing: "off", SeedPreds: "off", TimeoutSeconds: 1.5})
	if err != nil || len(opts) != 4 || timeout != 1500*time.Millisecond {
		t.Fatalf("opts=%d timeout=%v err=%v", len(opts), timeout, err)
	}
}

// getStats fetches and decodes /v1/stats.
func getStats(t *testing.T, ts *httptest.Server) apiv1.Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st apiv1.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestIdleCompaction: with Config.CompactArena, the daemon sweeps the
// expression arena once the last running job finishes — and the sweep
// must not invalidate stored certificates: a warm resubmission is still
// re-established from the store with identical verdicts.
func TestIdleCompaction(t *testing.T) {
	srv := New(Config{
		Checker:      circ.NewChecker(circ.WithCertStore(circ.NewCertStore()), circ.WithParallelism(1)),
		CompactArena: true,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	before := getStats(t, ts).Arena.Compactions
	// Triage off so certificates are actually written and reused.
	req := apiv1.CheckRequest{Program: tasSrc,
		Options: &apiv1.Options{Triage: "off"}}
	cold := await(t, ts, submit(t, ts, req).JobURL)
	if cold.State != apiv1.StateDone {
		t.Fatalf("cold: %+v", cold)
	}
	after := getStats(t, ts)
	if after.Arena.Compactions <= before {
		t.Fatalf("no compaction pass recorded: %d -> %d", before, after.Arena.Compactions)
	}

	// Certificates live in the store, so their formulas are compaction
	// roots: the warm leg must still reuse them.
	warm := await(t, ts, submit(t, ts, req).JobURL)
	if warm.State != apiv1.StateDone {
		t.Fatalf("warm: %+v", warm)
	}
	reused := 0
	for i, w := range warm.Results {
		if c := cold.Results[i]; c.Verdict != w.Verdict {
			t.Fatalf("%s/%s: verdict drifted across compaction: %q -> %q", w.Thread, w.Variable, c.Verdict, w.Verdict)
		}
		if w.CertificateReused {
			reused++
		}
	}
	if reused == 0 {
		t.Fatalf("no certificates reused after compaction: %+v", warm.Results)
	}
	if st := srv.base.CertStore().Stats(); st.RevalidationFailures != 0 {
		t.Fatalf("compaction broke stored certificates: %+v", st)
	}
}
