package server

import (
	"net/http"
	"runtime"
	"sync"
	"time"

	"circ"
	apiv1 "circ/api/v1"
	"circ/internal/telemetry"
)

// Flight-deck endpoints: the per-job Chrome trace_event export and the
// daemon-wide SMT slow-query log. Both serve wall-clock observability
// captured alongside — never inside — the byte-deterministic journal.

// handleTrace serves the job's trace as Chrome trace_event JSON: the
// analysis span tree plus the scheduler timeline as named per-worker
// lanes, every event stamped with the job's trace ID. A running job
// yields a partial trace (the spans and segments recorded so far); load
// the file in chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Traceparent", j.tc.String())
	telemetry.WriteTrace(w, j.tracer, j.timeline) //nolint:errcheck // headers are out
}

// handleSlowlog serves the retained SMT slow-query entries, newest
// first. Capture is enabled by circd's -smt-slowlog flag (or
// circ.WithSMTSlowLog); with a zero threshold the log is always empty.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	queries := s.base.SlowQueries()
	out := apiv1.SlowLog{
		ThresholdMS: float64(s.base.SMTSlowLogThreshold()) / 1e6,
		Total:       s.base.SMTStats().SlowQueries,
		Entries:     make([]apiv1.SlowQueryEntry, 0, len(queries)),
	}
	for _, q := range queries {
		out.Entries = append(out.Entries, apiv1.SlowQueryEntry{
			Seq:             q.Seq,
			At:              q.At,
			FormulaID:       q.FormulaID,
			Kind:            q.Kind,
			CubeKey:         q.CubeKey,
			DurationMS:      q.DurationMS,
			Result:          q.Result,
			ClausesReplayed: q.ClausesReplayed,
			ClausesLearned:  q.ClausesLearned,
			TraceID:         q.TraceID,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// buildInfo identifies the running daemon; the same labels back the
// build_info gauge in /metrics.
func (s *Server) buildInfo() apiv1.BuildInfo {
	return apiv1.BuildInfo{
		Version:    circ.Version,
		GoVersion:  runtime.Version(),
		Sched:      s.base.Scheduler().String(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// laneView retains the most recent completed job's scheduler timeline
// for the ops dashboard: per-worker busy/idle/steal segments, rendered
// as horizontal lanes. One job's worth is enough for a glanceable "what
// did the scheduler just do" panel; the full history is in each job's
// trace export.
type laneView struct {
	mu      sync.Mutex
	jobID   string
	traceID string
	segs    []telemetry.TimelineSegment
	dropped int64
}

func (l *laneView) set(jobID, traceID string, tl *telemetry.Timeline) {
	segs := tl.Segments()
	if len(segs) == 0 {
		return // keep the last job that actually ran parallel workers
	}
	l.mu.Lock()
	l.jobID, l.traceID, l.segs, l.dropped = jobID, traceID, segs, tl.Dropped()
	l.mu.Unlock()
}

func (l *laneView) get() (jobID, traceID string, segs []telemetry.TimelineSegment, dropped int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.jobID, l.traceID, l.segs, l.dropped
}

// laneRowsOf folds timeline segments into the dashboard's per-lane rows:
// every segment becomes a positioned span sized relative to the job's
// timeline extent. Steal marks get a fixed sliver width so they stay
// visible at any scale.
func laneRowsOf(segs []telemetry.TimelineSegment) []laneRow {
	if len(segs) == 0 {
		return nil
	}
	var total time.Duration
	for _, sg := range segs {
		if end := sg.Start + sg.Dur; end > total {
			total = end
		}
	}
	if total <= 0 {
		return nil
	}
	byLane := make(map[string]*laneRow)
	var rows []laneRow
	order := make(map[string]int)
	for _, sg := range segs {
		row, ok := byLane[sg.Lane]
		if !ok {
			order[sg.Lane] = len(rows)
			rows = append(rows, laneRow{Name: sg.Lane})
			row = &rows[len(rows)-1]
			byLane[sg.Lane] = row
		} else {
			row = &rows[order[sg.Lane]]
		}
		if len(row.Spans) >= maxLaneSpans {
			row.Truncated = true
			continue
		}
		span := laneSpan{
			Kind:    sg.Kind,
			LeftPct: pct(sg.Start, total),
			Title:   sg.Kind + " " + sg.Dur.Round(time.Microsecond).String(),
		}
		if sg.Dur == 0 { // instantaneous steal mark
			span.WidthPct = 0.3
			span.Title = sg.Kind
		} else {
			span.WidthPct = pct(sg.Dur, total)
			if span.WidthPct < 0.2 {
				span.WidthPct = 0.2
			}
		}
		row.Spans = append(row.Spans, span)
		switch sg.Kind {
		case telemetry.SegBusy:
			row.Busy += sg.Dur
		case telemetry.SegIdle:
			row.Idle += sg.Dur
		case telemetry.SegSteal:
			row.Steals++
		}
	}
	for i := range rows {
		rows[i].BusyText = rows[i].Busy.Round(100 * time.Microsecond).String()
		rows[i].IdleText = rows[i].Idle.Round(100 * time.Microsecond).String()
	}
	return rows
}

// maxLaneSpans bounds the HTML spans rendered per lane; a busy worker can
// record thousands of segments and the dashboard only needs the shape.
const maxLaneSpans = 400

func pct(d, total time.Duration) float64 {
	return float64(d) / float64(total) * 100
}
