// Package alias implements the flow-insensitive points-to analysis the
// paper's Section 5 memory model relies on ("we use a flow insensitive
// alias and escape analysis to curtail the possible aliasing relationships
// to be explored"). It is an Andersen-style inclusion analysis over the
// MiniNesC AST.
//
// Addresses only arise from '&g' on globals, so points-to sets range over
// global names. Each global also receives an abstract integer address
// (1-based declaration order) used by the CFA builder to lower loads and
// stores into address-guarded case splits.
package alias

import (
	"fmt"
	"sort"
	"strings"

	"circ/internal/lang"
)

// Result holds the computed points-to sets.
type Result struct {
	// pts maps scoped variable names to sets of pointed-to globals.
	pts map[string]map[string]bool
	// addrTaken is the set of globals whose address is taken anywhere.
	addrTaken map[string]bool
	// addr assigns each global its abstract address.
	addr    map[string]int64
	globals map[string]bool
}

// scoped renders the analysis name of a variable: globals keep their name,
// locals are prefixed by their thread or function scope.
func scoped(scope, name string, globals map[string]bool) string {
	if globals[name] {
		return name
	}
	return scope + "::" + name
}

// retName is the scoped name of a function's return value.
func retName(fn string) string { return fn + "::$ret" }

// Analyze computes points-to sets for the whole program.
func Analyze(p *lang.Program) *Result {
	r := &Result{
		pts:       make(map[string]map[string]bool),
		addrTaken: make(map[string]bool),
		addr:      make(map[string]int64),
		globals:   make(map[string]bool),
	}
	for i, g := range p.Globals {
		r.globals[g.Name] = true
		r.addr[g.Name] = int64(i + 1)
	}

	// Constraint representation: base facts plus inclusion edges, solved
	// by iteration (the sets are tiny in practice).
	type inclusion struct {
		from, to string // pts(from) ⊆ pts(to)
		// derefFrom/derefTo lift the endpoint through a pointer: the
		// constraint applies to every global in pts of that endpoint.
		derefFrom, derefTo bool
	}
	var incs []inclusion
	addPts := func(v, g string) {
		if r.pts[v] == nil {
			r.pts[v] = make(map[string]bool)
		}
		r.pts[v][g] = true
	}

	// flowExpr records constraints for the value of e flowing into target
	// (a scoped name).
	var flowExpr func(scope, target string, e lang.AExpr)
	flowExpr = func(scope, target string, e lang.AExpr) {
		switch g := e.(type) {
		case *lang.AAddr:
			r.addrTaken[g.Name] = true
			addPts(target, g.Name)
		case *lang.AVar:
			incs = append(incs, inclusion{from: scoped(scope, g.Name, r.globals), to: target})
		case *lang.ADeref:
			incs = append(incs, inclusion{from: scoped(scope, g.Ptr, r.globals), to: target, derefFrom: true})
		case *lang.ACall:
			fn := p.Func(g.Name)
			if fn == nil {
				return
			}
			incs = append(incs, inclusion{from: retName(g.Name), to: target})
			for i, a := range g.Args {
				if i < len(fn.Params) {
					flowExpr(scope, scoped(g.Name, fn.Params[i], r.globals), a)
				}
			}
		case *lang.ANondet:
			// A nondeterministic value may equal any taken address: handled
			// after the address-taken set is complete (see below).
			incs = append(incs, inclusion{from: "$nondet", to: target})
		case *lang.ABin:
			// Pointer arithmetic is outside the model: arithmetic results
			// carry no points-to information. (Storing through such a
			// value is rejected by the CFA builder.)
			flowCalls(scope, g.X, flowExpr)
			flowCalls(scope, g.Y, flowExpr)
		case *lang.ANot:
			flowCalls(scope, g.X, flowExpr)
		case *lang.ANeg:
			flowCalls(scope, g.X, flowExpr)
		}
	}

	var walkBlock func(scope string, fn *lang.FuncDecl, b *lang.Block)
	walkStmt := func(scope string, fn *lang.FuncDecl, s lang.Stmt) {
		switch g := s.(type) {
		case *lang.SAssign:
			flowExpr(scope, scoped(scope, g.LHS, r.globals), g.RHS)
		case *lang.SStore:
			// *p = e: e flows into everything p may point to.
			ptr := scoped(scope, g.Ptr, r.globals)
			tmp := fmt.Sprintf("$store%d", len(incs))
			flowExpr(scope, tmp, g.RHS)
			incs = append(incs, inclusion{from: tmp, to: ptr, derefTo: true})
		case *lang.SIf:
			flowCalls(scope, g.Cond, flowExpr)
			walkBlock(scope, fn, g.Then)
			walkBlock(scope, fn, g.Else)
		case *lang.SWhile:
			flowCalls(scope, g.Cond, flowExpr)
			walkBlock(scope, fn, g.Body)
		case *lang.SAtomic:
			walkBlock(scope, fn, g.Body)
		case *lang.SChoose:
			for _, br := range g.Branches {
				walkBlock(scope, fn, br)
			}
		case *lang.SAssume:
			flowCalls(scope, g.Cond, flowExpr)
		case *lang.SReturn:
			if g.Val != nil && fn != nil {
				flowExpr(scope, retName(fn.Name), g.Val)
			}
		case *lang.SCall:
			flowExpr(scope, fmt.Sprintf("$void%d", len(incs)), g.Call)
		}
	}
	walkBlock = func(scope string, fn *lang.FuncDecl, b *lang.Block) {
		if b == nil {
			return
		}
		for _, s := range b.Stmts {
			walkStmt(scope, fn, s)
		}
	}
	for _, fn := range p.Funcs {
		walkBlock(fn.Name, fn, fn.Body)
	}
	for _, th := range p.Threads {
		walkBlock(th.Name, nil, th.Body)
	}

	// Nondeterministic values may hold any taken address.
	for g := range r.addrTaken {
		addPts("$nondet", g)
	}

	// Solve inclusions to a fixpoint.
	for changed := true; changed; {
		changed = false
		propagate := func(from, to string) {
			for g := range r.pts[from] {
				if r.pts[to] == nil || !r.pts[to][g] {
					addPts(to, g)
					changed = true
				}
			}
		}
		for _, inc := range incs {
			switch {
			case inc.derefFrom:
				// pts(*from) ⊆ pts(to): the contents of globals pointed to
				// by from flow to to.
				for g := range r.pts[inc.from] {
					propagate(g, inc.to)
				}
			case inc.derefTo:
				// pts(from) ⊆ pts(*to).
				for g := range r.pts[inc.to] {
					propagate(inc.from, g)
				}
			default:
				propagate(inc.from, inc.to)
			}
		}
	}
	return r
}

// flowCalls visits call subexpressions of a non-pointer expression so their
// argument bindings are still recorded.
func flowCalls(scope string, e lang.AExpr, flowExpr func(scope, target string, e lang.AExpr)) {
	switch g := e.(type) {
	case *lang.ACall:
		flowExpr(scope, "$ignored", g)
	case *lang.ABin:
		flowCalls(scope, g.X, flowExpr)
		flowCalls(scope, g.Y, flowExpr)
	case *lang.ANot:
		flowCalls(scope, g.X, flowExpr)
	case *lang.ANeg:
		flowCalls(scope, g.X, flowExpr)
	}
}

// PointsTo returns the sorted points-to set of the variable (scope is the
// thread or function name for locals; ignored for globals).
func (r *Result) PointsTo(scope, name string) []string {
	set := r.pts[scoped(scope, name, r.globals)]
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Addr returns the abstract address of a global (0 if unknown).
func (r *Result) Addr(global string) int64 { return r.addr[global] }

// AddressTaken returns the sorted set of globals whose address is taken.
func (r *Result) AddressTaken() []string {
	out := make([]string, 0, len(r.addrTaken))
	for g := range r.addrTaken {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// SplitMangled recovers (scope, base) from a CFA builder mangled name
// "f$v$3"; unmangled names return ("", name).
func SplitMangled(name string) (scope, base string) {
	parts := strings.Split(name, "$")
	if len(parts) == 3 {
		return parts[0], parts[1]
	}
	return "", name
}

func (r *Result) String() string {
	var names []string
	for n := range r.pts {
		if strings.HasPrefix(n, "$") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		var ts []string
		for g := range r.pts[n] {
			ts = append(ts, g)
		}
		sort.Strings(ts)
		fmt.Fprintf(&b, "%s -> {%s}\n", n, strings.Join(ts, ", "))
	}
	return b.String()
}
