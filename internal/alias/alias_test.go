package alias

import (
	"testing"

	"circ/internal/lang"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(p)
}

func TestDirectAddressOf(t *testing.T) {
	r := analyze(t, `
global int x;
global int y;
thread T {
  local int p;
  p = &x;
  *p = 1;
}
`)
	pts := r.PointsTo("T", "p")
	if len(pts) != 1 || pts[0] != "x" {
		t.Fatalf("pts(p) = %v, want [x]", pts)
	}
	if got := r.AddressTaken(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("addrTaken = %v", got)
	}
	if r.Addr("x") != 1 || r.Addr("y") != 2 {
		t.Fatalf("addresses: x=%d y=%d", r.Addr("x"), r.Addr("y"))
	}
}

func TestCopyPropagation(t *testing.T) {
	r := analyze(t, `
global int x;
global int y;
thread T {
  local int p;
  local int q;
  p = &x;
  q = p;
  if (1 == 1) { q = &y; }
}
`)
	pts := r.PointsTo("T", "q")
	if len(pts) != 2 || pts[0] != "x" || pts[1] != "y" {
		t.Fatalf("pts(q) = %v, want [x y]", pts)
	}
}

func TestThroughGlobalCell(t *testing.T) {
	// A pointer stored in a global and reloaded: g holds &x, q = g.
	r := analyze(t, `
global int x;
global int cell;
thread T {
  local int q;
  cell = &x;
  q = cell;
  *q = 5;
}
`)
	if pts := r.PointsTo("", "cell"); len(pts) != 1 || pts[0] != "x" {
		t.Fatalf("pts(cell) = %v", pts)
	}
	if pts := r.PointsTo("T", "q"); len(pts) != 1 || pts[0] != "x" {
		t.Fatalf("pts(q) = %v", pts)
	}
}

func TestStoreThroughPointerToCell(t *testing.T) {
	// *p = &y where p -> {cell}: cell may point to y.
	r := analyze(t, `
global int y;
global int cell;
thread T {
  local int p;
  local int q;
  p = &cell;
  *p = &y;
  q = *p;
}
`)
	if pts := r.PointsTo("", "cell"); len(pts) != 1 || pts[0] != "y" {
		t.Fatalf("pts(cell) = %v, want [y]", pts)
	}
	// Load through p: q gets cell's contents.
	if pts := r.PointsTo("T", "q"); len(pts) != 1 || pts[0] != "y" {
		t.Fatalf("pts(q) = %v, want [y]", pts)
	}
}

func TestFunctionParamAndReturn(t *testing.T) {
	r := analyze(t, `
global int x;
int id(p) { return p; }
thread T {
  local int q;
  q = id(&x);
}
`)
	if pts := r.PointsTo("id", "p"); len(pts) != 1 || pts[0] != "x" {
		t.Fatalf("pts(id::p) = %v", pts)
	}
	if pts := r.PointsTo("T", "q"); len(pts) != 1 || pts[0] != "x" {
		t.Fatalf("pts(q) = %v", pts)
	}
}

func TestNondetPointsEverywhereTaken(t *testing.T) {
	r := analyze(t, `
global int x;
global int y;
thread T {
  local int p;
  local int q;
  p = &x;
  q = *;
}
`)
	// q may hold any taken address: only &x is taken.
	if pts := r.PointsTo("T", "q"); len(pts) != 1 || pts[0] != "x" {
		t.Fatalf("pts(q) = %v, want [x]", pts)
	}
}

func TestArithmeticCarriesNothing(t *testing.T) {
	r := analyze(t, `
global int x;
thread T {
  local int p;
  local int q;
  p = &x;
  q = p + 1;
}
`)
	if pts := r.PointsTo("T", "q"); len(pts) != 0 {
		t.Fatalf("pts(q) = %v, want empty (pointer arithmetic unsupported)", pts)
	}
}

func TestSplitMangled(t *testing.T) {
	if s, b := SplitMangled("f$p$3"); s != "f" || b != "p" {
		t.Fatalf("SplitMangled = %q %q", s, b)
	}
	if s, b := SplitMangled("plain"); s != "" || b != "plain" {
		t.Fatalf("SplitMangled plain = %q %q", s, b)
	}
}

func TestStringRender(t *testing.T) {
	r := analyze(t, `
global int x;
thread T {
  local int p;
  p = &x;
}
`)
	if r.String() == "" {
		t.Fatalf("empty render")
	}
}
