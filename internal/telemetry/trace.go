// Package telemetry is the observability layer of the CIRC pipeline: a
// hierarchical span tracer with a Chrome trace_event exporter, a registry
// of named atomic counters / gauges / duration histograms, and a slog
// narration handler that preserves the classic iteration log.
//
// Everything is stdlib-only and nil-safe: a nil *Tracer, *Span, *Registry,
// *Counter, *Gauge, or *Histogram accepts every method as a no-op, so
// instrumentation points compile down to a nil check when telemetry is
// disabled. The hot reachability path relies on this — see
// BenchmarkReachTelemetry in internal/reach.
package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records hierarchical spans for one run. It is safe for concurrent
// use: spans may be started and ended from any goroutine. The zero value
// is not usable; call NewTracer. A nil Tracer is a valid disabled sink.
type Tracer struct {
	start time.Time
	now   func() time.Time // injectable clock, for the exporter golden test

	mu     sync.Mutex
	events []spanEvent
	free   []int64 // reusable lanes of fully-closed detached spans
	tc     TraceContext
	max    int // span cap; 0 = unbounded

	nextLane atomic.Int64
	dropped  atomic.Int64 // spans discarded at the cap
}

// spanEvent is one completed span, recorded at End.
type spanEvent struct {
	name  string
	cat   string
	lane  int64
	start time.Duration // offset from tracer start
	dur   time.Duration
	args  []Arg
}

// Arg is one key/value annotation attached to a span.
type Arg struct {
	Key   string
	Value any
}

// NewTracer returns a tracer whose timebase starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), now: time.Now}
}

// StartTime returns the tracer's timebase origin, so sibling recorders
// (the scheduler Timeline) can share it and export aligned offsets.
func (t *Tracer) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// SetTraceContext attaches a W3C trace identity to the tracer. The
// exporter stamps it on every span so a per-job trace carries the
// caller-supplied (or daemon-minted) trace ID end to end.
func (t *Tracer) SetTraceContext(tc TraceContext) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tc = tc
	t.mu.Unlock()
}

// TraceContext returns the identity set by SetTraceContext (zero when
// none was attached).
func (t *Tracer) TraceContext() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tc
}

// SetMaxSpans bounds the number of recorded spans; once reached, further
// spans are counted as dropped instead of stored. Long-lived daemons set
// this so a pathological job cannot grow a trace without bound. n <= 0
// removes the bound.
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.max = n
	t.mu.Unlock()
}

// DroppedSpans returns how many spans were discarded at the cap.
func (t *Tracer) DroppedSpans() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Span is one timed region. A nil Span ignores Annotate and End, so
// callers never need to guard on whether tracing is enabled.
type Span struct {
	tr       *Tracer
	parent   *Span
	name     string
	cat      string
	lane     int64
	detached bool
	start    time.Duration

	openKids atomic.Int32 // children started and not yet ended
	ended    atomic.Bool

	mu   sync.Mutex
	args []Arg
}

type spanKey struct{}
type tracerKey struct{}

// NewContext returns ctx carrying tr; StartSpan on the result records
// spans. A nil tr returns ctx unchanged.
func NewContext(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, tr)
}

// FromContext returns the tracer carried by ctx, or nil.
func FromContext(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// StartSpan opens a span named name as a child of the span carried by ctx
// (or a root span when there is none), returning a context carrying the new
// span. When ctx carries no tracer both return values are inert: the ctx is
// returned unchanged and the nil span ignores Annotate/End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var tr *Tracer
	if parent != nil {
		tr = parent.tr
	} else {
		tr = FromContext(ctx)
	}
	if tr == nil {
		return ctx, nil
	}
	s := tr.startSpan(parent, name, "")
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartDetached opens a span with no parent context, on a lane reused
// across sequential detached spans (concurrent ones get distinct lanes).
// It is the entry point for instrumentation sites that have no
// context.Context, such as individual SMT solves.
func (t *Tracer) StartDetached(name, cat string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, cat: cat, detached: true, start: t.sinceStart()}
	t.mu.Lock()
	if n := len(t.free); n > 0 {
		s.lane = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		s.lane = t.nextLane.Add(1)
	}
	t.mu.Unlock()
	return s
}

// startSpan allocates the span's lane: the first open child nests on its
// parent's lane (proper containment renders as stack depth in Perfetto);
// concurrent siblings each get a fresh lane.
func (t *Tracer) startSpan(parent *Span, name, cat string) *Span {
	s := &Span{tr: t, parent: parent, name: name, cat: cat, start: t.sinceStart()}
	switch {
	case parent == nil:
		s.lane = t.nextLane.Add(1)
	case parent.openKids.Add(1) == 1:
		s.lane = parent.lane
	default:
		s.lane = t.nextLane.Add(1)
	}
	return s
}

func (t *Tracer) sinceStart() time.Duration {
	return t.now().Sub(t.start)
}

// Annotate attaches a key/value argument to the span, shown in the trace
// viewer's args pane. Values must be JSON-serializable.
func (s *Span) Annotate(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.args = append(s.args, Arg{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span and records it. End is idempotent; a nil span
// ignores it.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	end := s.tr.sinceStart()
	s.mu.Lock()
	args := s.args
	s.mu.Unlock()
	ev := spanEvent{name: s.name, cat: s.cat, lane: s.lane, start: s.start, dur: end - s.start, args: args}
	t := s.tr
	t.mu.Lock()
	if t.max > 0 && len(t.events) >= t.max {
		t.dropped.Add(1)
	} else {
		t.events = append(t.events, ev)
	}
	if s.detached {
		t.free = append(t.free, s.lane)
	}
	t.mu.Unlock()
	if s.parent != nil {
		s.parent.openKids.Add(-1)
	}
}

// NumSpans returns the number of completed spans recorded so far.
func (t *Tracer) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
