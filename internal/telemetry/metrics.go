package telemetry

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a set of named counters, gauges, and duration histograms,
// all updated with atomic operations and safe for concurrent use. A
// Registry may be a child of another (see Child): every update propagates
// to the parent, so one process-wide registry can aggregate while each
// analysis keeps its own attributable snapshot.
//
// A nil Registry is a valid disabled sink: it hands out nil instruments
// whose methods are no-ops.
type Registry struct {
	parent *Registry

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty root registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Child returns a registry whose updates also propagate to r. ChildOf(nil)
// (and Child on a nil registry) returns a standalone root registry, so a
// per-analysis registry always exists even when no process registry was
// configured.
func (r *Registry) Child() *Registry {
	c := NewRegistry()
	c.parent = r
	return c
}

// ChildOf is Child tolerant of a nil parent.
func ChildOf(r *Registry) *Registry { return r.Child() }

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter. Callers on hot paths should
// fetch the instrument once and reuse the handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{next: r.parent.Counter(name)}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{next: r.parent.Gauge(name)}
		r.gauges[name] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns the named duration histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{next: r.parent.Histogram(name)}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// Counter is a monotonically increasing atomic count.
type Counter struct {
	v    atomic.Int64
	next *Counter // parent-chained instrument
}

// Add increments the counter by n (and the parent chain).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
	c.next.Add(n)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value (or high-water-mark) instrument.
type Gauge struct {
	v    atomic.Int64
	next *Gauge
}

// Set stores v (and propagates to the parent chain).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.next.Set(v)
}

// Add shifts the gauge by delta (and the parent chain) — the idiom for
// in-flight style gauges that rise on entry and fall on exit.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
	g.next.Add(delta)
}

// Max raises the gauge to v when v exceeds the current value.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			break
		}
	}
	g.next.Max(v)
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBounds are the histogram bucket upper bounds: a 1-2-5 ladder from
// 1µs to 10s; observations above the last bound land in the overflow
// bucket. Fixed bounds keep histograms mergeable across registries.
var histBounds = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// numBuckets counts the bounded buckets plus the overflow bucket.
const numBuckets = 23 // len(histBounds) + 1

// Histogram is a fixed-bucket duration histogram with atomic counts.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	next    *Histogram
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
	h.next.Observe(d)
}

// Since is Observe(time.Since(start)), the common timing idiom.
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// bucketIndex locates d's bucket by binary search over the bounds.
func bucketIndex(d time.Duration) int {
	lo, hi := 0, len(histBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= histBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Metrics is a serializable point-in-time snapshot of a Registry; Report
// and BatchReport embed one so every analysis result carries its own
// observability record.
type Metrics struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// HistSnapshot is one histogram's snapshot: total count, the sum of
// observed durations in nanoseconds, and the non-empty buckets.
type HistSnapshot struct {
	Count    int64        `json:"count"`
	SumNanos int64        `json:"sum_ns"`
	Buckets  []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty histogram bucket; LE is the inclusive upper
// bound in nanoseconds (math.MaxInt64 for the overflow bucket).
type HistBucket struct {
	LE    int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// Quantile estimates the q-quantile (q in [0, 1]) of the recorded
// durations from the 1-2-5 bucket counts, interpolating linearly inside
// the target bucket between the previous bucket's bound and its own.
// Observations in the overflow bucket are credited the largest finite
// bound, so Quantile never invents durations beyond what the ladder can
// resolve. It returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum int64
	for _, b := range s.Buckets {
		upper := b.LE
		if upper == math.MaxInt64 {
			// Overflow bucket: everything here reads as the largest finite
			// bound (the lower edge of the overflow region).
			return histBounds[len(histBounds)-1]
		}
		if float64(cum+b.Count) >= target {
			lower := bucketLowerBound(upper)
			within := target - float64(cum)
			frac := within / float64(b.Count)
			return time.Duration(float64(lower) + frac*float64(upper-lower))
		}
		cum += b.Count
	}
	return time.Duration(s.Buckets[len(s.Buckets)-1].LE)
}

// bucketLowerBound returns the exclusive lower edge of the ladder bucket
// whose inclusive upper bound is le (0 for the first bucket, and for
// bounds that are not on the ladder — merged foreign snapshots).
func bucketLowerBound(le int64) int64 {
	for i, b := range histBounds {
		if b.Nanoseconds() == le {
			if i == 0 {
				return 0
			}
			return histBounds[i-1].Nanoseconds()
		}
	}
	return 0
}

// Snapshot captures the registry's current state. A nil registry snapshots
// empty.
func (r *Registry) Snapshot() Metrics {
	var m Metrics
	if r == nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		m.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			m.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		m.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			m.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		m.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			m.Histograms[name] = h.snapshot()
		}
	}
	return m
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), SumNanos: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(math.MaxInt64)
		if i < len(histBounds) {
			le = histBounds[i].Nanoseconds()
		}
		s.Buckets = append(s.Buckets, HistBucket{LE: le, Count: n})
	}
	return s
}

// Merge folds a snapshot into the registry: counters and histogram buckets
// add, gauges take the snapshot's value. It lets a harness aggregate the
// Metrics of analyses that ran on their own registries.
func (r *Registry) Merge(m Metrics) {
	if r == nil {
		return
	}
	for name, v := range m.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range m.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range m.Histograms {
		h := r.Histogram(name)
		for _, b := range hs.Buckets {
			i := len(histBounds)
			if b.LE != math.MaxInt64 {
				i = bucketIndex(time.Duration(b.LE))
			}
			h.addBucket(i, b.Count)
		}
		h.addTotals(hs.Count, hs.SumNanos)
	}
}

func (h *Histogram) addBucket(i int, n int64) {
	if h == nil {
		return
	}
	h.buckets[i].Add(n)
	h.next.addBucket(i, n)
}

func (h *Histogram) addTotals(count, sumNanos int64) {
	if h == nil {
		return
	}
	h.count.Add(count)
	h.sum.Add(sumNanos)
	h.next.addTotals(count, sumNanos)
}

// Counter returns the named counter's snapshot value, 0 when absent.
func (m Metrics) Counter(name string) int64 { return m.Counters[name] }

// Gauge returns the named gauge's snapshot value, 0 when absent.
func (m Metrics) Gauge(name string) int64 { return m.Gauges[name] }

// SMTHitRate returns the SMT cache hit rate recorded in the snapshot
// (gauges "smt.cache.hits" / "smt.cache.misses"), in [0, 1]; 0 when no
// queries were recorded.
func (m Metrics) SMTHitRate() float64 {
	hits, misses := m.Gauges["smt.cache.hits"], m.Gauges["smt.cache.misses"]
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// String renders the snapshot as sorted "name value" lines (histograms as
// count/mean), for quick human inspection.
func (m Metrics) String() string {
	var sb strings.Builder
	var names []string
	for n := range m.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "%-28s %d\n", n, m.Counters[n])
	}
	names = names[:0]
	for n := range m.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "%-28s %d\n", n, m.Gauges[n])
	}
	names = names[:0]
	for n := range m.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := m.Histograms[n]
		mean := time.Duration(0)
		if h.Count > 0 {
			mean = time.Duration(h.SumNanos / h.Count)
		}
		fmt.Fprintf(&sb, "%-28s count=%d mean=%s p50=%s p95=%s p99=%s total=%s\n",
			n, h.Count, mean,
			h.Quantile(0.50).Round(100*time.Nanosecond),
			h.Quantile(0.95).Round(100*time.Nanosecond),
			h.Quantile(0.99).Round(100*time.Nanosecond),
			time.Duration(h.SumNanos).Round(time.Microsecond))
	}
	return sb.String()
}

// PublishExpvar publishes the registry under the given expvar name, so a
// -pprof debug server exposes live metrics at /debug/vars. Publishing the
// same name twice panics (an expvar invariant); publish once per process.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
