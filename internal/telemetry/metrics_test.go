package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(3)
	r.Gauge("g").Set(7)
	r.Gauge("g").Max(9)
	r.Histogram("h").Observe(time.Millisecond)
	r.Merge(Metrics{Counters: map[string]int64{"c": 1}})
	m := r.Snapshot()
	if m.Counter("c") != 0 || m.Gauge("g") != 0 || len(m.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", m)
	}
}

func TestCounterGaugeSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("smt.sat").Add(2)
	r.Counter("smt.sat").Inc()
	r.Gauge("frontier").Max(10)
	r.Gauge("frontier").Max(4) // below the high-water mark
	m := r.Snapshot()
	if got := m.Counter("smt.sat"); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if got := m.Gauge("frontier"); got != 10 {
		t.Errorf("gauge = %d, want 10", got)
	}
}

func TestChildPropagation(t *testing.T) {
	root := NewRegistry()
	c1, c2 := root.Child(), root.Child()
	c1.Counter("iters").Add(5)
	c2.Counter("iters").Add(7)
	c1.Histogram("solve").Observe(3 * time.Microsecond)
	c2.Histogram("solve").Observe(40 * time.Millisecond)
	if got := c1.Snapshot().Counter("iters"); got != 5 {
		t.Errorf("child1 counter = %d, want 5", got)
	}
	if got := root.Snapshot().Counter("iters"); got != 12 {
		t.Errorf("root counter = %d, want 12", got)
	}
	if got := root.Snapshot().Histograms["solve"].Count; got != 2 {
		t.Errorf("root histogram count = %d, want 2", got)
	}
	// ChildOf(nil) is a standalone registry.
	solo := ChildOf(nil)
	solo.Counter("x").Inc()
	if got := solo.Snapshot().Counter("x"); got != 1 {
		t.Errorf("standalone child counter = %d, want 1", got)
	}
}

func TestHistogramBucketCorrectness(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	obs := []time.Duration{
		500 * time.Nanosecond,  // -> 1µs bucket
		time.Microsecond,       // boundary: inclusive -> 1µs bucket
		1500 * time.Nanosecond, // -> 2µs bucket
		3 * time.Millisecond,   // -> 5ms bucket
		time.Minute,            // -> overflow
	}
	for _, d := range obs {
		h.Observe(d)
	}
	s := r.Snapshot().Histograms["d"]
	if s.Count != int64(len(obs)) {
		t.Fatalf("count = %d, want %d", s.Count, len(obs))
	}
	var sum int64
	for _, d := range obs {
		sum += d.Nanoseconds()
	}
	if s.SumNanos != sum {
		t.Fatalf("sum = %d, want %d", s.SumNanos, sum)
	}
	want := map[int64]int64{
		time.Microsecond.Nanoseconds():       2,
		(2 * time.Microsecond).Nanoseconds(): 1,
		(5 * time.Millisecond).Nanoseconds(): 1,
		math.MaxInt64:                        1,
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want bounds %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.LE] != b.Count {
			t.Errorf("bucket le=%d count = %d, want %d", b.LE, b.Count, want[b.LE])
		}
	}
}

func TestMergeRoundTrips(t *testing.T) {
	src := NewRegistry()
	src.Counter("c").Add(4)
	src.Gauge("g").Set(9)
	src.Histogram("h").Observe(7 * time.Microsecond)
	src.Histogram("h").Observe(time.Hour) // overflow bucket

	dst := NewRegistry()
	dst.Counter("c").Add(1)
	dst.Merge(src.Snapshot())
	m := dst.Snapshot()
	if m.Counter("c") != 5 || m.Gauge("g") != 9 {
		t.Fatalf("merged counters/gauges wrong: %+v", m)
	}
	hs := m.Histograms["h"]
	if hs.Count != 2 || hs.SumNanos != (7*time.Microsecond+time.Hour).Nanoseconds() {
		t.Fatalf("merged histogram totals wrong: %+v", hs)
	}
	if len(hs.Buckets) != 2 {
		t.Fatalf("merged histogram buckets = %+v, want 2", hs.Buckets)
	}
}

func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	child := r.Child()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				child.Counter("n").Inc()
				child.Gauge("hw").Max(int64(i))
				child.Histogram("d").Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Counter("n"); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := r.Snapshot().Gauge("hw"); got != 199 {
		t.Fatalf("gauge = %d, want 199", got)
	}
}

func TestMetricsJSONAndHelpers(t *testing.T) {
	r := NewRegistry()
	r.Gauge("smt.cache.hits").Set(80)
	r.Gauge("smt.cache.misses").Set(20)
	r.Counter("circ.iterations").Add(6)
	m := r.Snapshot()
	if got := m.SMTHitRate(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("SMTHitRate = %v, want 0.8", got)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("circ.iterations") != 6 {
		t.Errorf("round-trip lost counters: %s", data)
	}
	if s := m.String(); s == "" {
		t.Error("String() empty")
	}
}

// TestQuantile pins the 1-2-5 ladder estimator: interpolation inside a
// bucket runs between the bucket's true ladder neighbours (not the
// previous non-empty bucket, which snapshots omit), and the overflow
// bucket reads as the largest finite bound rather than an invented value.
func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency")
	// 90 fast observations in the (500µs, 1ms] bucket, 10 slow ones in
	// (50ms, 100ms] — a long empty gap between them.
	for i := 0; i < 90; i++ {
		h.Observe(800 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(70 * time.Millisecond)
	}
	s := r.Snapshot().Histograms["latency"]
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// p50: 50th of 90 in (500µs, 1ms] -> 500µs + (50/90)*500µs ≈ 778µs.
	if got := s.Quantile(0.50); got < 500*time.Microsecond || got > time.Millisecond {
		t.Errorf("p50 = %v, want within (500µs, 1ms]", got)
	}
	// p95: 5th of 10 in (50ms, 100ms]; the lower edge must be the ladder
	// neighbour 50ms, not the previous non-empty bucket's 1ms.
	if got := s.Quantile(0.95); got < 50*time.Millisecond || got > 100*time.Millisecond {
		t.Errorf("p95 = %v, want within (50ms, 100ms]", got)
	}
	if got, want := s.Quantile(1), 100*time.Millisecond; got != want {
		t.Errorf("p100 = %v, want %v", got, want)
	}

	// Overflow: observations beyond the ladder read as the largest finite
	// bound (10s), never beyond.
	r2 := NewRegistry()
	r2.Histogram("slow").Observe(3 * time.Minute)
	s2 := r2.Snapshot().Histograms["slow"]
	if got, want := s2.Quantile(0.5), 10*time.Second; got != want {
		t.Errorf("overflow p50 = %v, want %v", got, want)
	}

	// Degenerate inputs.
	var empty HistSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := s.Quantile(-1); got == 0 {
		t.Errorf("q<0 clamps to min, got 0 observations bucket")
	}
}
