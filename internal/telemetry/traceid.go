package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// W3C Trace Context (traceparent) support. The daemon accepts a
// traceparent header on every /v1 request so a check submitted from a
// larger system joins that system's distributed trace; when no header is
// supplied the daemon mints fresh identifiers so every job is still
// individually addressable. Only version 00 of the header is parsed:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// Trace identity travels alongside the byte-deterministic journal —
// never inside it — so accepting a caller's trace ID cannot perturb
// journal byte-identity.

// TraceContext is one W3C trace-context identity: the trace ID shared by
// every span of a distributed trace, and the span ID of the local root.
type TraceContext struct {
	TraceID  string // 32 lowercase hex chars, not all zero
	SpanID   string // 16 lowercase hex chars, not all zero
	ParentID string // caller's span ID when the identity was propagated, else ""
}

// String renders the identity as a traceparent header value, suitable for
// propagating to downstream services. Sampled flag is always set: circd
// records every job it accepts.
func (tc TraceContext) String() string {
	return fmt.Sprintf("00-%s-%s-01", tc.TraceID, tc.SpanID)
}

// ParseTraceParent parses a version-00 traceparent header. It returns
// ok=false on any malformed input (wrong shape, bad hex, all-zero IDs),
// in which case callers should mint a fresh identity instead.
func ParseTraceParent(header string) (traceID, parentID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(header), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return "", "", false
	}
	traceID, parentID = strings.ToLower(parts[1]), strings.ToLower(parts[2])
	if !validHexID(traceID, 32) || !validHexID(parentID, 16) || len(parts[3]) != 2 {
		return "", "", false
	}
	if _, err := hex.DecodeString(parts[3]); err != nil {
		return "", "", false
	}
	return traceID, parentID, true
}

// ContextFromTraceParent resolves an incoming traceparent header into a
// full local identity: the caller's trace ID is adopted (with the
// caller's span ID as parent) when the header is valid, and a fresh trace
// is minted otherwise. A new local root span ID is minted either way.
func ContextFromTraceParent(header string) TraceContext {
	if traceID, parentID, ok := ParseTraceParent(header); ok {
		return TraceContext{TraceID: traceID, SpanID: MintSpanID(), ParentID: parentID}
	}
	return TraceContext{TraceID: MintTraceID(), SpanID: MintSpanID()}
}

// MintTraceID returns a fresh random 32-hex-char trace ID.
func MintTraceID() string { return mintHex(16) }

// MintSpanID returns a fresh random 16-hex-char span ID.
func MintSpanID() string { return mintHex(8) }

func mintHex(nBytes int) string {
	b := make([]byte, nBytes)
	for {
		if _, err := rand.Read(b); err != nil {
			// crypto/rand never fails on supported platforms; if it somehow
			// does, an all-zero ID would be invalid per spec, so retry.
			continue
		}
		allZero := true
		for _, x := range b {
			if x != 0 {
				allZero = false
				break
			}
		}
		if !allZero {
			return hex.EncodeToString(b)
		}
	}
}

func validHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	allZero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			allZero = false
		}
	}
	return !allZero
}
