package telemetry

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Timeline is a bounded recorder of scheduler activity segments: which
// worker was busy, idle, or stealing, and when. It is the performance
// plane's answer to the journal — segments are wall-clock observations
// recorded concurrently from every worker, so they are carried alongside
// the byte-deterministic journal event stream, never inside it.
//
// A nil *Timeline accepts every method as a no-op, mirroring the rest of
// the package, so the steal scheduler's hot path pays one nil check when
// no flight deck is attached.
type Timeline struct {
	start time.Time
	cap   int

	mu      sync.Mutex
	segs    []TimelineSegment
	dropped atomic.Int64
}

// TimelineSegment is one recorded activity interval on a named lane.
// Offsets are from the timeline's start, in the same timebase as the
// owning tracer when the timeline was created with NewTimelineAt.
type TimelineSegment struct {
	Lane  string        `json:"lane"`
	Kind  string        `json:"kind"` // SegBusy, SegIdle, or SegSteal
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Segment kinds recorded by the steal scheduler.
const (
	SegBusy  = "busy"  // continuously expanding slots (own deque or stolen)
	SegIdle  = "idle"  // parked on the work condition variable
	SegSteal = "steal" // a successful steal from a sibling deque
)

// DefaultTimelineCap bounds a per-job timeline when the caller does not
// choose a cap. Workers record one busy and one idle segment per park,
// so the bound is hit only by long checks; overflow increments a drop
// counter instead of growing without bound.
const DefaultTimelineCap = 8192

// NewTimeline returns a timeline whose timebase starts now. cap <= 0
// selects DefaultTimelineCap.
func NewTimeline(capacity int) *Timeline { return NewTimelineAt(time.Now(), capacity) }

// NewTimelineAt returns a timeline with an explicit start instant, so its
// segment offsets share a timebase with a Tracer created at that instant.
func NewTimelineAt(start time.Time, capacity int) *Timeline {
	if capacity <= 0 {
		capacity = DefaultTimelineCap
	}
	return &Timeline{start: start, cap: capacity}
}

// Record appends one segment. Segments beyond the cap are counted as
// dropped rather than stored. Nil-safe and safe for concurrent use.
func (t *Timeline) Record(lane, kind string, start time.Time, dur time.Duration) {
	if t == nil || dur < 0 {
		return
	}
	off := start.Sub(t.start)
	t.mu.Lock()
	if len(t.segs) >= t.cap {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.segs = append(t.segs, TimelineSegment{Lane: lane, Kind: kind, Start: off, Dur: dur})
	t.mu.Unlock()
}

// Mark records an instantaneous event (a successful steal) as a
// zero-duration segment starting now.
func (t *Timeline) Mark(lane, kind string) {
	if t == nil {
		return
	}
	t.Record(lane, kind, time.Now(), 0)
}

// Segments returns a copy of the recorded segments sorted by (start,
// lane, kind) so output is deterministic regardless of recording order.
func (t *Timeline) Segments() []TimelineSegment {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	segs := append([]TimelineSegment(nil), t.segs...)
	t.mu.Unlock()
	sort.SliceStable(segs, func(i, j int) bool {
		if segs[i].Start != segs[j].Start {
			return segs[i].Start < segs[j].Start
		}
		if segs[i].Lane != segs[j].Lane {
			return segs[i].Lane < segs[j].Lane
		}
		return segs[i].Kind < segs[j].Kind
	})
	return segs
}

// Dropped returns how many segments were discarded at the cap.
func (t *Timeline) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Len returns the number of stored segments.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.segs)
}

// IdleByLane sums idle time per lane, the input for the per-worker idle
// breakdown (idle_ms_max / idle_ms_p50) in bench reports.
func (t *Timeline) IdleByLane() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.segs) == 0 {
		return nil
	}
	idle := make(map[string]time.Duration)
	for _, s := range t.segs {
		if s.Kind == SegIdle {
			idle[s.Lane] += s.Dur
		}
	}
	return idle
}

type timelineKey struct{}

// WithTimeline returns ctx carrying tl, so the reach scheduler deep below
// the public API can find the per-job recorder without threading a new
// parameter through every layer. A nil tl returns ctx unchanged.
func WithTimeline(ctx context.Context, tl *Timeline) context.Context {
	if tl == nil {
		return ctx
	}
	return context.WithValue(ctx, timelineKey{}, tl)
}

// TimelineFromContext returns the timeline carried by ctx, or nil.
func TimelineFromContext(ctx context.Context) *Timeline {
	tl, _ := ctx.Value(timelineKey{}).(*Timeline)
	return tl
}
