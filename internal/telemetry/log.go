package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// NarrationHandler is a slog.Handler that renders records as the classic
// circ iteration narration: one "msg key=val ..." line per record, with
// multi-line string attributes (ARG and ACFA dumps, race traces) printed
// as indented blocks under the line. It is the compatibility shim behind
// the deprecated WithLog(io.Writer) option; structured consumers should
// attach their own handler via WithLogger instead.
type NarrationHandler struct {
	w     io.Writer
	mu    *sync.Mutex
	attrs []slog.Attr
}

// NewNarrationHandler returns a handler narrating to w.
func NewNarrationHandler(w io.Writer) *NarrationHandler {
	return &NarrationHandler{w: w, mu: &sync.Mutex{}}
}

// NarrationLogger returns a logger narrating to w; it is the shim used by
// WithLog.
func NarrationLogger(w io.Writer) *slog.Logger {
	if w == nil {
		return nil
	}
	return slog.New(NewNarrationHandler(w))
}

// Enabled reports true for every level: narration verbosity is decided by
// whether a logger is configured at all.
func (h *NarrationHandler) Enabled(context.Context, slog.Level) bool { return true }

// Handle renders one record.
func (h *NarrationHandler) Handle(_ context.Context, r slog.Record) error {
	var line strings.Builder
	line.WriteString(r.Message)
	var blocks []string
	emit := func(a slog.Attr) {
		v := a.Value.Resolve()
		if v.Kind() == slog.KindString && strings.Contains(v.String(), "\n") {
			blocks = append(blocks, v.String())
			return
		}
		fmt.Fprintf(&line, " %s=%v", a.Key, v.Any())
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		emit(a)
		return true
	})
	line.WriteString("\n")
	for _, b := range blocks {
		for _, l := range strings.Split(strings.TrimRight(b, "\n"), "\n") {
			line.WriteString("      " + l + "\n")
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, line.String())
	return err
}

// WithAttrs returns a handler that prepends attrs to every record.
func (h *NarrationHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &NarrationHandler{w: h.w, mu: h.mu, attrs: append(append([]slog.Attr(nil), h.attrs...), attrs...)}
}

// WithGroup returns the handler unchanged: narration output is flat.
func (h *NarrationHandler) WithGroup(string) slog.Handler { return h }
