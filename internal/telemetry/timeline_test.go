package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTimelineRecordAndSegments(t *testing.T) {
	base := time.Now()
	tl := NewTimelineAt(base, 16)
	tl.Record("w1", SegIdle, base.Add(5*time.Millisecond), 2*time.Millisecond)
	tl.Record("w0", SegBusy, base, 5*time.Millisecond)
	tl.Record("w1", SegBusy, base, 5*time.Millisecond)

	segs := tl.Segments()
	if len(segs) != 3 {
		t.Fatalf("got %d segments", len(segs))
	}
	// Sorted by (start, lane, kind): both busy segments precede the idle.
	if segs[0].Lane != "w0" || segs[1].Lane != "w1" || segs[2].Kind != SegIdle {
		t.Fatalf("order = %+v", segs)
	}
	if segs[2].Start != 5*time.Millisecond {
		t.Fatalf("idle start offset = %v, want 5ms", segs[2].Start)
	}
	if tl.Len() != 3 || tl.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", tl.Len(), tl.Dropped())
	}
}

func TestTimelineCapAndNegative(t *testing.T) {
	base := time.Now()
	tl := NewTimelineAt(base, 2)
	for i := 0; i < 5; i++ {
		tl.Record("w", SegBusy, base, time.Millisecond)
	}
	if tl.Len() != 2 || tl.Dropped() != 3 {
		t.Fatalf("Len=%d Dropped=%d, want 2/3", tl.Len(), tl.Dropped())
	}
	tl2 := NewTimelineAt(base, 8)
	tl2.Record("w", SegBusy, base, -time.Millisecond)
	if tl2.Len() != 0 {
		t.Fatal("negative duration recorded")
	}
}

func TestTimelineIdleByLane(t *testing.T) {
	base := time.Now()
	tl := NewTimelineAt(base, 16)
	tl.Record("w0", SegIdle, base, 3*time.Millisecond)
	tl.Record("w0", SegIdle, base.Add(10*time.Millisecond), time.Millisecond)
	tl.Record("w1", SegIdle, base, 7*time.Millisecond)
	tl.Record("w1", SegBusy, base, 20*time.Millisecond)
	idle := tl.IdleByLane()
	if idle["w0"] != 4*time.Millisecond || idle["w1"] != 7*time.Millisecond {
		t.Fatalf("IdleByLane = %v", idle)
	}
}

func TestTimelineNilAndContext(t *testing.T) {
	var tl *Timeline
	tl.Record("w", SegBusy, time.Now(), time.Millisecond) // must not panic
	tl.Mark("w", SegSteal)
	if tl.Len() != 0 || tl.Segments() != nil || tl.IdleByLane() != nil {
		t.Fatal("nil timeline not inert")
	}
	if got := TimelineFromContext(context.Background()); got != nil {
		t.Fatalf("empty context carries timeline %v", got)
	}
	real := NewTimeline(8)
	ctx := WithTimeline(context.Background(), real)
	if got := TimelineFromContext(ctx); got != real {
		t.Fatal("timeline not carried by context")
	}
}

func TestTimelineConcurrent(t *testing.T) {
	tl := NewTimeline(DefaultTimelineCap)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane := string(rune('a' + w))
			for i := 0; i < 200; i++ {
				tl.Mark(lane, SegSteal)
				tl.Record(lane, SegBusy, time.Now(), time.Microsecond)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tl.Segments()
				tl.IdleByLane()
			}
		}()
	}
	wg.Wait()
	if tl.Len() != 8*400 {
		t.Fatalf("Len = %d, want %d", tl.Len(), 8*400)
	}
}

// TestWriteTraceMergesTimeline: the combined export renders spans and
// timeline lanes in one file, names the lanes, renders steals as instant
// events, and stamps the trace ID on every non-metadata event.
func TestWriteTraceMergesTimeline(t *testing.T) {
	tr := NewTracer()
	tc := ContextFromTraceParent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	tr.SetTraceContext(tc)
	sp := tr.StartDetached("smt.solve", "smt")
	sp.End()

	base := tr.StartTime()
	tl := NewTimelineAt(base, 64)
	tl.Record("reach.worker.00", SegBusy, base, 2*time.Millisecond)
	tl.Record("reach.worker.01", SegIdle, base, time.Millisecond)
	tl.Record("reach.worker.01", SegSteal, base.Add(time.Millisecond), 0)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, tl); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int64          `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if file.OtherData["trace_id"] != tc.TraceID || file.OtherData["parent_span_id"] != "00f067aa0ba902b7" {
		t.Fatalf("otherData = %v", file.OtherData)
	}
	var lanes []string
	var sawSpan, sawSteal bool
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" {
			lanes = append(lanes, ev.Args["name"].(string))
			continue
		}
		if got, _ := ev.Args["trace_id"].(string); got != tc.TraceID {
			t.Fatalf("event %q missing trace_id: %v", ev.Name, ev.Args)
		}
		switch {
		case ev.Name == "smt.solve":
			sawSpan = true
		case ev.Name == SegSteal:
			sawSteal = true
			if ev.Ph != "i" || ev.S != "t" {
				t.Fatalf("steal rendered as ph=%q s=%q", ev.Ph, ev.S)
			}
		}
	}
	if !sawSpan || !sawSteal {
		t.Fatalf("merged trace missing span (%v) or steal (%v)", sawSpan, sawSteal)
	}
	if len(lanes) != 2 || lanes[0] != "reach.worker.00" || lanes[1] != "reach.worker.01" {
		t.Fatalf("timeline lanes = %v", lanes)
	}
}
