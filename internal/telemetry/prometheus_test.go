package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// promSnapshot builds a deterministic snapshot exercising every family
// type, label syntax, and the histogram ladder (including overflow).
func promSnapshot() Metrics {
	r := NewRegistry()
	r.Counter("smt.cache.hits").Add(42)
	r.Counter(`http.requests{endpoint="/v1/check",code="202"}`).Add(3)
	r.Counter(`http.requests{endpoint="/v1/check",code="400"}`).Add(1)
	r.Counter(`http.requests{endpoint="/metrics",code="200"}`).Add(7)
	r.Gauge("store.entries").Set(12)
	r.Gauge(`http.in_flight{endpoint="/v1/check"}`).Set(2)
	h := r.Histogram(`http.latency{endpoint="/v1/check"}`)
	h.Observe(800 * time.Nanosecond) // first bucket
	h.Observe(3 * time.Microsecond)  // 5µs bucket
	h.Observe(40 * time.Millisecond) // 50ms bucket
	h.Observe(40 * time.Millisecond) // 50ms bucket again
	h.Observe(30 * time.Second)      // overflow
	r.Histogram("jobs.latency").Observe(123 * time.Millisecond)
	return r.Snapshot()
}

// TestWritePrometheusGolden locks the exposition byte-for-byte: family
// names, TYPE lines, label rendering, cumulative bucket ladders, sort
// order. Regenerate with -update after intentional format changes.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusDeterministic: two renders of the same snapshot are
// byte-identical (map iteration order must not leak).
func TestWritePrometheusDeterministic(t *testing.T) {
	snap := promSnapshot()
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("nondeterministic exposition:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

// TestWritePrometheusLints: the exporter's own output passes the linter,
// and the linter catches representative violations.
func TestWritePrometheusLints(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("own exposition fails lint: %v", err)
	}
	// Braces inside quoted label values are legal and must not confuse
	// the label-block scan.
	braced := "# TYPE circ_x counter\ncirc_x{endpoint=\"/v1/jobs/{id}\"} 1\n"
	if err := LintPrometheus(strings.NewReader(braced)); err != nil {
		t.Errorf("lint rejected braces in quoted label value: %v", err)
	}
	for _, bad := range []string{
		"circ_x 1\n",                                   // sample without TYPE
		"# TYPE circ_x counter\ncirc_x one\n",          // non-numeric value
		"# TYPE circ_x counter\n# TYPE circ_x gauge\n", // duplicate TYPE
		"# TYPE circ_x widget\n",                       // unknown type
		"# TYPE circ_x counter\ncirc_x{a=b} 1\n",       // unquoted label value
		"# TYPE circ_x counter\n9circ_x 1\n",           // bad metric name
	} {
		if err := LintPrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("lint accepted %q", bad)
		}
	}
}

// TestHistogramCumulative: bucket samples are cumulative and the +Inf
// bucket equals the count, per the format spec.
func TestHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	for i := 0; i < 5; i++ {
		h.Observe(3 * time.Microsecond) // all in the 5µs bucket
	}
	h.Observe(time.Minute) // overflow
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`circ_d_seconds_bucket{le="2e-06"} 0`,
		`circ_d_seconds_bucket{le="5e-06"} 5`,
		`circ_d_seconds_bucket{le="10"} 5`,
		`circ_d_seconds_bucket{le="+Inf"} 6`,
		`circ_d_seconds_count 6`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
