package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file implements a stdlib-only Prometheus text-format exporter for
// Metrics snapshots (exposition format version 0.0.4), so a long-running
// daemon can be scraped by any Prometheus-compatible collector without
// pulling in a client library.
//
// Registry metric names map onto Prometheus families as follows:
//
//   - every name is prefixed "circ_" and sanitised (characters outside
//     [a-zA-Z0-9_] become '_'), so "smt.cache.hits" → "circ_smt_cache_hits";
//   - counters get the conventional "_total" suffix and TYPE counter;
//   - gauges export verbatim with TYPE gauge;
//   - duration histograms get a "_seconds" suffix and TYPE histogram, with
//     the full 1-2-5 bucket ladder rendered cumulatively (every bound is
//     emitted even when empty, so the exposition's line set is stable
//     across scrapes) plus the "+Inf" bucket, "_sum" (seconds), "_count".
//
// Labels ride inside registry names: a name may carry a Prometheus-style
// label suffix, e.g.
//
//	reg.Counter(`http.requests{endpoint="/v1/check",code="202"}`)
//
// All metrics sharing a base name form one family (one # TYPE line,
// consecutive samples), which is exactly what the format requires.
// Families and samples are emitted in sorted order, so the exposition is
// byte-stable for identical snapshot values.

// promSample is one rendered sample line (name + optional labels, value).
// key and order define the emission order: samples sort by key (the
// series' labels, excluding "le"), then by order — which keeps a
// histogram's bucket ladder ascending with _sum and _count trailing, as
// consumers conventionally expect.
type promSample struct {
	key    string
	order  int
	labels string // canonical "{k=\"v\",...}" or ""
	suffix string // "_bucket", "_sum", "_count" for histograms
	value  string
}

// promFamily collects one metric family: the TYPE line plus its samples.
type promFamily struct {
	name    string
	typ     string
	samples []promSample
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Output is deterministic: families sorted by name, samples
// sorted by label set within each family.
func WritePrometheus(w io.Writer, m Metrics) error {
	fams := make(map[string]*promFamily)
	family := func(name, typ string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		return f
	}
	for name, v := range m.Counters {
		base, labels := splitLabels(name)
		f := family(promName(base)+"_total", "counter")
		f.samples = append(f.samples, promSample{key: labels, labels: labels, value: strconv.FormatInt(v, 10)})
	}
	for name, v := range m.Gauges {
		base, labels := splitLabels(name)
		f := family(promName(base), "gauge")
		f.samples = append(f.samples, promSample{key: labels, labels: labels, value: strconv.FormatInt(v, 10)})
	}
	for name, hs := range m.Histograms {
		base, labels := splitLabels(name)
		f := family(promName(base)+"_seconds", "histogram")
		f.samples = append(f.samples, histogramSamples(labels, hs)...)
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		sort.SliceStable(f.samples, func(i, j int) bool {
			if f.samples[i].key != f.samples[j].key {
				return f.samples[i].key < f.samples[j].key
			}
			return f.samples[i].order < f.samples[j].order
		})
		for _, s := range f.samples {
			name := f.name + s.suffix
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// histogramSamples renders one labelled histogram series: the cumulative
// 1-2-5 ladder (every bound, then +Inf), the sum in seconds, the count.
func histogramSamples(labels string, hs HistSnapshot) []promSample {
	// Fold the snapshot's sparse buckets back onto the ladder. Foreign
	// bounds (merged snapshots) land in the containing ladder bucket.
	counts := make([]int64, numBuckets)
	for _, b := range hs.Buckets {
		i := len(histBounds)
		if b.LE != math.MaxInt64 {
			i = bucketIndex(time.Duration(b.LE))
		}
		counts[i] += b.Count
	}
	out := make([]promSample, 0, numBuckets+2)
	var cum int64
	for i, bound := range histBounds {
		cum += counts[i]
		out = append(out, promSample{
			key:    labels,
			order:  i,
			labels: mergeLabels(labels, `le="`+formatSeconds(bound)+`"`),
			suffix: "_bucket",
			value:  strconv.FormatInt(cum, 10),
		})
	}
	out = append(out, promSample{
		key:    labels,
		order:  numBuckets,
		labels: mergeLabels(labels, `le="+Inf"`),
		suffix: "_bucket",
		value:  strconv.FormatInt(hs.Count, 10),
	})
	out = append(out, promSample{
		key:    labels,
		order:  numBuckets + 1,
		labels: labels,
		suffix: "_sum",
		value:  strconv.FormatFloat(float64(hs.SumNanos)/1e9, 'g', -1, 64),
	})
	out = append(out, promSample{
		key:    labels,
		order:  numBuckets + 2,
		labels: labels,
		suffix: "_count",
		value:  strconv.FormatInt(hs.Count, 10),
	})
	return out
}

// formatSeconds renders a bucket bound as seconds the way Prometheus
// clients conventionally do: shortest decimal ("1e-06", "0.001", "10").
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// splitLabels separates a registry name into its base name and an
// optional canonical label suffix. The label part, when present, is kept
// verbatim (it is already in Prometheus syntax by convention).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// mergeLabels appends extra (a single k="v" pair) to an existing label
// set, producing canonical "{...}" syntax.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// promName sanitises a registry base name into a Prometheus metric name:
// "circ_" prefix, characters outside [a-zA-Z0-9_] replaced by '_'.
func promName(base string) string {
	var sb strings.Builder
	sb.Grow(len(base) + 5)
	sb.WriteString("circ_")
	for i := 0; i < len(base); i++ {
		c := base[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// LintPrometheus validates a text exposition against the line format:
// every non-comment line must be a well-formed sample, every sample must
// belong to a declared # TYPE family (histogram samples via their
// _bucket/_sum/_count suffixes), TYPE declarations must not repeat, and
// sample values must parse as numbers. It returns the first violation.
func LintPrometheus(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	types := make(map[string]string)
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		if line == "" {
			if ln != len(lines)-1 {
				return fmt.Errorf("line %d: empty line inside exposition", ln+1)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 || fields[1] != "TYPE" {
				return fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			name, typ := fields[2], fields[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", ln+1, typ)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate # TYPE for %s", ln+1, name)
			}
			types[name] = typ
			continue
		}
		name, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", ln+1, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			return fmt.Errorf("line %d: bad sample value %q", ln+1, value)
		}
		if !sampleHasFamily(name, types) {
			return fmt.Errorf("line %d: sample %s has no # TYPE declaration", ln+1, name)
		}
	}
	return nil
}

// parseSampleLine splits "name{labels} value" (labels optional), checking
// the metric name and label syntax.
func parseSampleLine(line string) (name, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := closingBrace(rest, i)
		if j < 0 {
			return "", "", fmt.Errorf("unbalanced label braces in %q", line)
		}
		if err := lintLabels(rest[i+1 : j]); err != nil {
			return "", "", err
		}
		name = rest[:i]
		rest = rest[j+1:]
	} else if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		name = rest[:sp]
		rest = rest[sp:]
	} else {
		return "", "", fmt.Errorf("no value in sample line %q", line)
	}
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", "", fmt.Errorf("malformed value in %q", line)
	}
	return name, rest, nil
}

// lintLabels checks a comma-separated k="v" list.
func lintLabels(s string) error {
	if s == "" {
		return nil
	}
	for _, pair := range splitLabelPairs(s) {
		eq := strings.IndexByte(pair, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		k, v := pair[:eq], pair[eq+1:]
		if !validLabelName(k) {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted label value in %q", pair)
		}
	}
	return nil
}

// closingBrace locates the '}' that closes the label block opened at
// index open, skipping braces inside quoted label values (label values
// like endpoint="/v1/jobs/{id}" are legal). Returns -1 when unclosed.
func closingBrace(s string, open int) int {
	inQuote := false
	for i := open + 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped character
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// sampleHasFamily resolves a sample name to its declared family: exact
// match for counters/gauges, or the base histogram family for
// _bucket/_sum/_count samples.
func sampleHasFamily(name string, types map[string]string) bool {
	if _, ok := types[name]; ok {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return true
			}
		}
	}
	return false
}
