package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"time"
)

// traceEvent is one record of the Chrome trace_event format. Complete
// events ("ph":"X") carry a duration; instant events ("ph":"i") mark a
// point in time; metadata events ("ph":"M") name lanes. ts and dur are
// microseconds from the tracer's start. Files load directly in
// chrome://tracing and Perfetto.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object form of the trace_event format. OtherData
// is ignored by viewers but carries the job's trace identity so a saved
// trace remains correlatable with logs and the job ring.
type traceFile struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// spanTraceEvents snapshots the completed spans as trace events, sorted
// by start time (ties: longer first, then by name) so the output is
// deterministic regardless of completion order.
func (t *Tracer) spanTraceEvents() []traceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := append([]spanEvent(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].start != events[j].start {
			return events[i].start < events[j].start
		}
		if events[i].dur != events[j].dur {
			return events[i].dur > events[j].dur
		}
		return events[i].name < events[j].name
	})
	out := make([]traceEvent, 0, len(events))
	for _, ev := range events {
		te := traceEvent{
			Name: ev.name,
			Cat:  ev.cat,
			Ph:   "X",
			TS:   micros(ev.start),
			Dur:  micros(ev.dur),
			PID:  1,
			TID:  ev.lane,
		}
		if len(ev.args) > 0 {
			te.Args = make(map[string]any, len(ev.args))
			for _, a := range ev.args {
				te.Args[a.Key] = a.Value
			}
		}
		out = append(out, te)
	}
	return out
}

// Export writes the completed spans as Chrome trace_event JSON.
func (t *Tracer) Export(w io.Writer) error {
	if t == nil {
		return nil
	}
	return writeTraceFile(w, t.spanTraceEvents(), t.TraceContext())
}

// ExportFile writes the trace to path; see Export.
func (t *Tracer) ExportFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteTrace writes the full flight-deck trace for one job: the tracer's
// spans plus the scheduler timeline rendered as named per-worker lanes,
// every event stamped with the tracer's trace identity. Either recorder
// may be nil; the other is still exported.
func WriteTrace(w io.Writer, t *Tracer, tl *Timeline) error {
	events := t.spanTraceEvents()
	maxLane := int64(0)
	for _, ev := range events {
		if ev.TID > maxLane {
			maxLane = ev.TID
		}
	}
	events = append(events, timelineTraceEvents(tl, maxLane+1)...)
	return writeTraceFile(w, events, t.TraceContext())
}

// timelineTraceEvents renders timeline segments as trace events on lanes
// numbered from firstLane, one lane per distinct segment lane name (in
// sorted order, so worker lanes come out in index order), each announced
// with a thread_name metadata record.
func timelineTraceEvents(tl *Timeline, firstLane int64) []traceEvent {
	segs := tl.Segments()
	if len(segs) == 0 {
		return nil
	}
	laneIDs := make(map[string]int64)
	var names []string
	for _, s := range segs {
		if _, ok := laneIDs[s.Lane]; !ok {
			laneIDs[s.Lane] = 0
			names = append(names, s.Lane)
		}
	}
	sort.Strings(names)
	out := make([]traceEvent, 0, len(segs)+len(names))
	for i, name := range names {
		laneIDs[name] = firstLane + int64(i)
		out = append(out, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  laneIDs[name],
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range segs {
		te := traceEvent{
			Name: s.Kind,
			Cat:  "sched",
			Ph:   "X",
			TS:   micros(s.Start),
			Dur:  micros(s.Dur),
			PID:  1,
			TID:  laneIDs[s.Lane],
		}
		if s.Dur == 0 {
			// Steals are instantaneous marks; a zero-width complete event
			// is invisible in viewers, an instant event is not.
			te.Ph, te.S = "i", "t"
		}
		out = append(out, te)
	}
	return out
}

// writeTraceFile stamps the trace identity onto every event and encodes
// the file. With a zero identity the output is byte-identical to the
// historical exporter format.
func writeTraceFile(w io.Writer, events []traceEvent, tc TraceContext) error {
	out := traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}
	if out.TraceEvents == nil {
		out.TraceEvents = []traceEvent{}
	}
	if tc.TraceID != "" {
		for i := range out.TraceEvents {
			if out.TraceEvents[i].Ph == "M" {
				continue
			}
			if out.TraceEvents[i].Args == nil {
				out.TraceEvents[i].Args = map[string]any{}
			}
			out.TraceEvents[i].Args["trace_id"] = tc.TraceID
		}
		out.OtherData = map[string]string{"trace_id": tc.TraceID, "span_id": tc.SpanID}
		if tc.ParentID != "" {
			out.OtherData["parent_span_id"] = tc.ParentID
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// micros converts to the trace_event microsecond timebase, keeping
// sub-microsecond precision as a fraction.
func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
