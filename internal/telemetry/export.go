package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"time"
)

// traceEvent is one record of the Chrome trace_event format. Only complete
// events ("ph":"X") are emitted; ts and dur are microseconds from the
// tracer's start. Files load directly in chrome://tracing and Perfetto.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object form of the trace_event format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Export writes the completed spans as Chrome trace_event JSON. Spans are
// sorted by start time (ties: longer first, then by name) so the output is
// deterministic regardless of completion order.
func (t *Tracer) Export(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := append([]spanEvent(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].start != events[j].start {
			return events[i].start < events[j].start
		}
		if events[i].dur != events[j].dur {
			return events[i].dur > events[j].dur
		}
		return events[i].name < events[j].name
	})
	out := traceFile{TraceEvents: make([]traceEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, ev := range events {
		te := traceEvent{
			Name: ev.name,
			Cat:  ev.cat,
			Ph:   "X",
			TS:   micros(ev.start),
			Dur:  micros(ev.dur),
			PID:  1,
			TID:  ev.lane,
		}
		if len(ev.args) > 0 {
			te.Args = make(map[string]any, len(ev.args))
			for _, a := range ev.args {
				te.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ExportFile writes the trace to path; see Export.
func (t *Tracer) ExportFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// micros converts to the trace_event microsecond timebase, keeping
// sub-microsecond precision as a fraction.
func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
