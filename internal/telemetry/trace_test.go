package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	ctx := NewContext(context.Background(), tr)
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil {
		t.Fatalf("StartSpan without tracer: span = %v, want nil", sp)
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without tracer should return ctx unchanged")
	}
	sp.Annotate("k", 1) // must not panic
	sp.End()
	tr.StartDetached("y", "c").End()
	if err := tr.Export(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if n := tr.NumSpans(); n != 0 {
		t.Fatalf("NumSpans = %d, want 0", n)
	}
}

func TestSpanHierarchyAndLanes(t *testing.T) {
	tr := NewTracer()
	ctx := NewContext(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")

	// Sequential children share the root's lane.
	_, c1 := StartSpan(ctx, "child1")
	c1.End()
	_, c2 := StartSpan(ctx, "child2")
	c2.End()
	if c1.lane != root.lane || c2.lane != root.lane {
		t.Fatalf("sequential children lanes = %d, %d; want root lane %d", c1.lane, c2.lane, root.lane)
	}

	// Concurrent siblings: the first may nest, the rest get fresh lanes.
	_, a := StartSpan(ctx, "a")
	_, b := StartSpan(ctx, "b")
	if a.lane == b.lane {
		t.Fatalf("concurrent siblings share lane %d", a.lane)
	}
	b.End()
	a.End()
	root.End()
	root.End() // idempotent

	if n := tr.NumSpans(); n != 5 {
		t.Fatalf("NumSpans = %d, want 5", n)
	}
}

func TestConcurrentSpanCreation(t *testing.T) {
	tr := NewTracer()
	ctx := NewContext(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sctx, sp := StartSpan(ctx, "work")
				sp.Annotate("worker", w)
				_, inner := StartSpan(sctx, "inner")
				inner.End()
				sp.End()
				d := tr.StartDetached("detached", "t")
				d.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	want := workers*perWorker*3 + 1
	if n := tr.NumSpans(); n != want {
		t.Fatalf("NumSpans = %d, want %d", n, want)
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != want {
		t.Fatalf("exported %d events, want %d", len(f.TraceEvents), want)
	}
}

func TestDetachedLaneReuse(t *testing.T) {
	tr := NewTracer()
	a := tr.StartDetached("a", "smt")
	lane := a.lane
	a.End()
	b := tr.StartDetached("b", "smt")
	if b.lane != lane {
		t.Fatalf("sequential detached spans: lane %d then %d, want reuse", lane, b.lane)
	}
	b.End()
}

// fakeClock is a manually-advanced clock for deterministic export output.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestExportGolden(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr := &Tracer{start: clk.t, now: clk.now}
	ctx := NewContext(context.Background(), tr)

	ctx, root := StartSpan(ctx, "circ.check")
	root.Annotate("variable", "x")
	clk.advance(100 * time.Microsecond)
	ictx, iter := StartSpan(ctx, "iteration")
	iter.Annotate("round", 1)
	clk.advance(50 * time.Microsecond)
	_, reach := StartSpan(ictx, "reach")
	clk.advance(250 * time.Microsecond)
	reach.Annotate("states", 42)
	reach.End()
	clk.advance(25 * time.Microsecond)
	iter.End()
	d := tr.StartDetached("smt.solve", "smt")
	clk.advance(75 * time.Microsecond)
	d.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export differs from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
