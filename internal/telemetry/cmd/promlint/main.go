// Command promlint validates a Prometheus text exposition read from
// stdin against the line format: well-formed sample lines, declared
// # TYPE families, parseable values. It exits 0 on a clean exposition
// and 1 with the first violation on stderr — CI pipes the daemon's
// /metrics scrape through it.
package main

import (
	"fmt"
	"os"

	"circ/internal/telemetry"
)

func main() {
	if err := telemetry.LintPrometheus(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}
