package telemetry

import (
	"strings"
	"testing"
)

func TestParseTraceParent(t *testing.T) {
	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	parentID := "00f067aa0ba902b7"
	good := "00-" + traceID + "-" + parentID + "-01"

	gotTrace, gotParent, ok := ParseTraceParent(good)
	if !ok || gotTrace != traceID || gotParent != parentID {
		t.Fatalf("ParseTraceParent(%q) = %q, %q, %v", good, gotTrace, gotParent, ok)
	}
	// Header values are case-insensitive; IDs normalize to lowercase.
	gotTrace, _, ok = ParseTraceParent(strings.ToUpper(good))
	if !ok || gotTrace != traceID {
		t.Fatalf("uppercase traceparent rejected or not normalized: %q %v", gotTrace, ok)
	}

	for _, bad := range []string{
		"",
		"00-" + traceID + "-" + parentID,         // missing flags
		"01-" + traceID + "-" + parentID + "-01", // unknown version
		"00-" + traceID[:31] + "-" + parentID + "-01",            // short trace id
		"00-" + strings.Repeat("0", 32) + "-" + parentID + "-01", // all-zero trace id
		"00-" + traceID + "-" + strings.Repeat("0", 16) + "-01",  // all-zero parent
		"00-" + traceID + "-" + parentID + "-0g",                 // bad flags hex
		"00-" + strings.Replace(traceID, "4", "g", 1) + "-" + parentID + "-01",
	} {
		if _, _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted", bad)
		}
	}
}

func TestContextFromTraceParent(t *testing.T) {
	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	parentID := "00f067aa0ba902b7"

	// A valid header is adopted: same trace, caller's span as parent,
	// fresh local span.
	tc := ContextFromTraceParent("00-" + traceID + "-" + parentID + "-01")
	if tc.TraceID != traceID || tc.ParentID != parentID {
		t.Fatalf("adopted context = %+v", tc)
	}
	if !validHexID(tc.SpanID, 16) || tc.SpanID == parentID {
		t.Fatalf("local span id %q", tc.SpanID)
	}

	// An absent or invalid header mints a fresh identity with no parent.
	for _, hdr := range []string{"", "garbage"} {
		tc := ContextFromTraceParent(hdr)
		if !validHexID(tc.TraceID, 32) || !validHexID(tc.SpanID, 16) || tc.ParentID != "" {
			t.Fatalf("minted context from %q = %+v", hdr, tc)
		}
	}

	// Minting twice yields distinct identities.
	if a, b := ContextFromTraceParent(""), ContextFromTraceParent(""); a.TraceID == b.TraceID {
		t.Fatal("two minted trace IDs collide")
	}
}

func TestTraceContextString(t *testing.T) {
	tc := ContextFromTraceParent("")
	hdr := tc.String()
	gotTrace, gotParent, ok := ParseTraceParent(hdr)
	if !ok || gotTrace != tc.TraceID || gotParent != tc.SpanID {
		t.Fatalf("String() %q does not round-trip: %q %q %v", hdr, gotTrace, gotParent, ok)
	}
}

func TestTracerTraceContext(t *testing.T) {
	tr := NewTracer()
	if got := tr.TraceContext(); got != (TraceContext{}) {
		t.Fatalf("fresh tracer carries identity %+v", got)
	}
	tc := ContextFromTraceParent("")
	tr.SetTraceContext(tc)
	if got := tr.TraceContext(); got != tc {
		t.Fatalf("TraceContext = %+v, want %+v", got, tc)
	}
	var nilT *Tracer
	nilT.SetTraceContext(tc) // must not panic
	if got := nilT.TraceContext(); got != (TraceContext{}) {
		t.Fatalf("nil tracer returned %+v", got)
	}
}

func TestTracerMaxSpans(t *testing.T) {
	tr := NewTracer()
	tr.SetMaxSpans(2)
	for i := 0; i < 5; i++ {
		tr.StartDetached("s", "").End()
	}
	if n := tr.NumSpans(); n != 2 {
		t.Fatalf("recorded %d spans, want 2", n)
	}
	if d := tr.DroppedSpans(); d != 3 {
		t.Fatalf("dropped %d spans, want 3", d)
	}
}
