package telemetry

import (
	"strings"
	"testing"
)

func TestNarrationHandlerRendersLine(t *testing.T) {
	var sb strings.Builder
	log := NarrationLogger(&sb)
	log.Info("-- round", "round", 2, "k", 1, "preds", "[old==0]")
	got := sb.String()
	want := "-- round round=2 k=1 preds=[old==0]\n"
	if got != want {
		t.Errorf("narration = %q, want %q", got, want)
	}
}

func TestNarrationHandlerIndentsMultilineAttrs(t *testing.T) {
	var sb strings.Builder
	log := NarrationLogger(&sb)
	log.Info("context collapsed", "locs", 3, "acfa", "n0 -> n1\nn1 -> n0\n")
	got := sb.String()
	if !strings.Contains(got, "context collapsed locs=3\n") {
		t.Errorf("missing line: %q", got)
	}
	if !strings.Contains(got, "      n0 -> n1\n      n1 -> n0\n") {
		t.Errorf("multiline attr not indented: %q", got)
	}
}

func TestNarrationHandlerWithAttrs(t *testing.T) {
	var sb strings.Builder
	log := NarrationLogger(&sb).With("unit", "Worker/x")
	log.Info("safe")
	if got := sb.String(); got != "safe unit=Worker/x\n" {
		t.Errorf("narration = %q", got)
	}
}

func TestNarrationLoggerNilWriter(t *testing.T) {
	if l := NarrationLogger(nil); l != nil {
		t.Fatal("NarrationLogger(nil) should be nil (silent)")
	}
}
