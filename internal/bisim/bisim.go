// Package bisim implements the paper's Collapse procedure: converting an
// abstract reachability graph into a minimal context model by (1)
// projecting out local variables from its labels, and (2) computing the
// weak bisimulation quotient with the projected labels and atomicity as
// observables and the havoc sets as actions (tau = edges writing no
// global).
package bisim

import (
	"context"
	"sort"
	"time"

	"circ/internal/acfa"
	"circ/internal/journal"
	"circ/internal/pred"
	"circ/internal/reach"
	"circ/internal/smt"
	"circ/internal/telemetry"
)

// Collapse minimises the ARG g into an ACFA context model. It returns the
// quotient automaton and mu, the map from canonical ARG location ids to
// quotient locations (needed by the refiner to concretise abstract paths).
// reg, which may be nil, receives the quotient's size and duration
// metrics; when ctx carries a journal stream, the quotient's shrinkage is
// recorded as an acfa_collapsed event.
func Collapse(ctx context.Context, g *reach.ARG, chk smt.Solver, reg *telemetry.Registry) (*acfa.ACFA, map[int]acfa.Loc) {
	start := time.Now()
	argA, locMap := g.ToACFA()
	quot, classOf := Quotient(argA, chk)
	mu := make(map[int]acfa.Loc, len(locMap))
	for root, l := range locMap {
		mu[root] = classOf[l]
	}
	reg.Counter("bisim.collapses").Inc()
	reg.Counter("bisim.locs.in").Add(int64(argA.NumLocs()))
	reg.Counter("bisim.locs.out").Add(int64(quot.NumLocs()))
	reg.Histogram("bisim.collapse").Since(start)
	journal.FromContext(ctx).Emit(journal.Event{
		Type:       journal.EvACFACollapsed,
		LocsBefore: argA.NumLocs(),
		LocsAfter:  quot.NumLocs(),
	})
	return quot, mu
}

// Quotient computes the weak bisimulation quotient of a. It returns the
// quotient automaton and the class of each original location.
func Quotient(a *acfa.ACFA, chk smt.Solver) (*acfa.ACFA, map[acfa.Loc]acfa.Loc) {
	n := a.NumLocs()
	if n == 0 {
		empty := &acfa.ACFA{}
		empty.Finish()
		return empty, map[acfa.Loc]acfa.Loc{}
	}

	// Initial partition: semantic label class + atomicity.
	block := make([]int, n)
	var reps []acfa.Loc // representative location per block
	for l := 0; l < n; l++ {
		assigned := false
		for b, rep := range reps {
			if a.IsAtomic(acfa.Loc(l)) != a.IsAtomic(rep) {
				continue
			}
			if labelsEquivalent(a, acfa.Loc(l), rep, chk) {
				block[l] = b
				assigned = true
				break
			}
		}
		if !assigned {
			block[l] = len(reps)
			reps = append(reps, acfa.Loc(l))
		}
	}

	weak := acfa.WeakMoves(a)

	// Partition refinement on the saturated weak transition relation.
	for {
		sigs := make(map[string]int)
		newBlock := make([]int, n)
		changed := false
		for l := 0; l < n; l++ {
			sig := signature(weak[l], block, l)
			// Prefix the old block so refinement only splits blocks.
			key := itoa(block[l]) + "!" + sig
			id, ok := sigs[key]
			if !ok {
				id = len(sigs)
				sigs[key] = id
			}
			newBlock[l] = id
		}
		for l := 0; l < n; l++ {
			if newBlock[l] != block[l] {
				changed = true
			}
		}
		block = newBlock
		if !changed {
			break
		}
	}

	// Renumber blocks densely in order of first occurrence.
	dense := make(map[int]int)
	for l := 0; l < n; l++ {
		if _, ok := dense[block[l]]; !ok {
			dense[block[l]] = len(dense)
		}
	}

	quot := &acfa.ACFA{}
	classOf := make(map[acfa.Loc]acfa.Loc, n)
	members := make([][]acfa.Loc, len(dense))
	for l := 0; l < n; l++ {
		c := dense[block[l]]
		classOf[acfa.Loc(l)] = acfa.Loc(c)
		members[c] = append(members[c], acfa.Loc(l))
	}
	for c := 0; c < len(dense); c++ {
		var label *pred.Region
		atomic := false
		for i, m := range members[c] {
			if i == 0 {
				label = a.Label(m).Clone()
				atomic = a.IsAtomic(m)
			} else {
				label.AddRegion(a.Label(m))
			}
		}
		quot.AddLoc(label, atomic)
	}
	// Project edges: keep non-tau edges (as self-loops when internal, the
	// paper's rule) and tau edges that cross classes (observable label
	// changes with no global writes).
	seen := make(map[string]bool)
	for _, e := range a.Edges {
		cs, cd := classOf[e.Src], classOf[e.Dst]
		if len(e.Havoc) == 0 && cs == cd {
			continue // internal tau: dissolved by the quotient
		}
		key := itoa(int(cs)) + ">" + itoa(int(cd)) + ":" + acfa.HavocKey(e.Havoc)
		if seen[key] {
			continue
		}
		seen[key] = true
		quot.AddEdge(cs, cd, e.Havoc)
	}
	quot.Entry = classOf[a.Entry]
	quot.Finish()
	return quot, classOf
}

// signature canonically describes a location's weak moves up to the
// current partition. Pure-tau moves within the own block are omitted
// (always present).
func signature(moves []acfa.WeakMove, block []int, self int) string {
	var parts []string
	for _, m := range moves {
		b := block[m.Dst]
		if len(m.Havoc) == 0 && b == block[self] {
			continue
		}
		parts = append(parts, acfa.HavocKey(m.Havoc)+"@"+itoa(b))
	}
	sort.Strings(parts)
	out := ""
	prev := ""
	for _, p := range parts {
		if p == prev {
			continue
		}
		prev = p
		out += p + ";"
	}
	return out
}

// labelsEquivalent reports semantic equivalence of two location labels.
func labelsEquivalent(a *acfa.ACFA, x, y acfa.Loc, chk smt.Solver) bool {
	lx, ly := a.Label(x), a.Label(y)
	if lx.Key() == ly.Key() {
		return true
	}
	return chk.Equivalent(lx.Formula(), ly.Formula())
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
