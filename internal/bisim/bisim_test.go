package bisim

import (
	"math/rand"
	"testing"

	"circ/internal/acfa"
	"circ/internal/expr"
	"circ/internal/pred"
	"circ/internal/simrel"
	"circ/internal/smt"
)

// mkACFA builds an ACFA with n true-labelled locations and the given
// edges; atomicity is given per location.
func mkACFA(n int, atomic []int, edges [][3]interface{}) *acfa.ACFA {
	s := pred.NewSet()
	a := &acfa.ACFA{}
	at := make(map[int]bool)
	for _, i := range atomic {
		at[i] = true
	}
	for i := 0; i < n; i++ {
		a.AddLoc(pred.TrueRegion(s), at[i])
	}
	for _, e := range edges {
		a.AddEdge(acfa.Loc(e[0].(int)), acfa.Loc(e[1].(int)), e[2].([]string))
	}
	a.Finish()
	return a
}

func TestQuotientCollapsesTauChain(t *testing.T) {
	// 0 -tau-> 1 -tau-> 2, all same label: one class.
	a := mkACFA(3, nil, [][3]interface{}{
		{0, 1, []string(nil)},
		{1, 2, []string(nil)},
	})
	chk := smt.NewChecker()
	q, classOf := Quotient(a, chk)
	if q.NumLocs() != 1 {
		t.Fatalf("quotient has %d locs, want 1:\n%s", q.NumLocs(), q)
	}
	if classOf[0] != classOf[2] {
		t.Fatalf("tau chain not collapsed")
	}
	if len(q.Edges) != 0 {
		t.Fatalf("internal tau edges should dissolve, got %v", q.Edges)
	}
}

func TestQuotientPreservesAtomicity(t *testing.T) {
	// 0 -tau-> 1(atomic) -tau-> 2: atomicity is observable, so 1 stays
	// separate (the paper's "I,II are not collapsed to preserve
	// atomicity").
	a := mkACFA(3, []int{1}, [][3]interface{}{
		{0, 1, []string(nil)},
		{1, 2, []string(nil)},
	})
	q, classOf := Quotient(a, smt.NewChecker())
	if classOf[0] == classOf[1] {
		t.Fatalf("atomic location merged with non-atomic")
	}
	if q.NumLocs() < 2 {
		t.Fatalf("quotient too small: %d", q.NumLocs())
	}
	if !q.IsAtomic(classOf[1]) || q.IsAtomic(classOf[0]) {
		t.Fatalf("atomicity flags lost")
	}
}

func TestQuotientDistinguishesWriteCapability(t *testing.T) {
	// 0 -tau-> 1; 1 -{x}-> 0: location 1 can write x, location 0 cannot
	// directly... but weakly both can (0 -tau-> 1 -{x}->). With identical
	// labels the weak signatures coincide, so 0 and 1 merge and the write
	// becomes a self-loop (the paper's self-loop rule).
	a := mkACFA(2, nil, [][3]interface{}{
		{0, 1, []string(nil)},
		{1, 0, []string{"x"}},
	})
	q, _ := Quotient(a, smt.NewChecker())
	if q.NumLocs() != 1 {
		t.Fatalf("expected full merge, got %d locs", q.NumLocs())
	}
	if len(q.Edges) != 1 || len(q.Edges[0].Havoc) != 1 || q.Edges[0].Havoc[0] != "x" {
		t.Fatalf("self-loop rule broken: %v", q.Edges)
	}
	if q.Edges[0].Src != q.Edges[0].Dst {
		t.Fatalf("expected self loop")
	}
}

func TestQuotientSeparatesDifferentLabels(t *testing.T) {
	s := pred.NewSet(expr.Eq(expr.V("g"), expr.Num(0)))
	a := &acfa.ACFA{}
	r0 := pred.NewRegion(s)
	r0.Add(pred.NewCube(s, map[int]pred.TV{0: pred.True}))
	r1 := pred.NewRegion(s)
	r1.Add(pred.NewCube(s, map[int]pred.TV{0: pred.False}))
	a.AddLoc(r0, false)
	a.AddLoc(r1, false)
	a.AddEdge(0, 1, []string{"g"})
	a.Finish()
	q, classOf := Quotient(a, smt.NewChecker())
	if classOf[0] == classOf[1] {
		t.Fatalf("differently labelled locations merged")
	}
	if q.NumLocs() != 2 {
		t.Fatalf("quotient locs = %d", q.NumLocs())
	}
}

func TestQuotientMergesEquivalentLabels(t *testing.T) {
	// Labels g==0 and g<1 ... over integers g==0 vs g<=0: not equivalent.
	// Use g>=1 vs g>0 which are equivalent.
	s := pred.NewSet(expr.Ge(expr.V("g"), expr.Num(1)), expr.Gt(expr.V("g"), expr.Num(0)))
	a := &acfa.ACFA{}
	r0 := pred.NewRegion(s)
	r0.Add(pred.NewCube(s, map[int]pred.TV{0: pred.True}))
	r1 := pred.NewRegion(s)
	r1.Add(pred.NewCube(s, map[int]pred.TV{1: pred.True}))
	a.AddLoc(r0, false)
	a.AddLoc(r1, false)
	a.Finish()
	_, classOf := Quotient(a, smt.NewChecker())
	if classOf[0] != classOf[1] {
		t.Fatalf("semantically equal labels not merged")
	}
}

func TestQuotientKeepsCrossClassTau(t *testing.T) {
	// 0 [g==0] -tau-> 1 [true]: labels differ, tau edge must survive as an
	// empty-havoc edge so the quotient can still make the move.
	s := pred.NewSet(expr.Eq(expr.V("g"), expr.Num(0)))
	a := &acfa.ACFA{}
	r0 := pred.NewRegion(s)
	r0.Add(pred.NewCube(s, map[int]pred.TV{0: pred.True}))
	a.AddLoc(r0, false)
	a.AddLoc(pred.TrueRegion(s), false)
	a.AddEdge(0, 1, nil)
	a.Finish()
	q, classOf := Quotient(a, smt.NewChecker())
	if classOf[0] == classOf[1] {
		t.Fatalf("should not merge")
	}
	found := false
	for _, e := range q.Edges {
		if e.Src == classOf[0] && e.Dst == classOf[1] && len(e.Havoc) == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-class tau edge dropped: %v", q.Edges)
	}
}

// Property: the quotient weakly simulates the original automaton (this is
// the soundness requirement Collapse relies on). Checked on random ACFAs.
func TestQuickQuotientSimulatesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	chk := smt.NewChecker()
	vars := []string{"g", "h"}
	for trial := 0; trial < 40; trial++ {
		s := pred.NewSet(expr.Eq(expr.V("g"), expr.Num(0)))
		a := &acfa.ACFA{}
		numLocs := 2 + rng.Intn(5)
		for i := 0; i < numLocs; i++ {
			r := pred.NewRegion(s)
			switch rng.Intn(3) {
			case 0:
				r.Add(pred.NewCube(s, map[int]pred.TV{0: pred.True}))
			case 1:
				r.Add(pred.NewCube(s, map[int]pred.TV{0: pred.False}))
			default:
				r.Add(pred.TopCube(s))
			}
			a.AddLoc(r, rng.Intn(4) == 0)
		}
		numEdges := rng.Intn(2 * numLocs)
		for i := 0; i < numEdges; i++ {
			var havoc []string
			for _, v := range vars {
				if rng.Intn(3) == 0 {
					havoc = append(havoc, v)
				}
			}
			a.AddEdge(acfa.Loc(rng.Intn(numLocs)), acfa.Loc(rng.Intn(numLocs)), havoc)
		}
		a.Entry = 0
		a.Finish()
		q, _ := Quotient(a, chk)
		if !simrel.Simulates(a, q, chk) {
			t.Fatalf("trial %d: quotient does not simulate original:\noriginal:\n%s\nquotient:\n%s", trial, a, q)
		}
	}
}
