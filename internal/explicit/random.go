package explicit

import "math/rand"

// RandomRun executes one pseudo-random interleaving of the instance for up
// to maxSteps steps, invoking observe with the configuration *before* each
// executed step. It stops early when no transition is enabled.
func (in *Instance) RandomRun(seed int64, maxSteps int, opts Options, observe func(c *Config, s Step)) error {
	rng := rand.New(rand.NewSource(seed))
	cur := in.InitialConfig()
	for i := 0; i < maxSteps; i++ {
		succs, steps, err := in.Successors(cur, opts.havocDomain(), opts.valueBound())
		if err != nil {
			return err
		}
		if len(succs) == 0 {
			return nil
		}
		j := rng.Intn(len(succs))
		if observe != nil {
			observe(cur, steps[j])
		}
		cur = succs[j]
	}
	return nil
}
